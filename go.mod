module pnstm

go 1.23
