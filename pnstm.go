package pnstm

import (
	"time"

	"pnstm/internal/core"
	"pnstm/internal/epoch"
)

// Ctx is an execution context handed to block programs and transaction
// bodies. It provides Atomic (begin a transaction, possibly nested),
// Parallel (fork–join inside or outside a transaction) and the raw
// Load/Store accessors; the generic Load/Store/Update package functions
// are the typed front end.
type Ctx = core.Ctx

// Stats is a snapshot of runtime activity counters; see the field
// documentation in the core package.
type Stats = core.Stats

// Var is an untyped transactional variable. Prefer the generic TVar.
type Var = core.Object

// NewVar returns an untyped transactional variable holding initial.
func NewVar(initial any) *Var { return core.NewObject(initial) }

// ErrClosed is returned by Run after Close.
var ErrClosed = core.ErrClosed

// Config configures a Runtime.
//
// Field interactions:
//
//   - Serial overrides almost everything else: it disables the scheduler,
//     the publisher and conflict detection, so Workers, LIFODispatch,
//     DisableAggressiveRecycle, SharedReads, PublisherPartitions,
//     PublisherStartPaused, SpinRetries and the backoff fields have no
//     effect, and Runtime.Publisher returns nil. A Serial runtime is
//     single-threaded: concurrent Run calls are not safe in this mode.
//   - LIFODispatch changes only the order blocks leave the global queue;
//     it composes freely with every other switch and never affects
//     results, only scheduling (ablation benchmarks).
//   - DisableAggressiveRecycle turns off unilateral bitnum discards,
//     which also eliminates borrow switches and merged-victim
//     escalations; deep trees then lean harder on the publisher to
//     recycle bitnums, so expect more head-of-line waiting when the free
//     queue runs dry.
//   - SharedReads changes the conflict model itself (reads stop
//     conflicting with reads), so results of racy programs may differ
//     from the default write-only model; oracle-style comparisons against
//     Serial still hold for deterministic programs.
//   - PublisherStartPaused holds the lazy-publication window open until
//     Publisher().Resume or a manual StepOnce/Drain; accessors then rely
//     on SpinRetries and committed-descendant notes, and deliberately do
//     not help-publish (tests pause the publisher precisely to keep the
//     window open).
//   - SpinRetries, YieldAfterAborts, BackoffBase/BackoffMax and Seed tune
//     the same retry loop, in escalating order: spin in place, then back
//     off (randomized via Seed), then yield the worker slot.
type Config struct {
	// Workers is the number of worker slots P (1..32). Transactions get
	// identifiers out of a 2P-bit space, so P is bounded by half the
	// machine word.
	Workers int

	// Serial selects the serial-nesting baseline: Parallel runs its
	// children sequentially in the calling context, as in STMs that
	// disallow parallel nesting. Used for benchmarking against the paper's
	// baseline. See the interaction notes on Config.
	Serial bool

	// DisableAggressiveRecycle turns off unilateral bitnum recycling
	// (paper §6.2). For ablation experiments.
	DisableAggressiveRecycle bool

	// LIFODispatch dispatches the newest queued block first instead of
	// FIFO. For ablation experiments.
	LIFODispatch bool

	// SharedReads makes Load a shared read: concurrent readers never
	// conflict with each other, and a write is admitted only when every
	// active reader is an ancestor of the writer. Off by default, which
	// reproduces the paper's write-only evaluation model. (The extension
	// is the paper's §9 first future-work item.)
	SharedReads bool

	// PublisherPartitions parallelizes the background publisher over the
	// bitnum space (paper §5.1). Default 1.
	PublisherPartitions int

	// PublisherStartPaused starts the publisher paused. Testing only: it
	// holds the lazy-publication window open.
	PublisherStartPaused bool

	// SpinRetries bounds in-place conflict re-testing before a transaction
	// aborts. Default 64.
	SpinRetries int

	// YieldAfterAborts is how many consecutive aborts a transaction
	// tolerates before giving its worker slot back between retries.
	// Default 3.
	YieldAfterAborts int

	// BackoffBase and BackoffMax bound the randomized exponential backoff
	// between retries. Defaults 500ns and 100µs.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Seed seeds backoff randomization. Default 1.
	Seed int64
}

// Runtime schedules transactional fork–join programs over a fixed set of
// worker slots. Create with New; always Close when done (it stops the
// background publisher).
type Runtime struct {
	rt *core.Runtime
}

// New creates a runtime.
func New(cfg Config) (*Runtime, error) {
	rt, err := core.New(core.Config{
		Workers:                  cfg.Workers,
		Serial:                   cfg.Serial,
		DisableAggressiveRecycle: cfg.DisableAggressiveRecycle,
		LIFODispatch:             cfg.LIFODispatch,
		SharedReads:              cfg.SharedReads,
		PublisherPartitions:      cfg.PublisherPartitions,
		PublisherStartPaused:     cfg.PublisherStartPaused,
		SpinRetries:              cfg.SpinRetries,
		YieldAfterAborts:         cfg.YieldAfterAborts,
		BackoffBase:              cfg.BackoffBase,
		BackoffMax:               cfg.BackoffMax,
		Seed:                     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Runtime{rt: rt}, nil
}

// Run executes fn as a root block and waits for it and everything it
// forked. Concurrent Run calls are independent block trees. A panic in the
// tree is re-raised here after rollback.
func (r *Runtime) Run(fn func(*Ctx)) error { return r.rt.Run(fn) }

// Close waits for in-flight Run calls and stops the background publisher.
// Idempotent; Run afterwards returns ErrClosed.
func (r *Runtime) Close() { r.rt.Close() }

// Stats returns a snapshot of activity counters.
func (r *Runtime) Stats() Stats { return r.rt.Stats() }

// Workers returns the configured worker count.
func (r *Runtime) Workers() int { return r.rt.Workers() }

// Publisher exposes the lazy-reclaiming publisher for tests and
// benchmarks (pause, resume, drain). Nil in Serial mode.
func (r *Runtime) Publisher() *epoch.Publisher { return r.rt.Publisher() }

// TraceEvent is one recorded transaction-lifecycle event; see the core
// package's Event documentation. Kinds are the EvBegin..EvCrisis
// constants; TraceKindName renders them.
type TraceEvent = core.Event

// Trace event kinds.
const (
	EvBegin    = core.EvBegin
	EvCommit   = core.EvCommit
	EvAbort    = core.EvAbort
	EvEscalate = core.EvEscalate
	EvCrisis   = core.EvCrisis
)

// TraceKindName renders a trace-event kind ("begin", "abort", ...).
func TraceKindName(k uint8) string { return core.KindName(k) }

// EnableTracing switches lifecycle-event recording on or off (the
// conflict X-ray flight recorder). Safe to flip at any time.
func (r *Runtime) EnableTracing(on bool) { r.rt.EnableTracing(on) }

// TracingEnabled reports whether lifecycle events are being recorded.
func (r *Runtime) TracingEnabled() bool { return r.rt.TracingEnabled() }

// SetTraceSampling records the begin/commit lifecycle for 1 in every
// roots (0 or 1: every root). Conflict events — abort, escalate,
// crisis — are always recorded regardless, so abort attribution stays
// exact under sampling.
func (r *Runtime) SetTraceSampling(every uint64) { r.rt.SetTraceSampling(every) }

// TraceSampling returns the lifecycle sampling divisor (≤1: all roots).
func (r *Runtime) TraceSampling() uint64 { return r.rt.TraceSampling() }

// TraceRings returns the recorder's ring count — the cursor-slice
// length TraceRead expects.
func (r *Runtime) TraceRings() int { return r.rt.TraceRings() }

// TraceRead drains events recorded since the given per-ring cursors
// (nil reads from each ring's start) and returns them with the
// advanced cursors. Lock-free; safe to call concurrently with running
// transactions.
func (r *Runtime) TraceRead(cursors []uint64) ([]TraceEvent, []uint64) {
	return r.rt.TraceRead(cursors)
}

// TraceReadConflicts drains only abort/escalate/crisis events (always
// recorded regardless of lifecycle sampling) from the dedicated
// conflict rings — the cheap poll for continuous consumers like the
// hot-key profiler.
func (r *Runtime) TraceReadConflicts(cursors []uint64) ([]TraceEvent, []uint64) {
	return r.rt.TraceReadConflicts(cursors)
}

// TraceSnapshot returns every event the flight recorder currently
// retains (for dumps).
func (r *Runtime) TraceSnapshot() []TraceEvent { return r.rt.TraceSnapshot() }

// TraceStats reports events recorded and events dropped (overwritten
// before any reader drained them).
func (r *Runtime) TraceStats() (events, dropped uint64) { return r.rt.TraceStats() }

// SetCrisisHook installs fn to run each time a root transaction takes
// the cross-root crisis token (on that root's goroutine — it must not
// block). The server dumps the flight recorder here.
func (r *Runtime) SetCrisisHook(fn func()) { r.rt.SetCrisisHook(fn) }

// TVar is a typed transactional variable.
type TVar[T any] struct {
	obj *core.Object
}

// NewTVar returns a transactional variable holding initial.
func NewTVar[T any](initial T) *TVar[T] {
	return &TVar[T]{obj: core.NewObject(initial)}
}

// Load reads v inside the current transaction. Like every access it is
// treated as a write for conflict detection (paper §4.2).
func Load[T any](c *Ctx, v *TVar[T]) T {
	return c.Load(v.obj).(T)
}

// Store writes v inside the current transaction.
func Store[T any](c *Ctx, v *TVar[T], val T) {
	c.Store(v.obj, val)
}

// Swap writes val and returns the previous value.
func Swap[T any](c *Ctx, v *TVar[T], val T) T {
	return c.Store(v.obj, val).(T)
}

// Update applies f to the current value and stores the result, returning
// the new value.
func Update[T any](c *Ctx, v *TVar[T], f func(T) T) T {
	next := f(c.Load(v.obj).(T))
	c.Store(v.obj, next)
	return next
}

// Peek reads the value without transactional bookkeeping. Only safe when
// no transactions are running (e.g. after Run returns).
func (v *TVar[T]) Peek() T { return v.obj.Peek().(T) }

// SetDirect overwrites the value without transactional bookkeeping. Only
// safe when no transactions are running.
func (v *TVar[T]) SetDirect(val T) { v.obj.SetDirect(val) }

// Obj exposes the underlying untyped variable (for mixing typed and
// untyped access in one program).
func (v *TVar[T]) Obj() *Var { return v.obj }

// AtomicResult runs fn atomically and returns its result, a generic
// convenience over Ctx.Atomic.
func AtomicResult[R any](c *Ctx, fn func(*Ctx) (R, error)) (R, error) {
	var out R
	err := c.Atomic(func(c *Ctx) error {
		var err error
		out, err = fn(c)
		return err
	})
	return out, err
}
