package pnstm_test

import (
	"fmt"
	"log"

	"pnstm"
)

// The package example is the paper's Figure 1: a bank transfer whose
// debit and credit run as parallel nested transactions inside the outer
// transaction, followed by the outer transaction reading its child's
// result.
func Example() {
	rt, err := pnstm.New(pnstm.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	acctA := pnstm.NewTVar(100)
	acctB := pnstm.NewTVar(50)

	err = rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error { // t0
			c.Parallel(
				func(c *pnstm.Ctx) { // t1, child of t0
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						pnstm.Store(c, acctA, pnstm.Load(c, acctA)-30)
						return nil
					})
				},
				func(c *pnstm.Ctx) { // t2, child of t0
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						pnstm.Store(c, acctB, pnstm.Load(c, acctB)+30)
						return nil
					})
				},
			)
			// t0 reads B immediately after its child committed; the
			// committed-descendant notes (§5.2) guarantee no false conflict
			// even before the commit is published.
			fmt.Println("balance of B:", pnstm.Load(c, acctB))
			return nil
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: A=%d B=%d\n", acctA.Peek(), acctB.Peek())
	// Output:
	// balance of B: 80
	// final: A=70 B=80
}

// AtomicResult returns a value out of a transaction; an error from the
// body aborts every write the transaction (and its committed
// descendants) made.
func ExampleAtomicResult() {
	rt, err := pnstm.New(pnstm.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	stock := pnstm.NewTVar(5)
	errSoldOut := fmt.Errorf("sold out")

	take := func(c *pnstm.Ctx, n int) (int, error) {
		return pnstm.AtomicResult(c, func(c *pnstm.Ctx) (int, error) {
			have := pnstm.Load(c, stock)
			if have < n {
				return 0, errSoldOut
			}
			pnstm.Store(c, stock, have-n)
			return have - n, nil
		})
	}

	_ = rt.Run(func(c *pnstm.Ctx) {
		left, err := take(c, 3)
		fmt.Println(left, err)
		left, err = take(c, 3) // aborts: nothing is deducted
		fmt.Println(left, err)
	})
	fmt.Println("remaining:", stock.Peek())
	// Output:
	// 2 <nil>
	// 0 sold out
	// remaining: 2
}

// Update composes a read-modify-write; inside an enclosing Atomic it is
// one step of the enclosing transaction.
func ExampleUpdate() {
	rt, err := pnstm.New(pnstm.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	hits := pnstm.NewTVar(0)
	_ = rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			for i := 0; i < 3; i++ {
				pnstm.Update(c, hits, func(n int) int { return n + 1 })
			}
			return nil
		})
	})
	fmt.Println(hits.Peek())
	// Output:
	// 3
}
