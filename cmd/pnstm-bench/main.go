// Command pnstm-bench regenerates the paper's evaluation figures
// (Barreto et al., PPoPP 2010, §7) on this machine, and runs the stmlib
// data-structure workloads (map-heavy, producer/consumer, hot-counter)
// comparing parallel-nested bulk operations against the serial-nesting
// baseline.
//
// Usage:
//
//	pnstm-bench -fig 6                     # speedup of parallel vs serial nesting
//	pnstm-bench -fig 7                     # per-tx handling time vs depth
//	pnstm-bench -fig 6 -think 20ms -repeats 5 -detail
//	pnstm-bench -fig 6 -paperscale         # 0..2s think times, as published (slow!)
//	pnstm-bench -workload all              # stmlib structure workloads
//	pnstm-bench -workload map -children 16 -span 256
//	pnstm-bench -workload all -json .      # machine-readable BENCH_*.json
//	pnstm-bench -fig 6 -json .             # figure grid as BENCH_figure-6.json
//
// The paper ran on a 64-hardware-thread Niagara 2 with 32 workers and
// think times up to 2 s. The workload is think-time dominated, so the
// figure shapes survive a shorter think time and fewer cores; -paperscale
// restores the published parameters.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pnstm/internal/bench"
)

func main() {
	var (
		fig        = flag.Int("fig", 6, "figure to regenerate: 6 (speedup) or 7 (tx time vs depth)")
		think      = flag.Duration("think", 20*time.Millisecond, "max leaf think time (paper: 2s; keep ≫ ~0.5ms of write work per leaf)")
		objects    = flag.Int("objects", 2000, "objects written per leaf transaction")
		workers    = flag.Int("workers", 32, "worker slots P (max 32)")
		repeats    = flag.Int("repeats", 3, "repetitions per data point (paper: 10)")
		maxDepth   = flag.Int("maxdepth", 6, "deepest tree depth D")
		maxLeaves  = flag.Int("maxleaves", 64, "largest leaf count N (doubling from 1)")
		seed       = flag.Int64("seed", 1, "workload seed")
		detail     = flag.Bool("detail", false, "also print raw wall/tx times")
		paperscale = flag.Bool("paperscale", false, "use the paper's 0..2s think times and 10 repeats")

		workload = flag.String("workload", "", "stmlib structure workload to run instead of a figure: map, queue, counter or all")
		rounds   = flag.Int("rounds", 8, "structure workload: top-level transactions per run")
		children = flag.Int("children", 8, "structure workload: parallel children per round")
		span     = flag.Int("span", 128, "structure workload: per-child operations per round")
		jsonDir  = flag.String("json", "", "directory to write BENCH_*.json reports into (shared encoder with pnstm-loadgen)")
	)
	flag.Parse()

	if *workload != "" {
		runWorkloads(*workload, bench.StructureConfig{
			Workers:  *workers,
			Rounds:   *rounds,
			Children: *children,
			Span:     *span,
			Seed:     *seed,
		}, *jsonDir)
		return
	}

	if *paperscale {
		*think = 2 * time.Second
		*repeats = 10
	}
	var counts []int
	for n := 1; n <= *maxLeaves; n *= 2 {
		counts = append(counts, n)
	}
	cfg := bench.FigureConfig{
		LeafCounts: counts,
		MaxDepth:   *maxDepth,
		Objects:    *objects,
		ThinkMax:   *think,
		Workers:    *workers,
		Repeats:    *repeats,
		Seed:       *seed,
	}

	var (
		f   *bench.Figure
		err error
	)
	switch *fig {
	case 6:
		f, err = bench.Fig6(cfg)
	case 7:
		f, err = bench.Fig7(cfg)
	default:
		fmt.Fprintf(os.Stderr, "pnstm-bench: unknown figure %d (want 6 or 7)\n", *fig)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnstm-bench: %v\n", err)
		os.Exit(1)
	}
	f.Render(os.Stdout)
	if *detail {
		fmt.Println()
		f.RenderDetail(os.Stdout)
	}
	if *jsonDir != "" {
		path, err := bench.FigureReport(f, *fig).WriteFile(*jsonDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report: %s\n", path)
	}
}

// runWorkloads runs the requested stmlib structure workload families and
// prints a serial-vs-parallel comparison table; with jsonDir set it also
// writes one BENCH_*.json report per family through the shared encoder.
func runWorkloads(which string, base bench.StructureConfig, jsonDir string) {
	names := bench.StructureWorkloads()
	if which != "all" {
		found := false
		for _, n := range names {
			if n == which {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "pnstm-bench: unknown workload %q (want %v or all)\n", which, names)
			os.Exit(2)
		}
		names = []string{which}
	}
	fmt.Printf("stmlib structure workloads: %d rounds × %d children × %d ops (workers=%d)\n\n",
		base.Rounds, base.Children, base.Span, base.Workers)
	fmt.Printf("%-10s %14s %14s %10s\n", "workload", "serial ops/s", "parallel ops/s", "speedup")
	for _, name := range names {
		cfg := base
		cfg.Workload = name
		ser, par, err := bench.CompareStructure(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-bench: workload %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %14.0f %14.0f %9.2fx\n",
			name, ser.OpsPerSec(), par.OpsPerSec(),
			float64(ser.Wall)/float64(par.Wall))
		if jsonDir != "" {
			path, err := bench.WorkloadReport(cfg, ser, par).WriteFile(jsonDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pnstm-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-10s report: %s\n", "", path)
		}
	}
	fmt.Println("\nspeedup > 1 means parallel-nested bulk operations beat the serial baseline;")
	fmt.Println("expect < 1 on boxes with few hardware threads (fork/join overhead only).")
}
