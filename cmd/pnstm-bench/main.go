// Command pnstm-bench regenerates the paper's evaluation figures
// (Barreto et al., PPoPP 2010, §7) on this machine.
//
// Usage:
//
//	pnstm-bench -fig 6                     # speedup of parallel vs serial nesting
//	pnstm-bench -fig 7                     # per-tx handling time vs depth
//	pnstm-bench -fig 6 -think 20ms -repeats 5 -detail
//	pnstm-bench -fig 6 -paperscale         # 0..2s think times, as published (slow!)
//
// The paper ran on a 64-hardware-thread Niagara 2 with 32 workers and
// think times up to 2 s. The workload is think-time dominated, so the
// figure shapes survive a shorter think time and fewer cores; -paperscale
// restores the published parameters.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pnstm/internal/bench"
)

func main() {
	var (
		fig        = flag.Int("fig", 6, "figure to regenerate: 6 (speedup) or 7 (tx time vs depth)")
		think      = flag.Duration("think", 20*time.Millisecond, "max leaf think time (paper: 2s; keep ≫ ~0.5ms of write work per leaf)")
		objects    = flag.Int("objects", 2000, "objects written per leaf transaction")
		workers    = flag.Int("workers", 32, "worker slots P (max 32)")
		repeats    = flag.Int("repeats", 3, "repetitions per data point (paper: 10)")
		maxDepth   = flag.Int("maxdepth", 6, "deepest tree depth D")
		maxLeaves  = flag.Int("maxleaves", 64, "largest leaf count N (doubling from 1)")
		seed       = flag.Int64("seed", 1, "workload seed")
		detail     = flag.Bool("detail", false, "also print raw wall/tx times")
		paperscale = flag.Bool("paperscale", false, "use the paper's 0..2s think times and 10 repeats")
	)
	flag.Parse()

	if *paperscale {
		*think = 2 * time.Second
		*repeats = 10
	}
	var counts []int
	for n := 1; n <= *maxLeaves; n *= 2 {
		counts = append(counts, n)
	}
	cfg := bench.FigureConfig{
		LeafCounts: counts,
		MaxDepth:   *maxDepth,
		Objects:    *objects,
		ThinkMax:   *think,
		Workers:    *workers,
		Repeats:    *repeats,
		Seed:       *seed,
	}

	var (
		f   *bench.Figure
		err error
	)
	switch *fig {
	case 6:
		f, err = bench.Fig6(cfg)
	case 7:
		f, err = bench.Fig7(cfg)
	default:
		fmt.Fprintf(os.Stderr, "pnstm-bench: unknown figure %d (want 6 or 7)\n", *fig)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnstm-bench: %v\n", err)
		os.Exit(1)
	}
	f.Render(os.Stdout)
	if *detail {
		fmt.Println()
		f.RenderDetail(os.Stdout)
	}
}
