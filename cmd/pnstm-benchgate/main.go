// Command pnstm-benchgate is the CI benchmark-regression gate: it
// compares a freshly produced BENCH_*.json report against a committed
// baseline and exits nonzero when a tracked metric dropped more than
// the allowed fraction.
//
// Usage:
//
//	pnstm-benchgate -baseline BENCH_baseline.json \
//	    -report BENCH_loadgen-mixed.json \
//	    -metric throughput_per_sec -max-drop 0.20
//
// Repeat -metric to gate several metrics of one report; every tracked
// metric must be present in both files. Because the committed baseline
// holds the floors for SEVERAL reports in one metrics map, a report
// key may gate against a differently-named baseline key with
// `-metric report_key=baseline_key` (e.g. a workload report's
// throughput_per_sec against the baseline's txmix_throughput_per_sec).
// A -metric passes when
//
//	report ≥ baseline × (1 − max-drop)
//
// i.e. -metric keys are higher-is-better (throughputs, speedup
// ratios). Lower-is-better metrics (latencies) gate with the repeatable
// -metric-ceiling flag instead, which passes when
//
//	report ≤ baseline × (1 + max-rise)
//
// so the committed baseline is a ceiling rather than a floor. Both
// flags accept the report_key=baseline_key form. Baselines are
// deliberately conservative so runner-to-runner variance does not flap
// the gate; when a PR trades a metric away on purpose, re-baseline in
// the same PR (or use the workflow's documented override label) rather
// than loosening max-drop/max-rise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// report is the slice of bench.Report this tool needs; decoding locally
// keeps the gate free of the benchmark encoder's dependencies.
type report struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type metricList []string

func (m *metricList) String() string     { return fmt.Sprint(*m) }
func (m *metricList) Set(v string) error { *m = append(*m, v); return nil }

func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Metrics) == 0 {
		return nil, fmt.Errorf("%s: no metrics", path)
	}
	return &r, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
		reportPath   = flag.String("report", "", "freshly produced report to gate")
		maxDrop      = flag.Float64("max-drop", 0.20, "largest tolerated fractional drop vs baseline (floor metrics)")
		maxRise      = flag.Float64("max-rise", 0.50, "largest tolerated fractional rise vs baseline (ceiling metrics)")
		metrics      metricList
		ceilings     metricList
	)
	flag.Var(&metrics, "metric", "higher-is-better metric key to gate (repeatable; report_key=baseline_key gates a report metric against a differently-named baseline floor)")
	flag.Var(&ceilings, "metric-ceiling", "lower-is-better metric key to gate (repeatable, same key syntax; passes while report ≤ baseline × (1 + max-rise))")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pnstm-benchgate: "+format+"\n", args...)
		os.Exit(1)
	}
	if *reportPath == "" {
		fail("-report is required")
	}
	if len(metrics) == 0 && len(ceilings) == 0 {
		fail("at least one -metric or -metric-ceiling is required")
	}
	if *maxDrop < 0 || *maxDrop >= 1 {
		fail("-max-drop must be in [0,1), got %v", *maxDrop)
	}
	if *maxRise < 0 {
		fail("-max-rise must be >= 0, got %v", *maxRise)
	}
	base, err := loadReport(*baselinePath)
	if err != nil {
		fail("baseline: %v", err)
	}
	rep, err := loadReport(*reportPath)
	if err != nil {
		fail("report: %v", err)
	}

	lookup := func(key string) (got, want float64) {
		repKey, baseKey := key, key
		if i := strings.IndexByte(key, '='); i >= 0 {
			repKey, baseKey = key[:i], key[i+1:]
		}
		want, ok := base.Metrics[baseKey]
		if !ok {
			fail("baseline %s has no metric %q", *baselinePath, baseKey)
		}
		got, ok = rep.Metrics[repKey]
		if !ok {
			fail("report %s has no metric %q", *reportPath, repKey)
		}
		return got, want
	}

	regressed := 0
	for _, key := range metrics {
		got, want := lookup(key)
		floor := want * (1 - *maxDrop)
		status := "ok"
		if got < floor {
			status = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-32s baseline %12.2f  floor %12.2f  got %12.2f  %s\n", key, want, floor, got, status)
	}
	for _, key := range ceilings {
		got, want := lookup(key)
		ceiling := want * (1 + *maxRise)
		status := "ok"
		if got > ceiling {
			status = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-32s baseline %12.2f  ceiling %10.2f  got %12.2f  %s\n", key, want, ceiling, got, status)
	}
	total := len(metrics) + len(ceilings)
	if regressed > 0 {
		fail("%d of %d gated metrics regressed vs %s (floors -%.0f%%, ceilings +%.0f%%)",
			regressed, total, *baselinePath, *maxDrop*100, *maxRise*100)
	}
	fmt.Printf("pnstm-benchgate: %d metric(s) within bounds of baseline\n", total)
}
