// Command pnstm-benchgate is the CI benchmark-regression gate: it
// compares a freshly produced BENCH_*.json report against a committed
// baseline and exits nonzero when a tracked metric dropped more than
// the allowed fraction.
//
// Usage:
//
//	pnstm-benchgate -baseline BENCH_baseline.json \
//	    -report BENCH_loadgen-mixed.json \
//	    -metric throughput_per_sec -max-drop 0.20
//
// Repeat -metric to gate several metrics of one report; every tracked
// metric must be present in both files. Because the committed baseline
// holds the floors for SEVERAL reports in one metrics map, a report
// key may gate against a differently-named baseline key with
// `-metric report_key=baseline_key` (e.g. a workload report's
// throughput_per_sec against the baseline's txmix_throughput_per_sec).
// A metric passes when
//
//	report ≥ baseline × (1 − max-drop)
//
// i.e. all gated metrics are higher-is-better (throughputs, speedup
// ratios). The baseline is a committed floor, deliberately conservative
// so runner-to-runner variance does not flap the gate; when a PR trades
// throughput away on purpose, re-baseline in the same PR (or use the
// workflow's documented override label) rather than loosening max-drop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// report is the slice of bench.Report this tool needs; decoding locally
// keeps the gate free of the benchmark encoder's dependencies.
type report struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type metricList []string

func (m *metricList) String() string     { return fmt.Sprint(*m) }
func (m *metricList) Set(v string) error { *m = append(*m, v); return nil }

func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Metrics) == 0 {
		return nil, fmt.Errorf("%s: no metrics", path)
	}
	return &r, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
		reportPath   = flag.String("report", "", "freshly produced report to gate")
		maxDrop      = flag.Float64("max-drop", 0.20, "largest tolerated fractional drop vs baseline")
		metrics      metricList
	)
	flag.Var(&metrics, "metric", "metric key to gate (repeatable; report_key=baseline_key gates a report metric against a differently-named baseline floor)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pnstm-benchgate: "+format+"\n", args...)
		os.Exit(1)
	}
	if *reportPath == "" {
		fail("-report is required")
	}
	if len(metrics) == 0 {
		fail("at least one -metric is required")
	}
	if *maxDrop < 0 || *maxDrop >= 1 {
		fail("-max-drop must be in [0,1), got %v", *maxDrop)
	}
	base, err := loadReport(*baselinePath)
	if err != nil {
		fail("baseline: %v", err)
	}
	rep, err := loadReport(*reportPath)
	if err != nil {
		fail("report: %v", err)
	}

	regressed := 0
	for _, key := range metrics {
		repKey, baseKey := key, key
		if i := strings.IndexByte(key, '='); i >= 0 {
			repKey, baseKey = key[:i], key[i+1:]
		}
		want, ok := base.Metrics[baseKey]
		if !ok {
			fail("baseline %s has no metric %q", *baselinePath, baseKey)
		}
		got, ok := rep.Metrics[repKey]
		if !ok {
			fail("report %s has no metric %q", *reportPath, repKey)
		}
		floor := want * (1 - *maxDrop)
		status := "ok"
		if got < floor {
			status = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-32s baseline %12.2f  floor %12.2f  got %12.2f  %s\n", key, want, floor, got, status)
	}
	if regressed > 0 {
		fail("%d of %d gated metrics regressed more than %.0f%% vs %s",
			regressed, len(metrics), *maxDrop*100, *baselinePath)
	}
	fmt.Printf("pnstm-benchgate: %d metric(s) within %.0f%% of baseline\n", len(metrics), *maxDrop*100)
}
