// Command pnstm-loadgen drives configurable workload mixes against a
// pnstmd server and emits a machine-readable BENCH_*.json summary
// (throughput, latency percentiles, abort rate from the server's
// runtime stats) through the shared internal/bench encoder.
//
// Workloads:
//
//	readmap   read-heavy point ops on one named map (-readfrac)
//	queue     producer/consumer traffic over several named queues
//	counter   hot-counter increments with occasional parallel-nested sums
//	checkout  cross-structure orders (stock map + sold/revenue counters),
//	          with conservation invariants checked at the end
//	mixed     all of the above interleaved
//	txmix     multi-op wire transactions (client.Txn envelopes): checkout
//	          orders, atomic queue-to-queue transfers (cross-shard pairs
//	          preferred), guarded compare-and-swap bumps (aborted guards
//	          tallied as rejections), and read-only cross-structure
//	          audits that fan shards — with transfer/CAS/conservation
//	          ledgers verified
//	crossshard  guarded balance transfers between account maps on
//	          different shards — every mutating envelope rides the
//	          cross-shard ordered-commit path — with the zero-sum
//	          ledger total verified exactly at the end
//	phases    phase-shifting mix: read-heavy → write-hot on a tiny
//	          key-space → mixed, one third of -duration each — the
//	          workload the adaptive-controller A/B runs on
//	hotkey    zipfian-skewed write-heavy point traffic: a handful of
//	          keys draw most of the writes, so batch siblings conflict
//	          on them constantly — the workload the conflict profiler
//	          (/debug/hotkeys) is demonstrated on
//
// Usage:
//
//	pnstm-loadgen -addr localhost:7455 -workload readmap -duration 5s
//	pnstm-loadgen -workload mixed -concurrency 32 -conns 8 -json .
//	pnstm-loadgen -workload readmap -rate 20000          # open loop
//	pnstm-loadgen -compare -workload readmap -json .     # embedded A/B:
//	        group commit (batched) vs batch-size-1 serial execution
//	pnstm-loadgen -compare -workload txmix -fsync -syncdelay 2ms -json .
//	        # durable A/B on multi-op wire transactions: the serial
//	        # baseline fsyncs once per REQUEST, group commit once per
//	        # BATCH — the amortization the envelope path is built on
//	pnstm-loadgen -compare -persist -workload counter -json .
//	        # persistence overhead A/B: in-memory vs WAL vs WAL+fsync
//	pnstm-loadgen -compare -adaptive -workload phases -duration 9s -json .
//	        # controller A/B: adaptive AIMD MaxInflight/BatchFanout vs
//	        # the best pinned static config on the phase-shifting mix
//	pnstm-loadgen -compare -trace-ab -workload mixed -json .
//	        # tracing-overhead A/B: the same batched workload with the
//	        # conflict X-ray off vs on, emitting tracing_overhead_ratio
//	pnstm-loadgen -compare -shards 4 -syncdelay 2ms -min-shard-speedup 1.5
//	        # shard-scaling A/B: 1-shard vs 4-shard durable server —
//	        # parallel per-shard group-commit pipelines, fsyncs included
//	pnstm-loadgen -compare -replica-ab -min-replica-speedup 1.4 -json .
//	        # replica read-pool A/B: the same pure-read workload against
//	        # the durable primary alone vs primary + 2 WAL-shipping
//	        # replicas read with ReadPreferReplica, emitting
//	        # replica_read_speedup_ratio
//	pnstm-loadgen -kill-after 3s -json .    # crash-recovery drill:
//	        hard-kill an embedded durable server mid-load, restart it on
//	        the same data dir, verify the recovered invariants
//	pnstm-loadgen -recovery-check -addr localhost:7455
//	        # after an out-of-process kill -9 + restart: verify the
//	        # recovered store's conservation invariants
//
// Every run verifies its workload's closed-form invariants against the
// final server state and exits nonzero on a violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pnstm/client"
	"pnstm/internal/bench"
	"pnstm/server"
	"pnstm/stmlib"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:7455", "pnstmd address")
		workload    = flag.String("workload", "mixed", "readmap, queue, counter, checkout, mixed, txmix, crossshard, phases, hotkey or pipeline")
		concurrency = flag.Int("concurrency", 16, "issuing goroutines")
		conns       = flag.Int("conns", 4, "pooled client connections")
		duration    = flag.Duration("duration", 5*time.Second, "measurement window")
		rate        = flag.Float64("rate", 0, "total target ops/sec (0: closed loop)")
		keys        = flag.Int("keys", 1024, "readmap key-space size")
		readFrac    = flag.Float64("readfrac", 0.9, "readmap read fraction")
		skus        = flag.Int("skus", 16, "checkout SKU count")
		stockPer    = flag.Int64("stock", 100000, "checkout initial units per SKU")
		queues      = flag.Int("queues", 4, "queue workload: distinct queues")
		seed        = flag.Int64("seed", 1, "workload seed")
		jsonDir     = flag.String("json", "", "directory to write the BENCH_*.json report into (empty: stdout summary only)")
		name        = flag.String("name", "", "report name override")

		compare      = flag.Bool("compare", false, "embedded A/B: run against two in-process servers — group commit vs batch-size-1 serial — instead of -addr")
		compareBatch = flag.Int("comparebatch", 64, "compare mode: MaxBatch of the batched server")
		workers      = flag.Int("workers", 8, "compare/crash mode: worker slots of the embedded servers")
		persist      = flag.Bool("persist", false, "with -compare: persistence-overhead A/B — in-memory vs WAL (no fsync) vs WAL (fsync per group commit)")
		fsyncCmp     = flag.Bool("fsync", false, "with -compare: run BOTH A/B servers durable with one fsync per commit — the serial baseline pays it per REQUEST, group commit per BATCH (combine with -syncdelay for a deterministic floor)")
		shards       = flag.Int("shards", 1, "with -compare: shard-scaling A/B — 1-shard vs N-shard durable server, parallel per-shard group commits; with -kill-after: shard count of the crashed server")
		syncDelay    = flag.Duration("syncdelay", 0, "compare modes: artificial per-fsync latency floor (simulates slower stable storage so the fsync/pipeline count dominates, not the box's disk)")
		minSpeedup   = flag.Float64("min-shard-speedup", 0, "shard compare: fail unless N-shard throughput ≥ this multiple of 1-shard (0: report only)")
		minCmpSpdup  = flag.Float64("min-speedup", 0, "compare mode: fail unless batched throughput ≥ this multiple of the serial baseline (0: report only)")
		adaptiveCmp  = flag.Bool("adaptive", false, "with -compare: controller A/B — adaptive AIMD tuning vs pinned static MaxInflight (run it on -workload phases)")
		minAdaptive  = flag.Float64("min-adaptive-ratio", 0, "adaptive compare: fail unless adaptive throughput ≥ this multiple of the best static config (0: report only)")
		traceCmp     = flag.Bool("trace-ab", false, "with -compare: conflict-tracing overhead A/B — the same batched workload with lifecycle tracing off vs on, emitting tracing_overhead_ratio")
		maxTraceOvh  = flag.Float64("max-trace-overhead", 0, "trace A/B: fail if untraced/traced throughput exceeds this ratio (0: report only)")
		replicaCmp   = flag.Bool("replica-ab", false, "with -compare: replica read-pool A/B — the same pure-read workload against the durable primary alone vs primary + 2 WAL-shipping replicas with ReadPreferReplica, emitting replica_read_speedup_ratio")
		minReplica   = flag.Float64("min-replica-speedup", 0, "replica A/B: fail unless the read pool delivers ≥ this multiple of the primary-only throughput (0: report only)")
		rangescanCmp = flag.Bool("rangescan-ab", false, "with -compare: parallel-subrange scan A/B — scanners vs score writers on one sorted map, registry fanout 1 vs the default, emitting rangescan_speedup_ratio")
		minRangescan = flag.Float64("min-rangescan-speedup", 0, "rangescan A/B: fail unless parallel-subrange scans deliver ≥ this multiple of the sequential-scan throughput (0: report only)")
		killAfter    = flag.Duration("kill-after", 0, "crash-recovery drill: hard-kill an embedded durable server after this long under load, restart, verify invariants")
		dataDir      = flag.String("data-dir", "", "crash mode: data directory to crash and recover on (empty: a temp dir)")
		recoveryChk  = flag.Bool("recovery-check", false, "verify a restarted pnstmd at -addr holds the recovered-store invariants (conservation, no oversell)")
	)
	flag.Parse()

	cfg := genCfg{
		workload:    *workload,
		concurrency: *concurrency,
		conns:       *conns,
		duration:    *duration,
		rate:        *rate,
		keys:        *keys,
		readFrac:    *readFrac,
		skus:        *skus,
		stockPer:    *stockPer,
		queues:      *queues,
		seed:        *seed,
	}
	if err := cfg.fillDefaults(); err != nil {
		fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
		os.Exit(2)
	}

	if *persist && !*compare {
		fmt.Fprintln(os.Stderr, "pnstm-loadgen: -persist requires -compare (the persistence A/B runs embedded servers)")
		os.Exit(2)
	}

	if *recoveryChk {
		if err := runRecoveryCheck(*addr, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *killAfter > 0 {
		if err := runCrash(cfg, *workers, *compareBatch, *shards, *dataDir, *killAfter, *jsonDir, *name); err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *adaptiveCmp && !*compare {
		fmt.Fprintln(os.Stderr, "pnstm-loadgen: -adaptive requires -compare (the controller A/B runs embedded servers)")
		os.Exit(2)
	}
	if *traceCmp && !*compare {
		fmt.Fprintln(os.Stderr, "pnstm-loadgen: -trace-ab requires -compare (the tracing A/B runs embedded servers)")
		os.Exit(2)
	}
	if *replicaCmp && !*compare {
		fmt.Fprintln(os.Stderr, "pnstm-loadgen: -replica-ab requires -compare (the replica A/B runs embedded servers)")
		os.Exit(2)
	}
	if *rangescanCmp && !*compare {
		fmt.Fprintln(os.Stderr, "pnstm-loadgen: -rangescan-ab requires -compare (the scan A/B runs embedded servers)")
		os.Exit(2)
	}
	if *compare && *rangescanCmp {
		if err := runRangeScanCompare(cfg, *workers, *compareBatch, *syncDelay, *minRangescan, *jsonDir, *name); err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *compare && *replicaCmp {
		if err := runReplicaCompare(cfg, *workers, *compareBatch, *syncDelay, *minReplica, *jsonDir, *name); err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *compare && *traceCmp {
		if err := runTraceCompare(cfg, *workers, *compareBatch, *maxTraceOvh, *jsonDir, *name); err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *compare && *adaptiveCmp {
		if err := runAdaptiveCompare(cfg, *workers, *compareBatch, *minAdaptive, *jsonDir, *name); err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *compare && *shards > 1 {
		if err := runShardCompare(cfg, *workers, *compareBatch, *shards, *syncDelay, *minSpeedup, *jsonDir, *name); err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *compare && *persist {
		if err := runPersistCompare(cfg, *workers, *compareBatch, *jsonDir, *name); err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *compare {
		if err := runCompare(cfg, *workers, *compareBatch, *fsyncCmp, *syncDelay, *minCmpSpdup, *jsonDir, *name); err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cl, err := client.Connect(client.Options{Addrs: []string{*addr}, PoolSize: cfg.conns})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()

	res, err := runLoad(cl, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
		os.Exit(1)
	}
	printResult(cfg, res)

	if *jsonDir != "" {
		rep := buildReport(cfg, res, *name)
		path, err := rep.WriteFile(*jsonDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnstm-loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("report: %s\n", path)
	}
	if len(res.violations) > 0 || res.errs > 0 {
		os.Exit(1)
	}
}

// printResult renders the human-readable summary.
func printResult(cfg genCfg, res *genResult) {
	fmt.Printf("%s: %d ops in %v = %.0f ops/s (%d errors, %d rejected)\n",
		cfg.workload, res.ops, res.wall.Round(time.Millisecond), res.throughput(), res.errs, res.rejected)
	lm := bench.LatencyMetrics(res.latencies)
	if len(lm) > 0 {
		fmt.Printf("latency: p50 %.0fµs  p90 %.0fµs  p99 %.0fµs  max %.0fµs\n",
			lm["latency_p50_us"], lm["latency_p90_us"], lm["latency_p99_us"], lm["latency_max_us"])
	}
	if res.statsOK {
		fmt.Printf("server: %d batches, mean batch %.2f, abort ratio %.4f\n",
			res.batchDelta, res.runtimeStat.meanBatch, res.runtimeStat.abortRatio)
	}
	if len(res.perShard) > 1 {
		for _, sh := range res.perShard {
			fmt.Printf("  shard %d: batches=%d requests=%d committed=%d abort ratio %.4f\n",
				sh.shard, sh.batches, sh.requests, sh.committed, sh.abortRatio)
		}
	}
	for _, v := range res.violations {
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATED: %s\n", v)
	}
}

// buildReport renders a run as the shared Report shape.
func buildReport(cfg genCfg, res *genResult, name string) *bench.Report {
	if name == "" {
		name = "loadgen-" + cfg.workload
	}
	metrics := map[string]float64{
		"throughput_per_sec": res.throughput(),
		"ops":                float64(res.ops),
		"errors":             float64(res.errs),
		"rejected":           float64(res.rejected),
		"wall_us":            float64(res.wall) / float64(time.Microsecond),
	}
	for k, v := range bench.LatencyMetrics(res.latencies) {
		metrics[k] = v
	}
	rep := &bench.Report{
		Name: name,
		Kind: "loadgen",
		Config: map[string]any{
			"workload":    cfg.workload,
			"concurrency": cfg.concurrency,
			"conns":       cfg.conns,
			"duration":    cfg.duration.String(),
			"rate":        cfg.rate,
			"keys":        cfg.keys,
			"readfrac":    cfg.readFrac,
			"skus":        cfg.skus,
			"stock":       cfg.stockPer,
			"queues":      cfg.queues,
			"seed":        cfg.seed,
		},
		Metrics: metrics,
	}
	if res.statsOK {
		metrics["batches"] = float64(res.batchDelta)
		metrics["mean_batch"] = res.runtimeStat.meanBatch
		metrics["abort_ratio"] = res.runtimeStat.abortRatio
		metrics["tx_committed"] = float64(res.runtimeStat.committed)
		metrics["tx_aborted"] = float64(res.runtimeStat.aborted)
		rt := res.runtimeUsed.Runtime
		rep.Stats = &rt
		// Server-side latency summaries (OpStats histogram quantiles, by
		// op class) — measured inside the server, so they exclude client
		// scheduling and the network round trip.
		for class, ls := range res.runtimeUsed.Latency {
			metrics["server_"+class+"_p50_us"] = ls.P50us
			metrics["server_"+class+"_p95_us"] = ls.P95us
			metrics["server_"+class+"_p99_us"] = ls.P99us
		}
		rep.Config["server_max_batch"] = res.runtimeUsed.MaxBatch
		rep.Config["server_workers"] = res.runtimeUsed.Workers
		rep.Config["server_serial"] = res.runtimeUsed.Serial
		rep.Config["server_shards"] = res.runtimeUsed.Shards
		if len(res.perShard) > 1 {
			for _, sh := range res.perShard {
				metrics[fmt.Sprintf("shard%d_batches", sh.shard)] = float64(sh.batches)
				metrics[fmt.Sprintf("shard%d_requests", sh.shard)] = float64(sh.requests)
				metrics[fmt.Sprintf("shard%d_abort_ratio", sh.shard)] = sh.abortRatio
			}
		}
	}
	if len(res.violations) == 0 {
		rep.Notes = append(rep.Notes, "invariants ok")
	} else {
		rep.Notes = append(rep.Notes, res.violations...)
	}
	return rep
}

// runCompare boots two in-process servers on the loopback — batch-size-1
// serial execution vs group commit — runs the same workload against
// both, and reports the comparison (the paper's serial-vs-parallel
// nesting evaluation, measured end to end through the network stack).
//
// With fsync=true both servers run durable with one fsync per commit
// (and syncDelay as an artificial stable-storage latency floor, like
// the shard A/B): the serial baseline then pays a FULL fsync per
// request while group commit pays one per BATCH — the amortization
// that makes group commit the right architecture for mutating
// multi-op transactions. Without fsync the comparison measures raw
// in-memory execution, where cheap point ops favor the serial
// baseline's zero-machinery path (the paper's own short-transaction
// observation) and read-pipelining workloads favor batching.
func runCompare(cfg genCfg, workers, maxBatch int, fsync bool, syncDelay time.Duration, minSpeedup float64, jsonDir, name string) error {
	type mode struct {
		label string
		scfg  server.Config
	}
	// Both servers share the runtime mode and structure sizing; the only
	// difference is the group-commit batching. The batched server uses
	// the shared-read conflict model (§9) — without it, read-mostly batch
	// siblings false-conflict on shared buckets; the serial server has no
	// concurrency to conflict, so the flag is irrelevant there.
	reg := stmlib.RegistryConfig{MapBuckets: 4 * cfg.keys}
	// Read-dominant traffic additionally pipelines group commits
	// (MaxInflight > 1): safe there because shared reads never conflict
	// across batches. Write-heavy workloads keep the classic
	// one-batch-at-a-time group commit — overlapping writer batches
	// would livelock on the hot keys.
	inflight := 1
	if cfg.workload == "readmap" {
		inflight = 4
	}
	modes := []mode{
		{"serial", server.Config{Workers: workers, MaxBatch: 1, Serial: true, Registry: reg}},
		{"batched", server.Config{Workers: workers, MaxBatch: maxBatch, SharedReads: true, MaxInflight: inflight, Registry: reg}},
	}
	results := make(map[string]*genResult, len(modes))
	fsyncs := make(map[string]float64, len(modes))
	for _, m := range modes {
		m.scfg.Addr = "127.0.0.1:0"
		if fsync {
			dir, err := os.MkdirTemp("", "pnstm-compare-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			m.scfg.DataDir = dir
			m.scfg.Fsync = true
			m.scfg.WALSyncDelay = syncDelay
		}
		s, err := server.New(m.scfg)
		if err != nil {
			return err
		}
		if err := s.Listen(); err != nil {
			return err
		}
		go s.Serve() //nolint:errcheck // torn down via Close below
		cl, err := client.Connect(client.Options{Addrs: []string{s.Addr().String()}, PoolSize: cfg.conns})
		if err != nil {
			s.Close()
			return err
		}
		fmt.Printf("== %s (workers=%d batch=%d serial=%v fsync=%v syncdelay=%v)\n",
			m.label, workers, m.scfg.MaxBatch, m.scfg.Serial, fsync, syncDelay)
		res, err := runLoad(cl, cfg)
		if fsync {
			fsyncs[m.label] = float64(s.WALStats().Syncs)
		}
		cl.Close()
		s.Close()
		if err != nil {
			return err
		}
		printResult(cfg, res)
		results[m.label] = res
	}

	ser, bat := results["serial"], results["batched"]
	speedup := 0.0
	if ser.throughput() > 0 {
		speedup = bat.throughput() / ser.throughput()
	}
	fmt.Printf("== group commit vs batch-size-1 serial: %.2fx throughput\n", speedup)
	if fsync {
		fmt.Printf("== fsyncs: serial %.0f, batched %.0f (group commit amortizes the commit cost)\n",
			fsyncs["serial"], fsyncs["batched"])
	}

	if jsonDir != "" {
		if name == "" {
			name = "loadgen-" + cfg.workload + "-compare"
		}
		metrics := map[string]float64{
			"serial_throughput_per_sec":  ser.throughput(),
			"batched_throughput_per_sec": bat.throughput(),
			"speedup_ratio":              speedup,
			"serial_ops":                 float64(ser.ops),
			"batched_ops":                float64(bat.ops),
			"batched_mean_batch":         bat.runtimeStat.meanBatch,
			"batched_abort_ratio":        bat.runtimeStat.abortRatio,
		}
		if fsync {
			metrics["serial_wal_fsyncs"] = fsyncs["serial"]
			metrics["batched_wal_fsyncs"] = fsyncs["batched"]
		}
		for k, v := range bench.LatencyMetrics(bat.latencies) {
			metrics["batched_"+k] = v
		}
		for k, v := range bench.LatencyMetrics(ser.latencies) {
			metrics["serial_"+k] = v
		}
		rep := &bench.Report{
			Name: name,
			Kind: "loadgen",
			Config: map[string]any{
				"workload":    cfg.workload,
				"concurrency": cfg.concurrency,
				"conns":       cfg.conns,
				"duration":    cfg.duration.String(),
				"workers":     workers,
				"max_batch":   maxBatch,
				"fsync":       fsync,
				"syncdelay":   syncDelay.String(),
				"seed":        cfg.seed,
			},
			Metrics: metrics,
		}
		for _, res := range []*genResult{ser, bat} {
			if len(res.violations) > 0 {
				rep.Notes = append(rep.Notes, res.violations...)
			}
		}
		if len(rep.Notes) == 0 {
			rep.Notes = []string{"invariants ok in both modes"}
		}
		path, err := rep.WriteFile(jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("report: %s\n", path)
	}
	if len(ser.violations) > 0 || len(bat.violations) > 0 || ser.errs > 0 || bat.errs > 0 {
		return fmt.Errorf("invariant violations or request errors (see above)")
	}
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("group commit regressed: batched delivers %.2fx the serial baseline, want ≥ %.2fx", speedup, minSpeedup)
	}
	return nil
}

// runPersistCompare measures what durability costs: the same batched
// workload against an in-memory server, a WAL server without fsync,
// and a WAL server with one fsync per group commit. Because the fsync
// is amortized over the whole batch — like the paper amortizes block
// dispatch — the durable mode's throughput should stay within a small
// factor of in-memory, which is the figure this report captures.
func runPersistCompare(cfg genCfg, workers, maxBatch int, jsonDir, name string) error {
	type mode struct {
		label   string
		durable bool
		fsync   bool
	}
	modes := []mode{
		{"memory", false, false},
		{"wal-nofsync", true, false},
		{"wal-fsync", true, true},
	}
	reg := stmlib.RegistryConfig{MapBuckets: 4 * cfg.keys}
	results := make(map[string]*genResult, len(modes))
	walStats := make(map[string]float64, len(modes))
	for _, m := range modes {
		scfg := server.Config{
			Addr:        "127.0.0.1:0",
			Workers:     workers,
			MaxBatch:    maxBatch,
			SharedReads: true,
			Registry:    reg,
		}
		if m.durable {
			dir, err := os.MkdirTemp("", "pnstm-persist-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			scfg.DataDir = dir
			scfg.Fsync = m.fsync
		}
		s, err := server.New(scfg)
		if err != nil {
			return err
		}
		if err := s.Listen(); err != nil {
			return err
		}
		go s.Serve() //nolint:errcheck // torn down via Close below
		cl, err := client.Connect(client.Options{Addrs: []string{s.Addr().String()}, PoolSize: cfg.conns})
		if err != nil {
			s.Close()
			return err
		}
		fmt.Printf("== %s (workers=%d batch=%d fsync=%v)\n", m.label, workers, maxBatch, m.fsync)
		res, err := runLoad(cl, cfg)
		if m.durable {
			ws := s.WALStats()
			walStats[m.label+"_wal_records"] = float64(ws.Appends)
			walStats[m.label+"_wal_fsyncs"] = float64(ws.Syncs)
		}
		cl.Close()
		s.Close()
		if err != nil {
			return err
		}
		printResult(cfg, res)
		results[m.label] = res
	}

	mem, nof, fs := results["memory"], results["wal-nofsync"], results["wal-fsync"]
	metrics := bench.PersistenceMetrics(mem.throughput(), nof.throughput(), fs.throughput())
	fmt.Printf("== persistence overhead: WAL retains %.0f%%, WAL+fsync retains %.0f%% of in-memory throughput\n",
		100*metrics["wal_retained_ratio"], 100*metrics["durable_retained_ratio"])

	if jsonDir != "" {
		if name == "" {
			name = "loadgen-" + cfg.workload + "-persist"
		}
		for k, v := range walStats {
			metrics[k] = v
		}
		for k, v := range bench.LatencyMetrics(fs.latencies) {
			metrics["fsync_"+k] = v
		}
		for k, v := range bench.LatencyMetrics(mem.latencies) {
			metrics["memory_"+k] = v
		}
		rep := &bench.Report{
			Name: name,
			Kind: "loadgen",
			Config: map[string]any{
				"workload":    cfg.workload,
				"concurrency": cfg.concurrency,
				"conns":       cfg.conns,
				"duration":    cfg.duration.String(),
				"workers":     workers,
				"max_batch":   maxBatch,
				"seed":        cfg.seed,
			},
			Metrics: metrics,
		}
		for _, m := range modes {
			if res := results[m.label]; len(res.violations) > 0 {
				rep.Notes = append(rep.Notes, res.violations...)
			}
		}
		if len(rep.Notes) == 0 {
			rep.Notes = []string{"invariants ok in all three modes"}
		}
		path, err := rep.WriteFile(jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("report: %s\n", path)
	}
	for _, m := range modes {
		res := results[m.label]
		if len(res.violations) > 0 || res.errs > 0 {
			return fmt.Errorf("invariant violations or request errors (see above)")
		}
	}
	return nil
}
