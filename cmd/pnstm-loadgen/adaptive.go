package main

import (
	"fmt"
	"time"

	"pnstm/client"
	"pnstm/internal/bench"
	"pnstm/server"
	"pnstm/stmlib"
)

// runAdaptiveCompare is the controller A/B: the same workload (meant to
// be -workload phases, whose op mix shifts read-heavy → write-hot →
// mixed mid-run) against three embedded in-memory servers —
//
//	static-1   MaxInflight pinned at 1 (the conservative default: safe
//	           everywhere, leaves read-phase pipelining on the table)
//	static-4   MaxInflight pinned at 4 (fast while reads dominate, digs
//	           into the write-livelock cliff when the phase turns)
//	adaptive   starts at 1 with the AIMD controller on, walking each
//	           shard's MaxInflight/BatchFanout from observed abort rate
//	           and batch occupancy
//
// and reports adaptive_speedup_ratio = adaptive / best(static). On a
// phase-shifting workload no single static setting is right for every
// phase, so a working controller holds the ratio near (or above) 1.0 —
// the committed BENCH_baseline.json floor CI gates it against.
func runAdaptiveCompare(cfg genCfg, workers, maxBatch int, minRatio float64, jsonDir, name string) error {
	type mode struct {
		label    string
		inflight int
		adaptive bool
	}
	modes := []mode{
		{"static-1", 1, false},
		{"static-4", 4, false},
		{"adaptive", 1, true},
	}
	reg := stmlib.RegistryConfig{MapBuckets: 4 * cfg.keys}
	results := make(map[string]*genResult, len(modes))
	finals := make(map[string]server.ConfigView, len(modes))
	livelocked := make(map[string]bool, len(modes))
	// A pinned-static pipelining server CAN livelock outright on the
	// write-hot phase (the PR 2 cliff — the very failure the controller
	// exists to avoid), and a livelocked leg never answers its in-flight
	// ops. Bound every leg by wall clock: a leg that blows the budget is
	// scored as zero throughput and its server abandoned un-Closed (Close
	// would wait on the stuck batch; process exit reaps it).
	legBudget := 2*cfg.duration + 20*time.Second
	for _, m := range modes {
		s, err := server.New(server.Config{
			Addr:        "127.0.0.1:0",
			Workers:     workers,
			MaxBatch:    maxBatch,
			SharedReads: true,
			MaxInflight: m.inflight,
			Adaptive:    m.adaptive,
			Registry:    reg,
		})
		if err != nil {
			return err
		}
		if err := s.Listen(); err != nil {
			return err
		}
		go s.Serve() //nolint:errcheck // torn down via Close below
		cl, err := client.Connect(client.Options{Addrs: []string{s.Addr().String()}, PoolSize: cfg.conns})
		if err != nil {
			s.Close()
			return err
		}
		fmt.Printf("== %s (workers=%d batch=%d inflight=%d adaptive=%v)\n",
			m.label, workers, maxBatch, m.inflight, m.adaptive)
		type legOut struct {
			res *genResult
			err error
		}
		legCh := make(chan legOut, 1)
		go func() {
			r, e := runLoad(cl, cfg)
			legCh <- legOut{r, e}
		}()
		select {
		case out := <-legCh:
			finals[m.label] = s.ConfigSnapshot()
			cl.Close()
			s.Close()
			if out.err != nil {
				return out.err
			}
			printResult(cfg, out.res)
			results[m.label] = out.res
		case <-time.After(legBudget):
			finals[m.label] = s.ConfigSnapshot()
			livelocked[m.label] = true
			results[m.label] = &genResult{} // zero ops, zero throughput
			fmt.Printf("%s: LIVELOCKED — no completion within %v, leg scored 0 ops/s\n",
				m.label, legBudget)
			// Two snapshots 2s apart characterize the wedge: moving
			// begun/abort counters mean live conflict cycling; frozen
			// counters mean the pipeline is deadlocked outright.
			st0 := s.Stats().Runtime
			time.Sleep(2 * time.Second)
			d := s.Stats().Runtime.Sub(st0)
			fmt.Printf("%s: 2s delta begun=%d committed=%d aborted=%d escalations=%d crises=%d\n",
				m.label, d.Begun, d.Committed, d.Aborted, d.Escalations, d.Crises)
		}
	}

	s1, s4, ad := results["static-1"], results["static-4"], results["adaptive"]
	bestStatic := s1.throughput()
	bestLabel := "static-1"
	if s4.throughput() > bestStatic {
		bestStatic, bestLabel = s4.throughput(), "static-4"
	}
	ratio := 0.0
	if bestStatic > 0 {
		ratio = ad.throughput() / bestStatic
	}
	fmt.Printf("== adaptive vs best static (%s): %.2fx throughput\n", bestLabel, ratio)
	for _, ps := range finals["adaptive"].PerShard {
		fmt.Printf("   adaptive shard %d settled at inflight=%d fanout=%d\n",
			ps.Shard, ps.MaxInflight, ps.BatchFanout)
	}

	if jsonDir != "" {
		if name == "" {
			name = "loadgen-" + cfg.workload + "-adaptive"
		}
		metrics := map[string]float64{
			"static1_throughput_per_sec":     s1.throughput(),
			"static4_throughput_per_sec":     s4.throughput(),
			"adaptive_throughput_per_sec":    ad.throughput(),
			"best_static_throughput_per_sec": bestStatic,
			"adaptive_speedup_ratio":         ratio,
			"static1_abort_ratio":            s1.runtimeStat.abortRatio,
			"static4_abort_ratio":            s4.runtimeStat.abortRatio,
			"adaptive_abort_ratio":           ad.runtimeStat.abortRatio,
		}
		for k, v := range bench.LatencyMetrics(ad.latencies) {
			metrics["adaptive_"+k] = v
		}
		for k, v := range bench.LatencyMetrics(s1.latencies) {
			metrics["static1_"+k] = v
		}
		rep := &bench.Report{
			Name: name,
			Kind: "loadgen",
			Config: map[string]any{
				"workload":    cfg.workload,
				"concurrency": cfg.concurrency,
				"conns":       cfg.conns,
				"duration":    cfg.duration.String(),
				"workers":     workers,
				"max_batch":   maxBatch,
				"seed":        cfg.seed,
			},
			Metrics: metrics,
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf("best static: %s", bestLabel))
		for _, m := range modes {
			if livelocked[m.label] {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s livelocked (scored 0)", m.label))
			}
		}
		for _, ps := range finals["adaptive"].PerShard {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"adaptive shard %d final inflight=%d fanout=%d", ps.Shard, ps.MaxInflight, ps.BatchFanout))
		}
		for _, res := range []*genResult{s1, s4, ad} {
			if len(res.violations) > 0 {
				rep.Notes = append(rep.Notes, res.violations...)
			}
		}
		path, err := rep.WriteFile(jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("report: %s\n", path)
	}
	for _, m := range modes {
		res := results[m.label]
		if len(res.violations) > 0 || res.errs > 0 {
			return fmt.Errorf("invariant violations or request errors (see above)")
		}
	}
	if minRatio > 0 && ratio < minRatio {
		return fmt.Errorf("adaptive controller regressed: %.2fx the best static config (%s), want ≥ %.2fx",
			ratio, bestLabel, minRatio)
	}
	return nil
}
