package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pnstm/client"
	"pnstm/internal/bench"
	"pnstm/server"
	"pnstm/stmlib"
)

// replicaCount is the replica A/B's fixed fan-out: one durable primary
// plus two in-memory replicas — the smallest deployment where read
// scale-out must beat the single-box number (the BENCH floor is 1.4x,
// well under the 3x pipe count, leaving room for replication overhead).
const replicaCount = 2

// replicaCatchupTimeout bounds how long the A/B waits for every replica
// shard to drain the primary's WAL before the read leg starts.
const replicaCatchupTimeout = 30 * time.Second

// replicaWriters is the background write pressure both legs run against
// the primary: closed-loop overwriters whose batches each pay the WAL
// fsync. They are the reason reads want off the primary.
const replicaWriters = 8

// runReplicaCompare measures what WAL-shipping read replicas buy: the
// same pure-read workload, while a background write load holds the
// primary's durable commit pipeline busy, against (A) just the primary
// and (B) a read pool of the primary plus two caught-up replicas,
// routed with ReadPreferReplica.
//
// The primary's WAL clamps it to one commit pipeline per shard (D20),
// so in leg A every read batch that coalesces with a write pays that
// write batch's fsync (floored by -syncdelay): reads are throttled to
// the durable group-commit cadence. Replicas are in-memory and
// pipeline batches freely, so leg B serves reads at memory speed while
// the same writes flow primary-side — replica_read_speedup_ratio
// captures the multiple, and -min-replica-speedup turns it into a gate.
func runReplicaCompare(cfg genCfg, workers, maxBatch int, syncDelay time.Duration, minSpeedup float64, jsonDir, name string) error {
	// The A/B is a READ benchmark: replicas refuse mutations, so the
	// measured workload is pinned to the pure-read end of readmap
	// regardless of what -workload asked for (writes are the background
	// pump's job).
	cfg.workload = "readmap"
	cfg.readFrac = 1.0
	if syncDelay <= 0 {
		// Without a stable-storage floor the box's fsync speed decides the
		// result; 2ms is the same deterministic default the CI shard and
		// durability A/Bs pin.
		syncDelay = 2 * time.Millisecond
	}

	dir, err := os.MkdirTemp("", "pnstm-replica-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	reg := stmlib.RegistryConfig{MapBuckets: 4 * cfg.keys}
	primary, err := server.New(server.Config{
		Addr:         "127.0.0.1:0",
		Workers:      workers,
		MaxBatch:     maxBatch,
		SharedReads:  true,
		Registry:     reg,
		DataDir:      dir, // durable: what makes it a shippable primary
		Fsync:        true,
		WALSyncDelay: syncDelay,
	})
	if err != nil {
		return err
	}
	if err := primary.Listen(); err != nil {
		return err
	}
	go primary.Serve() //nolint:errcheck // torn down via Close below
	defer primary.Close()

	replicas := make([]*server.Server, replicaCount)
	for i := range replicas {
		r, err := server.New(server.Config{
			Addr:        "127.0.0.1:0",
			Workers:     workers,
			MaxBatch:    maxBatch,
			SharedReads: true,
			MaxInflight: 4, // in-memory read pipelines — the capacity leg B buys
			Registry:    reg,
			ReplicaOf:   primary.Addr().String(),
		})
		if err != nil {
			return err
		}
		if err := r.Listen(); err != nil {
			return err
		}
		go r.Serve() //nolint:errcheck // torn down via Close below
		defer r.Close()
		replicas[i] = r
	}

	// Leg A: reads against the primary alone, sharing its single durable
	// commit pipeline with the write pump (replicas are already tailing
	// its WAL in the background, exactly as they would in production).
	clA, err := client.Connect(client.Options{
		Addrs:    []string{primary.Addr().String()},
		PoolSize: cfg.conns,
	})
	if err != nil {
		return err
	}
	fmt.Printf("== reads on the primary (workers=%d batch=%d durable, %d writers, syncdelay %v)\n",
		workers, maxBatch, replicaWriters, syncDelay)
	stopA, err := startWritePump(primary.Addr().String(), cfg)
	if err != nil {
		clA.Close()
		return err
	}
	resA, err := runLoad(clA, cfg)
	writesA := stopA()
	clA.Close()
	if err != nil {
		return err
	}
	printResult(cfg, resA)
	fmt.Printf("   background writes: %d\n", writesA)

	// Barrier: every replica shard must have drained the primary's WAL —
	// a read leg against syncing replicas would measure missing keys,
	// not read capacity.
	if err := waitReplicasCaughtUp(replicas); err != nil {
		return err
	}

	// Leg B: the full read pool, replicas preferred.
	addrs := []string{primary.Addr().String()}
	for _, r := range replicas {
		addrs = append(addrs, r.Addr().String())
	}
	clB, err := client.Connect(client.Options{
		Addrs:          addrs,
		PoolSize:       cfg.conns,
		ReadPreference: client.ReadPreferReplica,
	})
	if err != nil {
		return err
	}
	fmt.Printf("== reads on primary+%d replicas, ReadPreferReplica (same write pump)\n", replicaCount)
	stopB, err := startWritePump(primary.Addr().String(), cfg)
	if err != nil {
		clB.Close()
		return err
	}
	resB, err := runLoad(clB, cfg)
	writesB := stopB()
	clB.Close()
	if err != nil {
		return err
	}
	printResult(cfg, resB)
	fmt.Printf("   background writes: %d\n", writesB)

	speedup := 0.0
	if resA.throughput() > 0 {
		speedup = resB.throughput() / resA.throughput()
	}
	fmt.Printf("== replica read pool vs primary alone: %.2fx throughput\n", speedup)
	staleness := maxReplicaStalenessMs(replicas)
	fmt.Printf("== max replica staleness after the run: %dms\n", staleness)

	if jsonDir != "" {
		if name == "" {
			name = "loadgen-replica-ab"
		}
		metrics := map[string]float64{
			"primary_throughput_per_sec": resA.throughput(),
			"replica_throughput_per_sec": resB.throughput(),
			"replica_read_speedup_ratio": speedup,
			"primary_ops":                float64(resA.ops),
			"replica_ops":                float64(resB.ops),
			"primary_leg_writes":         float64(writesA),
			"replica_leg_writes":         float64(writesB),
			"replica_staleness_ms":       float64(staleness),
		}
		for k, v := range bench.LatencyMetrics(resA.latencies) {
			metrics["primary_"+k] = v
		}
		for k, v := range bench.LatencyMetrics(resB.latencies) {
			metrics["replica_"+k] = v
		}
		rep := &bench.Report{
			Name: name,
			Kind: "loadgen",
			Config: map[string]any{
				"workload":    cfg.workload,
				"concurrency": cfg.concurrency,
				"conns":       cfg.conns,
				"duration":    cfg.duration.String(),
				"workers":     workers,
				"max_batch":   maxBatch,
				"replicas":    replicaCount,
				"writers":     replicaWriters,
				"syncdelay":   syncDelay.String(),
				"seed":        cfg.seed,
			},
			Metrics: metrics,
		}
		for _, res := range []*genResult{resA, resB} {
			if len(res.violations) > 0 {
				rep.Notes = append(rep.Notes, res.violations...)
			}
		}
		if len(rep.Notes) == 0 {
			rep.Notes = []string{"invariants ok in both legs"}
		}
		path, err := rep.WriteFile(jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("report: %s\n", path)
	}
	if len(resA.violations) > 0 || len(resB.violations) > 0 || resA.errs > 0 || resB.errs > 0 {
		return fmt.Errorf("invariant violations or request errors (see above)")
	}
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("replica read pool regressed: %.2fx the primary-only throughput, want ≥ %.2fx", speedup, minSpeedup)
	}
	return nil
}

// startWritePump launches replicaWriters closed-loop goroutines
// overwriting the preloaded read-map keys on the primary — durable
// mutations whose group commits each pay the WAL fsync. Writes stay
// inside the preloaded key-space, so the readmap MapLen invariant
// holds in both legs. The returned stop function tears the pump down
// and reports how many writes it committed.
func startWritePump(primaryAddr string, cfg genCfg) (stop func() int64, err error) {
	cl, err := client.Connect(client.Options{
		Addrs:    []string{primaryAddr},
		PoolSize: 2,
	})
	if err != nil {
		return nil, err
	}
	var (
		writes  atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	for g := 0; g < replicaWriters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 104729 + int64(g)*7919))
			for !stopped.Load() {
				key := keyName(rng.Intn(cfg.keys))
				if err := cl.MapPut(mapName, key, []byte(fmt.Sprintf("w%d", rng.Int()))); err != nil {
					return // connection torn down (stop raced the last write)
				}
				writes.Add(1)
			}
		}()
	}
	return func() int64 {
		stopped.Store(true)
		wg.Wait()
		cl.Close()
		return writes.Load()
	}, nil
}

// waitReplicasCaughtUp polls every replica's watermarks until each
// shard's stream is connected and applied has reached the last reported
// head — nothing the primary logged is still in flight (the legs leave
// no writes pending between them, so applied==head means fully drained).
func waitReplicasCaughtUp(replicas []*server.Server) error {
	deadline := time.Now().Add(replicaCatchupTimeout)
	for _, r := range replicas {
		for {
			st := r.ReplicaStatus()
			caught := true
			for _, sh := range st.Shards {
				if !sh.Connected || sh.StalenessMs < 0 || sh.AppliedLSN < sh.HeadLSN {
					caught = false
					break
				}
			}
			if caught {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica %s did not catch up within %v: %+v",
					r.Addr(), replicaCatchupTimeout, st.Shards)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return nil
}

// maxReplicaStalenessMs reports the worst per-shard staleness across
// the pool (-1 if any shard never caught up).
func maxReplicaStalenessMs(replicas []*server.Server) int64 {
	var max int64
	for _, r := range replicas {
		for _, sh := range r.ReplicaStatus().Shards {
			if sh.StalenessMs < 0 {
				return -1
			}
			if sh.StalenessMs > max {
				max = sh.StalenessMs
			}
		}
	}
	return max
}
