package main

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pnstm/client"
	"pnstm/server"
	"pnstm/stmlib"
)

// genCfg parameterizes one load-generation run.
type genCfg struct {
	workload    string // readmap, queue, counter, checkout, mixed, txmix, crossshard, phases, hotkey
	concurrency int    // issuing goroutines
	conns       int    // pooled client connections
	duration    time.Duration
	rate        float64 // total target ops/sec; 0 = closed loop
	keys        int     // readmap key-space size
	readFrac    float64 // readmap read fraction
	skus        int     // checkout SKU count
	stockPer    int64   // checkout initial units per SKU
	queues      int     // queue workload: distinct queues (txmix: queue pairs)
	seed        int64
}

// runsCheckout reports whether the workload issues checkout orders (and
// so needs stock provisioning and the conservation verifier).
func (c *genCfg) runsCheckout() bool {
	return c.workload == "checkout" || c.workload == "mixed" || c.workload == "txmix"
}

func (c *genCfg) fillDefaults() error {
	switch c.workload {
	case "readmap", "queue", "counter", "checkout", "mixed", "txmix", "crossshard", "phases", "hotkey", "pipeline":
	default:
		return fmt.Errorf("unknown workload %q (want readmap, queue, counter, checkout, mixed, txmix, crossshard, phases, hotkey or pipeline)", c.workload)
	}
	if c.concurrency <= 0 {
		c.concurrency = 16
	}
	if c.conns <= 0 {
		c.conns = 4
	}
	if c.duration <= 0 {
		c.duration = 5 * time.Second
	}
	if c.keys <= 0 {
		c.keys = 1024
	}
	if c.readFrac <= 0 || c.readFrac > 1 {
		c.readFrac = 0.9
	}
	if c.skus <= 0 {
		c.skus = 16
	}
	if c.stockPer <= 0 {
		c.stockPer = 100000
	}
	if c.queues <= 0 {
		c.queues = 4
	}
	if c.seed == 0 {
		c.seed = 1
	}
	return nil
}

// genResult is the outcome of one run.
type genResult struct {
	ops        int64
	errs       int64
	rejected   int64
	wall       time.Duration
	latencies  []time.Duration
	violations []string

	statsOK     bool
	batchDelta  uint64
	reqDelta    uint64
	runtimeUsed server.ServerStats // the after snapshot
	runtimeStat serverDelta
	perShard    []shardDelta // per-partition activity (sharded servers)
}

// serverDelta is the server-side activity attributable to the run.
type serverDelta struct {
	meanBatch  float64
	abortRatio float64
	committed  uint64
	aborted    uint64
}

// shardDelta is one shard's slice of the run's server-side activity.
type shardDelta struct {
	shard              int
	batches, requests  uint64
	committed, aborted uint64
	abortRatio         float64
}

func (r *genResult) throughput() float64 {
	if r.wall <= 0 {
		return 0
	}
	return float64(r.ops) / r.wall.Seconds()
}

// driver owns the shared workload state across issuing goroutines.
type driver struct {
	cfg genCfg
	cl  *client.Client

	// start anchors the phases workload's schedule: which third of the
	// run a goroutine is in decides the op mix it issues. Set by runLoad
	// right before the issuing goroutines launch.
	start time.Time

	adds     atomic.Int64 // counter workload: sum of issued deltas
	pushed   atomic.Int64
	popped   atomic.Int64
	accepted atomic.Int64
	rejected atomic.Int64
	mapPuts  atomic.Int64

	// txmix state: queue pairs for atomic transfers (cross-shard pairs
	// preferred — the ordered-commit path — with same-shard fallback),
	// and acked-transfer / CAS tallies for the conservation verifiers.
	txPairs    [][2]string
	txPushed   atomic.Int64
	txPopped   atomic.Int64
	casApplied atomic.Int64

	// crossshard state: acctPartners[i] is the transfer partner of
	// ledger map i, on a different shard whenever one exists.
	acctPartners []int

	// hotkey state: the zipfian CDF over the key-space, rank 0 hottest.
	// Built once in setup and only read afterwards, so every issuing
	// goroutine shares it without synchronization.
	hotCDF []float64

	// pipeline tallies (D45): produced/acked mirror the store's own
	// produced/done counters (each moved in the same envelope as its
	// queue mutation); abandoned counts leases deliberately walked away
	// from for the reaper to requeue.
	pipeProduced  atomic.Int64
	pipeAcked     atomic.Int64
	pipeAbandoned atomic.Int64

	// base snapshots the server state right after setup so verify()
	// compares deltas: a long-lived pnstmd carries counters and queue
	// contents from earlier runs.
	base struct {
		mapLen   int64
		queues   int64
		counter  int64
		sold     int64
		revenue  int64
		txQueues int64
		pipeDone int64
	}
}

const (
	mapName     = "bench:m"
	counterName = "bench:hits"
	stockName   = "bench:stock"
	soldName    = "bench:sold"
	revenueName = "bench:revenue"

	// metaName records each setup's provisioning epoch in the store
	// itself (durably, on a persistent server): the sold/revenue
	// baselines at the moment stock was re-provisioned, and the stock
	// total. -recovery-check reads these back, so its conservation law
	// holds across restarts AND across repeated load runs on one data
	// dir — the law is over the deltas since the last provisioning.
	metaName = "bench:meta"

	// txmix: CAS slots live in their own map (guard-contended version
	// counters) and transfers move elements between txQueueName queues.
	casMapName = "bench:cas"
	casSlots   = 64

	// crossshard: an account ledger spread over acctMaps maps (hashing
	// to different shards on a sharded server) with acctPerMap balances
	// each. Every transfer is a guarded three-op envelope between TWO
	// maps — on distinct shards whenever the layout allows — so the
	// workload hammers the cross-shard ordered-commit path while the
	// ledger total stays a closed-form constant.
	acctMaps    = 8
	acctPerMap  = 16
	acctInitial = int64(1000)
)

func queueName(i int) string   { return fmt.Sprintf("bench:q%d", i) }
func keyName(i int) string     { return fmt.Sprintf("k%06d", i) }
func skuName(i int) string     { return fmt.Sprintf("sku%03d", i) }
func txQueueName(i int) string { return fmt.Sprintf("bench:txq%d", i) }
func casKey(i int) string      { return fmt.Sprintf("slot%02d", i) }
func acctMapName(i int) string { return fmt.Sprintf("bench:acct%d", i) }
func acctKeyName(j int) string { return fmt.Sprintf("acct%02d", j) }

// txQueueNames is the txmix transfer-queue pool: four queues per
// configured -queues unit, so co-sharded partners usually exist and
// sibling transfers in one batch usually hit distinct pairs.
func (c *genCfg) txQueueNames() []string {
	names := make([]string, 4*c.queues)
	for i := range names {
		names[i] = txQueueName(i)
	}
	return names
}

// pairTxQueues pairs the transfer queues, preferring partners on
// DIFFERENT shards: a mutating two-queue envelope spanning shards
// exercises the cross-shard ordered-commit path, which is exactly the
// machinery the txmix conservation ledger should be stressing (before
// D29 the preference was inverted — the server refused cross-shard
// mutators). Deterministic: queues are grouped per shard in name
// order and the two largest groups (lowest shard id on ties) donate
// each pair, so one seed always drives one pairing. Leftovers pair
// within their shard; a final odd queue pairs with itself — a
// self-transfer conserves just the same.
func pairTxQueues(names []string, shards int) [][2]string {
	byShard := make([][]string, shards)
	for _, n := range names {
		sh := stmlib.ShardIndex(n, shards)
		byShard[sh] = append(byShard[sh], n)
	}
	var pairs [][2]string
	for {
		// The two biggest non-empty groups, lowest shard id first.
		a, b := -1, -1
		for sh := range byShard {
			switch {
			case len(byShard[sh]) == 0:
			case a < 0 || len(byShard[sh]) > len(byShard[a]):
				a, b = sh, a
			case b < 0 || len(byShard[sh]) > len(byShard[b]):
				b = sh
			}
		}
		if b < 0 {
			break // zero or one shard still has queues: no cross pair left
		}
		pairs = append(pairs, [2]string{byShard[a][0], byShard[b][0]})
		byShard[a] = byShard[a][1:]
		byShard[b] = byShard[b][1:]
	}
	for _, group := range byShard {
		for i := 0; i+1 < len(group); i += 2 {
			pairs = append(pairs, [2]string{group[i], group[i+1]})
		}
		if len(group)%2 == 1 {
			last := group[len(group)-1]
			pairs = append(pairs, [2]string{last, last})
		}
	}
	return pairs
}

// acctPartnerOf picks ledger map i's transfer partner: the next map (in
// index order) living on a DIFFERENT shard, falling back to the next
// map regardless when every ledger map hashes to one shard (a 1-shard
// server). Pure and deterministic in (i, shards).
func acctPartnerOf(i, shards int) int {
	home := stmlib.ShardIndex(acctMapName(i), shards)
	for d := 1; d < acctMaps; d++ {
		j := (i + d) % acctMaps
		if stmlib.ShardIndex(acctMapName(j), shards) != home {
			return j
		}
	}
	return (i + 1) % acctMaps
}

// usesReadMap reports whether the workload touches the preloaded
// bench:m map (and so needs it provisioned and its length verified).
func (c *genCfg) usesReadMap() bool {
	switch c.workload {
	case "readmap", "mixed", "phases", "hotkey":
		return true
	}
	return false
}

// setup provisions the structures the run reads from.
func (d *driver) setup() error {
	c := d.cfg
	if c.usesReadMap() {
		for i := 0; i < c.keys; i++ {
			if err := d.cl.MapPut(mapName, keyName(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
				return fmt.Errorf("setup map: %w", err)
			}
		}
	}
	if c.runsCheckout() {
		for i := 0; i < c.skus; i++ {
			if err := d.cl.MapPutInt(stockName, skuName(i), c.stockPer); err != nil {
				return fmt.Errorf("setup stock: %w", err)
			}
		}
	}
	if c.workload == "txmix" {
		for i := 0; i < casSlots; i++ {
			if err := d.cl.MapPutInt(casMapName, casKey(i), 0); err != nil {
				return fmt.Errorf("setup cas slots: %w", err)
			}
		}
		// Pair queues across shards where possible (same-shard otherwise):
		// ask the server how many partitions it runs (1 when stats are
		// unavailable — a sharded server always answers stats).
		d.txPairs = pairTxQueues(c.txQueueNames(), d.serverShards())
	}
	if c.workload == "hotkey" {
		d.hotCDF = zipfCDF(c.keys, hotKeyExponent)
	}
	if c.workload == "pipeline" {
		if err := d.setupPipeline(); err != nil {
			return err
		}
	}
	if c.workload == "crossshard" {
		shards := d.serverShards()
		d.acctPartners = make([]int, acctMaps)
		for i := 0; i < acctMaps; i++ {
			d.acctPartners[i] = acctPartnerOf(i, shards)
			for j := 0; j < acctPerMap; j++ {
				if err := d.cl.MapPutInt(acctMapName(i), acctKeyName(j), acctInitial); err != nil {
					return fmt.Errorf("setup ledger: %w", err)
				}
			}
		}
		// Durable provisioning record, like the checkout meta: lets
		// -recovery-check re-derive the ledger's conservation law after
		// an out-of-process kill -9 with no memory of this run.
		for k, v := range map[string]int64{
			"acct_maps":    int64(acctMaps),
			"acct_per_map": int64(acctPerMap),
			"acct_total":   int64(acctMaps) * int64(acctPerMap) * acctInitial,
		} {
			if err := d.cl.MapPutInt(metaName, k, v); err != nil {
				return fmt.Errorf("setup ledger meta: %w", err)
			}
		}
	}
	if err := d.snapshotBaselines(); err != nil {
		return err
	}
	if c.runsCheckout() {
		for k, v := range map[string]int64{
			"sold0":       d.base.sold,
			"revenue0":    d.base.revenue,
			"skus":        int64(c.skus),
			"stock_total": int64(c.skus) * c.stockPer,
		} {
			if err := d.cl.MapPutInt(metaName, k, v); err != nil {
				return fmt.Errorf("setup meta: %w", err)
			}
		}
	}
	return nil
}

// serverShards asks the server how many engine partitions it runs (1
// when stats are unavailable — a sharded server always answers stats).
func (d *driver) serverShards() int {
	if st, err := d.cl.Stats(); err == nil && st.Shards > 0 {
		return int(st.Shards)
	}
	return 1
}

// snapshotBaselines records the post-setup server state the invariants
// are measured against. Stock is re-provisioned by setup, but counters
// and queues persist across runs on a long-lived server.
func (d *driver) snapshotBaselines() error {
	c := d.cfg
	var err error
	read := func(dst *int64, f func() (int64, error)) {
		if err != nil {
			return
		}
		*dst, err = f()
	}
	if c.usesReadMap() {
		read(&d.base.mapLen, func() (int64, error) { return d.cl.MapLen(mapName) })
	}
	if c.workload == "queue" || c.workload == "mixed" {
		for i := 0; i < c.queues; i++ {
			i := i
			var n int64
			read(&n, func() (int64, error) { return d.cl.QueueLen(queueName(i)) })
			d.base.queues += n
		}
	}
	if c.workload == "counter" || c.workload == "mixed" || c.workload == "phases" {
		read(&d.base.counter, func() (int64, error) { return d.cl.CounterSum(counterName) })
	}
	if c.runsCheckout() {
		read(&d.base.sold, func() (int64, error) { return d.cl.CounterSum(soldName) })
		read(&d.base.revenue, func() (int64, error) { return d.cl.CounterSum(revenueName) })
	}
	if c.workload == "txmix" {
		for _, q := range c.txQueueNames() {
			q := q
			var n int64
			read(&n, func() (int64, error) { return d.cl.QueueLen(q) })
			d.base.txQueues += n
		}
	}
	if err != nil {
		return fmt.Errorf("setup baselines: %w", err)
	}
	return nil
}

// op issues one operation of the configured workload and reports whether
// it counted (errors are tallied by the caller).
func (d *driver) op(rng *rand.Rand) error {
	switch d.cfg.workload {
	case "readmap":
		return d.opReadMap(rng)
	case "queue":
		return d.opQueue(rng)
	case "counter":
		return d.opCounter(rng)
	case "checkout":
		return d.opCheckout(rng)
	case "mixed":
		switch r := rng.Intn(10); {
		case r < 4:
			return d.opReadMap(rng)
		case r < 6:
			return d.opCounter(rng)
		case r < 8:
			return d.opQueue(rng)
		default:
			return d.opCheckout(rng)
		}
	case "txmix":
		switch r := rng.Intn(10); {
		case r < 4:
			return d.opCheckout(rng) // rides the generic envelope path
		case r < 7:
			return d.opTxTransfer(rng)
		case r < 9:
			return d.opTxCas(rng)
		default:
			return d.opTxAudit(rng)
		}
	case "crossshard":
		if rng.Intn(10) == 0 {
			return d.opAcctRead(rng)
		}
		return d.opAcctTransfer(rng)
	case "phases":
		return d.opPhases(rng)
	case "hotkey":
		return d.opHotKey(rng)
	case "pipeline":
		return d.opPipeline(rng)
	}
	return fmt.Errorf("unreachable workload")
}

// hotKeyExponent shapes the hotkey workload's zipfian key popularity:
// with 1.2 the rank-0 key draws roughly a fifth of all traffic on a
// 1024-key space, so a handful of keys dominate the conflict aborts —
// the distribution /debug/hotkeys exists to expose.
const hotKeyExponent = 1.2

// hotKeyWriteFrac is the hotkey workload's write fraction: write-heavy
// on purpose, because only writes conflict and the profiler attributes
// conflicts.
const hotKeyWriteFrac = 0.8

// zipfCDF precomputes the cumulative distribution of P(rank=i) ∝
// 1/(i+1)^s over n ranks. Shared read-only across goroutines; each op
// inverts it with a binary search on one uniform draw.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

// opHotKey issues zipfian-skewed traffic over the preloaded key-space:
// mostly overwrites, some point reads. Batch siblings writing the same
// hot key's bucket conflict and abort-retry — each abort lands in the
// flight recorder attributed to `bench:m:k000000`-style tags, which is
// exactly the signal the hot-key profiler ranks. Writes stay inside
// the preloaded keys, so the readmap MapLen invariant holds.
func (d *driver) opHotKey(rng *rand.Rand) error {
	i := sort.SearchFloat64s(d.hotCDF, rng.Float64())
	if i >= len(d.hotCDF) {
		i = len(d.hotCDF) - 1
	}
	key := keyName(i)
	if rng.Float64() >= hotKeyWriteFrac {
		_, _, err := d.cl.MapGet(mapName, key)
		return err
	}
	d.mapPuts.Add(1)
	return d.cl.MapPut(mapName, key, []byte(fmt.Sprintf("v%d", rng.Int())))
}

// phasesHotKeys is the write-hot phase's key-space: small enough that
// overlapping writer batches conflict constantly — the livelock cliff
// the adaptive controller must back away from — but not so small that
// a pinned-static pipelining server has literally zero chance of
// limping through (the A/B harness has a timeout for that case, but a
// leg that completes measures more).
const phasesHotKeys = 256

// opPhases shifts the op mix with wall-clock thirds of the run:
// read-heavy (pipelining pays, the controller should walk MaxInflight
// up) → write-hot on a tiny key-space (overlap livelocks, the
// controller must back off) → mixed point traffic. No single static
// MaxInflight is right for all three — the adaptive-vs-static A/B
// (-compare -adaptive) runs exactly this workload.
func (d *driver) opPhases(rng *rand.Rand) error {
	third := d.cfg.duration / 3
	elapsed := time.Since(d.start)
	switch {
	case elapsed < third: // read-heavy
		return d.opReadMapIn(rng, d.cfg.keys, 0.97)
	case elapsed < 2*third: // write-hot on few keys
		hot := phasesHotKeys
		if hot > d.cfg.keys {
			hot = d.cfg.keys
		}
		return d.opReadMapIn(rng, hot, 0.30)
	default: // mixed
		if rng.Intn(10) < 7 {
			return d.opReadMapIn(rng, d.cfg.keys, 0.80)
		}
		return d.opCounter(rng)
	}
}

// opAcctTransfer moves a few units between balances in two ledger maps
// — a guarded three-op envelope that, on a sharded server, spans two
// shards and commits through the cross-shard ordered-commit path. A
// guard failure (source too poor) is the expected app-level outcome
// under drain, tallied as a rejection; either way the ledger total is
// untouched or conserved, never split.
func (d *driver) opAcctTransfer(rng *rand.Rand) error {
	src := rng.Intn(acctMaps)
	dst := d.acctPartners[src]
	srcKey := acctKeyName(rng.Intn(acctPerMap))
	dstKey := acctKeyName(rng.Intn(acctPerMap))
	amt := int64(1 + rng.Intn(5))
	_, err := d.cl.Txn().
		AssertGE(acctMapName(src), srcKey, amt).
		MapAddInt(acctMapName(src), srcKey, -amt).
		MapAddInt(acctMapName(dst), dstKey, amt).
		Commit()
	var aborted *client.ErrTxAborted
	if errors.As(err, &aborted) {
		d.rejected.Add(1)
		return nil
	}
	return err
}

// opAcctRead is the read side: one balance point-read plus a read-only
// two-map envelope (which fans on a sharded server).
func (d *driver) opAcctRead(rng *rand.Rand) error {
	src := rng.Intn(acctMaps)
	dst := d.acctPartners[src]
	_, err := d.cl.Txn().
		MapGet(acctMapName(src), acctKeyName(rng.Intn(acctPerMap))).
		MapGet(acctMapName(dst), acctKeyName(rng.Intn(acctPerMap))).
		Commit()
	return err
}

// opTxTransfer atomically moves one element between two queues (pop A,
// push B in ONE envelope) — usually on different shards, riding the
// cross-shard ordered commit. A pop that finds the source
// empty still pushes — the verifier's ledger accounts for both cases,
// so total elements across the transfer pool obey
// base + pushed − popped exactly.
func (d *driver) opTxTransfer(rng *rand.Rand) error {
	pair := d.txPairs[rng.Intn(len(d.txPairs))]
	res, err := d.cl.Txn().
		QueuePop(pair[0]).
		QueuePush(pair[1], server.EncodeInt64(rng.Int63())).
		Commit()
	if err != nil {
		return err
	}
	d.txPushed.Add(1)
	if res.Found(0) {
		d.txPopped.Add(1)
	}
	return nil
}

// opTxCas is the optimistic-concurrency pattern the guard ops exist
// for: read a version slot, then commit AssertEq(old) + Put(old+1) in
// one envelope. A lost race comes back as ErrTxAborted — the app-level
// conflict signal, tallied as a rejection, never an error.
func (d *driver) opTxCas(rng *rand.Rand) error {
	slot := casKey(rng.Intn(casSlots))
	old, ok, err := d.cl.MapGetInt(casMapName, slot)
	if err != nil {
		return err
	}
	tx := d.cl.Txn()
	if ok {
		tx.AssertEqInt(casMapName, slot, old)
	} else {
		tx.AssertEq(casMapName, slot, nil)
	}
	_, err = tx.MapPutInt(casMapName, slot, old+1).Commit()
	var aborted *client.ErrTxAborted
	if errors.As(err, &aborted) {
		d.rejected.Add(1)
		return nil
	}
	if err != nil {
		return err
	}
	d.casApplied.Add(1)
	return nil
}

// opTxAudit is a read-only envelope spanning structures (and, on a
// sharded server, shards — it exercises the read-only fan): point
// reads, lengths and a globally-summed counter guard.
func (d *driver) opTxAudit(rng *rand.Rand) error {
	pair := d.txPairs[rng.Intn(len(d.txPairs))]
	_, err := d.cl.Txn().
		MapGet(casMapName, casKey(rng.Intn(casSlots))).
		MapGet(stockName, skuName(rng.Intn(d.cfg.skus))).
		QueueLen(pair[0]).
		QueueLen(pair[1]).
		CounterSum(soldName).
		AssertCounterGE(soldName, 0).
		Commit()
	return err
}

func (d *driver) opReadMap(rng *rand.Rand) error {
	return d.opReadMapIn(rng, d.cfg.keys, d.cfg.readFrac)
}

// opReadMapIn is opReadMap over an explicit key-space and read fraction
// (the phases workload varies both mid-run). Writes stay inside the
// preloaded keys, so MapLen is invariant for every caller.
func (d *driver) opReadMapIn(rng *rand.Rand, keys int, readFrac float64) error {
	key := keyName(rng.Intn(keys))
	if rng.Float64() < readFrac {
		_, _, err := d.cl.MapGet(mapName, key)
		return err
	}
	d.mapPuts.Add(1)
	return d.cl.MapPut(mapName, key, []byte(fmt.Sprintf("v%d", rng.Int())))
}

func (d *driver) opQueue(rng *rand.Rand) error {
	q := queueName(rng.Intn(d.cfg.queues))
	// Bias pushes slightly so pops usually find elements; the imbalance
	// is reconciled against QueueLen at verify time.
	if rng.Intn(5) < 3 {
		if err := d.cl.QueuePush(q, server.EncodeInt64(rng.Int63())); err != nil {
			return err
		}
		d.pushed.Add(1)
		return nil
	}
	_, ok, err := d.cl.QueuePop(q)
	if err != nil {
		return err
	}
	if ok {
		d.popped.Add(1)
	}
	return nil
}

func (d *driver) opCounter(rng *rand.Rand) error {
	if rng.Intn(64) == 0 {
		_, err := d.cl.CounterSum(counterName)
		return err
	}
	delta := int64(1 + rng.Intn(4))
	if err := d.cl.CounterAdd(counterName, delta); err != nil {
		return err
	}
	d.adds.Add(delta)
	return nil
}

func (d *driver) opCheckout(rng *rand.Rand) error {
	nLines := 1 + rng.Intn(3)
	lines := make([]server.CheckoutLine, 0, nLines)
	seen := make(map[int]bool, nLines)
	var units int64
	for len(lines) < nLines {
		s := rng.Intn(d.cfg.skus)
		if seen[s] {
			continue
		}
		seen[s] = true
		qty := int64(1 + rng.Intn(3))
		lines = append(lines, server.CheckoutLine{SKU: skuName(s), Qty: qty})
		units += qty
	}
	ok, _, err := d.cl.Checkout(stockName, server.Checkout{
		Sold:    soldName,
		Revenue: revenueName,
		Cents:   units * 100,
		Lines:   lines,
	})
	if err != nil {
		return err
	}
	if ok {
		d.accepted.Add(1)
	} else {
		d.rejected.Add(1)
	}
	return nil
}

// verify checks the workload's closed-form invariants against the
// server's final state and returns the violations.
func (d *driver) verify() []string {
	var out []string
	c := d.cfg
	fail := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }

	if c.usesReadMap() {
		n, err := d.cl.MapLen(mapName)
		if err != nil {
			fail("map len: %v", err)
		} else if n != d.base.mapLen {
			fail("map len %d, want %d (puts only overwrite preloaded keys)", n, d.base.mapLen)
		}
	}
	if c.workload == "queue" || c.workload == "mixed" {
		var remaining int64
		for i := 0; i < c.queues; i++ {
			n, err := d.cl.QueueLen(queueName(i))
			if err != nil {
				fail("queue len: %v", err)
				break
			}
			remaining += n
		}
		if want := d.base.queues + d.pushed.Load() - d.popped.Load(); remaining != want {
			fail("queues hold %d elements, want baseline+pushed−popped = %d", remaining, want)
		}
	}
	if c.workload == "counter" || c.workload == "mixed" || c.workload == "phases" {
		sum, err := d.cl.CounterSum(counterName)
		if err != nil {
			fail("counter sum: %v", err)
		} else if sum != d.base.counter+d.adds.Load() {
			fail("counter = %d, want %d (baseline + issued adds)", sum, d.base.counter+d.adds.Load())
		}
	}
	if c.workload == "txmix" {
		// Transfer conservation: every committed envelope pushed exactly
		// once and popped at most once, atomically.
		var remaining int64
		for _, q := range c.txQueueNames() {
			n, err := d.cl.QueueLen(q)
			if err != nil {
				fail("tx queue len: %v", err)
				break
			}
			remaining += n
		}
		if want := d.base.txQueues + d.txPushed.Load() - d.txPopped.Load(); remaining != want {
			fail("transfer queues hold %d elements, want baseline+pushed−popped = %d", remaining, want)
		}
		// CAS ledger: each slot only ever moves by guarded +1, so the pool
		// total equals the number of wins the clients tallied.
		var sum int64
		for i := 0; i < casSlots; i++ {
			v, ok, err := d.cl.MapGetInt(casMapName, casKey(i))
			if err != nil || !ok {
				fail("cas slot %s: ok=%v err=%v", casKey(i), ok, err)
				return out
			}
			sum += v
		}
		if sum != d.casApplied.Load() {
			fail("cas slots total %d, want %d applied increments", sum, d.casApplied.Load())
		}
	}
	if c.workload == "crossshard" {
		// The strongest law in the suite: transfers are zero-sum and the
		// run issues nothing else, so the recovered ledger total equals
		// the provisioned total EXACTLY — any torn cross-shard commit
		// (one shard's slice applied without the other) shows up here.
		var total int64
		for i := 0; i < acctMaps; i++ {
			for j := 0; j < acctPerMap; j++ {
				v, ok, err := d.cl.MapGetInt(acctMapName(i), acctKeyName(j))
				if err != nil || !ok {
					fail("ledger %s/%s: ok=%v err=%v", acctMapName(i), acctKeyName(j), ok, err)
					return out
				}
				if v < 0 {
					fail("ledger %s/%s overdrawn: %d (a guard was bypassed)", acctMapName(i), acctKeyName(j), v)
				}
				total += v
			}
		}
		if want := int64(acctMaps) * int64(acctPerMap) * acctInitial; total != want {
			fail("ledger total %d, want %d: a cross-shard transfer split", total, want)
		}
	}
	if c.workload == "pipeline" {
		out = append(out, d.verifyPipeline()...)
	}
	if c.runsCheckout() {
		var remaining int64
		for i := 0; i < c.skus; i++ {
			v, ok, err := d.cl.MapGetInt(stockName, skuName(i))
			if err != nil || !ok {
				fail("stock %s: ok=%v err=%v", skuName(i), ok, err)
				return out
			}
			if v < 0 {
				fail("stock %s oversold: %d", skuName(i), v)
			}
			remaining += v
		}
		soldAbs, err := d.cl.CounterSum(soldName)
		if err != nil {
			fail("sold sum: %v", err)
			return out
		}
		revenueAbs, err := d.cl.CounterSum(revenueName)
		if err != nil {
			fail("revenue sum: %v", err)
			return out
		}
		// Stock was re-provisioned by setup; sold/revenue persist, so the
		// conservation law is over this run's deltas.
		sold := soldAbs - d.base.sold
		revenue := revenueAbs - d.base.revenue
		if total, want := remaining+sold, int64(c.skus)*c.stockPer; total != want {
			fail("conservation violated: remaining %d + sold %d = %d, want %d", remaining, sold, total, want)
		}
		if revenue != sold*100 {
			fail("revenue %d inconsistent with %d units sold", revenue, sold)
		}
	}
	return out
}

// runLoad drives the configured workload against the client and collects
// the result. The server-stats delta (batching behaviour, abort rate) is
// captured when the server answers OpStats.
func runLoad(cl *client.Client, cfg genCfg) (*genResult, error) {
	d := &driver{cfg: cfg, cl: cl}
	if err := d.setup(); err != nil {
		return nil, err
	}

	before, statsOK := server.ServerStats{}, true
	if st, err := cl.Stats(); err == nil {
		before = st
	} else {
		statsOK = false
	}

	res := &genResult{}
	var mu sync.Mutex
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	d.start = start
	var wg sync.WaitGroup
	for g := 0; g < cfg.concurrency; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(g)*7919))
			lats := make([]time.Duration, 0, 4096)
			var ops, errs int64

			// Open loop: each goroutine fires at rate/concurrency and
			// measures from the scheduled instant, so queueing delay under
			// overload shows up in the percentiles. Closed loop (rate 0):
			// back-to-back, measured from send.
			var interval time.Duration
			next := time.Now()
			if cfg.rate > 0 {
				interval = time.Duration(float64(time.Second) * float64(cfg.concurrency) / cfg.rate)
			}
			for {
				now := time.Now()
				if now.After(deadline) {
					break
				}
				issuedAt := now
				if interval > 0 {
					if next.After(now) {
						time.Sleep(next.Sub(now))
					}
					issuedAt = next
					next = next.Add(interval)
				}
				if err := d.op(rng); err != nil {
					errs++
					// A dead connection fails every subsequent op; stop
					// instead of spinning on it.
					if time.Now().After(deadline) || errs > 100 {
						break
					}
					continue
				}
				ops++
				lats = append(lats, time.Since(issuedAt))
			}
			mu.Lock()
			res.ops += ops
			res.errs += errs
			res.latencies = append(res.latencies, lats...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.wall = time.Since(start)
	res.rejected = d.rejected.Load()
	res.violations = d.verify()

	if statsOK {
		if after, err := cl.Stats(); err == nil {
			res.statsOK = true
			res.runtimeUsed = after
			res.batchDelta = after.Batches - before.Batches
			res.reqDelta = after.Requests - before.Requests
			rd := after.Runtime.Sub(before.Runtime)
			res.runtimeStat = serverDelta{
				abortRatio: rd.AbortRate(),
				committed:  rd.Committed,
				aborted:    rd.Aborted,
			}
			if res.batchDelta > 0 {
				res.runtimeStat.meanBatch = float64(res.reqDelta) / float64(res.batchDelta)
			}
			for i, sh := range after.PerShard {
				var prev server.ShardStats
				if i < len(before.PerShard) {
					prev = before.PerShard[i]
				}
				srd := sh.Runtime.Sub(prev.Runtime)
				res.perShard = append(res.perShard, shardDelta{
					shard:      sh.Shard,
					batches:    sh.Batches - prev.Batches,
					requests:   sh.Requests - prev.Requests,
					committed:  srd.Committed,
					aborted:    srd.Aborted,
					abortRatio: srd.AbortRate(),
				})
			}
		}
	}
	return res, nil
}
