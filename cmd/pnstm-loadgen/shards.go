package main

import (
	"fmt"
	"os"
	"time"

	"pnstm/client"
	"pnstm/internal/bench"
	"pnstm/server"
	"pnstm/stmlib"
)

// Shard-scaling A/B (-compare -shards N): the same workload against a
// 1-shard and an N-shard durable server, both fsyncing once per group
// commit. With one shard every group commit rides ONE pipeline — batch,
// log record, fsync, ack, next batch — so commit latency bounds
// throughput however many cores the box has. With N shards each
// partition owns a private runtime, batcher and WAL, so N group commits
// (fsyncs included) run fully in parallel and throughput scales with
// the pipeline count until the disk or the cores saturate.
//
// -syncdelay adds an artificial latency floor to every fsync
// (wal.Options.SyncDelay): it simulates slower stable storage
// deterministically, which makes the pipeline count — not the test
// box's disk speed — the measured variable. With it the expected ratio
// is ≈ min(N, concurrency/batch-formation); -min-shard-speedup turns
// the measurement into a pass/fail gate for CI.
func runShardCompare(cfg genCfg, workers, maxBatch, shards int, syncDelay time.Duration, minSpeedup float64, jsonDir, name string) error {
	type mode struct {
		label  string
		shards int
	}
	modes := []mode{
		{"shards-1", 1},
		{fmt.Sprintf("shards-%d", shards), shards},
	}
	reg := stmlib.RegistryConfig{MapBuckets: 4 * cfg.keys}
	results := make(map[string]*genResult, len(modes))
	fsyncs := make(map[string]float64, len(modes))
	for _, m := range modes {
		dir, err := os.MkdirTemp("", "pnstm-shards-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		s, err := server.New(server.Config{
			Addr:         "127.0.0.1:0",
			Shards:       m.shards,
			Workers:      workers,
			MaxBatch:     maxBatch,
			SharedReads:  true,
			Registry:     reg,
			DataDir:      dir,
			Fsync:        true,
			WALSyncDelay: syncDelay,
		})
		if err != nil {
			return err
		}
		if err := s.Listen(); err != nil {
			return err
		}
		go s.Serve() //nolint:errcheck // torn down via Close below
		cl, err := client.Connect(client.Options{Addrs: []string{s.Addr().String()}, PoolSize: cfg.conns})
		if err != nil {
			s.Close()
			return err
		}
		fmt.Printf("== %s (workers=%d/shard batch=%d fsync=on syncdelay=%v)\n", m.label, workers, maxBatch, syncDelay)
		res, err := runLoad(cl, cfg)
		fsyncs[m.label] = float64(s.WALStats().Syncs)
		cl.Close()
		s.Close()
		if err != nil {
			return err
		}
		printResult(cfg, res)
		results[m.label] = res
	}

	single, sharded := results["shards-1"], results[modes[1].label]
	speedup := 0.0
	if single.throughput() > 0 {
		speedup = sharded.throughput() / single.throughput()
	}
	fmt.Printf("== %d-shard vs 1-shard group commit: %.2fx throughput (%d parallel commit pipelines)\n",
		shards, speedup, shards)

	if jsonDir != "" {
		if name == "" {
			name = "loadgen-" + cfg.workload + "-shards"
		}
		metrics := map[string]float64{
			"single_throughput_per_sec":  single.throughput(),
			"sharded_throughput_per_sec": sharded.throughput(),
			"shard_speedup_ratio":        speedup,
			"single_ops":                 float64(single.ops),
			"sharded_ops":                float64(sharded.ops),
			"single_wal_fsyncs":          fsyncs["shards-1"],
			"sharded_wal_fsyncs":         fsyncs[modes[1].label],
		}
		for _, sh := range sharded.perShard {
			metrics[fmt.Sprintf("shard%d_batches", sh.shard)] = float64(sh.batches)
			metrics[fmt.Sprintf("shard%d_requests", sh.shard)] = float64(sh.requests)
		}
		for k, v := range bench.LatencyMetrics(sharded.latencies) {
			metrics["sharded_"+k] = v
		}
		for k, v := range bench.LatencyMetrics(single.latencies) {
			metrics["single_"+k] = v
		}
		rep := &bench.Report{
			Name: name,
			Kind: "loadgen",
			Config: map[string]any{
				"workload":    cfg.workload,
				"concurrency": cfg.concurrency,
				"conns":       cfg.conns,
				"duration":    cfg.duration.String(),
				"workers":     workers,
				"max_batch":   maxBatch,
				"shards":      shards,
				"syncdelay":   syncDelay.String(),
				"seed":        cfg.seed,
			},
			Metrics: metrics,
		}
		for _, res := range []*genResult{single, sharded} {
			if len(res.violations) > 0 {
				rep.Notes = append(rep.Notes, res.violations...)
			}
		}
		if len(rep.Notes) == 0 {
			rep.Notes = []string{"invariants ok in both modes"}
		}
		path, err := rep.WriteFile(jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("report: %s\n", path)
	}
	if len(single.violations) > 0 || len(sharded.violations) > 0 || single.errs > 0 || sharded.errs > 0 {
		return fmt.Errorf("invariant violations or request errors (see above)")
	}
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("shard scaling regressed: %d shards deliver %.2fx the 1-shard throughput, want ≥ %.2fx", shards, speedup, minSpeedup)
	}
	return nil
}
