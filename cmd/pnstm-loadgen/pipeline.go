package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pnstm/client"
	"pnstm/internal/bench"
	"pnstm/server"
	"pnstm/stmlib"
)

// The pipeline workload drives the second-generation structures (D45)
// together, the way a real service composes them:
//
//   - leaderboard: a sorted map of players, score overwrites racing
//     top-K range reads — the parallel-subrange scan path under writer
//     churn
//   - sessions: TTL'd map entries churning on short deadlines, plus a
//     set of permanent entries that must never vanish and a set written
//     pre-expired that must never be readable (or resurrect after a
//     crash)
//   - work queue: producers push jobs, consumers take leases and ack —
//     MOSTLY; a fraction abandon their lease on purpose so the server's
//     reaper requeues it (at-least-once redelivery)
//
// Every push rides an envelope with a produced-counter increment and
// every ack rides one with a done-counter increment, so the store
// carries its own ledger: produced − done == queued + leased holds
// EXACTLY at any quiescent point — live at the end of a run, and in
// whatever state a kill -9 recovered (-recovery-check re-derives it
// from the durable meta with no memory of the run). An ack whose lease
// the reaper already reclaimed aborts its whole envelope, so a
// redelivered job can never be counted done twice.

const (
	boardName     = "bench:board"
	sessionsName  = "bench:sessions"
	producedName  = "bench:pipe:produced"
	doneName      = "bench:pipe:done"
	permSessions  = 16 // provisioned without TTL: must survive everything
	expSessions   = 16 // provisioned already expired: must never be readable
	pipeLeaseTTL  = 150 * time.Millisecond
	pipeTopK      = 10
	sessionSpace  = 256 // churned session key-space
	pipeAbandonIn = 5   // 1 in N consumed leases is abandoned to the reaper
)

func playerKey(i int) string      { return fmt.Sprintf("player%05d", i) }
func pipeQueueName(i int) string  { return fmt.Sprintf("bench:pipe:q%d", i) }
func sessionKey(i int) string     { return fmt.Sprintf("sess%04d", i) }
func permSessionKey(i int) string { return fmt.Sprintf("perm%02d", i) }
func expSessionKey(i int) string  { return fmt.Sprintf("exp%02d", i) }

// setupPipeline provisions the board, the session sets and the durable
// meta -recovery-check reads back after a crash.
func (d *driver) setupPipeline() error {
	c := d.cfg
	for i := 0; i < c.keys; i++ {
		if err := d.cl.SortedPut(boardName, playerKey(i), server.EncodeInt64(int64(i))); err != nil {
			return fmt.Errorf("setup board: %w", err)
		}
	}
	now := time.Now()
	for i := 0; i < permSessions; i++ {
		if err := d.cl.MapPut(sessionsName, permSessionKey(i), []byte("permanent")); err != nil {
			return fmt.Errorf("setup sessions: %w", err)
		}
	}
	for i := 0; i < expSessions; i++ {
		if err := d.cl.MapPutTTL(sessionsName, expSessionKey(i), []byte("dead"), now.Add(-time.Hour).UnixNano()); err != nil {
			return fmt.Errorf("setup expired sessions: %w", err)
		}
	}
	// Durable provisioning record: board_players doubles as the marker
	// that a pipeline load ran on this data dir.
	for k, v := range map[string]int64{
		"board_players": int64(c.keys),
		"pipe_queues":   int64(c.queues),
		"perm_sessions": permSessions,
		"exp_sessions":  expSessions,
	} {
		if err := d.cl.MapPutInt(metaName, k, v); err != nil {
			return fmt.Errorf("setup pipeline meta: %w", err)
		}
	}
	var err error
	if d.base.pipeDone, err = d.cl.CounterSum(doneName); err != nil {
		return fmt.Errorf("setup pipeline baselines: %w", err)
	}
	return nil
}

// opPipeline issues one operation of the pipeline mix.
func (d *driver) opPipeline(rng *rand.Rand) error {
	switch r := rng.Intn(10); {
	case r < 2: // score overwrite on a preloaded player
		return d.cl.SortedPut(boardName, playerKey(rng.Intn(d.cfg.keys)), server.EncodeInt64(rng.Int63n(1<<20)))
	case r < 4: // top-K read racing the writers
		es, err := d.cl.RangeScan(boardName, "", "", pipeTopK)
		if err != nil {
			return err
		}
		for i := 1; i < len(es); i++ {
			if es[i-1].Key >= es[i].Key {
				return fmt.Errorf("top-K scan out of order: %q >= %q", es[i-1].Key, es[i].Key)
			}
		}
		return nil
	case r < 5: // session churn: short-TTL write
		deadline := time.Now().Add(time.Duration(100+rng.Intn(900)) * time.Millisecond)
		return d.cl.MapPutTTL(sessionsName, sessionKey(rng.Intn(sessionSpace)),
			[]byte("tok"), deadline.UnixNano())
	case r < 6: // session read (expired keys must read as absent; no tally)
		_, _, err := d.cl.MapGet(sessionsName, sessionKey(rng.Intn(sessionSpace)))
		return err
	case r < 8: // produce: push + produced-counter, one atomic envelope
		q := pipeQueueName(rng.Intn(d.cfg.queues))
		_, err := d.cl.Txn().
			QueuePush(q, server.EncodeInt64(rng.Int63())).
			CounterAdd(producedName, 1).
			Commit()
		if err != nil {
			return err
		}
		d.pipeProduced.Add(1)
		return nil
	default: // consume under lease; mostly ack, sometimes abandon
		q := pipeQueueName(rng.Intn(d.cfg.queues))
		id, _, ok, err := d.cl.LeaseConsume(q, time.Now().Add(pipeLeaseTTL).UnixNano())
		if err != nil {
			return err
		}
		if !ok {
			return nil // queue drained; the op still counts
		}
		if rng.Intn(pipeAbandonIn) == 0 {
			d.pipeAbandoned.Add(1) // walk away; the reaper requeues it
			return nil
		}
		_, err = d.cl.Txn().
			LeaseAck(q, id).
			CounterAdd(doneName, 1).
			Commit()
		var aborted *client.ErrTxAborted
		if errors.As(err, &aborted) {
			// The lease outlived its deadline and the reaper reclaimed it
			// before the ack landed: the job redelivers to someone else,
			// and crucially the done counter did NOT move.
			d.rejected.Add(1)
			return nil
		}
		if err != nil {
			return err
		}
		d.pipeAcked.Add(1)
		return nil
	}
}

// verifyPipeline checks the pipeline invariants against the final
// server state.
func (d *driver) verifyPipeline() []string {
	var out []string
	c := d.cfg
	fail := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }

	// Board: score writes only overwrite provisioned players, so the
	// physical population is exact, and a scan comes back ordered.
	if cnt, err := d.cl.RangeCount(boardName, "", ""); err != nil {
		fail("board count: %v", err)
	} else if cnt != int64(c.keys) {
		fail("board holds %d players, want %d", cnt, c.keys)
	}
	if es, err := d.cl.RangeScan(boardName, "", "", pipeTopK); err != nil {
		fail("board top-K: %v", err)
	} else {
		want := pipeTopK
		if c.keys < want {
			want = c.keys
		}
		if len(es) != want {
			fail("board top-K returned %d entries, want %d", len(es), want)
		}
	}

	// Queue-lease conservation, the store's own ledger: every element
	// ever pushed bumped produced in the same envelope, every element
	// ever destroyed bumped done likewise, so whatever subset of
	// deliveries, abandons and reclaims happened, produced − done must
	// equal what the queues still hold (queued + leased).
	produced, err := d.cl.CounterSum(producedName)
	if err != nil {
		fail("produced sum: %v", err)
		return out
	}
	done, err := d.cl.CounterSum(doneName)
	if err != nil {
		fail("done sum: %v", err)
		return out
	}
	var held int64
	for i := 0; i < c.queues; i++ {
		res, err := d.cl.Txn().QueueLen(pipeQueueName(i)).LeaseLen(pipeQueueName(i)).Commit()
		if err != nil {
			fail("pipe queue %d: %v", i, err)
			return out
		}
		held += res.Num(0) + res.Num(1)
	}
	if produced-done != held {
		fail("lease conservation violated: produced %d − done %d = %d, but queues hold %d (queued+leased)",
			produced, done, produced-done, held)
	}
	// Exactly-once acks: the done counter moved once per ack THIS client
	// got committed — a reclaimed lease's ack aborted with its counter op.
	if got, want := done-d.base.pipeDone, d.pipeAcked.Load(); got != want {
		fail("done counter moved %d, want %d acked (an ack double-counted or vanished)", got, want)
	}

	// Sessions: the permanent set survives anything; the pre-expired set
	// must never become readable again.
	for i := 0; i < permSessions; i++ {
		if _, ok, err := d.cl.MapGet(sessionsName, permSessionKey(i)); err != nil || !ok {
			fail("permanent session %s gone: ok=%v err=%v", permSessionKey(i), ok, err)
		}
	}
	for i := 0; i < expSessions; i++ {
		if _, ok, err := d.cl.MapGet(sessionsName, expSessionKey(i)); err != nil {
			fail("expired session %s: %v", expSessionKey(i), err)
		} else if ok {
			fail("expired session %s is readable (resurrected)", expSessionKey(i))
		}
	}
	return out
}

// verifyPipelineRecovery re-derives the pipeline invariants on a
// recovered store from the durable meta alone (called by
// -recovery-check when a pipeline load provisioned this data dir).
// The conservation law needs no pre-crash tallies: both counters moved
// atomically with the queue mutations they describe.
func verifyPipelineRecovery(cl *client.Client, boardPlayers int64, meta func(string, int64) int64) []string {
	var out []string
	fail := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }

	if cnt, err := cl.RangeCount(boardName, "", ""); err != nil {
		fail("board count: %v", err)
	} else if cnt != boardPlayers {
		fail("board holds %d players after recovery, want %d", cnt, boardPlayers)
	}

	produced, err := cl.CounterSum(producedName)
	if err != nil {
		fail("produced sum: %v", err)
		return out
	}
	done, err := cl.CounterSum(doneName)
	if err != nil {
		fail("done sum: %v", err)
		return out
	}
	if done > produced {
		fail("done %d > produced %d after recovery: jobs acked more often than delivered", done, produced)
	}
	queues := int(meta("pipe_queues", 4))
	var held int64
	for i := 0; i < queues; i++ {
		res, err := cl.Txn().QueueLen(pipeQueueName(i)).LeaseLen(pipeQueueName(i)).Commit()
		if err != nil {
			fail("pipe queue %d: %v", i, err)
			return out
		}
		held += res.Num(0) + res.Num(1)
	}
	if produced-done != held {
		fail("lease conservation violated after recovery: produced %d − done %d = %d, but queues hold %d — a lease was double-delivered into the done count or a job vanished",
			produced, done, produced-done, held)
	}

	for i := 0; i < int(meta("perm_sessions", permSessions)); i++ {
		if _, ok, err := cl.MapGet(sessionsName, permSessionKey(i)); err != nil || !ok {
			fail("permanent session %s gone after recovery: ok=%v err=%v", permSessionKey(i), ok, err)
		}
	}
	for i := 0; i < int(meta("exp_sessions", expSessions)); i++ {
		if _, ok, err := cl.MapGet(sessionsName, expSessionKey(i)); err != nil {
			fail("expired session %s: %v", expSessionKey(i), err)
		} else if ok {
			fail("expired session %s resurrected by recovery", expSessionKey(i))
		}
	}
	return out
}

// runRangeScanCompare (-compare -rangescan-ab) measures what the
// second-generation scan architecture buys over the serial baseline,
// with the same legs as the txmix compare gate: scanners and score
// writers share one DURABLE leaderboard, and the serial leg (serial
// nesting, batch size 1, registry fanout 1 — every scan one sequential
// leaf walk in its own root transaction, one fsync per score write)
// races the shipped configuration (parallel-nested subrange scans via
// the default fanout, riding group commit — one fsync per batch).
// Scans between fsyncs queue behind the serial leg's one-at-a-time
// pipeline; in the parallel leg they ride alongside the writes they'd
// otherwise wait for. -syncdelay sets a deterministic stable-storage
// floor so the fsync count dominates, not the box's disk.
//
// Every scan must come back with EXACTLY the provisioned player count —
// writers only overwrite — so the A/B doubles as an atomicity check on
// the scan path under maximum churn.
func runRangeScanCompare(cfg genCfg, workers, maxBatch int, syncDelay time.Duration, minSpeedup float64, jsonDir, name string) error {
	type leg struct {
		label string
		scfg  server.Config
	}
	legs := []leg{
		{"serial-scan", server.Config{
			MaxBatch: 1,
			Serial:   true,
			Registry: stmlib.RegistryConfig{MapBuckets: 4 * cfg.keys, Fanout: 1},
		}},
		// Half the traffic mutates, so the parallel leg keeps the classic
		// one-batch-at-a-time group commit (pipelined batches are for
		// pure-read traffic; overlapping writer batches livelock). Shared
		// reads keep co-batched scans from false-conflicting on shared
		// leaves.
		{"parallel-scan", server.Config{
			MaxBatch:    maxBatch,
			SharedReads: true,
			Registry:    stmlib.RegistryConfig{MapBuckets: 4 * cfg.keys, Fanout: stmlib.DefaultFanout},
		}},
	}
	scanners := cfg.concurrency / 2
	if scanners < 1 {
		scanners = 1
	}
	writers := cfg.concurrency - scanners
	if writers < 1 {
		writers = 1
	}

	scansPerSec := make(map[string]float64, len(legs))
	writesPerSec := make(map[string]float64, len(legs))
	var violations []string
	for _, l := range legs {
		dir, err := os.MkdirTemp("", "pnstm-rangescan-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		scfg := l.scfg
		scfg.Addr = "127.0.0.1:0"
		scfg.Workers = workers
		scfg.DataDir = dir
		scfg.Fsync = true
		scfg.WALSyncDelay = syncDelay
		s, err := server.New(scfg)
		if err != nil {
			return err
		}
		if err := s.Listen(); err != nil {
			return err
		}
		go s.Serve() //nolint:errcheck // torn down via Close below
		cl, err := client.Connect(client.Options{Addrs: []string{s.Addr().String()}, PoolSize: cfg.conns})
		if err != nil {
			s.Close()
			return err
		}
		for i := 0; i < cfg.keys; i++ {
			if err := cl.SortedPut(boardName, playerKey(i), server.EncodeInt64(int64(i))); err != nil {
				cl.Close()
				s.Close()
				return fmt.Errorf("provision board: %w", err)
			}
		}

		fmt.Printf("== %s (workers=%d batch=%d serial=%v fanout=%d scanners=%d writers=%d players=%d)\n",
			l.label, workers, scfg.MaxBatch, scfg.Serial, scfg.Registry.Fanout, scanners, writers, cfg.keys)
		var scans, writes, errs atomic.Int64
		var badScans atomic.Int64
		deadline := time.Now().Add(cfg.duration)
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < scanners; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					// RangeCount walks every leaf exactly as RangeScan
					// does — same subrange children, same conflict
					// footprint — without shipping the board back, so the
					// A/B measures the scan machinery, not response
					// encoding.
					n, err := cl.RangeCount(boardName, "", "")
					if err != nil {
						errs.Add(1)
						return
					}
					if n != int64(cfg.keys) {
						badScans.Add(1)
					}
					scans.Add(1)
				}
			}()
		}
		for g := 0; g < writers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.seed + int64(g)*7919))
				for time.Now().Before(deadline) {
					// A 4-score update envelope touches leaves in random
					// order, so it collides with an in-flight scan's
					// ascending leaf walk instead of queueing behind it —
					// the scan loses sometimes, and what a lost scan
					// redoes is exactly what the fanout decides.
					tx := cl.Txn()
					for i := 0; i < 4; i++ {
						tx.SortedPut(boardName, playerKey(rng.Intn(cfg.keys)),
							server.EncodeInt64(rng.Int63n(1<<20)))
					}
					if _, err := tx.Commit(); err != nil {
						errs.Add(1)
						return
					}
					writes.Add(1)
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		st := s.Stats()
		fmt.Printf("   %d batches, mean batch %.2f, abort ratio %.4f\n",
			st.Batches, st.MeanBatch, st.RuntimeAborts)
		cl.Close()
		s.Close()

		if errs.Load() > 0 {
			return fmt.Errorf("%s: %d request errors", l.label, errs.Load())
		}
		if n := badScans.Load(); n > 0 {
			violations = append(violations,
				fmt.Sprintf("%s: %d scans saw a partial board (atomicity broken under churn)", l.label, n))
		}
		scansPerSec[l.label] = float64(scans.Load()) / wall.Seconds()
		writesPerSec[l.label] = float64(writes.Load()) / wall.Seconds()
		fmt.Printf("   %d scans (%.0f/s), %d writes (%.0f/s) in %v\n",
			scans.Load(), scansPerSec[l.label], writes.Load(), writesPerSec[l.label], wall.Round(time.Millisecond))
	}

	base, par := legs[0].label, legs[1].label
	ratio := 0.0
	if scansPerSec[base] > 0 {
		ratio = scansPerSec[par] / scansPerSec[base]
	}
	fmt.Printf("== parallel-subrange scan vs sequential: %.2fx scan throughput under churn\n", ratio)

	if jsonDir != "" {
		if name == "" {
			name = "loadgen-rangescan-ab"
		}
		rep := &bench.Report{
			Name: name,
			Kind: "loadgen",
			Config: map[string]any{
				"players":     cfg.keys,
				"scanners":    scanners,
				"writers":     writers,
				"workers":     workers,
				"max_batch":   maxBatch,
				"duration":    cfg.duration.String(),
				"par_fanout":  stmlib.DefaultFanout,
				"base_fanout": 1,
				"sync_delay":  syncDelay.String(),
				"seed":        cfg.seed,
			},
			Metrics: map[string]float64{
				"rangescan_speedup_ratio": ratio,
				"serial_scans_per_sec":    scansPerSec[base],
				"parallel_scans_per_sec":  scansPerSec[par],
				"serial_writes_per_sec":   writesPerSec[base],
				"parallel_writes_per_sec": writesPerSec[par],
			},
		}
		if len(violations) == 0 {
			rep.Notes = []string{"every scan saw the whole board (atomic under churn)"}
		} else {
			rep.Notes = violations
		}
		path, err := rep.WriteFile(jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("report: %s\n", path)
	}
	if len(violations) > 0 {
		return fmt.Errorf("rangescan A/B invariant violations (see above)")
	}
	if minSpeedup > 0 && ratio < minSpeedup {
		return fmt.Errorf("parallel subrange scans regressed: %.2fx the sequential baseline, want ≥ %.2fx", ratio, minSpeedup)
	}
	return nil
}
