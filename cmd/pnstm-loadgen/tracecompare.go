package main

import (
	"fmt"

	"pnstm/client"
	"pnstm/internal/bench"
	"pnstm/server"
	"pnstm/stmlib"
)

// traceCompareRounds is how many alternating untraced/traced leg pairs
// the A/B runs. The gate is a tight ratio (≤1.05), far below the
// run-to-run noise of a single pair of short legs on a shared box —
// alternating rounds and taking each mode's best leg cancels most of
// the machine noise while any real tracing cost shows up in every
// traced leg.
const traceCompareRounds = 3

// runTraceCompare measures what the conflict X-ray costs: the same
// batched workload against two identical in-process servers, one with
// lifecycle tracing off and one with it on (the default). The headline
// metric is tracing_overhead_ratio = untraced / traced throughput — 1.0
// when tracing is free, 1.05 when it eats 5% — which CI gates with a
// benchgate ceiling so the "near-zero-cost" claim stays enforced, not
// aspirational.
func runTraceCompare(cfg genCfg, workers, maxBatch int, maxOverhead float64, jsonDir, name string) error {
	type mode struct {
		label   string
		tracing bool
	}
	modes := []mode{
		{"untraced", false},
		{"traced", true},
	}
	reg := stmlib.RegistryConfig{MapBuckets: 4 * cfg.keys}
	results := make(map[string]*genResult, len(modes))
	var traceEvents uint64
	for round := 0; round < traceCompareRounds; round++ {
		for _, m := range modes {
			s, err := server.New(server.Config{
				Addr:           "127.0.0.1:0",
				Workers:        workers,
				MaxBatch:       maxBatch,
				SharedReads:    true,
				Registry:       reg,
				DisableTracing: !m.tracing,
			})
			if err != nil {
				return err
			}
			if err := s.Listen(); err != nil {
				return err
			}
			go s.Serve() //nolint:errcheck // torn down via Close below
			cl, err := client.Connect(client.Options{Addrs: []string{s.Addr().String()}, PoolSize: cfg.conns})
			if err != nil {
				s.Close()
				return err
			}
			fmt.Printf("== %s round %d (workers=%d batch=%d tracing=%v)\n", m.label, round+1, workers, maxBatch, m.tracing)
			res, err := runLoad(cl, cfg)
			if m.tracing {
				traceEvents += s.Stats().Runtime.TraceEvents
			}
			cl.Close()
			s.Close()
			if err != nil {
				return err
			}
			printResult(cfg, res)
			if len(res.violations) > 0 || res.errs > 0 {
				return fmt.Errorf("%s round %d: invariant violations or request errors (see above)", m.label, round+1)
			}
			if prev := results[m.label]; prev == nil || res.throughput() > prev.throughput() {
				results[m.label] = res // keep the mode's best leg
			}
		}
	}

	off, on := results["untraced"], results["traced"]
	ratio := 0.0
	if on.throughput() > 0 {
		ratio = off.throughput() / on.throughput()
	}
	fmt.Printf("== tracing overhead: %.3fx (best untraced / best traced of %d rounds; %d events recorded)\n",
		ratio, traceCompareRounds, traceEvents)

	if jsonDir != "" {
		if name == "" {
			name = "loadgen-" + cfg.workload + "-traceab"
		}
		metrics := map[string]float64{
			"untraced_throughput_per_sec": off.throughput(),
			"traced_throughput_per_sec":   on.throughput(),
			"tracing_overhead_ratio":      ratio,
			"untraced_ops":                float64(off.ops),
			"traced_ops":                  float64(on.ops),
			"trace_events":                float64(traceEvents),
			"traced_abort_ratio":          on.runtimeStat.abortRatio,
		}
		for k, v := range bench.LatencyMetrics(on.latencies) {
			metrics["traced_"+k] = v
		}
		for k, v := range bench.LatencyMetrics(off.latencies) {
			metrics["untraced_"+k] = v
		}
		rep := &bench.Report{
			Name: name,
			Kind: "loadgen",
			Config: map[string]any{
				"workload":    cfg.workload,
				"concurrency": cfg.concurrency,
				"conns":       cfg.conns,
				"duration":    cfg.duration.String(),
				"workers":     workers,
				"max_batch":   maxBatch,
				"seed":        cfg.seed,
			},
			Metrics: metrics,
		}
		rep.Notes = []string{"invariants ok in every leg"}
		path, err := rep.WriteFile(jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("report: %s\n", path)
	}
	if maxOverhead > 0 && ratio > maxOverhead {
		return fmt.Errorf("tracing overhead %.3fx exceeds the %.3fx bound", ratio, maxOverhead)
	}
	return nil
}
