package main

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pnstm/client"
	"pnstm/internal/bench"
	"pnstm/server"
)

// Crash-recovery mode (-kill-after): boot an embedded durable server,
// drive a write-heavy mix for the given duration, hard-kill it —
// server.Kill abandons the WAL without flushing, the in-process
// equivalent of SIGKILL — then restart on the same data directory and
// check the recovered store against what the clients saw acked:
//
//   - counter: recovered sum within [acked, attempted] adds — nothing
//     acked lost, nothing invented beyond the in-flight window
//   - queues (one per producer, sequential values): recovered contents
//     are exactly 0..n-1 in FIFO order, n within [acked, attempted]
//   - checkout: stock conservation and revenue consistency hold
//     EXACTLY in any recovered state, and units sold ≥ units acked
//   - cross-shard ledger: guarded transfers between account maps on
//     different shards run throughout; the recovered ledger total
//     equals the provisioned total EXACTLY — a kill that lands between
//     a cross-shard commit's per-shard appends must recover to the
//     whole transfer or none of it, never one shard's half
//
// The cross-process variant of the same drill — real kill -9 against a
// pnstmd -data-dir, then -recovery-check — runs in CI.

// crashTally tracks acked-vs-attempted per invariant.
type crashTally struct {
	producers     int
	ackedAdds     atomic.Int64
	attemptedAdds atomic.Int64
	ackedSold     atomic.Int64
	ackedPush     []atomic.Int64
	attemptedPush []atomic.Int64
}

// runCrash drives the crash-recovery drill; returns an error when load
// could not run or any invariant fails. With shards > 1 the drilled
// server runs that many engine partitions, each with its own WAL —
// recovery must replay every shard's log.
func runCrash(cfg genCfg, workers, maxBatch, shards int, dataDir string, killAfter time.Duration, jsonDir, name string) error {
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "pnstm-crash-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	} else if entries, err := os.ReadDir(dataDir); err == nil && len(entries) > 0 {
		// The drill's invariants assume the run starts from nothing
		// (fresh counters, queues pushed 0..n-1, stock == stockPer);
		// recovering an earlier run's state would report them as false
		// violations.
		return fmt.Errorf("crash drill needs an empty -data-dir, but %s has %d entries", dataDir, len(entries))
	}
	scfg := server.Config{
		Addr:     "127.0.0.1:0",
		Shards:   shards,
		Workers:  workers,
		MaxBatch: maxBatch,
		DataDir:  dataDir,
		Fsync:    true,
	}
	s, err := server.New(scfg)
	if err != nil {
		return err
	}
	if err := s.Listen(); err != nil {
		return err
	}
	go s.Serve() //nolint:errcheck // torn down via Kill below
	cl, err := client.Connect(client.Options{Addrs: []string{s.Addr().String()}, PoolSize: cfg.conns})
	if err != nil {
		s.Close()
		return err
	}

	for i := 0; i < cfg.skus; i++ {
		if err := cl.MapPutInt(stockName, skuName(i), cfg.stockPer); err != nil {
			s.Close()
			return fmt.Errorf("crash setup: %w", err)
		}
	}
	for i := 0; i < acctMaps; i++ {
		for j := 0; j < acctPerMap; j++ {
			if err := cl.MapPutInt(acctMapName(i), acctKeyName(j), acctInitial); err != nil {
				s.Close()
				return fmt.Errorf("crash setup ledger: %w", err)
			}
		}
	}

	producers := cfg.concurrency / 2
	if producers < 1 {
		producers = 1
	}
	buyers := cfg.concurrency - producers
	if buyers < 1 {
		buyers = 1
	}
	tally := &crashTally{
		producers:     producers,
		ackedPush:     make([]atomic.Int64, producers),
		attemptedPush: make([]atomic.Int64, producers),
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				tally.attemptedPush[g].Add(1)
				if err := cl.QueuePush(crashQueueName(g), server.EncodeInt64(int64(i))); err != nil {
					return // killed
				}
				tally.ackedPush[g].Add(1)
				tally.attemptedAdds.Add(2)
				if err := cl.CounterAdd(counterName, 2); err != nil {
					return
				}
				tally.ackedAdds.Add(2)
			}
		}()
	}
	for g := 0; g < buyers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(g)*7919))
			for !stop.Load() {
				qty := int64(1 + rng.Intn(3))
				ok, _, err := cl.Checkout(stockName, server.Checkout{
					Sold: soldName, Revenue: revenueName, Cents: qty * 100,
					Lines: []server.CheckoutLine{{SKU: skuName(rng.Intn(cfg.skus)), Qty: qty}},
				})
				if err != nil {
					return // killed
				}
				if ok {
					tally.ackedSold.Add(qty)
				}
			}
		}()
	}

	// Cross-shard movers: guarded transfers between account maps on
	// (with shards > 1) different shards, running right through the
	// kill. No tally needed — transfers are zero-sum, so the recovered
	// ledger total is exact whatever subset of them survived.
	var movedAcks atomic.Int64
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 104729 + int64(g)))
			for !stop.Load() {
				src := rng.Intn(acctMaps)
				dst := acctPartnerOf(src, shards)
				srcKey := acctKeyName(rng.Intn(acctPerMap))
				amt := int64(1 + rng.Intn(5))
				_, err := cl.Txn().
					AssertGE(acctMapName(src), srcKey, amt).
					MapAddInt(acctMapName(src), srcKey, -amt).
					MapAddInt(acctMapName(dst), acctKeyName(rng.Intn(acctPerMap)), amt).
					Commit()
				var aborted *client.ErrTxAborted
				if errors.As(err, &aborted) {
					continue // a guard lost: fine, nothing moved
				}
				if err != nil {
					return // killed
				}
				movedAcks.Add(1)
			}
		}()
	}

	time.Sleep(killAfter)
	s.Kill()
	stop.Store(true)
	wg.Wait()
	cl.Close()
	fmt.Printf("== killed pnstmd after %v: %d adds, %d units sold, %d cross-shard transfers acked before the crash\n",
		killAfter, tally.ackedAdds.Load(), tally.ackedSold.Load(), movedAcks.Load())
	if tally.ackedAdds.Load() == 0 && tally.ackedSold.Load() == 0 {
		return fmt.Errorf("no load was acked before the kill; raise -kill-after")
	}

	// Restart on the same directory and verify.
	s2, err := server.New(scfg)
	if err != nil {
		return fmt.Errorf("restart after crash: %w", err)
	}
	if err := s2.Listen(); err != nil {
		return err
	}
	go s2.Serve() //nolint:errcheck
	defer s2.Close()
	cl2, err := client.Connect(client.Options{Addrs: []string{s2.Addr().String()}, PoolSize: 1})
	if err != nil {
		return err
	}
	defer cl2.Close()

	// On a sharded server WALStats sums per-shard figures, so these are
	// record totals across all logs, not single log positions.
	ws := s2.WALStats()
	fmt.Printf("== recovered: %d snapshot-covered records, %d wal records, %d durable records\n",
		ws.SnapshotLSN, ws.RecoveredRecords, ws.TailLSN)

	violations, recovered := verifyCrashRecovery(cl2, cfg, tally)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATED: %s\n", v)
	}
	if len(violations) == 0 {
		fmt.Println("== crash-recovery invariants ok (counter, queue FIFO, conservation)")
	}

	if jsonDir != "" {
		if name == "" {
			name = "loadgen-crash-recovery"
		}
		rep := &bench.Report{
			Name: name,
			Kind: "loadgen",
			Config: map[string]any{
				"kill_after":  killAfter.String(),
				"workers":     workers,
				"max_batch":   maxBatch,
				"shards":      shards,
				"concurrency": cfg.concurrency,
				"skus":        cfg.skus,
				"stock":       cfg.stockPer,
				"seed":        cfg.seed,
			},
			Metrics: map[string]float64{
				"acked_adds":        float64(tally.ackedAdds.Load()),
				"recovered_counter": float64(recovered.counter),
				"acked_sold":        float64(tally.ackedSold.Load()),
				"recovered_sold":    float64(recovered.sold),
				"wal_records":       float64(ws.RecoveredRecords),
				"snapshot_lsn":      float64(ws.SnapshotLSN),
				"violations":        float64(len(violations)),
			},
		}
		if len(violations) == 0 {
			rep.Notes = []string{"crash-recovery invariants ok"}
		} else {
			rep.Notes = violations
		}
		path, err := rep.WriteFile(jsonDir)
		if err != nil {
			return err
		}
		fmt.Printf("report: %s\n", path)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d crash-recovery invariant violations", len(violations))
	}
	return nil
}

func crashQueueName(g int) string { return fmt.Sprintf("bench:crashq%d", g) }

// recoveredState is what verifyCrashRecovery read back.
type recoveredState struct {
	counter int64
	sold    int64
}

// verifyCrashRecovery checks the recovered store against the tally.
func verifyCrashRecovery(cl *client.Client, cfg genCfg, tally *crashTally) ([]string, recoveredState) {
	var out []string
	var rec recoveredState
	fail := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }

	sum, err := cl.CounterSum(counterName)
	if err != nil {
		fail("counter sum: %v", err)
		return out, rec
	}
	rec.counter = sum
	if sum < tally.ackedAdds.Load() || sum > tally.attemptedAdds.Load() {
		fail("counter %d outside [acked %d, attempted %d]", sum, tally.ackedAdds.Load(), tally.attemptedAdds.Load())
	}

	for g := 0; g < tally.producers; g++ {
		name := crashQueueName(g)
		n, err := cl.QueueLen(name)
		if err != nil {
			fail("queue %s len: %v", name, err)
			return out, rec
		}
		if n < tally.ackedPush[g].Load() || n > tally.attemptedPush[g].Load() {
			fail("queue %s holds %d, outside [acked %d, attempted %d]",
				name, n, tally.ackedPush[g].Load(), tally.attemptedPush[g].Load())
		}
		for i := int64(0); i < n; i++ {
			raw, ok, err := cl.QueuePop(name)
			if err != nil || !ok {
				fail("queue %s pop %d: ok=%v err=%v", name, i, ok, err)
				return out, rec
			}
			if v, _ := server.DecodeInt64(raw); v != i {
				fail("queue %s pop %d = %d: FIFO prefix broken", name, i, v)
				break
			}
		}
	}

	var remaining int64
	for i := 0; i < cfg.skus; i++ {
		v, ok, err := cl.MapGetInt(stockName, skuName(i))
		if err != nil || !ok {
			fail("stock %s: ok=%v err=%v", skuName(i), ok, err)
			return out, rec
		}
		if v < 0 {
			fail("stock %s oversold after recovery: %d", skuName(i), v)
		}
		remaining += v
	}
	sold, err := cl.CounterSum(soldName)
	if err != nil {
		fail("sold sum: %v", err)
		return out, rec
	}
	rec.sold = sold
	revenue, err := cl.CounterSum(revenueName)
	if err != nil {
		fail("revenue sum: %v", err)
		return out, rec
	}
	if total, want := remaining+sold, int64(cfg.skus)*cfg.stockPer; total != want {
		fail("conservation violated: remaining %d + sold %d = %d, want %d", remaining, sold, total, want)
	}
	if revenue != sold*100 {
		fail("revenue %d inconsistent with %d units sold", revenue, sold)
	}
	if sold < tally.ackedSold.Load() {
		fail("recovered sold %d < acked sold %d: durable acks lost", sold, tally.ackedSold.Load())
	}

	// Cross-shard ledger: transfers are zero-sum, so the recovered
	// total is EXACT — a torn cross-shard commit (one shard's half
	// replayed without the other) is the only way it can drift.
	var ledger int64
	for i := 0; i < acctMaps; i++ {
		for j := 0; j < acctPerMap; j++ {
			v, ok, err := cl.MapGetInt(acctMapName(i), acctKeyName(j))
			if err != nil || !ok {
				fail("ledger %s/%s: ok=%v err=%v", acctMapName(i), acctKeyName(j), ok, err)
				return out, rec
			}
			if v < 0 {
				fail("ledger %s/%s overdrawn after recovery: %d", acctMapName(i), acctKeyName(j), v)
			}
			ledger += v
		}
	}
	if want := int64(acctMaps) * int64(acctPerMap) * acctInitial; ledger != want {
		fail("ledger total %d after recovery, want %d: a cross-shard transfer split", ledger, want)
	}
	return out, rec
}

// runRecoveryCheck (-recovery-check) connects to a freshly restarted
// pnstmd and verifies the invariants a recovered store must satisfy
// after an earlier checkout load: non-negative stock, exact
// conservation, revenue consistency. The baselines come from the
// bench:meta entries the load's setup wrote into the store itself —
// durable alongside the data — so the check needs no memory of the
// pre-crash process (CI kills pnstmd with a real SIGKILL in between)
// and stays exact however many load runs the data dir has seen.
func runRecoveryCheck(addr string, cfg genCfg) error {
	cl, err := client.Connect(client.Options{Addrs: []string{addr}, PoolSize: 1})
	if err != nil {
		return err
	}
	defer cl.Close()

	var violations []string
	fail := func(format string, args ...any) { violations = append(violations, fmt.Sprintf(format, args...)) }

	// Provisioning epoch: prefer the durable meta (exact across reuse);
	// fall back to the flags' fresh-dir assumption when absent.
	meta := func(key string, fallback int64) int64 {
		v, ok, err := cl.MapGetInt(metaName, key)
		if err != nil || !ok {
			return fallback
		}
		return v
	}
	skus := int(meta("skus", int64(cfg.skus)))
	stockTotal := meta("stock_total", int64(cfg.skus)*cfg.stockPer)
	sold0 := meta("sold0", 0)
	revenue0 := meta("revenue0", 0)

	var remaining, sold int64
	stocked := 0
	for i := 0; i < skus; i++ {
		v, ok, err := cl.MapGetInt(stockName, skuName(i))
		if err != nil {
			return fmt.Errorf("stock %s: %w", skuName(i), err)
		}
		if !ok {
			continue // this SKU never provisioned
		}
		stocked++
		if v < 0 {
			fail("stock %s oversold: %d", skuName(i), v)
		}
		remaining += v
	}
	if stocked > 0 {
		if stocked != skus {
			fail("only %d of %d SKUs survived recovery", stocked, skus)
		}
		soldAbs, err := cl.CounterSum(soldName)
		if err != nil {
			return err
		}
		revenueAbs, err := cl.CounterSum(revenueName)
		if err != nil {
			return err
		}
		var revenue int64
		sold, revenue = soldAbs-sold0, revenueAbs-revenue0
		if total := remaining + sold; total != stockTotal {
			fail("conservation violated: remaining %d + sold %d = %d, want %d", remaining, sold, total, stockTotal)
		}
		if revenue != sold*100 {
			fail("revenue %d inconsistent with %d units sold", revenue, sold)
		}
	}
	// The mixed/readmap preload is durable before the measured load
	// starts, and its puts only overwrite preloaded keys.
	if n, err := cl.MapLen(mapName); err != nil {
		return err
	} else if n != 0 && n != int64(cfg.keys) {
		fail("map %q has %d keys after recovery, want %d", mapName, n, cfg.keys)
	}

	// Cross-shard ledger, when a crossshard load provisioned one (its
	// meta records the layout durably; absent meta means no ledger ran
	// on this data dir). Transfers are zero-sum, so the total is exact.
	ledgerChecked := false
	if acctTotal, ok, err := cl.MapGetInt(metaName, "acct_total"); err != nil {
		return err
	} else if ok {
		ledgerChecked = true
		maps := int(meta("acct_maps", acctMaps))
		perMap := int(meta("acct_per_map", acctPerMap))
		var ledger int64
		for i := 0; i < maps; i++ {
			for j := 0; j < perMap; j++ {
				v, ok, err := cl.MapGetInt(acctMapName(i), acctKeyName(j))
				if err != nil {
					return fmt.Errorf("ledger %s/%s: %w", acctMapName(i), acctKeyName(j), err)
				}
				if !ok {
					fail("ledger %s/%s missing after recovery", acctMapName(i), acctKeyName(j))
					continue
				}
				if v < 0 {
					fail("ledger %s/%s overdrawn after recovery: %d", acctMapName(i), acctKeyName(j), v)
				}
				ledger += v
			}
		}
		if ledger != acctTotal {
			fail("ledger total %d after recovery, want %d: a cross-shard transfer split", ledger, acctTotal)
		}
	}

	// Pipeline state, when a pipeline load provisioned this data dir
	// (its board_players meta is the marker): lease conservation from
	// the store's own produced/done ledger, no double-counted acks, no
	// resurrected expired sessions, the permanent set intact.
	pipelineChecked := false
	if boardPlayers, ok, err := cl.MapGetInt(metaName, "board_players"); err != nil {
		return err
	} else if ok {
		pipelineChecked = true
		violations = append(violations, verifyPipelineRecovery(cl, boardPlayers, meta)...)
	}

	if stocked == 0 && !ledgerChecked && !pipelineChecked {
		return fmt.Errorf("recovery-check: no checkout stock, ledger, or pipeline state found — was a load run against this data dir?")
	}

	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "INVARIANT VIOLATED: %s\n", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d recovery invariant violations", len(violations))
	}
	if stocked > 0 {
		fmt.Printf("recovery-check ok: %d SKUs, %d remaining + %d sold = %d, revenue consistent\n",
			stocked, remaining, sold, remaining+sold)
	}
	if ledgerChecked {
		fmt.Println("recovery-check ok: cross-shard ledger total conserved exactly")
	}
	if pipelineChecked {
		fmt.Println("recovery-check ok: lease ledger conserved, no resurrected sessions")
	}
	return nil
}
