// Command pnstmd serves named transactional structures (maps, queues,
// counters) over TCP with group-commit batching: concurrent in-flight
// requests coalesce into one root transaction per batch, each request
// running as a parallel nested child via Ctx.Parallel — the paper's
// fork/join mechanism as a network server. Clients compose atomic
// multi-structure operations as OpTx wire transactions (client.Txn):
// ordered sub-ops with read-your-writes and guard assertions, executed
// as one nested child whose per-structure groups fan out as
// parallel-nested grandchildren. Mutating transactions are atomic
// within one shard (cross-shard mutators are refused); read-only
// transactions fan shards.
//
// Usage:
//
//	pnstmd                                  # listen on :7455, batch up to 64
//	pnstmd -addr :9000 -workers 16 -batch 128 -batchdelay 200us
//	pnstmd -batch 1 -serial                 # the no-batching serial baseline
//	pnstmd -shards 4                        # 4 independent commit pipelines
//	pnstmd -data-dir ./pnstm-data           # durable: WAL + snapshots, crash-safe
//	pnstmd -data-dir ./pnstm-data -shards 4 # durable AND sharded: parallel fsyncs
//	pnstmd -data-dir ./pnstm-data -fsync=false -snapshot-every 10s
//	pnstmd -admin :7456 -adaptive            # Prometheus /metrics, /healthz,
//	                                         # /readyz, live /config, self-tuning
//
// With -shards N the store is split into N engine partitions by
// structure-name hash: each shard owns its own runtime, registry,
// group-commit batcher and (with -data-dir) write-ahead log under
// shard-<i>/, so commits — fsyncs included — on different shards run
// fully in parallel. The shard count is pinned in the data directory's
// manifest; reopening with a different count is refused.
//
// With -data-dir the server write-ahead-logs every group commit (one
// fsync per batch, per shard), checkpoints the whole store on the
// -snapshot-every cadence, and on boot recovers snapshot + WAL tail —
// every shard concurrently — so a restart loses nothing that was acked.
// SIGINT/SIGTERM shut down gracefully (flush + final fsync) and print
// the final stats. Drive it with cmd/pnstm-loadgen.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pnstm/server"
	"pnstm/stmlib"
)

func main() {
	var (
		addr       = flag.String("addr", ":7455", "TCP listen address")
		shards     = flag.Int("shards", 1, "independent engine partitions (each with its own runtime, batcher and WAL)")
		workers    = flag.Int("workers", 8, "runtime worker slots P per shard (1..32)")
		batch      = flag.Int("batch", 64, "max requests per group commit (1 disables grouping)")
		batchdelay = flag.Duration("batchdelay", 0, "how long a batch waits for stragglers (0: only coalesce what is already in flight)")
		serial     = flag.Bool("serial", false, "serial-nesting baseline runtime (children run sequentially)")
		sharedr    = flag.Bool("sharedreads", true, "shared-read conflict model (§9): batch siblings reading the same bucket do not conflict")
		inflight   = flag.Int("inflight", 1, "concurrent group commits (1: classic group commit; >1 pipelines batches — read-dominant workloads only, overlapping writers can livelock)")
		buckets    = flag.Int("buckets", 64, "buckets per named map")
		stripes    = flag.Int("stripes", 8, "stripes per named counter")
		dataDir    = flag.String("data-dir", "", "durability directory (WAL + snapshots); empty: in-memory only")
		fsync      = flag.Bool("fsync", true, "fsync the WAL once per group commit (with -data-dir)")
		snapEvery  = flag.Duration("snapshot-every", time.Minute, "background checkpoint cadence (0 disables; with -data-dir)")
		walSegment = flag.Int64("wal-segment", 0, "WAL segment rotation threshold in bytes (0: default 64 MiB)")
		syncDelay  = flag.Duration("syncdelay", 0, "artificial per-fsync latency floor (benchmark hook simulating slower stable storage, same knob as pnstm-loadgen -syncdelay; with -data-dir -fsync)")
		adminAddr  = flag.String("admin", "", "HTTP admin listen address serving /metrics (Prometheus), /healthz, /readyz and GET/PUT /config (empty: no admin listener)")
		adaptive   = flag.Bool("adaptive", false, "adaptive controller: walk each shard's inflight/fanout from observed abort rate and batch occupancy (togglable live via PUT /config)")
	)
	flag.Parse()

	if *workers < 1 || *workers > 32 {
		fmt.Fprintf(os.Stderr, "pnstmd: -workers must be in 1..32, got %d\n", *workers)
		os.Exit(2)
	}
	if *batch < 1 {
		fmt.Fprintf(os.Stderr, "pnstmd: -batch must be positive, got %d\n", *batch)
		os.Exit(2)
	}
	if *shards < 1 || *shards > 64 {
		fmt.Fprintf(os.Stderr, "pnstmd: -shards must be in 1..64, got %d\n", *shards)
		os.Exit(2)
	}

	s, err := server.New(server.Config{
		Addr:            *addr,
		Shards:          *shards,
		Workers:         *workers,
		MaxBatch:        *batch,
		BatchDelay:      *batchdelay,
		Serial:          *serial,
		SharedReads:     *sharedr,
		MaxInflight:     *inflight,
		Registry:        stmlib.RegistryConfig{MapBuckets: *buckets, CounterStripes: *stripes},
		DataDir:         *dataDir,
		Fsync:           *fsync,
		WALSyncDelay:    *syncDelay,
		SnapshotEvery:   *snapEvery,
		WALSegmentBytes: *walSegment,
		AdminAddr:       *adminAddr,
		Adaptive:        *adaptive,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnstmd: %v\n", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		ws := s.WALStats()
		fmt.Printf("pnstmd: recovered %s across %d shard(s) (snapshot records %d, %d wal records replayed, %d durable records)\n",
			*dataDir, *shards, ws.SnapshotLSN, ws.TailLSN-ws.SnapshotLSN, ws.TailLSN)
		if ws.RepairedTail {
			fmt.Printf("pnstmd: repaired a torn WAL tail (%d segments quarantined)\n", ws.Quarantined)
		}
	}
	if err := s.Listen(); err != nil {
		fmt.Fprintf(os.Stderr, "pnstmd: %v\n", err)
		os.Exit(1)
	}
	mode := "parallel"
	if *serial {
		mode = "serial"
	}
	fmt.Printf("pnstmd listening on %s (shards=%d workers=%d batch=%d delay=%v runtime=%s)\n",
		s.Addr(), *shards, *workers, *batch, *batchdelay, mode)
	if a := s.AdminAddr(); a != nil {
		fmt.Printf("pnstmd admin on http://%s (/metrics /healthz /readyz /config, adaptive=%v)\n", a, *adaptive)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	select {
	case <-sig:
		fmt.Println("pnstmd: shutting down")
	case err := <-serveDone:
		if err != nil {
			fmt.Fprintf(os.Stderr, "pnstmd: serve: %v\n", err)
			s.Close()
			os.Exit(1)
		}
	}
	start := time.Now()
	s.Close()
	st := s.Stats()
	fmt.Printf("pnstmd: drained in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("batches: %d  requests: %d  mean-batch: %.2f  largest: %d\n",
		st.Batches, st.Requests, st.MeanBatch, st.LargestBatch)
	fmt.Printf("runtime: begun=%d committed=%d aborted=%d (abort ratio %.4f) escalations=%d\n",
		st.Runtime.Begun, st.Runtime.Committed, st.Runtime.Aborted, st.RuntimeAborts, st.Runtime.Escalations)
	if st.WAL != nil {
		fmt.Printf("wal: records=%d fsyncs=%d snapshots=%d segments=%d durable-records=%d\n",
			st.WAL.Appends, st.WAL.Syncs, st.WAL.Snapshots, st.WAL.Segments, st.WAL.TailLSN)
	}
	if len(st.PerShard) > 1 {
		for _, sh := range st.PerShard {
			fmt.Printf("shard %d: batches=%d requests=%d mean-batch=%.2f abort-ratio=%.4f\n",
				sh.Shard, sh.Batches, sh.Requests, sh.MeanBatch, sh.Runtime.AbortRate())
		}
	}
}
