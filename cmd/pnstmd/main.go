// Command pnstmd serves named transactional structures (maps, queues,
// counters) over TCP with group-commit batching: concurrent in-flight
// requests coalesce into one root transaction per batch, each request
// running as a parallel nested child via Ctx.Parallel — the paper's
// fork/join mechanism as a network server. Clients compose atomic
// multi-structure operations as OpTx wire transactions (client.Txn):
// ordered sub-ops with read-your-writes and guard assertions, executed
// as one nested child whose per-structure groups fan out as
// parallel-nested grandchildren. Mutating transactions are atomic
// within one shard (cross-shard mutators are refused); read-only
// transactions fan shards.
//
// Usage:
//
//	pnstmd                                  # listen on :7455, batch up to 64
//	pnstmd -addr :9000 -workers 16 -batch 128 -batchdelay 200us
//	pnstmd -batch 1 -serial                 # the no-batching serial baseline
//	pnstmd -shards 4                        # 4 independent commit pipelines
//	pnstmd -data-dir ./pnstm-data           # durable: WAL + snapshots, crash-safe
//	pnstmd -data-dir ./pnstm-data -shards 4 # durable AND sharded: parallel fsyncs
//	pnstmd -data-dir ./pnstm-data -fsync=false -snapshot-every 10s
//	pnstmd -admin :7456 -adaptive            # Prometheus /metrics, /healthz,
//	                                         # /readyz, live /config, self-tuning
//	pnstmd -admin :7456 -admin-debug         # + net/http/pprof under /debug/pprof/
//	pnstmd -replica-of primary:7455 -admin :7456  # read-only replica tailing the
//	                                              # primary's WALs; POST /promote
//	                                              # to fail over
//	pnstmd -log-format json -log-level debug # structured logs for collectors
//
// With -shards N the store is split into N engine partitions by
// structure-name hash: each shard owns its own runtime, registry,
// group-commit batcher and (with -data-dir) write-ahead log under
// shard-<i>/, so commits — fsyncs included — on different shards run
// fully in parallel. The shard count is pinned in the data directory's
// manifest; reopening with a different count is refused.
//
// With -data-dir the server write-ahead-logs every group commit (one
// fsync per batch, per shard), checkpoints the whole store on the
// -snapshot-every cadence, and on boot recovers snapshot + WAL tail —
// every shard concurrently — so a restart loses nothing that was acked.
// SIGINT/SIGTERM shut down gracefully (flush + final fsync) and log
// the final stats. Drive it with cmd/pnstm-loadgen.
//
// Conflict X-ray tracing (-trace, on by default) records every
// transaction's lifecycle into per-slot flight-recorder rings; the
// admin listener serves the hot-key conflict ranking on GET
// /debug/hotkeys and the raw event window on GET /debug/trace?secs=N,
// and a crisis-token engagement dumps the recorder to a timestamped
// flight-*.json in the data directory.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pnstm/server"
	"pnstm/stmlib"
)

// buildLogger renders the -log-level/-log-format flags into a slog
// logger on stderr (stdout stays free for report-style output).
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

func main() {
	var (
		addr       = flag.String("addr", ":7455", "TCP listen address")
		shards     = flag.Int("shards", 1, "independent engine partitions (each with its own runtime, batcher and WAL)")
		workers    = flag.Int("workers", 8, "runtime worker slots P per shard (1..32)")
		batch      = flag.Int("batch", 64, "max requests per group commit (1 disables grouping)")
		batchdelay = flag.Duration("batchdelay", 0, "how long a batch waits for stragglers (0: only coalesce what is already in flight)")
		serial     = flag.Bool("serial", false, "serial-nesting baseline runtime (children run sequentially)")
		sharedr    = flag.Bool("sharedreads", true, "shared-read conflict model (§9): batch siblings reading the same bucket do not conflict")
		inflight   = flag.Int("inflight", 1, "concurrent group commits (1: classic group commit; >1 pipelines batches — read-dominant workloads only, overlapping writers can livelock)")
		buckets    = flag.Int("buckets", 64, "buckets per named map")
		stripes    = flag.Int("stripes", 8, "stripes per named counter")
		dataDir    = flag.String("data-dir", "", "durability directory (WAL + snapshots); empty: in-memory only")
		fsync      = flag.Bool("fsync", true, "fsync the WAL once per group commit (with -data-dir)")
		snapEvery  = flag.Duration("snapshot-every", time.Minute, "background checkpoint cadence (0 disables; with -data-dir)")
		walSegment = flag.Int64("wal-segment", 0, "WAL segment rotation threshold in bytes (0: default 64 MiB)")
		syncDelay  = flag.Duration("syncdelay", 0, "artificial per-fsync latency floor (benchmark hook simulating slower stable storage, same knob as pnstm-loadgen -syncdelay; with -data-dir -fsync)")
		adminAddr  = flag.String("admin", "", "HTTP admin listen address serving /metrics (Prometheus), /healthz, /readyz, GET/PUT /config, /debug/hotkeys and /debug/trace (empty: no admin listener)")
		adminDebug = flag.Bool("admin-debug", false, "additionally mount net/http/pprof under /debug/pprof/ on the admin listener")
		adaptive   = flag.Bool("adaptive", false, "adaptive controller: walk each shard's inflight/fanout from observed abort rate and batch occupancy (togglable live via PUT /config)")
		trace      = flag.Bool("trace", true, "conflict X-ray: record transaction-lifecycle events for /debug/hotkeys, /debug/trace and crisis dumps (togglable live via PUT /config)")
		traceSamp  = flag.Int("trace-sample", 0, "record begin/commit lifecycle for 1 in N batches (0: default 8; 1: every batch — full fidelity, higher cost); conflict events are always recorded")
		reapEvery  = flag.Duration("reap-interval", 5*time.Second, "TTL/lease reaper cadence: physically remove expired map/sorted-map entries and requeue overdue queue leases (0 disables; primary only — replicas replay the primary's reaps)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log record format: text or json")
		replicaOf  = flag.String("replica-of", "", "run as a read-only replica tailing the durable primary at this address (incompatible with -data-dir and -serial); POST /promote on the admin listener to fail over")
		maxStale   = flag.Duration("max-staleness", 0, "replica readiness bound: /readyz turns 503 when the replication watermark lags the primary by more than this (0: default 10s; with -replica-of)")
	)
	flag.Parse()

	log, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnstmd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(log)

	if *workers < 1 || *workers > 32 {
		log.Error("-workers must be in 1..32", "got", *workers)
		os.Exit(2)
	}
	if *batch < 1 {
		log.Error("-batch must be positive", "got", *batch)
		os.Exit(2)
	}
	if *shards < 1 || *shards > 64 {
		log.Error("-shards must be in 1..64", "got", *shards)
		os.Exit(2)
	}
	if *replicaOf != "" {
		if *dataDir != "" {
			log.Error("-replica-of and -data-dir are incompatible: a replica is in-memory (the primary owns durability)")
			os.Exit(2)
		}
		if *serial {
			log.Error("-replica-of and -serial are incompatible: replay needs the parallel-nesting runtime")
			os.Exit(2)
		}
	} else if *maxStale != 0 {
		log.Error("-max-staleness only applies with -replica-of")
		os.Exit(2)
	}

	s, err := server.New(server.Config{
		Addr:                *addr,
		Shards:              *shards,
		Workers:             *workers,
		MaxBatch:            *batch,
		BatchDelay:          *batchdelay,
		Serial:              *serial,
		SharedReads:         *sharedr,
		MaxInflight:         *inflight,
		Registry:            stmlib.RegistryConfig{MapBuckets: *buckets, CounterStripes: *stripes},
		DataDir:             *dataDir,
		Fsync:               *fsync,
		WALSyncDelay:        *syncDelay,
		SnapshotEvery:       *snapEvery,
		WALSegmentBytes:     *walSegment,
		AdminAddr:           *adminAddr,
		AdminDebug:          *adminDebug,
		ReplicaOf:           *replicaOf,
		ReplicaMaxStaleness: *maxStale,
		Adaptive:            *adaptive,
		ReapInterval:        *reapEvery,
		DisableTracing:      !*trace,
		TraceSample:         *traceSamp,
		Logger:              log,
	})
	if err != nil {
		log.Error("boot failed", "err", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		ws := s.WALStats()
		log.Info("recovered store", "dir", *dataDir, "shards", *shards,
			"snapshot_records", ws.SnapshotLSN, "wal_records_replayed", ws.TailLSN-ws.SnapshotLSN,
			"durable_records", ws.TailLSN)
		if ws.RepairedTail {
			log.Warn("repaired a torn WAL tail", "segments_quarantined", ws.Quarantined)
		}
	}
	if err := s.Listen(); err != nil {
		log.Error("listen failed", "err", err)
		os.Exit(1)
	}
	mode := "parallel"
	if *serial {
		mode = "serial"
	}
	if *replicaOf != "" {
		log.Info("replica mode", "primary", *replicaOf,
			"max_staleness_ms", s.ReplicaStatus().MaxStalenessMs)
	}
	log.Info("listening", "addr", s.Addr().String(), "shards", *shards, "workers", *workers,
		"batch", *batch, "delay", *batchdelay, "runtime", mode, "tracing", *trace)
	if a := s.AdminAddr(); a != nil {
		log.Info("admin listening", "addr", "http://"+a.String(),
			"endpoints", "/metrics /healthz /readyz /config /debug/hotkeys /debug/trace",
			"pprof", *adminDebug, "adaptive", *adaptive)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	select {
	case <-sig:
		log.Info("shutting down")
	case err := <-serveDone:
		if err != nil {
			log.Error("serve failed", "err", err)
			s.Close()
			os.Exit(1)
		}
	}
	start := time.Now()
	s.Close()
	st := s.Stats()
	log.Info("drained", "took", time.Since(start).Round(time.Millisecond).String())
	log.Info("batching totals", "batches", st.Batches, "requests", st.Requests,
		"mean_batch", fmt.Sprintf("%.2f", st.MeanBatch), "largest", st.LargestBatch)
	log.Info("runtime totals", "begun", st.Runtime.Begun, "committed", st.Runtime.Committed,
		"aborted", st.Runtime.Aborted, "abort_ratio", fmt.Sprintf("%.4f", st.RuntimeAborts),
		"escalations", st.Runtime.Escalations, "trace_events", st.Runtime.TraceEvents)
	if st.WAL != nil {
		log.Info("wal totals", "records", st.WAL.Appends, "fsyncs", st.WAL.Syncs,
			"snapshots", st.WAL.Snapshots, "segments", st.WAL.Segments, "durable_records", st.WAL.TailLSN)
	}
	if len(st.PerShard) > 1 {
		for _, sh := range st.PerShard {
			log.Info("shard totals", "shard", sh.Shard, "batches", sh.Batches, "requests", sh.Requests,
				"mean_batch", fmt.Sprintf("%.2f", sh.MeanBatch), "abort_ratio", fmt.Sprintf("%.4f", sh.Runtime.AbortRate()))
		}
	}
}
