// Command pnstm-stress hammers the STM with randomized nested-parallel
// workloads and checks global invariants, as a long-running soak test.
//
// Usage:
//
//	pnstm-stress -duration 10s -workers 8 -accounts 64
//
// The workload is a bank: random transfers run as transactions whose
// debit and credit execute as parallel nested children (the paper's
// Figure 1 pattern), interleaved with audit transactions that sum every
// account inside one transaction. Invariants checked continuously:
//
//   - conservation: the total balance never changes;
//   - audit atomicity: an audit observes a consistent snapshot.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"pnstm"
)

func main() {
	var (
		duration = flag.Duration("duration", 5*time.Second, "how long to run")
		workers  = flag.Int("workers", 8, "worker slots P")
		accounts = flag.Int("accounts", 64, "number of accounts")
		groups   = flag.Int("groups", 8, "concurrent transfer groups")
		seed     = flag.Int64("seed", time.Now().UnixNano(), "workload seed")
	)
	flag.Parse()

	// Validate up front with actionable messages instead of surfacing
	// whatever pnstm.New or an index computation would fail with later.
	if *workers < 1 || *workers > 32 {
		fmt.Fprintf(os.Stderr, "pnstm-stress: -workers must be in 1..32 (the runtime's 2P-bit identifier space caps P at 32), got %d\n", *workers)
		os.Exit(2)
	}
	if *accounts <= 0 {
		fmt.Fprintf(os.Stderr, "pnstm-stress: -accounts must be positive, got %d\n", *accounts)
		os.Exit(2)
	}
	if *groups <= 0 {
		fmt.Fprintf(os.Stderr, "pnstm-stress: -groups must be positive, got %d\n", *groups)
		os.Exit(2)
	}
	if *duration <= 0 {
		fmt.Fprintf(os.Stderr, "pnstm-stress: -duration must be positive, got %v\n", *duration)
		os.Exit(2)
	}

	rt, err := pnstm.New(pnstm.Config{Workers: *workers, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnstm-stress: %v\n", err)
		os.Exit(1)
	}
	defer rt.Close()

	const initial = 1000
	total := *accounts * initial
	vars := make([]*pnstm.TVar[int], *accounts)
	for i := range vars {
		vars[i] = pnstm.NewTVar(initial)
	}

	var transfers, audits, violations atomic.Int64
	deadline := time.Now().Add(*duration)

	err = rt.Run(func(c *pnstm.Ctx) {
		fns := make([]func(*pnstm.Ctx), *groups+1)
		for g := 0; g < *groups; g++ {
			rng := rand.New(rand.NewSource(*seed + int64(g)))
			fns[g] = func(c *pnstm.Ctx) {
				for time.Now().Before(deadline) {
					from := rng.Intn(len(vars))
					to := rng.Intn(len(vars))
					amt := rng.Intn(50)
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						c.Parallel(
							func(c *pnstm.Ctx) {
								_ = c.Atomic(func(c *pnstm.Ctx) error {
									pnstm.Update(c, vars[from], func(v int) int { return v - amt })
									return nil
								})
							},
							func(c *pnstm.Ctx) {
								_ = c.Atomic(func(c *pnstm.Ctx) error {
									pnstm.Update(c, vars[to], func(v int) int { return v + amt })
									return nil
								})
							},
						)
						return nil
					})
					transfers.Add(1)
				}
			}
		}
		// Auditor: full-sum transactions must always see the invariant.
		auditRng := rand.New(rand.NewSource(*seed - 1))
		fns[*groups] = func(c *pnstm.Ctx) {
			for time.Now().Before(deadline) {
				sum, err := pnstm.AtomicResult(c, func(c *pnstm.Ctx) (int, error) {
					s := 0
					for _, v := range vars {
						s += pnstm.Load(c, v)
					}
					return s, nil
				})
				if err == nil {
					audits.Add(1)
					if sum != total {
						violations.Add(1)
						fmt.Fprintf(os.Stderr, "AUDIT VIOLATION: sum=%d want %d\n", sum, total)
					}
				}
				time.Sleep(time.Duration(auditRng.Intn(2000)) * time.Microsecond)
			}
		}
		c.Parallel(fns...)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pnstm-stress: %v\n", err)
		os.Exit(1)
	}

	sum := 0
	for _, v := range vars {
		sum += v.Peek()
	}
	st := rt.Stats()
	fmt.Printf("transfers: %d  audits: %d  final-sum: %d (want %d)\n",
		transfers.Load(), audits.Load(), sum, total)
	fmt.Printf("stats: begun=%d committed=%d aborted=%d conflicts=%d escalations=%d spin-saves=%d\n",
		st.Begun, st.Committed, st.Aborted, st.Conflicts, st.Escalations, st.SpinSaves)
	fmt.Printf("sched: dispatches=%d borrows=%d inline=%d serialized=%d handoffs=%d yields=%d\n",
		st.Dispatches, st.BorrowDispatch, st.InlineChildren, st.SerializedFork, st.Handoffs, st.SlotYields)
	fmt.Printf("bitnums: self-discards=%d remote-discards=%d borrow-switches=%d peak-parents=%d\n",
		st.SelfDiscards, st.RemoteDiscards, st.BorrowSwitches, st.PeakParents)
	if violations.Load() > 0 || sum != total {
		fmt.Fprintln(os.Stderr, "INVARIANT VIOLATED")
		os.Exit(1)
	}
	fmt.Println("OK")
}
