# pnstmd — the sharded parallel-nesting STM server — as a container.
#
#   docker build -t pnstmd .
#   docker run -p 7455:7455 -p 7456:7456 pnstmd \
#       -shards 4 -admin :7456 -adaptive
#
# The admin listener doubles as the container health surface: the
# HEALTHCHECK probes /healthz, and /readyz flips to 503 the moment
# shutdown begins or a shard's WAL latches an I/O error, so an
# orchestrator stops routing to a replica that can no longer commit.
# Durable deployments mount a volume and add -data-dir /data.

FROM golang:1.23-alpine AS build
WORKDIR /src
# No third-party modules: go.mod alone pins the toolchain, and the
# source tree is the entire dependency closure.
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/pnstmd ./cmd/pnstmd \
    && CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/pnstm-loadgen ./cmd/pnstm-loadgen

FROM alpine:3.20
RUN apk add --no-cache wget ca-certificates \
    && addgroup -S pnstm && adduser -S -G pnstm pnstm \
    && mkdir /data && chown pnstm:pnstm /data
COPY --from=build /out/pnstmd /usr/local/bin/pnstmd
# The load generator rides along for smoke-testing a deployed image
# (docker exec <ctr> pnstm-loadgen -addr 127.0.0.1:7455 ...).
COPY --from=build /out/pnstm-loadgen /usr/local/bin/pnstm-loadgen
USER pnstm
VOLUME /data
EXPOSE 7455 7456
HEALTHCHECK --interval=10s --timeout=3s --start-period=5s --retries=3 \
    CMD wget -q -O /dev/null http://127.0.0.1:7456/healthz || exit 1
ENTRYPOINT ["pnstmd", "-addr", ":7455", "-admin", ":7456"]
CMD ["-shards", "4", "-adaptive"]
