package client

import (
	"errors"
	"fmt"

	"pnstm/server"
)

// ErrCrossShard is returned (wrapped) when a PRE-D29 server refuses a
// mutating transaction whose structures live on different shards.
// Current servers no longer refuse: a mutating multi-shard transaction
// commits atomically through the deterministic ordered-commit path
// (gather → judge → apply under one global sequence number), so against
// an up-to-date pnstmd this error does not occur. It is retained only
// so clients talking to an older binary can classify the refusal. Test
// with errors.Is.
var ErrCrossShard = errors.New("transaction spans multiple shards")

// ErrTxAborted is returned by Txn.Commit when the server rejected the
// transaction: the guard (AssertEq/AssertGE/…) at FailedOpIndex was
// false, and EVERY write of the transaction was rolled back — the store
// is exactly as if the transaction never ran.
//
// Retry guidance: a failed guard is the app-level conflict signal —
// the transactional equivalent of a compare-and-swap losing its race.
// The server has already resolved all low-level STM conflicts
// internally (transactions are retried inside their group commit), so
// ErrTxAborted never means "try the identical transaction again": it
// means the state your guards assumed has moved. Re-read the current
// state, rebuild the transaction against it, and bound the retries
// (the classic optimistic-concurrency loop). A guard that keeps
// failing under contention is telling you to restructure — e.g. swap
// an AssertEq version check on a hot key for a commutative MapAddInt.
type ErrTxAborted struct {
	// FailedOpIndex is the envelope index (Txn op order, 0-based) of
	// the sub-op that failed.
	FailedOpIndex int
	// Reason describes the failed assertion.
	Reason string
}

func (e *ErrTxAborted) Error() string {
	return fmt.Sprintf("client: transaction aborted at op %d: %s", e.FailedOpIndex, e.Reason)
}

// Txn builds one atomic multi-structure transaction — the wire OpTx
// envelope. Ops execute in the order they are added, atomically, with
// read-your-writes across ops on the same structure; on the server the
// whole envelope runs as one nested child of a group-commit batch, its
// per-structure op groups fanned as parallel-nested grandchildren. On a
// sharded server an envelope whose structures span several shards is
// still one atomic commit: reads fan, and writes go through the
// cross-shard ordered-commit path (one global sequence number, all
// slices commit or none do).
// Build errors (oversize fields) are deferred to Commit, so chains
// never need intermediate checks:
//
//	res, err := cl.Txn().
//	        AssertGE("stock", "anvil", 2).
//	        MapAddInt("stock", "anvil", -2).
//	        CounterAdd("sold", 2).
//	        Commit()
//
// A Txn is single-use (Commit once) and not safe for concurrent
// building. Results are indexed by op order: capture At() before adding
// an op to know where its result will land.
type Txn struct {
	cl  *Client
	ops []server.TxOp
	err error
}

// Txn starts an empty transaction builder.
func (cl *Client) Txn() *Txn { return &Txn{cl: cl} }

// At returns the index the NEXT op will occupy — capture it before
// adding an op to address that op's result in the committed TxResults.
func (t *Txn) At() int { return len(t.ops) }

func (t *Txn) add(op server.TxOp) *Txn {
	t.ops = append(t.ops, op)
	return t
}

// MapGet reads key from the named map (result: Bytes/Found).
func (t *Txn) MapGet(name, key string) *Txn {
	return t.add(server.TxOp{Op: server.OpMapGet, Name: name, Key: key})
}

// MapPut stores value under key in the named map.
func (t *Txn) MapPut(name, key string, value []byte) *Txn {
	return t.add(server.TxOp{Op: server.OpMapPut, Name: name, Key: key, Value: value})
}

// MapPutInt stores an int64 value (the encoding MapAddInt and the
// integer guards understand).
func (t *Txn) MapPutInt(name, key string, v int64) *Txn {
	return t.MapPut(name, key, server.EncodeInt64(v))
}

// MapDelete removes key from the named map (result: Found).
func (t *Txn) MapDelete(name, key string) *Txn {
	return t.add(server.TxOp{Op: server.OpMapDelete, Name: name, Key: key})
}

// MapLen reads the named map's entry count (result: Num).
func (t *Txn) MapLen(name string) *Txn {
	return t.add(server.TxOp{Op: server.OpMapLen, Name: name})
}

// MapAddInt adds delta to the int64-encoded value under key, treating
// an absent key as 0 (result: Num is the new value, Found whether the
// key existed before).
func (t *Txn) MapAddInt(name, key string, delta int64) *Txn {
	return t.add(server.TxOp{Op: server.OpMapAdd, Name: name, Key: key, Delta: delta})
}

// QueuePush appends value to the named queue.
func (t *Txn) QueuePush(name string, value []byte) *Txn {
	return t.add(server.TxOp{Op: server.OpQueuePush, Name: name, Value: value})
}

// QueuePop removes the named queue's front element (result:
// Bytes/Found).
func (t *Txn) QueuePop(name string) *Txn {
	return t.add(server.TxOp{Op: server.OpQueuePop, Name: name})
}

// QueueLen reads the named queue's length (result: Num).
func (t *Txn) QueueLen(name string) *Txn {
	return t.add(server.TxOp{Op: server.OpQueueLen, Name: name})
}

// CounterAdd adds delta to the named counter. On a sharded server the
// credit lands on the shard the transaction executes on (counter state
// is per-shard partials; top-level Client.CounterSum reads the exact
// cross-shard total).
func (t *Txn) CounterAdd(name string, delta int64) *Txn {
	return t.add(server.TxOp{Op: server.OpCounterAdd, Name: name, Delta: delta})
}

// CounterSum reads the named counter (result: Num). Inside a
// transaction pinned to one shard this is that shard's partial — exact
// on a 1-shard server; in a fanned read-only transaction it is the
// exact cross-shard total.
func (t *Txn) CounterSum(name string) *Txn {
	return t.add(server.TxOp{Op: server.OpCounterSum, Name: name})
}

// AssertEq guards the transaction on a map value: the bytes under key
// must equal value exactly (nil asserts the key is absent), or the
// whole transaction aborts with ErrTxAborted.
func (t *Txn) AssertEq(name, key string, value []byte) *Txn {
	if key == "" {
		t.fail(fmt.Errorf("client: AssertEq needs a key (use AssertCounterEq for counters)"))
		return t
	}
	return t.add(server.TxOp{Op: server.OpAssertEq, Name: name, Key: key, Value: value})
}

// AssertEqInt is AssertEq against an int64-encoded value.
func (t *Txn) AssertEqInt(name, key string, v int64) *Txn {
	return t.AssertEq(name, key, server.EncodeInt64(v))
}

// AssertGE guards the transaction on an int64-encoded map value: the
// value under key (0 when absent) must be ≥ min.
func (t *Txn) AssertGE(name, key string, min int64) *Txn {
	if key == "" {
		t.fail(fmt.Errorf("client: AssertGE needs a key (use AssertCounterGE for counters)"))
		return t
	}
	return t.add(server.TxOp{Op: server.OpAssertGE, Name: name, Key: key, Delta: min})
}

// AssertCounterEq guards the transaction on a counter's sum (the
// executing shard's partial on a sharded server; exact when fanned
// read-only or on a 1-shard server).
func (t *Txn) AssertCounterEq(name string, v int64) *Txn {
	return t.add(server.TxOp{Op: server.OpAssertEq, Name: name, Delta: v})
}

// AssertCounterGE guards the transaction on a counter's sum being ≥ min.
func (t *Txn) AssertCounterGE(name string, min int64) *Txn {
	return t.add(server.TxOp{Op: server.OpAssertGE, Name: name, Delta: min})
}

// SortedGet reads key from the named sorted map (result: Bytes/Found;
// an expired-but-unreaped entry reads as absent).
func (t *Txn) SortedGet(name, key string) *Txn {
	return t.add(server.TxOp{Op: server.OpSortedGet, Name: name, Key: key})
}

// SortedPut stores value under key in the named sorted map.
func (t *Txn) SortedPut(name, key string, value []byte) *Txn {
	return t.add(server.TxOp{Op: server.OpSortedPut, Name: name, Key: key, Value: value})
}

// SortedPutTTL stores value under key expiring at deadline (UnixNano).
// deadline <= 0 stores without a deadline. Reads hide the entry once
// the deadline passes; the server's reaper removes it physically.
func (t *Txn) SortedPutTTL(name, key string, value []byte, deadline int64) *Txn {
	return t.add(server.TxOp{Op: server.OpSortedPutTTL, Name: name, Key: key, Value: value, Delta: deadline})
}

// SortedDelete removes key from the named sorted map (result: Found).
func (t *Txn) SortedDelete(name, key string) *Txn {
	return t.add(server.TxOp{Op: server.OpSortedDelete, Name: name, Key: key})
}

// SortedLen reads the named sorted map's physical entry count —
// expired-but-unreaped entries included (result: Num).
func (t *Txn) SortedLen(name string) *Txn {
	return t.add(server.TxOp{Op: server.OpSortedLen, Name: name})
}

// RangeScan reads the live entries of [lo, hi) from the named sorted
// map in key order, at most limit entries (0: server cap). hi == ""
// scans to the end of the key space. Result: Entries/Num. The server
// executes the scan as parallel-nested children over key subranges, so
// a conflicting point write restarts only the child whose subrange it
// hit. Large ranges page: pass the last returned key + "\x00" as the
// next lo.
func (t *Txn) RangeScan(name, lo, hi string, limit int) *Txn {
	return t.add(server.TxOp{Op: server.OpRangeScan, Name: name, Key: lo, Value: []byte(hi), Delta: int64(limit)})
}

// RangeCount counts the live entries of [lo, hi) — hi == "" counts to
// the end — without materializing values (result: Num).
func (t *Txn) RangeCount(name, lo, hi string) *Txn {
	return t.add(server.TxOp{Op: server.OpRangeCount, Name: name, Key: lo, Value: []byte(hi)})
}

// MapPutTTL stores value under key in the named map expiring at
// deadline (UnixNano); deadline <= 0 stores without a deadline.
func (t *Txn) MapPutTTL(name, key string, value []byte, deadline int64) *Txn {
	return t.add(server.TxOp{Op: server.OpMapPutTTL, Name: name, Key: key, Value: value, Delta: deadline})
}

// LeaseConsume pops one element from the named queue under a lease
// expiring at deadline (UnixNano): the element leaves the queue but is
// requeued by the server's reaper if the lease is neither acked nor
// nacked by the deadline — at-least-once delivery. Result: Found
// whether an element was available, Lease/Num the lease id, Bytes the
// payload.
func (t *Txn) LeaseConsume(name string, deadline int64) *Txn {
	return t.add(server.TxOp{Op: server.OpLeaseConsume, Name: name, Delta: deadline})
}

// LeaseAck retires lease id — the element is done and never redelivered.
// GUARD-LIKE: if the lease no longer exists (its deadline passed and the
// reaper reclaimed it) the WHOLE transaction aborts with ErrTxAborted,
// so an ack bundled with its side effects commits exactly once per
// delivery.
func (t *Txn) LeaseAck(name string, id uint64) *Txn {
	return t.add(server.TxOp{Op: server.OpLeaseAck, Name: name, Delta: int64(id)})
}

// LeaseNack gives lease id's element back to the queue tail immediately
// (result: Found — false when the lease was already reclaimed, which is
// not an error: the element is back in the queue either way).
func (t *Txn) LeaseNack(name string, id uint64) *Txn {
	return t.add(server.TxOp{Op: server.OpLeaseNack, Name: name, Delta: int64(id)})
}

// LeaseReclaim requeues every lease of the named queue whose deadline
// is <= cutoff (result: Num = how many). Normally the server's reaper
// does this; explicit reclaim suits tests and external schedulers.
func (t *Txn) LeaseReclaim(name string, cutoff int64) *Txn {
	return t.add(server.TxOp{Op: server.OpLeaseReclaim, Name: name, Delta: cutoff})
}

// LeaseLen reads the named queue's outstanding-lease count (result: Num).
func (t *Txn) LeaseLen(name string) *Txn {
	return t.add(server.TxOp{Op: server.OpLeaseLen, Name: name})
}

func (t *Txn) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

// Commit sends the transaction and waits for its atomic outcome.
//
//   - nil error: every op executed and committed; results are indexed
//     by op order.
//   - *ErrTxAborted (errors.As): a guard was false; nothing committed.
//     The partial results show what the aborted attempt observed.
//   - ErrCrossShard (errors.Is): only from a pre-D29 server refusing a
//     mutating multi-shard transaction; current servers commit those
//     atomically via the cross-shard ordered-commit path instead.
//   - anything else: transport or server failure; for writes, assume
//     unknown outcome (as with any RPC).
func (t *Txn) Commit() (*TxResults, error) {
	if t.err != nil {
		return nil, t.err
	}
	if len(t.ops) == 0 {
		return &TxResults{}, nil
	}
	req := &server.Request{Op: server.OpTx, Tx: &server.Tx{Ops: t.ops}}
	var resp *server.Response
	var err error
	if readOnlyOps(t.ops) {
		// A pure-read envelope is eligible for replica routing under the
		// pool's read preference; anything mutating is primary-only.
		resp, err = t.cl.roundTripRead(req)
	} else {
		resp, err = t.cl.roundTrip(req)
	}
	if resp != nil {
		switch resp.Status {
		case server.StatusRejected:
			return &TxResults{rs: resp.TxResults},
				&ErrTxAborted{FailedOpIndex: int(resp.Num), Reason: resp.Msg}
		case server.StatusCrossShard:
			return nil, fmt.Errorf("client: %s: %w", resp.Msg, ErrCrossShard)
		}
	}
	if err != nil {
		return nil, err
	}
	return &TxResults{rs: resp.TxResults}, nil
}

// readOnlyOps reports whether every sub-op is a pure read or guard —
// the envelope mutates nothing and may be served by a replica. Keep in
// sync with the server's mutating-op classification.
func readOnlyOps(ops []server.TxOp) bool {
	for _, op := range ops {
		switch op.Op {
		case server.OpMapPut, server.OpMapDelete, server.OpMapAdd,
			server.OpQueuePush, server.OpQueuePop, server.OpCounterAdd,
			server.OpSortedPut, server.OpSortedPutTTL, server.OpSortedDelete,
			server.OpMapPutTTL, server.OpExpire, server.OpSortedExpire,
			server.OpLeaseConsume, server.OpLeaseAck, server.OpLeaseNack,
			server.OpLeaseReclaim:
			return false
		}
	}
	return true
}

// TxResults is the per-op outcome vector of a committed (or, partially,
// an aborted) transaction, indexed by op order.
type TxResults struct {
	rs []server.TxResult
}

// Len is the number of result slots.
func (r *TxResults) Len() int { return len(r.rs) }

func (r *TxResults) at(i int) server.TxResult {
	if i < 0 || i >= len(r.rs) {
		return server.TxResult{}
	}
	return r.rs[i]
}

// Executed reports whether op i ran (false for ops after the failing
// guard of an aborted transaction).
func (r *TxResults) Executed(i int) bool { return r.at(i).Status != 0 }

// Found reports op i's existence answer (map get/delete, queue pop,
// map add's "existed before").
func (r *TxResults) Found(i int) bool { return r.at(i).Found }

// Num reports op i's numeric answer (lengths, sums, map-add results,
// guard observations).
func (r *TxResults) Num(i int) int64 { return r.at(i).Num }

// Bytes reports op i's payload answer (map get, queue pop).
func (r *TxResults) Bytes(i int) []byte { return r.at(i).Value }

// Int decodes op i's payload as an int64-encoded value; ok mirrors
// Found.
func (r *TxResults) Int(i int) (v int64, ok bool, err error) {
	res := r.at(i)
	if !res.Found {
		return 0, false, nil
	}
	v, err = server.DecodeInt64(res.Value)
	return v, true, err
}

// Entry is one decoded RangeScan result: a key and its value, in key
// order within the scan.
type Entry struct {
	Key   string
	Value []byte
}

// Entries decodes op i's RangeScan result into its ordered entry list.
func (r *TxResults) Entries(i int) ([]Entry, error) {
	res := r.at(i)
	if len(res.Value) == 0 {
		return nil, nil
	}
	kvs, err := server.DecodeKVs(res.Value)
	if err != nil {
		return nil, fmt.Errorf("client: range scan result: %w", err)
	}
	out := make([]Entry, len(kvs))
	for j, kv := range kvs {
		out[j] = Entry{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

// Lease reports op i's LeaseConsume outcome: the lease id, the leased
// payload and whether an element was available at all.
func (r *TxResults) Lease(i int) (id uint64, value []byte, ok bool) {
	res := r.at(i)
	return uint64(res.Num), res.Value, res.Found
}
