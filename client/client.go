// Package client is the Go client for pnstmd: a pool of pipelined
// connections speaking the server's length-prefixed binary protocol,
// with typed helpers for the named structures (maps, queues, counters)
// and a fluent transaction builder (Txn) composing arbitrary atomic
// multi-structure operations — guards included — over the generic wire
// envelope. Checkout is one such composition, kept as a convenience.
//
// A Client is safe for concurrent use; that is the intended shape.
// Every in-flight request from every goroutine rides one of the pooled
// connections and is matched to its response by id, so N concurrent
// callers pipeline naturally — and on the server side, concurrent
// requests are what the group-commit batcher coalesces into one root
// transaction with a parallel nested child per request.
//
// Sharding is transparent to the client: a pnstmd running with -shards
// routes each request to its structure's shard server-side, answers
// counter reads with the cross-shard total, and responses still match
// by id whatever shard they committed on. Stats() exposes the
// per-shard breakdown via ServerStats.PerShard.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pnstm/server"
)

// Options configures Dial.
type Options struct {
	// Conns is the connection-pool size (default 1). More connections
	// help when a single TCP stream's serialization becomes the
	// bottleneck; requests are spread round-robin.
	Conns int

	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
}

// Client is a pooled, pipelined pnstmd client.
type Client struct {
	conns []*conn
	next  atomic.Uint64
}

// conn is one pooled connection with an id-demultiplexed reader.
type conn struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	pending map[uint64]chan *server.Response
	err     error
	closed  chan struct{}

	nextID atomic.Uint64
}

// Dial connects the pool.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = 1
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	cl := &Client{}
	for i := 0; i < opts.Conns; i++ {
		nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("client: dial %s: %w", addr, err)
		}
		c := &conn{
			nc:      nc,
			bw:      bufio.NewWriter(nc),
			pending: make(map[uint64]chan *server.Response),
			closed:  make(chan struct{}),
		}
		go c.readLoop()
		cl.conns = append(cl.conns, c)
	}
	return cl, nil
}

// Close tears down every pooled connection; in-flight calls fail.
func (cl *Client) Close() {
	for _, c := range cl.conns {
		c.fail(fmt.Errorf("client: closed"))
		c.nc.Close()
	}
}

// pick returns the next pool connection round-robin.
func (cl *Client) pick() *conn {
	return cl.conns[cl.next.Add(1)%uint64(len(cl.conns))]
}

// readLoop demultiplexes responses to their waiting callers.
func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		frame, err := server.ReadFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		resp, err := server.ParseResponse(frame)
		if err != nil {
			c.fail(err)
			c.nc.Close()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch == nil {
			// Every response must answer a registered request (ids are
			// assigned before the frame is written). An unmatched id —
			// e.g. the server could not recover the id from a corrupt
			// request — means the stream contract is broken: fail the
			// connection so every waiter errors out instead of one of
			// them hanging forever.
			c.fail(fmt.Errorf("client: unmatched response id %d, closing connection", resp.ID))
			c.nc.Close()
			return
		}
		ch <- resp
	}
}

// fail marks the connection broken and releases every waiter. Idempotent.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.closed)
	}
	c.pending = make(map[uint64]chan *server.Response)
	c.mu.Unlock()
}

// roundTrip sends req on one pooled connection and waits for its reply.
func (cl *Client) roundTrip(req *server.Request) (*server.Response, error) {
	c := cl.pick()
	req.ID = c.nextID.Add(1)
	ch := make(chan *server.Response, 1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[req.ID] = ch
	c.mu.Unlock()

	buf, err := server.AppendRequest(nil, req)
	if err != nil {
		// Unencodable request: fail just this call, not the connection.
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	c.wmu.Lock()
	_, err = c.bw.Write(buf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("client: write: %w", err))
		return nil, err
	}

	select {
	case resp := <-ch:
		if resp.Status == server.StatusErr {
			return resp, fmt.Errorf("client: server error: %s", resp.Msg)
		}
		return resp, nil
	case <-c.closed:
		return nil, c.connErr()
	}
}

func (c *conn) connErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// ---------------------------------------------------------------------------
// Typed helpers
// ---------------------------------------------------------------------------

// Ping round-trips a no-op (liveness, warmup).
func (cl *Client) Ping() error {
	_, err := cl.roundTrip(&server.Request{Op: server.OpPing})
	return err
}

// MapGet reads key from the named map.
func (cl *Client) MapGet(name, key string) ([]byte, bool, error) {
	resp, err := cl.roundTrip(&server.Request{Op: server.OpMapGet, Name: name, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// MapPut stores value under key in the named map.
func (cl *Client) MapPut(name, key string, value []byte) error {
	_, err := cl.roundTrip(&server.Request{Op: server.OpMapPut, Name: name, Key: key, Value: value})
	return err
}

// MapDelete removes key; reports whether it was present.
func (cl *Client) MapDelete(name, key string) (bool, error) {
	resp, err := cl.roundTrip(&server.Request{Op: server.OpMapDelete, Name: name, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Found, nil
}

// MapLen returns the named map's entry count.
func (cl *Client) MapLen(name string) (int64, error) {
	resp, err := cl.roundTrip(&server.Request{Op: server.OpMapLen, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Num, nil
}

// MapPutInt stores an integer value (the encoding OpCheckout's stock
// arithmetic understands).
func (cl *Client) MapPutInt(name, key string, v int64) error {
	return cl.MapPut(name, key, server.EncodeInt64(v))
}

// MapGetInt reads an integer value stored with MapPutInt.
func (cl *Client) MapGetInt(name, key string) (int64, bool, error) {
	raw, ok, err := cl.MapGet(name, key)
	if err != nil || !ok {
		return 0, ok, err
	}
	v, err := server.DecodeInt64(raw)
	if err != nil {
		return 0, true, err
	}
	return v, true, nil
}

// QueuePush appends value to the named queue.
func (cl *Client) QueuePush(name string, value []byte) error {
	_, err := cl.roundTrip(&server.Request{Op: server.OpQueuePush, Name: name, Value: value})
	return err
}

// QueuePop removes and returns the named queue's front element.
func (cl *Client) QueuePop(name string) ([]byte, bool, error) {
	resp, err := cl.roundTrip(&server.Request{Op: server.OpQueuePop, Name: name})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// QueueLen returns the named queue's length.
func (cl *Client) QueueLen(name string) (int64, error) {
	resp, err := cl.roundTrip(&server.Request{Op: server.OpQueueLen, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Num, nil
}

// CounterAdd adds delta to the named counter.
func (cl *Client) CounterAdd(name string, delta int64) error {
	_, err := cl.roundTrip(&server.Request{Op: server.OpCounterAdd, Name: name, Delta: delta})
	return err
}

// CounterSum reads the named counter.
func (cl *Client) CounterSum(name string) (int64, error) {
	resp, err := cl.roundTrip(&server.Request{Op: server.OpCounterSum, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Num, nil
}

// Checkout atomically decrements every line's stock in the named map and
// credits the checkout's counters. ok is false — with nil error — when
// the server rejected the order for insufficient stock (the whole
// checkout rolled back; failedSKU names the first short line).
//
// Checkout is a convenience over the generic transaction path: it
// submits the EXACT envelope the deprecated OpCheckout wire opcode
// translates to — server.CheckoutTx builds it for both routes (per
// line an AssertGE stock guard then a MapAdd decrement, ops 2i and
// 2i+1, then the counter credits) — so they cannot drift and produce
// identical store state and WAL records.
func (cl *Client) Checkout(stockMap string, co server.Checkout) (ok bool, failedSKU string, err error) {
	built, err := server.CheckoutTx(stockMap, &co)
	if err != nil {
		return false, "", err
	}
	tx := cl.Txn()
	tx.ops = built.Ops
	_, err = tx.Commit()
	var aborted *ErrTxAborted
	if errors.As(err, &aborted) {
		// Guards sit at the even indices, one per order line.
		if i := aborted.FailedOpIndex / 2; i < len(co.Lines) {
			return false, co.Lines[i].SKU, nil
		}
		return false, "", nil
	}
	if err != nil {
		return false, "", err
	}
	return true, "", nil
}

// Stats fetches the server's activity snapshot.
func (cl *Client) Stats() (server.ServerStats, error) {
	var st server.ServerStats
	resp, err := cl.roundTrip(&server.Request{Op: server.OpStats})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(resp.Value, &st); err != nil {
		return st, fmt.Errorf("client: decode stats: %w", err)
	}
	return st, nil
}
