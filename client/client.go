// Package client is the Go client for pnstmd: a pool of pipelined
// connections speaking the server's length-prefixed binary protocol,
// with typed helpers for the named structures (maps, queues, counters)
// and a fluent transaction builder (Txn) composing arbitrary atomic
// multi-structure operations — guards included — over the generic wire
// envelope. Checkout is one such composition, kept as a convenience.
//
// Connect is the construction path: it dials every address in
// Options.Addrs, handshakes each connection (a versioned Hello with
// feature bits — legacy servers that reject the unknown opcode are
// classified as primaries with no features), and learns which endpoints
// are primaries and which are read replicas. Writes always go to a
// primary; read-only operations are routed by Options.ReadPreference,
// within the Options.MaxStaleness bound the handshake declares — a
// replica that cannot meet the bound answers StatusNotPrimary and the
// client falls back or surfaces ErrNotPrimary.
//
// A Client is safe for concurrent use; that is the intended shape.
// Every in-flight request from every goroutine rides one of the pooled
// connections and is matched to its response by id, so N concurrent
// callers pipeline naturally — and on the server side, concurrent
// requests are what the group-commit batcher coalesces into one root
// transaction with a parallel nested child per request.
//
// Sharding is transparent to the client: a pnstmd running with -shards
// routes each request to its structure's shard server-side, answers
// counter reads with the cross-shard total, and responses still match
// by id whatever shard they committed on. Stats() exposes the
// per-shard breakdown via ServerStats.PerShard.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pnstm/server"
)

// ReadPreference selects where read-only operations execute.
type ReadPreference int

const (
	// ReadPrimary (the default) serves reads from a primary — the
	// strongest freshness; replicas are used only when the pool holds no
	// primary at all.
	ReadPrimary ReadPreference = iota
	// ReadPreferReplica serves reads from a replica when one is pooled,
	// falling back to a primary when none is (or when the replica
	// refuses for staleness).
	ReadPreferReplica
	// ReadReplicaRequired serves reads ONLY from replicas — reads fail
	// rather than load the primary (capacity isolation).
	ReadReplicaRequired
)

// ErrNotPrimary is wrapped into errors for operations a replica refused
// with a redirect (mutations on a replica, or reads beyond the
// connection's staleness bound). The error text names the primary.
// Test with errors.Is.
var ErrNotPrimary = errors.New("not the primary")

// Options configures Connect.
type Options struct {
	// Addrs lists every endpoint — primaries and replicas in any order;
	// roles are discovered by the handshake, not declared here.
	Addrs []string

	// PoolSize is the number of connections dialed PER address
	// (default 1). More connections help when a single TCP stream's
	// serialization becomes the bottleneck; requests spread round-robin.
	PoolSize int

	// ReadPreference routes read-only operations (see the constants).
	ReadPreference ReadPreference

	// MaxStaleness, when positive, is the read-staleness bound declared
	// to every replica connection: a replica whose replication watermark
	// is older refuses reads with a redirect instead of serving stale
	// state. Zero: any replica staleness is acceptable.
	MaxStaleness time.Duration

	// Timeout bounds each connection attempt (default 5s).
	Timeout time.Duration

	// Conns is the connection-pool size.
	//
	// Deprecated: the old name for PoolSize, honored when PoolSize is
	// zero; kept one release for migration.
	Conns int

	// DialTimeout bounds each connection attempt.
	//
	// Deprecated: the old name for Timeout, honored when Timeout is
	// zero; kept one release for migration.
	DialTimeout time.Duration
}

// Client is a pooled, pipelined pnstmd client with read-preference
// routing across primaries and replicas.
type Client struct {
	pref      ReadPreference
	conns     []*conn // every pooled connection (Close)
	primaries []*conn
	replicas  []*conn
	nextP     atomic.Uint64
	nextR     atomic.Uint64
}

// conn is one pooled connection with an id-demultiplexed reader.
type conn struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	pending map[uint64]chan *server.Response
	err     error
	closed  chan struct{}

	nextID atomic.Uint64
}

// Connect dials PoolSize connections to every address, handshakes each
// one, and returns the routing pool. Any address failing to dial or
// handshake fails the whole Connect (no silently degraded pools).
func Connect(opts Options) (*Client, error) {
	if len(opts.Addrs) == 0 {
		return nil, fmt.Errorf("client: Connect needs at least one address in Options.Addrs")
	}
	pool := opts.PoolSize
	if pool <= 0 {
		pool = opts.Conns // deprecated alias
	}
	if pool <= 0 {
		pool = 1
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = opts.DialTimeout // deprecated alias
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	cl := &Client{pref: opts.ReadPreference}
	for _, addr := range opts.Addrs {
		for i := 0; i < pool; i++ {
			nc, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				cl.Close()
				return nil, fmt.Errorf("client: dial %s: %w", addr, err)
			}
			c := &conn{
				nc:      nc,
				bw:      bufio.NewWriter(nc),
				pending: make(map[uint64]chan *server.Response),
				closed:  make(chan struct{}),
			}
			go c.readLoop()
			info, err := handshake(c, opts.MaxStaleness)
			if err != nil {
				cl.Close()
				c.nc.Close()
				return nil, fmt.Errorf("client: handshake %s: %w", addr, err)
			}
			cl.conns = append(cl.conns, c)
			if info != nil && info.Role == server.RoleReplica {
				cl.replicas = append(cl.replicas, c)
			} else {
				cl.primaries = append(cl.primaries, c)
			}
		}
	}
	return cl, nil
}

// handshake sends the versioned Hello on one connection, declaring the
// read-staleness bound the server will enforce for that connection's
// reads. A legacy server rejects the unknown opcode with StatusErr —
// a well-defined outcome meaning "version 0, no features, primary"
// (nil info). Transport failures are real errors.
func handshake(c *conn, maxStaleness time.Duration) (*server.HelloInfo, error) {
	hello := &server.Hello{Version: server.ProtoVersion}
	if maxStaleness > 0 {
		hello.MaxStalenessMs = uint32(maxStaleness.Milliseconds())
	}
	resp, err := c.do(&server.Request{Op: server.OpHello, Hello: hello})
	if err != nil {
		if resp != nil && resp.Status == server.StatusErr {
			return nil, nil // legacy peer: no handshake, primary semantics
		}
		return nil, err
	}
	return server.ParseHelloInfo(resp.Value)
}

// Dial connects a single-address pool.
//
// Deprecated: use Connect with Options.Addrs; Dial is the thin
// single-address shim kept one release for migration.
func Dial(addr string, opts Options) (*Client, error) {
	opts.Addrs = []string{addr}
	return Connect(opts)
}

// Close tears down every pooled connection; in-flight calls fail.
func (cl *Client) Close() {
	for _, c := range cl.conns {
		c.fail(fmt.Errorf("client: closed"))
		c.nc.Close()
	}
}

// pickWrite returns the connection mutations ride: a primary when the
// pool has one, otherwise any connection — the server is authoritative
// (a promoted replica accepts; an un-promoted one answers
// StatusNotPrimary, surfaced as ErrNotPrimary).
func (cl *Client) pickWrite() *conn {
	if len(cl.primaries) > 0 {
		return cl.primaries[cl.nextP.Add(1)%uint64(len(cl.primaries))]
	}
	return cl.conns[cl.nextP.Add(1)%uint64(len(cl.conns))]
}

// pickReplica returns the next replica connection, nil when none.
func (cl *Client) pickReplica() *conn {
	if len(cl.replicas) == 0 {
		return nil
	}
	return cl.replicas[cl.nextR.Add(1)%uint64(len(cl.replicas))]
}

// readLoop demultiplexes responses to their waiting callers.
func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		frame, err := server.ReadFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		resp, err := server.ParseResponse(frame)
		if err != nil {
			c.fail(err)
			c.nc.Close()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch == nil {
			// Every response must answer a registered request (ids are
			// assigned before the frame is written). An unmatched id —
			// e.g. the server could not recover the id from a corrupt
			// request — means the stream contract is broken: fail the
			// connection so every waiter errors out instead of one of
			// them hanging forever.
			c.fail(fmt.Errorf("client: unmatched response id %d, closing connection", resp.ID))
			c.nc.Close()
			return
		}
		ch <- resp
	}
}

// fail marks the connection broken and releases every waiter. Idempotent.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.closed)
	}
	c.pending = make(map[uint64]chan *server.Response)
	c.mu.Unlock()
}

// do sends req on this connection and waits for its reply.
func (c *conn) do(req *server.Request) (*server.Response, error) {
	req.ID = c.nextID.Add(1)
	ch := make(chan *server.Response, 1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[req.ID] = ch
	c.mu.Unlock()

	buf, err := server.AppendRequest(nil, req)
	if err != nil {
		// Unencodable request: fail just this call, not the connection.
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	c.wmu.Lock()
	_, err = c.bw.Write(buf)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("client: write: %w", err))
		return nil, err
	}

	select {
	case resp := <-ch:
		switch resp.Status {
		case server.StatusErr:
			return resp, fmt.Errorf("client: server error: %s", resp.Msg)
		case server.StatusNotPrimary:
			return resp, fmt.Errorf("client: %s: %w", resp.Msg, ErrNotPrimary)
		}
		return resp, nil
	case <-c.closed:
		return nil, c.connErr()
	}
}

// roundTrip routes a mutating (or primary-affine) request.
func (cl *Client) roundTrip(req *server.Request) (*server.Response, error) {
	return cl.pickWrite().do(req)
}

// roundTripRead routes a read-only request by the pool's read
// preference. A replica's refusal (staleness, promotion races) or
// connection failure falls back to a primary except under
// ReadReplicaRequired, where replicas are the only legal target.
func (cl *Client) roundTripRead(req *server.Request) (*server.Response, error) {
	switch cl.pref {
	case ReadReplicaRequired:
		c := cl.pickReplica()
		if c == nil {
			return nil, fmt.Errorf("client: ReadReplicaRequired but the pool has no replica connection: %w", ErrNotPrimary)
		}
		return c.do(req)
	case ReadPreferReplica:
		if c := cl.pickReplica(); c != nil {
			resp, err := c.do(req)
			if err == nil || len(cl.primaries) == 0 {
				return resp, err
			}
			// Stale or broken replica: retry once on a primary (fresh id).
			return cl.primaries[cl.nextP.Add(1)%uint64(len(cl.primaries))].do(req)
		}
		return cl.pickWrite().do(req)
	default: // ReadPrimary
		return cl.pickWrite().do(req)
	}
}

func (c *conn) connErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// ---------------------------------------------------------------------------
// Typed helpers
// ---------------------------------------------------------------------------

// Ping round-trips a no-op (liveness, warmup) on a write-path
// connection.
func (cl *Client) Ping() error {
	_, err := cl.roundTrip(&server.Request{Op: server.OpPing})
	return err
}

// MapGet reads key from the named map.
func (cl *Client) MapGet(name, key string) ([]byte, bool, error) {
	resp, err := cl.roundTripRead(&server.Request{Op: server.OpMapGet, Name: name, Key: key})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// MapPut stores value under key in the named map.
func (cl *Client) MapPut(name, key string, value []byte) error {
	_, err := cl.roundTrip(&server.Request{Op: server.OpMapPut, Name: name, Key: key, Value: value})
	return err
}

// MapDelete removes key; reports whether it was present.
func (cl *Client) MapDelete(name, key string) (bool, error) {
	resp, err := cl.roundTrip(&server.Request{Op: server.OpMapDelete, Name: name, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Found, nil
}

// MapLen returns the named map's entry count.
func (cl *Client) MapLen(name string) (int64, error) {
	resp, err := cl.roundTripRead(&server.Request{Op: server.OpMapLen, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Num, nil
}

// MapPutInt stores an integer value (the encoding OpCheckout's stock
// arithmetic understands).
func (cl *Client) MapPutInt(name, key string, v int64) error {
	return cl.MapPut(name, key, server.EncodeInt64(v))
}

// MapGetInt reads an integer value stored with MapPutInt.
func (cl *Client) MapGetInt(name, key string) (int64, bool, error) {
	raw, ok, err := cl.MapGet(name, key)
	if err != nil || !ok {
		return 0, ok, err
	}
	v, err := server.DecodeInt64(raw)
	if err != nil {
		return 0, true, err
	}
	return v, true, nil
}

// QueuePush appends value to the named queue.
func (cl *Client) QueuePush(name string, value []byte) error {
	_, err := cl.roundTrip(&server.Request{Op: server.OpQueuePush, Name: name, Value: value})
	return err
}

// QueuePop removes and returns the named queue's front element.
func (cl *Client) QueuePop(name string) ([]byte, bool, error) {
	resp, err := cl.roundTrip(&server.Request{Op: server.OpQueuePop, Name: name})
	if err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Found, nil
}

// QueueLen returns the named queue's length.
func (cl *Client) QueueLen(name string) (int64, error) {
	resp, err := cl.roundTripRead(&server.Request{Op: server.OpQueueLen, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Num, nil
}

// CounterAdd adds delta to the named counter.
func (cl *Client) CounterAdd(name string, delta int64) error {
	_, err := cl.roundTrip(&server.Request{Op: server.OpCounterAdd, Name: name, Delta: delta})
	return err
}

// CounterSum reads the named counter.
func (cl *Client) CounterSum(name string) (int64, error) {
	resp, err := cl.roundTripRead(&server.Request{Op: server.OpCounterSum, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Num, nil
}

// SortedPut stores value under key in the named sorted map.
func (cl *Client) SortedPut(name, key string, value []byte) error {
	_, err := cl.Txn().SortedPut(name, key, value).Commit()
	return err
}

// SortedPutTTL stores value under key in the named sorted map, expiring
// at deadline (UnixNano); deadline <= 0 stores without a deadline.
func (cl *Client) SortedPutTTL(name, key string, value []byte, deadline int64) error {
	_, err := cl.Txn().SortedPutTTL(name, key, value, deadline).Commit()
	return err
}

// SortedGet reads key from the named sorted map (expired entries read
// as absent).
func (cl *Client) SortedGet(name, key string) ([]byte, bool, error) {
	res, err := cl.Txn().SortedGet(name, key).Commit()
	if err != nil {
		return nil, false, err
	}
	return res.Bytes(0), res.Found(0), nil
}

// SortedDelete removes key from the named sorted map; reports whether
// it was present.
func (cl *Client) SortedDelete(name, key string) (bool, error) {
	res, err := cl.Txn().SortedDelete(name, key).Commit()
	if err != nil {
		return false, err
	}
	return res.Found(0), nil
}

// RangeScan reads the live entries of [lo, hi) from the named sorted
// map in key order, at most limit entries (0: server cap; hi == ""
// scans to the end of the key space).
func (cl *Client) RangeScan(name, lo, hi string, limit int) ([]Entry, error) {
	res, err := cl.Txn().RangeScan(name, lo, hi, limit).Commit()
	if err != nil {
		return nil, err
	}
	return res.Entries(0)
}

// RangeCount counts the live entries of [lo, hi) in the named sorted
// map (hi == "" counts to the end).
func (cl *Client) RangeCount(name, lo, hi string) (int64, error) {
	res, err := cl.Txn().RangeCount(name, lo, hi).Commit()
	if err != nil {
		return 0, err
	}
	return res.Num(0), nil
}

// MapPutTTL stores value under key in the named map, expiring at
// deadline (UnixNano); deadline <= 0 stores without a deadline.
func (cl *Client) MapPutTTL(name, key string, value []byte, deadline int64) error {
	_, err := cl.Txn().MapPutTTL(name, key, value, deadline).Commit()
	return err
}

// LeaseConsume pops one element from the named queue under a lease
// expiring at deadline (at-least-once delivery: an unacked lease is
// requeued by the server's reaper after the deadline). ok is false when
// the queue had nothing to lease.
func (cl *Client) LeaseConsume(name string, deadline int64) (id uint64, value []byte, ok bool, err error) {
	res, err := cl.Txn().LeaseConsume(name, deadline).Commit()
	if err != nil {
		return 0, nil, false, err
	}
	id, value, ok = res.Lease(0)
	return id, value, ok, nil
}

// LeaseAck retires lease id. ok is false — with nil error — when the
// lease no longer existed (its deadline passed and the element was
// reclaimed for redelivery): the work will run again, which is the
// at-least-once contract. To bundle the ack atomically with its side
// effects, build a Txn with LeaseAck and the other ops instead.
func (cl *Client) LeaseAck(name string, id uint64) (bool, error) {
	_, err := cl.Txn().LeaseAck(name, id).Commit()
	var aborted *ErrTxAborted
	if errors.As(err, &aborted) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// LeaseNack returns lease id's element to the queue tail immediately.
func (cl *Client) LeaseNack(name string, id uint64) (bool, error) {
	res, err := cl.Txn().LeaseNack(name, id).Commit()
	if err != nil {
		return false, err
	}
	return res.Found(0), nil
}

// Checkout atomically decrements every line's stock in the named map and
// credits the checkout's counters. ok is false — with nil error — when
// the server rejected the order for insufficient stock (the whole
// checkout rolled back; failedSKU names the first short line).
//
// Checkout is a convenience over the generic transaction path: it
// submits the EXACT envelope the deprecated OpCheckout wire opcode
// translates to — server.CheckoutTx builds it for both routes (per
// line an AssertGE stock guard then a MapAdd decrement, ops 2i and
// 2i+1, then the counter credits) — so they cannot drift and produce
// identical store state and WAL records.
func (cl *Client) Checkout(stockMap string, co server.Checkout) (ok bool, failedSKU string, err error) {
	built, err := server.CheckoutTx(stockMap, &co)
	if err != nil {
		return false, "", err
	}
	tx := cl.Txn()
	tx.ops = built.Ops
	_, err = tx.Commit()
	var aborted *ErrTxAborted
	if errors.As(err, &aborted) {
		// Guards sit at the even indices, one per order line.
		if i := aborted.FailedOpIndex / 2; i < len(co.Lines) {
			return false, co.Lines[i].SKU, nil
		}
		return false, "", nil
	}
	if err != nil {
		return false, "", err
	}
	return true, "", nil
}

// Stats fetches the server's activity snapshot (primary-affine: the
// figures describe one process, and the primary's are the ones the
// benchmarks and verifiers reason about).
func (cl *Client) Stats() (server.ServerStats, error) {
	var st server.ServerStats
	resp, err := cl.roundTrip(&server.Request{Op: server.OpStats})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(resp.Value, &st); err != nil {
		return st, fmt.Errorf("client: decode stats: %w", err)
	}
	return st, nil
}
