// Package pnstm is a software transactional memory with parallel nesting:
// transactions may fork parallel work, and the transactions started inside
// run as parallel children of the enclosing transaction — at any depth —
// while begin, commit and per-access conflict detection all stay O(1),
// independent of nesting depth.
//
// It is a from-scratch Go reproduction of:
//
//	João Barreto, Aleksandar Dragojević, Paulo Ferreira, Rachid Guerraoui,
//	Michał Kapałka. "Leveraging Parallel Nesting in Transactional Memory."
//	PPoPP 2010.
//
// # Model
//
// A Runtime owns P worker slots and schedules fork–join blocks over them
// (an XCilk-style work-stealing system, paper §3). Programs are trees of
// atomic regions and parallel statements:
//
//	rt, _ := pnstm.New(pnstm.Config{Workers: 8})
//	defer rt.Close()
//
//	acctA := pnstm.NewTVar(100)
//	acctB := pnstm.NewTVar(50)
//
//	_ = rt.Run(func(c *pnstm.Ctx) {
//	    _ = c.Atomic(func(c *pnstm.Ctx) error { // t0
//	        c.Parallel(
//	            func(c *pnstm.Ctx) { // t1, child of t0
//	                _ = c.Atomic(func(c *pnstm.Ctx) error {
//	                    pnstm.Store(c, acctA, pnstm.Load(c, acctA)-30)
//	                    return nil
//	                })
//	            },
//	            func(c *pnstm.Ctx) { // t2, child of t0
//	                _ = c.Atomic(func(c *pnstm.Ctx) error {
//	                    pnstm.Store(c, acctB, pnstm.Load(c, acctB)+30)
//	                    return nil
//	                })
//	            },
//	        )
//	        fmt.Println("new balance:", pnstm.Load(c, acctB))
//	        return nil
//	    })
//	})
//
// Two active transactions conflict when they access the same TVar and
// neither is an ancestor of the other; the loser rolls back (including the
// effects of its already-committed descendants) and retries with
// randomized backoff. Accesses are write-accesses for conflict purposes,
// as in the paper.
//
// # How it works
//
// Each active transaction is identified by a bitnum — an index into
// one-word bit vectors — and carries its ancestor set as a single word, so
// the ancestor test is two ALU instructions. Bitnums are recycled through
// epochs (per-context logical clocks), committed masks and a background
// publisher, and a parent-transaction limit plus bitnum borrowing lets the
// bounded identifier space support unbounded transaction trees. See
// ARCHITECTURE.md and the internal packages for the full machinery.
//
// # Data structures
//
// The stmlib subpackage builds composable transactional data structures
// (TMap, TQueue, TCounter) on this runtime; their bulk operations fork
// parallel nested children, so a whole-structure step is one atomic
// action that runs on every worker slot.
//
// # Restrictions
//
//   - Workers is at most 32 (the identifier space is 2P bits of one word).
//   - A Ctx is confined to the goroutine that received it. Do not retain
//     it past the enclosing Run/Atomic/Parallel call.
//   - The transaction body may run several times (retry on conflict);
//     side effects outside the TM must be idempotent or avoided.
package pnstm
