package server

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"pnstm/internal/wal"
	"pnstm/stmlib"
)

// encodeImageV1 renders the pre-v2 snapshot payload (maps, queues,
// counters, trailing GSN watermark — no magic, no version byte, no
// sorted/TTL/lease blocks), byte-for-byte what the previous release
// wrote. Kept in the tests as the frozen reference for back-compat.
func encodeImageV1(img *stmlib.RegistryImage, maxGSN uint64) []byte {
	var buf []byte
	mapNames := sortedKeys(img.Maps)
	buf = appendU32(buf, uint32(len(mapNames)))
	for _, name := range mapNames {
		buf = appendU16Str(buf, name)
		entries := img.Maps[name]
		keys := sortedKeys(entries)
		buf = appendU32(buf, uint32(len(keys)))
		for _, k := range keys {
			buf = appendU16Str(buf, k)
			buf = appendU32Bytes(buf, entries[k])
		}
	}
	queueNames := sortedKeys(img.Queues)
	buf = appendU32(buf, uint32(len(queueNames)))
	for _, name := range queueNames {
		buf = appendU16Str(buf, name)
		elems := img.Queues[name]
		buf = appendU32(buf, uint32(len(elems)))
		for _, v := range elems {
			buf = appendU32Bytes(buf, v)
		}
	}
	counterNames := sortedKeys(img.Counters)
	buf = appendU32(buf, uint32(len(counterNames)))
	for _, name := range counterNames {
		buf = appendU16Str(buf, name)
		buf = appendI64(buf, img.Counters[name])
	}
	return binary.BigEndian.AppendUint64(buf, maxGSN)
}

// TestImageV2RoundTrip: a fully-populated image — TTLs, sorted entries,
// outstanding leases, watermarks — survives encode/decode exactly.
func TestImageV2RoundTrip(t *testing.T) {
	img := &stmlib.RegistryImage{
		Maps:     map[string]map[string][]byte{"m": {"k1": []byte("v1"), "k2": []byte("v2")}},
		Queues:   map[string][][]byte{"q": {[]byte("a"), []byte("b")}},
		Counters: map[string]int64{"c": -7},
		MapTTLs:  map[string]map[string]int64{"m": {"k2": 12345}},
		Sorted: map[string][]stmlib.SortedEntry[string, []byte]{
			"board": {
				{Key: "p1", Value: []byte("one")},
				{Key: "p2", Value: []byte("two"), Exp: 999},
			},
		},
		Leases: map[string][]stmlib.LeaseRecord[[]byte]{
			"q": {{ID: 3, Value: []byte("leased"), Deadline: 777}},
		},
		LeaseSeqs: map[string]uint64{"q": 3},
	}
	data := encodeImage(img, 42)
	if !bytes.HasPrefix(data, imageMagic) {
		t.Fatalf("v2 payload missing magic: % x", data[:8])
	}
	got, gsn, err := decodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if gsn != 42 {
		t.Fatalf("watermark = %d, want 42", gsn)
	}
	if !reflect.DeepEqual(got, img) {
		t.Fatalf("round-trip mismatch:\n got  %+v\n want %+v", got, img)
	}
}

// TestImageV1BackCompatDecode: a payload in the old format (no magic)
// still decodes — the v1 body intact, every v2 field absent.
func TestImageV1BackCompatDecode(t *testing.T) {
	img := &stmlib.RegistryImage{
		Maps:     map[string]map[string][]byte{"m": {"k": []byte("v")}},
		Queues:   map[string][][]byte{"q": {[]byte("a")}},
		Counters: map[string]int64{"c": 9},
	}
	data := encodeImageV1(img, 17)
	got, gsn, err := decodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if gsn != 17 {
		t.Fatalf("watermark = %d, want 17", gsn)
	}
	if !reflect.DeepEqual(got.Maps, img.Maps) || !reflect.DeepEqual(got.Queues, img.Queues) ||
		!reflect.DeepEqual(got.Counters, img.Counters) {
		t.Fatalf("v1 body mismatch: %+v", got)
	}
	if got.Sorted != nil || got.MapTTLs != nil || got.Leases != nil || got.LeaseSeqs != nil {
		t.Fatalf("v1 decode fabricated v2 state: %+v", got)
	}
}

// TestImageUnknownVersionRejected: a payload claiming a future format
// must refuse to decode rather than misparse.
func TestImageUnknownVersionRejected(t *testing.T) {
	data := append(append([]byte(nil), imageMagic...), imageVersion+1)
	if _, _, err := decodeImage(data); err == nil {
		t.Fatal("future image version decoded")
	}
}

// TestImageV1SnapshotRestoresE2E is the upgrade path end to end: a data
// directory whose snapshot was written by the PREVIOUS release (v1
// payload) boots on this binary — the old image restores, the WAL tail
// replays on top, and the second-generation structures work on the
// restored store.
func TestImageV1SnapshotRestoresE2E(t *testing.T) {
	dir := t.TempDir()

	// Fabricate the old directory: record 1 is claimed covered by the v1
	// snapshot (so replay must SKIP it), record 2 is the live WAL tail.
	wl, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	covered, err := AppendRequest(nil, &Request{Op: OpMapPut, Name: "m", Key: "covered", Value: []byte("stale")})
	if err != nil {
		t.Fatal(err)
	}
	if lsn, err := wl.Append(covered); err != nil || lsn != 1 {
		t.Fatalf("append covered record: lsn %d, %v", lsn, err)
	}
	v1 := encodeImageV1(&stmlib.RegistryImage{
		Maps:     map[string]map[string][]byte{"m": {"k": []byte("old")}},
		Queues:   map[string][][]byte{"jobs": {[]byte("a"), []byte("b")}},
		Counters: map[string]int64{"hits": 5},
	}, 0)
	if err := wl.WriteSnapshot(v1, 1); err != nil {
		t.Fatal(err)
	}
	tail, err := AppendRequest(nil, &Request{Op: OpMapPut, Name: "m", Key: "k2", Value: []byte("new")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Append(tail); err != nil {
		t.Fatal(err)
	}
	if err := wl.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("boot over v1 snapshot: %v", err)
	}
	defer s.Close()

	// v1 body restored, tail replayed, covered record skipped.
	if r := submitOne(t, s, &Request{Op: OpMapGet, Name: "m", Key: "k"}); !r.Found || string(r.Value) != "old" {
		t.Fatalf("snapshot map entry = %q, %v", r.Value, r.Found)
	}
	if r := submitOne(t, s, &Request{Op: OpMapGet, Name: "m", Key: "k2"}); !r.Found || string(r.Value) != "new" {
		t.Fatalf("tail-replayed entry = %q, %v", r.Value, r.Found)
	}
	if r := submitOne(t, s, &Request{Op: OpMapGet, Name: "m", Key: "covered"}); r.Found {
		t.Fatal("snapshot-covered record replayed anyway")
	}
	if r := submitOne(t, s, &Request{Op: OpCounterSum, Name: "hits"}); r.Num != 5 {
		t.Fatalf("restored counter = %d", r.Num)
	}

	// The restored store speaks v2: leases on the old queue (the id
	// watermark starts fresh at 1), sorted maps, TTLs.
	r := submitOne(t, s, &Request{Op: OpTx, Tx: &Tx{Ops: []TxOp{
		{Op: OpLeaseConsume, Name: "jobs", Delta: 1 << 62},
		{Op: OpSortedPut, Name: "board", Key: "p", Value: []byte("x")},
		{Op: OpRangeCount, Name: "board"},
	}}})
	if r.Status != StatusOK {
		t.Fatalf("v2 ops on restored store: %v %s", r.Status, r.Msg)
	}
	if !r.TxResults[0].Found || string(r.TxResults[0].Value) != "a" || r.TxResults[0].Num != 1 {
		t.Fatalf("lease on restored queue = %+v", r.TxResults[0])
	}
	if r.TxResults[2].Num != 1 {
		t.Fatalf("range count = %d", r.TxResults[2].Num)
	}

	// The next checkpoint rewrites the snapshot in v2 and the store
	// reboots from it with the lease still outstanding.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("reboot after v2 checkpoint: %v", err)
	}
	defer s2.Close()
	r = submitOne(t, s2, &Request{Op: OpTx, Tx: &Tx{Ops: []TxOp{
		{Op: OpLeaseLen, Name: "jobs"},
		{Op: OpQueueLen, Name: "jobs"},
		{Op: OpLeaseAck, Name: "jobs", Delta: 1},
	}}})
	if r.Status != StatusOK {
		t.Fatalf("post-upgrade reboot: %v %s", r.Status, r.Msg)
	}
	if r.TxResults[0].Num != 1 || r.TxResults[1].Num != 1 {
		t.Fatalf("leases=%d queued=%d after reboot", r.TxResults[0].Num, r.TxResults[1].Num)
	}
	if !r.TxResults[2].Found {
		t.Fatal("lease id 1 not ackable after v2 reboot")
	}
}
