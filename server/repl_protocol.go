package server

import (
	"encoding/binary"
	"fmt"
)

// Handshake and replication-stream framing (D39–D40). The Hello frame
// is the version/feature negotiation point: a legacy server rejects the
// unknown OpHello with StatusErr (echoing the request ID), which a new
// client treats as "version 0, no features, primary" — so old and new
// peers interoperate without a flag day. The replication stream rides
// ordinary Response frames sharing the OpReplSubscribe request's ID,
// with the payload in Response.Value encoded by the frame codecs below.

// ProtoVersion is the wire-protocol version this build speaks.
const ProtoVersion uint16 = 1

// Feature bits carried in Hello/HelloInfo.Features.
const (
	// FeatureCrossShard: the peer executes cross-shard mutating OpTx
	// envelopes via ordered commit (D29–D31).
	FeatureCrossShard uint64 = 1 << 0
	// FeatureReplStream: the peer serves OpReplSubscribe WAL streams
	// (set only on durable primaries — an in-memory server has no WAL
	// to ship).
	FeatureReplStream uint64 = 1 << 1
)

// Roles carried in HelloInfo.Role.
const (
	RolePrimary uint8 = 1
	RoleReplica uint8 = 2
)

// Hello is the client half of the handshake (OpHello request body).
// MaxStalenessMs, when non-zero, is the read-staleness bound the client
// will tolerate from this connection: a replica whose watermark lags
// beyond it answers reads with StatusNotPrimary instead of stale data.
type Hello struct {
	Version        uint16
	Features       uint64
	MaxStalenessMs uint32
}

// ReplSubscribe is the OpReplSubscribe request body: tail shard Shard's
// WAL starting at FromLSN (0 or 1 both mean the whole history).
type ReplSubscribe struct {
	Shard   uint16
	FromLSN uint64
}

// HelloInfo is the server half of the handshake, carried in the
// response's Value field. Primary is the primary's address when the
// answering peer is a replica ("" on a primary).
type HelloInfo struct {
	Version  uint16
	Features uint64
	Role     uint8
	Shards   uint16
	Primary  string
}

// EncodeHelloInfo renders info for Response.Value.
func EncodeHelloInfo(info *HelloInfo) []byte {
	buf := make([]byte, 0, 2+8+1+2+2+len(info.Primary))
	buf = binary.BigEndian.AppendUint16(buf, info.Version)
	buf = binary.BigEndian.AppendUint64(buf, info.Features)
	buf = append(buf, info.Role)
	buf = binary.BigEndian.AppendUint16(buf, info.Shards)
	buf = appendU16Str(buf, info.Primary)
	return buf
}

// ParseHelloInfo decodes a HelloInfo from a response Value.
func ParseHelloInfo(b []byte) (*HelloInfo, error) {
	c := &cursor{b: b}
	info := &HelloInfo{
		Version:  c.u16(),
		Features: c.u64(),
		Role:     c.u8(),
		Shards:   c.u16(),
		Primary:  c.str16(),
	}
	if err := c.done(); err != nil {
		return nil, fmt.Errorf("server: hello info: %w", err)
	}
	if info.Role != RolePrimary && info.Role != RoleReplica {
		return nil, fmt.Errorf("server: hello info: unknown role %d", info.Role)
	}
	return info, nil
}

// Replication stream frame kinds (the first byte of Response.Value on a
// StatusOK frame answering an OpReplSubscribe).
const (
	// replFrameSnapshot: a chunk of a store image the subscriber must
	// install before tailing (its resume point was compacted).
	//   u8 kind | u8 last | u64 coveredLSN | chunk
	// coveredLSN is the LSN the image covers: resume tailing at +1.
	replFrameSnapshot uint8 = 1
	// replFrameRecord: a chunk of one WAL record body.
	//   u8 kind | u8 last | u64 lsn | u64 headLSN | chunk
	// headLSN is the primary's durable tail at send time — the staleness
	// watermark's other half.
	replFrameRecord uint8 = 2
	// replFrameHeartbeat: keep-alive while the tail is idle.
	//   u8 kind | u64 headLSN
	replFrameHeartbeat uint8 = 3
)

// replChunkBytes bounds one stream frame's payload chunk. Response
// frames must stay well under the peer's MaxFrame read limit; 4 MiB
// chunks keep a multi-gigabyte snapshot streamable with frame overhead
// in the noise.
const replChunkBytes = 4 << 20

// replFrame is one decoded stream frame.
type replFrame struct {
	Kind    uint8
	Last    bool
	LSN     uint64 // record LSN (record frames) or covered LSN (snapshot frames)
	HeadLSN uint64 // primary durable tail (record + heartbeat frames)
	Chunk   []byte
}

// encodeReplFrame renders a stream frame for Response.Value.
func encodeReplFrame(f *replFrame) []byte {
	switch f.Kind {
	case replFrameHeartbeat:
		buf := make([]byte, 0, 1+8)
		buf = append(buf, f.Kind)
		return binary.BigEndian.AppendUint64(buf, f.HeadLSN)
	case replFrameSnapshot:
		buf := make([]byte, 0, 1+1+8+len(f.Chunk))
		buf = append(buf, f.Kind, boolByte(f.Last))
		buf = binary.BigEndian.AppendUint64(buf, f.LSN)
		return append(buf, f.Chunk...)
	case replFrameRecord:
		buf := make([]byte, 0, 1+1+8+8+len(f.Chunk))
		buf = append(buf, f.Kind, boolByte(f.Last))
		buf = binary.BigEndian.AppendUint64(buf, f.LSN)
		buf = binary.BigEndian.AppendUint64(buf, f.HeadLSN)
		return append(buf, f.Chunk...)
	}
	panic(fmt.Sprintf("server: encodeReplFrame: unknown kind %d", f.Kind))
}

// parseReplFrame decodes a stream frame from a response Value.
func parseReplFrame(b []byte) (*replFrame, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("server: repl frame: empty")
	}
	f := &replFrame{Kind: b[0]}
	switch f.Kind {
	case replFrameHeartbeat:
		if len(b) != 1+8 {
			return nil, fmt.Errorf("server: repl heartbeat: %d bytes", len(b))
		}
		f.HeadLSN = binary.BigEndian.Uint64(b[1:])
		return f, nil
	case replFrameSnapshot:
		if len(b) < 1+1+8 {
			return nil, fmt.Errorf("server: repl snapshot frame: %d bytes", len(b))
		}
		f.Last = b[1] == 1
		f.LSN = binary.BigEndian.Uint64(b[2:])
		f.Chunk = b[10:]
		return f, nil
	case replFrameRecord:
		if len(b) < 1+1+8+8 {
			return nil, fmt.Errorf("server: repl record frame: %d bytes", len(b))
		}
		f.Last = b[1] == 1
		f.LSN = binary.BigEndian.Uint64(b[2:])
		f.HeadLSN = binary.BigEndian.Uint64(b[10:])
		f.Chunk = b[18:]
		return f, nil
	}
	return nil, fmt.Errorf("server: repl frame: unknown kind %d", f.Kind)
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
