package server

import (
	"errors"
	"fmt"
	"time"

	"pnstm/internal/wal"
)

// Primary-side replication stream serving (D39): one goroutine per
// OpReplSubscribe tails the shard's WAL through a wal.Follower — its
// own file handles, outside the append lock — and ships every record
// as chunked response frames on the subscriber's connection. The hook
// into the group-commit append path is the follower's wakeup: Append's
// tail broadcast, so a record is on the wire within one scheduler hop
// of its fsync without the commit path knowing subscribers exist.

// replHeartbeatEvery paces keep-alive frames on an idle stream: they
// carry the head LSN, which is what keeps the replica's staleness
// clock fresh while no writes happen.
const replHeartbeatEvery = 500 * time.Millisecond

// serveReplStream answers one OpReplSubscribe for its connection's
// lifetime. deliver routes frames through the connection's writer;
// connClosed ends the stream.
func (s *Server) serveReplStream(req *Request, deliver func(Response), connClosed <-chan struct{}) {
	fail := func(msg string) {
		deliver(Response{ID: req.ID, Status: StatusErr, Msg: msg})
	}
	if s.isReplica() {
		fail("replica serves no replication streams; subscribe to the primary " + s.cfg.ReplicaOf)
		return
	}
	idx := int(req.Sub.Shard)
	if idx >= len(s.shards) {
		fail(fmt.Sprintf("no shard %d (server runs %d)", idx, len(s.shards)))
		return
	}
	sh := s.shards[idx]
	if sh.wal == nil {
		fail("server runs without a data directory; no log to ship")
		return
	}

	// send drops the stream as soon as the connection is gone — a dead
	// subscriber must not keep a follower (and its file handle) alive.
	send := func(resp Response) bool {
		select {
		case <-connClosed:
			return false
		default:
		}
		deliver(resp)
		return true
	}
	sendChunked := func(kind uint8, lsn, head uint64, body []byte) bool {
		for off := 0; ; off += replChunkBytes {
			end := off + replChunkBytes
			last := end >= len(body)
			if last {
				end = len(body)
			}
			f := &replFrame{Kind: kind, Last: last, LSN: lsn, HeadLSN: head, Chunk: body[off:end]}
			if !send(Response{ID: req.ID, Status: StatusOK, Value: encodeReplFrame(f)}) {
				return false
			}
			if last {
				return true
			}
		}
	}

	f := sh.wal.Follow(req.Sub.FromLSN)
	defer func() { f.Close() }()
	hb := time.NewTimer(replHeartbeatEvery)
	defer hb.Stop()
	for {
		lsn, body, wait, err := f.TryNext()
		switch {
		case errors.Is(err, wal.ErrCompacted):
			// The resume point was checkpointed away: ship the snapshot
			// covering it, then tail from the snapshot's LSN. Mid-stream
			// this can only happen on the first read (a live follower is
			// never behind the snapshot it already passed).
			data, snapLSN, ok := sh.wal.Snapshot()
			if !ok {
				fail(fmt.Sprintf("shard %d: lsn %d is compacted and the covering snapshot failed to load", idx, f.NextLSN()))
				return
			}
			if !sendChunked(replFrameSnapshot, snapLSN, 0, data) {
				return
			}
			f.Close()
			f = sh.wal.Follow(snapLSN + 1)
			continue
		case errors.Is(err, wal.ErrLogClosed):
			fail("primary shutting down")
			return
		case err != nil:
			fail(err.Error())
			return
		}
		if wait == nil {
			if !sendChunked(replFrameRecord, lsn, sh.wal.TailLSN(), body) {
				return
			}
			continue
		}
		if !hb.Stop() {
			select {
			case <-hb.C:
			default:
			}
		}
		hb.Reset(replHeartbeatEvery)
		select {
		case <-wait:
		case <-hb.C:
			if !send(Response{ID: req.ID, Status: StatusOK, Value: encodeReplFrame(&replFrame{Kind: replFrameHeartbeat, HeadLSN: sh.wal.TailLSN()})}) {
				return
			}
		case <-connClosed:
			return
		}
	}
}
