package server

import (
	"strconv"
	"time"

	"pnstm/internal/metrics"
)

// Op classes for the request latency histograms: a point op (map/queue/
// counter single op), a single-shard or read-only-fanned OpTx envelope,
// and a cross-shard ordered commit. Measured in handleConn from parse
// to delivery, so batching delay, execution and WAL fsync are all
// inside the number — what a client actually waits.
const (
	classPoint = "point"
	classTx    = "tx"
	classCross = "cross"
)

// serverObs holds every instrument the server exports. It is built
// BEFORE the shards (instrument closures read s.shards lazily, and the
// first scrape can only happen once the admin listener serves, after
// New returns), so the WAL open path and the batchers can take their
// hooks from it.
type serverObs struct {
	reg *metrics.Registry

	latency map[string]*metrics.Histogram // per op class
	fsync   []*metrics.Histogram          // per shard
	batch   []*batchObs                   // per shard, handed to newBatcher
	ctrlUp  []*metrics.Counter            // controller steps per shard
	ctrlDn  []*metrics.Counter
}

// newServerObs registers the pnstm_* metric families. s.shards may
// still be empty — every closure re-reads it at scrape time.
func newServerObs(s *Server, cfg Config) *serverObs {
	r := metrics.NewRegistry()
	o := &serverObs{
		reg:     r,
		latency: make(map[string]*metrics.Histogram),
	}

	for _, class := range []string{classPoint, classTx, classCross} {
		o.latency[class] = r.Histogram("pnstm_request_latency_seconds",
			"Request latency from parse to response delivery, by op class.",
			metrics.Labels{"class": class}, metrics.DefBuckets)
	}

	r.GaugeFunc("pnstm_ready", "1 while the server accepts work: recovery done, not shutting down, no WAL latched.",
		nil, func() float64 {
			if s.Ready() == nil {
				return 1
			}
			return 0
		})
	r.GaugeFunc("pnstm_shards", "Engine partition count.", nil,
		func() float64 { return float64(len(s.shards)) })
	r.GaugeFunc("pnstm_conns", "Open client connections.", nil, func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.conns))
	})

	// Replication watermarks (D41). Registered only on replicas; every
	// closure nil-checks s.repl (it is built after the obs plane).
	if cfg.ReplicaOf != "" {
		r.GaugeFunc("pnstm_replica", "1 while serving as a read-only replica, 0 once promoted to primary.",
			nil, func() float64 {
				if s.isReplica() {
					return 1
				}
				return 0
			})
		for i := 0; i < cfg.Shards; i++ {
			i := i
			lbl := metrics.Labels{"shard": strconv.Itoa(i)}
			sr := func() *shardRepl {
				if s.repl != nil && i < len(s.repl.shards) {
					return s.repl.shards[i]
				}
				return nil
			}
			r.GaugeFunc("pnstm_replica_applied_lsn", "Last WAL record replayed into this shard's local store.", lbl,
				func() float64 {
					if sr := sr(); sr != nil {
						sr.mu.Lock()
						defer sr.mu.Unlock()
						return float64(sr.applied)
					}
					return 0
				})
			r.GaugeFunc("pnstm_replica_head_lsn", "Primary's durable tail for this shard, as last reported.", lbl,
				func() float64 {
					if sr := sr(); sr != nil {
						sr.mu.Lock()
						defer sr.mu.Unlock()
						return float64(sr.head)
					}
					return 0
				})
			r.GaugeFunc("pnstm_replica_staleness_seconds", "Age of this shard's replication watermark (-1 until first caught up).", lbl,
				func() float64 {
					if s.repl == nil {
						return -1
					}
					st, ok := s.repl.shardStaleness(i)
					if !ok {
						return -1
					}
					return st.Seconds()
				})
			r.GaugeFunc("pnstm_replica_connected", "1 while this shard's tailing stream to the primary is live.", lbl,
				func() float64 {
					if sr := sr(); sr != nil {
						sr.mu.Lock()
						defer sr.mu.Unlock()
						if sr.connected {
							return 1
						}
					}
					return 0
				})
		}
	}

	// Conflict X-ray (D35–D37). s.prof is built after the shards, so
	// every closure nil-checks it (a scrape can only arrive later, but
	// cheap defense beats an ordering invariant).
	r.GaugeFunc("pnstm_tracing", "1 while transaction-lifecycle tracing records into the flight recorder.",
		nil, func() float64 {
			if len(s.shards) > 0 && s.shards[0].rt.TracingEnabled() {
				return 1
			}
			return 0
		})
	r.CounterSamples("pnstm_hotkey_aborts",
		"Conflict aborts and escalations attributed per key (space-saving top-K; err_bound is the possible overcount).",
		func() []metrics.Sample {
			if s.prof == nil {
				return nil
			}
			top := s.prof.sketch.top(32)
			out := make([]metrics.Sample, len(top))
			for i, hk := range top {
				out[i] = metrics.Sample{Labels: metrics.Labels{"key": hk.Key}, Value: float64(hk.Count)}
			}
			return out
		})
	r.CounterFunc("pnstm_crisis_dumps_total", "Flight-recorder dump files written on crisis engagements.", nil,
		func() float64 {
			if s.prof == nil {
				return 0
			}
			return float64(s.prof.dumps.Load())
		})

	for i := 0; i < cfg.Shards; i++ {
		i := i
		lbl := metrics.Labels{"shard": strconv.Itoa(i)}
		sh := func() *shard {
			if i < len(s.shards) {
				return s.shards[i]
			}
			return nil
		}

		r.CounterFunc("pnstm_requests_total", "Requests executed through the group-commit path.", lbl,
			func() float64 {
				if sh := sh(); sh != nil && sh.b != nil {
					_, reqs, _, _ := sh.b.stats()
					return float64(reqs)
				}
				return 0
			})
		r.CounterFunc("pnstm_batches_total", "Group commits executed.", lbl,
			func() float64 {
				if sh := sh(); sh != nil && sh.b != nil {
					batches, _, _, _ := sh.b.stats()
					return float64(batches)
				}
				return 0
			})
		r.CounterFunc("pnstm_txs_begun_total", "Runtime transactions started (retries count).", lbl,
			func() float64 {
				if sh := sh(); sh != nil {
					return float64(sh.rt.Stats().Begun)
				}
				return 0
			})
		r.CounterFunc("pnstm_crises_total", "Cross-root livelock-breaker engagements (a struggling root took the crisis token and serialized the shard until it committed).", lbl,
			func() float64 {
				if sh := sh(); sh != nil {
					return float64(sh.rt.Stats().Crises)
				}
				return 0
			})
		r.CounterFunc("pnstm_trace_events_total", "Transaction-lifecycle events recorded into the flight recorder.", lbl,
			func() float64 {
				if sh := sh(); sh != nil {
					e, _ := sh.rt.TraceStats()
					return float64(e)
				}
				return 0
			})
		r.CounterFunc("pnstm_trace_dropped_total", "Flight-recorder events overwritten before any reader drained them.", lbl,
			func() float64 {
				if sh := sh(); sh != nil {
					_, d := sh.rt.TraceStats()
					return float64(d)
				}
				return 0
			})
		r.CounterFunc("pnstm_aborts_total", "Transaction aborts, by reason: conflict (runtime retry) or rejected (guard failure).",
			metrics.Labels{"shard": strconv.Itoa(i), "reason": "conflict"},
			func() float64 {
				if sh := sh(); sh != nil {
					return float64(sh.rt.Stats().Aborted)
				}
				return 0
			})

		bo := &batchObs{
			size: r.Histogram("pnstm_batch_size", "Requests coalesced per group commit.",
				lbl, metrics.SizeBuckets),
			form: r.Histogram("pnstm_batch_form_seconds", "Time from a batch's first request to its launch.",
				lbl, metrics.DefBuckets),
			rejected: r.Counter("pnstm_aborts_total",
				"Transaction aborts, by reason: conflict (runtime retry) or rejected (guard failure).",
				metrics.Labels{"shard": strconv.Itoa(i), "reason": "rejected"}),
		}
		o.batch = append(o.batch, bo)

		o.fsync = append(o.fsync, r.Histogram("pnstm_wal_fsync_seconds",
			"WAL fsync duration per group commit (includes any configured SyncDelay floor).",
			lbl, metrics.DefBuckets))
		r.CounterFunc("pnstm_wal_appends_total", "WAL records appended.", lbl,
			func() float64 {
				if sh := sh(); sh != nil && sh.wal != nil {
					return float64(sh.wal.Stats().Appends)
				}
				return 0
			})
		r.CounterFunc("pnstm_wal_syncs_total", "WAL fsyncs issued.", lbl,
			func() float64 {
				if sh := sh(); sh != nil && sh.wal != nil {
					return float64(sh.wal.Stats().Syncs)
				}
				return 0
			})

		r.GaugeFunc("pnstm_max_inflight", "Live concurrent-group-commit bound (PUT /config or controller).", lbl,
			func() float64 {
				if sh := sh(); sh != nil && sh.b != nil {
					return float64(sh.b.pl.getLimit())
				}
				return 0
			})
		r.GaugeFunc("pnstm_batch_fanout", "Live parallel-block bound per batch.", lbl,
			func() float64 {
				if sh := sh(); sh != nil && sh.b != nil {
					return float64(sh.b.knobs.fanout.Load())
				}
				return 0
			})

		o.ctrlUp = append(o.ctrlUp, r.Counter("pnstm_controller_steps_total",
			"Adaptive controller knob adjustments, by direction.",
			metrics.Labels{"shard": strconv.Itoa(i), "direction": "up"}))
		o.ctrlDn = append(o.ctrlDn, r.Counter("pnstm_controller_steps_total",
			"Adaptive controller knob adjustments, by direction.",
			metrics.Labels{"shard": strconv.Itoa(i), "direction": "down"}))
	}
	return o
}

// observeLatency routes one finished request into its class histogram.
func (o *serverObs) observeLatency(class string, since time.Time) {
	if o == nil {
		return
	}
	if h, ok := o.latency[class]; ok {
		h.ObserveSince(since)
	}
}

// LatencySummary is the OpStats rendering of one op-class histogram:
// counts plus interpolated percentiles in microseconds (the unit the
// BENCH reports and loadgen output already use).
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
}

// latencySummaries renders every op-class histogram with at least one
// observation.
func (o *serverObs) latencySummaries() map[string]LatencySummary {
	if o == nil {
		return nil
	}
	out := make(map[string]LatencySummary)
	for class, h := range o.latency {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		out[class] = LatencySummary{
			Count: snap.Count,
			P50us: snap.Quantile(0.50) * 1e6,
			P95us: snap.Quantile(0.95) * 1e6,
			P99us: snap.Quantile(0.99) * 1e6,
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
