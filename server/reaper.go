package server

import (
	"sync"
	"sync/atomic"
	"time"

	"pnstm"
	"pnstm/stmlib"
)

// The TTL/lease reaper (D47). Reads already hide expired map and
// sorted-map entries, and lease deadlines are judged when a reclaim
// runs — so expiry SEMANTICS need no background work at all. What the
// reaper does is reclaim space and requeue abandoned leases: each tick
// it scans every shard's expiry index (one deadline-ordered sorted map
// per registry, maintained exactly by the structures' hooks) for
// entries due by the tick's wall-clock cutoff, then submits ordinary
// OpTx envelopes of OpExpire/OpSortedExpire/OpLeaseReclaim through the
// shard's batch pipeline.
//
// Routing reaps through the batcher is what keeps replicas honest: the
// envelopes serialize with client traffic in the shard's commit order,
// land in the WAL with their EXPLICIT cutoff, and replay (crash
// recovery and WAL-shipping replicas alike) re-executes them
// deterministically — the only wall-clock read is here, on the primary,
// before the ops are minted. The scan itself is a read-only root
// transaction and is never logged.

// reaperStats counts the reaper's lifetime work, for Stats and tests.
type reaperStats struct {
	ticks     atomic.Uint64
	expired   atomic.Uint64 // map + sorted-map entries physically removed
	reclaimed atomic.Uint64 // expired leases requeued
}

// reapChunk bounds one reap envelope's op count. A chunk is one batch
// transaction: keeping it modest bounds the work a conflicting client
// write can force the envelope to retry, and bounds the WAL record it
// logs. Within a chunk the ops are grouped per structure, so a large
// chunk still fans as parallel-nested children (applyTx).
const reapChunk = 512

func (s *Server) reapLoop() {
	defer close(s.reapDone)
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.reapStop:
			return
		case <-t.C:
			s.Reap(time.Now().UnixNano())
		}
	}
}

// stopReaper stops the background loop (no-op when it never started).
func (s *Server) stopReaper() {
	if s.reapStop != nil {
		close(s.reapStop)
		<-s.reapDone
		s.reapStop = nil
	}
}

// Reap runs one reaper pass over every shard with the given cutoff
// (UnixNano): every map/sorted entry whose deadline is <= cutoff is
// physically removed, every lease due by then requeued. It blocks until
// the submitted envelopes are answered and returns what they did.
// Exported for tests and for deployments that schedule reaping
// externally instead of via Config.ReapInterval.
func (s *Server) Reap(cutoff int64) (expired, reclaimed int) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			e, r := s.reapShard(sh, cutoff)
			mu.Lock()
			expired += e
			reclaimed += r
			mu.Unlock()
		}(sh)
	}
	wg.Wait()
	s.reapObs.ticks.Add(1)
	s.reapObs.expired.Add(uint64(expired))
	s.reapObs.reclaimed.Add(uint64(reclaimed))
	return expired, reclaimed
}

// reapShard scans one shard's expiry index and applies the due work.
func (s *Server) reapShard(sh *shard, cutoff int64) (expired, reclaimed int) {
	// Phase 1: read-only scan of the index, deadline order. The scan and
	// the apply are separate transactions on purpose — the apply ops
	// re-judge every deadline (ExpireThrough/ReclaimExpired are no-ops
	// for entries that were deleted or re-TTL'd in between), so the gap
	// costs at most a wasted op, never a wrong removal.
	var due []stmlib.SortedEntry[string, []byte]
	err := sh.rt.Run(func(c *pnstm.Ctx) {
		due = sh.reg.ExpiryIndex().RangeScan(c, "", stmlib.ExpiryCutoffKey(cutoff), 0)
	})
	if err != nil || len(due) == 0 {
		return 0, 0
	}

	// Phase 2: mint the ops. Map and sorted entries expire per key;
	// lease entries collapse to one reclaim per queue (ReclaimExpired
	// sweeps every due lease of that queue in id order).
	var ops []TxOp
	leaseQueues := make(map[string]bool)
	for _, e := range due {
		_, kind, name, ref, ok := stmlib.ParseExpiryKey(e.Key)
		if !ok {
			continue
		}
		switch kind {
		case stmlib.ExpiryKindMap:
			ops = append(ops, TxOp{Op: OpExpire, Name: name, Key: ref, Delta: cutoff})
		case stmlib.ExpiryKindSorted:
			ops = append(ops, TxOp{Op: OpSortedExpire, Name: name, Key: ref, Delta: cutoff})
		case stmlib.ExpiryKindLease:
			if !leaseQueues[name] {
				leaseQueues[name] = true
				ops = append(ops, TxOp{Op: OpLeaseReclaim, Name: name, Delta: cutoff})
			}
		}
	}

	// Phase 3: submit through the batch pipeline in chunks and tally
	// what actually happened from the per-op results.
	for lo := 0; lo < len(ops); lo += reapChunk {
		hi := lo + reapChunk
		if hi > len(ops) {
			hi = len(ops)
		}
		req := &Request{Op: OpTx, Tx: &Tx{Ops: ops[lo:hi]}}
		done := make(chan Response, 1)
		if !sh.b.submit(&pending{req: req, deliver: func(r Response) { done <- r }}) {
			return expired, reclaimed // shutting down
		}
		resp := <-done
		if resp.Status != StatusOK {
			s.log.Warn("reap envelope failed", "shard", sh.id, "status", resp.Status, "msg", resp.Msg)
			continue
		}
		for i, res := range resp.TxResults {
			switch req.Tx.Ops[i].Op {
			case OpExpire, OpSortedExpire:
				if res.Found {
					expired++
				}
			case OpLeaseReclaim:
				reclaimed += int(res.Num)
			}
		}
	}
	return expired, reclaimed
}
