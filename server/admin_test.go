package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pnstm/server"
)

// adminURL builds an endpoint URL against the server's admin listener.
func adminURL(t *testing.T, s *server.Server, path string) string {
	t.Helper()
	a := s.AdminAddr()
	if a == nil {
		t.Fatal("server has no admin listener")
	}
	return "http://" + a.String() + path
}

func adminGET(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func adminPUT(t *testing.T, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// metricValue scans Prometheus text output for the first sample whose
// name+labels start with prefix, returning its value.
func metricValue(t *testing.T, text, prefix string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

// TestAdminSurface: health, readiness, metrics content and live config
// over a real admin listener, with real traffic in between.
func TestAdminSurface(t *testing.T) {
	cfg := server.Config{Shards: 2, AdminAddr: "127.0.0.1:0"}
	s := startServer(t, cfg)

	if code, body := adminGET(t, adminURL(t, s, "/healthz")); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body := adminGET(t, adminURL(t, s, "/readyz")); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("readyz = %d %q", code, body)
	}

	// Baseline config view.
	var view server.ConfigView
	code, body := adminGET(t, adminURL(t, s, "/config"))
	if code != 200 {
		t.Fatalf("GET /config = %d %q", code, body)
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.MaxInflight != 1 || view.Durable || len(view.PerShard) != 2 {
		t.Fatalf("unexpected initial view: %+v", view)
	}

	// Drive some traffic so every instrument has observations.
	cl := dial(t, s, 2)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := cl.MapPut("adm:m", key, []byte(key)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.MapGet("adm:m", key); err != nil {
			t.Fatal(err)
		}
	}

	// PUT /config retunes MaxInflight live — no restart.
	code, body = adminPUT(t, adminURL(t, s, "/config"), `{"max_inflight": 4, "batch_fanout": 2}`)
	if code != 200 {
		t.Fatalf("PUT /config = %d %q", code, body)
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.MaxInflight != 4 {
		t.Fatalf("PUT did not change max_inflight: %+v", view)
	}
	for _, ps := range view.PerShard {
		if ps.MaxInflight != 4 || ps.BatchFanout != 2 {
			t.Fatalf("shard %d effective knobs not updated: %+v", ps.Shard, ps)
		}
	}
	// The server still works after the retune.
	if err := cl.MapPut("adm:m", "after", []byte("retune")); err != nil {
		t.Fatal(err)
	}

	// Scrape: core series exist and are non-zero.
	code, scrape := adminGET(t, adminURL(t, s, "/metrics"))
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, prefix := range []string{
		`pnstm_requests_total{shard="0"}`,
		`pnstm_batches_total{shard="0"}`,
		`pnstm_request_latency_seconds_count{class="point"}`,
	} {
		v, ok := metricValue(t, scrape, prefix)
		if !ok || v <= 0 {
			t.Fatalf("series %s missing or zero (got %v, found %v)\n%s", prefix, v, ok, scrape)
		}
	}
	if v, ok := metricValue(t, scrape, "pnstm_ready"); !ok || v != 1 {
		t.Fatalf("pnstm_ready = %v (found %v)", v, ok)
	}
	if v, ok := metricValue(t, scrape, `pnstm_max_inflight{shard="0"}`); !ok || v != 4 {
		t.Fatalf("pnstm_max_inflight gauge did not follow PUT: %v (found %v)", v, ok)
	}
	if !strings.Contains(scrape, `pnstm_batch_size_bucket{shard="0",le="1"}`) {
		t.Fatalf("batch occupancy histogram missing:\n%s", scrape)
	}

	// OpStats carries the histogram summaries (satellite 1).
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	lat, ok := st.Latency["point"]
	if !ok || lat.Count == 0 || lat.P99us <= 0 || lat.P50us > lat.P99us {
		t.Fatalf("OpStats latency summary wrong: %+v", st.Latency)
	}
}

// TestAdminConfigValidation: invalid updates are rejected atomically
// with 400 and change nothing.
func TestAdminConfigValidation(t *testing.T) {
	s := startServer(t, server.Config{AdminAddr: "127.0.0.1:0"})
	url := adminURL(t, s, "/config")
	for _, bad := range []string{
		`{"batch_fanout": -1}`,
		`{"batch_fanout": 0}`,
		`{"max_inflight": 0}`,
		`{"max_inflight": -3}`,
		`{"max_batch": 0}`,
		`{"batch_delay_ms": -1}`,
		`{"snapshot_every_ms": -5}`,
		`{"max_inflite": 4}`,                   // typoed knob must not silently no-op
		`{"max_batch": 4, "batch_fanout": -1}`, // one bad field fails the whole update
	} {
		if code, body := adminPUT(t, url, bad); code != 400 {
			t.Fatalf("PUT %s = %d %q, want 400", bad, code, body)
		}
	}
	var view server.ConfigView
	_, body := adminGET(t, url)
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatal(err)
	}
	if view.MaxInflight != 1 || view.MaxBatch != 64 {
		t.Fatalf("rejected updates leaked into config: %+v", view)
	}
	if code, _ := adminGET(t, adminURL(t, s, "/config")); code != 200 {
		t.Fatal("GET /config broken after rejects")
	}
}

// TestAdminRejectsPipeliningWithWAL: the D20 clamp is enforced at the
// API too — a durable server refuses max_inflight > 1.
func TestAdminRejectsPipeliningWithWAL(t *testing.T) {
	s := startServer(t, server.Config{DataDir: t.TempDir(), AdminAddr: "127.0.0.1:0"})
	code, body := adminPUT(t, adminURL(t, s, "/config"), `{"max_inflight": 2}`)
	if code != 400 || !strings.Contains(body, "WAL") {
		t.Fatalf("durable PUT max_inflight=2 = %d %q, want 400 mentioning the WAL", code, body)
	}
	var view server.ConfigView
	_, cfgBody := adminGET(t, adminURL(t, s, "/config"))
	if err := json.Unmarshal([]byte(cfgBody), &view); err != nil {
		t.Fatal(err)
	}
	if !view.Durable || view.MaxInflight != 1 {
		t.Fatalf("view after reject: %+v", view)
	}
}

// TestAdminConcurrentConfigAndTraffic: PUT /config races live traffic,
// scrapes and config reads — the -race CI job proves the knob plumbing
// has no data races, and every response stays correct.
func TestAdminConcurrentConfigAndTraffic(t *testing.T) {
	s := startServer(t, server.Config{Shards: 2, AdminAddr: "127.0.0.1:0"})
	cfgURL := adminURL(t, s, "/config")
	metURL := adminURL(t, s, "/metrics")

	const goroutines = 4
	const opsPer = 400
	var wg sync.WaitGroup
	errs := make(chan error, goroutines+2)

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := dial(t, s, 1)
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := cl.MapPut("adm:race", key, []byte(key)); err != nil {
					errs <- err
					return
				}
				v, ok, err := cl.MapGet("adm:race", key)
				if err != nil {
					errs <- err
					return
				}
				if !ok || string(v) != key {
					errs <- fmt.Errorf("read-your-write broken for %s: %q %v", key, v, ok)
					return
				}
			}
		}(g)
	}

	// Config churn: walk the knobs while the traffic runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			inflight := 1 + i%4
			body := fmt.Sprintf(`{"max_inflight": %d, "max_batch": %d, "batch_fanout": %d}`,
				inflight, 16+(i%3)*24, 1+i%8)
			if code, resp := adminPUT(t, cfgURL, body); code != 200 {
				errs <- fmt.Errorf("PUT %s = %d %q", body, code, resp)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Scrape churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if code, _ := adminGET(t, metURL); code != 200 {
				errs <- fmt.Errorf("scrape %d failed", i)
				return
			}
			if code, _ := adminGET(t, cfgURL); code != 200 {
				errs <- fmt.Errorf("config read %d failed", i)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All issued writes are present: the knob churn lost nothing.
	cl := dial(t, s, 1)
	n, err := cl.MapLen("adm:race")
	if err != nil {
		t.Fatal(err)
	}
	if n != goroutines*opsPer {
		t.Fatalf("map len = %d, want %d", n, goroutines*opsPer)
	}
}

// TestAdminStopsWithClose: after a graceful Close the admin listener is
// gone — it drained last, it did not linger.
func TestAdminStopsWithClose(t *testing.T) {
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", AdminAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	url := adminURL(t, s, "/healthz")
	if code, _ := adminGET(t, url); code != 200 {
		t.Fatal("healthz before close")
	}
	s.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("admin listener still serving after Close")
	}
}
