package server

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"pnstm/internal/wal"
	"pnstm/stmlib"
)

// White-box tests for the cross-shard ordered-commit internals: the
// classifyTx routing function, the GSN record codec, the on-disk GSN
// relative-order invariant, and recovery's reconciliation of records an
// interrupted commit left on only some shards.

// namesFor finds one map name per requested shard of an n-shard layout.
func namesFor(t *testing.T, prefix string, n int, want []int) map[int]string {
	t.Helper()
	out := make(map[int]string, len(want))
	need := make(map[int]bool, len(want))
	for _, sh := range want {
		need[sh] = true
	}
	for i := 0; i < 4096 && len(out) < len(need); i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		sh := stmlib.ShardIndex(name, n)
		if need[sh] && out[sh] == "" {
			out[sh] = name
		}
	}
	if len(out) < len(need) {
		t.Fatalf("could not find names for shards %v", want)
	}
	return out
}

func TestClassifyTx(t *testing.T) {
	const n = 4
	names := namesFor(t, "ct", n, []int{0, 1, 2, 3})

	// Single pinned shard → single, even with a counter riding along.
	plan := classifyTx(&Tx{Ops: []TxOp{
		{Op: OpMapPut, Name: names[2], Key: "k", Value: []byte("v")},
		{Op: OpCounterAdd, Name: "c", Delta: 1},
	}}, n)
	if plan.kind != planSingle || plan.target != 2 {
		t.Errorf("single-shard plan = %+v", plan)
	}

	// Nothing pinned (counter-only) → single, routed by the first name.
	plan = classifyTx(&Tx{Ops: []TxOp{{Op: OpCounterAdd, Name: "solo", Delta: 1}}}, n)
	if plan.kind != planSingle || plan.target != stmlib.ShardIndex("solo", n) {
		t.Errorf("counter-only plan = %+v", plan)
	}

	// Multi-shard, read-only → fan.
	plan = classifyTx(&Tx{Ops: []TxOp{
		{Op: OpMapGet, Name: names[0], Key: "k"},
		{Op: OpMapGet, Name: names[1], Key: "k"},
	}}, n)
	if plan.kind != planFan {
		t.Errorf("read-only multi-shard plan = %+v", plan)
	}

	// Multi-shard mutating → cross, slices in envelope order.
	plan = classifyTx(&Tx{Ops: []TxOp{
		{Op: OpAssertGE, Name: names[0], Key: "bal", Delta: 5},
		{Op: OpMapAdd, Name: names[0], Key: "bal", Delta: -5},
		{Op: OpMapAdd, Name: names[3], Key: "bal", Delta: 5},
	}}, n)
	if plan.kind != planCross {
		t.Fatalf("mutating multi-shard plan = %+v", plan)
	}
	if !reflect.DeepEqual(plan.participants, []int{0, 3}) {
		t.Errorf("participants = %v want [0 3]", plan.participants)
	}
	if !reflect.DeepEqual(plan.slices[0], []sliceItem{{idx: 0}, {idx: 1}}) {
		t.Errorf("slice[0] = %+v", plan.slices[0])
	}
	if !reflect.DeepEqual(plan.slices[3], []sliceItem{{idx: 2}}) {
		t.Errorf("slice[3] = %+v", plan.slices[3])
	}

	// A global counter read (sum or guard with Key=="") inside a cross
	// envelope makes EVERY shard a participant, partial items at the
	// read's envelope position.
	plan = classifyTx(&Tx{Ops: []TxOp{
		{Op: OpMapPut, Name: names[0], Key: "k", Value: []byte("v")},
		{Op: OpAssertGE, Name: "gc", Delta: 1}, // counter guard, Key == ""
		{Op: OpMapPut, Name: names[1], Key: "k", Value: []byte("v")},
	}}, n)
	if plan.kind != planCross {
		t.Fatalf("global-read cross plan = %+v", plan)
	}
	if !reflect.DeepEqual(plan.participants, []int{0, 1, 2, 3}) {
		t.Errorf("participants = %v want all shards", plan.participants)
	}
	if !reflect.DeepEqual(plan.slices[2], []sliceItem{{idx: 1, partial: true}}) {
		t.Errorf("read-only participant slice = %+v", plan.slices[2])
	}
	if !reflect.DeepEqual(plan.slices[0], []sliceItem{{idx: 0}, {idx: 1, partial: true}}) {
		t.Errorf("writing participant slice = %+v", plan.slices[0])
	}

	// One shard (or a nil/empty envelope) can never cross.
	if p := classifyTx(nil, 4); p.kind != planSingle {
		t.Errorf("nil tx plan = %+v", p)
	}
	if p := classifyTx(&Tx{Ops: []TxOp{
		{Op: OpMapPut, Name: names[0], Key: "k"},
		{Op: OpMapPut, Name: names[3], Key: "k"},
	}}, 1); p.kind != planSingle || p.target != 0 {
		t.Errorf("1-shard plan = %+v", p)
	}
}

func TestGSNRecordRoundTrip(t *testing.T) {
	req := &Request{Op: OpTx, Tx: &Tx{Ops: []TxOp{
		{Op: OpMapAdd, Name: "m", Key: "bal", Delta: -5},
		{Op: OpQueuePush, Name: "q", Value: []byte("x")},
	}}}
	body, err := encodeGSNRecord(42, []int{1, 3}, req)
	if err != nil {
		t.Fatal(err)
	}
	if !isGSNRecord(body) {
		t.Fatal("encoded record not recognized")
	}
	gsn, logSet, got, err := decodeGSNRecord(body)
	if err != nil {
		t.Fatal(err)
	}
	if gsn != 42 || !reflect.DeepEqual(logSet, []int{1, 3}) {
		t.Errorf("decoded gsn=%d logSet=%v", gsn, logSet)
	}
	if !reflect.DeepEqual(got.Tx, req.Tx) {
		t.Errorf("decoded tx = %+v want %+v", got.Tx, req.Tx)
	}

	// A plain batch record must never be mistaken for a GSN record, and
	// vice versa: decodeBatch must reject the magic as an overrun.
	frame, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if isGSNRecord(frame) {
		t.Error("batch record misread as GSN record")
	}
	if _, err := decodeBatch(body); err == nil {
		t.Error("GSN record decoded as a batch record")
	}

	for name, corrupt := range map[string][]byte{
		"truncated header":  body[:8],
		"truncated frame":   body[:len(body)-3],
		"trailing garbage":  append(append([]byte(nil), body...), 0xFF),
		"empty logging set": mustGSN(t, 7, nil, req),
		"zero gsn":          mustGSN(t, 0, []int{0, 1}, req),
	} {
		if _, _, _, err := decodeGSNRecord(corrupt); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// mustGSN encodes a deliberately invalid GSN record for decoder tests.
func mustGSN(t *testing.T, gsn uint64, logSet []int, req *Request) []byte {
	t.Helper()
	body, err := encodeGSNRecord(gsn, logSet, req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestSnapshotWatermarkRoundTrip(t *testing.T) {
	img := &stmlib.RegistryImage{
		Maps:     map[string]map[string][]byte{"m": {"k": []byte("v")}},
		Queues:   map[string][][]byte{"q": {[]byte("a")}},
		Counters: map[string]int64{"c": 7},
	}
	data := encodeImage(img, 99)
	got, mark, err := decodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if mark != 99 || !reflect.DeepEqual(got, img) {
		t.Errorf("decoded mark=%d img=%+v", mark, got)
	}
	// A pre-D31 payload ends right after the counters block: stripping
	// the trailing watermark reproduces it, and it must decode with
	// watermark 0.
	legacy := data[:len(data)-8]
	got, mark, err = decodeImage(legacy)
	if err != nil {
		t.Fatalf("legacy payload: %v", err)
	}
	if mark != 0 || !reflect.DeepEqual(got, img) {
		t.Errorf("legacy decoded mark=%d img=%+v", mark, got)
	}
}

// crossCommit drives one mutating multi-shard envelope through the
// coordinator directly (the white-box equivalent of a wire OpTx).
func crossCommit(t *testing.T, s *Server, ops []TxOp) Response {
	t.Helper()
	req := &Request{Op: OpTx, Tx: &Tx{Ops: ops}}
	plan := classifyTx(req.Tx, len(s.shards))
	if plan.kind != planCross {
		t.Fatalf("envelope did not classify as cross: %+v", plan)
	}
	return s.runCrossShard(req, &plan)
}

// submitOne pushes one request through a shard's batcher and waits for
// its response — interleaving plain batch records between GSN records.
func submitOne(t *testing.T, s *Server, req *Request) Response {
	t.Helper()
	done := make(chan Response, 1)
	sh := s.shardFor(req.Name)
	if !sh.b.submit(&pending{req: req, deliver: func(r Response) { done <- r }}) {
		t.Fatal("submit refused")
	}
	return <-done
}

// TestGSNRelativeOrderOnDisk is the D30 replay-order assertion: after a
// run of cross-shard commits over overlapping participant sets —
// interleaved with single-shard batches — every shard's log must hold
// its GSN records in strictly increasing GSN order, on exactly the
// shards that wrote. Strict per-log monotonicity is what makes the
// relative order of any two envelopes identical on every shard they
// share, so replaying each log independently reproduces one global
// ordering.
func TestGSNRelativeOrderOnDisk(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	cfg := Config{Shards: shards, Workers: 2, MaxBatch: 8, DataDir: dir, Fsync: true}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := namesFor(t, "gd", shards, []int{0, 1, 2, 3})

	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}, {1, 3}}
	wantOnShard := make(map[int]int) // shard -> expected GSN record count
	for round := 0; round < 3; round++ {
		for _, p := range pairs {
			resp := crossCommit(t, s, []TxOp{
				{Op: OpMapAdd, Name: names[p[0]], Key: "bal", Delta: 1},
				{Op: OpMapAdd, Name: names[p[1]], Key: "bal", Delta: 1},
			})
			if resp.Status != StatusOK {
				t.Fatalf("cross commit on %v: %+v", p, resp)
			}
			wantOnShard[p[0]]++
			wantOnShard[p[1]]++
			// A single-shard batch record between cross records.
			if r := submitOne(t, s, &Request{Op: OpCounterAdd, Name: names[p[0]], Delta: 1}); r.Status != StatusOK {
				t.Fatalf("interleaved counter add: %+v", r)
			}
		}
	}
	s.Close()

	for sh := 0; sh < shards; sh++ {
		wl, err := wal.Open(wal.Options{Dir: filepath.Join(dir, fmt.Sprintf("shard-%d", sh))})
		if err != nil {
			t.Fatal(err)
		}
		var gsns []uint64
		err = wl.Replay(func(lsn uint64, body []byte) error {
			if !isGSNRecord(body) {
				return nil
			}
			gsn, logSet, req, err := decodeGSNRecord(body)
			if err != nil {
				return err
			}
			if len(logSet) != 2 {
				t.Errorf("shard %d gsn %d: logSet %v want a pair", sh, gsn, logSet)
			}
			if len(req.Tx.Ops) != 1 {
				t.Errorf("shard %d gsn %d: slice holds %d ops, want this shard's 1", sh, gsn, len(req.Tx.Ops))
			}
			gsns = append(gsns, gsn)
			return nil
		})
		wl.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(gsns) != wantOnShard[sh] {
			t.Errorf("shard %d holds %d GSN records, want %d", sh, len(gsns), wantOnShard[sh])
		}
		for i := 1; i < len(gsns); i++ {
			if gsns[i] <= gsns[i-1] {
				t.Errorf("shard %d: GSN order broken at %d: %d after %d", sh, i, gsns[i], gsns[i-1])
			}
		}
	}

	// And the mixture must recover: balances reflect every commit.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// gsn sequencer must resume past everything on disk.
	if next := s2.gsn.Add(1); next <= uint64(len(pairs)*3) {
		t.Errorf("sequencer resumed at %d, not past the %d issued GSNs", next, len(pairs)*3)
	}
	for sh := 0; sh < shards; sh++ {
		resp := submitOne(t, s2, &Request{Op: OpMapGet, Name: names[sh], Key: "bal"})
		v, err := DecodeInt64(resp.Value)
		if err != nil || resp.Status != StatusOK {
			t.Fatalf("read back shard %d: %+v %v", sh, resp, err)
		}
		if v != int64(wantOnShard[sh]) {
			t.Errorf("shard %d balance = %d want %d", sh, v, wantOnShard[sh])
		}
	}
}

// TestIncompleteGSNReconciliation: a crash can land between the
// participants' fsyncs, leaving a GSN record on some shards' logs and
// not others. Recovery must drop the envelope EVERYWHERE (it was never
// acked — the coordinator's append had not returned) AND physically
// erase the dropped record, so later boots neither refuse on the stale
// orphan once new batches append past it nor resurrect it when the
// missing peer's snapshot watermark advances past its GSN. A dropped
// record at a non-tail position on first sight is still refused: that
// log holds state built on the half-commit.
func TestIncompleteGSNReconciliation(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	cfg := Config{Shards: shards, Workers: 2, MaxBatch: 8, DataDir: dir, Fsync: true}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := namesFor(t, "ic", shards, []int{0, 1})
	resp := crossCommit(t, s, []TxOp{
		{Op: OpMapAdd, Name: names[0], Key: "bal", Delta: 10},
		{Op: OpMapAdd, Name: names[1], Key: "bal", Delta: 10},
	})
	if resp.Status != StatusOK {
		t.Fatalf("seed cross commit: %+v", resp)
	}
	s.Close()

	// forgeOrphan appends the torn tail: a record for gsn naming both
	// shards, present only on shard 0 — as if the crash landed between
	// the participants' fsyncs.
	forgeOrphan := func(gsn uint64) {
		t.Helper()
		orphan := &Request{Op: OpTx, Tx: &Tx{Ops: []TxOp{{Op: OpMapAdd, Name: names[0], Key: "bal", Delta: 7}}}}
		body, err := encodeGSNRecord(gsn, []int{0, 1}, orphan)
		if err != nil {
			t.Fatal(err)
		}
		wl, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "shard-0"), Fsync: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wl.Append(body); err != nil {
			t.Fatal(err)
		}
		wl.Close()
	}
	// shard0GSNs lists the GSN records shard 0's log still holds.
	shard0GSNs := func() []uint64 {
		t.Helper()
		wl, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "shard-0")})
		if err != nil {
			t.Fatal(err)
		}
		defer wl.Close()
		var gsns []uint64
		err = wl.Replay(func(lsn uint64, body []byte) error {
			if !isGSNRecord(body) {
				return nil
			}
			gsn, _, _, err := decodeGSNRecord(body)
			if err != nil {
				return err
			}
			gsns = append(gsns, gsn)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return gsns
	}

	// 1. Orphan at the tail: recovery drops it — and ERASES it, so there
	// is nothing left to re-judge next boot.
	forgeOrphan(999)
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery refused a reconcilable torn tail: %v", err)
	}
	resp = submitOne(t, s2, &Request{Op: OpMapGet, Name: names[0], Key: "bal"})
	if v, _ := DecodeInt64(resp.Value); v != 10 {
		t.Errorf("balance = %d want 10: the dropped gsn 999 leaked into the store", v)
	}
	s2.Close()
	for _, gsn := range shard0GSNs() {
		if gsn == 999 {
			t.Fatal("dropped gsn 999 still on disk after recovery")
		}
	}

	// 2. Life goes on after the drop: a batch appended where the orphan
	// used to sit must not poison the next boot (before the erase, the
	// stale orphan sat at a non-tail position and recovery permanently
	// refused to start).
	wl, err := wal.Open(wal.Options{Dir: filepath.Join(dir, "shard-0"), Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	frame, err := AppendRequest(nil, &Request{Op: OpMapPut, Name: names[0], Key: "later", Value: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Append(frame); err != nil {
		t.Fatal(err)
	}
	wl.Close()
	s3, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery refused a log that appended past an erased orphan: %v", err)
	}
	resp = submitOne(t, s3, &Request{Op: OpMapGet, Name: names[0], Key: "later"})
	if resp.Status != StatusOK || !resp.Found {
		t.Errorf("post-drop batch lost: %+v", resp)
	}
	s3.Close()

	// 3. Watermark advance on the peer must not resurrect a dropped
	// envelope: after the drop, a later cross-shard commit plus a
	// checkpoint pushes shard 1's snapshot watermark past the orphan's
	// GSN — before the erase, the next boot reclassified the orphan as
	// complete and replayed its 7 on shard 0 only (silent divergence).
	forgeOrphan(2999)
	s4, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp = crossCommit(t, s4, []TxOp{
		{Op: OpMapAdd, Name: names[0], Key: "bal", Delta: 1},
		{Op: OpMapAdd, Name: names[1], Key: "bal", Delta: 1},
	})
	if resp.Status != StatusOK {
		t.Fatalf("post-drop cross commit: %+v", resp)
	}
	if err := s4.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s4.Close()
	s5, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery refused after peer watermark advanced: %v", err)
	}
	for _, sh := range []int{0, 1} {
		resp = submitOne(t, s5, &Request{Op: OpMapGet, Name: names[sh], Key: "bal"})
		if v, _ := DecodeInt64(resp.Value); v != 11 {
			t.Errorf("shard %d balance = %d want 11 (dropped envelope resurrected?)", sh, v)
		}
	}
	s5.Close()

	// 4. A dropped record at a non-tail position on FIRST sight is still
	// refused: the tail above it was built on the half-commit.
	wl, err = wal.Open(wal.Options{Dir: filepath.Join(dir, "shard-0"), Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	orphan := &Request{Op: OpTx, Tx: &Tx{Ops: []TxOp{{Op: OpMapAdd, Name: names[0], Key: "bal", Delta: 7}}}}
	body, err := encodeGSNRecord(5999, []int{0, 1}, orphan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Append(body); err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Append(frame); err != nil {
		t.Fatal(err)
	}
	wl.Close()
	if _, err := New(cfg); err == nil {
		t.Fatal("recovery accepted a log whose tail was built on a dropped cross-shard commit")
	}
}

// TestCrossShardInflightCap: coordinators are one goroutine each and
// envelopes sharing a shard serialize on its commit pipeline, so a
// flood past maxCrossInflight must fail fast instead of accumulating
// unbounded goroutines.
func TestCrossShardInflightCap(t *testing.T) {
	s, err := New(Config{Shards: 2, Workers: 2, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	names := namesFor(t, "cap", 2, []int{0, 1})
	ops := []TxOp{
		{Op: OpMapAdd, Name: names[0], Key: "bal", Delta: 1},
		{Op: OpMapAdd, Name: names[1], Key: "bal", Delta: 1},
	}
	req := &Request{Op: OpTx, Tx: &Tx{Ops: ops}}
	plan := classifyTx(req.Tx, 2)
	if plan.kind != planCross {
		t.Fatalf("plan = %+v", plan)
	}

	// Saturate the semaphore as if maxCrossInflight coordinators were
	// already parked, then submit one more: it must be refused, not
	// queued.
	for i := 0; i < maxCrossInflight; i++ {
		s.crossSem <- struct{}{}
	}
	done := make(chan Response, 1)
	s.commitCrossShard(req, &plan, func(r Response) { done <- r })
	if r := <-done; r.Status != StatusErr {
		t.Fatalf("saturated coordinator pool answered %+v, want StatusErr", r)
	}
	for i := 0; i < maxCrossInflight; i++ {
		<-s.crossSem
	}

	// With capacity back, the same envelope commits.
	s.commitCrossShard(req, &plan, func(r Response) { done <- r })
	if r := <-done; r.Status != StatusOK {
		t.Fatalf("post-drain cross commit: %+v", r)
	}
}
