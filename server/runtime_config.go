package server

import (
	"fmt"
	"sync"
	"time"
)

// RuntimeConfig is the server's live-mutable configuration: the base
// values of the batching knobs every shard re-reads at batch
// boundaries. PUT /config validates against the server's immutable
// constraints (Serial and a WAL both clamp MaxInflight to 1, D20) and
// pushes the new values to every shard immediately; when the adaptive
// controller is on it keeps walking per-shard MaxInflight/BatchFanout
// from whatever base the operator last set.
type RuntimeConfig struct {
	mu            sync.RWMutex
	maxBatch      int
	batchDelay    time.Duration
	batchFanout   int
	maxInflight   int
	snapshotEvery time.Duration
	adaptive      bool
	tracing       bool

	// Immutable constraints captured at boot.
	durable bool // DataDir set: the WAL needs root-commit order, inflight = 1
	serial  bool // serial runtime forbids concurrent Run
	workers int
	shards  int
}

func newRuntimeConfig(cfg Config) *RuntimeConfig {
	return &RuntimeConfig{
		maxBatch:      cfg.MaxBatch,
		batchDelay:    cfg.BatchDelay,
		batchFanout:   cfg.BatchFanout,
		maxInflight:   cfg.MaxInflight,
		snapshotEvery: cfg.SnapshotEvery,
		adaptive:      cfg.Adaptive,
		tracing:       !cfg.DisableTracing,
		durable:       cfg.DataDir != "",
		serial:        cfg.Serial,
		workers:       cfg.Workers,
		shards:        cfg.Shards,
	}
}

// ConfigUpdate is the PUT /config body: pointer fields, so absent keys
// leave their knob untouched (partial update).
type ConfigUpdate struct {
	MaxBatch        *int     `json:"max_batch,omitempty"`
	BatchDelayMs    *float64 `json:"batch_delay_ms,omitempty"`
	BatchFanout     *int     `json:"batch_fanout,omitempty"`
	MaxInflight     *int     `json:"max_inflight,omitempty"`
	SnapshotEveryMs *float64 `json:"snapshot_every_ms,omitempty"`
	Adaptive        *bool    `json:"adaptive,omitempty"`
	Tracing         *bool    `json:"tracing,omitempty"`
}

// ShardConfigView is one shard's EFFECTIVE knob values — what its
// batcher is using right now, which diverges from the base when the
// adaptive controller is walking it.
type ShardConfigView struct {
	Shard       int `json:"shard"`
	MaxInflight int `json:"max_inflight"`
	BatchFanout int `json:"batch_fanout"`
}

// ConfigView is the GET /config payload (and PUT's success response):
// the base values plus each shard's effective ones.
type ConfigView struct {
	MaxBatch        int               `json:"max_batch"`
	BatchDelayMs    float64           `json:"batch_delay_ms"`
	BatchFanout     int               `json:"batch_fanout"`
	MaxInflight     int               `json:"max_inflight"`
	SnapshotEveryMs float64           `json:"snapshot_every_ms"`
	Adaptive        bool              `json:"adaptive"`
	Tracing         bool              `json:"tracing"`
	Durable         bool              `json:"durable"`
	Serial          bool              `json:"serial"`
	PerShard        []ShardConfigView `json:"per_shard,omitempty"`
}

// maxBatchLimit bounds PUT max_batch: far beyond useful group sizes,
// small enough that a typo cannot make collect loop unboundedly.
const maxBatchLimit = 1 << 16

// validate checks an update against the current state without applying
// it. Every violation is reported (the PUT fails atomically: either all
// fields apply or none).
func (rc *RuntimeConfig) validate(u *ConfigUpdate) error {
	if u.MaxBatch != nil && (*u.MaxBatch < 1 || *u.MaxBatch > maxBatchLimit) {
		return fmt.Errorf("max_batch must be in [1, %d], got %d", maxBatchLimit, *u.MaxBatch)
	}
	if u.BatchDelayMs != nil && *u.BatchDelayMs < 0 {
		return fmt.Errorf("batch_delay_ms must be >= 0, got %g", *u.BatchDelayMs)
	}
	if u.BatchFanout != nil && *u.BatchFanout < 1 {
		return fmt.Errorf("batch_fanout must be >= 1, got %d", *u.BatchFanout)
	}
	if u.MaxInflight != nil {
		n := *u.MaxInflight
		if n < 1 {
			return fmt.Errorf("max_inflight must be >= 1, got %d", n)
		}
		if n > 1 && rc.durable {
			return fmt.Errorf("max_inflight > 1 is invalid with a WAL: each shard's log records batches in root-commit order (D20)")
		}
		if n > 1 && rc.serial {
			return fmt.Errorf("max_inflight > 1 is invalid in serial mode: the serial runtime forbids concurrent Run")
		}
	}
	if u.SnapshotEveryMs != nil && *u.SnapshotEveryMs < 0 {
		return fmt.Errorf("snapshot_every_ms must be >= 0 (0 disables automatic checkpoints), got %g", *u.SnapshotEveryMs)
	}
	return nil
}

// apply validates u and merges it into the base config, returning the
// new base values. The caller (Server.ApplyConfig) pushes them to the
// shards.
func (rc *RuntimeConfig) apply(u *ConfigUpdate) error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if err := rc.validate(u); err != nil {
		return err
	}
	if u.MaxBatch != nil {
		rc.maxBatch = *u.MaxBatch
	}
	if u.BatchDelayMs != nil {
		rc.batchDelay = time.Duration(*u.BatchDelayMs * float64(time.Millisecond))
	}
	if u.BatchFanout != nil {
		rc.batchFanout = *u.BatchFanout
	}
	if u.MaxInflight != nil {
		rc.maxInflight = *u.MaxInflight
	}
	if u.SnapshotEveryMs != nil {
		rc.snapshotEvery = time.Duration(*u.SnapshotEveryMs * float64(time.Millisecond))
	}
	if u.Adaptive != nil {
		rc.adaptive = *u.Adaptive
	}
	if u.Tracing != nil {
		rc.tracing = *u.Tracing
	}
	return nil
}

// tracingOn reports the live tracing setting.
func (rc *RuntimeConfig) tracingOn() bool {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	return rc.tracing
}

// base returns the current base knob values.
func (rc *RuntimeConfig) base() (maxBatch int, delay time.Duration, fanout, inflight int) {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	return rc.maxBatch, rc.batchDelay, rc.batchFanout, rc.maxInflight
}

// snapshotCadence returns the live checkpoint cadence (0: disabled).
func (rc *RuntimeConfig) snapshotCadence() time.Duration {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	return rc.snapshotEvery
}

// adaptiveOn reports whether the controller may walk the knobs.
func (rc *RuntimeConfig) adaptiveOn() bool {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	return rc.adaptive
}

// view renders the base values (per-shard effective values are filled
// in by the server, which owns the shards).
func (rc *RuntimeConfig) view() ConfigView {
	rc.mu.RLock()
	defer rc.mu.RUnlock()
	return ConfigView{
		MaxBatch:        rc.maxBatch,
		BatchDelayMs:    float64(rc.batchDelay) / float64(time.Millisecond),
		BatchFanout:     rc.batchFanout,
		MaxInflight:     rc.maxInflight,
		SnapshotEveryMs: float64(rc.snapshotEvery) / float64(time.Millisecond),
		Adaptive:        rc.adaptive,
		Tracing:         rc.tracing,
		Durable:         rc.durable,
		Serial:          rc.serial,
	}
}

// ApplyConfig validates and applies a live configuration update: the
// base values change atomically, then every shard's knobs are pushed so
// the next batch boundary picks them up. With the adaptive controller
// on, MaxInflight/BatchFanout become its new starting point — it keeps
// walking from there.
func (s *Server) ApplyConfig(u *ConfigUpdate) (ConfigView, error) {
	if err := s.rc.apply(u); err != nil {
		return ConfigView{}, err
	}
	maxBatch, delay, fanout, inflight := s.rc.base()
	for _, sh := range s.shards {
		sh.b.knobs.maxBatch.Store(int32(maxBatch))
		sh.b.knobs.delay.Store(int64(delay))
		sh.b.knobs.fanout.Store(int32(fanout))
		sh.b.pl.setLimit(inflight)
	}
	s.SetTracing(s.rc.tracingOn())
	return s.ConfigSnapshot(), nil
}

// ConfigSnapshot renders the current configuration: base values plus
// each shard's effective MaxInflight/BatchFanout.
func (s *Server) ConfigSnapshot() ConfigView {
	v := s.rc.view()
	for _, sh := range s.shards {
		v.PerShard = append(v.PerShard, ShardConfigView{
			Shard:       sh.id,
			MaxInflight: sh.b.pl.getLimit(),
			BatchFanout: int(sh.b.knobs.fanout.Load()),
		})
	}
	return v
}
