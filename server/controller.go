package server

import (
	"time"
)

// The adaptive controller closes the loop the paper leaves to the
// operator: how much commit pipelining a shard can sustain depends on
// the workload's conflict profile (read-heavy traffic under SharedReads
// pipelines freely; overlapping write-heavy batches livelock — the
// PR 2 cliff that forces the conservative static MaxInflight=1). Each
// tick it observes every shard's conflict-abort rate and batch
// occupancy over the last interval and walks that shard's
// MaxInflight/BatchFanout:
//
//   - MaxInflight moves by AIMD with hysteresis: a spike past abortHi
//     halves it (multiplicative decrease, backing off the cliff) and
//     remembers a ceiling one below where the cliff bit; calm ticks
//     below abortLo raise it by one toward min(ceiling, ctrlInflightCap).
//     Rates between the two thresholds hold — the hysteresis band that
//     keeps borderline workloads from flapping. After ctrlProbeTicks
//     calm ticks parked AT the ceiling the controller raises the
//     ceiling once to re-probe — workloads shift (the phase-changing
//     benchmark), and a cliff learned during a write burst should not
//     cap a later read phase forever.
//   - BatchFanout walks one step per tick toward mean batch occupancy /
//     minRequestsPerBlock: fanning wider than one block per
//     minRequestsPerBlock requests only buys dispatch overhead, and
//     narrower leaves workers idle.
//
// WAL and Serial shards never leave MaxInflight 1 (D20); fanout still
// adapts there. The controller runs whenever the server does, but only
// acts while RuntimeConfig.Adaptive is on; a PUT /config that changes
// MaxInflight/BatchFanout is adopted as the new starting point.

const (
	ctrlTick        = 100 * time.Millisecond
	ctrlAbortHi     = 0.10 // multiplicative decrease above this conflict-abort rate
	ctrlAbortLo     = 0.02 // additive increase below this
	ctrlCooldown    = 5    // hold ticks after a decrease (let the pipeline drain)
	ctrlProbeTicks  = 20   // calm ticks at the ceiling before re-probing (~2s)
	ctrlInflightCap = 8    // hard upper bound on walked MaxInflight
	ctrlMinObsTx    = 16   // ignore ticks with fewer started txs (noise)
)

// ctrlObs is one tick's observation of one shard.
type ctrlObs struct {
	abortRate float64 // conflict aborts / txs begun over the tick
	txs       uint64  // txs begun over the tick
	meanBatch float64 // mean batch occupancy over the tick
	batches   uint64  // group commits over the tick
}

// shardCtrl is the controller's per-shard state. step is pure over
// (state, observation) — the unit tests drive it with synthetic traces.
type shardCtrl struct {
	inflight int
	fanout   int
	ceiling  int // learned MaxInflight ceiling (cliff - 1 after a decrease)
	cooldown int // ticks left to hold after a decrease
	atCeil   int // consecutive calm ticks parked at the ceiling

	// Bounds: inflightCap is 1 on WAL/Serial shards, ctrlInflightCap
	// otherwise; fanoutCap is the worker count.
	inflightCap int
	fanoutCap   int
}

func newShardCtrl(inflight, fanout, inflightCap, fanoutCap int) *shardCtrl {
	if inflightCap < 1 {
		inflightCap = 1
	}
	if fanoutCap < 1 {
		fanoutCap = 1
	}
	return &shardCtrl{
		inflight:    clampInt(inflight, 1, inflightCap),
		fanout:      clampInt(fanout, 1, fanoutCap),
		ceiling:     inflightCap,
		inflightCap: inflightCap,
		fanoutCap:   fanoutCap,
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// step advances the controller one tick and returns the signed change
// applied to each knob (for the steps-total metrics: nonzero means the
// knob moved).
func (c *shardCtrl) step(o ctrlObs) (dInflight, dFanout int) {
	if o.batches == 0 {
		return 0, 0 // idle shard: nothing observed, nothing to adapt
	}

	// Fanout: one step toward the occupancy-derived target.
	target := clampInt(int(o.meanBatch/minRequestsPerBlock+0.5), 1, c.fanoutCap)
	switch {
	case c.fanout < target:
		c.fanout++
		dFanout = 1
	case c.fanout > target:
		c.fanout--
		dFanout = -1
	}

	// Inflight: AIMD with hysteresis.
	if c.inflightCap == 1 {
		c.inflight = 1
		return dInflight, dFanout
	}
	if o.txs < ctrlMinObsTx {
		return dInflight, dFanout // too few transactions to trust the rate
	}
	if c.cooldown > 0 {
		c.cooldown--
		return dInflight, dFanout
	}
	switch {
	case o.abortRate > ctrlAbortHi:
		next := c.inflight / 2
		if next < 1 {
			next = 1
		}
		if next < c.inflight {
			c.ceiling = clampInt(c.inflight-1, 1, c.inflightCap)
			dInflight = next - c.inflight
			c.inflight = next
			c.cooldown = ctrlCooldown
		}
		c.atCeil = 0
	case o.abortRate < ctrlAbortLo:
		limit := c.ceiling
		if limit > c.inflightCap {
			limit = c.inflightCap
		}
		if c.inflight < limit {
			c.inflight++
			dInflight = 1
			c.atCeil = 0
		} else if c.inflight == limit && c.ceiling < c.inflightCap {
			c.atCeil++
			if c.atCeil >= ctrlProbeTicks {
				c.ceiling++ // re-probe: next calm tick climbs into it
				c.atCeil = 0
			}
		}
	default:
		// Hysteresis band: hold.
	}
	return dInflight, dFanout
}

// stopController stops the controller goroutine (idempotent via the
// Close/Kill CAS — both call it exactly once).
func (s *Server) stopController() {
	if s.ctrlStop != nil {
		close(s.ctrlStop)
		<-s.ctrlDone
	}
}

// controllerLoop ticks the per-shard controllers. It always runs (the
// tick is a few atomic loads per shard) but only acts while
// RuntimeConfig.Adaptive is on, so PUT /config can toggle adaptivity
// without goroutine churn.
func (s *Server) controllerLoop() {
	defer close(s.ctrlDone)

	type shardPrev struct {
		txsBegun uint64
		aborted  uint64
		batches  uint64
		sizeSum  uint64
	}
	ctrls := make([]*shardCtrl, len(s.shards))
	prev := make([]shardPrev, len(s.shards))
	for i, sh := range s.shards {
		inflightCap := ctrlInflightCap
		if sh.wal != nil || s.cfg.Serial {
			inflightCap = 1 // D20: the log needs root-commit order
		}
		ctrls[i] = newShardCtrl(sh.b.pl.getLimit(), int(sh.b.knobs.fanout.Load()),
			inflightCap, s.cfg.Workers)
		rt := sh.rt.Stats()
		batches, _, mean, _ := sh.b.stats()
		prev[i] = shardPrev{txsBegun: rt.Begun, aborted: rt.Aborted,
			batches: batches, sizeSum: uint64(mean * float64(batches))}
	}

	t := time.NewTicker(ctrlTick)
	defer t.Stop()
	for {
		select {
		case <-s.ctrlStop:
			return
		case <-t.C:
		}
		active := s.rc.adaptiveOn()
		for i, sh := range s.shards {
			c := ctrls[i]

			// Adopt operator overrides: a PUT /config that moved a knob
			// while we slept becomes the new starting point, with the
			// learned ceiling cleared (the operator knows something we
			// don't).
			if eff := sh.b.pl.getLimit(); eff != c.inflight {
				c.inflight = clampInt(eff, 1, c.inflightCap)
				c.ceiling = c.inflightCap
				c.cooldown, c.atCeil = 0, 0
			}
			if eff := int(sh.b.knobs.fanout.Load()); eff != c.fanout {
				c.fanout = clampInt(eff, 1, c.fanoutCap)
			}

			rt := sh.rt.Stats()
			batches, _, mean, _ := sh.b.stats()
			sizeSum := uint64(mean * float64(batches))
			o := ctrlObs{
				txs:     rt.Begun - prev[i].txsBegun,
				batches: batches - prev[i].batches,
			}
			if o.txs > 0 {
				o.abortRate = float64(rt.Aborted-prev[i].aborted) / float64(o.txs)
			}
			if o.batches > 0 {
				o.meanBatch = float64(sizeSum-prev[i].sizeSum) / float64(o.batches)
			}
			prev[i] = shardPrev{txsBegun: rt.Begun, aborted: rt.Aborted,
				batches: batches, sizeSum: sizeSum}

			if !active {
				continue
			}
			dIn, dFan := c.step(o)
			if dIn != 0 {
				sh.b.pl.setLimit(c.inflight)
			}
			if dFan != 0 {
				sh.b.knobs.fanout.Store(int32(c.fanout))
			}
			if dIn > 0 || dFan > 0 {
				s.obs.ctrlUp[i].Inc()
			}
			if dIn < 0 || dFan < 0 {
				s.obs.ctrlDn[i].Inc()
			}
		}
	}
}
