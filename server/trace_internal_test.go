package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// White-box tests for the conflict profiler's crisis-dump path (D37):
// the crisis hook must produce exactly one timestamped flight-*.json in
// the data directory per debounce window, and a memory-only server must
// skip the file quietly.

// waitForDumps polls until the profiler reports n dump files (or fails
// the test after a generous deadline — the profiler goroutine handles
// the signal asynchronously).
func waitForDumps(t *testing.T, p *traceProfiler, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.dumps.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("profiler wrote %d dumps, want %d", p.dumps.Load(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func flightFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "flight-") && strings.HasSuffix(e.Name(), ".json") {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestCrisisDumpWritesFlightFile(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Addr: "127.0.0.1:0", DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck // torn down via Close below
	defer s.Close()

	s.prof.noteCrisis()
	waitForDumps(t, s.prof, 1)

	files := flightFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("data dir holds %d flight files, want 1: %v", len(files), files)
	}
	blob, err := os.ReadFile(filepath.Join(dir, files[0]))
	if err != nil {
		t.Fatal(err)
	}
	var dump flightDump
	if err := json.Unmarshal(blob, &dump); err != nil {
		t.Fatalf("flight file is not valid JSON: %v", err)
	}
	if dump.Reason == "" || dump.WrittenAt.IsZero() {
		t.Fatalf("dump lacks reason/timestamp: %+v", dump)
	}
	if len(dump.Shards) != 1 {
		t.Fatalf("dump covers %d shards, want 1", len(dump.Shards))
	}

	// A second crisis inside the debounce window must NOT write another
	// file — a livelocked shard re-taking the token would otherwise spam
	// the data directory with near-identical snapshots.
	s.prof.noteCrisis()
	time.Sleep(3 * profilePollInterval)
	if got := flightFiles(t, dir); len(got) != 1 {
		t.Fatalf("debounce failed: %d flight files after back-to-back crises: %v", len(got), got)
	}
	if n := s.prof.dumps.Load(); n != 1 {
		t.Fatalf("dump counter = %d, want 1 (debounced)", n)
	}
}

func TestCrisisDumpSkippedWithoutDataDir(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck // torn down via Close below
	defer s.Close()

	s.prof.noteCrisis()
	// Give the profiler goroutine time to handle the signal; the dump
	// counter must stay zero because there is nowhere to write.
	time.Sleep(3 * profilePollInterval)
	if n := s.prof.dumps.Load(); n != 0 {
		t.Fatalf("memory-only server wrote %d dumps", n)
	}
}
