package server

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// readyzCode drives handleReadyz directly — deterministic, no listener.
func readyzCode(t *testing.T, s *Server) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.handleReadyz(rec, httptest.NewRequest("GET", "/readyz", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

// TestReadyzFlipsOnShutdown: /readyz answers 503 the instant shutdown
// begins — the closed flag is set before any draining starts.
func TestReadyzFlipsOnShutdown(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := readyzCode(t, s); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("fresh server readyz = %d %q", code, body)
	}
	// Flip the flag exactly as Close's CAS does, probe, then restore so
	// the real Close still runs its teardown.
	s.closed.Store(true)
	if code, body := readyzCode(t, s); code != 503 || !strings.Contains(body, "shutting down") {
		t.Fatalf("closed server readyz = %d %q", code, body)
	}
	s.closed.Store(false)
	s.Close()
	if code, _ := readyzCode(t, s); code != 503 {
		t.Fatal("readyz not 503 after Close")
	}
}

// TestReadyzReplicaGating: a replica is not ready until it has caught
// up with its primary once and its staleness sits under the bound —
// load balancers must not route reads at a replica still syncing.
func TestReadyzReplicaGating(t *testing.T) {
	primary, err := New(Config{Addr: "127.0.0.1:0", DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.Listen(); err != nil {
		t.Fatal(err)
	}
	go primary.Serve() //nolint:errcheck // torn down via Close below
	defer primary.Close()

	replica, err := New(Config{
		Addr:                "127.0.0.1:0",
		ReplicaOf:           primary.Addr().String(),
		ReplicaMaxStaleness: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.Listen(); err != nil {
		t.Fatal(err)
	}
	go replica.Serve() //nolint:errcheck
	defer replica.Close()

	// Syncing replicas report 503 until the first catch-up, then flip to
	// ready. The two states race with the stream, so poll for the flip
	// and only then pin the 503 wording (it must have been the syncing
	// message beforehand, never "ready").
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body := readyzCode(t, replica)
		if code == 200 {
			break
		}
		if !strings.Contains(body, "replica") {
			t.Fatalf("syncing replica readyz = %d %q, want a replica-sync message", code, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never became ready: %d %q", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// An unreachable primary means no first catch-up, ever: readiness
	// stays 503 with the syncing message.
	stuck, err := New(Config{
		Addr:                "127.0.0.1:0",
		ReplicaOf:           "127.0.0.1:1",
		ReplicaMaxStaleness: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := stuck.Listen(); err != nil {
		t.Fatal(err)
	}
	go stuck.Serve() //nolint:errcheck
	defer stuck.Close()
	if code, body := readyzCode(t, stuck); code != 503 || !strings.Contains(body, "not yet caught up") {
		t.Fatalf("stuck replica readyz = %d %q", code, body)
	}
}

// TestReadyzFlipsOnWALLatch: a latched WAL (unrecoverable I/O error)
// makes the shard unable to accept writes — readiness must say so.
func TestReadyzFlipsOnWALLatch(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	if code, _ := readyzCode(t, s); code != 200 {
		t.Fatal("durable server not ready at boot")
	}
	s.shards[1].wal.Fail(errors.New("disk on fire"))
	code, body := readyzCode(t, s)
	if code != 503 || !strings.Contains(body, "shard 1") || !strings.Contains(body, "latched") {
		t.Fatalf("latched-WAL readyz = %d %q", code, body)
	}
}
