package server

import (
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// readyzCode drives handleReadyz directly — deterministic, no listener.
func readyzCode(t *testing.T, s *Server) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.handleReadyz(rec, httptest.NewRequest("GET", "/readyz", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

// TestReadyzFlipsOnShutdown: /readyz answers 503 the instant shutdown
// begins — the closed flag is set before any draining starts.
func TestReadyzFlipsOnShutdown(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if code, body := readyzCode(t, s); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("fresh server readyz = %d %q", code, body)
	}
	// Flip the flag exactly as Close's CAS does, probe, then restore so
	// the real Close still runs its teardown.
	s.closed.Store(true)
	if code, body := readyzCode(t, s); code != 503 || !strings.Contains(body, "shutting down") {
		t.Fatalf("closed server readyz = %d %q", code, body)
	}
	s.closed.Store(false)
	s.Close()
	if code, _ := readyzCode(t, s); code != 503 {
		t.Fatal("readyz not 503 after Close")
	}
}

// TestReadyzFlipsOnWALLatch: a latched WAL (unrecoverable I/O error)
// makes the shard unable to accept writes — readiness must say so.
func TestReadyzFlipsOnWALLatch(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	if code, _ := readyzCode(t, s); code != 200 {
		t.Fatal("durable server not ready at boot")
	}
	s.shards[1].wal.Fail(errors.New("disk on fire"))
	code, body := readyzCode(t, s)
	if code != 503 || !strings.Contains(body, "shard 1") || !strings.Contains(body, "latched") {
		t.Fatalf("latched-WAL readyz = %d %q", code, body)
	}
}
