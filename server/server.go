package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pnstm"
	"pnstm/internal/wal"
	"pnstm/stmlib"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address (":7455" by default).
	Addr string

	// Workers is the runtime's worker-slot count P (default 8, max 32).
	Workers int

	// MaxBatch bounds the number of requests coalesced into one group
	// commit (default 64). 1 disables grouping: every request is its own
	// root transaction — the baseline the load generator compares
	// against.
	MaxBatch int

	// BatchDelay is how long the batcher waits for stragglers after the
	// first request of a batch (default 0: group only what is already in
	// flight, keeping unloaded latency at the floor).
	BatchDelay time.Duration

	// BatchFanout bounds the parallel blocks one batch forks; requests
	// are spread over the blocks, each running as its own nested child
	// transaction (default: Workers).
	BatchFanout int

	// MaxInflight bounds concurrent group commits. The default 1 is the
	// classic group commit: one batch transaction at a time, so requests
	// only ever conflict with their own batch siblings, where the
	// runtime's nesting-aware contention management (escalation)
	// resolves them. Raising it pipelines batches — the next batch
	// launches while the previous still runs, keeping the worker slots
	// fed — which pays off for read-dominant traffic under SharedReads
	// (concurrent readers never conflict) but can livelock overlapping
	// write-heavy batches: concurrent roots that persistently write the
	// same keys abort each other indefinitely. Forced to 1 with Serial,
	// whose runtime forbids concurrent Run.
	MaxInflight int

	// Serial runs the runtime in the serial-nesting baseline mode: the
	// batch's children execute sequentially in one context. For
	// benchmarking the paper's comparison end to end.
	Serial bool

	// SharedReads enables the runtime's shared-read conflict model
	// (paper §9): concurrent readers in one batch never conflict with
	// each other. Strongly recommended for read-heavy serving — in the
	// default write-only model two requests merely reading the same map
	// bucket conflict and serialize on publication latency.
	SharedReads bool

	// Registry sizes the named structures (zero = stmlib defaults).
	Registry stmlib.RegistryConfig

	// DataDir enables durability: a segmented write-ahead log plus
	// periodic whole-store snapshots live there, and New recovers the
	// store from them before serving. Empty: in-memory only. Enabling
	// the WAL forces MaxInflight to 1 — the log records each batch in
	// root-commit order, and pipelined batches would need a commit-order
	// sequencer to keep the durable order honest (D20).
	DataDir string

	// Fsync makes the WAL fsync once per group commit, before any
	// response of the batch is acked. Off, appends stop at the OS page
	// cache: a process crash is safe, a machine crash is not. Ignored
	// without DataDir.
	Fsync bool

	// SnapshotEvery starts a background checkpointer writing a snapshot
	// (and truncating covered WAL segments) on that cadence. Zero: no
	// automatic checkpoints (Server.Checkpoint still works). Ignored
	// without DataDir.
	SnapshotEvery time.Duration

	// WALSegmentBytes is the WAL's segment-rotation threshold (zero:
	// the wal package default, 64 MiB). Ignored without DataDir.
	WALSegmentBytes int64
}

func (c *Config) fillDefaults() {
	if c.Addr == "" {
		c.Addr = ":7455"
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchFanout <= 0 {
		c.BatchFanout = c.Workers
	}
	if c.MaxInflight <= 0 || c.Serial || c.DataDir != "" {
		c.MaxInflight = 1
	}
}

// ServerStats is the OpStats payload: batching behaviour plus the
// runtime's cumulative counters.
type ServerStats struct {
	Workers       uint64      `json:"workers"`
	MaxBatch      uint64      `json:"max_batch"`
	Serial        bool        `json:"serial"`
	Conns         uint64      `json:"conns"`
	Batches       uint64      `json:"batches"`
	Requests      uint64      `json:"requests"`
	MeanBatch     float64     `json:"mean_batch"`
	LargestBatch  uint64      `json:"largest_batch"`
	Runtime       pnstm.Stats `json:"runtime"`
	RuntimeAborts float64     `json:"runtime_abort_ratio"`

	// WAL is present when the server runs with a data directory; its
	// Syncs counter is the group-commit durability invariant — one fsync
	// per logged batch, however many requests the batch carried.
	WAL *wal.Stats `json:"wal,omitempty"`
}

// Server owns the listener, the runtime, the structure registry and the
// batching engine. Create with New, start with Serve or ListenAndServe,
// stop with Close.
type Server struct {
	cfg Config
	rt  *pnstm.Runtime
	reg *stmlib.Registry
	b   *batcher
	wal *wal.Log // nil without DataDir

	ckStop chan struct{} // non-nil when the checkpointer runs
	ckDone chan struct{}

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New creates a server (runtime, registry, batcher) without touching
// the network yet. With Config.DataDir set it also opens the
// write-ahead log and recovers the store — snapshot import plus WAL
// tail replay — before returning.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	rt, err := pnstm.New(pnstm.Config{Workers: cfg.Workers, Serial: cfg.Serial, SharedReads: cfg.SharedReads})
	if err != nil {
		return nil, err
	}
	reg := stmlib.NewRegistry(cfg.Registry)
	s := &Server{
		cfg:   cfg,
		rt:    rt,
		reg:   reg,
		conns: make(map[net.Conn]struct{}),
	}
	if cfg.DataDir != "" {
		wl, err := wal.Open(wal.Options{Dir: cfg.DataDir, Fsync: cfg.Fsync, SegmentBytes: cfg.WALSegmentBytes})
		if err != nil {
			rt.Close()
			return nil, err
		}
		s.wal = wl
		if err := s.recoverStore(); err != nil {
			wl.Close()
			rt.Close()
			return nil, err
		}
	}
	s.b = newBatcher(rt, reg, s.wal, cfg.MaxBatch, cfg.BatchFanout, cfg.MaxInflight, cfg.BatchDelay)
	if s.wal != nil && cfg.SnapshotEvery > 0 {
		s.ckStop = make(chan struct{})
		s.ckDone = make(chan struct{})
		go s.checkpointLoop(cfg.SnapshotEvery)
	}
	return s, nil
}

// WALStats snapshots the log's counters (nil-safe zero value without a
// data directory).
func (s *Server) WALStats() wal.Stats {
	if s.wal == nil {
		return wal.Stats{}
	}
	return s.wal.Stats()
}

// Runtime exposes the underlying runtime (in-process embedding, tests).
func (s *Server) Runtime() *pnstm.Runtime { return s.rt }

// Registry exposes the structure catalog (in-process embedding, tests).
func (s *Server) Registry() *stmlib.Registry { return s.reg }

// Listen binds the configured address. Addr() is valid afterwards, which
// is how tests bind ":0" and discover the port before Serve.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Close. Listen must have succeeded.
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(nc)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Close shuts down gracefully: stop accepting, stop the checkpointer,
// flush the batcher — every in-flight batch executes, logs and
// delivers its responses — then issue the WAL's final fsync, and only
// then tear down connections and the runtime. Every response acked
// before Close returns is durable (with Fsync it already was, batch by
// batch). Idempotent.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.ln != nil {
		s.ln.Close()
	}
	if s.ckStop != nil {
		close(s.ckStop)
		<-s.ckDone
	}
	// Flush before the teardown: connections stay up so in-flight
	// batches can still deliver their acks. A client that has stopped
	// reading could otherwise wedge that flush via TCP backpressure
	// (blocked writer -> full response queue -> blocked deliver), so
	// bound every remaining write first: healthy clients drain well
	// inside the deadline, stalled ones fail their writer and stop
	// absorbing deliveries.
	s.mu.Lock()
	for nc := range s.conns {
		nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
	}
	s.mu.Unlock()
	s.b.close()
	if s.wal != nil {
		// With Fsync off this final sync is the ONLY point acked writes
		// reach stable storage, so a failure here must not masquerade as
		// a clean shutdown.
		if err := s.wal.Sync(); err != nil {
			fmt.Fprintf(os.Stderr, "server: final wal fsync failed — acked writes may not be durable: %v\n", err)
		}
		if err := s.wal.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "server: wal close: %v\n", err)
		}
	}
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.rt.Close()
}

// Kill is the crash hook for recovery tests: it abandons the WAL
// without flushing and tears everything down immediately, losing
// whatever a real SIGKILL would lose (nothing acked, when Fsync is on).
// Idempotent with Close.
func (s *Server) Kill() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.ln != nil {
		s.ln.Close()
	}
	if s.ckStop != nil {
		close(s.ckStop)
		<-s.ckDone
	}
	if s.wal != nil {
		s.wal.Abandon() // in-flight appends now fail; nothing more reaches disk
	}
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.b.close()
	s.rt.Close()
}

// Stats snapshots the server's activity.
func (s *Server) Stats() ServerStats {
	batches, requests, mean, largest := s.b.stats()
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	rts := s.rt.Stats()
	var ws *wal.Stats
	if s.wal != nil {
		st := s.wal.Stats()
		ws = &st
	}
	return ServerStats{
		WAL:           ws,
		Workers:       uint64(s.cfg.Workers),
		MaxBatch:      uint64(s.cfg.MaxBatch),
		Serial:        s.cfg.Serial,
		Conns:         uint64(conns),
		Batches:       batches,
		Requests:      requests,
		MeanBatch:     mean,
		LargestBatch:  uint64(largest),
		Runtime:       rts,
		RuntimeAborts: rts.AbortRate(),
	}
}

// handleConn runs one connection: a reader loop decoding frames and
// submitting them to the batcher, and a writer goroutine serializing
// responses (responses may complete out of order across batches; clients
// match by request id).
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
	}()

	out := make(chan Response, 256)
	connClosed := make(chan struct{}) // reader gone: stop routing responses here
	writerDone := make(chan struct{}) // writer gone: never block the batcher on a dead conn
	defer func() {
		close(connClosed)
		<-writerDone
	}()

	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(nc)
		var buf []byte
		for {
			select {
			case resp := <-out:
				buf = AppendResponse(buf[:0], &resp)
				if _, err := bw.Write(buf); err != nil {
					return
				}
				// Flush only when the queue runs dry: consecutive
				// responses of one batch leave in one segment.
				if len(out) == 0 {
					if err := bw.Flush(); err != nil {
						return
					}
				}
			case <-connClosed:
				return
			}
		}
	}()

	deliver := func(resp Response) {
		select {
		case out <- resp:
		case <-connClosed:
		case <-writerDone:
		}
	}

	br := bufio.NewReader(nc)
	for {
		frame, err := ReadFrame(br)
		if err != nil {
			return // EOF, forced close, or an unrecoverable framing error
		}
		req, err := ParseRequest(frame)
		if err != nil {
			// The id is the payload's leading u64, so it usually survives
			// a body parse failure — echo it back so the caller's pending
			// round trip fails instead of hanging. After a malformed frame
			// the stream offset is still trustworthy (framing is
			// independent of payload), so carry on afterwards.
			var id uint64
			if len(frame) >= 8 {
				id = binary.BigEndian.Uint64(frame[:8])
			}
			deliver(Response{ID: id, Status: StatusErr, Msg: err.Error()})
			continue
		}
		switch req.Op {
		case OpPing:
			deliver(Response{ID: req.ID, Status: StatusOK})
		case OpStats:
			blob, err := json.Marshal(s.Stats())
			if err != nil {
				deliver(Response{ID: req.ID, Status: StatusErr, Msg: err.Error()})
				continue
			}
			deliver(Response{ID: req.ID, Status: StatusOK, Value: blob})
		default:
			p := &pending{req: req, deliver: deliver}
			if !s.b.submit(p) {
				deliver(Response{ID: req.ID, Status: StatusErr, Msg: "server closing"})
			}
		}
	}
}
