package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pnstm"
	"pnstm/internal/wal"
	"pnstm/stmlib"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address (":7455" by default).
	Addr string

	// Shards splits the store into that many independent engine
	// partitions (default 1, D23). Each shard owns a private runtime,
	// structure registry, batching loop, commit-ticket sequence and —
	// with DataDir — its own write-ahead log under shard-<i>/, so group
	// commits on different shards run fully in parallel, including their
	// fsyncs. Structures are assigned to shards by name hash
	// (stmlib.ShardIndex): a request touches exactly the shard its named
	// structure lives on, so single-structure requests never cross
	// shards. Cross-structure checkouts run atomically on their stock
	// map's shard (crediting counter partials there); counter reads fan
	// across all shards and sum the partials. The shard count is pinned
	// into a durable data directory's manifest — reopening with a
	// different count is refused.
	Shards int

	// Workers is the runtime's worker-slot count P (default 8, max 32),
	// per shard: every shard runs its own runtime with this many slots.
	Workers int

	// MaxBatch bounds the number of requests coalesced into one group
	// commit (default 64). 1 disables grouping: every request is its own
	// root transaction — the baseline the load generator compares
	// against.
	MaxBatch int

	// BatchDelay is how long the batcher waits for stragglers after the
	// first request of a batch (default 0: group only what is already in
	// flight, keeping unloaded latency at the floor).
	BatchDelay time.Duration

	// BatchFanout bounds the parallel blocks one batch forks; requests
	// are spread over the blocks, each running as its own nested child
	// transaction (default: Workers).
	BatchFanout int

	// MaxInflight bounds concurrent group commits PER SHARD. The default
	// 1 is the classic group commit: one batch transaction at a time per
	// shard, so requests only ever conflict with their own batch
	// siblings, where the runtime's nesting-aware contention management
	// (escalation) resolves them. Raising it pipelines batches within a
	// shard — which pays off for read-dominant traffic under SharedReads
	// but can livelock overlapping write-heavy batches. Sharding is the
	// write-safe way to multiply commit pipelines: batches on different
	// shards touch disjoint structures by construction, so they commit
	// concurrently without ever conflicting. Forced to 1 with Serial,
	// whose runtime forbids concurrent Run.
	MaxInflight int

	// Serial runs the runtime in the serial-nesting baseline mode: the
	// batch's children execute sequentially in one context. For
	// benchmarking the paper's comparison end to end.
	Serial bool

	// SharedReads enables the runtime's shared-read conflict model
	// (paper §9): concurrent readers in one batch never conflict with
	// each other. Strongly recommended for read-heavy serving — in the
	// default write-only model two requests merely reading the same map
	// bucket conflict and serialize on publication latency.
	SharedReads bool

	// Registry sizes the named structures (zero = stmlib defaults),
	// applied to every shard's registry.
	Registry stmlib.RegistryConfig

	// DataDir enables durability: each shard keeps a segmented
	// write-ahead log plus periodic whole-store snapshots there (in the
	// directory root for a single shard, under shard-<i>/ otherwise),
	// and New recovers the store — every shard concurrently — before
	// serving. Empty: in-memory only. Enabling the WAL forces
	// MaxInflight to 1 per shard — each log records its shard's batches
	// in root-commit order (D20); the shards themselves still commit in
	// parallel, which is the point of sharding.
	DataDir string

	// Fsync makes each shard's WAL fsync once per group commit, before
	// any response of the batch is acked. Off, appends stop at the OS
	// page cache: a process crash is safe, a machine crash is not.
	// Ignored without DataDir.
	Fsync bool

	// WALSyncDelay adds an artificial latency floor to every WAL fsync
	// (benchmark/test hook, zero in production): it simulates slower
	// stable storage so the parallel per-shard commit pipelines are
	// measurable on any disk. Ignored without DataDir and Fsync.
	WALSyncDelay time.Duration

	// SnapshotEvery starts a background checkpointer writing a snapshot
	// (and truncating covered WAL segments) on that cadence. Zero: no
	// automatic checkpoints (Server.Checkpoint still works). Ignored
	// without DataDir.
	SnapshotEvery time.Duration

	// WALSegmentBytes is the WAL's segment-rotation threshold (zero:
	// the wal package default, 64 MiB). Ignored without DataDir.
	WALSegmentBytes int64

	// ReplicaOf turns the server into a WAL-shipping read replica of the
	// primary at that address (D39–D42): every shard tails the primary's
	// log over the wire protocol, replays continuously, serves read-only
	// envelopes and refuses mutations with StatusNotPrimary. Replicas
	// are in-memory (the primary owns durability) — incompatible with
	// DataDir — and need concurrent replay, so incompatible with Serial.
	// The shard count must match the primary's.
	ReplicaOf string

	// ReplicaMaxStaleness is the readiness bound for a replica (default
	// 10s): /readyz reports 503 until every shard has caught up with the
	// primary and whenever the staleness watermark exceeds this bound —
	// a load balancer stops routing to a replica that fell behind.
	// Ignored without ReplicaOf.
	ReplicaMaxStaleness time.Duration

	// AdminAddr, when set, binds a second HTTP listener serving the
	// operational plane: GET /metrics (Prometheus text), GET /healthz
	// (liveness), GET /readyz (readiness: 503 once shutdown begins or a
	// WAL latches), and GET/PUT /config (live retuning of the batching
	// knobs). Empty: no admin listener.
	AdminAddr string

	// Adaptive starts the controller that walks each shard's
	// MaxInflight/BatchFanout from observed abort rate and batch
	// occupancy (AIMD with hysteresis; WAL and Serial shards stay
	// clamped to 1 inflight). Togglable at runtime via PUT /config.
	Adaptive bool

	// DisableTracing turns conflict X-ray tracing OFF at boot (D35–D37).
	// By default every shard's runtime records transaction-lifecycle
	// events into per-slot flight-recorder rings, the profiler ranks
	// abort attributions into the /debug/hotkeys table, and a crisis
	// engagement dumps the recorder to DataDir. Disable it to reclaim
	// the recording cost entirely, or live via PUT /config
	// {"tracing": false}.
	DisableTracing bool

	// TraceSample is the lifecycle sampling divisor: begin/commit events
	// are recorded for 1 in TraceSample root transactions (batches).
	// Conflict events — abort, escalate, crisis — are ALWAYS recorded,
	// so /debug/hotkeys attribution stays exact; sampling only thins the
	// steady-state begin/commit firehose, which is what keeps default-on
	// tracing inside its ≤5% overhead budget (D38). 0 picks the default
	// (8); 1 records every root — full-fidelity tracing for debugging
	// sessions, at a measurably higher cost.
	TraceSample int

	// AdminDebug additionally mounts net/http/pprof under /debug/pprof/
	// on the admin listener. Off by default: profiling endpoints can
	// stall the process (heap dumps, multi-second CPU profiles) and do
	// not belong on an unauthenticated plane unless asked for.
	AdminDebug bool

	// ReapInterval runs the TTL/lease reaper on that cadence (D47): each
	// tick scans every shard's expiry index for entries due by the tick's
	// wall-clock cutoff and submits logged expire/reclaim envelopes
	// through the shard's normal batch pipeline, so reaps serialize with
	// client traffic, land in the WAL with their explicit cutoff, and
	// replay deterministically. Zero: no background reaper (reads still
	// hide expired entries; Server.Reap still works). Primary-only — a
	// replica replays the primary's reap records instead of minting its
	// own.
	ReapInterval time.Duration

	// Logger receives the server's structured log records (shutdown
	// durability failures, crisis dumps, admin-plane errors). Nil: the
	// process-default slog logger.
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.Addr == "" {
		c.Addr = ":7455"
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchFanout <= 0 {
		c.BatchFanout = c.Workers
	}
	if c.MaxInflight <= 0 || c.Serial || c.DataDir != "" {
		c.MaxInflight = 1
	}
	if c.TraceSample <= 0 {
		c.TraceSample = defaultTraceSample
	}
	if c.ReplicaOf != "" && c.ReplicaMaxStaleness <= 0 {
		c.ReplicaMaxStaleness = 10 * time.Second
	}
}

// defaultTraceSample is the default lifecycle sampling divisor: 1 in 8
// batches gets full begin/commit tracing. Chosen so default-on tracing
// stays within its ≤5% throughput budget on an all-point-op workload
// (enforced by the CI benchgate's tracing_overhead_ratio ceiling) while
// /debug/trace still shows a fresh batch tree every few milliseconds
// under any real load.
const defaultTraceSample = 8

// ShardStats is one engine partition's slice of ServerStats.
type ShardStats struct {
	Shard        int         `json:"shard"`
	Batches      uint64      `json:"batches"`
	Requests     uint64      `json:"requests"`
	MeanBatch    float64     `json:"mean_batch"`
	LargestBatch uint64      `json:"largest_batch"`
	Runtime      pnstm.Stats `json:"runtime"`

	// WAL is present on durable servers: this shard's own log counters.
	WAL *wal.Stats `json:"wal,omitempty"`
}

// ServerStats is the OpStats payload: batching behaviour plus the
// runtime's cumulative counters. On a sharded server the top-level
// figures aggregate every shard (counter sums, with LargestBatch the
// max and PeakParents the max across shards — nothing is lost in the
// roll-up) and PerShard carries the per-partition breakdown.
type ServerStats struct {
	Workers       uint64      `json:"workers"`
	Shards        uint64      `json:"shards"`
	MaxBatch      uint64      `json:"max_batch"`
	Serial        bool        `json:"serial"`
	Conns         uint64      `json:"conns"`
	Batches       uint64      `json:"batches"`
	Requests      uint64      `json:"requests"`
	MeanBatch     float64     `json:"mean_batch"`
	LargestBatch  uint64      `json:"largest_batch"`
	Runtime       pnstm.Stats `json:"runtime"`
	RuntimeAborts float64     `json:"runtime_abort_ratio"`

	// Latency is the per-op-class latency summary (point ops, tx
	// envelopes, cross-shard commits): counts plus p50/p95/p99 in
	// microseconds, estimated from the same fixed-bucket histograms
	// /metrics exports. Classes with no observations are omitted.
	Latency map[string]LatencySummary `json:"latency,omitempty"`

	// PerShard is the per-partition breakdown (one entry per shard,
	// indexed by shard id).
	PerShard []ShardStats `json:"per_shard,omitempty"`

	// WAL is present when the server runs with a data directory; on a
	// sharded server it aggregates every shard's log (counters summed —
	// so Syncs remains the one-fsync-per-logged-batch invariant in
	// total; LSNs are per-shard sequences, so the aggregate TailLSN is
	// the total number of durable records).
	WAL *wal.Stats `json:"wal,omitempty"`
}

// shard is one engine partition: a private runtime, structure registry,
// batching loop and (durable servers) write-ahead log. Shards share
// nothing — group commits on different shards run fully in parallel,
// fsyncs included.
type shard struct {
	id  int
	rt  *pnstm.Runtime
	reg *stmlib.Registry
	b   *batcher
	wal *wal.Log // nil without DataDir

	// pauseMu serializes pauseCommits callers (Checkpoint vs Export vs
	// cross-shard coordinators): two pausers interleaving their slot
	// acquisitions on a MaxInflight > 1 shard would deadlock
	// half-filled.
	pauseMu sync.Mutex

	// maxGSN is the highest cross-shard GSN this shard's log holds a
	// record for (D30) — snapshots capture it as their watermark so
	// recovery can tell "this GSN's record was truncated by a
	// checkpoint" from "this shard never logged it".
	maxGSN atomic.Uint64
}

// Server owns the listener, the shard engines and the connection
// handling. Create with New, start with Serve or ListenAndServe, stop
// with Close.
type Server struct {
	cfg    Config
	shards []*shard

	ckStop chan struct{} // non-nil when the checkpointer runs
	ckDone chan struct{}

	reapStop chan struct{} // non-nil when the TTL/lease reaper runs
	reapDone chan struct{}
	reapObs  reaperStats

	// gsn is the global sequencer for cross-shard envelopes (D29):
	// each mutating multi-shard OpTx draws one monotone global sequence
	// number while holding every participant shard's commit slots.
	// Recovery seeds it past every GSN the logs and snapshots mention.
	gsn atomic.Uint64

	// crossMu/crossStopped/crossWG fence cross-shard coordinators
	// against shutdown, mirroring the batcher's submit/close handshake
	// (see beginCross/stopCross).
	crossMu      sync.RWMutex
	crossStopped bool
	crossWG      sync.WaitGroup

	// crossSem bounds in-flight cross-shard coordinators (one goroutine
	// each, see commitCrossShard): envelopes sharing a shard serialize
	// on its commit pipeline anyway, so past a generous cap extra
	// coordinators only queue — a flood would otherwise accumulate
	// unbounded goroutines and pending responses. Beyond the cap the
	// server fails fast with a retryable error.
	crossSem chan struct{}

	// obs/rc are the observability and live-config planes; ctrlStop/
	// ctrlDone fence the adaptive controller goroutine. prof is the
	// conflict profiler draining the shards' flight recorders (D36);
	// log receives structured operational records.
	obs      *serverObs
	rc       *RuntimeConfig
	prof     *traceProfiler
	log      *slog.Logger
	ctrlStop chan struct{}
	ctrlDone chan struct{}

	// repl is the replication engine, non-nil iff Config.ReplicaOf was
	// set; recovered flips once the store holds its durable state (the
	// /readyz recovery gate — trivially true on in-memory servers).
	repl      *replicator
	recovered atomic.Bool

	adminLn      net.Listener
	adminSrv     *http.Server
	adminServing atomic.Bool

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New creates a server (shard runtimes, registries, batchers) without
// touching the network yet. With Config.DataDir set it also checks the
// directory's shard manifest, opens every shard's write-ahead log and
// recovers the store — snapshot import plus WAL tail replay, all shards
// concurrently — before returning.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if cfg.ReplicaOf != "" {
		if cfg.DataDir != "" {
			return nil, fmt.Errorf("server: a replica is in-memory (the primary at %s owns durability); drop DataDir", cfg.ReplicaOf)
		}
		if cfg.Serial {
			return nil, fmt.Errorf("server: replica mode replays concurrently with serving; Serial is unsupported")
		}
	}
	s := &Server{
		cfg:      cfg,
		conns:    make(map[net.Conn]struct{}),
		crossSem: make(chan struct{}, maxCrossInflight),
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.Default()
	}
	s.rc = newRuntimeConfig(cfg)
	s.obs = newServerObs(s, cfg)
	teardown := func() {
		for _, sh := range s.shards {
			if sh.wal != nil {
				sh.wal.Close()
			}
			sh.rt.Close()
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		rt, err := pnstm.New(pnstm.Config{Workers: cfg.Workers, Serial: cfg.Serial, SharedReads: cfg.SharedReads})
		if err != nil {
			teardown()
			return nil, err
		}
		s.shards = append(s.shards, &shard{
			id:  i,
			rt:  rt,
			reg: stmlib.NewRegistry(cfg.Registry),
		})
	}
	if cfg.DataDir != "" {
		if err := s.openDurability(); err != nil {
			teardown()
			return nil, err
		}
	}
	for i, sh := range s.shards {
		sh.b = newBatcher(sh.rt, sh.reg, sh.wal, cfg.MaxBatch, cfg.BatchFanout, cfg.MaxInflight, cfg.BatchDelay)
		sh.b.obs = s.obs.batch[i]
		sh.b.shardID = uint8(i)
	}
	// Conflict X-ray (D35–D37): tracing goes live only after recovery so
	// the flight recorder holds served traffic, not replay; the profiler
	// and the crisis hooks run regardless (a PUT /config can turn
	// tracing on later).
	s.prof = newTraceProfiler(s)
	for _, sh := range s.shards {
		sh.rt.SetCrisisHook(s.prof.noteCrisis)
		sh.rt.SetTraceSampling(uint64(cfg.TraceSample))
		if !cfg.DisableTracing {
			sh.rt.EnableTracing(true)
		}
	}
	// The checkpointer runs whenever there is a data directory — its
	// cadence (SnapshotEvery) is a live knob now, so even a server booted
	// with cadence 0 must have the loop ready for a PUT /config that
	// turns checkpoints on.
	if cfg.DataDir != "" {
		s.ckStop = make(chan struct{})
		s.ckDone = make(chan struct{})
		go s.checkpointLoop()
	}
	s.ctrlStop = make(chan struct{})
	s.ctrlDone = make(chan struct{})
	go s.controllerLoop()
	// The durable state is loaded (openDurability returned): the /readyz
	// recovery gate opens. On a replica the catch-up gate in Ready()
	// keeps /readyz at 503 until the tailing loops — started last, so a
	// dial failure is a retry, not a boot failure — have caught up.
	s.recovered.Store(true)
	if cfg.ReplicaOf != "" {
		s.repl = newReplicator(s, cfg.ReplicaOf)
	}
	// The reaper starts only after recovery: its expire/reclaim envelopes
	// go through the batchers like client traffic, and a reap minted
	// during replay would double-apply. Primary-only — replicas replay
	// the primary's logged reaps (and refuse mutations anyway).
	if cfg.ReapInterval > 0 && cfg.ReplicaOf == "" {
		s.reapStop = make(chan struct{})
		s.reapDone = make(chan struct{})
		go s.reapLoop()
	}
	return s, nil
}

// shardDataDir is where shard id of n keeps its log: the data directory
// root for a single shard (the pre-sharding layout, so existing
// directories keep working), shard-<i>/ otherwise.
func shardDataDir(base string, id, n int) string {
	if n == 1 {
		return base
	}
	return filepath.Join(base, fmt.Sprintf("shard-%d", id))
}

// openDurability validates the data directory's shard manifest, then
// opens and recovers every shard's WAL. Per-shard work — opening the
// log, loading the snapshot, scanning and replaying — still runs on
// all shards concurrently (D25), but since cross-shard ordered commit
// (D31) a shard's log may reference GSNs other shards' logs must also
// hold, so recovery is phased: scan every log's GSN metadata first,
// reconcile completeness globally (an envelope whose record survives
// on only some shards — the fsync raced the crash — is dropped on ALL
// of them), then replay, skipping the dropped records.
func (s *Server) openDurability() error {
	dir := s.cfg.DataDir
	upgradeManifest := false
	m, ok, err := wal.ReadManifest(dir)
	if err != nil {
		return err
	}
	switch {
	case ok && m.Shards != len(s.shards):
		// Structure-to-shard routing is a function of the shard count;
		// replaying shard i's log into a differently-partitioned store
		// would scatter structures across logs that never heard of them.
		return fmt.Errorf("server: data dir %s was created with %d shards; restart with Shards=%d (live resharding is not supported)",
			dir, m.Shards, m.Shards)
	case ok && m.Version > wal.ManifestVersion:
		return fmt.Errorf("server: data dir %s manifest version %d is newer than this binary supports (max %d); upgrade the server",
			dir, m.Version, wal.ManifestVersion)
	case ok && m.Version < wal.ManifestVersion:
		// Upgrade in place — but only after recovery succeeds (the write
		// is at the end of this function). Stamping the new version first
		// would brand a directory that still holds only old-format
		// records: if recovery then failed, falling back to the previous
		// binary would be refused by its own version gate for no reason.
		// Deferring is safe because no GSN-stamped record can exist
		// before the server starts accepting cross-shard commits, which
		// is after openDurability returns.
		upgradeManifest = true
	case !ok:
		// No manifest: the directory is either fresh or written by a
		// pre-manifest (single-shard) version. A sharded layout whose
		// manifest went missing (partial restore, operator deletion)
		// must be refused outright — without the recorded count the
		// name→shard mapping cannot be re-established safely.
		if orphans, _ := filepath.Glob(filepath.Join(dir, "shard-*")); len(orphans) > 0 {
			return fmt.Errorf("server: data dir %s holds shard subdirectories but no %s; restore the manifest (it records the shard count the layout was written with)", dir, wal.ManifestName)
		}
		if len(s.shards) > 1 {
			// Root-level segments are the pre-manifest single-shard
			// layout; only a fresh directory may adopt a multi-shard one.
			legacy, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
			snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
			if len(legacy)+len(snaps) > 0 {
				return fmt.Errorf("server: data dir %s holds a single-shard store with no manifest; restart with Shards=1", dir)
			}
		}
		if err := wal.WriteManifest(dir, wal.Manifest{Version: wal.ManifestVersion, Shards: len(s.shards)}); err != nil {
			return err
		}
	}

	// Phase A (per shard, concurrent): open the log, load the snapshot,
	// inventory the GSN records without applying anything.
	scans := make([]*shardScan, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			wl, err := wal.Open(wal.Options{
				Dir:          shardDataDir(dir, sh.id, len(s.shards)),
				Fsync:        s.cfg.Fsync,
				SegmentBytes: s.cfg.WALSegmentBytes,
				SyncDelay:    s.cfg.WALSyncDelay,
				ObserveSync:  s.obs.fsync[i].ObserveDuration,
			})
			if err != nil {
				errs[i] = err
				return
			}
			sh.wal = wl
			scan, err := sh.scanStore(len(s.shards))
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", sh.id, err)
				return
			}
			scans[i] = scan
		}(i, sh)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}

	// Phase B (global): reconcile cross-shard completeness and seed the
	// sequencer past everything the directory has ever numbered.
	dropped, maxGSN, err := reconcileGSNs(scans)
	if err != nil {
		return err
	}
	s.gsn.Store(maxGSN)

	// Phase B′ (per shard): physically remove every dropped record from
	// its log before serving. Each is provably the log's tail
	// (reconcileGSNs refused the boot otherwise), so this is the same
	// cut Open's torn-tail repair makes — the record was never acked, so
	// nothing is lost. Leaving the bytes behind would poison LATER
	// boots: once new batches append past the orphan it sits at a
	// non-tail position and the completeness check above permanently
	// refuses to start, and once the missing peer's snapshot watermark
	// advances past the orphan's GSN the watermark rule would
	// reclassify it as complete and replay it on this shard only —
	// silent cross-shard divergence. The watermark-implies-applied
	// invariant only holds for records that survive recovery; dropping
	// a record obliges us to erase it.
	for i, sh := range s.shards {
		for _, g := range scans[i].gsns {
			if !dropped[g.gsn] {
				continue
			}
			if err := sh.wal.TruncateTail(g.lsn); err != nil {
				return fmt.Errorf("shard %d: drop incomplete cross-shard gsn %d: %w", sh.id, g.gsn, err)
			}
			scans[i].tailLSN = g.lsn - 1
		}
	}

	// Phase C (per shard, concurrent): import the snapshot and replay
	// the log. Dropped GSN records are already gone from disk; the
	// replay-time skip remains as defense in depth.
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			if err := sh.replayStore(scans[i], dropped, s.cfg.BatchFanout); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", sh.id, err)
			}
		}(i, sh)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return err
	}
	if upgradeManifest {
		if err := wal.WriteManifest(dir, wal.Manifest{Version: wal.ManifestVersion, Shards: len(s.shards)}); err != nil {
			return err
		}
	}
	return nil
}

// shardFor routes a structure name to its owning shard.
func (s *Server) shardFor(name string) *shard {
	return s.shards[stmlib.ShardIndex(name, len(s.shards))]
}

// addWALStats folds one shard's log counters into agg. LSNs are
// per-shard sequences, so the aggregate TailLSN/SnapshotLSN are totals
// of durable records covered, not a single log position.
func addWALStats(agg *wal.Stats, st wal.Stats) {
	agg.Appends += st.Appends
	agg.Syncs += st.Syncs
	agg.Rotations += st.Rotations
	agg.Snapshots += st.Snapshots
	agg.Truncations += st.Truncations
	agg.Segments += st.Segments
	agg.TailLSN += st.TailLSN
	agg.SnapshotLSN += st.SnapshotLSN
	agg.RecoveredRecords += st.RecoveredRecords
	agg.RepairedTail = agg.RepairedTail || st.RepairedTail
	agg.Quarantined += st.Quarantined
}

// WALStats aggregates every shard's log counters (nil-safe zero value
// without a data directory); per-shard figures live in
// Stats().PerShard.
func (s *Server) WALStats() wal.Stats {
	var agg wal.Stats
	for _, sh := range s.shards {
		if sh.wal != nil {
			addWALStats(&agg, sh.wal.Stats())
		}
	}
	return agg
}

// Runtime exposes shard 0's runtime — the whole store's when Shards is
// 1 (in-process embedding, tests).
func (s *Server) Runtime() *pnstm.Runtime { return s.shards[0].rt }

// Registry exposes shard 0's structure catalog — the whole store's when
// Shards is 1 (in-process embedding, tests).
func (s *Server) Registry() *stmlib.Registry { return s.shards[0].reg }

// ShardCount reports how many engine partitions the server runs.
func (s *Server) ShardCount() int { return len(s.shards) }

// Listen binds the configured address (and the admin address, when
// configured). Addr()/AdminAddr() are valid afterwards, which is how
// tests bind ":0" and discover the ports before Serve.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	if err := s.listenAdmin(); err != nil {
		ln.Close()
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Close. Listen must have succeeded.
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	s.serveAdmin()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(nc)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Close shuts down gracefully: stop accepting, stop the checkpointer,
// flush every shard's batcher — every in-flight batch executes, logs
// and delivers its responses — then issue each WAL's final fsync, and
// only then tear down connections and the runtimes. Every response
// acked before Close returns is durable (with Fsync it already was,
// batch by batch). Idempotent.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	// closed is set: /readyz answers 503 from here on, while the admin
	// plane itself keeps serving (scrapes and health probes work through
	// the drain) and is torn down last.
	if s.ln != nil {
		s.ln.Close()
	}
	if s.repl != nil {
		s.repl.stop()
	}
	s.stopController()
	s.prof.close()
	s.stopReaper()
	if s.ckStop != nil {
		close(s.ckStop)
		<-s.ckDone
	}
	// Flush before the teardown: connections stay up so in-flight
	// batches can still deliver their acks. A client that has stopped
	// reading could otherwise wedge that flush via TCP backpressure
	// (blocked writer -> full response queue -> blocked deliver), so
	// bound every remaining write first: healthy clients drain well
	// inside the deadline, stalled ones fail their writer and stop
	// absorbing deliveries.
	s.mu.Lock()
	for nc := range s.conns {
		nc.SetWriteDeadline(time.Now().Add(5 * time.Second))
	}
	s.mu.Unlock()
	// Shard flushes overlap: each batcher drains its own pipeline.
	var flush sync.WaitGroup
	for _, sh := range s.shards {
		flush.Add(1)
		go func(sh *shard) {
			defer flush.Done()
			sh.b.close()
		}(sh)
	}
	flush.Wait()
	// Cross-shard coordinators append to several logs outside any
	// batcher: refuse new ones and drain the in-flight ones before the
	// final WAL sync/close (a coordinator may have been queued on commit
	// slots a draining batch held until just now).
	s.stopCross()
	for _, sh := range s.shards {
		if sh.wal == nil {
			continue
		}
		// With Fsync off this final sync is the ONLY point acked writes
		// reach stable storage, so a failure here must not masquerade as
		// a clean shutdown.
		if err := sh.wal.Sync(); err != nil {
			s.log.Error("final wal fsync failed — acked writes may not be durable", "shard", sh.id, "err", err)
		}
		if err := sh.wal.Close(); err != nil {
			s.log.Error("wal close failed", "shard", sh.id, "err", err)
		}
	}
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, sh := range s.shards {
		sh.rt.Close()
	}
	// Drain the admin plane last: every scrape or /readyz probe that
	// arrived during the drain completes (no accepted-but-dropped
	// requests), and a probe racing the final teardown sees a refused
	// connection rather than a hang.
	s.closeAdmin(true)
}

// Kill is the crash hook for recovery tests: it abandons every shard's
// WAL without flushing and tears everything down immediately, losing
// whatever a real SIGKILL would lose (nothing acked, when Fsync is on).
// Idempotent with Close.
func (s *Server) Kill() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.closeAdmin(false) // hard stop: a crash does not drain scrapes
	if s.repl != nil {
		s.repl.stop()
	}
	s.stopController()
	s.prof.close()
	s.stopReaper()
	if s.ckStop != nil {
		close(s.ckStop)
		<-s.ckDone
	}
	for _, sh := range s.shards {
		if sh.wal != nil {
			sh.wal.Abandon() // in-flight appends now fail; nothing more reaches disk
		}
	}
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	// In-flight cross-shard coordinators fail their appends against the
	// abandoned logs; wait them out before tearing down the runtimes
	// their slices run on.
	s.stopCross()
	for _, sh := range s.shards {
		sh.b.close()
		sh.rt.Close()
	}
}

// Stats snapshots the server's activity: aggregate totals plus the
// per-shard breakdown.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()

	per := make([]ShardStats, len(s.shards))
	var batches, requests, largest uint64
	var rts pnstm.Stats
	var ws *wal.Stats
	for i, sh := range s.shards {
		b, r, mean, l := sh.b.stats()
		rt := sh.rt.Stats()
		per[i] = ShardStats{
			Shard:        i,
			Batches:      b,
			Requests:     r,
			MeanBatch:    mean,
			LargestBatch: uint64(l),
			Runtime:      rt,
		}
		if sh.wal != nil {
			st := sh.wal.Stats()
			per[i].WAL = &st
			// Aggregate from the SAME snapshots the breakdown shows, so
			// one Stats payload is self-consistent (summing live reads a
			// second time could disagree under concurrent commits).
			if ws == nil {
				ws = &wal.Stats{}
			}
			addWALStats(ws, st)
		}
		batches += b
		requests += r
		if uint64(l) > largest {
			largest = uint64(l)
		}
		rts = rts.Add(rt)
	}
	mean := 0.0
	if batches > 0 {
		mean = float64(requests) / float64(batches)
	}
	return ServerStats{
		WAL:           ws,
		Latency:       s.obs.latencySummaries(),
		Workers:       uint64(s.cfg.Workers),
		Shards:        uint64(len(s.shards)),
		MaxBatch:      uint64(s.cfg.MaxBatch),
		Serial:        s.cfg.Serial,
		Conns:         uint64(conns),
		Batches:       batches,
		Requests:      requests,
		MeanBatch:     mean,
		LargestBatch:  largest,
		Runtime:       rts,
		RuntimeAborts: rts.AbortRate(),
		PerShard:      per,
	}
}

// txPinnedShard computes the shard a sub-op pins the envelope to, if
// any. Maps and queues live wholly on their name's shard, so any sub-op
// touching one pins it there. Counter sub-ops never pin: counter state
// is per-shard partials (D24) — adds credit the envelope's resolved
// shard, and in-envelope sums/guards read that shard's partial (exact
// on a 1-shard server; a global counter read is the top-level
// OpCounterSum, which fans).
func txPinnedShard(op *TxOp, n int) (int, bool) {
	switch op.Op {
	case OpMapGet, OpMapPut, OpMapDelete, OpMapLen, OpMapAdd,
		OpMapPutTTL, OpExpire:
		return stmlib.ShardIndex(op.Name, n), true
	case OpQueuePush, OpQueuePop, OpQueueLen,
		OpLeaseConsume, OpLeaseAck, OpLeaseNack, OpLeaseReclaim, OpLeaseLen:
		return stmlib.ShardIndex(op.Name, n), true
	case OpSortedGet, OpSortedPut, OpSortedPutTTL, OpSortedDelete, OpSortedLen,
		OpRangeScan, OpRangeCount, OpSortedExpire:
		return stmlib.ShardIndex(op.Name, n), true
	case OpAssertEq, OpAssertGE:
		if op.Key != "" { // map guard
			return stmlib.ShardIndex(op.Name, n), true
		}
	}
	return 0, false
}

// fanTx answers a read-only multi-shard OpTx envelope: each pinned
// sub-op rides its home shard's group-commit pipeline (batched with one
// per-shard sub-envelope), counter reads fan EVERY shard as
// OpCounterSum and sum their partials (exact totals, like the
// top-level fan), and counter guards are evaluated on those summed
// totals at merge time. Like fanCounterSum, the combined answer is not
// one consistent cut across shards — each shard's slice is atomic on
// that shard — which is the documented read-only-fan contract (D27).
func (s *Server) fanTx(req *Request, deliver func(Response)) {
	ops := req.Tx.Ops
	n := len(s.shards)
	perShard := make([][]TxOp, n) // sub-envelope per shard
	slots := make([][]int, n)     // perShard[i][j] answers ops[slots[i][j]]
	counterOps := make([]bool, len(ops))
	for i := range ops {
		op := ops[i]
		if sh, ok := txPinnedShard(&op, n); ok {
			perShard[sh] = append(perShard[sh], op)
			slots[sh] = append(slots[sh], i)
			continue
		}
		// Counter read (sum or guard): ask every shard for its partial;
		// the guard itself is applied to the merged total below.
		counterOps[i] = true
		read := TxOp{Op: OpCounterSum, Name: op.Name}
		for sh := 0; sh < n; sh++ {
			perShard[sh] = append(perShard[sh], read)
			slots[sh] = append(slots[sh], i)
		}
	}

	var (
		mu     sync.Mutex
		merged = make([]TxResult, len(ops))
		errMsg string
		rejIdx = -1 // lowest envelope index of a failed pinned (map) guard
		rejMsg string
		wg     sync.WaitGroup
	)
	for sh := 0; sh < n; sh++ {
		if len(perShard[sh]) == 0 {
			continue
		}
		sub := &Request{ID: req.ID, Op: OpTx, Tx: &Tx{Ops: perShard[sh]}}
		shardSlots := slots[sh]
		wg.Add(1)
		p := &pending{req: sub, deliver: func(resp Response) {
			mu.Lock()
			switch resp.Status {
			case StatusOK:
			case StatusRejected:
				// A pinned map guard failed on its home shard: map the
				// sub-envelope-local failing index back to envelope order
				// so the caller's ErrTxAborted points at the right op.
				gi := len(ops)
				if i := int(resp.Num); i >= 0 && i < len(shardSlots) {
					gi = shardSlots[i]
				}
				if rejIdx < 0 || gi < rejIdx {
					rejIdx, rejMsg = gi, resp.Msg
				}
			default:
				if errMsg == "" {
					errMsg = resp.Msg
					if errMsg == "" {
						errMsg = "shard error"
					}
				}
			}
			for j, i := range shardSlots {
				if j >= len(resp.TxResults) {
					break
				}
				r := resp.TxResults[j]
				if counterOps[i] {
					merged[i].Status = StatusOK
					merged[i].Num += r.Num // sum of per-shard partials
				} else {
					merged[i] = r
				}
			}
			mu.Unlock()
			wg.Done()
		}}
		if !s.shards[sh].b.submit(p) {
			mu.Lock()
			if errMsg == "" {
				errMsg = "server closing"
			}
			mu.Unlock()
			wg.Done()
		}
	}
	go func() {
		wg.Wait()
		if errMsg != "" {
			deliver(Response{ID: req.ID, Status: StatusErr, Msg: errMsg})
			return
		}
		// Evaluate counter guards on the merged totals, then report the
		// LOWEST failing guard across both kinds — pinned map guards
		// (judged on their home shard above) and counter guards (judged
		// here) — clearing later results like a single-shard abort would
		// leave them. (Being a read-only envelope there is nothing to
		// roll back.)
		for i := range ops {
			if !counterOps[i] {
				continue
			}
			msg, ok := judgeCounterGuard(&ops[i], merged[i].Num)
			if ok {
				continue
			}
			if rejIdx < 0 || i < rejIdx {
				rejIdx, rejMsg = i, msg
				merged[i].Status = StatusRejected
			}
			break // later counter guards cannot lower the index
		}
		if rejIdx >= 0 && rejIdx < len(ops) {
			for j := rejIdx + 1; j < len(merged); j++ {
				merged[j] = TxResult{}
			}
			deliver(Response{ID: req.ID, Status: StatusRejected, Num: int64(rejIdx), Msg: rejMsg, TxResults: merged})
			return
		}
		deliver(Response{ID: req.ID, Status: StatusOK, TxResults: merged})
	}()
}

// fanCounterSum answers a counter read on a sharded server. Checkout
// transactions credit their counters on the stock map's shard (the
// transaction must be atomic within one shard), so a counter's total is
// the sum of per-shard partials — commutative, hence exact. One
// sub-request rides every shard's group-commit pipeline; the partials
// are combined and delivered as one response once all shards answered
// (D24).
// The combined read is not a single consistent cut across shards (each
// partial is read atomically on its shard); for a quiesced store it is
// exact, which is what the workload verifiers rely on.
func (s *Server) fanCounterSum(req *Request, deliver func(Response)) {
	var (
		mu     sync.Mutex
		total  int64
		errMsg string
		wg     sync.WaitGroup
	)
	for _, sh := range s.shards {
		wg.Add(1)
		p := &pending{req: req, deliver: func(resp Response) {
			mu.Lock()
			if resp.Status != StatusOK && errMsg == "" {
				errMsg = resp.Msg
				if errMsg == "" {
					errMsg = "shard error"
				}
			}
			total += resp.Num
			mu.Unlock()
			wg.Done()
		}}
		if !sh.b.submit(p) {
			mu.Lock()
			if errMsg == "" {
				errMsg = "server closing"
			}
			mu.Unlock()
			wg.Done()
		}
	}
	go func() {
		wg.Wait()
		if errMsg != "" {
			deliver(Response{ID: req.ID, Status: StatusErr, Msg: errMsg})
			return
		}
		deliver(Response{ID: req.ID, Status: StatusOK, Num: total})
	}()
}

// handleConn runs one connection: a reader loop decoding frames and
// submitting them to their shard's batcher, and a writer goroutine
// serializing responses (responses may complete out of order across
// batches and shards; clients match by request id).
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		nc.Close()
	}()

	out := make(chan Response, 256)
	connClosed := make(chan struct{}) // reader gone: stop routing responses here
	writerDone := make(chan struct{}) // writer gone: never block the batcher on a dead conn
	var streams sync.WaitGroup        // replication streams serving this conn
	defer func() {
		close(connClosed)
		<-writerDone
		streams.Wait()
	}()

	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(nc)
		var buf []byte
		for {
			select {
			case resp := <-out:
				buf = AppendResponse(buf[:0], &resp)
				if _, err := bw.Write(buf); err != nil {
					return
				}
				// Flush only when the queue runs dry: consecutive
				// responses of one batch leave in one segment.
				if len(out) == 0 {
					if err := bw.Flush(); err != nil {
						return
					}
				}
			case <-connClosed:
				return
			}
		}
	}()

	deliver := func(resp Response) {
		select {
		case out <- resp:
		case <-connClosed:
		case <-writerDone:
		}
	}
	// timed wraps deliver for one request so its class histogram sees
	// parse-to-delivery latency — batching delay, execution, fsync and
	// response routing included.
	timed := func(class string) func(Response) {
		start := time.Now()
		return func(resp Response) {
			s.obs.observeLatency(class, start)
			deliver(resp)
		}
	}

	// connMaxStale is the connection's read-staleness bound, declared by
	// its Hello (zero: none). Only the reader loop touches it.
	var connMaxStale time.Duration

	br := bufio.NewReader(nc)
	for {
		frame, err := ReadFrame(br)
		if err != nil {
			return // EOF, forced close, or an unrecoverable framing error
		}
		req, err := ParseRequest(frame)
		if err != nil {
			// The id is the payload's leading u64, so it usually survives
			// a body parse failure — echo it back so the caller's pending
			// round trip fails instead of hanging. After a malformed frame
			// the stream offset is still trustworthy (framing is
			// independent of payload), so carry on afterwards.
			var id uint64
			if len(frame) >= 8 {
				id = binary.BigEndian.Uint64(frame[:8])
			}
			deliver(Response{ID: id, Status: StatusErr, Msg: err.Error()})
			continue
		}
		if s.isReplica() {
			if resp, refused := s.replicaGate(req, connMaxStale); refused {
				deliver(resp)
				continue
			}
		}
		switch req.Op {
		case OpPing:
			deliver(Response{ID: req.ID, Status: StatusOK})
		case OpHello:
			if req.Hello != nil && req.Hello.MaxStalenessMs > 0 {
				connMaxStale = time.Duration(req.Hello.MaxStalenessMs) * time.Millisecond
			}
			info := &HelloInfo{Version: ProtoVersion, Features: FeatureCrossShard, Role: RolePrimary, Shards: uint16(len(s.shards))}
			if s.cfg.DataDir != "" {
				info.Features |= FeatureReplStream
			}
			if s.isReplica() {
				info.Role = RoleReplica
				info.Primary = s.cfg.ReplicaOf
			}
			deliver(Response{ID: req.ID, Status: StatusOK, Value: EncodeHelloInfo(info)})
		case OpReplSubscribe:
			streams.Add(1)
			go func(req *Request) {
				defer streams.Done()
				s.serveReplStream(req, deliver, connClosed)
			}(req)
		case OpStats:
			blob, err := json.Marshal(s.Stats())
			if err != nil {
				deliver(Response{ID: req.ID, Status: StatusErr, Msg: err.Error()})
				continue
			}
			deliver(Response{ID: req.ID, Status: StatusOK, Value: blob})
		case OpCounterSum:
			done := timed(classPoint)
			if len(s.shards) > 1 {
				s.fanCounterSum(req, done)
				continue
			}
			p := &pending{req: req, deliver: done}
			if !s.shards[0].b.submit(p) {
				done(Response{ID: req.ID, Status: StatusErr, Msg: "server closing"})
			}
		case OpTx:
			if len(req.Tx.Ops) == 0 {
				deliver(Response{ID: req.ID, Status: StatusOK})
				continue
			}
			plan := s.routeTx(req)
			switch plan.kind {
			case planFan:
				s.fanTx(req, timed(classTx))
			case planCross:
				s.commitCrossShard(req, &plan, timed(classCross))
			default:
				done := timed(classTx)
				p := &pending{req: req, deliver: done}
				if !s.shards[plan.target].b.submit(p) {
					done(Response{ID: req.ID, Status: StatusErr, Msg: "server closing"})
				}
			}
		default:
			done := timed(classPoint)
			p := &pending{req: req, deliver: done}
			if !s.shardFor(req.Name).b.submit(p) {
				done(Response{ID: req.ID, Status: StatusErr, Msg: "server closing"})
			}
		}
	}
}
