package server

import (
	"testing"
)

// cliffTrace builds the observation a shard under a write-hot workload
// produces: calm below the livelock cliff, violent above it.
func cliffTrace(cliff int) func(inflight int) ctrlObs {
	return func(inflight int) ctrlObs {
		rate := 0.005
		if inflight > cliff {
			rate = 0.30
		}
		return ctrlObs{abortRate: rate, txs: 1000, meanBatch: 64, batches: 10}
	}
}

// TestControllerConvergesToCliff drives the AIMD policy against a
// synthetic abort-rate cliff and proves it converges to the cliff and
// never oscillates past the hysteresis/ceiling bounds.
func TestControllerConvergesToCliff(t *testing.T) {
	const cliff = 3
	c := newShardCtrl(1, 8, 8, 8)
	obs := cliffTrace(cliff)

	var atOrBelow, ticks int
	decreaseTicks := []int{}
	for i := 0; i < 400; i++ {
		before := c.inflight
		c.step(obs(c.inflight))
		ticks++
		if c.inflight < before {
			decreaseTicks = append(decreaseTicks, i)
		}
		// The cliff is at 3: the walk may stand on 4 for exactly the tick
		// that discovers the cliff (or a re-probe), but a step must never
		// jump past it.
		if c.inflight > cliff+1 {
			t.Fatalf("tick %d: inflight %d exceeded cliff+1", i, c.inflight)
		}
		if i >= 100 && c.inflight <= cliff {
			atOrBelow++
		}
	}
	if c.inflight < cliff-1 || c.inflight > cliff {
		t.Fatalf("did not converge: final inflight %d, cliff %d", c.inflight, cliff)
	}
	// After the transient, the controller must sit at/below the cliff for
	// the overwhelming majority of ticks (re-probe excursions are single
	// ticks every ctrlProbeTicks).
	if frac := float64(atOrBelow) / float64(ticks-100); frac < 0.9 {
		t.Fatalf("spent only %.0f%% of steady-state ticks at/below the cliff", frac*100)
	}
	// Hysteresis: consecutive decreases must be separated by at least the
	// cooldown (no halving spiral).
	for i := 1; i < len(decreaseTicks); i++ {
		if d := decreaseTicks[i] - decreaseTicks[i-1]; d <= ctrlCooldown {
			t.Fatalf("decreases %d ticks apart, want > cooldown %d", d, ctrlCooldown)
		}
	}
}

// TestControllerHysteresisBandHolds: a rate between the thresholds
// changes nothing, however long it persists.
func TestControllerHysteresisBandHolds(t *testing.T) {
	c := newShardCtrl(4, 4, 8, 8)
	for i := 0; i < 100; i++ {
		dIn, _ := c.step(ctrlObs{abortRate: 0.05, txs: 1000, meanBatch: 32, batches: 10})
		if dIn != 0 {
			t.Fatalf("tick %d: inflight moved (d=%d) inside the hysteresis band", i, dIn)
		}
	}
	if c.inflight != 4 {
		t.Fatalf("inflight drifted to %d", c.inflight)
	}
}

// TestControllerWALClampHolds: a WAL shard (cap 1) never pipelines, no
// matter how calm the trace looks.
func TestControllerWALClampHolds(t *testing.T) {
	c := newShardCtrl(1, 4, 1, 8)
	for i := 0; i < 200; i++ {
		c.step(ctrlObs{abortRate: 0.0, txs: 1000, meanBatch: 64, batches: 10})
		if c.inflight != 1 {
			t.Fatalf("tick %d: WAL-clamped shard walked to inflight %d", i, c.inflight)
		}
	}
}

// TestControllerReprobesAfterPhaseShift: a cliff learned in a write
// phase must not cap a later read phase forever — the periodic re-probe
// climbs back out.
func TestControllerReprobesAfterPhaseShift(t *testing.T) {
	c := newShardCtrl(1, 8, 8, 8)
	writeHot := cliffTrace(2)
	// Phase 1: learn the write-phase cliff at 2.
	for i := 0; i < 100; i++ {
		c.step(writeHot(c.inflight))
	}
	if c.inflight > 2 {
		t.Fatalf("phase 1 did not converge below the cliff: inflight %d", c.inflight)
	}
	// Phase 2: the workload turns read-heavy (no cliff at all). The
	// re-probe must eventually walk back to the cap.
	calm := ctrlObs{abortRate: 0.0, txs: 1000, meanBatch: 64, batches: 10}
	for i := 0; i < 400; i++ {
		c.step(calm)
	}
	if c.inflight != c.inflightCap {
		t.Fatalf("never re-probed after the phase shift: inflight %d, cap %d", c.inflight, c.inflightCap)
	}
}

// TestControllerFanoutTracksOccupancy: fanout walks toward mean batch
// occupancy / minRequestsPerBlock in both directions.
func TestControllerFanoutTracksOccupancy(t *testing.T) {
	c := newShardCtrl(1, 1, 1, 8)
	for i := 0; i < 20; i++ {
		c.step(ctrlObs{abortRate: 0, txs: 1000, meanBatch: 64, batches: 10})
	}
	if c.fanout != 8 {
		t.Fatalf("fanout did not walk up to occupancy target: got %d, want 8", c.fanout)
	}
	for i := 0; i < 20; i++ {
		c.step(ctrlObs{abortRate: 0, txs: 1000, meanBatch: 8, batches: 10})
	}
	if c.fanout != 1 {
		t.Fatalf("fanout did not walk down with occupancy: got %d, want 1", c.fanout)
	}
	// Idle ticks hold everything.
	before := c.fanout
	c.step(ctrlObs{})
	if c.fanout != before {
		t.Fatal("idle tick moved fanout")
	}
}

// TestControllerIgnoresNoiseTicks: a tick with almost no transactions
// must not trigger a decrease, whatever its measured rate.
func TestControllerIgnoresNoiseTicks(t *testing.T) {
	c := newShardCtrl(4, 4, 8, 8)
	c.step(ctrlObs{abortRate: 1.0, txs: ctrlMinObsTx - 1, meanBatch: 32, batches: 2})
	if c.inflight != 4 {
		t.Fatalf("noise tick moved inflight to %d", c.inflight)
	}
}
