package server_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pnstm/server"
	"pnstm/stmlib"
)

// The sharded-server suite. Shard assignment is a pure function of the
// structure name (stmlib.ShardIndex), so tests pick names whose shards
// they can compute — several of them deliberately on DIFFERENT shards,
// because the interesting properties are the cross-shard ones: checkout
// conservation when the stock map and its counters have different home
// shards, counter partials summing across shards, and per-shard stats
// aggregating without losing counts.

// shardOfName mirrors the server's routing for test assertions.
func shardOfName(name string, shards int) int { return stmlib.ShardIndex(name, shards) }

// TestShardedMixedTrafficOracle runs the full mixed-workload oracle —
// per-partition map models, shared counter, per-goroutine FIFO queues —
// against a 4-shard server: every property that held on one engine must
// hold when structures are spread over four.
func TestShardedMixedTrafficOracle(t *testing.T) {
	s := startServer(t, server.Config{Shards: 4, Workers: 4, MaxBatch: 32, BatchDelay: 200 * time.Microsecond})
	runMixedTraffic(t, s, 8, 150)

	st := s.Stats()
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("stats report %d shards, per-shard %d entries; want 4", st.Shards, len(st.PerShard))
	}
	// Aggregation loses nothing: the totals are exactly the per-shard
	// sums (and the abort counts in particular must all be accounted
	// for).
	var batches, requests, begun, committed, aborted uint64
	shardsUsed := 0
	for _, sh := range st.PerShard {
		batches += sh.Batches
		requests += sh.Requests
		begun += sh.Runtime.Begun
		committed += sh.Runtime.Committed
		aborted += sh.Runtime.Aborted
		if sh.Requests > 0 {
			shardsUsed++
		}
	}
	if batches != st.Batches || requests != st.Requests {
		t.Errorf("per-shard batches/requests sum to %d/%d, aggregate says %d/%d", batches, requests, st.Batches, st.Requests)
	}
	if begun != st.Runtime.Begun || committed != st.Runtime.Committed || aborted != st.Runtime.Aborted {
		t.Errorf("per-shard runtime sums (begun %d committed %d aborted %d) != aggregate (%d %d %d): counts lost in roll-up",
			begun, committed, aborted, st.Runtime.Begun, st.Runtime.Committed, st.Runtime.Aborted)
	}
	if shardsUsed < 2 {
		t.Errorf("mixed traffic exercised only %d shards; the workload should spread", shardsUsed)
	}
}

// TestShardedCheckoutConservationAcrossShards is the cross-shard
// conservation scenario: the stock map, the sold counter and the
// revenue counter hash to THREE different shards of four ("stock"→0,
// "sold"→3, "revenue"→1 — pinned by TestShardIndexStable). Checkouts
// execute atomically on the stock map's shard, crediting counter
// partials there; concurrent direct CounterAdds to "sold" land on its
// own home shard. The fanned counter read must stitch the partials so
// that units are neither created nor destroyed.
func TestShardedCheckoutConservationAcrossShards(t *testing.T) {
	const shards = 4
	if a, b, c := shardOfName("stock", shards), shardOfName("sold", shards), shardOfName("revenue", shards); a == b || b == c || a == c {
		t.Fatalf("test premise broken: stock/sold/revenue land on shards %d/%d/%d, want three distinct", a, b, c)
	}
	s := startServer(t, server.Config{Shards: shards, Workers: 4, MaxBatch: 32, BatchDelay: 200 * time.Microsecond})
	const (
		skus       = 6
		initialPer = 40
		clients    = 6
		orders     = 60 // demand ≫ supply: forces rejections
		directAdds = 500
	)
	setup := dial(t, s, 1)
	for i := 0; i < skus; i++ {
		if err := setup.MapPutInt("stock", fmt.Sprintf("sku%d", i), initialPer); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var accepted, rejected int64
	var mu sync.Mutex
	for g := 0; g < clients; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			var acc, rej int64
			for i := 0; i < orders; i++ {
				nLines := 1 + rng.Intn(3)
				var lines []server.CheckoutLine
				var units int64
				seen := map[int]bool{}
				for len(lines) < nLines {
					sku := rng.Intn(skus)
					if seen[sku] {
						continue
					}
					seen[sku] = true
					qty := int64(1 + rng.Intn(3))
					lines = append(lines, server.CheckoutLine{SKU: fmt.Sprintf("sku%d", sku), Qty: qty})
					units += qty
				}
				ok, _, err := cl.Checkout("stock", server.Checkout{
					Sold: "sold", Revenue: "revenue", Cents: units * 100, Lines: lines,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					acc++
				} else {
					rej++
				}
			}
			mu.Lock()
			accepted += acc
			rejected += rej
			mu.Unlock()
		}()
	}
	// Concurrent direct adds to "sold" route to ITS home shard — a
	// second partial the fanned sum must fold in.
	adder := dial(t, s, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < directAdds; i++ {
			if err := adder.CounterAdd("sold", 1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if accepted == 0 || rejected == 0 {
		t.Fatalf("workload should both accept and reject: accepted=%d rejected=%d", accepted, rejected)
	}

	cl := dial(t, s, 1)
	var remaining int64
	for i := 0; i < skus; i++ {
		v, ok, err := cl.MapGetInt("stock", fmt.Sprintf("sku%d", i))
		if err != nil || !ok {
			t.Fatalf("stock sku%d: %v %v", i, ok, err)
		}
		if v < 0 {
			t.Errorf("sku%d oversold: %d on hand", i, v)
		}
		remaining += v
	}
	soldTotal, err := cl.CounterSum("sold")
	if err != nil {
		t.Fatal(err)
	}
	revenue, err := cl.CounterSum("revenue")
	if err != nil {
		t.Fatal(err)
	}
	sold := soldTotal - directAdds // checkout-credited units
	if total := remaining + sold; total != skus*initialPer {
		t.Errorf("conservation violated across shards: remaining %d + sold %d = %d, want %d",
			remaining, sold, total, skus*initialPer)
	}
	if revenue != sold*100 {
		t.Errorf("revenue %d inconsistent with %d units sold", revenue, sold)
	}
	t.Logf("accepted=%d rejected=%d sold=%d (+%d direct partial) remaining=%d", accepted, rejected, sold, directAdds, remaining)
}

// TestShardedCounterPartialsSum pins the partial mechanism down
// narrowly: credits from a checkout (stock's shard) and direct adds
// (the counter's home shard) are distinct partials, and the fanned read
// returns their exact sum.
func TestShardedCounterPartialsSum(t *testing.T) {
	const shards = 4
	s := startServer(t, server.Config{Shards: shards, Workers: 2, MaxBatch: 8})
	cl := dial(t, s, 1)
	if err := cl.MapPutInt("stock", "sku0", 100); err != nil {
		t.Fatal(err)
	}
	// 5 units via checkout → partial on shard(stock)=0, not shard(sold)=3.
	if ok, _, err := cl.Checkout("stock", server.Checkout{
		Sold: "sold", Lines: []server.CheckoutLine{{SKU: "sku0", Qty: 5}},
	}); err != nil || !ok {
		t.Fatalf("checkout: ok=%v err=%v", ok, err)
	}
	// 37 units directly → partial on shard(sold)=3.
	if err := cl.CounterAdd("sold", 37); err != nil {
		t.Fatal(err)
	}
	if sum, err := cl.CounterSum("sold"); err != nil || sum != 42 {
		t.Fatalf("fanned counter sum = %d, %v; want 42 (5 checkout-credited + 37 direct)", sum, err)
	}
}

// TestShardedPersistRestart: a sharded durable store lays one WAL per
// shard under shard-<i>/ and recovers every shard on reboot.
func TestShardedPersistRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Shards: 4, Workers: 4, MaxBatch: 32, BatchDelay: 200 * time.Microsecond,
		DataDir: dir, Fsync: true,
	}
	s := startServer(t, cfg)
	cl := dial(t, s, 1)
	// x0, x1, x8, x3 land on shards 1, 2, 3, 0 respectively (pinned
	// spread): every shard's WAL receives traffic.
	names := []string{"x0", "x1", "x8", "x3"}
	hit := map[int]bool{}
	for _, n := range names {
		hit[shardOfName(n, 4)] = true
	}
	if len(hit) != 4 {
		t.Fatalf("test premise broken: %v do not cover all 4 shards", names)
	}
	for i, n := range names {
		if err := cl.MapPut(n, "k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := cl.QueuePush("q:"+n, []byte(n)); err != nil {
			t.Fatal(err)
		}
		if err := cl.CounterAdd("c:"+n, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2 := startServer(t, cfg)
	cl2 := dial(t, s2, 1)
	for i, n := range names {
		if v, ok, err := cl2.MapGet(n, "k"); err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered %s[k] = %q,%v,%v", n, v, ok, err)
		}
		if v, ok, err := cl2.QueuePop("q:" + n); err != nil || !ok || string(v) != n {
			t.Fatalf("recovered q:%s pop = %q,%v,%v", n, v, ok, err)
		}
		if sum, err := cl2.CounterSum("c:" + n); err != nil || sum != int64(i+1) {
			t.Fatalf("recovered c:%s = %d,%v want %d", n, sum, err, i+1)
		}
	}
	if ws := s2.WALStats(); ws.RecoveredRecords == 0 {
		t.Errorf("no WAL records recovered: %+v", ws)
	}
}

// TestShardManifestGuard: the shard count is pinned in the data
// directory's manifest — reopening with a different count must refuse
// rather than scatter structures across logs.
func TestShardManifestGuard(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{Shards: 2, Workers: 2, MaxBatch: 8, DataDir: dir, Fsync: true}
	s := startServer(t, cfg)
	if err := dial(t, s, 1).CounterAdd("c", 1); err != nil {
		t.Fatal(err)
	}
	s.Close()

	bad := cfg
	bad.Addr = "127.0.0.1:0"
	bad.Shards = 4
	if _, err := server.New(bad); err == nil {
		t.Fatal("reopening a 2-shard data dir with Shards=4 did not error")
	}

	s2 := startServer(t, cfg) // the correct count still boots
	if sum, err := dial(t, s2, 1).CounterSum("c"); err != nil || sum != 1 {
		t.Fatalf("recovered counter = %d,%v want 1", sum, err)
	}
}

// TestShardMissingManifestRefused: a sharded layout whose manifest went
// missing (partial restore) must be refused — without the recorded
// count the name→shard mapping cannot be re-established, for ANY
// configured shard count.
func TestShardMissingManifestRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{Shards: 2, Workers: 2, MaxBatch: 8, DataDir: dir, Fsync: true}
	s := startServer(t, cfg)
	if err := dial(t, s, 1).CounterAdd("c", 1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, "MANIFEST.json")); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		bad := cfg
		bad.Addr = "127.0.0.1:0"
		bad.Shards = shards
		if _, err := server.New(bad); err == nil {
			t.Errorf("manifest-less sharded dir accepted with Shards=%d", shards)
		}
	}
}

// TestConcurrentExportsDoNotDeadlock: pauseCommits fills MaxInflight
// slots non-atomically, so concurrent pausers must serialize — two
// Exports racing on a pipelined (MaxInflight > 1) server once
// deadlocked half-filled.
func TestConcurrentExportsDoNotDeadlock(t *testing.T) {
	s := startServer(t, server.Config{Shards: 2, Workers: 2, MaxBatch: 8, MaxInflight: 4, SharedReads: true})
	cl := dial(t, s, 1)
	if err := cl.CounterAdd("c", 7); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, _, err := s.Export()
			done <- err
		}()
	}
	timeout := time.After(10 * time.Second)
	for i := 0; i < 4; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("concurrent Export() calls deadlocked")
		}
	}
	// The pipelines must still be usable afterwards (slots released).
	if sum, err := cl.CounterSum("c"); err != nil || sum != 7 {
		t.Fatalf("counter after exports = %d,%v want 7", sum, err)
	}
}

// TestShardedCrashRecovery is the 4-shard variant of the crash
// acceptance scenario: hard-kill mid-load, restart on the same data
// dir, every shard's WAL replays, and the counter / queue-FIFO /
// conservation invariants hold.
func TestShardedCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{
		Shards: 4, Workers: 4, MaxBatch: 32, BatchDelay: 200 * time.Microsecond,
		DataDir: dir, Fsync: true,
	}
	const (
		producers  = 4
		buyers     = 2
		skus       = 5
		initialPer = int64(10000)
	)
	s := startServer(t, cfg)
	setup := dial(t, s, 1)
	for i := 0; i < skus; i++ {
		if err := setup.MapPutInt("stock", fmt.Sprintf("sku%d", i), initialPer); err != nil {
			t.Fatal(err)
		}
	}

	var (
		ackedAdds, attemptedAdds atomic.Int64
		ackedSold                atomic.Int64
		stop                     atomic.Bool
		wg                       sync.WaitGroup
		ackedPush                [producers]atomic.Int64
		attemptedPush            [producers]atomic.Int64
	)
	for g := 0; g < producers; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				attemptedPush[g].Add(1)
				if err := cl.QueuePush(fmt.Sprintf("q%d", g), server.EncodeInt64(int64(i))); err != nil {
					return // killed
				}
				ackedPush[g].Add(1)
				attemptedAdds.Add(2)
				if err := cl.CounterAdd("hits", 2); err != nil {
					return
				}
				ackedAdds.Add(2)
			}
		}()
	}
	for g := 0; g < buyers; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 7))
			for !stop.Load() {
				qty := int64(1 + rng.Intn(3))
				ok, _, err := cl.Checkout("stock", server.Checkout{
					Sold: "sold", Revenue: "revenue", Cents: qty * 100,
					Lines: []server.CheckoutLine{{SKU: fmt.Sprintf("sku%d", rng.Intn(skus)), Qty: qty}},
				})
				if err != nil {
					return // killed
				}
				if ok {
					ackedSold.Add(qty)
				}
			}
		}()
	}

	time.Sleep(400 * time.Millisecond)
	s.Kill() // simulated SIGKILL across all four WALs
	stop.Store(true)
	wg.Wait()
	if ackedAdds.Load() == 0 || ackedSold.Load() == 0 {
		t.Fatalf("no load landed before the kill (adds=%d sold=%d)", ackedAdds.Load(), ackedSold.Load())
	}

	s2 := startServer(t, cfg)
	cl := dial(t, s2, 1)

	sum, err := cl.CounterSum("hits")
	if err != nil {
		t.Fatal(err)
	}
	if sum < ackedAdds.Load() || sum > attemptedAdds.Load() {
		t.Errorf("recovered counter %d outside [acked %d, attempted %d]", sum, ackedAdds.Load(), attemptedAdds.Load())
	}
	for g := 0; g < producers; g++ {
		name := fmt.Sprintf("q%d", g)
		n, err := cl.QueueLen(name)
		if err != nil {
			t.Fatal(err)
		}
		if n < ackedPush[g].Load() || n > attemptedPush[g].Load() {
			t.Errorf("queue %s holds %d, outside [acked %d, attempted %d]",
				name, n, ackedPush[g].Load(), attemptedPush[g].Load())
		}
		for i := int64(0); i < n; i++ {
			raw, ok, err := cl.QueuePop(name)
			if err != nil || !ok {
				t.Fatalf("queue %s pop %d: %v %v", name, i, ok, err)
			}
			if v, _ := server.DecodeInt64(raw); v != i {
				t.Fatalf("queue %s pop %d = %d: FIFO prefix broken by sharded recovery", name, i, v)
			}
		}
	}
	var remaining int64
	for i := 0; i < skus; i++ {
		v, ok, err := cl.MapGetInt("stock", fmt.Sprintf("sku%d", i))
		if err != nil || !ok {
			t.Fatalf("stock sku%d: %v %v", i, ok, err)
		}
		if v < 0 {
			t.Errorf("sku%d oversold after recovery: %d", i, v)
		}
		remaining += v
	}
	sold, err := cl.CounterSum("sold")
	if err != nil {
		t.Fatal(err)
	}
	revenue, err := cl.CounterSum("revenue")
	if err != nil {
		t.Fatal(err)
	}
	if total, want := remaining+sold, int64(skus)*initialPer; total != want {
		t.Errorf("conservation violated after sharded crash: remaining %d + sold %d = %d, want %d", remaining, sold, total, want)
	}
	if revenue != sold*100 {
		t.Errorf("revenue %d inconsistent with %d units sold", revenue, sold)
	}
	if sold < ackedSold.Load() {
		t.Errorf("recovered sold %d < acked sold %d: durable acks lost", sold, ackedSold.Load())
	}
	ws := s2.WALStats()
	if ws.RecoveredRecords == 0 {
		t.Errorf("recovery replayed nothing: %+v", ws)
	}
	t.Logf("recovered across 4 shards: counter=%d (acked %d) sold=%d (acked %d) wal=%+v",
		sum, ackedAdds.Load(), sold, ackedSold.Load(), ws)
}

// TestShardedCheckpointAndExport: per-shard checkpoints land in each
// shard's own directory, recovery uses them, and the stitched Export
// carries every shard's structures with one watermark per shard.
func TestShardedCheckpointAndExport(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{Shards: 4, Workers: 4, MaxBatch: 32, DataDir: dir, Fsync: true}
	s := startServer(t, cfg)
	cl := dial(t, s, 1)
	// One counter per shard, found by probing the routing function.
	byShard := map[int]string{}
	for i := 0; len(byShard) < 4 && i < 1000; i++ {
		n := fmt.Sprintf("c%d", i)
		if sh := shardOfName(n, 4); byShard[sh] == "" {
			byShard[sh] = n
		}
	}
	names := []string{byShard[0], byShard[1], byShard[2], byShard[3]}
	for i, n := range names {
		if err := cl.CounterAdd(n, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ws := s.WALStats()
	if ws.Snapshots < 4 {
		t.Errorf("checkpoint wrote %d snapshots, want one per trafficked shard (4): %+v", ws.Snapshots, ws)
	}

	img, marks, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	if len(marks) != 4 {
		t.Fatalf("export watermarks: %d, want 4", len(marks))
	}
	for i, n := range names {
		if got := img.Counters[n]; got != int64(100+i) {
			t.Errorf("stitched export %s = %d, want %d", n, got, 100+i)
		}
	}
	// Post-checkpoint traffic, then reboot: snapshot + tail both replay.
	if err := cl.CounterAdd(names[0], 1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := startServer(t, cfg)
	if sum, err := dial(t, s2, 1).CounterSum(names[0]); err != nil || sum != 101 {
		t.Fatalf("recovered %s = %d,%v want 101", names[0], sum, err)
	}
}
