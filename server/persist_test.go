package server_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pnstm/internal/wal"
	"pnstm/server"
)

// persistCfg is the baseline durable-server configuration tests start
// from (small batches, fsync on, aggressive coalescing window).
func persistCfg(dir string) server.Config {
	return server.Config{
		Workers:    4,
		MaxBatch:   32,
		BatchDelay: 200 * time.Microsecond,
		DataDir:    dir,
		Fsync:      true,
	}
}

// TestPersistSurvivesRestart is the quickstart property: write, close,
// reboot on the same data dir, read everything back.
func TestPersistSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	s := startServer(t, persistCfg(dir))
	cl := dial(t, s, 1)
	if err := cl.MapPut("m", "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := cl.MapPut("m", "k2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MapDelete("m", "k1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := cl.QueuePush("q", []byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := cl.QueuePop("q"); err != nil {
		t.Fatal(err)
	}
	if err := cl.CounterAdd("c", 41); err != nil {
		t.Fatal(err)
	}
	if err := cl.CounterAdd("c", 1); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := startServer(t, persistCfg(dir))
	cl2 := dial(t, s2, 1)
	if v, ok, err := cl2.MapGet("m", "k2"); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("recovered m[k2] = %q,%v,%v want v2", v, ok, err)
	}
	if _, ok, err := cl2.MapGet("m", "k1"); err != nil || ok {
		t.Fatalf("deleted key k1 resurrected: ok=%v err=%v", ok, err)
	}
	if n, err := cl2.QueueLen("q"); err != nil || n != 4 {
		t.Fatalf("recovered queue len = %d,%v want 4", n, err)
	}
	// FIFO survives recovery: e0 was popped, e1..e4 remain in order.
	for i := 1; i <= 4; i++ {
		v, ok, err := cl2.QueuePop("q")
		if err != nil || !ok || string(v) != fmt.Sprintf("e%d", i) {
			t.Fatalf("recovered pop %d = %q,%v,%v (FIFO broken)", i, v, ok, err)
		}
	}
	if sum, err := cl2.CounterSum("c"); err != nil || sum != 42 {
		t.Fatalf("recovered counter = %d,%v want 42", sum, err)
	}
}

// TestPersistOneFsyncPerGroupCommit is the amortization invariant from
// the issue: a write-only workload must issue exactly one WAL append
// and one fsync per group commit, however many requests each batch
// carried.
func TestPersistOneFsyncPerGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, server.Config{
		Workers: 4, MaxBatch: 64, BatchDelay: 5 * time.Millisecond,
		DataDir: dir, Fsync: true,
	})
	const clients, opsPer = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if err := cl.CounterAdd("c", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := s.Stats()
	ws := s.WALStats()
	if st.WAL == nil {
		t.Fatal("ServerStats.WAL missing on a durable server")
	}
	// Every batch of this workload mutates, so: one record per batch,
	// one fsync per record.
	if ws.Appends != st.Batches {
		t.Errorf("wal appends %d != batches %d (want one record per group commit)", ws.Appends, st.Batches)
	}
	if ws.Syncs != ws.Appends {
		t.Errorf("wal syncs %d != appends %d (want exactly one fsync per group commit)", ws.Syncs, ws.Appends)
	}
	if st.Requests <= st.Batches {
		t.Errorf("no grouping formed (requests %d, batches %d): fsync amortization untested", st.Requests, st.Batches)
	}
	t.Logf("requests=%d batches=%d appends=%d syncs=%d (%.1f requests per fsync)",
		st.Requests, st.Batches, ws.Appends, ws.Syncs, float64(st.Requests)/float64(ws.Syncs))
}

// TestPersistReadOnlyBatchesCostNoFsync: reads must not append or sync.
func TestPersistReadOnlyBatchesCostNoFsync(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, persistCfg(dir))
	cl := dial(t, s, 1)
	if err := cl.MapPut("m", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	base := s.WALStats()
	for i := 0; i < 50; i++ {
		if _, _, err := cl.MapGet("m", "k"); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.CounterSum("c"); err != nil {
			t.Fatal(err)
		}
	}
	// A rejected checkout mutates nothing either.
	if ok, _, err := cl.Checkout("m", server.Checkout{Lines: []server.CheckoutLine{{SKU: "absent", Qty: 1}}}); err != nil || ok {
		t.Fatalf("checkout against missing stock: ok=%v err=%v", ok, err)
	}
	ws := s.WALStats()
	if ws.Appends != base.Appends || ws.Syncs != base.Syncs {
		t.Errorf("read-only traffic hit the wal: appends %d->%d syncs %d->%d",
			base.Appends, ws.Appends, base.Syncs, ws.Syncs)
	}
}

// TestPersistCleanShutdownLosesNothing: every op acked before Close must
// be present after a restart — the graceful-shutdown satellite.
func TestPersistCleanShutdownLosesNothing(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, persistCfg(dir))
	const clients, opsPer = 6, 40
	var wg sync.WaitGroup
	var acked atomic.Int64
	for g := 0; g < clients; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if err := cl.CounterAdd("total", 1); err != nil {
					t.Error(err)
					return
				}
				acked.Add(1)
				if err := cl.QueuePush(fmt.Sprintf("q%d", g), server.EncodeInt64(int64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s.Close()

	s2 := startServer(t, persistCfg(dir))
	cl := dial(t, s2, 1)
	sum, err := cl.CounterSum("total")
	if err != nil {
		t.Fatal(err)
	}
	if sum != acked.Load() {
		t.Errorf("counter after clean shutdown = %d, want %d acked adds", sum, acked.Load())
	}
	for g := 0; g < clients; g++ {
		name := fmt.Sprintf("q%d", g)
		if n, err := cl.QueueLen(name); err != nil || n != opsPer {
			t.Fatalf("queue %s len = %d,%v want %d", name, n, err, opsPer)
		}
		for i := 0; i < opsPer; i++ {
			raw, ok, err := cl.QueuePop(name)
			if err != nil || !ok {
				t.Fatalf("queue %s pop %d: %v %v", name, i, ok, err)
			}
			if v, _ := server.DecodeInt64(raw); v != int64(i) {
				t.Fatalf("queue %s pop %d = %d (FIFO broken across restart)", name, i, v)
			}
		}
	}
}

// TestPersistCrashRecoveryE2E is the issue's acceptance scenario: hard-
// kill the server mid-load, restart on the same data dir, and check the
// recovered store against what the clients saw acked:
//
//   - counter: recovered sum within [acked, attempted] adds
//   - queues (one per producer, sequential values): the recovered
//     contents are exactly 0..n-1 in FIFO order with n ≥ acked pushes
//   - checkout: conservation and revenue-consistency hold exactly, and
//     units sold ≥ units acked as sold
func TestPersistCrashRecoveryE2E(t *testing.T) {
	dir := t.TempDir()
	const (
		producers  = 4
		buyers     = 4
		skus       = 5
		initialPer = int64(10000)
	)

	s := startServer(t, persistCfg(dir))
	setup := dial(t, s, 1)
	for i := 0; i < skus; i++ {
		if err := setup.MapPutInt("stock", fmt.Sprintf("sku%d", i), initialPer); err != nil {
			t.Fatal(err)
		}
	}

	var (
		ackedAdds, attemptedAdds atomic.Int64
		ackedSold                atomic.Int64
		stop                     atomic.Bool
		wg                       sync.WaitGroup
		ackedPush                [producers]atomic.Int64
		attemptedPush            [producers]atomic.Int64
	)
	for g := 0; g < producers; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				attemptedPush[g].Add(1)
				if err := cl.QueuePush(fmt.Sprintf("q%d", g), server.EncodeInt64(int64(i))); err != nil {
					return // killed
				}
				ackedPush[g].Add(1)
				attemptedAdds.Add(2)
				if err := cl.CounterAdd("hits", 2); err != nil {
					return
				}
				ackedAdds.Add(2)
			}
		}()
	}
	for g := 0; g < buyers; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 7))
			for !stop.Load() {
				qty := int64(1 + rng.Intn(3))
				sku := fmt.Sprintf("sku%d", rng.Intn(skus))
				ok, _, err := cl.Checkout("stock", server.Checkout{
					Sold: "sold", Revenue: "revenue", Cents: qty * 100,
					Lines: []server.CheckoutLine{{SKU: sku, Qty: qty}},
				})
				if err != nil {
					return // killed
				}
				if ok {
					ackedSold.Add(qty)
				}
			}
		}()
	}

	time.Sleep(400 * time.Millisecond)
	s.Kill() // simulated SIGKILL: no flush, no farewell
	stop.Store(true)
	wg.Wait()

	if ackedAdds.Load() == 0 || ackedSold.Load() == 0 {
		t.Fatalf("no load landed before the kill (adds=%d sold=%d)", ackedAdds.Load(), ackedSold.Load())
	}

	s2 := startServer(t, persistCfg(dir))
	cl := dial(t, s2, 1)

	// Counter: everything acked must have survived; anything beyond that
	// must be explainable by in-flight requests at the kill.
	sum, err := cl.CounterSum("hits")
	if err != nil {
		t.Fatal(err)
	}
	if sum < ackedAdds.Load() || sum > attemptedAdds.Load() {
		t.Errorf("recovered counter %d outside [acked %d, attempted %d]", sum, ackedAdds.Load(), attemptedAdds.Load())
	}

	// Queues: per-producer FIFO prefix 0..n-1, n ≥ acked pushes.
	for g := 0; g < producers; g++ {
		name := fmt.Sprintf("q%d", g)
		n, err := cl.QueueLen(name)
		if err != nil {
			t.Fatal(err)
		}
		if n < ackedPush[g].Load() || n > attemptedPush[g].Load() {
			t.Errorf("queue %s holds %d elements, outside [acked %d, attempted %d]",
				name, n, ackedPush[g].Load(), attemptedPush[g].Load())
		}
		for i := int64(0); i < n; i++ {
			raw, ok, err := cl.QueuePop(name)
			if err != nil || !ok {
				t.Fatalf("queue %s pop %d: %v %v", name, i, ok, err)
			}
			if v, _ := server.DecodeInt64(raw); v != i {
				t.Fatalf("queue %s pop %d = %d: FIFO prefix broken by crash recovery", name, i, v)
			}
		}
	}

	// Checkout conservation is exact in ANY recovered state: an order
	// either fully replayed or never happened.
	var remaining int64
	for i := 0; i < skus; i++ {
		v, ok, err := cl.MapGetInt("stock", fmt.Sprintf("sku%d", i))
		if err != nil || !ok {
			t.Fatalf("stock sku%d: %v %v", i, ok, err)
		}
		if v < 0 {
			t.Errorf("sku%d oversold after recovery: %d", i, v)
		}
		remaining += v
	}
	sold, err := cl.CounterSum("sold")
	if err != nil {
		t.Fatal(err)
	}
	revenue, err := cl.CounterSum("revenue")
	if err != nil {
		t.Fatal(err)
	}
	if total, want := remaining+sold, int64(skus)*initialPer; total != want {
		t.Errorf("conservation violated after crash: remaining %d + sold %d = %d, want %d", remaining, sold, total, want)
	}
	if revenue != sold*100 {
		t.Errorf("revenue %d inconsistent with %d units sold after crash", revenue, sold)
	}
	if sold < ackedSold.Load() {
		t.Errorf("recovered sold %d < acked sold %d: durable acks lost", sold, ackedSold.Load())
	}
	t.Logf("recovered: counter=%d (acked %d) sold=%d (acked %d) wal=%+v",
		sum, ackedAdds.Load(), sold, ackedSold.Load(), s2.WALStats())
}

// TestPersistCheckpointTruncatesAndRecovers: a checkpoint plus further
// traffic recovers snapshot + WAL tail, not one or the other.
func TestPersistCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg(dir)
	cfg.WALSegmentBytes = 4096 // rotate often so truncation has prey
	s := startServer(t, cfg)
	cl := dial(t, s, 1)
	for i := 0; i < 200; i++ {
		if err := cl.MapPut("m", fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("pre%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ws := s.WALStats()
	if ws.SnapshotLSN == 0 || ws.Snapshots != 1 {
		t.Fatalf("checkpoint left no snapshot: %+v", ws)
	}
	// Post-snapshot traffic lands in the WAL tail.
	for i := 0; i < 50; i++ {
		if err := cl.MapPut("m", fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("post%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.CounterAdd("c", 7); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := startServer(t, cfg)
	cl2 := dial(t, s2, 1)
	for i := 0; i < 200; i++ {
		want := fmt.Sprintf("pre%d", i)
		if i < 50 {
			want = fmt.Sprintf("post%d", i)
		}
		v, ok, err := cl2.MapGet("m", fmt.Sprintf("k%03d", i))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("recovered m[k%03d] = %q,%v,%v want %q", i, v, ok, err, want)
		}
	}
	if sum, err := cl2.CounterSum("c"); err != nil || sum != 7 {
		t.Fatalf("recovered counter = %d,%v want 7", sum, err)
	}
	ws2 := s2.WALStats()
	if ws2.SnapshotLSN == 0 {
		t.Errorf("recovery ignored the snapshot: %+v", ws2)
	}
	if ws2.RecoveredRecords == 0 {
		t.Errorf("recovery found no WAL tail to replay: %+v", ws2)
	}
}

// TestPersistBackgroundCheckpointer: SnapshotEvery produces snapshots
// without manual calls, under live traffic.
func TestPersistBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg(dir)
	cfg.SnapshotEvery = 50 * time.Millisecond
	s := startServer(t, cfg)
	cl := dial(t, s, 1)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := cl.CounterAdd("c", 1); err != nil {
			t.Fatal(err)
		}
		if s.WALStats().Snapshots > 0 {
			break
		}
	}
	if ws := s.WALStats(); ws.Snapshots == 0 {
		t.Fatalf("background checkpointer never wrote a snapshot: %+v", ws)
	}
}

// TestPersistTornWALTailRecoversCleanly truncates the WAL mid-record
// after a dirty stop: the server must boot without error, recover the
// durable prefix, and keep serving.
func TestPersistTornWALTailRecoversCleanly(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, persistCfg(dir))
	cl := dial(t, s, 1)
	for i := 0; i < 20; i++ {
		if err := cl.CounterAdd("c", 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Tear the last record: chop a few bytes off the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v %v", segs, err)
	}
	seg := segs[len(segs)-1]
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := startServer(t, persistCfg(dir))
	cl2 := dial(t, s2, 1)
	sum, err := cl2.CounterSum("c")
	if err != nil {
		t.Fatal(err)
	}
	// The torn record held ≥1 add; everything before it must survive.
	if sum < 1 || sum > 19 {
		t.Errorf("recovered counter = %d, want within [1,19] (prefix minus torn tail)", sum)
	}
	ws := s2.WALStats()
	if !ws.RepairedTail {
		t.Errorf("torn tail not flagged as repaired: %+v", ws)
	}
	// The repaired log must accept new writes and survive another boot.
	if err := cl2.CounterAdd("c", 100); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := startServer(t, persistCfg(dir))
	cl3 := dial(t, s3, 1)
	sum2, err := cl3.CounterSum("c")
	if err != nil {
		t.Fatal(err)
	}
	if sum2 != sum+100 {
		t.Errorf("post-repair write lost: %d, want %d", sum2, sum+100)
	}
}

// TestPersistCorruptWALRecordRecoversCleanly flips a byte in the middle
// of the log: boot must not error and must not apply the garbage.
func TestPersistCorruptWALRecordRecoversCleanly(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, persistCfg(dir))
	cl := dial(t, s, 1)
	for i := 0; i < 20; i++ {
		if err := cl.CounterAdd("c", 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) == 0 {
		t.Fatal("no wal segments")
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := startServer(t, persistCfg(dir))
	cl2 := dial(t, s2, 1)
	sum, err := cl2.CounterSum("c")
	if err != nil {
		t.Fatal(err)
	}
	if sum < 0 || sum > 20 {
		t.Errorf("recovered counter = %d after corruption, want a clean prefix in [0,20]", sum)
	}
	if ws := s2.WALStats(); !ws.RepairedTail {
		t.Errorf("corruption not flagged: %+v", ws)
	}
}

// TestPersistForcesSingleInflight: the WAL's commit-order contract
// relies on one group commit at a time (D20).
func TestPersistForcesSingleInflight(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg(dir)
	cfg.MaxInflight = 8 // must be overridden
	s := startServer(t, cfg)
	cl := dial(t, s, 2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := cl.CounterAdd("c", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if sum, err := cl.CounterSum("c"); err != nil || sum != 200 {
		t.Fatalf("counter = %d,%v want 200", sum, err)
	}
	s.Close()
	s2 := startServer(t, persistCfg(dir))
	if sum, err := dial(t, s2, 1).CounterSum("c"); err != nil || sum != 200 {
		t.Fatalf("recovered counter = %d,%v want 200", sum, err)
	}
}

// TestPersistManifestUpgradeAfterRecovery: opening a version-1 data
// directory upgrades its manifest to the current version — but only
// once recovery has succeeded. A failed recovery must leave the
// manifest untouched, so the operator can still fall back to the
// previous binary (whose version gate would refuse a prematurely
// upgraded directory).
func TestPersistManifestUpgradeAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	if err := wal.WriteManifest(dir, wal.Manifest{Version: 1, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	// A segment file with a garbage header makes recovery fail outright.
	seg := filepath.Join(dir, "wal-0000000000000001.log")
	if err := os.WriteFile(seg, []byte("not a wal segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Shards: 1, Workers: 2, DataDir: dir, Fsync: true}
	if _, err := server.New(cfg); err == nil {
		t.Fatal("recovery accepted a garbage segment")
	}
	m, ok, err := wal.ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest after failed recovery: %+v ok=%v err=%v", m, ok, err)
	}
	if m.Version != 1 {
		t.Fatalf("failed recovery upgraded the manifest to version %d", m.Version)
	}

	// With the bad segment gone, recovery succeeds and the upgrade lands.
	if err := os.Remove(seg); err != nil {
		t.Fatal(err)
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	m, ok, err = wal.ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest after successful recovery: %+v ok=%v err=%v", m, ok, err)
	}
	if m.Version != wal.ManifestVersion {
		t.Fatalf("manifest version = %d, want %d after a successful open", m.Version, wal.ManifestVersion)
	}
}
