package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// The admin surface is a second, HTTP listener (Config.AdminAddr)
// serving the operational plane: Prometheus metrics, liveness and
// readiness, and the live configuration. It is separate from the
// binary protocol port so an operator's curl and a Prometheus scraper
// never compete with data traffic for frames, and so it can keep
// answering during the graceful drain (Close shuts it down LAST).

// adminDrainTimeout bounds how long Close waits for in-flight admin
// requests (scrapes are milliseconds; this is pure safety margin).
const adminDrainTimeout = 5 * time.Second

// Ready reports whether the server is accepting work: nil when ready,
// otherwise the reason. Not ready once shutdown begins (Close/Kill flip
// s.closed before anything else, so /readyz turns 503 immediately — a
// load balancer stops routing before the drain starts losing it
// requests), before recovery has loaded the durable state (listener-up
// is not store-up), when any shard's WAL has latched shut (the store
// still serves reads from memory but can no longer accept durable
// writes), and on a replica whose staleness watermark is unknown or
// beyond Config.ReplicaMaxStaleness — a lagging replica must fall out
// of the read pool rather than serve arbitrarily old state.
func (s *Server) Ready() error {
	if s.closed.Load() {
		return fmt.Errorf("shutting down")
	}
	if !s.recovered.Load() {
		return fmt.Errorf("recovering")
	}
	if s.isReplica() {
		st, ok := s.repl.staleness()
		if !ok {
			return fmt.Errorf("replica syncing: not yet caught up with %s", s.cfg.ReplicaOf)
		}
		if st > s.cfg.ReplicaMaxStaleness {
			return fmt.Errorf("replica stale by %s (bound %s)", st.Round(time.Millisecond), s.cfg.ReplicaMaxStaleness)
		}
	}
	for _, sh := range s.shards {
		if sh.wal != nil {
			if err := sh.wal.Err(); err != nil {
				return fmt.Errorf("shard %d wal latched: %w", sh.id, err)
			}
		}
	}
	return nil
}

// AdminAddr returns the bound admin listen address (nil before Listen
// or without Config.AdminAddr) — how tests bind ":0" and find the port.
func (s *Server) AdminAddr() net.Addr {
	if s.adminLn == nil {
		return nil
	}
	return s.adminLn.Addr()
}

// listenAdmin binds the admin address and builds the HTTP server.
// Called from Listen; serveAdmin starts the accept loop.
func (s *Server) listenAdmin() error {
	if s.cfg.AdminAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", s.cfg.AdminAddr)
	if err != nil {
		return fmt.Errorf("server: admin listen: %w", err)
	}
	s.adminLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/config", s.handleConfig)
	mux.HandleFunc("/replica", s.handleReplica)
	mux.HandleFunc("/promote", s.handlePromote)
	mux.HandleFunc("/debug/hotkeys", s.handleHotKeys)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	if s.cfg.AdminDebug {
		// Mounted explicitly (not via the net/http/pprof import side
		// effect) so the handlers exist only behind the opt-in flag and
		// only on this mux, never on http.DefaultServeMux.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.adminSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return nil
}

// serveAdmin runs the admin accept loop in the background (idempotent;
// called from Serve so the admin plane lives exactly as long as the
// data plane accepts).
func (s *Server) serveAdmin() {
	if s.adminSrv == nil || s.adminLn == nil {
		return
	}
	if !s.adminServing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		// ErrServerClosed is the normal Shutdown/Close exit; anything else
		// means the admin plane died while the data plane lives — keep
		// serving data, the next health probe of the admin port will page.
		_ = s.adminSrv.Serve(s.adminLn)
	}()
}

// closeAdmin tears the admin plane down. Graceful drains in-flight
// requests (scrapes mid-shutdown complete); hard stop cuts them.
func (s *Server) closeAdmin(graceful bool) {
	if s.adminSrv == nil {
		return
	}
	if graceful {
		ctx, cancel := context.WithTimeout(context.Background(), adminDrainTimeout)
		defer cancel()
		_ = s.adminSrv.Shutdown(ctx)
		return
	}
	_ = s.adminSrv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WritePrometheus(w)
}

// handleHealthz is liveness: 200 while the process can answer at all.
// Readiness (can it do useful work) is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.Ready(); err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, err.Error())
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.ConfigSnapshot())
	case http.MethodPut:
		var u ConfigUpdate
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields() // a typoed knob name must not silently no-op
		if err := dec.Decode(&u); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		view, err := s.ApplyConfig(&u)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, view)
	default:
		w.Header().Set("Allow", "GET, PUT")
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// handleReplica serves the replication watermarks (D41): role, primary
// and per-shard applied/head LSNs with staleness.
func (s *Server) handleReplica(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.ReplicaStatus())
}

// handlePromote flips a replica into a primary (D42). POST-only: it is
// a state change. 409 on a server that is not an unpromoted replica.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	if !s.Promote() {
		writeJSON(w, http.StatusConflict, map[string]string{"error": "not a replica (or already promoted)"})
		return
	}
	writeJSON(w, http.StatusOK, s.ReplicaStatus())
}

// handleHotKeys serves the conflict profiler's ranked table (D36).
// ?n=K bounds the entry count (default 32).
func (s *Server) handleHotKeys(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	n := 32
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "n must be a positive integer"})
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, s.HotKeys(n))
}

// handleTrace dumps the flight recorder's retained events as JSON,
// optionally trimmed to the trailing ?secs=N window (D37).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	var window time.Duration
	if raw := r.URL.Query().Get("secs"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "secs must be a positive number"})
			return
		}
		window = time.Duration(v * float64(time.Second))
	}
	writeJSON(w, http.StatusOK, struct {
		Tracing bool         `json:"tracing"`
		Shards  []ShardTrace `json:"shards"`
	}{s.TracingEnabled(), s.TraceWindow(window)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
