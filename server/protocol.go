// Package server implements pnstmd: a networked transactional store
// exposing named stmlib structures (maps, queues, counters) over a
// length-prefixed binary protocol, with a group-commit batching engine
// that coalesces concurrent in-flight requests into one root transaction
// per batch — each request runs as a parallel nested child of the batch
// transaction via Ctx.Parallel, so server throughput directly exercises
// the paper's parallel-nesting mechanism (batch = root transaction,
// request = nested child).
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format, all integers big-endian. A frame is a uint32 payload
// length followed by the payload:
//
//	request:  u64 id | u8 op | u16+name | u16+key | u32+value | i64 delta
//	          [op == OpCheckout: u16 nlines, nlines × (u16+sku, i64 qty),
//	           u16+sold, u16+revenue, i64 cents]
//	          [op == OpTx: u16 nops, nops ×
//	           (u8 op | u16+name | u16+key | u32+value | i64 delta)]
//	response: u64 id | u8 status | u8 found | i64 num | u32+value | u16+msg
//	          | u16 nresults, nresults × (u8 status | u8 found | i64 num | u32+value)
//
// u16+s / u32+b denote a length-prefixed string / byte slice. Responses
// share one body layout across ops: Found answers map-get / map-delete /
// queue-pop, Num carries lengths and sums, Value carries get/pop payloads
// and the OpStats JSON blob, Msg carries the error text for StatusErr.
// The trailing results vector is non-empty only for OpTx responses: one
// entry per sub-op, in envelope order.

// MaxFrame bounds a single frame's payload; larger frames are rejected
// as malformed (protects both sides from a corrupt length prefix).
const MaxFrame = 16 << 20

// Request opcodes.
const (
	OpPing uint8 = iota + 1
	OpMapGet
	OpMapPut
	OpMapDelete
	OpMapLen
	OpQueuePush
	OpQueuePop
	OpQueueLen
	OpCounterAdd
	OpCounterSum
	// OpCheckout is the legacy composite order operation. DEPRECATED: it
	// is kept as a REQUEST-side alias only — ParseRequest translates it
	// into the equivalent OpTx envelope at decode time, so nothing past
	// the decoder ever executes a checkout-shaped special case, and WAL
	// records written before the envelope era replay through the generic
	// path. Note the alias does not preserve the old RESPONSE framing
	// (every response now carries the trailing results vector; client
	// and server versions move together), and the reply to a translated
	// checkout is the envelope-shaped one. New clients build the
	// transaction themselves (client.Txn).
	OpCheckout
	OpStats
	// OpTx is the generalized transaction envelope: an ordered list of
	// sub-ops executed as ONE atomic transaction (one nested child of the
	// group-commit batch, sub-ops grouped by structure and fanned as
	// parallel-nested grandchildren). Sub-ops see earlier writes of the
	// same envelope on the same structure (read-your-writes); a failed
	// guard or malformed sub-op aborts and rolls back the whole envelope.
	OpTx

	// Sub-opcodes valid inside an OpTx envelope (OpMapAdd is also a valid
	// top-level request). Guards never mutate; a false guard aborts the
	// envelope with StatusRejected and Num = the failing op's index.
	//
	// OpMapAdd: add Delta to the int64-encoded map value under Key
	// (absent reads as 0); result Num is the new value, Found whether the
	// key existed before.
	OpMapAdd
	// OpAssertEq: with Key != "", assert the map value under Key equals
	// Value byte-for-byte (nil Value asserts the key is absent); with
	// Key == "", assert the named counter's sum equals Delta.
	OpAssertEq
	// OpAssertGE: with Key != "", assert the int64-encoded map value
	// under Key (absent reads as 0) is ≥ Delta; with Key == "", assert
	// the named counter's sum is ≥ Delta.
	OpAssertGE

	// OpHello is the versioned handshake (D40): the client announces its
	// protocol version, feature bits and read-staleness bound; the server
	// answers with its own version/features, role (primary or replica),
	// shard count and — on a replica — the primary's address, encoded in
	// Response.Value (see EncodeHelloInfo). Optional: a client that never
	// sends it gets legacy behaviour, and a LEGACY server rejects the
	// unknown opcode with StatusErr echoing the request ID — which is
	// itself a well-defined negotiation outcome (no features, primary).
	OpHello
	// OpReplSubscribe opens a replication stream (D39): the requester
	// names a shard and a resume LSN, and the server answers with a
	// sequence of response frames sharing the request's ID — snapshot
	// chunks when the resume point was compacted, then record frames as
	// group commits append, with heartbeats while idle. The stream ends
	// only with the connection (or a StatusErr frame naming the reason).
	OpReplSubscribe

	// Second-generation sub-opcodes (sorted maps, per-key TTL, queue
	// leases). Valid ONLY inside an OpTx envelope — ParseRequest rejects
	// them top-level, so the dispatch surface (routing, batching,
	// logging) stays the envelope path; clients wrap point uses in
	// single-op envelopes. Deadlines and cutoffs are int64 UnixNano
	// carried in Delta: reads judge expiry against the reader's clock
	// (never logged), but every PHYSICAL removal is one of the explicit
	// cutoff-carrying ops below, so replaying the WAL is deterministic —
	// no wall clock in any logged path.

	// OpSortedGet: Value/Found = the sorted map's live value under Key
	// (an expired-but-unreaped entry reads as absent).
	OpSortedGet
	// OpSortedPut: set Key to Value with no deadline.
	OpSortedPut
	// OpSortedPutTTL: set Key to Value expiring at Delta (UnixNano);
	// Delta <= 0 degrades to a plain put.
	OpSortedPutTTL
	// OpSortedDelete: physically remove Key; Found whether it existed.
	OpSortedDelete
	// OpSortedLen: Num = physical entry count (expired-but-unreaped
	// entries included — the reaper's progress gauge).
	OpSortedLen
	// OpRangeScan: Num/Value = the live entries in [Key, string(Value))
	// in key order, capped at Delta entries (0: unbounded); an empty
	// Value scans to the end of the key space. The result Value is an
	// EncodeKVs list, Num its length. Executes as the sorted map's
	// parallel-nested subrange scan.
	OpRangeScan
	// OpRangeCount: Num = the live-entry count of the same range shape
	// as OpRangeScan (Delta ignored), without materializing values.
	OpRangeCount
	// OpMapPutTTL: TMap put with a deadline, mirroring OpSortedPutTTL.
	OpMapPutTTL
	// OpExpire: physically remove the map Key iff it carries a deadline
	// <= Delta (the reaper's logged cutoff); Found whether it did.
	OpExpire
	// OpSortedExpire: OpExpire for a sorted map key.
	OpSortedExpire
	// OpLeaseConsume: pop one element under a lease expiring at Delta;
	// Found whether an element was available, Num the lease id, Value
	// the payload. Lease ids are minted from transactional state, so
	// replay reproduces them exactly.
	OpLeaseConsume
	// OpLeaseAck: retire lease Delta (id). GUARD-LIKE: an absent lease
	// (already reclaimed and re-delivered) REJECTS the envelope, so an
	// ack bundled with its side effects (done-markers, counters) commits
	// atomically exactly once per delivery.
	OpLeaseAck
	// OpLeaseNack: return lease Delta's element to the queue tail; Found
	// whether the lease still existed (an absent lease is a no-op, not a
	// rejection — reclaim already requeued it).
	OpLeaseNack
	// OpLeaseReclaim: requeue every lease with deadline <= Delta, in
	// lease-id order; Num = how many.
	OpLeaseReclaim
	// OpLeaseLen: Num = outstanding lease count.
	OpLeaseLen
)

// Response statuses.
const (
	// StatusOK: the operation committed (for map get / queue pop, check
	// Found for whether the key/element existed).
	StatusOK uint8 = iota + 1
	// StatusRejected: the operation's own precondition failed (a false
	// OpTx guard) and its transaction was rolled back; the rest of the
	// batch is unaffected. For OpTx, Num is the failing op's index and
	// TxResults holds what executed before the abort.
	StatusRejected
	// StatusErr: the request was malformed or the server is shutting
	// down; Msg carries the reason.
	StatusErr
	// StatusCrossShard: a mutating OpTx envelope touched structures
	// living on different shards; the transaction was not executed.
	// Clients surface this as a typed error (client.ErrCrossShard) —
	// split the transaction or co-locate the structures by name.
	StatusCrossShard
	// StatusNotPrimary: the redirect status (D41). A replica refused to
	// execute a mutation (or a read the caller's staleness bound forbids);
	// Msg names the primary's address. Clients retry against the primary
	// or surface client.ErrNotPrimary.
	StatusNotPrimary
)

// TxOp is one sub-operation of an OpTx envelope. Op is one of the
// structure opcodes (OpMapGet…OpCounterSum, OpMapAdd) or a guard
// (OpAssertEq, OpAssertGE); Name addresses the structure and
// Key/Value/Delta are op-specific exactly as in a top-level Request.
type TxOp struct {
	Op    uint8
	Name  string
	Key   string
	Value []byte
	Delta int64
}

// Tx is the decoded OpTx envelope body.
type Tx struct {
	Ops []TxOp
}

// TxResult is one sub-op's outcome inside an OpTx response. Status 0
// means the op never executed (a preceding failure aborted the
// envelope); StatusOK carries the op's Found/Num/Value exactly as a
// top-level response would; StatusRejected marks the failing guard.
type TxResult struct {
	Status uint8
	Found  bool
	Num    int64
	Value  []byte
}

// CheckoutLine is one (SKU, quantity) order line.
type CheckoutLine struct {
	SKU string
	Qty int64
}

// Checkout is the cross-structure order operation, mirroring
// examples/inventory: atomically decrement every line's stock in the
// request's map (values are EncodeInt64 counts), then credit the Sold
// counter with the total units and the Revenue counter with Cents. If
// any line has insufficient stock the whole checkout — all decrements
// included — is rolled back and the response is StatusRejected.
type Checkout struct {
	Sold    string // units counter name ("" to skip)
	Revenue string // revenue counter name ("" to skip)
	Cents   int64
	Lines   []CheckoutLine
}

// Request is one decoded client operation. Name addresses the structure;
// Key/Value/Delta are op-specific; Checkout is non-nil only on requests
// built in-process with Op == OpCheckout (ParseRequest never yields one:
// it translates the legacy opcode to an OpTx envelope); Tx is non-nil
// only for OpTx.
type Request struct {
	ID       uint64
	Op       uint8
	Name     string
	Key      string
	Value    []byte
	Delta    int64
	Checkout *Checkout
	Tx       *Tx
	Hello    *Hello         // non-nil only for OpHello
	Sub      *ReplSubscribe // non-nil only for OpReplSubscribe
}

// Response is one decoded server reply; see the body-layout comment
// above for which fields each op uses. TxResults is per-sub-op outcomes,
// non-empty only for OpTx.
type Response struct {
	ID        uint64
	Status    uint8
	Found     bool
	Num       int64
	Value     []byte
	Msg       string
	TxResults []TxResult
}

// EncodeInt64 renders v as the 8-byte big-endian map value the integer
// helpers (and OpCheckout) use.
func EncodeInt64(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// DecodeInt64 parses an EncodeInt64 value.
func DecodeInt64(b []byte) (int64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("server: int64 value has %d bytes, want 8", len(b))
	}
	return int64(binary.BigEndian.Uint64(b)), nil
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

func appendU16Str(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendU32Bytes(buf []byte, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func appendI64(buf []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(buf, uint64(v))
}

// checkRequestLimits rejects values that would not survive their wire
// length prefix (u16 strings, u16 line count, the frame bound itself) —
// encoding them anyway would silently truncate the prefix and corrupt
// the stream.
func checkRequestLimits(req *Request) error {
	const maxStr = 1<<16 - 1
	if len(req.Name) > maxStr || len(req.Key) > maxStr {
		return fmt.Errorf("server: name/key longer than %d bytes", maxStr)
	}
	if len(req.Value) > MaxFrame/2 {
		return fmt.Errorf("server: value of %d bytes exceeds limit %d", len(req.Value), MaxFrame/2)
	}
	if co := req.Checkout; co != nil {
		if len(co.Lines) > maxStr {
			return fmt.Errorf("server: checkout with %d lines exceeds limit %d", len(co.Lines), maxStr)
		}
		if len(co.Sold) > maxStr || len(co.Revenue) > maxStr {
			return fmt.Errorf("server: counter name longer than %d bytes", maxStr)
		}
		for _, ln := range co.Lines {
			if len(ln.SKU) > maxStr {
				return fmt.Errorf("server: SKU longer than %d bytes", maxStr)
			}
		}
	}
	if tx := req.Tx; tx != nil {
		if len(tx.Ops) > maxStr {
			return fmt.Errorf("server: transaction with %d ops exceeds limit %d", len(tx.Ops), maxStr)
		}
		for i := range tx.Ops {
			op := &tx.Ops[i]
			if !validSubOp(op.Op) {
				return fmt.Errorf("server: op %d: invalid sub-opcode %d", i, op.Op)
			}
			if len(op.Name) > maxStr || len(op.Key) > maxStr {
				return fmt.Errorf("server: op %d: name/key longer than %d bytes", i, maxStr)
			}
			if len(op.Value) > MaxFrame/2 {
				return fmt.Errorf("server: op %d: value of %d bytes exceeds limit %d", i, len(op.Value), MaxFrame/2)
			}
		}
	}
	return nil
}

// validSubOp reports whether op may appear inside an OpTx envelope:
// the structure point ops plus the guards — never Ping/Stats, never the
// composite opcodes (envelopes do not nest on the wire; the runtime's
// nesting is the server's concern).
func validSubOp(op uint8) bool {
	switch op {
	case OpMapGet, OpMapPut, OpMapDelete, OpMapLen,
		OpQueuePush, OpQueuePop, OpQueueLen,
		OpCounterAdd, OpCounterSum,
		OpMapAdd, OpAssertEq, OpAssertGE,
		OpSortedGet, OpSortedPut, OpSortedPutTTL, OpSortedDelete, OpSortedLen,
		OpRangeScan, OpRangeCount,
		OpMapPutTTL, OpExpire, OpSortedExpire,
		OpLeaseConsume, OpLeaseAck, OpLeaseNack, OpLeaseReclaim, OpLeaseLen:
		return true
	}
	return false
}

// KVEntry is one decoded range-scan result entry.
type KVEntry struct {
	Key   string
	Value []byte
}

// AppendKVs encodes a range-scan result list into buf: u32 count, then
// per entry a u16-prefixed key and u32-prefixed value. The encoding is
// carried as an OpRangeScan result Value, so it must survive the same
// frame limits as any other value.
func AppendKVs(buf []byte, kvs []KVEntry) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(kvs)))
	for _, kv := range kvs {
		buf = appendU16Str(buf, kv.Key)
		buf = appendU32Bytes(buf, kv.Value)
	}
	return buf
}

// DecodeKVs parses an AppendKVs list, rejecting truncated or oversized
// encodings.
func DecodeKVs(b []byte) ([]KVEntry, error) {
	cur := &cursor{b: b}
	raw := cur.take(4)
	if raw == nil {
		return nil, cur.err
	}
	n := binary.BigEndian.Uint32(raw)
	if uint64(n)*6 > uint64(len(b)) { // each entry costs >= 6 prefix bytes
		return nil, fmt.Errorf("server: kv list claims %d entries in %d bytes", n, len(b))
	}
	kvs := make([]KVEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		kvs = append(kvs, KVEntry{Key: cur.str16(), Value: cur.bytes32()})
	}
	if err := cur.done(); err != nil {
		return nil, err
	}
	return kvs, nil
}

// AppendRequest appends req as a complete frame (length prefix
// included), rejecting requests whose fields cannot be represented on
// the wire.
func AppendRequest(buf []byte, req *Request) ([]byte, error) {
	if err := checkRequestLimits(req); err != nil {
		return buf, err
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // frame length, patched below
	buf = binary.BigEndian.AppendUint64(buf, req.ID)
	buf = append(buf, req.Op)
	buf = appendU16Str(buf, req.Name)
	buf = appendU16Str(buf, req.Key)
	buf = appendU32Bytes(buf, req.Value)
	buf = appendI64(buf, req.Delta)
	if req.Op == OpCheckout {
		co := req.Checkout
		if co == nil {
			co = &Checkout{}
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(co.Lines)))
		for _, ln := range co.Lines {
			buf = appendU16Str(buf, ln.SKU)
			buf = appendI64(buf, ln.Qty)
		}
		buf = appendU16Str(buf, co.Sold)
		buf = appendU16Str(buf, co.Revenue)
		buf = appendI64(buf, co.Cents)
	}
	if req.Op == OpTx {
		tx := req.Tx
		if tx == nil {
			tx = &Tx{}
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(tx.Ops)))
		for i := range tx.Ops {
			op := &tx.Ops[i]
			buf = append(buf, op.Op)
			buf = appendU16Str(buf, op.Name)
			buf = appendU16Str(buf, op.Key)
			buf = appendU32Bytes(buf, op.Value)
			buf = appendI64(buf, op.Delta)
		}
	}
	if req.Op == OpHello {
		h := req.Hello
		if h == nil {
			h = &Hello{Version: ProtoVersion}
		}
		buf = binary.BigEndian.AppendUint16(buf, h.Version)
		buf = binary.BigEndian.AppendUint64(buf, h.Features)
		buf = binary.BigEndian.AppendUint32(buf, h.MaxStalenessMs)
	}
	if req.Op == OpReplSubscribe {
		sub := req.Sub
		if sub == nil {
			sub = &ReplSubscribe{}
		}
		buf = binary.BigEndian.AppendUint16(buf, sub.Shard)
		buf = binary.BigEndian.AppendUint64(buf, sub.FromLSN)
	}
	// Per-field limits cannot bound the sum (a many-line checkout can
	// pass each check yet overflow the frame), so enforce the total
	// here: a frame the peer would reject — tearing down the whole
	// pipelined connection — must not leave this side.
	if n := len(buf) - start - 4; n > MaxFrame {
		return buf[:start], fmt.Errorf("server: request encodes to %d bytes, exceeding frame limit %d", n, MaxFrame)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf, nil
}

// AppendResponse appends resp as a complete frame (length prefix
// included). An over-long Msg (server-generated error text) is clamped
// to its u16 prefix rather than corrupting the frame, as is an
// over-long results vector (a server never produces one: sub-op counts
// are bounded by the request's own u16 prefix).
func AppendResponse(buf []byte, resp *Response) []byte {
	if len(resp.Msg) > 1<<16-1 {
		clamped := *resp
		clamped.Msg = resp.Msg[:1<<16-1]
		resp = &clamped
	}
	if len(resp.TxResults) > 1<<16-1 {
		clamped := *resp
		clamped.TxResults = resp.TxResults[:1<<16-1]
		resp = &clamped
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.BigEndian.AppendUint64(buf, resp.ID)
	buf = append(buf, resp.Status)
	if resp.Found {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendI64(buf, resp.Num)
	buf = appendU32Bytes(buf, resp.Value)
	buf = appendU16Str(buf, resp.Msg)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(resp.TxResults)))
	for i := range resp.TxResults {
		r := &resp.TxResults[i]
		buf = append(buf, r.Status)
		if r.Found {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendI64(buf, r.Num)
		buf = appendU32Bytes(buf, r.Value)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

// ReadFrame reads one frame's payload from r.
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// cursor is a bounds-checked reader over one frame payload.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("server: truncated frame at offset %d", c.off)
	}
}

func (c *cursor) take(n int) []byte {
	if c.err != nil || c.off+n > len(c.b) {
		c.fail()
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *cursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

func (c *cursor) str16() string { return string(c.take(int(c.u16()))) }

func (c *cursor) bytes32() []byte {
	b := c.take(4)
	if b == nil {
		return nil
	}
	n := binary.BigEndian.Uint32(b)
	if n == 0 {
		return nil
	}
	raw := c.take(int(n))
	if raw == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, raw)
	return out
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("server: %d trailing bytes in frame", len(c.b)-c.off)
	}
	return nil
}

// ParseRequest decodes one request frame payload. The legacy OpCheckout
// opcode is translated to its equivalent OpTx envelope here, at the
// decode boundary — everything downstream (execution, shard routing,
// WAL logging and replay) sees only the generic envelope.
func ParseRequest(frame []byte) (*Request, error) {
	c := &cursor{b: frame}
	req := &Request{
		ID: c.u64(),
		Op: c.u8(),
	}
	req.Name = c.str16()
	req.Key = c.str16()
	req.Value = c.bytes32()
	req.Delta = c.i64()
	if req.Op == OpCheckout {
		co := &Checkout{}
		n := int(c.u16())
		for i := 0; i < n && c.err == nil; i++ {
			co.Lines = append(co.Lines, CheckoutLine{SKU: c.str16(), Qty: c.i64()})
		}
		co.Sold = c.str16()
		co.Revenue = c.str16()
		co.Cents = c.i64()
		req.Checkout = co
	}
	if req.Op == OpTx {
		tx := &Tx{}
		n := int(c.u16())
		for i := 0; i < n && c.err == nil; i++ {
			tx.Ops = append(tx.Ops, TxOp{
				Op:    c.u8(),
				Name:  c.str16(),
				Key:   c.str16(),
				Value: c.bytes32(),
				Delta: c.i64(),
			})
		}
		req.Tx = tx
	}
	if req.Op == OpHello {
		req.Hello = &Hello{
			Version:        c.u16(),
			Features:       c.u64(),
			MaxStalenessMs: c.u32(),
		}
	}
	if req.Op == OpReplSubscribe {
		req.Sub = &ReplSubscribe{
			Shard:   c.u16(),
			FromLSN: c.u64(),
		}
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	if req.Op == 0 || (req.Op > OpTx && req.Op != OpMapAdd && req.Op != OpHello && req.Op != OpReplSubscribe) {
		return nil, fmt.Errorf("server: unknown opcode %d", req.Op)
	}
	if req.Op == OpTx {
		for i := range req.Tx.Ops {
			if !validSubOp(req.Tx.Ops[i].Op) {
				return nil, fmt.Errorf("server: op %d: invalid sub-opcode %d", i, req.Tx.Ops[i].Op)
			}
		}
	}
	if req.Op == OpCheckout {
		tx, err := CheckoutTx(req.Name, req.Checkout)
		if err != nil {
			return nil, err
		}
		req.Op, req.Name, req.Checkout, req.Tx = OpTx, "", nil, tx
	}
	return req, nil
}

// CheckoutTx renders the legacy checkout composite as its OpTx
// envelope: per order line an OpAssertGE stock guard followed by the
// OpMapAdd decrement, then the counter credits. This is the SAME shape
// client.Checkout builds, so a wire-level OpCheckout and a client-built
// transaction produce byte-identical store state and WAL records.
func CheckoutTx(stockMap string, co *Checkout) (*Tx, error) {
	if co == nil {
		co = &Checkout{}
	}
	tx := &Tx{Ops: make([]TxOp, 0, 2*len(co.Lines)+2)}
	var units int64
	for _, ln := range co.Lines {
		if ln.Qty <= 0 {
			// A non-positive quantity would mint stock (have − qty grows)
			// and credit negative units; it is a malformed request.
			return nil, fmt.Errorf("server: checkout line %q: quantity %d must be positive", ln.SKU, ln.Qty)
		}
		tx.Ops = append(tx.Ops,
			TxOp{Op: OpAssertGE, Name: stockMap, Key: ln.SKU, Delta: ln.Qty},
			TxOp{Op: OpMapAdd, Name: stockMap, Key: ln.SKU, Delta: -ln.Qty})
		units += ln.Qty
	}
	if co.Sold != "" {
		tx.Ops = append(tx.Ops, TxOp{Op: OpCounterAdd, Name: co.Sold, Delta: units})
	}
	if co.Revenue != "" {
		tx.Ops = append(tx.Ops, TxOp{Op: OpCounterAdd, Name: co.Revenue, Delta: co.Cents})
	}
	return tx, nil
}

// ParseResponse decodes one response frame payload, rejecting unknown
// status bytes — both the top-level status and every per-sub-op result
// status (0 is legal there: the op never executed).
func ParseResponse(frame []byte) (*Response, error) {
	c := &cursor{b: frame}
	resp := &Response{
		ID:     c.u64(),
		Status: c.u8(),
		Found:  c.u8() == 1,
		Num:    c.i64(),
		Value:  c.bytes32(),
		Msg:    c.str16(),
	}
	if n := int(c.u16()); n > 0 && c.err == nil {
		resp.TxResults = make([]TxResult, 0, min(n, 1024))
		for i := 0; i < n && c.err == nil; i++ {
			resp.TxResults = append(resp.TxResults, TxResult{
				Status: c.u8(),
				Found:  c.u8() == 1,
				Num:    c.i64(),
				Value:  c.bytes32(),
			})
		}
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	if resp.Status == 0 || resp.Status > StatusNotPrimary {
		return nil, fmt.Errorf("server: unknown status %d", resp.Status)
	}
	for i := range resp.TxResults {
		if st := resp.TxResults[i].Status; st > StatusCrossShard {
			return nil, fmt.Errorf("server: op %d: unknown result status %d", i, st)
		}
	}
	return resp, nil
}
