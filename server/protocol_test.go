package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func roundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	frame, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	back, err := ParseRequest(payload)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	return back
}

func TestRequestRoundTripEveryOp(t *testing.T) {
	reqs := []*Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpMapGet, Name: "m", Key: "k"},
		{ID: 3, Op: OpMapPut, Name: "m", Key: "k", Value: []byte("v")},
		{ID: 4, Op: OpMapDelete, Name: "m", Key: "k"},
		{ID: 5, Op: OpMapLen, Name: "m"},
		{ID: 6, Op: OpQueuePush, Name: "q", Value: []byte{0, 1, 2}},
		{ID: 7, Op: OpQueuePop, Name: "q"},
		{ID: 8, Op: OpQueueLen, Name: "q"},
		{ID: 9, Op: OpCounterAdd, Name: "c", Delta: -42},
		{ID: 10, Op: OpCounterSum, Name: "c"},
		{ID: 11, Op: OpStats},
		{ID: 12, Op: OpMapAdd, Name: "m", Key: "k", Delta: -3},
		{ID: 13, Op: OpTx, Tx: &Tx{Ops: []TxOp{
			{Op: OpAssertGE, Name: "stock", Key: "anvil", Delta: 2},
			{Op: OpMapAdd, Name: "stock", Key: "anvil", Delta: -2},
			{Op: OpMapPut, Name: "m", Key: "k", Value: []byte("v")},
			{Op: OpMapGet, Name: "m", Key: "k"},
			{Op: OpQueuePush, Name: "q", Value: []byte{7}},
			{Op: OpQueuePop, Name: "q"},
			{Op: OpCounterAdd, Name: "c", Delta: 5},
			{Op: OpCounterSum, Name: "c"},
			{Op: OpAssertEq, Name: "c", Delta: 5},
			{Op: OpAssertEq, Name: "m", Key: "k", Value: []byte("v")},
		}}},
	}
	for _, req := range reqs {
		back := roundTripRequest(t, req)
		// Requests without a composite body decode with nil Checkout/Tx;
		// empty slices normalize to nil.
		if !reflect.DeepEqual(req, back) {
			t.Errorf("op %d: round trip mismatch:\n  sent %+v\n  got  %+v", req.Op, req, back)
		}
	}
}

// TestCheckoutTranslatesToTx pins the deprecated-alias contract: an
// OpCheckout frame decodes as the equivalent OpTx envelope — the exact
// shape CheckoutTx (and client.Checkout) builds — and never reaches the
// executor as a checkout.
func TestCheckoutTranslatesToTx(t *testing.T) {
	co := &Checkout{
		Sold:    "sold",
		Revenue: "rev",
		Cents:   1250,
		Lines:   []CheckoutLine{{SKU: "anvil", Qty: 2}, {SKU: "cog", Qty: 1}},
	}
	back := roundTripRequest(t, &Request{ID: 12, Op: OpCheckout, Name: "stock", Checkout: co})
	if back.Op != OpTx || back.Checkout != nil || back.Tx == nil {
		t.Fatalf("checkout did not translate: %+v", back)
	}
	want, err := CheckoutTx("stock", co)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Tx, want) {
		t.Errorf("translated envelope:\n  got  %+v\n  want %+v", back.Tx, want)
	}
	// The guard/decrement pairing is the contract the client's failed-SKU
	// mapping relies on (line i ↔ ops 2i, 2i+1).
	if len(want.Ops) != 2*len(co.Lines)+2 {
		t.Fatalf("envelope has %d ops, want %d", len(want.Ops), 2*len(co.Lines)+2)
	}
	// Non-positive quantities are refused at translation.
	if _, err := CheckoutTx("stock", &Checkout{Lines: []CheckoutLine{{SKU: "anvil", Qty: 0}}}); err == nil {
		t.Error("zero-quantity checkout translated")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{ID: 1, Status: StatusOK},
		{ID: 2, Status: StatusOK, Found: true, Value: []byte("hello")},
		{ID: 3, Status: StatusOK, Num: -7},
		{ID: 4, Status: StatusRejected, Msg: "anvil"},
		{ID: 5, Status: StatusErr, Msg: "boom"},
		{ID: 6, Status: StatusCrossShard, Msg: "mutating transaction pins 2 shards"},
		{ID: 7, Status: StatusOK, TxResults: []TxResult{
			{Status: StatusOK, Found: true, Num: 3, Value: []byte("v")},
			{Status: StatusOK},
		}},
		{ID: 8, Status: StatusRejected, Num: 1, Msg: "assert failed", TxResults: []TxResult{
			{Status: StatusOK, Num: 2},
			{Status: StatusRejected, Num: 0},
			{}, // never executed
		}},
	}
	for _, resp := range resps {
		frame := AppendResponse(nil, resp)
		payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		back, err := ParseResponse(payload)
		if err != nil {
			t.Fatalf("ParseResponse: %v", err)
		}
		if !reflect.DeepEqual(resp, back) {
			t.Errorf("round trip mismatch:\n  sent %+v\n  got  %+v", resp, back)
		}
	}
}

func TestParseRejectsMalformedFrames(t *testing.T) {
	good, err := AppendRequest(nil, &Request{ID: 9, Op: OpMapPut, Name: "m", Key: "k", Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	payload := good[4:]

	if _, err := ParseRequest(payload[:len(payload)-3]); err == nil {
		t.Error("truncated request accepted")
	}
	if _, err := ParseRequest(append(append([]byte{}, payload...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	bad := append([]byte{}, payload...)
	bad[8] = 200 // opcode byte
	if _, err := ParseRequest(bad); err == nil {
		t.Error("unknown opcode accepted")
	}
	// Guards are envelope-only sub-opcodes, not top-level requests.
	bad = append([]byte{}, payload...)
	bad[8] = OpAssertGE
	if _, err := ParseRequest(bad); err == nil {
		t.Error("guard opcode accepted at top level")
	}
	if _, err := ParseResponse([]byte{1, 2, 3}); err == nil {
		t.Error("short response accepted")
	}
	// An envelope smuggling a non-sub-opcode (a nested envelope, a stats
	// call) must be refused at decode.
	txFrame, err := AppendRequest(nil, &Request{ID: 1, Op: OpTx, Tx: &Tx{Ops: []TxOp{{Op: OpMapGet, Name: "m", Key: "k"}}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range []uint8{OpTx, OpStats, OpPing, OpCheckout, 99} {
		bad = append([]byte{}, txFrame[4:]...)
		// The sub-op byte sits right after the common header (id 8 + op 1
		// + name u16 + key u16 + value u32 + delta 8) plus the u16 count.
		bad[8+1+2+2+4+8+2] = op
		if _, err := ParseRequest(bad); err == nil {
			t.Errorf("sub-opcode %d accepted inside an envelope", op)
		}
	}
}

// TestParseResponseRejectsUnknownStatus covers the status byte the same
// way unknown opcodes are covered: top-level and per-sub-op result
// statuses outside the defined set are decode errors, not silently
// accepted values.
func TestParseResponseRejectsUnknownStatus(t *testing.T) {
	frame := AppendResponse(nil, &Response{ID: 1, Status: StatusOK})
	payload := append([]byte{}, frame[4:]...)
	for _, st := range []uint8{0, StatusNotPrimary + 1, 200} {
		payload[8] = st
		if _, err := ParseResponse(payload); err == nil {
			t.Errorf("status %d accepted", st)
		}
	}
	frame = AppendResponse(nil, &Response{ID: 1, Status: StatusOK, TxResults: []TxResult{{Status: StatusOK}}})
	payload = append([]byte{}, frame[4:]...)
	// The sub-result status byte follows the fixed body (id 8 + status 1
	// + found 1 + num 8 + value u32 + msg u16) plus the u16 count.
	off := 8 + 1 + 1 + 8 + 4 + 2 + 2
	for _, st := range []uint8{StatusCrossShard + 1, 255} {
		payload[off] = st
		if _, err := ParseResponse(payload); err == nil {
			t.Errorf("sub-result status %d accepted", st)
		}
	}
	// Status 0 IS legal for a sub-result: the op never executed.
	payload[off] = 0
	if _, err := ParseResponse(payload); err != nil {
		t.Errorf("unexecuted sub-result rejected: %v", err)
	}
}

func TestAppendRequestRejectsOversizeFields(t *testing.T) {
	long := strings.Repeat("k", 1<<16)
	cases := []*Request{
		{Op: OpMapGet, Name: "m", Key: long},
		{Op: OpMapGet, Name: long},
		{Op: OpMapPut, Name: "m", Key: "k", Value: make([]byte, MaxFrame/2+1)},
		{Op: OpCheckout, Name: "stock", Checkout: &Checkout{Lines: []CheckoutLine{{SKU: long, Qty: 1}}}},
		{Op: OpCheckout, Name: "stock", Checkout: &Checkout{Sold: long}},
	}
	for i, req := range cases {
		if _, err := AppendRequest(nil, req); err == nil {
			t.Errorf("case %d: oversize field accepted", i)
		}
	}
}

func TestAppendResponseClampsOversizeMsg(t *testing.T) {
	resp := &Response{ID: 1, Status: StatusErr, Msg: strings.Repeat("e", 1<<16+10)}
	frame := AppendResponse(nil, resp)
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Msg) != 1<<16-1 {
		t.Errorf("msg came back with %d bytes", len(back.Msg))
	}
	if resp.Msg[:10] != back.Msg[:10] {
		t.Error("clamped msg lost its prefix")
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr[:]))); err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestInt64Encoding(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		got, err := DecodeInt64(EncodeInt64(v))
		if err != nil || got != v {
			t.Errorf("round trip %d → %d, %v", v, got, err)
		}
	}
	if _, err := DecodeInt64([]byte{1, 2}); err == nil {
		t.Error("short int64 accepted")
	}
}

func TestStreamOfFrames(t *testing.T) {
	var stream []byte
	for i := 0; i < 5; i++ {
		var err error
		stream, err = AppendRequest(stream, &Request{ID: uint64(i), Op: OpPing})
		if err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for i := 0; i < 5; i++ {
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		req, err := ParseRequest(payload)
		if err != nil || req.ID != uint64(i) {
			t.Fatalf("frame %d: %+v, %v", i, req, err)
		}
	}
}
