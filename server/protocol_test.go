package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

func roundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	frame, err := AppendRequest(nil, req)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	back, err := ParseRequest(payload)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	return back
}

func TestRequestRoundTripEveryOp(t *testing.T) {
	reqs := []*Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpMapGet, Name: "m", Key: "k"},
		{ID: 3, Op: OpMapPut, Name: "m", Key: "k", Value: []byte("v")},
		{ID: 4, Op: OpMapDelete, Name: "m", Key: "k"},
		{ID: 5, Op: OpMapLen, Name: "m"},
		{ID: 6, Op: OpQueuePush, Name: "q", Value: []byte{0, 1, 2}},
		{ID: 7, Op: OpQueuePop, Name: "q"},
		{ID: 8, Op: OpQueueLen, Name: "q"},
		{ID: 9, Op: OpCounterAdd, Name: "c", Delta: -42},
		{ID: 10, Op: OpCounterSum, Name: "c"},
		{ID: 11, Op: OpStats},
		{ID: 12, Op: OpCheckout, Name: "stock", Checkout: &Checkout{
			Sold:    "sold",
			Revenue: "rev",
			Cents:   1250,
			Lines:   []CheckoutLine{{SKU: "anvil", Qty: 2}, {SKU: "cog", Qty: 1}},
		}},
	}
	for _, req := range reqs {
		back := roundTripRequest(t, req)
		// Non-checkout requests decode with a nil Checkout; empty slices
		// normalize to nil.
		if !reflect.DeepEqual(req, back) {
			t.Errorf("op %d: round trip mismatch:\n  sent %+v\n  got  %+v", req.Op, req, back)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{ID: 1, Status: StatusOK},
		{ID: 2, Status: StatusOK, Found: true, Value: []byte("hello")},
		{ID: 3, Status: StatusOK, Num: -7},
		{ID: 4, Status: StatusRejected, Msg: "anvil"},
		{ID: 5, Status: StatusErr, Msg: "boom"},
	}
	for _, resp := range resps {
		frame := AppendResponse(nil, resp)
		payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		back, err := ParseResponse(payload)
		if err != nil {
			t.Fatalf("ParseResponse: %v", err)
		}
		if !reflect.DeepEqual(resp, back) {
			t.Errorf("round trip mismatch:\n  sent %+v\n  got  %+v", resp, back)
		}
	}
}

func TestParseRejectsMalformedFrames(t *testing.T) {
	good, err := AppendRequest(nil, &Request{ID: 9, Op: OpMapPut, Name: "m", Key: "k", Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	payload := good[4:]

	if _, err := ParseRequest(payload[:len(payload)-3]); err == nil {
		t.Error("truncated request accepted")
	}
	if _, err := ParseRequest(append(append([]byte{}, payload...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	bad := append([]byte{}, payload...)
	bad[8] = 200 // opcode byte
	if _, err := ParseRequest(bad); err == nil {
		t.Error("unknown opcode accepted")
	}
	if _, err := ParseResponse([]byte{1, 2, 3}); err == nil {
		t.Error("short response accepted")
	}
}

func TestAppendRequestRejectsOversizeFields(t *testing.T) {
	long := strings.Repeat("k", 1<<16)
	cases := []*Request{
		{Op: OpMapGet, Name: "m", Key: long},
		{Op: OpMapGet, Name: long},
		{Op: OpMapPut, Name: "m", Key: "k", Value: make([]byte, MaxFrame/2+1)},
		{Op: OpCheckout, Name: "stock", Checkout: &Checkout{Lines: []CheckoutLine{{SKU: long, Qty: 1}}}},
		{Op: OpCheckout, Name: "stock", Checkout: &Checkout{Sold: long}},
	}
	for i, req := range cases {
		if _, err := AppendRequest(nil, req); err == nil {
			t.Errorf("case %d: oversize field accepted", i)
		}
	}
}

func TestAppendResponseClampsOversizeMsg(t *testing.T) {
	resp := &Response{ID: 1, Status: StatusErr, Msg: strings.Repeat("e", 1<<16+10)}
	frame := AppendResponse(nil, resp)
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Msg) != 1<<16-1 {
		t.Errorf("msg came back with %d bytes", len(back.Msg))
	}
	if resp.Msg[:10] != back.Msg[:10] {
		t.Error("clamped msg lost its prefix")
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr[:]))); err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestInt64Encoding(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		got, err := DecodeInt64(EncodeInt64(v))
		if err != nil || got != v {
			t.Errorf("round trip %d → %d, %v", v, got, err)
		}
	}
	if _, err := DecodeInt64([]byte{1, 2}); err == nil {
		t.Error("short int64 accepted")
	}
}

func TestStreamOfFrames(t *testing.T) {
	var stream []byte
	for i := 0; i < 5; i++ {
		var err error
		stream, err = AppendRequest(stream, &Request{ID: uint64(i), Op: OpPing})
		if err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for i := 0; i < 5; i++ {
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		req, err := ParseRequest(payload)
		if err != nil || req.ID != uint64(i) {
			t.Fatalf("frame %d: %+v, %v", i, req, err)
		}
	}
}
