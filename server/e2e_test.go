package server_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pnstm/client"
	"pnstm/server"
)

// startServer boots an in-process pnstmd on a kernel-chosen port and
// tears it down at cleanup.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()
	t.Cleanup(func() {
		s.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s
}

func dial(t *testing.T, s *server.Server, conns int) *client.Client {
	t.Helper()
	cl, err := client.Connect(client.Options{Addrs: []string{s.Addr().String()}, PoolSize: conns})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// runMixedTraffic drives the mixed workload from several goroutines each
// with its own client connection, checking every response against a
// sequential per-partition oracle:
//
//   - map: each goroutine owns a disjoint key range of the shared map and
//     replays its random put/delete/get script against a local model —
//     every get must match the model exactly;
//   - counter: everyone hammers one shared counter; the final sum must
//     equal the sum of all issued deltas;
//   - queue: each goroutine pushes a sequence into its own queue and pops
//     it back — pops must come out FIFO.
func runMixedTraffic(t *testing.T, s *server.Server, goroutines, opsPer int) {
	t.Helper()
	var wg sync.WaitGroup
	var deltaTotal int64
	var deltaMu sync.Mutex
	errs := make(chan error, goroutines)

	for g := 0; g < goroutines; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			model := make(map[string]string)
			var localDelta int64
			var pushed, popped int
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("g%d-k%d", g, rng.Intn(16))
				switch rng.Intn(6) {
				case 0, 1: // put
					val := fmt.Sprintf("v%d-%d", g, i)
					if err := cl.MapPut("m", key, []byte(val)); err != nil {
						errs <- err
						return
					}
					model[key] = val
				case 2: // get, checked against the oracle
					got, ok, err := cl.MapGet("m", key)
					if err != nil {
						errs <- err
						return
					}
					want, wantOK := model[key]
					if ok != wantOK || (ok && string(got) != want) {
						errs <- fmt.Errorf("g%d: map[%s] = %q,%v want %q,%v", g, key, got, ok, want, wantOK)
						return
					}
				case 3: // delete
					found, err := cl.MapDelete("m", key)
					if err != nil {
						errs <- err
						return
					}
					_, wantOK := model[key]
					if found != wantOK {
						errs <- fmt.Errorf("g%d: delete(%s) = %v want %v", g, key, found, wantOK)
						return
					}
					delete(model, key)
				case 4: // counter add
					d := int64(rng.Intn(9) - 4)
					if err := cl.CounterAdd("hits", d); err != nil {
						errs <- err
						return
					}
					localDelta += d
				case 5: // queue push, then pop when the backlog grows
					if err := cl.QueuePush(fmt.Sprintf("q%d", g), server.EncodeInt64(int64(pushed))); err != nil {
						errs <- err
						return
					}
					pushed++
					if pushed-popped >= 4 {
						raw, ok, err := cl.QueuePop(fmt.Sprintf("q%d", g))
						if err != nil {
							errs <- err
							return
						}
						if !ok {
							errs <- fmt.Errorf("g%d: queue unexpectedly empty", g)
							return
						}
						v, _ := server.DecodeInt64(raw)
						if v != int64(popped) {
							errs <- fmt.Errorf("g%d: pop = %d want %d (FIFO violated)", g, v, popped)
							return
						}
						popped++
					}
				}
			}
			// Drain the queue and verify the FIFO tail.
			for popped < pushed {
				raw, ok, err := cl.QueuePop(fmt.Sprintf("q%d", g))
				if err != nil || !ok {
					errs <- fmt.Errorf("g%d: drain pop: %v %v", g, ok, err)
					return
				}
				v, _ := server.DecodeInt64(raw)
				if v != int64(popped) {
					errs <- fmt.Errorf("g%d: drain pop = %d want %d", g, v, popped)
					return
				}
				popped++
			}
			// Final read-back of the whole owned partition.
			for key, want := range model {
				got, ok, err := cl.MapGet("m", key)
				if err != nil {
					errs <- err
					return
				}
				if !ok || string(got) != want {
					errs <- fmt.Errorf("g%d: final map[%s] = %q,%v want %q", g, key, got, ok, want)
					return
				}
			}
			deltaMu.Lock()
			deltaTotal += localDelta
			deltaMu.Unlock()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	cl := dial(t, s, 1)
	sum, err := cl.CounterSum("hits")
	if err != nil {
		t.Fatal(err)
	}
	if sum != deltaTotal {
		t.Errorf("counter = %d want %d", sum, deltaTotal)
	}
	for g := 0; g < goroutines; g++ {
		if n, err := cl.QueueLen(fmt.Sprintf("q%d", g)); err != nil || n != 0 {
			t.Errorf("queue q%d: len %d, %v; want empty", g, n, err)
		}
	}
}

func TestE2EMixedTrafficBatched(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, MaxBatch: 32, BatchDelay: 200 * time.Microsecond})
	runMixedTraffic(t, s, 8, 150)
	st := s.Stats()
	if st.Requests == 0 || st.Batches == 0 {
		t.Fatalf("no batches recorded: %+v", st)
	}
	t.Logf("batches=%d requests=%d mean=%.2f largest=%d aborts=%.4f",
		st.Batches, st.Requests, st.MeanBatch, st.LargestBatch, st.RuntimeAborts)
}

// TestE2EMixedTrafficBatchSize1 runs the same oracle under the no-group
// baseline (every request its own root transaction).
func TestE2EMixedTrafficBatchSize1(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, MaxBatch: 1})
	runMixedTraffic(t, s, 4, 80)
	if st := s.Stats(); st.LargestBatch > 1 {
		t.Errorf("MaxBatch 1 produced a batch of %d", st.LargestBatch)
	}
}

// TestE2EMixedTrafficSerialRuntime runs the oracle under the
// serial-nesting runtime baseline: batches still form, but every nested
// child executes inline sequentially. Exercises that the single batcher
// goroutine is the only Run caller (Serial runtimes forbid concurrent
// Run).
func TestE2EMixedTrafficSerialRuntime(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, MaxBatch: 16, Serial: true, BatchDelay: 200 * time.Microsecond})
	runMixedTraffic(t, s, 4, 80)
}

// TestE2EGroupCommitForms proves the batcher actually coalesces: many
// concurrent one-shot clients inside a generous batching window must
// produce at least one multi-request batch.
func TestE2EGroupCommitForms(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, MaxBatch: 64, BatchDelay: 20 * time.Millisecond})
	const clients = 16
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := cl.CounterAdd("c", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.LargestBatch < 2 {
		t.Fatalf("no group commit formed: %+v", st)
	}
	if st.MeanBatch <= 1 {
		t.Errorf("mean batch %.2f, want > 1", st.MeanBatch)
	}
	cl := dial(t, s, 1)
	if sum, err := cl.CounterSum("c"); err != nil || sum != clients*20 {
		t.Errorf("counter = %d, %v want %d", sum, err, clients*20)
	}
	t.Logf("batches=%d requests=%d mean=%.2f largest=%d", st.Batches, st.Requests, st.MeanBatch, st.LargestBatch)
}

// TestE2EPipelinedReadHeavy exercises MaxInflight > 1 (concurrent group
// commits) with SharedReads on read-dominant traffic — the configuration
// pipelining is meant for — and checks the read-your-writes oracle still
// holds per key partition.
func TestE2EPipelinedReadHeavy(t *testing.T) {
	s := startServer(t, server.Config{
		Workers: 4, MaxBatch: 32, MaxInflight: 4, SharedReads: true,
	})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			model := make(map[string]string)
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-k%d", g, rng.Intn(8))
				if rng.Intn(10) == 0 { // 90% reads
					val := fmt.Sprintf("v%d", i)
					if err := cl.MapPut("m", key, []byte(val)); err != nil {
						errs <- err
						return
					}
					model[key] = val
				} else {
					got, ok, err := cl.MapGet("m", key)
					if err != nil {
						errs <- err
						return
					}
					want, wantOK := model[key]
					if ok != wantOK || (ok && string(got) != want) {
						errs <- fmt.Errorf("g%d: map[%s] = %q,%v want %q,%v", g, key, got, ok, want, wantOK)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestE2ECheckoutConservation drives the cross-structure checkout
// scenario to stock exhaustion from many connections and verifies the
// conservation invariants: units never created or destroyed, revenue
// consistent with units sold, rejected checkouts fully rolled back.
func TestE2ECheckoutConservation(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, MaxBatch: 32, BatchDelay: 200 * time.Microsecond})
	const (
		skus       = 6
		initialPer = 40
		clients    = 6
		orders     = 60 // demand ≫ supply: forces rejections
	)
	setup := dial(t, s, 1)
	for i := 0; i < skus; i++ {
		if err := setup.MapPutInt("stock", fmt.Sprintf("sku%d", i), initialPer); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	var accepted, rejected int64
	var mu sync.Mutex
	for g := 0; g < clients; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			var acc, rej int64
			for i := 0; i < orders; i++ {
				nLines := 1 + rng.Intn(3)
				var lines []server.CheckoutLine
				var units int64
				seen := map[int]bool{}
				for len(lines) < nLines {
					sku := rng.Intn(skus)
					if seen[sku] {
						continue
					}
					seen[sku] = true
					qty := int64(1 + rng.Intn(3))
					lines = append(lines, server.CheckoutLine{SKU: fmt.Sprintf("sku%d", sku), Qty: qty})
					units += qty
				}
				ok, _, err := cl.Checkout("stock", server.Checkout{
					Sold:    "sold",
					Revenue: "revenue",
					Cents:   units * 100,
					Lines:   lines,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					acc++
				} else {
					rej++
				}
			}
			mu.Lock()
			accepted += acc
			rejected += rej
			mu.Unlock()
		}()
	}
	wg.Wait()

	if accepted == 0 || rejected == 0 {
		t.Fatalf("workload should both accept and reject: accepted=%d rejected=%d", accepted, rejected)
	}

	cl := dial(t, s, 1)
	var remaining int64
	for i := 0; i < skus; i++ {
		v, ok, err := cl.MapGetInt("stock", fmt.Sprintf("sku%d", i))
		if err != nil || !ok {
			t.Fatalf("stock sku%d: %v %v", i, ok, err)
		}
		if v < 0 {
			t.Errorf("sku%d oversold: %d on hand", i, v)
		}
		remaining += v
	}
	sold, err := cl.CounterSum("sold")
	if err != nil {
		t.Fatal(err)
	}
	revenue, err := cl.CounterSum("revenue")
	if err != nil {
		t.Fatal(err)
	}
	if total := remaining + sold; total != skus*initialPer {
		t.Errorf("conservation violated: remaining %d + sold %d = %d, want %d",
			remaining, sold, total, skus*initialPer)
	}
	if revenue != sold*100 {
		t.Errorf("revenue %d inconsistent with %d units sold", revenue, sold)
	}
	t.Logf("accepted=%d rejected=%d sold=%d remaining=%d", accepted, rejected, sold, remaining)
}

// TestE2EClientErrors covers the failure surface the review flagged:
// unencodable requests fail the single call (not the connection), and a
// malformed checkout (non-positive quantity) is rejected server-side
// without touching the store.
func TestE2EClientErrors(t *testing.T) {
	s := startServer(t, server.Config{Workers: 2, MaxBatch: 8})
	cl := dial(t, s, 1)

	if err := cl.MapPutInt("stock", "sku0", 10); err != nil {
		t.Fatal(err)
	}

	// Oversize key: the client refuses to encode it and the connection
	// stays usable.
	longKey := string(make([]byte, 1<<16))
	if _, _, err := cl.MapGet("m", longKey); err == nil {
		t.Error("oversize key did not error")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unusable after rejected request: %v", err)
	}

	// Negative quantity: server-side StatusErr, stock untouched.
	_, _, err := cl.Checkout("stock", server.Checkout{
		Sold:  "sold",
		Lines: []server.CheckoutLine{{SKU: "sku0", Qty: -5}},
	})
	if err == nil {
		t.Error("negative-quantity checkout did not error")
	}
	if v, ok, err := cl.MapGetInt("stock", "sku0"); err != nil || !ok || v != 10 {
		t.Errorf("stock after bad checkout = %d,%v,%v want 10", v, ok, err)
	}
	if sold, err := cl.CounterSum("sold"); err != nil || sold != 0 {
		t.Errorf("sold after bad checkout = %d,%v want 0", sold, err)
	}
}

// TestE2EStatsAndPing covers the connection-level ops.
func TestE2EStatsAndPing(t *testing.T) {
	s := startServer(t, server.Config{Workers: 2, MaxBatch: 8})
	cl := dial(t, s, 2)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := cl.CounterAdd("c", 5); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.MaxBatch != 8 || st.Requests == 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.Runtime.Committed == 0 {
		t.Errorf("runtime stats missing: %+v", st.Runtime)
	}
}
