package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pnstm"
)

// The conflict profiler (D36) turns the runtimes' flight-recorder
// streams into an operator-facing answer to "WHAT is aborting": a
// background goroutine drains every shard's trace rings on a short
// cadence, attributes each abort/escalation to a key — the victim
// request's name:key tag when the batcher stamped one, else the label
// of the object that failed validation — and folds the attributions
// into a space-saving top-K sketch. GET /debug/hotkeys serves the
// ranked table; /metrics exports it as pnstm_hotkey_aborts. The same
// goroutine owns the crisis dump (D37): when any shard's runtime takes
// the crisis token, the whole flight recorder is written to a
// timestamped JSON file in the data directory.

// profilePollInterval is the ring-drain cadence. Each per-slot ring
// holds 4096 events, so even a shard aborting 100k times a second
// stays well inside a ring between polls.
const profilePollInterval = 250 * time.Millisecond

// hotKeyCapacity is the space-saving sketch's entry budget. The sketch
// guarantees any key with true count > N/capacity (N = total
// attributed aborts) is present, which is far finer than "top handful
// of hot keys" needs.
const hotKeyCapacity = 256

// crisisDumpDebounce is the minimum gap between flight-recorder dump
// files: a livelocked shard can take the crisis token repeatedly, and
// each dump snapshots the same recent history anyway.
const crisisDumpDebounce = 5 * time.Second

// HotKey is one entry of the ranked conflict table: Count aborts and
// escalations were attributed to Key; the true count lies in
// [Count-Err, Count] (Err is the space-saving overcount bound, nonzero
// only for keys that inherited an evicted entry's count).
type HotKey struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// hotEntry is one live sketch slot.
type hotEntry struct {
	key  string
	n, e uint64
}

// spaceSaving is the Metwally et al. top-K frequency sketch: a bounded
// key table where an unseen key evicts the current minimum and
// inherits its count as an error bound. O(capacity) per eviction —
// fine off the hot path (only the profiler goroutine observes).
type spaceSaving struct {
	mu  sync.Mutex
	cap int
	m   map[string]*hotEntry
}

func newSpaceSaving(capacity int) *spaceSaving {
	return &spaceSaving{cap: capacity, m: make(map[string]*hotEntry, capacity)}
}

func (t *spaceSaving) observe(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.m[key]; e != nil {
		e.n++
		return
	}
	if len(t.m) < t.cap {
		t.m[key] = &hotEntry{key: key, n: 1}
		return
	}
	var min *hotEntry
	for _, e := range t.m {
		if min == nil || e.n < min.n {
			min = e
		}
	}
	delete(t.m, min.key)
	t.m[key] = &hotEntry{key: key, n: min.n + 1, e: min.n}
}

// top returns the n highest-count entries, count-descending (key
// ascending on ties, so the ranking is deterministic).
func (t *spaceSaving) top(n int) []HotKey {
	t.mu.Lock()
	out := make([]HotKey, 0, len(t.m))
	for _, e := range t.m {
		out = append(out, HotKey{Key: e.key, Count: e.n, Err: e.e})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// traceProfiler owns the ring cursors, the sketch and the crisis dump.
type traceProfiler struct {
	s *Server

	pollMu  sync.Mutex // serializes poll (loop tick vs on-demand HotKeys)
	cursors [][]uint64 // per shard, per ring

	sketch              *spaceSaving
	aborts, escalations atomic.Uint64 // attributed events folded so far

	crisisCh chan struct{}
	dumps    atomic.Uint64 // dump files written

	stop chan struct{}
	done chan struct{}
}

func newTraceProfiler(s *Server) *traceProfiler {
	p := &traceProfiler{
		s:        s,
		cursors:  make([][]uint64, len(s.shards)),
		sketch:   newSpaceSaving(hotKeyCapacity),
		crisisCh: make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i, sh := range s.shards {
		p.cursors[i] = make([]uint64, sh.rt.TraceRings())
	}
	go p.loop()
	return p
}

func (p *traceProfiler) close() {
	close(p.stop)
	<-p.done
}

// noteCrisis is each shard runtime's crisis hook. It must not block —
// it runs on the struggling root's goroutine — so the signal collapses
// into a single pending dump.
func (p *traceProfiler) noteCrisis() {
	select {
	case p.crisisCh <- struct{}{}:
	default:
	}
}

func (p *traceProfiler) loop() {
	defer close(p.done)
	ticker := time.NewTicker(profilePollInterval)
	defer ticker.Stop()
	var lastDump time.Time
	for {
		select {
		case <-ticker.C:
			p.poll()
		case <-p.crisisCh:
			p.poll() // the events leading into the crisis belong in the dump
			if time.Since(lastDump) >= crisisDumpDebounce {
				lastDump = time.Now()
				p.dumpFlightRecorder()
			}
		case <-p.stop:
			p.poll()
			return
		}
	}
}

// poll drains every shard's conflict rings since the last poll and
// folds each abort/escalation into the sketch. Only the conflict rings:
// they carry abort/escalate/crisis events exclusively (recorded even
// under lifecycle sampling), so the steady-state poll cost scales with
// the conflict rate, not the transaction rate (D38). Attribution
// prefers the victim request's tag (the name:key the batcher stamped —
// exact per-key attribution) and falls back to the conflicting object's
// label (bucket or stripe granularity, still actionable).
func (p *traceProfiler) poll() {
	p.pollMu.Lock()
	defer p.pollMu.Unlock()
	for i, sh := range p.s.shards {
		events, cursors := sh.rt.TraceReadConflicts(p.cursors[i])
		p.cursors[i] = cursors
		for j := range events {
			ev := &events[j]
			switch ev.Kind {
			case pnstm.EvAbort:
				p.aborts.Add(1)
			case pnstm.EvEscalate:
				p.escalations.Add(1)
			default:
				continue
			}
			key := ev.Tag
			if key == "" {
				key = ev.Obj
			}
			if key == "" {
				continue
			}
			p.sketch.observe(key)
		}
	}
}

// HotKeysReport is the GET /debug/hotkeys payload.
type HotKeysReport struct {
	Tracing      bool     `json:"tracing"`
	Top          []HotKey `json:"top"`
	Aborts       uint64   `json:"attributed_aborts"`
	Escalations  uint64   `json:"attributed_escalations"`
	TraceEvents  uint64   `json:"trace_events"`
	TraceDropped uint64   `json:"trace_dropped"`
	Dumps        uint64   `json:"crisis_dumps"`
}

// HotKeys polls the rings synchronously (so the report reflects
// everything recorded before the call, not the last tick) and renders
// the ranked table.
func (s *Server) HotKeys(n int) HotKeysReport {
	s.prof.poll()
	var events, dropped uint64
	for _, sh := range s.shards {
		e, d := sh.rt.TraceStats()
		events += e
		dropped += d
	}
	return HotKeysReport{
		Tracing:      s.shards[0].rt.TracingEnabled(),
		Top:          s.prof.sketch.top(n),
		Aborts:       s.prof.aborts.Load(),
		Escalations:  s.prof.escalations.Load(),
		TraceEvents:  events,
		TraceDropped: dropped,
		Dumps:        s.prof.dumps.Load(),
	}
}

// ShardTrace is one shard's slice of a trace dump: its retained events
// in timestamp order.
type ShardTrace struct {
	Shard  int                `json:"shard"`
	Events []pnstm.TraceEvent `json:"events"`
}

// TraceWindow snapshots every shard's flight recorder and keeps the
// events of the trailing window (zero: everything retained). Serves
// GET /debug/trace?secs=N.
func (s *Server) TraceWindow(window time.Duration) []ShardTrace {
	var cut int64
	if window > 0 {
		cut = time.Now().Add(-window).UnixNano()
	}
	out := make([]ShardTrace, len(s.shards))
	for i, sh := range s.shards {
		events := sh.rt.TraceSnapshot()
		kept := events[:0]
		if events == nil {
			kept = []pnstm.TraceEvent{} // idle shard: JSON [], not null
		}
		for _, ev := range events {
			if ev.TS >= cut {
				kept = append(kept, ev)
			}
		}
		sort.Slice(kept, func(a, b int) bool { return kept[a].TS < kept[b].TS })
		out[i] = ShardTrace{Shard: sh.id, Events: kept}
	}
	return out
}

// flightDump is the crisis dump file's schema.
type flightDump struct {
	WrittenAt time.Time     `json:"written_at"`
	Reason    string        `json:"reason"`
	Shards    []ShardTrace  `json:"shards"`
	HotKeys   HotKeysReport `json:"hot_keys"`
}

// dumpFlightRecorder writes the full retained trace to a timestamped
// file in the data directory (memory-only servers skip the file; the
// evidence is still live on /debug/trace). Runs on the profiler
// goroutine only.
func (p *traceProfiler) dumpFlightRecorder() {
	s := p.s
	if s.cfg.DataDir == "" {
		return
	}
	dump := flightDump{
		WrittenAt: time.Now(),
		Reason:    "crisis token engaged",
		Shards:    s.TraceWindow(0),
		HotKeys:   s.HotKeys(32),
	}
	blob, err := json.MarshalIndent(&dump, "", "  ")
	if err != nil {
		s.log.Error("flight recorder dump failed to encode", "err", err)
		return
	}
	name := fmt.Sprintf("flight-%s.json", dump.WrittenAt.UTC().Format("20060102T150405.000"))
	path := filepath.Join(s.cfg.DataDir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		s.log.Error("flight recorder dump failed to write", "path", path, "err", err)
		return
	}
	p.dumps.Add(1)
	s.log.Warn("crisis: flight recorder dumped", "path", path, "shards", len(dump.Shards))
}

// SetTracing flips lifecycle-event recording on every shard's runtime
// (the PUT /config "tracing" knob). The profiler keeps running either
// way — with tracing off the rings simply stay quiet.
func (s *Server) SetTracing(on bool) {
	for _, sh := range s.shards {
		sh.rt.EnableTracing(on)
	}
}

// TracingEnabled reports whether the shards record lifecycle events.
func (s *Server) TracingEnabled() bool { return s.shards[0].rt.TracingEnabled() }
