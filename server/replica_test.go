package server_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pnstm/client"
	"pnstm/server"
)

// waitCaughtUp polls a replica's watermarks until every shard's stream
// is connected and applied has reached the reported head — i.e. nothing
// the primary logged is still in flight.
func waitCaughtUp(t *testing.T, r *server.Server) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := r.ReplicaStatus()
		caught := len(st.Shards) > 0
		for _, sh := range st.Shards {
			if !sh.Connected || sh.StalenessMs < 0 || sh.AppliedLSN < sh.HeadLSN {
				caught = false
				break
			}
		}
		if caught {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not catch up: %+v", st.Shards)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicaEndToEnd is the D39–D41 happy path in one process: a
// durable primary ships its WALs to a replica, the replica serves the
// data read-only with sane watermarks, and refuses mutations with the
// redirect status the client surfaces as ErrNotPrimary.
func TestReplicaEndToEnd(t *testing.T) {
	dir := t.TempDir()
	primary := startServer(t, server.Config{DataDir: dir, Shards: 2})
	replica := startServer(t, server.Config{Shards: 2, ReplicaOf: primary.Addr().String()})

	// Seed the primary across structure types, including a cross-shard
	// envelope so a GSN record rides the stream too.
	pcl := dial(t, primary, 2)
	for _, kv := range [][2]string{{"alpha", "1"}, {"beta", "2"}, {"gamma", "3"}} {
		if err := pcl.MapPut("m", kv[0], []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := pcl.CounterAdd("hits", 41); err != nil {
		t.Fatal(err)
	}
	if err := pcl.QueuePush("q", []byte("job")); err != nil {
		t.Fatal(err)
	}
	tx := pcl.Txn()
	tx.MapAddInt("bal:a", "x", -5)
	tx.MapAddInt("bal:b", "x", 5)
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	waitCaughtUp(t, replica)

	// Reads through the redesigned client API, pinned to the replica.
	rcl, err := client.Connect(client.Options{
		Addrs:          []string{replica.Addr().String()},
		PoolSize:       2,
		ReadPreference: client.ReadReplicaRequired,
		MaxStaleness:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rcl.Close)

	if v, ok, err := rcl.MapGet("m", "beta"); err != nil || !ok || string(v) != "2" {
		t.Fatalf("replica MapGet = %q, %v, %v", v, ok, err)
	}
	if n, err := rcl.CounterSum("hits"); err != nil || n != 41 {
		t.Fatalf("replica CounterSum = %d, %v", n, err)
	}
	if n, err := rcl.QueueLen("q"); err != nil || n != 1 {
		t.Fatalf("replica QueueLen = %d, %v", n, err)
	}
	for _, name := range []string{"bal:a", "bal:b"} {
		want := int64(-5)
		if name == "bal:b" {
			want = 5
		}
		if n, ok, err := rcl.MapGetInt(name, "x"); err != nil || !ok || n != want {
			t.Fatalf("replica %s[x] = %d, %v, %v (want %d)", name, n, ok, err, want)
		}
	}

	// Mutations must bounce with the redirect error, leaving the data
	// untouched.
	if err := rcl.MapPut("m", "alpha", []byte("nope")); !errors.Is(err, client.ErrNotPrimary) {
		t.Fatalf("replica MapPut err = %v, want ErrNotPrimary", err)
	}
	wtx := rcl.Txn()
	wtx.MapPut("m", "alpha", []byte("nope"))
	if _, err := wtx.Commit(); !errors.Is(err, client.ErrNotPrimary) {
		t.Fatalf("replica Txn commit err = %v, want ErrNotPrimary", err)
	}
	if v, _, err := rcl.MapGet("m", "alpha"); err != nil || string(v) != "1" {
		t.Fatalf("refused write mutated the replica: m[alpha] = %q, %v", v, err)
	}

	// New writes keep flowing: the tail is live, not a one-shot sync.
	if err := pcl.MapPut("m", "delta", []byte("4")); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, replica)
	if v, ok, err := rcl.MapGet("m", "delta"); err != nil || !ok || string(v) != "4" {
		t.Fatalf("post-catchup MapGet(delta) = %q, %v, %v", v, ok, err)
	}

	// Watermarks: role/primary/shape come straight off ReplicaStatus.
	st := replica.ReplicaStatus()
	if st.Role != "replica" || st.Promoted || st.Primary != primary.Addr().String() {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("status has %d shards, want 2", len(st.Shards))
	}
	for _, sh := range st.Shards {
		if !sh.Connected || sh.StalenessMs < 0 || sh.AppliedLSN == 0 || sh.AppliedLSN < sh.HeadLSN {
			t.Fatalf("shard watermark not sane: %+v", sh)
		}
	}
	if pst := primary.ReplicaStatus(); pst.Role != "primary" || len(pst.Shards) != 0 {
		t.Fatalf("primary status = %+v", pst)
	}
}

// TestReplicaPromote: failover is the flip of one atomic (D42) — a
// promoted replica accepts mutations on already-open connections and
// reports itself a primary; a second promote is a no-op.
func TestReplicaPromote(t *testing.T) {
	dir := t.TempDir()
	primary := startServer(t, server.Config{DataDir: dir})
	replica := startServer(t, server.Config{ReplicaOf: primary.Addr().String()})

	pcl := dial(t, primary, 1)
	if err := pcl.MapPut("m", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, replica)

	// Dial the replica BEFORE promoting: the redirect and the post-promote
	// accept must both happen on the same pool (the server is
	// authoritative, not the handshake-time role snapshot).
	rcl := dial(t, replica, 1)
	if err := rcl.MapPut("m", "k2", []byte("v2")); !errors.Is(err, client.ErrNotPrimary) {
		t.Fatalf("pre-promote MapPut err = %v, want ErrNotPrimary", err)
	}

	if !replica.Promote() {
		t.Fatal("Promote() = false on an unpromoted replica")
	}
	if replica.Promote() {
		t.Fatal("second Promote() = true, want no-op")
	}
	if primary.Promote() {
		t.Fatal("Promote() = true on a primary")
	}

	if err := rcl.MapPut("m", "k2", []byte("v2")); err != nil {
		t.Fatalf("post-promote MapPut: %v", err)
	}
	if v, ok, err := rcl.MapGet("m", "k2"); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("post-promote MapGet = %q, %v, %v", v, ok, err)
	}
	st := replica.ReplicaStatus()
	if st.Role != "primary" || !st.Promoted {
		t.Fatalf("post-promote status = %+v", st)
	}
}

// TestReplicaStalenessBoundRefusesReads: a connection that declared a
// staleness bound in its Hello gets StatusNotPrimary instead of stale
// data when the replica has never caught up (here: the primary address
// points at nothing).
func TestReplicaStalenessBoundRefusesReads(t *testing.T) {
	replica := startServer(t, server.Config{ReplicaOf: "127.0.0.1:1"})

	bounded, err := client.Connect(client.Options{
		Addrs:          []string{replica.Addr().String()},
		PoolSize:       1,
		ReadPreference: client.ReadReplicaRequired,
		MaxStaleness:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bounded.Close)
	if _, _, err := bounded.MapGet("m", "k"); !errors.Is(err, client.ErrNotPrimary) {
		t.Fatalf("bounded read on a syncing replica err = %v, want ErrNotPrimary", err)
	}

	// Without a bound the same read is allowed (and sees an empty store):
	// staleness gating is opt-in per connection.
	unbounded := dial(t, replica, 1)
	if _, ok, err := unbounded.MapGet("m", "k"); err != nil || ok {
		t.Fatalf("unbounded read = found=%v, %v; want miss", ok, err)
	}
}

// TestReplicaRequiredNeedsReplica: ReadReplicaRequired against a pool
// with no replica connection fails fast client-side.
func TestReplicaRequiredNeedsReplica(t *testing.T) {
	primary := startServer(t, server.Config{})
	cl, err := client.Connect(client.Options{
		Addrs:          []string{primary.Addr().String()},
		PoolSize:       1,
		ReadPreference: client.ReadReplicaRequired,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	_, _, err = cl.MapGet("m", "k")
	if !errors.Is(err, client.ErrNotPrimary) || !strings.Contains(err.Error(), "no replica") {
		t.Fatalf("ReadReplicaRequired on a primary-only pool err = %v", err)
	}
}
