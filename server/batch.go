package server

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pnstm"
	"pnstm/internal/wal"
	"pnstm/stmlib"
)

// The batching engine is where the paper's mechanism meets the network:
// concurrent in-flight requests are coalesced into a group commit. Each
// batch executes as ONE Runtime.Run root transaction whose body runs one
// nested child transaction per request, forked over parallel blocks via
// Ctx.Parallel — the shape of the paper's Figure 1 and of
// examples/inventory's order batches. The children conflict-check
// against each other with the one-word ancestor test, a request whose
// precondition fails (checkout without stock) rolls back alone as a
// nested abort, and the batch commits as a unit.
//
// Group commit amortizes the root begin/commit and the fork/join over
// the whole batch, and the nested children recruit every worker slot —
// so a server under concurrent load runs the paper's benchmark shape
// continuously. MaxBatch 1 degenerates into serial one-request
// transactions, which is the baseline the load generator compares
// against.
//
// A sharded server runs one batcher PER SHARD, each against its shard's
// private runtime, registry and WAL: the commit-ticket sequence below
// orders requests within one shard's log, and batches on different
// shards — disjoint structure sets by construction — execute, fsync and
// ack fully in parallel.

// pending is one request waiting for its batch, plus the route back to
// its connection. seq/logged are the durability bookkeeping: seq is the
// request's position in the batch's commit order (stamped inside its
// transaction, see execute), logged whether it mutated the store and
// therefore goes to the WAL.
type pending struct {
	req     *Request
	resp    Response
	deliver func(Response)
	seq     uint64
	logged  bool
}

// errRejected aborts a request's nested transaction without failing the
// batch (checkout precondition).
var errRejected = errors.New("server: rejected")

// minRequestsPerBlock is the batch size below which forking another
// parallel block is not worth a worker wakeup.
const minRequestsPerBlock = 8

// batcher coalesces submitted requests into group commits.
type batcher struct {
	rt  *pnstm.Runtime
	reg *stmlib.Registry
	wal *wal.Log // nil: in-memory only
	in  chan *pending
	// knobs carries the live-mutable batching parameters (maxBatch,
	// fanout, delay); the loop re-reads them at batch boundaries so
	// /config and the adaptive controller retune a running shard.
	knobs *shardKnobs
	stop  chan struct{}
	done  chan struct{}

	// smu/stopped fence submit against close: see submit.
	smu     sync.RWMutex
	stopped bool

	// pl bounds concurrent group commits with a live-adjustable limit;
	// see Config.MaxInflight for why the default is 1 (overlapping
	// write-heavy batches can livelock) and when pipelining is worth
	// turning on.
	pl     *pipeline
	execWG sync.WaitGroup

	obs *batchObs // nil: uninstrumented

	// shardID and batchSeq stamp trace identity (D35): with tracing on,
	// every batch draws a ticket and stamps (batch, shard) onto its root
	// context, so a request's events can be followed wire → batch root →
	// nested child → commit/abort across the whole store.
	shardID  uint8
	batchSeq atomic.Uint64

	mu       sync.Mutex
	batches  uint64
	requests uint64
	sizeSum  uint64 // sum of batch sizes (mean = sizeSum / batches)
	largest  int
}

func newBatcher(rt *pnstm.Runtime, reg *stmlib.Registry, wl *wal.Log, maxBatch, fanout, inflight int, delay time.Duration) *batcher {
	if fanout < 1 {
		fanout = 1
	}
	b := &batcher{
		rt:  rt,
		reg: reg,
		wal: wl,
		// The queue buffer is sized off the boot maxBatch and stays fixed:
		// raising the knob live still works (collect drains whatever is
		// queued), the channel is just a smaller staging area.
		in:    make(chan *pending, 4*maxBatch),
		knobs: newShardKnobs(maxBatch, fanout, delay),
		pl:    newPipeline(inflight),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit hands a request to the batcher; returns false when the batcher
// is shutting down (callers answer StatusErr themselves). The smu/
// stopped handshake makes every successful send happen-before close's
// stop signal — so the loop's final drain pass provably sees it, and no
// request can slip into the queue after the drain and hang unanswered.
func (b *batcher) submit(p *pending) bool {
	b.smu.RLock()
	defer b.smu.RUnlock()
	if b.stopped {
		return false
	}
	select {
	case b.in <- p:
		return true
	case <-b.stop:
		return false
	}
}

// close stops the loop and fails whatever was still queued. Setting
// stopped (under the write lock) before closing stop waits out every
// in-flight submit — the loop is still consuming at that point, so
// those sends cannot block indefinitely.
func (b *batcher) close() {
	b.smu.Lock()
	b.stopped = true
	b.smu.Unlock()
	close(b.stop)
	<-b.done
}

func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case p := <-b.in:
			formStart := time.Now()
			batch := b.collect(p)
			b.pl.acquire() // cap concurrent group commits (live limit)
			b.obs.observeBatch(len(batch), time.Since(formStart))
			b.execWG.Add(1)
			go func() {
				defer b.execWG.Done()
				defer b.pl.release()
				b.execute(batch)
			}()
		case <-b.stop:
			b.execWG.Wait() // in-flight batches deliver before the drain
			// Drain: connections stop submitting once stop is closed, so
			// this empties in one pass.
			for {
				select {
				case p := <-b.in:
					p.deliver(Response{ID: p.req.ID, Status: StatusErr, Msg: "server closing"})
				default:
					return
				}
			}
		}
	}
}

// collect gathers a batch around the first request: everything already
// queued, then — if there is still room — whatever arrives within the
// batching window. A zero window means "only what is already in flight",
// which keeps unloaded latency at the floor while still group-committing
// under concurrency.
func (b *batcher) collect(first *pending) []*pending {
	maxBatch := int(b.knobs.maxBatch.Load())
	delay := time.Duration(b.knobs.delay.Load())
	batch := []*pending{first}
	for len(batch) < maxBatch {
		select {
		case p := <-b.in:
			batch = append(batch, p)
			continue
		default:
		}
		break
	}
	if delay <= 0 || len(batch) >= maxBatch {
		return batch
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for len(batch) < maxBatch {
		select {
		case p := <-b.in:
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-b.stop:
			return batch
		}
	}
	return batch
}

// execute runs one batch as a single root transaction: every request is
// one nested child transaction of the batch transaction, and the
// children are spread over at most fanout parallel blocks — the same
// bucket-group shape stmlib's bulk operations use. With fanout ≈ worker
// count the per-block dispatch cost is amortized over batch/fanout
// requests, which is what lets group commit beat batch-size-1 execution
// even when each request is a single point operation; requests in
// different groups still conflict-check and run fully in parallel, and a
// request aborts alone (its own nested transaction) whichever group it
// rides in.
func (b *batcher) execute(batch []*pending) {
	// seq stamps the batch's commit order for the WAL: each mutating
	// request takes a ticket as the LAST step inside its (wrapping)
	// child transaction. If request B observed request A's write, A's
	// child committed — merged into the batch transaction — before B's
	// final attempt read it, so A took its ticket first: sorting by seq
	// reproduces a valid serialization of the batch on replay.
	var seq atomic.Uint64
	// One TracingEnabled load per batch, not per request: with tracing
	// off the stamping below compiles down to a dead branch.
	traced := b.rt.TracingEnabled()
	var batchID uint64
	if traced {
		batchID = b.batchSeq.Add(1)
	}
	apply := func(c *pnstm.Ctx, p *pending) {
		if traced {
			// Tag the context with the victim request's identity before its
			// child begins: any abort inside carries name:key, which is what
			// the hot-key profiler ranks on (D36).
			c.SetTraceTag(requestTraceTag(p.req))
		}
		if b.wal == nil || !canMutate(p.req) {
			// Pure reads never log, so they skip the ticket-stamping
			// wrapper transaction entirely.
			p.resp = applyRequest(c, b.reg, p.req)
			return
		}
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			p.logged = false // retried attempts must re-decide
			p.resp = applyRequest(c, b.reg, p.req)
			if mutating(p.req, &p.resp) {
				p.seq = seq.Add(1)
				p.logged = true
			}
			return nil
		})
	}

	err := b.rt.Run(func(c *pnstm.Ctx) {
		if traced {
			c.StampTrace(batchID, b.shardID)
		}
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			// A block dispatch costs roughly a worker wakeup, so forking
			// pays only when a block carries several point requests; small
			// batches fork fewer blocks (pipelined batches keep the other
			// workers fed) and a lone request runs inline.
			fanout := int(b.knobs.fanout.Load())
			groups := len(batch) / minRequestsPerBlock
			if groups > fanout {
				groups = fanout
			}
			if groups > len(batch) {
				groups = len(batch)
			}
			if groups < 1 {
				groups = 1
			}
			if groups <= 1 {
				// Small batch (or fanout 1): inline children, no fork —
				// with MaxBatch 1 this is the batch-size-1 baseline shape.
				for _, p := range batch {
					apply(c, p)
				}
				return nil
			}
			fns := make([]func(*pnstm.Ctx), groups)
			for g := 0; g < groups; g++ {
				lo, hi := g*len(batch)/groups, (g+1)*len(batch)/groups
				slice := batch[lo:hi]
				fns[g] = func(c *pnstm.Ctx) {
					for _, p := range slice {
						apply(c, p)
					}
				}
			}
			c.Parallel(fns...)
			return nil
		})
	})

	// Make the batch durable before any of its acks leave: one record,
	// one fsync, covering every mutating request in commit order.
	if err == nil && b.wal != nil {
		if werr := b.logBatch(batch); werr != nil {
			// The store applied the batch but the log did not: nothing
			// acked here may claim durability, so every request fails.
			// The wal latches itself shut on append failure (memory is
			// now ahead of the durable history, and logging further
			// batches over the hole would recover divergent state), so
			// subsequent mutating batches fail too until a restart
			// re-opens a consistent prefix.
			for _, p := range batch {
				p.resp = Response{ID: p.req.ID, Status: StatusErr, Msg: "wal: " + werr.Error()}
			}
		}
	}

	b.mu.Lock()
	b.batches++
	b.requests += uint64(len(batch))
	b.sizeSum += uint64(len(batch))
	if len(batch) > b.largest {
		b.largest = len(batch)
	}
	b.mu.Unlock()

	for _, p := range batch {
		resp := p.resp
		resp.ID = p.req.ID
		if err != nil {
			resp = Response{ID: p.req.ID, Status: StatusErr, Msg: "server closing"}
		} else if resp.Status == 0 {
			resp = Response{ID: p.req.ID, Status: StatusErr, Msg: "internal: request not executed"}
		}
		if resp.Status == StatusRejected {
			b.obs.observeRejected()
		}
		p.deliver(resp)
	}
}

// logBatch appends the batch's mutating requests — sorted into commit
// order — to the WAL, normally as one record with one fsync. Read-only
// batches append nothing (and cost no fsync). A batch whose encoding
// would overflow the record limit (legal with a large MaxBatch and
// near-MaxFrame requests) is split into several records: commit order
// is preserved across the chunks, and replaying them as separate root
// transactions is equivalent because batch membership is a grouping of
// independent requests, not a unit of atomicity.
func (b *batcher) logBatch(batch []*pending) error {
	var logged []*pending
	for _, p := range batch {
		if p.logged {
			logged = append(logged, p)
		}
	}
	if len(logged) == 0 {
		return nil
	}
	sort.Slice(logged, func(i, j int) bool { return logged[i].seq < logged[j].seq })

	var body []byte
	for i := 0; i < len(logged); i++ {
		frame, err := AppendRequest(nil, logged[i].req)
		if err != nil {
			// In memory but unencodable: latch the wal shut ourselves
			// (Append latches its own failures), or the next batch would
			// append over a hole in the durable history.
			b.wal.Fail(err)
			return err
		}
		if len(body) > 0 && len(body)+len(frame) > wal.MaxBody {
			if _, err := b.wal.Append(body); err != nil {
				return err
			}
			body = body[:0]
		}
		body = append(body, frame...)
	}
	_, err := b.wal.Append(body)
	return err
}

// requestTraceTag renders a request's identity for abort attribution:
// name:key for keyed ops, the structure name otherwise, "tx" for an
// anonymous envelope.
func requestTraceTag(req *Request) string {
	switch {
	case req.Key != "":
		return req.Name + ":" + req.Key
	case req.Name != "":
		return req.Name
	default:
		return "tx"
	}
}

// applyRequest executes one request as its own nested transaction inside
// the batch transaction and renders the response. The request's writes
// are isolated in its child: a rejected checkout rolls back alone while
// its batch siblings commit.
func applyRequest(c *pnstm.Ctx, reg *stmlib.Registry, req *Request) Response {
	resp := Response{ID: req.ID, Status: StatusOK}
	var err error
	switch req.Op {
	case OpPing:
		// Normally answered by the connection directly; harmless here.
	case OpMapGet:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Value, resp.Found = reg.Map(req.Name).Get(c, req.Key)
			return nil
		})
	case OpMapPut:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			reg.Map(req.Name).Put(c, req.Key, req.Value)
			return nil
		})
	case OpMapDelete:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Found = reg.Map(req.Name).Delete(c, req.Key)
			return nil
		})
	case OpMapLen:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Num = int64(reg.Map(req.Name).Len(c))
			return nil
		})
	case OpQueuePush:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			reg.Queue(req.Name).Push(c, req.Value)
			return nil
		})
	case OpQueuePop:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Value, resp.Found = reg.Queue(req.Name).Pop(c)
			return nil
		})
	case OpQueueLen:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Num = int64(reg.Queue(req.Name).Len(c))
			return nil
		})
	case OpCounterAdd:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			reg.Counter(req.Name).Add(c, req.Delta)
			return nil
		})
	case OpCounterSum:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Num = reg.Counter(req.Name).Sum(c)
			return nil
		})
	case OpMapAdd:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			var e error
			resp.Num, resp.Found, e = mapAdd(c, reg, req.Name, req.Key, req.Delta)
			return e
		})
	case OpCheckout:
		// In-process callers (tests) may still build checkout requests
		// directly; the wire path translated them in ParseRequest.
		tx, terr := CheckoutTx(req.Name, req.Checkout)
		if terr != nil {
			return Response{ID: req.ID, Status: StatusErr, Msg: terr.Error()}
		}
		err = applyTx(c, reg, &Tx{Ops: tx.Ops}, &resp)
	case OpTx:
		err = applyTx(c, reg, req.Tx, &resp)
	default:
		return Response{ID: req.ID, Status: StatusErr, Msg: "unbatchable or unknown opcode"}
	}
	switch {
	case err == nil:
	case errors.Is(err, errRejected):
		resp = Response{ID: req.ID, Status: StatusRejected, Found: resp.Found,
			Num: resp.Num, Msg: resp.Msg, TxResults: resp.TxResults}
	default:
		resp = Response{ID: req.ID, Status: StatusErr, Msg: err.Error()}
	}
	return resp
}

// mapAdd is the OpMapAdd primitive: add delta to the int64-encoded map
// value under key (absent reads as 0), returning the new value and
// whether the key existed before.
func mapAdd(c *pnstm.Ctx, reg *stmlib.Registry, name, key string, delta int64) (int64, bool, error) {
	m := reg.Map(name)
	var have int64
	raw, ok := m.Get(c, key)
	if ok {
		v, err := DecodeInt64(raw)
		if err != nil {
			return 0, ok, err
		}
		have = v
	}
	have += delta
	m.Put(c, key, EncodeInt64(have))
	return have, ok, nil
}

// txGroupKey buckets a sub-op by the structure it touches; sub-ops with
// the same key must execute sequentially in envelope order
// (read-your-writes), distinct keys may fan as parallel-nested
// grandchildren.
func txGroupKey(op *TxOp) string {
	switch op.Op {
	case OpMapGet, OpMapPut, OpMapDelete, OpMapLen, OpMapAdd:
		return "m\x00" + op.Name
	case OpQueuePush, OpQueuePop, OpQueueLen:
		return "q\x00" + op.Name
	case OpCounterAdd, OpCounterSum:
		return "c\x00" + op.Name
	case OpAssertEq, OpAssertGE:
		if op.Key != "" {
			return "m\x00" + op.Name
		}
		return "c\x00" + op.Name
	case OpSortedGet, OpSortedPut, OpSortedPutTTL, OpSortedDelete, OpSortedLen,
		OpRangeScan, OpRangeCount, OpSortedExpire:
		return "s\x00" + op.Name
	case OpMapPutTTL, OpExpire:
		return "m\x00" + op.Name
	case OpLeaseConsume, OpLeaseAck, OpLeaseNack, OpLeaseReclaim, OpLeaseLen:
		return "q\x00" + op.Name
	}
	return "?"
}

// txOpFailure is one group's first failure inside an envelope: the
// envelope-order index of the failing sub-op plus its error (errRejected
// for a false guard, anything else for a malformed op).
type txOpFailure struct {
	idx int
	err error
	msg string
}

// minTxOpsForFanout is the envelope size below which forking parallel
// grandchildren is not worth the worker wakeups: point-op envelopes (a
// three-line checkout, a CAS pair) run their groups inline — the batch
// level above already fans sibling requests — while bulk envelopes
// (multi-structure ingests, wide audits) amortize one fork per
// structure group over many ops, the same economics as stmlib's bulk
// operations.
const minTxOpsForFanout = 16

// applyTx executes one OpTx envelope inside the request's nested child
// transaction: sub-ops are grouped by the structure they touch,
// same-structure sub-ops run sequentially in envelope order (so a get
// observes an earlier put of the same envelope — read-your-writes), and
// distinct structures fan out as parallel-nested grandchild transactions
// when the envelope is large enough to pay for the forks. A false guard
// or malformed sub-op aborts the WHOLE envelope — every group's writes
// roll back with the child transaction — reporting the lowest failing
// op index in resp.Num and whatever executed in resp.TxResults.
func applyTx(c *pnstm.Ctx, reg *stmlib.Registry, tx *Tx, resp *Response) error {
	if tx == nil || len(tx.Ops) == 0 {
		return nil
	}
	ops := tx.Ops
	resp.TxResults = make([]TxResult, len(ops))

	// Group sub-ops by structure, preserving first-touch order.
	var order []string
	groups := make(map[string][]int)
	for i := range ops {
		k := txGroupKey(&ops[i])
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}

	fails := make([]*txOpFailure, len(order))
	return c.Atomic(func(c *pnstm.Ctx) error {
		// The body may retry after a conflict abort: re-judge every sub-op
		// on the final attempt only.
		for i := range resp.TxResults {
			resp.TxResults[i] = TxResult{}
		}
		resp.Msg = ""
		resp.Num = 0

		runGroup := func(c *pnstm.Ctx, slot int, keys []string) {
			for _, k := range keys {
				fails[slot] = nil
				for _, i := range groups[k] {
					msg, err := applyTxOp(c, reg, &ops[i], &resp.TxResults[i])
					if err != nil {
						fails[slot] = &txOpFailure{idx: i, err: err, msg: msg}
						break // abandon this group; the envelope is aborting
					}
				}
				if fails[slot] != nil {
					break
				}
			}
		}

		if len(order) == 1 || len(ops) < minTxOpsForFanout {
			runGroup(c, 0, order)
		} else {
			fns := make([]func(*pnstm.Ctx), len(order))
			for g := range order {
				g := g
				fns[g] = func(c *pnstm.Ctx) {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						runGroup(c, g, order[g:g+1])
						return nil
					})
				}
			}
			c.Parallel(fns...)
		}

		// Lowest envelope index wins when several groups failed in
		// parallel, so the reported FailedOpIndex is deterministic.
		var first *txOpFailure
		for _, f := range fails {
			if f != nil && (first == nil || f.idx < first.idx) {
				first = f
			}
		}
		if first == nil {
			return nil
		}
		resp.Num = int64(first.idx)
		resp.Msg = first.msg
		if !errors.Is(first.err, errRejected) {
			resp.Msg = "" // StatusErr path: Msg carries first.err below
			return fmt.Errorf("op %d: %w", first.idx, first.err)
		}
		return errRejected // rolls back every group of this envelope
	})
}

// applyTxOp executes one sub-op in the group's context and fills its
// result slot. A non-nil error aborts the envelope; for a false guard it
// is errRejected and msg describes the failed assertion.
func applyTxOp(c *pnstm.Ctx, reg *stmlib.Registry, op *TxOp, res *TxResult) (msg string, err error) {
	*res = TxResult{Status: StatusOK}
	switch op.Op {
	case OpMapGet:
		res.Value, res.Found = reg.Map(op.Name).Get(c, op.Key)
	case OpMapPut:
		reg.Map(op.Name).Put(c, op.Key, op.Value)
	case OpMapDelete:
		res.Found = reg.Map(op.Name).Delete(c, op.Key)
	case OpMapLen:
		res.Num = int64(reg.Map(op.Name).Len(c))
	case OpQueuePush:
		reg.Queue(op.Name).Push(c, op.Value)
	case OpQueuePop:
		res.Value, res.Found = reg.Queue(op.Name).Pop(c)
	case OpQueueLen:
		res.Num = int64(reg.Queue(op.Name).Len(c))
	case OpCounterAdd:
		reg.Counter(op.Name).Add(c, op.Delta)
	case OpCounterSum:
		// Inline stripe reads: the envelope's groups (and its batch
		// siblings) are the parallelism; per-read forks would only cost
		// dispatch.
		res.Num = reg.Counter(op.Name).SumInline(c)
	case OpMapAdd:
		res.Num, res.Found, err = mapAdd(c, reg, op.Name, op.Key, op.Delta)
	case OpAssertEq:
		if op.Key == "" {
			res.Num = reg.Counter(op.Name).SumInline(c)
			if gmsg, ok := judgeCounterGuard(op, res.Num); !ok {
				res.Status = StatusRejected
				return gmsg, errRejected
			}
		} else {
			raw, ok := reg.Map(op.Name).Get(c, op.Key)
			res.Found = ok
			if ok != (op.Value != nil) || !bytes.Equal(raw, op.Value) {
				res.Status = StatusRejected
				return fmt.Sprintf("assert: map %q[%q] differs", op.Name, op.Key), errRejected
			}
		}
	case OpAssertGE:
		if op.Key == "" {
			res.Num = reg.Counter(op.Name).SumInline(c)
			if gmsg, ok := judgeCounterGuard(op, res.Num); !ok {
				res.Status = StatusRejected
				return gmsg, errRejected
			}
		} else {
			raw, ok := reg.Map(op.Name).Get(c, op.Key)
			res.Found = ok
			if ok {
				v, derr := DecodeInt64(raw)
				if derr != nil {
					return "", derr
				}
				res.Num = v
			}
			if res.Num < op.Delta {
				res.Status = StatusRejected
				return fmt.Sprintf("assert: map %q[%q] = %d, want >= %d", op.Name, op.Key, res.Num, op.Delta), errRejected
			}
		}
	case OpSortedGet:
		res.Value, res.Found = reg.SortedMap(op.Name).Get(c, op.Key)
	case OpSortedPut:
		reg.SortedMap(op.Name).Put(c, op.Key, op.Value)
	case OpSortedPutTTL:
		reg.SortedMap(op.Name).PutTTL(c, op.Key, op.Value, op.Delta)
	case OpSortedDelete:
		res.Found = reg.SortedMap(op.Name).Delete(c, op.Key)
	case OpSortedLen:
		res.Num = int64(reg.SortedMap(op.Name).Len(c))
	case OpRangeScan:
		// The sorted map fans the scan into parallel-nested children per
		// leaf subrange; a conflicting point write restarts only the one
		// child whose subrange it hit. The entry cap keeps the result
		// inside a response frame — scans are reads (never logged), so
		// clamping is invisible to replay.
		limit := int(op.Delta)
		if limit <= 0 || limit > maxRangeScanEntries {
			limit = maxRangeScanEntries
		}
		var es []stmlib.SortedEntry[string, []byte]
		if len(op.Value) == 0 {
			es = reg.SortedMap(op.Name).RangeFrom(c, op.Key, limit)
		} else {
			es = reg.SortedMap(op.Name).RangeScan(c, op.Key, string(op.Value), limit)
		}
		kvs := make([]KVEntry, len(es))
		for i, e := range es {
			kvs[i] = KVEntry{Key: e.Key, Value: e.Value}
		}
		res.Num = int64(len(kvs))
		res.Value = AppendKVs(nil, kvs)
	case OpRangeCount:
		if len(op.Value) == 0 {
			res.Num = int64(reg.SortedMap(op.Name).RangeCountFrom(c, op.Key))
		} else {
			res.Num = int64(reg.SortedMap(op.Name).RangeCount(c, op.Key, string(op.Value)))
		}
	case OpMapPutTTL:
		reg.Map(op.Name).PutTTL(c, op.Key, op.Value, op.Delta)
	case OpExpire:
		res.Found = reg.Map(op.Name).ExpireThrough(c, op.Key, op.Delta)
	case OpSortedExpire:
		res.Found = reg.SortedMap(op.Name).ExpireThrough(c, op.Key, op.Delta)
	case OpLeaseConsume:
		id, v, ok := reg.Queue(op.Name).ConsumeLease(c, op.Delta)
		res.Num, res.Value, res.Found = int64(id), v, ok
	case OpLeaseAck:
		// Guard-like: acking a lease that no longer exists (the reaper
		// reclaimed it and the element was re-delivered) rejects the WHOLE
		// envelope, so an ack bundled with its side effects commits
		// atomically exactly once per delivery.
		if !reg.Queue(op.Name).Ack(c, uint64(op.Delta)) {
			res.Status = StatusRejected
			return fmt.Sprintf("ack: queue %q lease %d gone (expired and reclaimed?)", op.Name, op.Delta), errRejected
		}
		res.Found = true
	case OpLeaseNack:
		res.Found = reg.Queue(op.Name).Nack(c, uint64(op.Delta))
	case OpLeaseReclaim:
		res.Num = int64(reg.Queue(op.Name).ReclaimExpired(c, op.Delta))
	case OpLeaseLen:
		res.Num = int64(reg.Queue(op.Name).LeaseLen(c))
	default:
		return "", fmt.Errorf("invalid sub-opcode %d", op.Op)
	}
	return "", err
}

// maxRangeScanEntries bounds one OpRangeScan result so the encoded KV
// list cannot outgrow a response frame; clients page with the last key
// as the next lo bound.
const maxRangeScanEntries = 8192

// judgeCounterGuard evaluates a counter guard against an observed sum —
// the ONE implementation shared by the single-shard execution path
// (applyTxOp, shard-local partial) and the read-only fan's merge step
// (fanTx, global total), so the two paths cannot drift in semantics or
// failure text.
func judgeCounterGuard(op *TxOp, total int64) (msg string, ok bool) {
	switch op.Op {
	case OpAssertEq:
		if total != op.Delta {
			return fmt.Sprintf("assert: counter %q = %d, want %d", op.Name, total, op.Delta), false
		}
	case OpAssertGE:
		if total < op.Delta {
			return fmt.Sprintf("assert: counter %q = %d, want >= %d", op.Name, total, op.Delta), false
		}
	}
	return "", true
}

// reservePipeline takes exclusive ownership of the batcher's pipeline,
// so no new group commit can launch until the returned release runs:
// the caller owns the position between two group commits in this
// engine's commit order — a commit ticket for work that is not a batch
// (checkpoints' bulk reads, cross-shard envelope slices). Concurrent
// reservers must serialize externally (shard.pauseMu); the pipeline's
// paused flag backstops that. Exclusivity survives live limit changes
// — it is a flag on the pipeline, not a count of slots.
func (b *batcher) reservePipeline() func() {
	return b.pl.reserveAll()
}

// batchStats is the batcher's contribution to ServerStats.
func (b *batcher) stats() (batches, requests uint64, mean float64, largest int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	mean = 0
	if b.batches > 0 {
		mean = float64(b.sizeSum) / float64(b.batches)
	}
	return b.batches, b.requests, mean, b.largest
}
