package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pnstm"
	"pnstm/internal/wal"
	"pnstm/stmlib"
)

// The batching engine is where the paper's mechanism meets the network:
// concurrent in-flight requests are coalesced into a group commit. Each
// batch executes as ONE Runtime.Run root transaction whose body runs one
// nested child transaction per request, forked over parallel blocks via
// Ctx.Parallel — the shape of the paper's Figure 1 and of
// examples/inventory's order batches. The children conflict-check
// against each other with the one-word ancestor test, a request whose
// precondition fails (checkout without stock) rolls back alone as a
// nested abort, and the batch commits as a unit.
//
// Group commit amortizes the root begin/commit and the fork/join over
// the whole batch, and the nested children recruit every worker slot —
// so a server under concurrent load runs the paper's benchmark shape
// continuously. MaxBatch 1 degenerates into serial one-request
// transactions, which is the baseline the load generator compares
// against.
//
// A sharded server runs one batcher PER SHARD, each against its shard's
// private runtime, registry and WAL: the commit-ticket sequence below
// orders requests within one shard's log, and batches on different
// shards — disjoint structure sets by construction — execute, fsync and
// ack fully in parallel.

// pending is one request waiting for its batch, plus the route back to
// its connection. seq/logged are the durability bookkeeping: seq is the
// request's position in the batch's commit order (stamped inside its
// transaction, see execute), logged whether it mutated the store and
// therefore goes to the WAL.
type pending struct {
	req     *Request
	resp    Response
	deliver func(Response)
	seq     uint64
	logged  bool
}

// errRejected aborts a request's nested transaction without failing the
// batch (checkout precondition).
var errRejected = errors.New("server: rejected")

// minRequestsPerBlock is the batch size below which forking another
// parallel block is not worth a worker wakeup.
const minRequestsPerBlock = 8

// batcher coalesces submitted requests into group commits.
type batcher struct {
	rt       *pnstm.Runtime
	reg      *stmlib.Registry
	wal      *wal.Log // nil: in-memory only
	in       chan *pending
	maxBatch int
	fanout   int // parallel blocks per batch (~worker count)
	delay    time.Duration
	stop     chan struct{}
	done     chan struct{}

	// smu/stopped fence submit against close: see submit.
	smu     sync.RWMutex
	stopped bool

	// inflight bounds concurrent group commits; see Config.MaxInflight
	// for why the default is 1 (overlapping write-heavy batches can
	// livelock) and when pipelining is worth turning on.
	inflight chan struct{}
	execWG   sync.WaitGroup

	mu       sync.Mutex
	batches  uint64
	requests uint64
	sizeSum  uint64 // sum of batch sizes (mean = sizeSum / batches)
	largest  int
}

func newBatcher(rt *pnstm.Runtime, reg *stmlib.Registry, wl *wal.Log, maxBatch, fanout, inflight int, delay time.Duration) *batcher {
	if fanout < 1 {
		fanout = 1
	}
	if inflight < 1 {
		inflight = 1
	}
	b := &batcher{
		rt:       rt,
		reg:      reg,
		wal:      wl,
		in:       make(chan *pending, 4*maxBatch),
		maxBatch: maxBatch,
		fanout:   fanout,
		inflight: make(chan struct{}, inflight),
		delay:    delay,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit hands a request to the batcher; returns false when the batcher
// is shutting down (callers answer StatusErr themselves). The smu/
// stopped handshake makes every successful send happen-before close's
// stop signal — so the loop's final drain pass provably sees it, and no
// request can slip into the queue after the drain and hang unanswered.
func (b *batcher) submit(p *pending) bool {
	b.smu.RLock()
	defer b.smu.RUnlock()
	if b.stopped {
		return false
	}
	select {
	case b.in <- p:
		return true
	case <-b.stop:
		return false
	}
}

// close stops the loop and fails whatever was still queued. Setting
// stopped (under the write lock) before closing stop waits out every
// in-flight submit — the loop is still consuming at that point, so
// those sends cannot block indefinitely.
func (b *batcher) close() {
	b.smu.Lock()
	b.stopped = true
	b.smu.Unlock()
	close(b.stop)
	<-b.done
}

func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case p := <-b.in:
			batch := b.collect(p)
			b.inflight <- struct{}{} // cap concurrent group commits
			b.execWG.Add(1)
			go func() {
				defer b.execWG.Done()
				defer func() { <-b.inflight }()
				b.execute(batch)
			}()
		case <-b.stop:
			b.execWG.Wait() // in-flight batches deliver before the drain
			// Drain: connections stop submitting once stop is closed, so
			// this empties in one pass.
			for {
				select {
				case p := <-b.in:
					p.deliver(Response{ID: p.req.ID, Status: StatusErr, Msg: "server closing"})
				default:
					return
				}
			}
		}
	}
}

// collect gathers a batch around the first request: everything already
// queued, then — if there is still room — whatever arrives within the
// batching window. A zero window means "only what is already in flight",
// which keeps unloaded latency at the floor while still group-committing
// under concurrency.
func (b *batcher) collect(first *pending) []*pending {
	batch := []*pending{first}
	for len(batch) < b.maxBatch {
		select {
		case p := <-b.in:
			batch = append(batch, p)
			continue
		default:
		}
		break
	}
	if b.delay <= 0 || len(batch) >= b.maxBatch {
		return batch
	}
	timer := time.NewTimer(b.delay)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case p := <-b.in:
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-b.stop:
			return batch
		}
	}
	return batch
}

// execute runs one batch as a single root transaction: every request is
// one nested child transaction of the batch transaction, and the
// children are spread over at most fanout parallel blocks — the same
// bucket-group shape stmlib's bulk operations use. With fanout ≈ worker
// count the per-block dispatch cost is amortized over batch/fanout
// requests, which is what lets group commit beat batch-size-1 execution
// even when each request is a single point operation; requests in
// different groups still conflict-check and run fully in parallel, and a
// request aborts alone (its own nested transaction) whichever group it
// rides in.
func (b *batcher) execute(batch []*pending) {
	// seq stamps the batch's commit order for the WAL: each mutating
	// request takes a ticket as the LAST step inside its (wrapping)
	// child transaction. If request B observed request A's write, A's
	// child committed — merged into the batch transaction — before B's
	// final attempt read it, so A took its ticket first: sorting by seq
	// reproduces a valid serialization of the batch on replay.
	var seq atomic.Uint64
	apply := func(c *pnstm.Ctx, p *pending) {
		if b.wal == nil || !canMutate(p.req.Op) {
			// Pure reads never log, so they skip the ticket-stamping
			// wrapper transaction entirely.
			p.resp = applyRequest(c, b.reg, p.req)
			return
		}
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			p.logged = false // retried attempts must re-decide
			p.resp = applyRequest(c, b.reg, p.req)
			if mutating(p.req, &p.resp) {
				p.seq = seq.Add(1)
				p.logged = true
			}
			return nil
		})
	}

	err := b.rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			// A block dispatch costs roughly a worker wakeup, so forking
			// pays only when a block carries several point requests; small
			// batches fork fewer blocks (pipelined batches keep the other
			// workers fed) and a lone request runs inline.
			groups := len(batch) / minRequestsPerBlock
			if groups > b.fanout {
				groups = b.fanout
			}
			if groups > len(batch) {
				groups = len(batch)
			}
			if groups < 1 {
				groups = 1
			}
			if groups <= 1 {
				// Small batch (or fanout 1): inline children, no fork —
				// with MaxBatch 1 this is the batch-size-1 baseline shape.
				for _, p := range batch {
					apply(c, p)
				}
				return nil
			}
			fns := make([]func(*pnstm.Ctx), groups)
			for g := 0; g < groups; g++ {
				lo, hi := g*len(batch)/groups, (g+1)*len(batch)/groups
				slice := batch[lo:hi]
				fns[g] = func(c *pnstm.Ctx) {
					for _, p := range slice {
						apply(c, p)
					}
				}
			}
			c.Parallel(fns...)
			return nil
		})
	})

	// Make the batch durable before any of its acks leave: one record,
	// one fsync, covering every mutating request in commit order.
	if err == nil && b.wal != nil {
		if werr := b.logBatch(batch); werr != nil {
			// The store applied the batch but the log did not: nothing
			// acked here may claim durability, so every request fails.
			// The wal latches itself shut on append failure (memory is
			// now ahead of the durable history, and logging further
			// batches over the hole would recover divergent state), so
			// subsequent mutating batches fail too until a restart
			// re-opens a consistent prefix.
			for _, p := range batch {
				p.resp = Response{ID: p.req.ID, Status: StatusErr, Msg: "wal: " + werr.Error()}
			}
		}
	}

	b.mu.Lock()
	b.batches++
	b.requests += uint64(len(batch))
	b.sizeSum += uint64(len(batch))
	if len(batch) > b.largest {
		b.largest = len(batch)
	}
	b.mu.Unlock()

	for _, p := range batch {
		resp := p.resp
		resp.ID = p.req.ID
		if err != nil {
			resp = Response{ID: p.req.ID, Status: StatusErr, Msg: "server closing"}
		} else if resp.Status == 0 {
			resp = Response{ID: p.req.ID, Status: StatusErr, Msg: "internal: request not executed"}
		}
		p.deliver(resp)
	}
}

// logBatch appends the batch's mutating requests — sorted into commit
// order — to the WAL, normally as one record with one fsync. Read-only
// batches append nothing (and cost no fsync). A batch whose encoding
// would overflow the record limit (legal with a large MaxBatch and
// near-MaxFrame requests) is split into several records: commit order
// is preserved across the chunks, and replaying them as separate root
// transactions is equivalent because batch membership is a grouping of
// independent requests, not a unit of atomicity.
func (b *batcher) logBatch(batch []*pending) error {
	var logged []*pending
	for _, p := range batch {
		if p.logged {
			logged = append(logged, p)
		}
	}
	if len(logged) == 0 {
		return nil
	}
	sort.Slice(logged, func(i, j int) bool { return logged[i].seq < logged[j].seq })

	var body []byte
	for i := 0; i < len(logged); i++ {
		frame, err := AppendRequest(nil, logged[i].req)
		if err != nil {
			// In memory but unencodable: latch the wal shut ourselves
			// (Append latches its own failures), or the next batch would
			// append over a hole in the durable history.
			b.wal.Fail(err)
			return err
		}
		if len(body) > 0 && len(body)+len(frame) > wal.MaxBody {
			if _, err := b.wal.Append(body); err != nil {
				return err
			}
			body = body[:0]
		}
		body = append(body, frame...)
	}
	_, err := b.wal.Append(body)
	return err
}

// applyRequest executes one request as its own nested transaction inside
// the batch transaction and renders the response. The request's writes
// are isolated in its child: a rejected checkout rolls back alone while
// its batch siblings commit.
func applyRequest(c *pnstm.Ctx, reg *stmlib.Registry, req *Request) Response {
	resp := Response{ID: req.ID, Status: StatusOK}
	var err error
	switch req.Op {
	case OpPing:
		// Normally answered by the connection directly; harmless here.
	case OpMapGet:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Value, resp.Found = reg.Map(req.Name).Get(c, req.Key)
			return nil
		})
	case OpMapPut:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			reg.Map(req.Name).Put(c, req.Key, req.Value)
			return nil
		})
	case OpMapDelete:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Found = reg.Map(req.Name).Delete(c, req.Key)
			return nil
		})
	case OpMapLen:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Num = int64(reg.Map(req.Name).Len(c))
			return nil
		})
	case OpQueuePush:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			reg.Queue(req.Name).Push(c, req.Value)
			return nil
		})
	case OpQueuePop:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Value, resp.Found = reg.Queue(req.Name).Pop(c)
			return nil
		})
	case OpQueueLen:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Num = int64(reg.Queue(req.Name).Len(c))
			return nil
		})
	case OpCounterAdd:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			reg.Counter(req.Name).Add(c, req.Delta)
			return nil
		})
	case OpCounterSum:
		err = c.Atomic(func(c *pnstm.Ctx) error {
			resp.Num = reg.Counter(req.Name).Sum(c)
			return nil
		})
	case OpCheckout:
		err = applyCheckout(c, reg, req, &resp)
	default:
		return Response{ID: req.ID, Status: StatusErr, Msg: "unbatchable or unknown opcode"}
	}
	switch {
	case err == nil:
	case errors.Is(err, errRejected):
		resp = Response{ID: req.ID, Status: StatusRejected, Msg: resp.Msg}
	default:
		resp = Response{ID: req.ID, Status: StatusErr, Msg: err.Error()}
	}
	return resp
}

// applyCheckout is the cross-structure order transaction (see Checkout).
func applyCheckout(c *pnstm.Ctx, reg *stmlib.Registry, req *Request, resp *Response) error {
	co := req.Checkout
	if co == nil {
		co = &Checkout{}
	}
	return c.Atomic(func(c *pnstm.Ctx) error {
		// The body may retry after a conflict abort: clear the rejected-
		// SKU marker a discarded attempt may have left, or a successful
		// retry would ack StatusOK with a stale failure Msg.
		resp.Msg = ""
		resp.Num = 0
		stock := reg.Map(req.Name)
		var units int64
		for _, ln := range co.Lines {
			if ln.Qty <= 0 {
				// A non-positive quantity would mint stock (have − qty grows)
				// and credit negative units; it is a malformed request.
				return fmt.Errorf("checkout line %q: quantity %d must be positive", ln.SKU, ln.Qty)
			}
			raw, ok := stock.Get(c, ln.SKU)
			var have int64
			if ok {
				v, err := DecodeInt64(raw)
				if err != nil {
					return err
				}
				have = v
			}
			if have < ln.Qty {
				resp.Msg = ln.SKU
				return errRejected // rolls back every line of this checkout
			}
			stock.Put(c, ln.SKU, EncodeInt64(have-ln.Qty))
			units += ln.Qty
		}
		if co.Sold != "" {
			reg.Counter(co.Sold).Add(c, units)
		}
		if co.Revenue != "" {
			reg.Counter(co.Revenue).Add(c, co.Cents)
		}
		resp.Num = units
		return nil
	})
}

// batchStats is the batcher's contribution to ServerStats.
func (b *batcher) stats() (batches, requests uint64, mean float64, largest int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	mean = 0
	if b.batches > 0 {
		mean = float64(b.sizeSum) / float64(b.batches)
	}
	return b.batches, b.requests, mean, b.largest
}
