package server_test

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"pnstm/client"
	"pnstm/server"
	"pnstm/stmlib"
)

// TestTxReadYourWrites: sub-ops on the same structure execute in
// envelope order inside ONE atomic transaction, so a get observes the
// put before it, a pop the push before it, a sum the add before it —
// and none of the intermediate states ever leak to other clients.
func TestTxReadYourWrites(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, MaxBatch: 16})
	cl := dial(t, s, 1)

	tx := cl.Txn().
		MapPut("rm", "k", []byte("v1")).
		MapGet("rm", "k").
		MapAddInt("rm", "n", 5).
		MapAddInt("rm", "n", -2).
		QueuePush("rq", []byte("front")).
		QueuePop("rq").
		CounterAdd("rc", 7).
		CounterSum("rc")
	res, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Bytes(1); string(got) != "v1" || !res.Found(1) {
		t.Errorf("get after put in same tx = %q,%v want v1", got, res.Found(1))
	}
	if res.Num(2) != 5 || res.Found(2) {
		t.Errorf("first map-add = %d existed=%v, want 5,false", res.Num(2), res.Found(2))
	}
	if res.Num(3) != 3 || !res.Found(3) {
		t.Errorf("second map-add = %d existed=%v, want 3,true (read-your-writes)", res.Num(3), res.Found(3))
	}
	if got := res.Bytes(5); string(got) != "front" || !res.Found(5) {
		t.Errorf("pop after push in same tx = %q,%v want front", got, res.Found(5))
	}
	if res.Num(7) != 7 {
		t.Errorf("sum after add in same tx = %d want 7", res.Num(7))
	}
	// The envelope drained its own queue element: nothing left behind.
	if n, err := cl.QueueLen("rq"); err != nil || n != 0 {
		t.Errorf("queue after tx: len=%d err=%v, want empty", n, err)
	}
}

// TestTxGuardAbortsWholeEnvelope: a false guard rolls back EVERY write
// of the envelope — including writes to other structures that may have
// executed in parallel grandchildren — and the client sees a typed
// ErrTxAborted naming the failing op.
func TestTxGuardAbortsWholeEnvelope(t *testing.T) {
	s := startServer(t, server.Config{Workers: 4, MaxBatch: 16})
	cl := dial(t, s, 1)
	if err := cl.MapPutInt("gm", "balance", 10); err != nil {
		t.Fatal(err)
	}

	// Large enough (≥8 ops, 4 structures) to take the parallel-
	// grandchildren path.
	tx := cl.Txn().
		MapPut("gm2", "x", []byte("poison")).
		QueuePush("gq", []byte("poison")).
		CounterAdd("gc", 99).
		MapAddInt("gm", "balance", -4).
		AssertGE("gm", "balance", 100). // false: whole envelope aborts
		MapPut("gm2", "y", []byte("poison")).
		QueuePush("gq", []byte("poison")).
		CounterAdd("gc", 1)
	res, err := tx.Commit()
	var aborted *client.ErrTxAborted
	if !errors.As(err, &aborted) {
		t.Fatalf("want ErrTxAborted, got %v", err)
	}
	if aborted.FailedOpIndex != 4 {
		t.Errorf("FailedOpIndex = %d want 4", aborted.FailedOpIndex)
	}
	if aborted.Reason == "" {
		t.Error("ErrTxAborted.Reason empty")
	}
	if res == nil || !res.Executed(4) {
		t.Error("failing guard's own result missing")
	}

	// Nothing committed anywhere.
	if v, ok, err := cl.MapGetInt("gm", "balance"); err != nil || !ok || v != 10 {
		t.Errorf("balance after aborted tx = %d,%v,%v want 10", v, ok, err)
	}
	for _, key := range []string{"x", "y"} {
		if _, ok, err := cl.MapGet("gm2", key); err != nil || ok {
			t.Errorf("gm2[%s] leaked from aborted tx (ok=%v err=%v)", key, ok, err)
		}
	}
	if n, err := cl.QueueLen("gq"); err != nil || n != 0 {
		t.Errorf("queue leaked %d elements from aborted tx (%v)", n, err)
	}
	if sum, err := cl.CounterSum("gc"); err != nil || sum != 0 {
		t.Errorf("counter leaked %d from aborted tx (%v)", sum, err)
	}
}

// TestTxGuardVariants covers each guard flavor pass/fail.
func TestTxGuardVariants(t *testing.T) {
	s := startServer(t, server.Config{Workers: 2, MaxBatch: 8})
	cl := dial(t, s, 1)
	if err := cl.MapPut("vm", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := cl.CounterAdd("vc", 5); err != nil {
		t.Fatal(err)
	}

	pass := [](func() *client.Txn){
		func() *client.Txn { return cl.Txn().AssertEq("vm", "k", []byte("v")) },
		func() *client.Txn { return cl.Txn().AssertEq("vm", "absent", nil) }, // nil asserts absence
		func() *client.Txn { return cl.Txn().AssertCounterEq("vc", 5) },
		func() *client.Txn { return cl.Txn().AssertCounterGE("vc", 5) },
		func() *client.Txn { return cl.Txn().MapPutInt("vm", "n", 3).AssertGE("vm", "n", 3) },
		func() *client.Txn { return cl.Txn().AssertGE("vm", "never-set", 0) }, // absent reads as 0
	}
	for i, build := range pass {
		if _, err := build().Commit(); err != nil {
			t.Errorf("pass case %d: %v", i, err)
		}
	}
	fail := [](func() *client.Txn){
		func() *client.Txn { return cl.Txn().AssertEq("vm", "k", []byte("other")) },
		func() *client.Txn { return cl.Txn().AssertEq("vm", "k", nil) }, // present, asserted absent
		func() *client.Txn { return cl.Txn().AssertCounterEq("vc", 6) },
		func() *client.Txn { return cl.Txn().AssertCounterGE("vc", 6) },
		func() *client.Txn { return cl.Txn().AssertGE("vm", "never-set", 1) },
	}
	for i, build := range fail {
		_, err := build().Commit()
		var aborted *client.ErrTxAborted
		if !errors.As(err, &aborted) {
			t.Errorf("fail case %d: want ErrTxAborted, got %v", i, err)
		}
	}
}

// namesOnDistinctShards finds structure names living on different
// shards (and a pair on the SAME shard) of an n-shard server.
func namesOnDistinctShards(t *testing.T, prefix string, n int) (a, b, sameAsA string) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		sh := shardOfName(name, n)
		switch {
		case a == "":
			a = name
		case sh != shardOfName(a, n) && b == "":
			b = name
		case sh == shardOfName(a, n) && name != a && sameAsA == "":
			sameAsA = name
		}
		if a != "" && b != "" && sameAsA != "" {
			return a, b, sameAsA
		}
	}
	t.Fatal("could not find names on distinct shards")
	return
}

// TestTxCrossShardRules: a mutating envelope spanning shards commits
// atomically through the ordered-commit path (D29) — no StatusCrossShard
// — and its guards judge global state; the same envelope confined to
// one shard rides that shard's pipeline; a read-only envelope spanning
// shards fans and answers.
func TestTxCrossShardRules(t *testing.T) {
	const shards = 4
	s := startServer(t, server.Config{Workers: 2, MaxBatch: 8, Shards: shards})
	cl := dial(t, s, 1)
	mapA, mapB, mapA2 := namesOnDistinctShards(t, "xm", shards)

	// Mutating + two pinned shards → ordered cross-shard commit: both
	// writes land, atomically.
	if _, err := cl.Txn().
		MapPut(mapA, "ck", []byte("va")).
		MapPut(mapB, "ck", []byte("vb")).
		Commit(); err != nil {
		t.Fatalf("cross-shard mutating tx: %v", err)
	}
	for m, want := range map[string]string{mapA: "va", mapB: "vb"} {
		if v, ok, err := cl.MapGet(m, "ck"); err != nil || !ok || string(v) != want {
			t.Errorf("after cross-shard tx, %s[ck] = %q,%v,%v want %q", m, v, ok, err, want)
		}
	}

	// A failing guard on one shard aborts the WHOLE envelope: the write
	// on the other shard rolls back too.
	_, err := cl.Txn().
		MapPut(mapA, "rk", []byte("x")).
		AssertGE(mapB, "absent", 1). // absent reads as 0 → fails
		Commit()
	var aborted *client.ErrTxAborted
	if !errors.As(err, &aborted) {
		t.Fatalf("want ErrTxAborted, got %v", err)
	}
	if aborted.FailedOpIndex != 1 {
		t.Errorf("FailedOpIndex = %d want 1", aborted.FailedOpIndex)
	}
	if _, ok, _ := cl.MapGet(mapA, "rk"); ok {
		t.Errorf("aborted cross-shard tx left a write on %s", mapA)
	}

	// Same shard: commits, counters ride along (D24 partials).
	if _, err := cl.Txn().
		MapPut(mapA, "k", []byte("v")).
		MapPut(mapA2, "k", []byte("w")).
		CounterAdd("xc", 3).
		Commit(); err != nil {
		t.Fatalf("single-shard mutating tx: %v", err)
	}
	if sum, err := cl.CounterSum("xc"); err != nil || sum != 3 {
		t.Errorf("counter after single-shard tx = %d,%v want 3", sum, err)
	}

	// Read-only across shards: fans, each result from its home shard.
	res, err := cl.Txn().
		MapGet(mapA, "k").
		MapGet(mapB, "k").
		MapLen(mapA2).
		CounterSum("xc").
		Commit()
	if err != nil {
		t.Fatalf("read-only fan: %v", err)
	}
	if string(res.Bytes(0)) != "v" || !res.Found(0) {
		t.Errorf("fan get A = %q,%v", res.Bytes(0), res.Found(0))
	}
	if res.Found(1) {
		t.Errorf("fan get B found a value that was never written")
	}
	if res.Num(2) != 1 {
		t.Errorf("fan len = %d want 1", res.Num(2))
	}
	if res.Num(3) != 3 {
		t.Errorf("fan counter sum = %d want 3", res.Num(3))
	}
}

// TestTxFannedCounterReadsAreGlobal: checkouts credit counter partials
// on their stock map's shard, so a fanned read-only envelope must sum
// partials across ALL shards — and its counter guards must judge that
// global total, not any one partial.
func TestTxFannedCounterReadsAreGlobal(t *testing.T) {
	const shards = 4
	s := startServer(t, server.Config{Workers: 2, MaxBatch: 8, Shards: shards})
	cl := dial(t, s, 1)
	mapA, mapB, _ := namesOnDistinctShards(t, "fm", shards)

	// Two mutating envelopes on different shards, both crediting the
	// same counter: the total lives as two partials.
	for _, m := range []string{mapA, mapB} {
		if err := cl.MapPutInt(m, "sku", 10); err != nil {
			t.Fatal(err)
		}
		if ok, _, err := cl.Checkout(m, server.Checkout{
			Sold:  "fsold",
			Lines: []server.CheckoutLine{{SKU: "sku", Qty: 4}},
		}); err != nil || !ok {
			t.Fatalf("checkout on %s: ok=%v err=%v", m, ok, err)
		}
	}
	if sum, err := cl.CounterSum("fsold"); err != nil || sum != 8 {
		t.Fatalf("top-level fanned sum = %d,%v want 8", sum, err)
	}

	// Fanned read-only envelope: the sum is the global 8, and a guard
	// requiring ≥ 8 holds even though no single shard holds 8.
	res, err := cl.Txn().
		MapGet(mapA, "sku").
		MapGet(mapB, "sku").
		CounterSum("fsold").
		AssertCounterGE("fsold", 8).
		Commit()
	if err != nil {
		t.Fatalf("fanned envelope: %v", err)
	}
	if res.Num(2) != 8 {
		t.Errorf("fanned counter sum = %d want 8 (global total)", res.Num(2))
	}
	// And a guard above the total fails with the right index.
	_, err = cl.Txn().
		MapGet(mapA, "sku").
		AssertCounterGE("fsold", 9).
		MapGet(mapB, "sku").
		Commit()
	var aborted *client.ErrTxAborted
	if !errors.As(err, &aborted) || aborted.FailedOpIndex != 1 {
		t.Fatalf("fanned guard: want ErrTxAborted at op 1, got %v", err)
	}

	// A pinned MAP guard failing inside a fanned envelope must also come
	// back as a typed abort — with the failing index mapped from the
	// shard's sub-envelope back to envelope order — not as a generic
	// server error.
	_, err = cl.Txn().
		MapGet(mapA, "sku").
		MapGet(mapB, "sku").
		AssertGE(mapB, "sku", 999). // false on mapB's home shard
		Commit()
	aborted = nil
	if !errors.As(err, &aborted) {
		t.Fatalf("fanned map guard: want ErrTxAborted, got %v", err)
	}
	if aborted.FailedOpIndex != 2 {
		t.Errorf("fanned map guard FailedOpIndex = %d want 2", aborted.FailedOpIndex)
	}
	// And the lowest index wins when a map guard and a counter guard
	// both fail: the counter guard sits earlier in the envelope.
	_, err = cl.Txn().
		AssertCounterGE("fsold", 9). // false on the merged total (8)
		MapGet(mapA, "sku").
		AssertGE(mapB, "sku", 999). // also false, later index
		Commit()
	aborted = nil
	if !errors.As(err, &aborted) || aborted.FailedOpIndex != 0 {
		t.Fatalf("mixed fanned guards: want ErrTxAborted at op 0, got %v (idx %v)", err, aborted)
	}
}

// rawCheckout drives the DEPRECATED OpCheckout wire opcode over a bare
// TCP connection — the alias our own client no longer sends.
func rawCheckout(t *testing.T, addr, stockMap string, co server.Checkout) *server.Response {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	frame, err := server.AppendRequest(nil, &server.Request{ID: 7, Op: server.OpCheckout, Name: stockMap, Checkout: &co})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	payload, err := server.ReadFrame(bufio.NewReader(nc))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := server.ParseResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestCheckoutWireAliasOracle is the migration acceptance oracle: the
// same order script driven (a) through the deprecated OpCheckout wire
// opcode and (b) through client.Checkout's generic envelope produces
// byte-identical store state — live AND after a crash-recovery replay
// of the logged envelopes.
func TestCheckoutWireAliasOracle(t *testing.T) {
	type order struct {
		lines []server.CheckoutLine
	}
	script := []order{
		{[]server.CheckoutLine{{SKU: "anvil", Qty: 2}, {SKU: "cog", Qty: 1}}},
		{[]server.CheckoutLine{{SKU: "anvil", Qty: 3}}},
		{[]server.CheckoutLine{{SKU: "cog", Qty: 50}}}, // rejected: short stock
		{[]server.CheckoutLine{{SKU: "cog", Qty: 2}}},
	}
	run := func(dir string, viaWire bool) *stmlib.RegistryImage {
		s := startServer(t, persistCfg(dir))
		cl := dial(t, s, 1)
		for i := 0; i < 2; i++ {
			sku := []string{"anvil", "cog"}[i]
			if err := cl.MapPutInt("stock", sku, 10); err != nil {
				t.Fatal(err)
			}
		}
		wantOK := []bool{true, true, false, true}
		for i, o := range script {
			co := server.Checkout{Sold: "sold", Revenue: "rev", Cents: 100, Lines: o.lines}
			var ok bool
			if viaWire {
				resp := rawCheckout(t, s.Addr().String(), "stock", co)
				if resp.Status == server.StatusErr {
					t.Fatalf("wire checkout %d: %s", i, resp.Msg)
				}
				ok = resp.Status == server.StatusOK
			} else {
				var err error
				ok, _, err = cl.Checkout("stock", co)
				if err != nil {
					t.Fatal(err)
				}
			}
			if ok != wantOK[i] {
				t.Fatalf("order %d: ok=%v want %v", i, ok, wantOK[i])
			}
		}
		img, _, err := s.Export()
		if err != nil {
			t.Fatal(err)
		}
		return img
	}

	wireDir, clientDir := t.TempDir(), t.TempDir()
	wireImg := run(wireDir, true)
	clientImg := run(clientDir, false)
	if !reflect.DeepEqual(wireImg, clientImg) {
		t.Errorf("wire OpCheckout and client Txn diverged:\n  wire   %+v\n  client %+v", wireImg, clientImg)
	}

	// Replay oracle: both data dirs recover to the same image too (the
	// wire leg's WAL holds envelopes translated from OpCheckout frames).
	for name, dir := range map[string]string{"wire": wireDir, "client": clientDir} {
		s := startServer(t, persistCfg(dir))
		img, _, err := s.Export()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(img, wireImg) {
			t.Errorf("%s leg: recovered image diverged:\n  recovered %+v\n  live      %+v", name, img, wireImg)
		}
	}
}

// TestTxGuardFailureLeavesZeroWALResidue: an envelope aborted by its
// guard must append NOTHING to the log — proven not just by counters
// but by a hard kill and replay: the recovered store holds exactly the
// committed history, with no trace of the rejected envelopes.
func TestTxGuardFailureLeavesZeroWALResidue(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, persistCfg(dir))
	cl := dial(t, s, 1)

	if err := cl.MapPutInt("wm", "slot", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Txn().
		MapAddInt("wm", "slot", 4).
		QueuePush("wq", []byte("keep")).
		CounterAdd("wc", 2).
		Commit(); err != nil {
		t.Fatal(err)
	}
	base := s.WALStats()

	// Mutating-shaped envelopes (writes present → they take the
	// commit-ticket path) that all abort on a guard.
	for i := 0; i < 20; i++ {
		_, err := cl.Txn().
			MapAddInt("wm", "slot", 100).
			QueuePush("wq", []byte("poison")).
			AssertGE("wm", "slot", 1000). // false
			CounterAdd("wc", 100).
			Commit()
		var aborted *client.ErrTxAborted
		if !errors.As(err, &aborted) {
			t.Fatalf("iteration %d: want ErrTxAborted, got %v", i, err)
		}
	}
	ws := s.WALStats()
	if ws.Appends != base.Appends || ws.Syncs != base.Syncs {
		t.Errorf("rejected envelopes reached the wal: appends %d->%d syncs %d->%d",
			base.Appends, ws.Appends, base.Syncs, ws.Syncs)
	}

	// Crash (no graceful flush) and replay: only the committed history
	// comes back.
	s.Kill()
	s2 := startServer(t, persistCfg(dir))
	cl2 := dial(t, s2, 1)
	if v, ok, err := cl2.MapGetInt("wm", "slot"); err != nil || !ok || v != 5 {
		t.Errorf("recovered slot = %d,%v,%v want 5", v, ok, err)
	}
	if n, err := cl2.QueueLen("wq"); err != nil || n != 1 {
		t.Errorf("recovered queue len = %d,%v want 1 (no poison)", n, err)
	}
	if v, ok, err := cl2.QueuePop("wq"); err != nil || !ok || !bytes.Equal(v, []byte("keep")) {
		t.Errorf("recovered queue front = %q,%v,%v want keep", v, ok, err)
	}
	if sum, err := cl2.CounterSum("wc"); err != nil || sum != 2 {
		t.Errorf("recovered counter = %d,%v want 2", sum, err)
	}
}

// TestTxMutatingEnvelopeSurvivesCrashRecovery: a multi-structure
// envelope is ONE WAL entry riding its batch's record; after a hard
// kill, replay reapplies it atomically (all sub-ops or none).
func TestTxMutatingEnvelopeSurvivesCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := startServer(t, persistCfg(dir))
	cl := dial(t, s, 1)

	const n = 25
	for i := 0; i < n; i++ {
		if _, err := cl.Txn().
			MapAddInt("cm", "applied", 1).
			QueuePush("cq", server.EncodeInt64(int64(i))).
			CounterAdd("cc", 3).
			Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s.Kill()

	s2 := startServer(t, persistCfg(dir))
	cl2 := dial(t, s2, 1)
	applied, ok, err := cl2.MapGetInt("cm", "applied")
	if err != nil || !ok {
		t.Fatalf("applied: %v %v", ok, err)
	}
	if applied != n {
		t.Errorf("recovered applied = %d want %d (every acked envelope must replay)", applied, n)
	}
	if qn, err := cl2.QueueLen("cq"); err != nil || qn != applied {
		t.Errorf("queue len %d != applied %d: envelope atomicity broken on replay", qn, applied)
	}
	if sum, err := cl2.CounterSum("cc"); err != nil || sum != 3*applied {
		t.Errorf("counter %d != 3×applied %d: envelope atomicity broken on replay", sum, 3*applied)
	}
	// FIFO of the envelope pushes survived too.
	for i := int64(0); i < applied; i++ {
		raw, ok, err := cl2.QueuePop("cq")
		if err != nil || !ok {
			t.Fatalf("pop %d: %v %v", i, ok, err)
		}
		if v, _ := server.DecodeInt64(raw); v != i {
			t.Fatalf("pop %d = %d: FIFO broken after replay", i, v)
		}
	}
}

// TestTxEmptyAndInvalid: degenerate envelopes.
func TestTxEmptyAndInvalid(t *testing.T) {
	s := startServer(t, server.Config{Workers: 2, MaxBatch: 8})
	cl := dial(t, s, 1)

	res, err := cl.Txn().Commit()
	if err != nil || res.Len() != 0 {
		t.Errorf("empty tx: %v, %d results", err, res.Len())
	}
	// Builder-level misuse is deferred to Commit.
	if _, err := cl.Txn().AssertEq("m", "", []byte("v")).Commit(); err == nil {
		t.Error("keyless AssertEq accepted")
	}
	// Guard against a non-integer value: the envelope errors (StatusErr),
	// it does not half-commit.
	if err := cl.MapPut("im", "s", []byte("not-an-int")); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Txn().
		CounterAdd("ic", 1).
		AssertGE("im", "s", 0).
		Commit()
	if err == nil {
		t.Fatal("malformed guard target accepted")
	}
	var aborted *client.ErrTxAborted
	if errors.As(err, &aborted) {
		t.Fatalf("malformed value is StatusErr, not a guard rejection: %v", err)
	}
	if sum, _ := cl.CounterSum("ic"); sum != 0 {
		t.Errorf("errored envelope leaked counter add: %d", sum)
	}
}
