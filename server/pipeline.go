package server

import (
	"sync"
	"sync/atomic"
	"time"

	"pnstm/internal/metrics"
)

// shardKnobs is one shard's live-mutable batching configuration. The
// batcher re-reads each knob at batch boundaries (collect for
// maxBatch/delay, execute for fanout), so a PUT /config or a controller
// step takes effect on the next batch without a restart — no lock on
// the hot path, just an atomic load per batch.
type shardKnobs struct {
	maxBatch atomic.Int32
	fanout   atomic.Int32
	delay    atomic.Int64 // nanoseconds
}

func newShardKnobs(maxBatch, fanout int, delay time.Duration) *shardKnobs {
	k := &shardKnobs{}
	k.maxBatch.Store(int32(maxBatch))
	k.fanout.Store(int32(fanout))
	k.delay.Store(int64(delay))
	return k
}

// pipeline bounds concurrent group commits per shard. It replaces the
// fixed buffered-channel semaphore so the limit can change while
// acquisitions are in flight (PUT /config, the adaptive controller):
// raising the limit wakes waiters immediately, lowering it lets excess
// in-flight batches drain without being interrupted.
type pipeline struct {
	mu     sync.Mutex
	cond   *sync.Cond
	active int
	limit  int
	paused bool
}

func newPipeline(limit int) *pipeline {
	if limit < 1 {
		limit = 1
	}
	p := &pipeline{limit: limit}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquire blocks until a slot is free and the pipeline is not reserved.
func (p *pipeline) acquire() {
	p.mu.Lock()
	for p.paused || p.active >= p.limit {
		p.cond.Wait()
	}
	p.active++
	p.mu.Unlock()
}

// release frees a slot taken by acquire.
func (p *pipeline) release() {
	p.mu.Lock()
	p.active--
	p.cond.Broadcast()
	p.mu.Unlock()
}

// reserveAll takes exclusive ownership of the whole pipeline: it waits
// out every in-flight batch and blocks new ones until the returned
// release runs. This is the commit-ticket reservation checkpoints,
// Export and cross-shard coordinators use (see reservePipeline);
// concurrent reservers additionally serialize on shard.pauseMu, and
// the paused flag makes that safe even against a reserver that skipped
// the mutex. Unlike the old fill-every-slot scheme, a concurrent limit
// change cannot leak or strand slots — exclusivity is a flag, not a
// count.
func (p *pipeline) reserveAll() func() {
	p.mu.Lock()
	for p.paused {
		p.cond.Wait()
	}
	p.paused = true
	for p.active > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		p.paused = false
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// setLimit changes the concurrency bound. n < 1 clamps to 1.
func (p *pipeline) setLimit(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	p.limit = n
	p.cond.Broadcast()
	p.mu.Unlock()
}

// getLimit reports the current bound.
func (p *pipeline) getLimit() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.limit
}

// batchObs is the batcher's instrumentation hooks; a nil *batchObs
// disables them (batchers built directly in tests).
type batchObs struct {
	size     *metrics.Histogram // batch occupancy (requests per group commit)
	form     *metrics.Histogram // µs from first request to batch launch
	rejected *metrics.Counter   // StatusRejected responses (guard failures)
}

func (o *batchObs) observeBatch(size int, formed time.Duration) {
	if o == nil {
		return
	}
	o.size.Observe(float64(size))
	o.form.ObserveDuration(formed)
}

func (o *batchObs) observeRejected() {
	if o != nil {
		o.rejected.Inc()
	}
}
