package server

import (
	"bytes"
	"reflect"
	"testing"
)

// Fuzz harnesses for the frame codecs (`go test -fuzz=FuzzRequest ./server`;
// under plain `go test` the seed corpus below runs as a regression
// suite). The checked property is decode/encode idempotence: any byte
// string ParseRequest/ParseResponse accepts must re-encode to a frame
// that parses back to the SAME value — no partially-validated fields, no
// state smuggled through unchecked bytes. Decoders additionally must
// never panic or over-read, whatever the input (the cursor enforces
// that; fuzzing is what keeps it honest as the format grows envelopes).

// fuzzSeedRequests covers every opcode, the composite bodies and the
// translation alias.
func fuzzSeedRequests() [][]byte {
	reqs := []*Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpMapGet, Name: "m", Key: "k"},
		{ID: 3, Op: OpMapPut, Name: "m", Key: "k", Value: []byte("v")},
		{ID: 4, Op: OpMapDelete, Name: "m", Key: "k"},
		{ID: 5, Op: OpQueuePush, Name: "q", Value: []byte{0, 1}},
		{ID: 6, Op: OpQueuePop, Name: "q"},
		{ID: 7, Op: OpCounterAdd, Name: "c", Delta: -9},
		{ID: 8, Op: OpCounterSum, Name: "c"},
		{ID: 9, Op: OpStats},
		{ID: 10, Op: OpMapAdd, Name: "m", Key: "k", Delta: 4},
		{ID: 11, Op: OpCheckout, Name: "stock", Checkout: &Checkout{
			Sold: "sold", Revenue: "rev", Cents: 500,
			Lines: []CheckoutLine{{SKU: "anvil", Qty: 2}},
		}},
		{ID: 12, Op: OpTx, Tx: &Tx{Ops: []TxOp{
			{Op: OpAssertGE, Name: "stock", Key: "anvil", Delta: 2},
			{Op: OpMapAdd, Name: "stock", Key: "anvil", Delta: -2},
			{Op: OpCounterAdd, Name: "sold", Delta: 2},
			{Op: OpAssertEq, Name: "sold", Delta: 2},
			{Op: OpQueuePush, Name: "q", Value: []byte("x")},
		}}},
	}
	var seeds [][]byte
	for _, req := range reqs {
		frame, err := AppendRequest(nil, req)
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, frame[4:]) // payload without the length prefix
	}
	return seeds
}

func FuzzRequestRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeedRequests() {
		f.Add(seed)
	}
	// Malformed shapes: truncation, trailing garbage, bad opcodes.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 99})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := ParseRequest(payload)
		if err != nil {
			return // rejected input: only property is "no panic"
		}
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %+v: %v", req, err)
		}
		back, err := ParseRequest(frame[4:])
		if err != nil {
			t.Fatalf("re-encoded request does not re-parse: %+v: %v", req, err)
		}
		if !reflect.DeepEqual(req, back) {
			t.Fatalf("request round trip diverged:\n  first  %+v\n  second %+v", req, back)
		}
	})
}

func FuzzResponseRoundTrip(f *testing.F) {
	resps := []*Response{
		{ID: 1, Status: StatusOK},
		{ID: 2, Status: StatusOK, Found: true, Num: -3, Value: []byte("v"), Msg: ""},
		{ID: 3, Status: StatusRejected, Num: 1, Msg: "assert failed", TxResults: []TxResult{
			{Status: StatusOK, Num: 7}, {Status: StatusRejected}, {},
		}},
		{ID: 4, Status: StatusErr, Msg: "boom"},
		{ID: 5, Status: StatusCrossShard, Msg: "2 shards"},
	}
	for _, resp := range resps {
		frame := AppendResponse(nil, resp)
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 30))
	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, err := ParseResponse(payload)
		if err != nil {
			return
		}
		if resp.Status == 0 || resp.Status > StatusCrossShard {
			t.Fatalf("decoder accepted unknown status %d", resp.Status)
		}
		for i := range resp.TxResults {
			if st := resp.TxResults[i].Status; st > StatusCrossShard {
				t.Fatalf("decoder accepted unknown sub-result status %d", st)
			}
		}
		frame := AppendResponse(nil, resp)
		back, err := ParseResponse(frame[4:])
		if err != nil {
			t.Fatalf("re-encoded response does not re-parse: %+v: %v", resp, err)
		}
		if !reflect.DeepEqual(resp, back) {
			t.Fatalf("response round trip diverged:\n  first  %+v\n  second %+v", resp, back)
		}
	})
}
