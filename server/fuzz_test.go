package server

import (
	"bytes"
	"reflect"
	"testing"
)

// Fuzz harnesses for the frame codecs (`go test -fuzz=FuzzRequest ./server`;
// under plain `go test` the seed corpus below runs as a regression
// suite). The checked property is decode/encode idempotence: any byte
// string ParseRequest/ParseResponse accepts must re-encode to a frame
// that parses back to the SAME value — no partially-validated fields, no
// state smuggled through unchecked bytes. Decoders additionally must
// never panic or over-read, whatever the input (the cursor enforces
// that; fuzzing is what keeps it honest as the format grows envelopes).

// fuzzSeedRequests covers every opcode, the composite bodies and the
// translation alias.
func fuzzSeedRequests() [][]byte {
	reqs := []*Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpMapGet, Name: "m", Key: "k"},
		{ID: 3, Op: OpMapPut, Name: "m", Key: "k", Value: []byte("v")},
		{ID: 4, Op: OpMapDelete, Name: "m", Key: "k"},
		{ID: 5, Op: OpQueuePush, Name: "q", Value: []byte{0, 1}},
		{ID: 6, Op: OpQueuePop, Name: "q"},
		{ID: 7, Op: OpCounterAdd, Name: "c", Delta: -9},
		{ID: 8, Op: OpCounterSum, Name: "c"},
		{ID: 9, Op: OpStats},
		{ID: 10, Op: OpMapAdd, Name: "m", Key: "k", Delta: 4},
		{ID: 11, Op: OpCheckout, Name: "stock", Checkout: &Checkout{
			Sold: "sold", Revenue: "rev", Cents: 500,
			Lines: []CheckoutLine{{SKU: "anvil", Qty: 2}},
		}},
		{ID: 12, Op: OpTx, Tx: &Tx{Ops: []TxOp{
			{Op: OpAssertGE, Name: "stock", Key: "anvil", Delta: 2},
			{Op: OpMapAdd, Name: "stock", Key: "anvil", Delta: -2},
			{Op: OpCounterAdd, Name: "sold", Delta: 2},
			{Op: OpAssertEq, Name: "sold", Delta: 2},
			{Op: OpQueuePush, Name: "q", Value: []byte("x")},
		}}},
		{ID: 13, Op: OpHello, Hello: &Hello{Version: ProtoVersion, Features: FeatureCrossShard | FeatureReplStream, MaxStalenessMs: 1500}},
		{ID: 14, Op: OpReplSubscribe, Sub: &ReplSubscribe{Shard: 3, FromLSN: 1 << 40}},
		// Second-generation sub-ops (D45): sorted maps and ranges…
		{ID: 15, Op: OpTx, Tx: &Tx{Ops: []TxOp{
			{Op: OpSortedPut, Name: "board", Key: "p1", Value: []byte("1")},
			{Op: OpSortedPutTTL, Name: "board", Key: "p2", Value: []byte("2"), Delta: 1 << 60},
			{Op: OpSortedGet, Name: "board", Key: "p1"},
			{Op: OpSortedDelete, Name: "board", Key: "p0"},
			{Op: OpRangeScan, Name: "board", Key: "a", Value: []byte("z"), Delta: 100},
			{Op: OpRangeCount, Name: "board", Key: "a"},
			{Op: OpSortedLen, Name: "board"},
			{Op: OpSortedExpire, Name: "board", Key: "p2", Delta: 1 << 61},
		}}},
		// …and TTLs plus queue leases.
		{ID: 16, Op: OpTx, Tx: &Tx{Ops: []TxOp{
			{Op: OpMapPutTTL, Name: "sessions", Key: "s1", Value: []byte("tok"), Delta: 1 << 60},
			{Op: OpExpire, Name: "sessions", Key: "s0", Delta: 1 << 59},
			{Op: OpLeaseConsume, Name: "jobs", Delta: 1 << 60},
			{Op: OpLeaseAck, Name: "jobs", Delta: 7},
			{Op: OpLeaseNack, Name: "jobs", Delta: 8},
			{Op: OpLeaseReclaim, Name: "jobs", Delta: 1 << 60},
			{Op: OpLeaseLen, Name: "jobs"},
		}}},
	}
	var seeds [][]byte
	for _, req := range reqs {
		frame, err := AppendRequest(nil, req)
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, frame[4:]) // payload without the length prefix
	}
	return seeds
}

func FuzzRequestRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeedRequests() {
		f.Add(seed)
	}
	// Malformed shapes: truncation, trailing garbage, bad opcodes.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 99})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := ParseRequest(payload)
		if err != nil {
			return // rejected input: only property is "no panic"
		}
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %+v: %v", req, err)
		}
		back, err := ParseRequest(frame[4:])
		if err != nil {
			t.Fatalf("re-encoded request does not re-parse: %+v: %v", req, err)
		}
		if !reflect.DeepEqual(req, back) {
			t.Fatalf("request round trip diverged:\n  first  %+v\n  second %+v", req, back)
		}
	})
}

// FuzzGSNRecordRoundTrip holds the cross-shard WAL record codec (D30)
// to the same standard as the wire codecs: decode-or-reject with no
// panic, and anything accepted must survive re-encode → re-decode
// unchanged — a record that mutates across a log rewrite would make
// replay diverge between shards.
func FuzzGSNRecordRoundTrip(f *testing.F) {
	seedReqs := []*Request{
		{Op: OpTx, Tx: &Tx{Ops: []TxOp{
			{Op: OpMapAdd, Name: "a", Key: "bal", Delta: -5},
			{Op: OpMapAdd, Name: "b", Key: "bal", Delta: 5},
		}}},
		{Op: OpTx, Tx: &Tx{Ops: []TxOp{
			{Op: OpMapPut, Name: "m", Key: "k", Value: []byte("v")},
			{Op: OpQueuePush, Name: "q", Value: []byte{0, 1}},
		}}},
	}
	for i, req := range seedReqs {
		body, err := encodeGSNRecord(uint64(i+1), []int{0, i + 1}, req)
		if err != nil {
			panic(err)
		}
		f.Add(body)
	}
	f.Add([]byte("XGSN"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 24))
	f.Fuzz(func(t *testing.T, body []byte) {
		gsn, logSet, req, err := decodeGSNRecord(body)
		if err != nil {
			return // rejected input: only property is "no panic"
		}
		if gsn == 0 || len(logSet) == 0 {
			t.Fatalf("decoder accepted gsn=%d logSet=%v", gsn, logSet)
		}
		again, err := encodeGSNRecord(gsn, logSet, req)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		gsn2, logSet2, req2, err := decodeGSNRecord(again)
		if err != nil {
			t.Fatalf("re-encoded record does not re-decode: %v", err)
		}
		if gsn2 != gsn || !reflect.DeepEqual(logSet2, logSet) || !reflect.DeepEqual(req2, req) {
			t.Fatalf("GSN record round trip diverged:\n  first  %d %v %+v\n  second %d %v %+v",
				gsn, logSet, req, gsn2, logSet2, req2)
		}
	})
}

// FuzzClassifyTx feeds arbitrary decoded envelopes through the routing
// classifier for every small shard count. classifyTx gates which commit
// path runs; a panic or a malformed plan here would take down the
// connection handler, so the property is total: any envelope the wire
// codec accepts must classify, and a cross plan must name ≥2 sorted
// participants whose slices cover the envelope in order.
func FuzzClassifyTx(f *testing.F) {
	for _, seed := range fuzzSeedRequests() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := ParseRequest(payload)
		if err != nil || req.Op != OpTx {
			return
		}
		for n := 1; n <= 5; n++ {
			plan := classifyTx(req.Tx, n)
			switch plan.kind {
			case planSingle:
				if plan.target < 0 || plan.target >= n {
					t.Fatalf("n=%d: single plan targets shard %d", n, plan.target)
				}
			case planFan:
				// Read-only fan: no slices to check.
			case planCross:
				if n < 2 || len(plan.participants) < 2 {
					t.Fatalf("n=%d: cross plan with participants %v", n, plan.participants)
				}
				covered, partials := 0, 0
				for i, sh := range plan.participants {
					if i > 0 && sh <= plan.participants[i-1] {
						t.Fatalf("n=%d: participants not ascending: %v", n, plan.participants)
					}
					if sh < 0 || sh >= n {
						t.Fatalf("n=%d: participant %d out of range", n, sh)
					}
					slice := plan.slices[sh]
					if len(slice) == 0 {
						t.Fatalf("n=%d: participant %d has an empty slice", n, sh)
					}
					for j, item := range slice {
						if j > 0 && item.idx <= slice[j-1].idx {
							t.Fatalf("n=%d shard %d: slice not in envelope order: %+v", n, sh, slice)
						}
						if item.idx < 0 || item.idx >= len(req.Tx.Ops) {
							t.Fatalf("n=%d shard %d: slice index %d out of range", n, sh, item.idx)
						}
						if item.partial {
							partials++
						} else {
							covered++
						}
					}
				}
				// Every op executes on exactly one shard, except global
				// counter reads (no single home), which instead place one
				// partial item on EVERY shard.
				executed, globals := 0, 0
				for i := range req.Tx.Ops {
					if _, ok := crossShardHome(&req.Tx.Ops[i], n); ok {
						executed++
					} else {
						globals++
					}
				}
				if covered != executed || partials != globals*n {
					t.Fatalf("n=%d: slices hold %d exec + %d partial items, envelope needs %d + %d",
						n, covered, partials, executed, globals*n)
				}
			default:
				t.Fatalf("n=%d: unknown plan kind %d", n, plan.kind)
			}
		}
	})
}

// FuzzHelloInfoRoundTrip holds the handshake payload codec (D39) to the
// wire-codec standard. The client feeds server-supplied bytes straight
// into ParseHelloInfo during Connect, so the decoder must reject or
// round-trip — a panic here would take down every dial.
func FuzzHelloInfoRoundTrip(f *testing.F) {
	f.Add(EncodeHelloInfo(&HelloInfo{Version: ProtoVersion, Features: FeatureCrossShard, Role: RolePrimary, Shards: 1}))
	f.Add(EncodeHelloInfo(&HelloInfo{
		Version: ProtoVersion, Features: FeatureCrossShard | FeatureReplStream,
		Role: RoleReplica, Shards: 16, Primary: "10.0.0.1:7455",
	}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 15))
	f.Fuzz(func(t *testing.T, payload []byte) {
		info, err := ParseHelloInfo(payload)
		if err != nil {
			return // rejected input: only property is "no panic"
		}
		if info.Role != RolePrimary && info.Role != RoleReplica {
			t.Fatalf("decoder accepted unknown role %d", info.Role)
		}
		back, err := ParseHelloInfo(EncodeHelloInfo(info))
		if err != nil {
			t.Fatalf("re-encoded hello info does not re-parse: %+v: %v", info, err)
		}
		if !reflect.DeepEqual(info, back) {
			t.Fatalf("hello info round trip diverged:\n  first  %+v\n  second %+v", info, back)
		}
	})
}

// FuzzKVListRoundTrip holds the range-scan result codec to the wire
// standard: DecodeKVs feeds client-visible bytes (TxResults Value slots)
// straight into user code, so it must reject or round-trip, never panic
// or over-read — including against inflated count prefixes.
func FuzzKVListRoundTrip(f *testing.F) {
	f.Add(AppendKVs(nil, nil))
	f.Add(AppendKVs(nil, []KVEntry{{Key: "k", Value: []byte("v")}}))
	f.Add(AppendKVs(nil, []KVEntry{
		{Key: "", Value: nil},
		{Key: "p2", Value: bytes.Repeat([]byte{7}, 100)},
	}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // inflated count, no entries
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, 9))
	f.Fuzz(func(t *testing.T, payload []byte) {
		kvs, err := DecodeKVs(payload)
		if err != nil {
			return // rejected input: only property is "no panic"
		}
		again, err := DecodeKVs(AppendKVs(nil, kvs))
		if err != nil {
			t.Fatalf("re-encoded KV list does not re-decode: %v", err)
		}
		if len(again) != len(kvs) {
			t.Fatalf("KV list round trip changed length: %d != %d", len(again), len(kvs))
		}
		for i := range kvs {
			if kvs[i].Key != again[i].Key || !bytes.Equal(kvs[i].Value, again[i].Value) {
				t.Fatalf("KV entry %d diverged: %+v != %+v", i, kvs[i], again[i])
			}
		}
	})
}

func FuzzResponseRoundTrip(f *testing.F) {
	resps := []*Response{
		{ID: 1, Status: StatusOK},
		{ID: 2, Status: StatusOK, Found: true, Num: -3, Value: []byte("v"), Msg: ""},
		{ID: 3, Status: StatusRejected, Num: 1, Msg: "assert failed", TxResults: []TxResult{
			{Status: StatusOK, Num: 7}, {Status: StatusRejected}, {},
		}},
		{ID: 4, Status: StatusErr, Msg: "boom"},
		{ID: 5, Status: StatusCrossShard, Msg: "2 shards"},
		{ID: 6, Status: StatusNotPrimary, Msg: "read-only replica; primary is 10.0.0.1:7455"},
		{ID: 7, Status: StatusOK, Value: EncodeHelloInfo(&HelloInfo{
			Version: ProtoVersion, Features: FeatureCrossShard | FeatureReplStream,
			Role: RoleReplica, Shards: 4, Primary: "10.0.0.1:7455",
		})},
		// D45 result vectors: a range scan's KV list riding a sub-result
		// Value, and a lease grant (id in Num, payload in Value).
		{ID: 8, Status: StatusOK, TxResults: []TxResult{
			{Status: StatusOK, Num: 2, Value: AppendKVs(nil, []KVEntry{
				{Key: "p1", Value: []byte("one")},
				{Key: "p2", Value: []byte("two")},
			})},
			{Status: StatusOK, Found: true, Num: 41, Value: []byte("job")},
		}},
	}
	for _, resp := range resps {
		frame := AppendResponse(nil, resp)
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 30))
	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, err := ParseResponse(payload)
		if err != nil {
			return
		}
		if resp.Status == 0 || resp.Status > StatusNotPrimary {
			t.Fatalf("decoder accepted unknown status %d", resp.Status)
		}
		for i := range resp.TxResults {
			if st := resp.TxResults[i].Status; st > StatusCrossShard {
				t.Fatalf("decoder accepted unknown sub-result status %d", st)
			}
		}
		frame := AppendResponse(nil, resp)
		back, err := ParseResponse(frame[4:])
		if err != nil {
			t.Fatalf("re-encoded response does not re-parse: %+v: %v", resp, err)
		}
		if !reflect.DeepEqual(resp, back) {
			t.Fatalf("response round trip diverged:\n  first  %+v\n  second %+v", resp, back)
		}
	})
}
