package server

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pnstm"
	"pnstm/stmlib"
)

// WAL-shipping replica (D39, D41–D42). A replica is an in-memory server
// whose per-shard stores are driven not by client mutations but by the
// primary's WAL streams: one tailing connection per shard subscribes
// from applied+1, replays every record through the same deterministic
// union-find-grouped replay path recovery uses (replayBatch), and
// tracks a staleness watermark (applied LSN vs. the primary's head,
// freshness-stamped by heartbeats). Read-only envelopes are served from
// local state off the normal group-commit read path — multiplying the
// primary's read capacity, which is the point — while mutations are
// refused with StatusNotPrimary naming the primary. Promote() flips the
// replica into an ordinary (in-memory) primary for fast failover.

const (
	replDialTimeout    = 5 * time.Second
	replBackoffFloor   = 100 * time.Millisecond
	replBackoffCeiling = 3 * time.Second
)

// replicator owns the per-shard tailing loops of a replica server.
type replicator struct {
	s       *Server
	primary string

	promoted atomic.Bool

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	shards []*shardRepl
}

// shardRepl is one shard's replication cursor and health.
type shardRepl struct {
	mu        sync.Mutex
	connected bool
	applied   uint64 // last LSN replayed into the local store
	head      uint64 // primary's durable tail, as last reported
	caughtAt  time.Time
	// caughtAt is the last instant applied >= head held with the stream
	// live — the zero of the staleness clock. Zero value: never caught
	// up, staleness unknown.
	lastErr string
	// forceResync wipes the local shard and resyncs from scratch on the
	// next connection — set when replay diverged (the local state can no
	// longer be trusted to extend).
	forceResync bool
}

func newReplicator(s *Server, primary string) *replicator {
	r := &replicator{
		s:       s,
		primary: primary,
		stopCh:  make(chan struct{}),
		shards:  make([]*shardRepl, len(s.shards)),
	}
	for i := range r.shards {
		r.shards[i] = &shardRepl{}
	}
	for i := range s.shards {
		r.wg.Add(1)
		go r.run(i)
	}
	return r
}

// stop halts every tailing loop and waits them out. Idempotent.
func (r *replicator) stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.wg.Wait()
}

func (r *replicator) stopped() bool {
	select {
	case <-r.stopCh:
		return true
	default:
		return false
	}
}

// run is one shard's reconnect loop: stream until the connection or the
// primary fails, back off exponentially (floor on every success so a
// long-lived stream's eventual drop retries fast), repeat until stop.
func (r *replicator) run(i int) {
	defer r.wg.Done()
	backoff := replBackoffFloor
	for {
		if r.stopped() {
			return
		}
		err := r.stream(i)
		if r.stopped() {
			return
		}
		sr := r.shards[i]
		sr.mu.Lock()
		if err != nil {
			sr.lastErr = err.Error()
		}
		sr.mu.Unlock()
		if err != nil {
			r.s.log.Warn("replication stream failed; reconnecting", "shard", i, "primary", r.primary, "backoff", backoff, "err", err)
		}
		select {
		case <-time.After(backoff):
		case <-r.stopCh:
			return
		}
		if backoff *= 2; backoff > replBackoffCeiling {
			backoff = replBackoffCeiling
		}
	}
}

// stream runs one connection's life: dial, handshake, subscribe from
// applied+1, then apply frames until the stream breaks.
func (r *replicator) stream(i int) error {
	sr := r.shards[i]
	d := net.Dialer{Timeout: replDialTimeout}
	nc, err := d.Dial("tcp", r.primary)
	if err != nil {
		return err
	}
	defer nc.Close()
	// Watchdog: stop must unblock a read parked on an idle stream.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-r.stopCh:
			nc.Close()
		case <-watchDone:
		}
	}()

	bw := bufio.NewWriter(nc)
	br := bufio.NewReader(nc)
	send := func(req *Request) error {
		buf, err := AppendRequest(nil, req)
		if err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		return bw.Flush()
	}
	recv := func() (*Response, error) {
		frame, err := ReadFrame(br)
		if err != nil {
			return nil, err
		}
		return ParseResponse(frame)
	}

	// Handshake: the primary must speak the replication protocol, be an
	// actual primary, and run the same shard count (structure routing is
	// a function of the count; a mismatched replica would file records
	// under the wrong shards).
	if err := send(&Request{ID: 1, Op: OpHello, Hello: &Hello{Version: ProtoVersion, Features: FeatureCrossShard | FeatureReplStream}}); err != nil {
		return err
	}
	resp, err := recv()
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("primary %s rejected the handshake (%s) — a build without replication support?", r.primary, resp.Msg)
	}
	info, err := ParseHelloInfo(resp.Value)
	if err != nil {
		return err
	}
	if info.Features&FeatureReplStream == 0 {
		return fmt.Errorf("primary %s serves no replication stream (running without a data directory?)", r.primary)
	}
	if info.Role != RolePrimary {
		return fmt.Errorf("%s is itself a replica (of %s); replicate from the primary", r.primary, info.Primary)
	}
	if int(info.Shards) != len(r.s.shards) {
		return fmt.Errorf("shard count mismatch: primary %s runs %d shards, this replica runs %d", r.primary, info.Shards, len(r.s.shards))
	}

	sr.mu.Lock()
	resync := sr.forceResync
	sr.forceResync = false
	if resync {
		sr.applied = 0
	}
	from := sr.applied + 1
	sr.mu.Unlock()
	if resync {
		if err := r.installImage(i, nil, 0, 0); err != nil {
			return err
		}
	}

	if err := send(&Request{ID: 2, Op: OpReplSubscribe, Sub: &ReplSubscribe{Shard: uint16(i), FromLSN: from}}); err != nil {
		return err
	}
	sr.mu.Lock()
	sr.connected = true
	sr.lastErr = ""
	sr.mu.Unlock()
	defer func() {
		sr.mu.Lock()
		sr.connected = false
		sr.mu.Unlock()
	}()

	var snapBuf, recBuf []byte
	for {
		resp, err := recv()
		if err != nil {
			return err
		}
		if resp.Status != StatusOK {
			return fmt.Errorf("stream error from %s: %s", r.primary, resp.Msg)
		}
		f, err := parseReplFrame(resp.Value)
		if err != nil {
			return err
		}
		switch f.Kind {
		case replFrameHeartbeat:
			r.observe(i, 0, f.HeadLSN, false)
		case replFrameSnapshot:
			snapBuf = append(snapBuf, f.Chunk...)
			if !f.Last {
				continue
			}
			img, watermark, err := decodeImage(snapBuf)
			snapBuf = nil
			if err != nil {
				return fmt.Errorf("snapshot from %s: %w", r.primary, err)
			}
			if err := r.installImage(i, img, watermark, f.LSN); err != nil {
				return err
			}
			r.observe(i, f.LSN, f.LSN, true)
		case replFrameRecord:
			recBuf = append(recBuf, f.Chunk...)
			if !f.Last {
				continue
			}
			body := recBuf
			recBuf = nil
			if err := r.applyRecord(i, body); err != nil {
				// Replay diverged: local state can no longer be trusted to
				// extend. Wipe and resync from scratch on the next connect.
				sr.mu.Lock()
				sr.forceResync = true
				sr.mu.Unlock()
				return fmt.Errorf("apply lsn %d: %w", f.LSN, err)
			}
			r.observe(i, f.LSN, f.HeadLSN, true)
		}
	}
}

// observe folds a frame's progress into the shard's watermark. applied
// is taken only when setApplied (heartbeats carry none).
func (r *replicator) observe(i int, applied, head uint64, setApplied bool) {
	sr := r.shards[i]
	sr.mu.Lock()
	if setApplied && applied > sr.applied {
		sr.applied = applied
	}
	if head > sr.head {
		sr.head = head
	}
	if sr.applied >= sr.head {
		sr.caughtAt = time.Now()
	}
	sr.mu.Unlock()
}

// installImage swaps shard i's store for a fresh registry loaded with
// img (nil: empty — the divergence wipe). The fill happens on a private
// registry outside the pause; only the pointer swap holds the shard's
// commit pipeline, so reads stall for microseconds, not for the import.
func (r *replicator) installImage(i int, img *stmlib.RegistryImage, watermark, covered uint64) error {
	sh := r.s.shards[i]
	fresh := stmlib.NewRegistry(r.s.cfg.Registry)
	if img != nil {
		if err := sh.rt.Run(func(c *pnstm.Ctx) { fresh.Import(c, img) }); err != nil {
			return fmt.Errorf("install snapshot: %w", err)
		}
	}
	release := sh.pauseCommits()
	sh.reg = fresh
	sh.b.reg = fresh
	sh.maxGSN.Store(watermark)
	release()
	sr := r.shards[i]
	sr.mu.Lock()
	sr.applied = covered
	sr.mu.Unlock()
	return nil
}

// applyRecord replays one shipped WAL record into shard i — the exact
// shape recovery replays from disk (replayStore): cross-shard records
// replay their write-only sub-envelope and advance the GSN watermark,
// batch records replay as one root with union-find-grouped children.
// Replays run through the runtime directly (not the batcher's commit
// pipeline), so concurrent read batches only ever pay STM conflicts.
func (r *replicator) applyRecord(i int, body []byte) error {
	sh := r.s.shards[i]
	if isGSNRecord(body) {
		gsn, _, req, err := decodeGSNRecord(body)
		if err != nil {
			return err
		}
		if err := replayBatch(sh.rt, sh.reg, r.s.cfg.BatchFanout, []*Request{req}); err != nil {
			return err
		}
		sh.maxGSN.Store(gsn)
		return nil
	}
	reqs, err := decodeBatch(body)
	if err != nil {
		return err
	}
	return replayBatch(sh.rt, sh.reg, r.s.cfg.BatchFanout, reqs)
}

// shardStaleness is shard i's watermark age: how old the served state
// might be. 0-ish while caught up with live heartbeats; growing once
// the stream lags or drops; unknown (ok=false) before the first catch-
// up. The clock anchors at caughtAt, so a replica that WAS current and
// lost its primary reports honestly growing staleness.
func (r *replicator) shardStaleness(i int) (time.Duration, bool) {
	sr := r.shards[i]
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.caughtAt.IsZero() {
		return 0, false
	}
	return time.Since(sr.caughtAt), true
}

// staleness is the server-wide watermark: the max across shards,
// unknown until every shard has caught up once.
func (r *replicator) staleness() (time.Duration, bool) {
	var worst time.Duration
	for i := range r.shards {
		st, ok := r.shardStaleness(i)
		if !ok {
			return 0, false
		}
		if st > worst {
			worst = st
		}
	}
	return worst, true
}

// isReplica reports whether the server currently refuses mutations —
// a -replica-of server that has not been promoted.
func (s *Server) isReplica() bool {
	return s.repl != nil && !s.repl.promoted.Load()
}

// replicaGate screens one parsed request on a replica: mutations are
// redirected with StatusNotPrimary, and reads are refused the same way
// when the connection's Hello declared a staleness bound the replica
// cannot currently meet. Control-plane ops always pass.
func (s *Server) replicaGate(req *Request, bound time.Duration) (Response, bool) {
	switch req.Op {
	case OpPing, OpHello, OpStats, OpReplSubscribe:
		return Response{}, false
	}
	if canMutate(req) {
		return Response{ID: req.ID, Status: StatusNotPrimary, Msg: "read-only replica; primary is " + s.cfg.ReplicaOf}, true
	}
	if bound > 0 {
		st, ok := s.repl.staleness()
		if !ok || st > bound {
			return Response{ID: req.ID, Status: StatusNotPrimary, Msg: fmt.Sprintf("replica too stale (bound %s); primary is %s", bound, s.cfg.ReplicaOf)}, true
		}
	}
	return Response{}, false
}

// Promote flips a replica into a primary (D42): mutations are accepted
// from the instant the flag flips, the tailing loops are stopped and
// waited out, and the staleness gates disarm. The store keeps serving
// throughout — failover is the flip of one atomic. Returns false on a
// primary or an already-promoted replica. The promoted server remains
// in-memory; re-point durable clients (or restart it with a data dir)
// as a follow-up operation.
func (s *Server) Promote() bool {
	if s.repl == nil {
		return false
	}
	if !s.repl.promoted.CompareAndSwap(false, true) {
		return false
	}
	s.repl.stop()
	s.log.Info("promoted to primary", "former_primary", s.cfg.ReplicaOf)
	return true
}

// ReplicaShardStatus is one shard's row in ReplicaStatus.
type ReplicaShardStatus struct {
	Shard      int    `json:"shard"`
	Connected  bool   `json:"connected"`
	AppliedLSN uint64 `json:"applied_lsn"`
	HeadLSN    uint64 `json:"head_lsn"`
	// StalenessMs is the shard's watermark age in milliseconds; -1 until
	// the shard has caught up with the primary once.
	StalenessMs int64  `json:"staleness_ms"`
	LastError   string `json:"last_error,omitempty"`
}

// ReplicaStatus is the GET /replica payload: the server's role and, on
// replicas, the per-shard replication watermarks.
type ReplicaStatus struct {
	Role           string               `json:"role"`
	Primary        string               `json:"primary,omitempty"`
	Promoted       bool                 `json:"promoted,omitempty"`
	MaxStalenessMs int64                `json:"max_staleness_ms,omitempty"`
	Shards         []ReplicaShardStatus `json:"shards,omitempty"`
}

// ReplicaStatus reports the replication state (meaningful on any
// server: a plain primary answers {"role":"primary"}).
func (s *Server) ReplicaStatus() ReplicaStatus {
	if s.repl == nil {
		return ReplicaStatus{Role: "primary"}
	}
	st := ReplicaStatus{
		Role:           "replica",
		Primary:        s.cfg.ReplicaOf,
		Promoted:       s.repl.promoted.Load(),
		MaxStalenessMs: s.cfg.ReplicaMaxStaleness.Milliseconds(),
	}
	if st.Promoted {
		st.Role = "primary"
	}
	for i, sr := range s.repl.shards {
		sr.mu.Lock()
		row := ReplicaShardStatus{
			Shard:      i,
			Connected:  sr.connected,
			AppliedLSN: sr.applied,
			HeadLSN:    sr.head,
			LastError:  sr.lastErr,
		}
		sr.mu.Unlock()
		row.StalenessMs = -1
		if stale, ok := s.repl.shardStaleness(i); ok {
			row.StalenessMs = stale.Milliseconds()
		}
		st.Shards = append(st.Shards, row)
	}
	return st
}
