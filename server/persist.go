package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pnstm"
	"pnstm/stmlib"
)

// Durability: the group commit is the durability unit. Each batch that
// mutated the store is encoded as ONE wal record — the mutating
// requests, in the serialization order their child transactions
// committed in — and appended with ONE fsync before any response of the
// batch is acked (D17). Recovery loads the newest snapshot (a
// stmlib.Registry image captured by a parallel-nested bulk read) and
// replays the WAL tail through the same shape as live traffic: each
// logged batch is a root transaction, each logged request a nested
// child, children fanned out over parallel blocks grouped by structure
// so that same-structure requests re-apply in their logged
// serialization order while different structures replay concurrently
// (D21).

// ---------------------------------------------------------------------------
// Batch records
// ---------------------------------------------------------------------------

// decodeBatch parses a wal record body — a sequence of protocol
// request frames, the same length-prefixed framing the wire uses (see
// batcher.logBatch for the encoder) — back into requests.
func decodeBatch(body []byte) ([]*Request, error) {
	var reqs []*Request
	off := 0
	for off < len(body) {
		if off+4 > len(body) {
			return nil, fmt.Errorf("server: wal record: truncated frame header")
		}
		n := int(binary.BigEndian.Uint32(body[off:]))
		off += 4
		if n > len(body)-off {
			return nil, fmt.Errorf("server: wal record: frame of %d bytes overruns record", n)
		}
		req, err := ParseRequest(body[off : off+n])
		if err != nil {
			return nil, fmt.Errorf("server: wal record: %w", err)
		}
		reqs = append(reqs, req)
		off += n
	}
	return reqs, nil
}

// writeSubOp reports whether a sub-opcode can change the store.
func writeSubOp(op uint8) bool {
	switch op {
	case OpMapPut, OpMapDelete, OpMapAdd, OpQueuePush, OpQueuePop, OpCounterAdd,
		OpSortedPut, OpSortedPutTTL, OpSortedDelete, OpMapPutTTL,
		OpExpire, OpSortedExpire,
		OpLeaseConsume, OpLeaseAck, OpLeaseNack, OpLeaseReclaim:
		return true
	}
	return false
}

// canMutate reports whether a request can change the store at all —
// the static filter deciding which requests need the commit-order
// ticket wrapper. A pure-read envelope (gets, lens, sums, guards)
// skips the wrapper like any other read.
func canMutate(req *Request) bool {
	switch req.Op {
	case OpMapPut, OpMapDelete, OpMapAdd, OpQueuePush, OpQueuePop, OpCounterAdd, OpCheckout:
		return true
	case OpTx:
		for i := range req.Tx.Ops {
			if writeSubOp(req.Tx.Ops[i].Op) {
				return true
			}
		}
	}
	return false
}

// mutating reports whether the executed request changed the store —
// only those are logged. Rejected envelopes, missed deletes/pops and
// all pure reads left nothing to redo.
func mutating(req *Request, resp *Response) bool {
	if resp.Status != StatusOK {
		return false
	}
	switch req.Op {
	case OpMapPut, OpMapAdd, OpQueuePush, OpCounterAdd, OpCheckout:
		return true
	case OpMapDelete, OpQueuePop:
		return resp.Found
	case OpTx:
		for i := range req.Tx.Ops {
			switch req.Tx.Ops[i].Op {
			case OpMapPut, OpMapAdd, OpQueuePush, OpCounterAdd,
				OpSortedPut, OpSortedPutTTL, OpMapPutTTL:
				return true
			case OpMapDelete, OpQueuePop,
				OpSortedDelete, OpExpire, OpSortedExpire,
				OpLeaseConsume, OpLeaseAck, OpLeaseNack:
				if i < len(resp.TxResults) && resp.TxResults[i].Found {
					return true
				}
			case OpLeaseReclaim:
				if i < len(resp.TxResults) && resp.TxResults[i].Num > 0 {
					return true
				}
			}
		}
	}
	return false
}

// replayGroups lists the structure group keys a logged request touches.
// Replay applies same-structure requests sequentially in logged order
// (their live serialization order) and different structures in
// parallel. A single-structure request touches one group; an OpTx
// envelope touches every structure any sub-op reads or writes — guards
// included, because a guard's outcome on replay must observe the same
// per-structure state it did live.
func replayGroups(req *Request) []string {
	switch req.Op {
	case OpMapPut, OpMapDelete, OpMapAdd:
		return []string{"m\x00" + req.Name}
	case OpQueuePush, OpQueuePop:
		return []string{"q\x00" + req.Name}
	case OpCounterAdd:
		return []string{"c\x00" + req.Name}
	case OpTx:
		var keys []string
		seen := make(map[string]bool, len(req.Tx.Ops))
		for i := range req.Tx.Ops {
			k := txGroupKey(&req.Tx.Ops[i])
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		return keys
	}
	return []string{"?"}
}

// replayBatch re-executes one logged batch: a root transaction whose
// nested children are the logged requests, spread over ≤ fanout
// parallel blocks by structure. Within a structure the logged order is
// the commit order, so the recovered state matches the pre-crash store
// exactly. Multi-structure envelopes (OpTx) glue their structures into
// one replay component (union-find): every request touching ANY of
// those structures replays sequentially with the envelope, in logged
// order, so envelope guards and read-modify-write sub-ops observe
// exactly the per-structure history they observed live; disjoint
// components still replay concurrently.
func replayBatch(rt *pnstm.Runtime, reg *stmlib.Registry, fanout int, reqs []*Request) error {
	if len(reqs) == 0 {
		return nil
	}
	// Union the group keys each request touches, then bucket requests by
	// their component root, preserving logged order within a component.
	parent := make(map[string]string)
	var find func(string) string
	find = func(k string) string {
		p, ok := parent[k]
		if !ok || p == k {
			parent[k] = k
			return k
		}
		root := find(p)
		parent[k] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	touched := make([][]string, len(reqs))
	for i, r := range reqs {
		keys := replayGroups(r)
		touched[i] = keys
		for _, k := range keys[1:] {
			union(keys[0], k)
		}
	}
	var order []string
	groups := make(map[string][]*Request)
	for i, r := range reqs {
		root := find(touched[i][0])
		if _, ok := groups[root]; !ok {
			order = append(order, root)
		}
		groups[root] = append(groups[root], r)
	}
	blocks := fanout
	if blocks > len(order) {
		blocks = len(order)
	}
	if blocks < 1 {
		blocks = 1
	}
	// Only requests that succeeded live are logged, and same-structure
	// ordering is preserved — so on replay every request must succeed
	// identically. Anything else is divergence (a lost record, an
	// ordering bug) and the boot must fail rather than serve it.
	// Parallel children report through disjoint slots.
	divergence := make([]error, blocks)
	runErr := rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			apply := func(c *pnstm.Ctx, slot int, keys []string) {
				divergence[slot] = nil // the enclosing tx may retry; judge the final attempt
				for _, k := range keys {
					for _, r := range groups[k] {
						resp := applyRequest(c, reg, r)
						if divergence[slot] == nil {
							if resp.Status != StatusOK {
								divergence[slot] = fmt.Errorf("op %d on %q replayed to status %d (%s)", r.Op, r.Name, resp.Status, resp.Msg)
							} else if (r.Op == OpMapDelete || r.Op == OpQueuePop) && !resp.Found {
								divergence[slot] = fmt.Errorf("op %d on %q found nothing on replay", r.Op, r.Name)
							}
						}
					}
				}
			}
			if blocks <= 1 {
				apply(c, 0, order)
				return nil
			}
			fns := make([]func(*pnstm.Ctx), blocks)
			for g := 0; g < blocks; g++ {
				g := g
				lo, hi := g*len(order)/blocks, (g+1)*len(order)/blocks
				keys := order[lo:hi]
				fns[g] = func(c *pnstm.Ctx) {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						apply(c, g, keys)
						return nil
					})
				}
			}
			c.Parallel(fns...)
			return nil
		})
	})
	if runErr != nil {
		return runErr
	}
	for _, err := range divergence {
		if err != nil {
			return fmt.Errorf("server: replay diverged: %w", err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(buf, v)
}

// imageMagic opens a v2 snapshot payload. A v1 payload starts with its
// u32 map count; read as that count, "IMG2" is ≈1.23e9 maps — orders of
// magnitude past what any real snapshot could hold (the first name
// field alone would overrun the payload) — so the magic can never be
// confused with a legal v1 image, and v1 images (whose first bytes are
// a plausible small count) can never be mistaken for v2.
var imageMagic = []byte("IMG2")

// imageVersion is the current snapshot format: v2 appends sorted-map,
// map-TTL and queue-lease blocks after the v1 body. decodeImage still
// reads v1 (magic absent) so snapshots written before the bump restore.
const imageVersion = 2

// encodeImage renders a registry export as the snapshot payload
// (deterministically: names and keys sorted), reusing the protocol's
// length-prefixed primitives. maxGSN — the highest cross-shard GSN the
// covered log prefix contained (0: none) — trails the payload as the
// snapshot's watermark: recovery uses it to tell "this shard's copy of
// a GSN record was truncated by a checkpoint" from "this shard never
// logged it" (see reconcileGSNs).
func encodeImage(img *stmlib.RegistryImage, maxGSN uint64) []byte {
	buf := append([]byte(nil), imageMagic...)
	buf = append(buf, imageVersion)
	mapNames := sortedKeys(img.Maps)
	buf = appendU32(buf, uint32(len(mapNames)))
	for _, name := range mapNames {
		buf = appendU16Str(buf, name)
		entries := img.Maps[name]
		keys := sortedKeys(entries)
		buf = appendU32(buf, uint32(len(keys)))
		for _, k := range keys {
			buf = appendU16Str(buf, k)
			buf = appendU32Bytes(buf, entries[k])
		}
	}
	queueNames := sortedKeys(img.Queues)
	buf = appendU32(buf, uint32(len(queueNames)))
	for _, name := range queueNames {
		buf = appendU16Str(buf, name)
		elems := img.Queues[name]
		buf = appendU32(buf, uint32(len(elems)))
		for _, v := range elems {
			buf = appendU32Bytes(buf, v)
		}
	}
	counterNames := sortedKeys(img.Counters)
	buf = appendU32(buf, uint32(len(counterNames)))
	for _, name := range counterNames {
		buf = appendU16Str(buf, name)
		buf = appendI64(buf, img.Counters[name])
	}
	// v2 blocks: sorted maps (entries carry their deadline), map TTLs,
	// outstanding queue leases, and lease-id watermarks. The expiry index
	// is NOT serialized — Import's structure hooks rebuild it exactly.
	sortedNames := sortedKeys(img.Sorted)
	buf = appendU32(buf, uint32(len(sortedNames)))
	for _, name := range sortedNames {
		buf = appendU16Str(buf, name)
		entries := img.Sorted[name]
		buf = appendU32(buf, uint32(len(entries)))
		for _, e := range entries {
			buf = appendU16Str(buf, e.Key)
			buf = appendU32Bytes(buf, e.Value)
			buf = appendI64(buf, e.Exp)
		}
	}
	ttlNames := sortedKeys(img.MapTTLs)
	buf = appendU32(buf, uint32(len(ttlNames)))
	for _, name := range ttlNames {
		buf = appendU16Str(buf, name)
		ttls := img.MapTTLs[name]
		keys := sortedKeys(ttls)
		buf = appendU32(buf, uint32(len(keys)))
		for _, k := range keys {
			buf = appendU16Str(buf, k)
			buf = appendI64(buf, ttls[k])
		}
	}
	leaseNames := sortedKeys(img.Leases)
	buf = appendU32(buf, uint32(len(leaseNames)))
	for _, name := range leaseNames {
		buf = appendU16Str(buf, name)
		recs := img.Leases[name]
		buf = appendU32(buf, uint32(len(recs)))
		for _, rec := range recs {
			buf = binary.BigEndian.AppendUint64(buf, rec.ID)
			buf = appendU32Bytes(buf, rec.Value)
			buf = appendI64(buf, rec.Deadline)
		}
	}
	seqNames := sortedKeys(img.LeaseSeqs)
	buf = appendU32(buf, uint32(len(seqNames)))
	for _, name := range seqNames {
		buf = appendU16Str(buf, name)
		buf = binary.BigEndian.AppendUint64(buf, img.LeaseSeqs[name])
	}
	buf = binary.BigEndian.AppendUint64(buf, maxGSN)
	return buf
}

// decodeImage parses a snapshot payload, returning the image and its
// cross-shard GSN watermark. Both live versions decode: v2 (magic
// prefix, D46) and the v1 body written before the sorted/TTL/lease
// blocks existed — a v1 image restores with those blocks empty.
// Pre-D31 snapshots end right after the counters block — they decode
// with watermark 0, which is exact (no GSN record existed when they
// were written).
func decodeImage(data []byte) (*stmlib.RegistryImage, uint64, error) {
	c := &cursor{b: data}
	v2 := len(data) > len(imageMagic) && string(data[:len(imageMagic)]) == string(imageMagic)
	if v2 {
		c.take(len(imageMagic))
		if ver := c.u8(); ver != imageVersion {
			return nil, 0, fmt.Errorf("server: snapshot: unknown image version %d", ver)
		}
	}
	img := &stmlib.RegistryImage{
		Maps:     make(map[string]map[string][]byte),
		Queues:   make(map[string][][]byte),
		Counters: make(map[string]int64),
	}
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		name := c.str16()
		entries := make(map[string][]byte)
		for j, m := 0, int(c.u32()); j < m && c.err == nil; j++ {
			k := c.str16()
			entries[k] = c.bytes32()
		}
		img.Maps[name] = entries
	}
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		name := c.str16()
		var elems [][]byte
		for j, m := 0, int(c.u32()); j < m && c.err == nil; j++ {
			elems = append(elems, c.bytes32())
		}
		img.Queues[name] = elems
	}
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		name := c.str16()
		img.Counters[name] = c.i64()
	}
	if v2 {
		for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
			name := c.str16()
			m := int(c.u32())
			entries := make([]stmlib.SortedEntry[string, []byte], 0, m)
			for j := 0; j < m && c.err == nil; j++ {
				var e stmlib.SortedEntry[string, []byte]
				e.Key = c.str16()
				e.Value = c.bytes32()
				e.Exp = c.i64()
				entries = append(entries, e)
			}
			if img.Sorted == nil {
				img.Sorted = make(map[string][]stmlib.SortedEntry[string, []byte])
			}
			img.Sorted[name] = entries
		}
		for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
			name := c.str16()
			ttls := make(map[string]int64)
			for j, m := 0, int(c.u32()); j < m && c.err == nil; j++ {
				k := c.str16()
				ttls[k] = c.i64()
			}
			if img.MapTTLs == nil {
				img.MapTTLs = make(map[string]map[string]int64)
			}
			img.MapTTLs[name] = ttls
		}
		for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
			name := c.str16()
			m := int(c.u32())
			recs := make([]stmlib.LeaseRecord[[]byte], 0, m)
			for j := 0; j < m && c.err == nil; j++ {
				var rec stmlib.LeaseRecord[[]byte]
				rec.ID = c.u64()
				rec.Value = c.bytes32()
				rec.Deadline = c.i64()
				recs = append(recs, rec)
			}
			if img.Leases == nil {
				img.Leases = make(map[string][]stmlib.LeaseRecord[[]byte])
			}
			img.Leases[name] = recs
		}
		for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
			name := c.str16()
			if img.LeaseSeqs == nil {
				img.LeaseSeqs = make(map[string]uint64)
			}
			img.LeaseSeqs[name] = c.u64()
		}
	}
	var maxGSN uint64
	if c.err == nil && len(c.b)-c.off == 8 {
		maxGSN = c.u64() // trailing watermark; absent in pre-D31 payloads
	}
	if err := c.done(); err != nil {
		return nil, 0, fmt.Errorf("server: snapshot: %w", err)
	}
	return img, maxGSN, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------------
// Cross-shard (GSN) records
// ---------------------------------------------------------------------------

// gsnMagic opens every cross-shard WAL record (D30). Read as the
// big-endian u32 length a batch record would start with, it is ≈1.48e9
// — far beyond MaxFrame — so a pre-D31 reader rejects the record as an
// overrun rather than misparsing it, and no legal batch record can
// begin with these bytes.
var gsnMagic = []byte("XGSN")

// isGSNRecord reports whether a WAL record body is a cross-shard
// (GSN-stamped) record rather than a plain batch record.
func isGSNRecord(body []byte) bool {
	return len(body) >= len(gsnMagic) && string(body[:len(gsnMagic)]) == string(gsnMagic)
}

// encodeGSNRecord renders one shard's copy of a committed cross-shard
// envelope:
//
//	"XGSN" | u64 gsn | u16 count | count × u16 shard id | request frame
//
// The shard-id list is the envelope's LOGGING set — every shard whose
// slice wrote, identical in all copies, which is what lets recovery
// check completeness — and the request frame (the wire framing,
// 4-byte length included) holds THIS shard's write-only sub-envelope.
func encodeGSNRecord(gsn uint64, logSet []int, req *Request) ([]byte, error) {
	buf := append([]byte(nil), gsnMagic...)
	buf = binary.BigEndian.AppendUint64(buf, gsn)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(logSet)))
	for _, id := range logSet {
		buf = binary.BigEndian.AppendUint16(buf, uint16(id))
	}
	return AppendRequest(buf, req)
}

// decodeGSNRecord parses a cross-shard record body. Any malformed
// input — bad magic, truncated fields, trailing bytes, a frame that is
// not a valid OpTx request, a zero GSN, an empty logging set — is
// rejected with an error, never a panic (fuzzed).
func decodeGSNRecord(body []byte) (gsn uint64, logSet []int, req *Request, err error) {
	if !isGSNRecord(body) {
		return 0, nil, nil, fmt.Errorf("server: not a cross-shard record")
	}
	c := &cursor{b: body, off: len(gsnMagic)}
	gsn = c.u64()
	count := int(c.u16())
	logSet = make([]int, 0, count)
	for i := 0; i < count && c.err == nil; i++ {
		logSet = append(logSet, int(c.u16()))
	}
	frame := c.take(int(c.u32()))
	if cerr := c.done(); cerr != nil {
		return 0, nil, nil, fmt.Errorf("server: cross-shard record: %w", cerr)
	}
	req, perr := ParseRequest(frame)
	if perr != nil {
		return 0, nil, nil, fmt.Errorf("server: cross-shard record: %w", perr)
	}
	if req.Op != OpTx {
		return 0, nil, nil, fmt.Errorf("server: cross-shard record carries opcode %d, want OpTx", req.Op)
	}
	if gsn == 0 {
		return 0, nil, nil, fmt.Errorf("server: cross-shard record with zero gsn")
	}
	if len(logSet) == 0 {
		return 0, nil, nil, fmt.Errorf("server: cross-shard record with empty logging set")
	}
	return gsn, logSet, req, nil
}

// ---------------------------------------------------------------------------
// Recovery and checkpointing
// ---------------------------------------------------------------------------

// gsnAt is one GSN record's position in a shard's log.
type gsnAt struct {
	lsn    uint64
	gsn    uint64
	logSet []int
}

// shardScan is phase A's per-shard recovery inventory: the decoded
// snapshot (nil: none) with its GSN watermark, every GSN record's
// metadata in log order, and the log's tail LSN. Nothing is applied in
// this phase — wal.Replay re-reads the segments from disk, so the
// apply pass (replayStore) can run it again.
type shardScan struct {
	img       *stmlib.RegistryImage
	watermark uint64
	gsns      []gsnAt
	tailLSN   uint64
}

// scanStore is recovery phase A for one shard: open the snapshot and
// inventory the log's GSN records without applying anything.
func (sh *shard) scanStore(shards int) (*shardScan, error) {
	scan := &shardScan{}
	if data, lsn, ok := sh.wal.Snapshot(); ok {
		img, mark, err := decodeImage(data)
		if err != nil {
			return nil, err
		}
		scan.img, scan.watermark = img, mark
	} else if lsn > 0 {
		// The log says a snapshot covers lsn 1..N but its payload will
		// not load: replaying only the tail would be the missing-prefix
		// corruption. Refuse to serve divergent state.
		return nil, fmt.Errorf("server: snapshot covering lsn %d exists but failed to load; refusing to recover without it", lsn)
	}
	scan.tailLSN = sh.wal.TailLSN()
	err := sh.wal.Replay(func(lsn uint64, body []byte) error {
		if !isGSNRecord(body) {
			return nil
		}
		gsn, logSet, _, err := decodeGSNRecord(body)
		if err != nil {
			return fmt.Errorf("server: wal lsn %d: %w", lsn, err)
		}
		for _, member := range logSet {
			if member < 0 || member >= shards {
				return fmt.Errorf("server: wal lsn %d: gsn %d names shard %d of a %d-shard store", lsn, gsn, member, shards)
			}
		}
		scan.gsns = append(scan.gsns, gsnAt{lsn: lsn, gsn: gsn, logSet: logSet})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scan, nil
}

// reconcileGSNs is recovery phase B, the global step: decide which
// cross-shard envelopes the directory holds COMPLETELY. A GSN g with
// logging set L is complete iff every member of L either holds g's
// record in its log or has a snapshot watermark ≥ g (its copy was
// applied and then truncated by a checkpoint — appendGSNRecords latches
// all logs on partial failure precisely so a checkpoint can never
// cover a GSN its peers missed). An incomplete GSN — the crash landed
// between the participants' fsyncs — is dropped on EVERY shard, which
// is sound only because nothing after it in any log can depend on it:
// the coordinator held every participant's commit slots until all
// appends returned, so a lost append means the record is the very last
// thing its log ever received. Any shard holding a dropped GSN
// anywhere but its tail is divergence, and the boot fails. A dropped
// record is then physically truncated from its log (openDurability
// phase B′) before the server serves: left on disk it would sit at a
// non-tail position after the next append — failing every later boot —
// or be resurrected by the watermark rule once the missing peer's
// snapshot advances past its GSN.
func reconcileGSNs(scans []*shardScan) (dropped map[uint64]bool, maxGSN uint64, err error) {
	present := make([]map[uint64]bool, len(scans))
	for i, sc := range scans {
		if sc.watermark > maxGSN {
			maxGSN = sc.watermark
		}
		present[i] = make(map[uint64]bool, len(sc.gsns))
		for _, g := range sc.gsns {
			if g.gsn > maxGSN {
				maxGSN = g.gsn
			}
			present[i][g.gsn] = true
		}
	}
	dropped = make(map[uint64]bool)
	for _, sc := range scans {
		for _, g := range sc.gsns {
			for _, member := range g.logSet {
				if present[member][g.gsn] || g.gsn <= scans[member].watermark {
					continue
				}
				dropped[g.gsn] = true
			}
		}
	}
	for i, sc := range scans {
		for _, g := range sc.gsns {
			if dropped[g.gsn] && g.lsn != sc.tailLSN {
				return nil, 0, fmt.Errorf("server: shard %d: incomplete cross-shard gsn %d at lsn %d is not the log tail %d; the log holds state built on a commit another shard never made durable", i, g.gsn, g.lsn, sc.tailLSN)
			}
		}
	}
	return dropped, maxGSN, nil
}

// replayStore is recovery phase C for one shard: import the snapshot,
// then replay the WAL tail record by record. Open has already
// truncated any torn or CRC-corrupt tail, so replay sees only durable,
// intact records; plain batch records replay exactly as before (D21),
// GSN records replay their write-only sub-envelope at their logged
// position — every shard's log orders its GSNs identically (strictly
// increasing), so cross-shard slices land at the same relative
// positions everywhere — and GSNs phase B dropped are skipped.
func (sh *shard) replayStore(scan *shardScan, dropped map[uint64]bool, fanout int) error {
	if scan.img != nil {
		if err := sh.rt.Run(func(c *pnstm.Ctx) { sh.reg.Import(c, scan.img) }); err != nil {
			return fmt.Errorf("server: restore snapshot: %w", err)
		}
	}
	sh.maxGSN.Store(scan.watermark)
	return sh.wal.Replay(func(lsn uint64, body []byte) error {
		if isGSNRecord(body) {
			gsn, _, req, err := decodeGSNRecord(body)
			if err != nil {
				return fmt.Errorf("server: wal lsn %d: %w", lsn, err)
			}
			if dropped[gsn] {
				return nil // incomplete cross-shard commit: skipped everywhere
			}
			if err := replayBatch(sh.rt, sh.reg, fanout, []*Request{req}); err != nil {
				return fmt.Errorf("server: replay lsn %d (gsn %d): %w", lsn, gsn, err)
			}
			sh.maxGSN.Store(gsn)
			return nil
		}
		reqs, err := decodeBatch(body)
		if err != nil {
			return fmt.Errorf("server: wal lsn %d: %w", lsn, err)
		}
		if err := replayBatch(sh.rt, sh.reg, fanout, reqs); err != nil {
			return fmt.Errorf("server: replay lsn %d: %w", lsn, err)
		}
		return nil
	})
}

// pauseCommits reserves the shard's whole commit pipeline (see
// batcher.reservePipeline) and returns the release function. Because
// filling several slots is not atomic, pauseMu admits one reserver at
// a time (two interleaved reservers would each hold half the slots and
// block forever on the rest). Checkpoint, Export and cross-shard
// coordinators all take their position in the shard's commit order
// through here.
func (sh *shard) pauseCommits() func() {
	sh.pauseMu.Lock()
	release := sh.b.reservePipeline()
	return func() {
		release()
		sh.pauseMu.Unlock()
	}
}

// checkpoint captures this shard's snapshot bound to its current WAL
// tail and persists it, letting the covered log segments be truncated.
// It holds the shard's group-commit slot while the image is captured,
// so the snapshot is exactly the state after the shard's last logged
// batch; the pause is one parallel-nested bulk read — the paper's
// mechanism keeping the stop-the-world window short — and
// encoding/writing happen after the slot is released (D22).
func (sh *shard) checkpoint() error {
	if sh.wal == nil {
		return nil
	}
	// Idle shard: the newest snapshot already covers the whole log, so a
	// new one would be byte-identical. Skip the export and the fsync.
	// (The unguarded reads race with a concurrent batch at worst into
	// one redundant or one deferred checkpoint; the next tick settles.)
	if st := sh.wal.Stats(); st.TailLSN == st.SnapshotLSN {
		return nil
	}
	release := sh.pauseCommits()
	lsn := sh.wal.TailLSN()
	gsn := sh.maxGSN.Load() // stable under the pause, like the tail LSN
	var img *stmlib.RegistryImage
	err := sh.rt.Run(func(c *pnstm.Ctx) { img = sh.reg.Export(c) })
	release()
	if err != nil {
		return fmt.Errorf("server: checkpoint export: %w", err)
	}
	return sh.wal.WriteSnapshot(encodeImage(img, gsn), lsn)
}

// Checkpoint snapshots every shard, concurrently: each shard pauses its
// own commit pipeline for the duration of its parallel-nested bulk
// read, captures its image at its own WAL tail, and writes (and fsyncs)
// its snapshot file independently — the same multiplication sharding
// gives group commits. No-op without a data directory.
func (s *Server) Checkpoint() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			if err := sh.checkpoint(); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", sh.id, err)
			}
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Export captures a stitched whole-store image: every shard pauses its
// group-commit pipeline, exports its registry via the parallel-nested
// bulk read, and the per-shard images are merged into one (counter
// partials summing — see stmlib.RegistryImage.Merge). The returned
// watermarks hold each shard's WAL tail LSN at capture time (zero
// without a data directory): the image is exactly the state after
// watermark[i] logged batches on shard i. Because every shard is paused
// before any exports begin, no group commit anywhere in the store
// overlaps the capture — the stitched image is a consistent cut.
func (s *Server) Export() (*stmlib.RegistryImage, []uint64, error) {
	releases := make([]func(), len(s.shards))
	for i, sh := range s.shards {
		releases[i] = sh.pauseCommits()
	}
	defer func() {
		for _, release := range releases {
			release()
		}
	}()

	images := make([]*stmlib.RegistryImage, len(s.shards))
	watermarks := make([]uint64, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			if sh.wal != nil {
				watermarks[i] = sh.wal.TailLSN()
			}
			errs[i] = sh.rt.Run(func(c *pnstm.Ctx) { images[i] = sh.reg.Export(c) })
		}(i, sh)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, nil, fmt.Errorf("server: export: %w", err)
	}
	img := images[0]
	for _, other := range images[1:] {
		img.Merge(other)
	}
	return img, watermarks, nil
}

// checkpointLoop runs Checkpoint on the LIVE cadence (RuntimeConfig's
// SnapshotEvery, a PUT /config knob) until Close. The ticker fires on a
// short base period and the loop decides whether the cadence has
// elapsed — so lowering the cadence, raising it, or turning
// checkpoints off entirely (cadence 0) takes effect within a second,
// without restarting the loop.
func (s *Server) checkpointLoop() {
	defer close(s.ckDone)
	// Poll at the cadence itself when it is short, at 1s otherwise — a
	// sub-second SnapshotEvery (tests) keeps its precision, and a
	// disabled or long cadence costs one wakeup per second.
	period := func() time.Duration {
		if every := s.rc.snapshotCadence(); every > 0 && every < time.Second {
			return every
		}
		return time.Second
	}
	t := time.NewTimer(period())
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-t.C:
			t.Reset(period())
			every := s.rc.snapshotCadence()
			if every <= 0 || time.Since(last) < every {
				continue
			}
			last = time.Now()
			if err := s.Checkpoint(); err != nil {
				// A failed checkpoint costs only replay time; the WAL still
				// holds everything. Keep serving.
				continue
			}
		case <-s.ckStop:
			return
		}
	}
}
