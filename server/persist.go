package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pnstm"
	"pnstm/stmlib"
)

// Durability: the group commit is the durability unit. Each batch that
// mutated the store is encoded as ONE wal record — the mutating
// requests, in the serialization order their child transactions
// committed in — and appended with ONE fsync before any response of the
// batch is acked (D17). Recovery loads the newest snapshot (a
// stmlib.Registry image captured by a parallel-nested bulk read) and
// replays the WAL tail through the same shape as live traffic: each
// logged batch is a root transaction, each logged request a nested
// child, children fanned out over parallel blocks grouped by structure
// so that same-structure requests re-apply in their logged
// serialization order while different structures replay concurrently
// (D21).

// ---------------------------------------------------------------------------
// Batch records
// ---------------------------------------------------------------------------

// decodeBatch parses a wal record body — a sequence of protocol
// request frames, the same length-prefixed framing the wire uses (see
// batcher.logBatch for the encoder) — back into requests.
func decodeBatch(body []byte) ([]*Request, error) {
	var reqs []*Request
	off := 0
	for off < len(body) {
		if off+4 > len(body) {
			return nil, fmt.Errorf("server: wal record: truncated frame header")
		}
		n := int(binary.BigEndian.Uint32(body[off:]))
		off += 4
		if n > len(body)-off {
			return nil, fmt.Errorf("server: wal record: frame of %d bytes overruns record", n)
		}
		req, err := ParseRequest(body[off : off+n])
		if err != nil {
			return nil, fmt.Errorf("server: wal record: %w", err)
		}
		reqs = append(reqs, req)
		off += n
	}
	return reqs, nil
}

// writeSubOp reports whether a sub-opcode can change the store.
func writeSubOp(op uint8) bool {
	switch op {
	case OpMapPut, OpMapDelete, OpMapAdd, OpQueuePush, OpQueuePop, OpCounterAdd:
		return true
	}
	return false
}

// canMutate reports whether a request can change the store at all —
// the static filter deciding which requests need the commit-order
// ticket wrapper. A pure-read envelope (gets, lens, sums, guards)
// skips the wrapper like any other read.
func canMutate(req *Request) bool {
	switch req.Op {
	case OpMapPut, OpMapDelete, OpMapAdd, OpQueuePush, OpQueuePop, OpCounterAdd, OpCheckout:
		return true
	case OpTx:
		for i := range req.Tx.Ops {
			if writeSubOp(req.Tx.Ops[i].Op) {
				return true
			}
		}
	}
	return false
}

// mutating reports whether the executed request changed the store —
// only those are logged. Rejected envelopes, missed deletes/pops and
// all pure reads left nothing to redo.
func mutating(req *Request, resp *Response) bool {
	if resp.Status != StatusOK {
		return false
	}
	switch req.Op {
	case OpMapPut, OpMapAdd, OpQueuePush, OpCounterAdd, OpCheckout:
		return true
	case OpMapDelete, OpQueuePop:
		return resp.Found
	case OpTx:
		for i := range req.Tx.Ops {
			switch req.Tx.Ops[i].Op {
			case OpMapPut, OpMapAdd, OpQueuePush, OpCounterAdd:
				return true
			case OpMapDelete, OpQueuePop:
				if i < len(resp.TxResults) && resp.TxResults[i].Found {
					return true
				}
			}
		}
	}
	return false
}

// replayGroups lists the structure group keys a logged request touches.
// Replay applies same-structure requests sequentially in logged order
// (their live serialization order) and different structures in
// parallel. A single-structure request touches one group; an OpTx
// envelope touches every structure any sub-op reads or writes — guards
// included, because a guard's outcome on replay must observe the same
// per-structure state it did live.
func replayGroups(req *Request) []string {
	switch req.Op {
	case OpMapPut, OpMapDelete, OpMapAdd:
		return []string{"m\x00" + req.Name}
	case OpQueuePush, OpQueuePop:
		return []string{"q\x00" + req.Name}
	case OpCounterAdd:
		return []string{"c\x00" + req.Name}
	case OpTx:
		var keys []string
		seen := make(map[string]bool, len(req.Tx.Ops))
		for i := range req.Tx.Ops {
			k := txGroupKey(&req.Tx.Ops[i])
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		return keys
	}
	return []string{"?"}
}

// replayBatch re-executes one logged batch: a root transaction whose
// nested children are the logged requests, spread over ≤ fanout
// parallel blocks by structure. Within a structure the logged order is
// the commit order, so the recovered state matches the pre-crash store
// exactly. Multi-structure envelopes (OpTx) glue their structures into
// one replay component (union-find): every request touching ANY of
// those structures replays sequentially with the envelope, in logged
// order, so envelope guards and read-modify-write sub-ops observe
// exactly the per-structure history they observed live; disjoint
// components still replay concurrently.
func replayBatch(rt *pnstm.Runtime, reg *stmlib.Registry, fanout int, reqs []*Request) error {
	if len(reqs) == 0 {
		return nil
	}
	// Union the group keys each request touches, then bucket requests by
	// their component root, preserving logged order within a component.
	parent := make(map[string]string)
	var find func(string) string
	find = func(k string) string {
		p, ok := parent[k]
		if !ok || p == k {
			parent[k] = k
			return k
		}
		root := find(p)
		parent[k] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	touched := make([][]string, len(reqs))
	for i, r := range reqs {
		keys := replayGroups(r)
		touched[i] = keys
		for _, k := range keys[1:] {
			union(keys[0], k)
		}
	}
	var order []string
	groups := make(map[string][]*Request)
	for i, r := range reqs {
		root := find(touched[i][0])
		if _, ok := groups[root]; !ok {
			order = append(order, root)
		}
		groups[root] = append(groups[root], r)
	}
	blocks := fanout
	if blocks > len(order) {
		blocks = len(order)
	}
	if blocks < 1 {
		blocks = 1
	}
	// Only requests that succeeded live are logged, and same-structure
	// ordering is preserved — so on replay every request must succeed
	// identically. Anything else is divergence (a lost record, an
	// ordering bug) and the boot must fail rather than serve it.
	// Parallel children report through disjoint slots.
	divergence := make([]error, blocks)
	runErr := rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			apply := func(c *pnstm.Ctx, slot int, keys []string) {
				divergence[slot] = nil // the enclosing tx may retry; judge the final attempt
				for _, k := range keys {
					for _, r := range groups[k] {
						resp := applyRequest(c, reg, r)
						if divergence[slot] == nil {
							if resp.Status != StatusOK {
								divergence[slot] = fmt.Errorf("op %d on %q replayed to status %d (%s)", r.Op, r.Name, resp.Status, resp.Msg)
							} else if (r.Op == OpMapDelete || r.Op == OpQueuePop) && !resp.Found {
								divergence[slot] = fmt.Errorf("op %d on %q found nothing on replay", r.Op, r.Name)
							}
						}
					}
				}
			}
			if blocks <= 1 {
				apply(c, 0, order)
				return nil
			}
			fns := make([]func(*pnstm.Ctx), blocks)
			for g := 0; g < blocks; g++ {
				g := g
				lo, hi := g*len(order)/blocks, (g+1)*len(order)/blocks
				keys := order[lo:hi]
				fns[g] = func(c *pnstm.Ctx) {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						apply(c, g, keys)
						return nil
					})
				}
			}
			c.Parallel(fns...)
			return nil
		})
	})
	if runErr != nil {
		return runErr
	}
	for _, err := range divergence {
		if err != nil {
			return fmt.Errorf("server: replay diverged: %w", err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(buf, v)
}

// encodeImage renders a registry export as the snapshot payload
// (deterministically: names and keys sorted), reusing the protocol's
// length-prefixed primitives.
func encodeImage(img *stmlib.RegistryImage) []byte {
	var buf []byte
	mapNames := sortedKeys(img.Maps)
	buf = appendU32(buf, uint32(len(mapNames)))
	for _, name := range mapNames {
		buf = appendU16Str(buf, name)
		entries := img.Maps[name]
		keys := sortedKeys(entries)
		buf = appendU32(buf, uint32(len(keys)))
		for _, k := range keys {
			buf = appendU16Str(buf, k)
			buf = appendU32Bytes(buf, entries[k])
		}
	}
	queueNames := sortedKeys(img.Queues)
	buf = appendU32(buf, uint32(len(queueNames)))
	for _, name := range queueNames {
		buf = appendU16Str(buf, name)
		elems := img.Queues[name]
		buf = appendU32(buf, uint32(len(elems)))
		for _, v := range elems {
			buf = appendU32Bytes(buf, v)
		}
	}
	counterNames := sortedKeys(img.Counters)
	buf = appendU32(buf, uint32(len(counterNames)))
	for _, name := range counterNames {
		buf = appendU16Str(buf, name)
		buf = appendI64(buf, img.Counters[name])
	}
	return buf
}

// decodeImage parses a snapshot payload.
func decodeImage(data []byte) (*stmlib.RegistryImage, error) {
	c := &cursor{b: data}
	img := &stmlib.RegistryImage{
		Maps:     make(map[string]map[string][]byte),
		Queues:   make(map[string][][]byte),
		Counters: make(map[string]int64),
	}
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		name := c.str16()
		entries := make(map[string][]byte)
		for j, m := 0, int(c.u32()); j < m && c.err == nil; j++ {
			k := c.str16()
			entries[k] = c.bytes32()
		}
		img.Maps[name] = entries
	}
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		name := c.str16()
		var elems [][]byte
		for j, m := 0, int(c.u32()); j < m && c.err == nil; j++ {
			elems = append(elems, c.bytes32())
		}
		img.Queues[name] = elems
	}
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		name := c.str16()
		img.Counters[name] = c.i64()
	}
	if err := c.done(); err != nil {
		return nil, fmt.Errorf("server: snapshot: %w", err)
	}
	return img, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------------
// Recovery and checkpointing
// ---------------------------------------------------------------------------

// recoverStore rebuilds one shard from its data directory: import the
// newest snapshot, then replay the WAL tail batch by batch. Open has
// already truncated any torn or CRC-corrupt tail, so replay sees only
// durable, intact records. On a sharded server every shard recovers
// concurrently — the logs are independent histories over disjoint
// structure sets, so their replay order relative to each other is
// immaterial.
func (sh *shard) recoverStore(fanout int) error {
	if data, lsn, ok := sh.wal.Snapshot(); ok {
		img, err := decodeImage(data)
		if err != nil {
			return err
		}
		if err := sh.rt.Run(func(c *pnstm.Ctx) { sh.reg.Import(c, img) }); err != nil {
			return fmt.Errorf("server: restore snapshot: %w", err)
		}
	} else if lsn > 0 {
		// The log says a snapshot covers lsn 1..N but its payload will
		// not load: replaying only the tail would be the missing-prefix
		// corruption. Refuse to serve divergent state.
		return fmt.Errorf("server: snapshot covering lsn %d exists but failed to load; refusing to recover without it", lsn)
	}
	return sh.wal.Replay(func(lsn uint64, body []byte) error {
		reqs, err := decodeBatch(body)
		if err != nil {
			return fmt.Errorf("server: wal lsn %d: %w", lsn, err)
		}
		if err := replayBatch(sh.rt, sh.reg, fanout, reqs); err != nil {
			return fmt.Errorf("server: replay lsn %d: %w", lsn, err)
		}
		return nil
	})
}

// pauseCommits fills the shard's in-flight slots so no new group commit
// can launch, and returns the release function. With a WAL the capacity
// is 1 (D20), so one slot is the whole pipeline; in-memory pipelined
// servers have more — and because filling several slots is not atomic,
// pauseMu admits one pauser at a time (two interleaved pausers would
// each hold half the slots and block forever on the rest).
func (sh *shard) pauseCommits() func() {
	sh.pauseMu.Lock()
	n := cap(sh.b.inflight)
	for i := 0; i < n; i++ {
		sh.b.inflight <- struct{}{}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-sh.b.inflight
		}
		sh.pauseMu.Unlock()
	}
}

// checkpoint captures this shard's snapshot bound to its current WAL
// tail and persists it, letting the covered log segments be truncated.
// It holds the shard's group-commit slot while the image is captured,
// so the snapshot is exactly the state after the shard's last logged
// batch; the pause is one parallel-nested bulk read — the paper's
// mechanism keeping the stop-the-world window short — and
// encoding/writing happen after the slot is released (D22).
func (sh *shard) checkpoint() error {
	if sh.wal == nil {
		return nil
	}
	// Idle shard: the newest snapshot already covers the whole log, so a
	// new one would be byte-identical. Skip the export and the fsync.
	// (The unguarded reads race with a concurrent batch at worst into
	// one redundant or one deferred checkpoint; the next tick settles.)
	if st := sh.wal.Stats(); st.TailLSN == st.SnapshotLSN {
		return nil
	}
	release := sh.pauseCommits()
	lsn := sh.wal.TailLSN()
	var img *stmlib.RegistryImage
	err := sh.rt.Run(func(c *pnstm.Ctx) { img = sh.reg.Export(c) })
	release()
	if err != nil {
		return fmt.Errorf("server: checkpoint export: %w", err)
	}
	return sh.wal.WriteSnapshot(encodeImage(img), lsn)
}

// Checkpoint snapshots every shard, concurrently: each shard pauses its
// own commit pipeline for the duration of its parallel-nested bulk
// read, captures its image at its own WAL tail, and writes (and fsyncs)
// its snapshot file independently — the same multiplication sharding
// gives group commits. No-op without a data directory.
func (s *Server) Checkpoint() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			if err := sh.checkpoint(); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", sh.id, err)
			}
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Export captures a stitched whole-store image: every shard pauses its
// group-commit pipeline, exports its registry via the parallel-nested
// bulk read, and the per-shard images are merged into one (counter
// partials summing — see stmlib.RegistryImage.Merge). The returned
// watermarks hold each shard's WAL tail LSN at capture time (zero
// without a data directory): the image is exactly the state after
// watermark[i] logged batches on shard i. Because every shard is paused
// before any exports begin, no group commit anywhere in the store
// overlaps the capture — the stitched image is a consistent cut.
func (s *Server) Export() (*stmlib.RegistryImage, []uint64, error) {
	releases := make([]func(), len(s.shards))
	for i, sh := range s.shards {
		releases[i] = sh.pauseCommits()
	}
	defer func() {
		for _, release := range releases {
			release()
		}
	}()

	images := make([]*stmlib.RegistryImage, len(s.shards))
	watermarks := make([]uint64, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			if sh.wal != nil {
				watermarks[i] = sh.wal.TailLSN()
			}
			errs[i] = sh.rt.Run(func(c *pnstm.Ctx) { images[i] = sh.reg.Export(c) })
		}(i, sh)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, nil, fmt.Errorf("server: export: %w", err)
	}
	img := images[0]
	for _, other := range images[1:] {
		img.Merge(other)
	}
	return img, watermarks, nil
}

// checkpointLoop runs Checkpoint on the configured cadence until Close.
func (s *Server) checkpointLoop(every time.Duration) {
	defer close(s.ckDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Checkpoint(); err != nil {
				// A failed checkpoint costs only replay time; the WAL still
				// holds everything. Keep serving.
				continue
			}
		case <-s.ckStop:
			return
		}
	}
}
