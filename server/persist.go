package server

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"pnstm"
	"pnstm/stmlib"
)

// Durability: the group commit is the durability unit. Each batch that
// mutated the store is encoded as ONE wal record — the mutating
// requests, in the serialization order their child transactions
// committed in — and appended with ONE fsync before any response of the
// batch is acked (D17). Recovery loads the newest snapshot (a
// stmlib.Registry image captured by a parallel-nested bulk read) and
// replays the WAL tail through the same shape as live traffic: each
// logged batch is a root transaction, each logged request a nested
// child, children fanned out over parallel blocks grouped by structure
// so that same-structure requests re-apply in their logged
// serialization order while different structures replay concurrently
// (D21).

// ---------------------------------------------------------------------------
// Batch records
// ---------------------------------------------------------------------------

// decodeBatch parses a wal record body — a sequence of protocol
// request frames, the same length-prefixed framing the wire uses (see
// batcher.logBatch for the encoder) — back into requests.
func decodeBatch(body []byte) ([]*Request, error) {
	var reqs []*Request
	off := 0
	for off < len(body) {
		if off+4 > len(body) {
			return nil, fmt.Errorf("server: wal record: truncated frame header")
		}
		n := int(binary.BigEndian.Uint32(body[off:]))
		off += 4
		if n > len(body)-off {
			return nil, fmt.Errorf("server: wal record: frame of %d bytes overruns record", n)
		}
		req, err := ParseRequest(body[off : off+n])
		if err != nil {
			return nil, fmt.Errorf("server: wal record: %w", err)
		}
		reqs = append(reqs, req)
		off += n
	}
	return reqs, nil
}

// canMutate reports whether an opcode can change the store at all —
// the static filter deciding which requests need the commit-order
// ticket wrapper.
func canMutate(op uint8) bool {
	switch op {
	case OpMapPut, OpMapDelete, OpQueuePush, OpQueuePop, OpCounterAdd, OpCheckout:
		return true
	}
	return false
}

// mutating reports whether the executed request changed the store —
// only those are logged. Rejected checkouts, missed deletes/pops and
// all pure reads left nothing to redo.
func mutating(req *Request, resp *Response) bool {
	if resp.Status != StatusOK {
		return false
	}
	switch req.Op {
	case OpMapPut, OpQueuePush, OpCounterAdd, OpCheckout:
		return true
	case OpMapDelete, OpQueuePop:
		return resp.Found
	}
	return false
}

// replayGroupKey buckets a logged request by the structure it mutates.
// Replay applies same-structure requests sequentially in logged order
// (their live serialization order) and different structures in
// parallel; counter adds commute, so checkout rides with its stock map
// and its counter credits need no ordering of their own.
func replayGroupKey(req *Request) string {
	switch req.Op {
	case OpMapPut, OpMapDelete, OpCheckout:
		return "m\x00" + req.Name
	case OpQueuePush, OpQueuePop:
		return "q\x00" + req.Name
	case OpCounterAdd:
		return "c\x00" + req.Name
	}
	return "?"
}

// replayBatch re-executes one logged batch: a root transaction whose
// nested children are the logged requests, spread over ≤ fanout
// parallel blocks by structure. Within a structure the logged order is
// the commit order, so the recovered state matches the pre-crash store
// exactly.
func replayBatch(rt *pnstm.Runtime, reg *stmlib.Registry, fanout int, reqs []*Request) error {
	if len(reqs) == 0 {
		return nil
	}
	var order []string
	groups := make(map[string][]*Request)
	for _, r := range reqs {
		k := replayGroupKey(r)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	blocks := fanout
	if blocks > len(order) {
		blocks = len(order)
	}
	if blocks < 1 {
		blocks = 1
	}
	// Only requests that succeeded live are logged, and same-structure
	// ordering is preserved — so on replay every request must succeed
	// identically. Anything else is divergence (a lost record, an
	// ordering bug) and the boot must fail rather than serve it.
	// Parallel children report through disjoint slots.
	divergence := make([]error, blocks)
	runErr := rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			apply := func(c *pnstm.Ctx, slot int, keys []string) {
				divergence[slot] = nil // the enclosing tx may retry; judge the final attempt
				for _, k := range keys {
					for _, r := range groups[k] {
						resp := applyRequest(c, reg, r)
						if divergence[slot] == nil {
							if resp.Status != StatusOK {
								divergence[slot] = fmt.Errorf("op %d on %q replayed to status %d (%s)", r.Op, r.Name, resp.Status, resp.Msg)
							} else if (r.Op == OpMapDelete || r.Op == OpQueuePop) && !resp.Found {
								divergence[slot] = fmt.Errorf("op %d on %q found nothing on replay", r.Op, r.Name)
							}
						}
					}
				}
			}
			if blocks <= 1 {
				apply(c, 0, order)
				return nil
			}
			fns := make([]func(*pnstm.Ctx), blocks)
			for g := 0; g < blocks; g++ {
				g := g
				lo, hi := g*len(order)/blocks, (g+1)*len(order)/blocks
				keys := order[lo:hi]
				fns[g] = func(c *pnstm.Ctx) {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						apply(c, g, keys)
						return nil
					})
				}
			}
			c.Parallel(fns...)
			return nil
		})
	})
	if runErr != nil {
		return runErr
	}
	for _, err := range divergence {
		if err != nil {
			return fmt.Errorf("server: replay diverged: %w", err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------------

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(buf, v)
}

// encodeImage renders a registry export as the snapshot payload
// (deterministically: names and keys sorted), reusing the protocol's
// length-prefixed primitives.
func encodeImage(img *stmlib.RegistryImage) []byte {
	var buf []byte
	mapNames := sortedKeys(img.Maps)
	buf = appendU32(buf, uint32(len(mapNames)))
	for _, name := range mapNames {
		buf = appendU16Str(buf, name)
		entries := img.Maps[name]
		keys := sortedKeys(entries)
		buf = appendU32(buf, uint32(len(keys)))
		for _, k := range keys {
			buf = appendU16Str(buf, k)
			buf = appendU32Bytes(buf, entries[k])
		}
	}
	queueNames := sortedKeys(img.Queues)
	buf = appendU32(buf, uint32(len(queueNames)))
	for _, name := range queueNames {
		buf = appendU16Str(buf, name)
		elems := img.Queues[name]
		buf = appendU32(buf, uint32(len(elems)))
		for _, v := range elems {
			buf = appendU32Bytes(buf, v)
		}
	}
	counterNames := sortedKeys(img.Counters)
	buf = appendU32(buf, uint32(len(counterNames)))
	for _, name := range counterNames {
		buf = appendU16Str(buf, name)
		buf = appendI64(buf, img.Counters[name])
	}
	return buf
}

// decodeImage parses a snapshot payload.
func decodeImage(data []byte) (*stmlib.RegistryImage, error) {
	c := &cursor{b: data}
	img := &stmlib.RegistryImage{
		Maps:     make(map[string]map[string][]byte),
		Queues:   make(map[string][][]byte),
		Counters: make(map[string]int64),
	}
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		name := c.str16()
		entries := make(map[string][]byte)
		for j, m := 0, int(c.u32()); j < m && c.err == nil; j++ {
			k := c.str16()
			entries[k] = c.bytes32()
		}
		img.Maps[name] = entries
	}
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		name := c.str16()
		var elems [][]byte
		for j, m := 0, int(c.u32()); j < m && c.err == nil; j++ {
			elems = append(elems, c.bytes32())
		}
		img.Queues[name] = elems
	}
	for i, n := 0, int(c.u32()); i < n && c.err == nil; i++ {
		name := c.str16()
		img.Counters[name] = c.i64()
	}
	if err := c.done(); err != nil {
		return nil, fmt.Errorf("server: snapshot: %w", err)
	}
	return img, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------------
// Recovery and checkpointing
// ---------------------------------------------------------------------------

// recover rebuilds the store from the data directory: import the
// newest snapshot, then replay the WAL tail batch by batch. Open has
// already truncated any torn or CRC-corrupt tail, so replay sees only
// durable, intact records.
func (s *Server) recoverStore() error {
	if data, lsn, ok := s.wal.Snapshot(); ok {
		img, err := decodeImage(data)
		if err != nil {
			return err
		}
		if err := s.rt.Run(func(c *pnstm.Ctx) { s.reg.Import(c, img) }); err != nil {
			return fmt.Errorf("server: restore snapshot: %w", err)
		}
	} else if lsn > 0 {
		// The log says a snapshot covers lsn 1..N but its payload will
		// not load: replaying only the tail would be the missing-prefix
		// corruption. Refuse to serve divergent state.
		return fmt.Errorf("server: snapshot covering lsn %d exists but failed to load; refusing to recover without it", lsn)
	}
	return s.wal.Replay(func(lsn uint64, body []byte) error {
		reqs, err := decodeBatch(body)
		if err != nil {
			return fmt.Errorf("server: wal lsn %d: %w", lsn, err)
		}
		if err := replayBatch(s.rt, s.reg, s.cfg.BatchFanout, reqs); err != nil {
			return fmt.Errorf("server: replay lsn %d: %w", lsn, err)
		}
		return nil
	})
}

// Checkpoint captures a whole-store snapshot bound to the current WAL
// tail and persists it, letting the covered log segments be truncated.
// It holds the group-commit slot while the image is captured, so the
// snapshot is exactly the state after the last logged batch; the pause
// is one parallel-nested bulk read — the paper's mechanism keeping the
// stop-the-world window short — and encoding/writing happen after the
// slot is released (D22). No-op without a data directory.
func (s *Server) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	// Idle store: the newest snapshot already covers the whole log, so a
	// new one would be byte-identical. Skip the export and the fsync.
	// (The unguarded reads race with a concurrent batch at worst into
	// one redundant or one deferred checkpoint; the next tick settles.)
	if st := s.wal.Stats(); st.TailLSN == st.SnapshotLSN {
		return nil
	}
	s.b.inflight <- struct{}{} // pause group commits (MaxInflight is 1 with WAL on)
	lsn := s.wal.TailLSN()
	var img *stmlib.RegistryImage
	err := s.rt.Run(func(c *pnstm.Ctx) { img = s.reg.Export(c) })
	<-s.b.inflight
	if err != nil {
		return fmt.Errorf("server: checkpoint export: %w", err)
	}
	return s.wal.WriteSnapshot(encodeImage(img), lsn)
}

// checkpointLoop runs Checkpoint on the configured cadence until Close.
func (s *Server) checkpointLoop(every time.Duration) {
	defer close(s.ckDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Checkpoint(); err != nil {
				// A failed checkpoint costs only replay time; the WAL still
				// holds everything. Keep serving.
				continue
			}
		case <-s.ckStop:
			return
		}
	}
}
