package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"pnstm"
	"pnstm/stmlib"
)

// Cross-shard ordered commit (D29–D31): a mutating OpTx envelope whose
// structures live on several shards commits atomically WITHOUT 2PC
// locks, in the style of deterministic predefined-order databases. A
// global sequencer assigns the envelope a monotone global sequence
// number (GSN) while the coordinator holds a reserved commit-ticket
// position — every in-flight group-commit slot — on EVERY participant
// shard, so the GSN's position in each shard's local commit order is
// pinned before anything executes. Each participant then runs its slice
// of the envelope as a nested child inside its own root transaction
// (the same shape a group commit uses), execution split into three
// phases:
//
//	gather  — every shard executes its slice (map/queue ops, map
//	          guards, counter adds) and reads the counter partials any
//	          global counter read needs, reporting results to the
//	          coordinator while its child transaction stays open;
//	judge   — the coordinator sums the partials, evaluates counter
//	          guards on the global totals, and combines them with the
//	          shards' local guard verdicts into one commit/abort
//	          decision (lowest failing envelope index wins, exactly
//	          like a single-shard envelope);
//	apply   — the verdict is broadcast: on commit every child commits
//	          its writes and each shard that wrote appends ONE
//	          GSN-stamped WAL record holding its write-only slice; on
//	          abort every child returns errRejected and rolls back,
//	          leaving ZERO WAL residue on every shard.
//
// Recovery replays GSN records at their logged positions. Because the
// sequencer takes the GSN only after all participant slots are held,
// any two envelopes sharing a shard are fully serialized, so the GSNs
// in every shard's log are strictly increasing: replaying each log in
// order reproduces the same relative cross-shard positions everywhere.

// Routing outcomes for an OpTx envelope (classifyTx).
const (
	planSingle = iota // the envelope rides shards[target]'s group-commit pipeline
	planFan           // read-only multi-shard: fan the sub-ops (fanTx)
	planCross         // mutating multi-shard: ordered cross-shard commit
)

// sliceItem is one entry of a participant shard's slice of a
// cross-shard envelope, in envelope order: either one of the envelope's
// own sub-ops (executed on this shard) or a partial read serving a
// global counter read (every shard contributes its partial; the
// coordinator sums and judges).
type sliceItem struct {
	idx     int  // envelope index
	partial bool // read this shard's counter partial instead of executing
}

// txPlan is classifyTx's routing decision for one OpTx envelope.
type txPlan struct {
	kind   int
	target int // planSingle: the executing shard

	// planCross only:
	participants []int         // shard ids running a slice, ascending
	slices       [][]sliceItem // per shard id (nil for non-participants)
}

// crossShardHome places one sub-op of a cross-shard envelope. Sub-ops
// with a structure home — maps, queues and map guards, per
// txPinnedShard — execute there; counter ADDS credit their name's home
// shard (any single placement is exact, because counter state is
// per-shard partials summing globally — D24 — and hashing by name
// keeps a counter's cross-shard credits on one shard). Counter READS
// (sums and counter guards, Key == "") have no single home: the total
// spans every shard's partial, reported via ok=false and gathered
// globally by the caller.
func crossShardHome(op *TxOp, n int) (int, bool) {
	if sh, ok := txPinnedShard(op, n); ok {
		return sh, true
	}
	if op.Op == OpCounterAdd {
		return stmlib.ShardIndex(op.Name, n), true
	}
	return 0, false
}

// classifyTx resolves an OpTx envelope's route (D27, D29). The
// single-shard and read-only-fan decisions are exactly the pre-D29
// routeTx rules: every map/queue sub-op pins its structure's home
// shard; one pinned shard (or none — a counter-only envelope, routed
// by the first op's name so identical envelopes meet on one shard)
// executes on that shard's pipeline; several pinned shards without
// writes fan. A MUTATING envelope pinned to several shards — refused
// with StatusCrossShard before D29 — now gets a cross plan: each
// participant's slice holds its sub-ops in envelope order, and any
// global counter read inserts a partial item into EVERY shard's slice
// (making all shards participants). Pure function of the envelope and
// the shard count, so it is fuzzable in isolation.
func classifyTx(tx *Tx, n int) txPlan {
	if tx == nil || len(tx.Ops) == 0 || n <= 1 {
		return txPlan{kind: planSingle, target: 0}
	}
	pinned := make(map[int]bool)
	writes := false
	first := -1
	for i := range tx.Ops {
		op := &tx.Ops[i]
		if writeSubOp(op.Op) {
			writes = true
		}
		if sh, ok := txPinnedShard(op, n); ok {
			pinned[sh] = true
			if first < 0 {
				first = sh
			}
		}
	}
	switch {
	case len(pinned) == 1:
		return txPlan{kind: planSingle, target: first}
	case len(pinned) == 0:
		return txPlan{kind: planSingle, target: stmlib.ShardIndex(tx.Ops[0].Name, n)}
	case !writes:
		return txPlan{kind: planFan}
	}

	plan := txPlan{kind: planCross, slices: make([][]sliceItem, n)}
	part := make(map[int]bool)
	global := false
	for i := range tx.Ops {
		op := &tx.Ops[i]
		if sh, ok := crossShardHome(op, n); ok {
			plan.slices[sh] = append(plan.slices[sh], sliceItem{idx: i})
			part[sh] = true
			continue
		}
		// Global counter read: a partial item at this envelope position in
		// every shard's slice.
		global = true
		for sh := 0; sh < n; sh++ {
			plan.slices[sh] = append(plan.slices[sh], sliceItem{idx: i, partial: true})
		}
	}
	if global {
		for sh := 0; sh < n; sh++ {
			part[sh] = true
		}
	}
	plan.participants = make([]int, 0, len(part))
	for sh := range part {
		plan.participants = append(plan.participants, sh)
	}
	sort.Ints(plan.participants)
	return plan
}

// routeTx resolves an OpTx envelope's route; see classifyTx.
func (s *Server) routeTx(req *Request) txPlan {
	return classifyTx(req.Tx, len(s.shards))
}

// crossReport is one participant's gather-phase report: the results of
// its executed sub-ops, its counter partials for global reads, and its
// first local failure (a false map guard → errRejected, a malformed
// sub-op → anything else), envelope-lowest first within the slice.
type crossReport struct {
	shard    int
	results  map[int]TxResult
	partials map[int]int64
	failIdx  int // -1: clean
	failMsg  string
	failErr  error
}

// executeSlice runs one shard's slice inside its open child
// transaction, in envelope order. On a local failure the rest of the
// slice is abandoned (the envelope is aborting), so partials at
// indices past the failure are missing — the coordinator never uses
// totals past the lowest failing index.
func executeSlice(c *pnstm.Ctx, reg *stmlib.Registry, ops []TxOp, slice []sliceItem, shardID int) crossReport {
	rep := crossReport{
		shard:    shardID,
		results:  make(map[int]TxResult, len(slice)),
		partials: make(map[int]int64),
		failIdx:  -1,
	}
	for _, it := range slice {
		if it.partial {
			rep.partials[it.idx] = reg.Counter(ops[it.idx].Name).SumInline(c)
			continue
		}
		var res TxResult
		msg, err := applyTxOp(c, reg, &ops[it.idx], &res)
		rep.results[it.idx] = res
		if err != nil {
			rep.failIdx, rep.failMsg, rep.failErr = it.idx, msg, err
			break
		}
	}
	return rep
}

// beginCross admits one cross-shard commit, fencing against shutdown
// the same way batcher.submit fences against close: a successful
// beginCross happens-before Close/Kill set crossStopped, so their
// crossWG.Wait provably covers it.
func (s *Server) beginCross() bool {
	s.crossMu.RLock()
	defer s.crossMu.RUnlock()
	if s.crossStopped {
		return false
	}
	s.crossWG.Add(1)
	return true
}

// stopCross refuses new cross-shard commits and waits out the in-flight
// ones. Called by Close after the batchers flushed (a coordinator may
// be waiting on commit slots a draining batch still holds) and before
// the final WAL sync/close and runtime teardown; by Kill after the
// WALs are abandoned (pending cross appends then fail fast).
func (s *Server) stopCross() {
	s.crossMu.Lock()
	s.crossStopped = true
	s.crossMu.Unlock()
	s.crossWG.Wait()
}

// maxCrossInflight caps concurrent cross-shard coordinators. Well above
// what a closed-loop client population reaches (loadgen's default is 16
// issuing goroutines), so only a pathological flood — an open-loop
// client pipelining cross-shard envelopes faster than the per-shard
// commit pipelines drain them — ever sees the fast-fail.
const maxCrossInflight = 256

// commitCrossShard answers a mutating multi-shard envelope via the
// ordered-commit protocol, asynchronously (the coordinator blocks on
// every participant's commit slot, which can take a group commit's
// latency per shard — the connection's reader loop must not). In-flight
// coordinators are bounded by crossSem; past the cap the envelope is
// refused with a retryable error rather than queued without limit.
func (s *Server) commitCrossShard(req *Request, plan *txPlan, deliver func(Response)) {
	select {
	case s.crossSem <- struct{}{}:
	default:
		deliver(Response{ID: req.ID, Status: StatusErr, Msg: "too many in-flight cross-shard transactions; retry"})
		return
	}
	if !s.beginCross() {
		<-s.crossSem
		deliver(Response{ID: req.ID, Status: StatusErr, Msg: "server closing"})
		return
	}
	go func() {
		defer func() {
			<-s.crossSem
			s.crossWG.Done()
		}()
		deliver(s.runCrossShard(req, plan))
	}()
}

func (s *Server) runCrossShard(req *Request, plan *txPlan) Response {
	ops := req.Tx.Ops

	// Reserve: every participant's whole commit pipeline, in ascending
	// shard-id order — the same resource order Export uses, so
	// coordinators, checkpoints and exports can never deadlock, and any
	// two envelopes sharing a shard fully serialize.
	releases := make([]func(), 0, len(plan.participants))
	defer func() {
		for i := len(releases) - 1; i >= 0; i-- {
			releases[i]()
		}
	}()
	for _, id := range plan.participants {
		releases = append(releases, s.shards[id].pauseCommits())
	}

	// The GSN is taken only AFTER all slots are held: any envelope that
	// logged on a shared shard earlier held that shard's slots earlier,
	// hence drew its (smaller) GSN before this one — so the GSNs in each
	// shard's log are strictly increasing, and replaying every log in
	// order reproduces the same relative cross-shard positions (D30).
	gsn := s.gsn.Add(1)

	// Gather: each participant runs its slice as a nested child of its
	// own root transaction and blocks inside the child on the verdict.
	// The pipeline slots are held (and checkpoints queue on the same
	// slots), so each root runs ALONE on its shard's runtime: the child
	// cannot conflict with anything, hence executes exactly once — which
	// is what lets it report and await a verdict from inside its body.
	nPart := len(plan.participants)
	reports := make(chan crossReport, nPart)
	verdicts := make([]chan bool, nPart)
	runErrs := make([]error, nPart)
	var wg sync.WaitGroup
	for pi, id := range plan.participants {
		pi, sh := pi, s.shards[id]
		verdicts[pi] = make(chan bool, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			reported := false
			err := sh.rt.Run(func(c *pnstm.Ctx) {
				if sh.rt.TracingEnabled() {
					// Trace identity: the GSN is the envelope's batch ticket
					// on every participant, so one cross-shard commit's events
					// correlate across all the shards' recorders (D35).
					c.StampTrace(gsn, uint8(sh.id))
					c.SetTraceTag(requestTraceTag(req))
				}
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					rep := executeSlice(c, sh.reg, ops, plan.slices[sh.id], sh.id)
					reported = true
					reports <- rep
					if <-verdicts[pi] {
						return nil
					}
					return errRejected // whole-envelope rollback: zero residue
				})
			})
			runErrs[pi] = err
			if !reported {
				// The runtime refused the root (shutting down): stand in for
				// the missing report so the coordinator cannot block.
				if err == nil {
					err = fmt.Errorf("shard %d did not execute its slice", sh.id)
				}
				reports <- crossReport{shard: sh.id, failIdx: 0, failErr: err}
			}
		}()
	}

	// Judge: collect every report, sum the partials, evaluate counter
	// guards on the global totals, pick the lowest failing envelope
	// index across local (map guard, malformed) and global (counter
	// guard) failures — the same deterministic rule a single-shard
	// envelope applies.
	merged := make([]TxResult, len(ops))
	totals := make(map[int]int64)
	var first *txOpFailure
	for i := 0; i < nPart; i++ {
		rep := <-reports
		for idx, res := range rep.results {
			merged[idx] = res
		}
		for idx, p := range rep.partials {
			totals[idx] += p
		}
		if rep.failErr != nil && (first == nil || rep.failIdx < first.idx) {
			first = &txOpFailure{idx: rep.failIdx, err: rep.failErr, msg: rep.failMsg}
		}
	}
	for i := range ops {
		t, global := totals[i]
		if !global {
			continue
		}
		if first != nil && first.idx < i {
			break // totals past the failure are incomplete AND irrelevant
		}
		merged[i] = TxResult{Status: StatusOK, Num: t}
		if msg, ok := judgeCounterGuard(&ops[i], t); !ok {
			merged[i].Status = StatusRejected
			first = &txOpFailure{idx: i, err: errRejected, msg: msg}
			break
		}
	}

	// Apply: broadcast the verdict and wait for every child to commit
	// (or roll back) and its root to return.
	commit := first == nil
	for _, v := range verdicts {
		v <- commit
	}
	wg.Wait()

	if !commit {
		for j := first.idx + 1; j < len(merged); j++ {
			merged[j] = TxResult{} // rolled back; mirror fanTx's abort shape
		}
		if !errors.Is(first.err, errRejected) {
			return Response{ID: req.ID, Status: StatusErr, Msg: fmt.Sprintf("op %d: %v", first.idx, first.err)}
		}
		return Response{ID: req.ID, Status: StatusRejected, Num: int64(first.idx), Msg: first.msg, TxResults: merged}
	}
	for _, err := range runErrs {
		if err != nil {
			// A participant's root failed AFTER the commit verdict (runtime
			// tearing down): other participants may have committed their
			// slices, so memory can no longer be trusted to match any log.
			// Latch every participant's WAL rather than log a half-applied
			// envelope.
			s.failWALs(plan.participants, err)
			return Response{ID: req.ID, Status: StatusErr, Msg: "cross-shard commit: " + err.Error()}
		}
	}

	// Log: one GSN record per shard whose slice actually wrote.
	if s.shards[0].wal != nil {
		logSet := make([]int, 0, nPart)
		logReqs := make(map[int]*Request, nPart)
		for _, id := range plan.participants {
			if sub := crossWriteSlice(ops, plan.slices[id], merged); sub != nil {
				logSet = append(logSet, id)
				logReqs[id] = sub
			}
		}
		if err := s.appendGSNRecords(gsn, logSet, logReqs); err != nil {
			return Response{ID: req.ID, Status: StatusErr, Msg: "wal: " + err.Error()}
		}
	}
	return Response{ID: req.ID, Status: StatusOK, TxResults: merged}
}

// crossWriteSlice strips one participant's slice to its effective
// writes — the redo set its GSN record carries. Guards and reads are
// dropped (they were judged live against global state recovery cannot
// reconstruct shard-locally), and deletes/pops that found nothing left
// no effect and are dropped too: replaying the record applies exactly
// the writes the live commit applied. Nil when the slice wrote nothing
// — that shard logs no record for this envelope.
func crossWriteSlice(ops []TxOp, slice []sliceItem, merged []TxResult) *Request {
	var sub []TxOp
	for _, it := range slice {
		if it.partial {
			continue
		}
		op := ops[it.idx]
		switch op.Op {
		case OpMapPut, OpMapAdd, OpQueuePush, OpCounterAdd,
			OpSortedPut, OpSortedPutTTL, OpMapPutTTL:
			sub = append(sub, op)
		case OpMapDelete, OpQueuePop,
			OpSortedDelete, OpExpire, OpSortedExpire,
			OpLeaseConsume, OpLeaseAck, OpLeaseNack:
			if merged[it.idx].Found {
				sub = append(sub, op)
			}
		case OpLeaseReclaim:
			if merged[it.idx].Num > 0 {
				sub = append(sub, op)
			}
		}
	}
	if len(sub) == 0 {
		return nil
	}
	return &Request{Op: OpTx, Tx: &Tx{Ops: sub}}
}

// appendGSNRecords makes one committed cross-shard envelope durable:
// every writing shard appends its GSN record — same GSN, same logging
// set, its own write slice — concurrently, each append fsyncing its own
// shard's log per Options.Fsync before returning. All-or-error: a
// failed append latches EVERY writing shard's log (wal.Fail), not only
// its own, because the envelope is already applied in every shard's
// memory — a shard that kept logging (or checkpointing) past a GSN its
// peers never made durable would recover divergent state. Recovery
// reconciles a torn tail instead: a GSN present on some shards but
// missing (and not snapshot-covered) on another is dropped everywhere
// (see reconcileGSNs).
func (s *Server) appendGSNRecords(gsn uint64, logSet []int, logReqs map[int]*Request) error {
	if len(logSet) == 0 {
		return nil
	}
	bodies := make(map[int][]byte, len(logSet))
	for _, id := range logSet {
		body, err := encodeGSNRecord(gsn, logSet, logReqs[id])
		if err != nil {
			s.failWALs(logSet, err)
			return err
		}
		bodies[id] = body
	}
	errs := make([]error, len(logSet))
	var wg sync.WaitGroup
	for i, id := range logSet {
		i, sh := i, s.shards[id]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sh.wal.Append(bodies[sh.id]); err != nil {
				errs[i] = err
				return
			}
			// Safe to publish per shard: this shard's GSN sequence is
			// strictly increasing (see runCrossShard), and the slots are
			// still held, so no checkpoint can capture the watermark early.
			sh.maxGSN.Store(gsn)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			s.failWALs(logSet, err)
			return err
		}
	}
	return nil
}

// failWALs latches the listed shards' logs shut (no-op per shard
// without a WAL, or when already latched).
func (s *Server) failWALs(ids []int, cause error) {
	for _, id := range ids {
		if wl := s.shards[id].wal; wl != nil {
			wl.Fail(cause)
		}
	}
}
