package server_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pnstm/client"
	"pnstm/server"
)

// These are the cross-shard ordered-commit (D29–D31) torture tests: a
// randomized transfer oracle, abort residue checks, a counter guard
// judging global state, graceful-restart replay and a hard-kill
// atomicity drill. The GSN-level on-disk assertions (relative replay
// order, incomplete-record reconciliation) live in
// crossshard_internal_test.go, which can open the logs directly.

// TestCrossShardTransferOracle replays a randomized mix of single-shard
// and cross-shard mutating envelopes against a sequential oracle. Each
// goroutine owns a private account universe — two maps on DIFFERENT
// shards plus one more on the first map's shard — so its local model is
// exact: a guarded transfer must commit if and only if the model says
// the source balance covers it, and every final balance must match the
// model to the cent.
func TestCrossShardTransferOracle(t *testing.T) {
	const (
		shards     = 4
		goroutines = 4
		opsPer     = 250
		keysPerMap = 4
		initial    = int64(100)
	)
	s := startServer(t, server.Config{Workers: 2, MaxBatch: 16, Shards: shards})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			mapA, mapB, mapA2 := namesOnDistinctShards(t, fmt.Sprintf("om%d_", g), shards)
			maps := []string{mapA, mapB, mapA2}
			model := make(map[string]map[string]int64, len(maps))
			for _, m := range maps {
				model[m] = make(map[string]int64, keysPerMap)
				for k := 0; k < keysPerMap; k++ {
					key := fmt.Sprintf("k%d", k)
					if err := cl.MapPutInt(m, key, initial); err != nil {
						t.Errorf("g%d: provision %s[%s]: %v", g, m, key, err)
						return
					}
					model[m][key] = initial
				}
			}
			rng := rand.New(rand.NewSource(int64(g)*7919 + 13))
			for i := 0; i < opsPer; i++ {
				srcM := maps[rng.Intn(len(maps))]
				dstM := maps[rng.Intn(len(maps))]
				srcK := fmt.Sprintf("k%d", rng.Intn(keysPerMap))
				dstK := fmt.Sprintf("k%d", rng.Intn(keysPerMap))
				amt := int64(1 + rng.Intn(40))
				switch {
				case rng.Intn(10) == 0:
					// Single-shard deposit, interleaved with the transfers.
					if _, err := cl.Txn().MapAddInt(srcM, srcK, 5).Commit(); err != nil {
						t.Errorf("g%d op %d: deposit: %v", g, i, err)
						return
					}
					model[srcM][srcK] += 5
				default:
					// Guarded transfer; crosses shards whenever srcM and dstM
					// differ in home (mapA vs mapB), stays single-shard for
					// mapA vs mapA2 — the interleaving under test.
					_, err := cl.Txn().
						AssertGE(srcM, srcK, amt).
						MapAddInt(srcM, srcK, -amt).
						MapAddInt(dstM, dstK, amt).
						Commit()
					var aborted *client.ErrTxAborted
					switch {
					case err == nil:
						if model[srcM][srcK] < amt {
							t.Errorf("g%d op %d: transfer of %d from %s[%s]=%d committed; oracle says reject",
								g, i, amt, srcM, srcK, model[srcM][srcK])
							return
						}
						model[srcM][srcK] -= amt
						model[dstM][dstK] += amt
					case errors.As(err, &aborted):
						if model[srcM][srcK] >= amt {
							t.Errorf("g%d op %d: transfer of %d from %s[%s]=%d rejected; oracle says commit (%v)",
								g, i, amt, srcM, srcK, model[srcM][srcK], err)
							return
						}
						if aborted.FailedOpIndex != 0 {
							t.Errorf("g%d op %d: FailedOpIndex = %d want 0", g, i, aborted.FailedOpIndex)
							return
						}
					default:
						t.Errorf("g%d op %d: transfer: %v", g, i, err)
						return
					}
				}
			}
			// Every balance must match the oracle exactly — transfers
			// conserve by construction, so this also pins the spanning
			// ledger.
			for _, m := range maps {
				for k, want := range model[m] {
					got, ok, err := cl.MapGetInt(m, k)
					if err != nil || !ok {
						t.Errorf("g%d: read back %s[%s]: %v %v", g, m, k, ok, err)
						return
					}
					if got != want {
						t.Errorf("g%d: %s[%s] = %d, oracle says %d", g, m, k, got, want)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCrossShardAbortLeavesNoResidue: a cross-shard envelope whose
// guard fails must leave ZERO WAL residue on every shard — the logs'
// tail LSNs do not move — and a restart must reproduce exactly the
// pre-abort state.
func TestCrossShardAbortLeavesNoResidue(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	cfg := server.Config{Workers: 2, MaxBatch: 8, Shards: shards, DataDir: dir, Fsync: true}
	s := startServer(t, cfg)
	cl := dial(t, s, 1)
	mapA, mapB, _ := namesOnDistinctShards(t, "rm", shards)

	// One committed cross-shard transfer, so the logs are not empty.
	if err := cl.MapPutInt(mapA, "bal", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Txn().
		AssertGE(mapA, "bal", 10).
		MapAddInt(mapA, "bal", -10).
		MapAddInt(mapB, "bal", 10).
		Commit(); err != nil {
		t.Fatalf("seed transfer: %v", err)
	}

	tails := make(map[int]uint64)
	for _, ps := range s.Stats().PerShard {
		if ps.WAL != nil {
			tails[ps.Shard] = ps.WAL.TailLSN
		}
	}

	// Aborting envelope: the guard on mapB's shard fails, the write on
	// mapA's shard must roll back, and nothing may reach any log.
	_, err := cl.Txn().
		MapAddInt(mapA, "bal", -40).
		AssertGE(mapB, "bal", 1000).
		Commit()
	var aborted *client.ErrTxAborted
	if !errors.As(err, &aborted) {
		t.Fatalf("want ErrTxAborted, got %v", err)
	}
	for _, ps := range s.Stats().PerShard {
		if ps.WAL != nil && ps.WAL.TailLSN != tails[ps.Shard] {
			t.Errorf("shard %d tail moved %d → %d after an aborted cross-shard tx",
				ps.Shard, tails[ps.Shard], ps.WAL.TailLSN)
		}
	}
	if v, _, err := cl.MapGetInt(mapA, "bal"); err != nil || v != 40 {
		t.Fatalf("balance A after abort = %d,%v want 40", v, err)
	}

	// Restart: replay must land on the same state (no partial slice on
	// any shard, committed transfer intact).
	s.Close()
	s2 := startServer(t, cfg)
	cl2 := dial(t, s2, 1)
	if v, _, err := cl2.MapGetInt(mapA, "bal"); err != nil || v != 40 {
		t.Errorf("balance A after restart = %d,%v want 40", v, err)
	}
	if v, _, err := cl2.MapGetInt(mapB, "bal"); err != nil || v != 10 {
		t.Errorf("balance B after restart = %d,%v want 10", v, err)
	}
}

// TestCrossShardCounterGuardSpansShards: checkout credits counter
// partials on the stock map's shard, so one counter's total can live
// split across shards. A counter guard inside a MUTATING cross-shard
// envelope must judge the GLOBAL total (gathered at the sequencer), not
// whichever shard's partial it lands on — and an in-envelope CounterSum
// must answer the global total too.
func TestCrossShardCounterGuardSpansShards(t *testing.T) {
	const shards = 4
	s := startServer(t, server.Config{Workers: 2, MaxBatch: 8, Shards: shards})
	cl := dial(t, s, 1)
	mapA, mapB, _ := namesOnDistinctShards(t, "gm", shards)

	for _, m := range []string{mapA, mapB} {
		if err := cl.MapPutInt(m, "sku", 10); err != nil {
			t.Fatal(err)
		}
		if ok, _, err := cl.Checkout(m, server.Checkout{
			Sold:  "gsold",
			Lines: []server.CheckoutLine{{SKU: "sku", Qty: 4}},
		}); err != nil || !ok {
			t.Fatalf("checkout on %s: ok=%v err=%v", m, ok, err)
		}
	}
	// gsold is now 8, split 4/4 across two shards.

	// Guard on the global total must pass, and the envelope's writes on
	// both shards must land.
	res, err := cl.Txn().
		AssertCounterGE("gsold", 8).
		CounterSum("gsold").
		MapPutInt(mapA, "audited", 1).
		MapPutInt(mapB, "audited", 1).
		Commit()
	if err != nil {
		t.Fatalf("cross-shard tx with global counter guard: %v", err)
	}
	if res.Num(1) != 8 {
		t.Errorf("in-envelope CounterSum = %d want 8 (global total)", res.Num(1))
	}
	for _, m := range []string{mapA, mapB} {
		if v, ok, _ := cl.MapGetInt(m, "audited"); !ok || v != 1 {
			t.Errorf("%s[audited] = %d,%v want 1", m, v, ok)
		}
	}

	// One more than the total: the guard must fail on the GLOBAL sum and
	// roll back the whole envelope.
	_, err = cl.Txn().
		AssertCounterGE("gsold", 9).
		MapPutInt(mapA, "ghost", 1).
		MapPutInt(mapB, "ghost", 1).
		Commit()
	var aborted *client.ErrTxAborted
	if !errors.As(err, &aborted) {
		t.Fatalf("want ErrTxAborted, got %v", err)
	}
	if aborted.FailedOpIndex != 0 {
		t.Errorf("FailedOpIndex = %d want 0", aborted.FailedOpIndex)
	}
	for _, m := range []string{mapA, mapB} {
		if _, ok, _ := cl.MapGetInt(m, "ghost"); ok {
			t.Errorf("aborted envelope left a write on %s", m)
		}
	}
}

// TestCrossShardCrashAtomicity is the kill -9 drill: cross-shard
// transfers (and single-shard traffic, so GSN records interleave with
// plain batch records in every log) run full tilt, the server dies
// mid-commit, and after recovery NO shard may hold a partial slice —
// the spanning conservation ledger (the sum of every account balance
// across all shards) must balance exactly, because a transfer either
// happened on both shards or on neither.
func TestCrossShardCrashAtomicity(t *testing.T) {
	const (
		shards  = 4
		movers  = 3
		initial = int64(1000)
	)
	dir := t.TempDir()
	cfg := server.Config{
		Shards: shards, Workers: 4, MaxBatch: 16, BatchDelay: 200 * time.Microsecond,
		DataDir: dir, Fsync: true,
	}
	s := startServer(t, cfg)

	setup := dial(t, s, 1)
	pairs := make([][2]string, movers)
	var total int64
	for g := 0; g < movers; g++ {
		a, b, _ := namesOnDistinctShards(t, fmt.Sprintf("cm%d_", g), shards)
		pairs[g] = [2]string{a, b}
		for _, m := range []string{a, b} {
			if err := setup.MapPutInt(m, "bal", initial); err != nil {
				t.Fatal(err)
			}
			total += initial
		}
	}

	var (
		stop      atomic.Bool
		committed atomic.Int64
		wg        sync.WaitGroup
	)
	for g := 0; g < movers; g++ {
		g := g
		cl := dial(t, s, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 31))
			for !stop.Load() {
				src, dst := pairs[g][0], pairs[g][1]
				if rng.Intn(2) == 0 {
					src, dst = dst, src
				}
				amt := int64(1 + rng.Intn(5))
				_, err := cl.Txn().
					AssertGE(src, "bal", amt).
					MapAddInt(src, "bal", -amt).
					MapAddInt(dst, "bal", amt).
					Commit()
				var aborted *client.ErrTxAborted
				if err != nil && !errors.As(err, &aborted) {
					return // killed
				}
				if err == nil {
					committed.Add(1)
				}
			}
		}()
	}
	// Single-shard traffic alongside, so every log interleaves batch
	// records with GSN records.
	noise := dial(t, s, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if err := noise.CounterAdd("chits", 1); err != nil {
				return
			}
			if err := noise.QueuePush("cq", server.EncodeInt64(int64(i))); err != nil {
				return
			}
		}
	}()

	time.Sleep(400 * time.Millisecond)
	s.Kill() // SIGKILL across all four WALs, mid-cross-shard-commit
	stop.Store(true)
	wg.Wait()
	if committed.Load() == 0 {
		t.Fatal("no cross-shard transfer committed before the kill")
	}

	s2 := startServer(t, cfg)
	cl := dial(t, s2, 1)
	var recovered int64
	for g := 0; g < movers; g++ {
		for _, m := range pairs[g] {
			v, ok, err := cl.MapGetInt(m, "bal")
			if err != nil || !ok {
				t.Fatalf("recovered balance %s: %v %v", m, ok, err)
			}
			if v < 0 {
				t.Errorf("account %s negative after recovery: %d", m, v)
			}
			recovered += v
		}
	}
	if recovered != total {
		t.Errorf("spanning ledger broken: recovered %d, want %d — some shard applied a partial slice", recovered, total)
	}
}

// TestCrossShardCheckpointThenRestart: a checkpoint on ONE participant
// truncates its copy of a GSN record while the peer's log still holds
// its own — the snapshot watermark is what tells recovery the truncated
// copy was applied, not lost. A restart must accept the asymmetric
// layout and reproduce the exact balances.
func TestCrossShardCheckpointThenRestart(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	cfg := server.Config{Workers: 2, MaxBatch: 8, Shards: shards, DataDir: dir, Fsync: true}
	s := startServer(t, cfg)
	cl := dial(t, s, 1)
	mapA, mapB, _ := namesOnDistinctShards(t, "wm", shards)

	for _, m := range []string{mapA, mapB} {
		if err := cl.MapPutInt(m, "bal", 500); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := cl.Txn().
			AssertGE(mapA, "bal", 7).
			MapAddInt(mapA, "bal", -7).
			MapAddInt(mapB, "bal", 7).
			Commit(); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	// Checkpoint every shard: all copies of the GSN records are now
	// snapshot-covered (watermark path), logs truncated.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// More cross-shard commits AFTER the checkpoint: these live only in
	// the logs, interleaved against the snapshots' watermarks.
	for i := 0; i < 5; i++ {
		if _, err := cl.Txn().
			AssertGE(mapB, "bal", 3).
			MapAddInt(mapB, "bal", -3).
			MapAddInt(mapA, "bal", 3).
			Commit(); err != nil {
			t.Fatalf("post-checkpoint transfer %d: %v", i, err)
		}
	}
	s.Close()

	s2 := startServer(t, cfg)
	cl2 := dial(t, s2, 1)
	a, _, err := cl2.MapGetInt(mapA, "bal")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := cl2.MapGetInt(mapB, "bal")
	if err != nil {
		t.Fatal(err)
	}
	if a != 500-70+15 || b != 500+70-15 {
		t.Errorf("recovered balances A=%d B=%d, want %d/%d", a, b, 500-70+15, 500+70-15)
	}
	if a+b != 1000 {
		t.Errorf("conservation broken across checkpoint+restart: %d", a+b)
	}
}
