package server_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pnstm/client"
	"pnstm/server"
)

// TestSortedMapWireE2E drives the sorted-map sub-ops over the wire on
// both an unsharded and a sharded server: point CRUD, ordered range
// scans with bounds and limits, range counts, and read-your-writes
// inside one envelope.
func TestSortedMapWireE2E(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := startServer(t, server.Config{Shards: shards})
			cl := dial(t, s, 2)

			const n = 50
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("k%03d", (i*37)%n) // scrambled insert order
				if err := cl.SortedPut("board", k, []byte(fmt.Sprint(i))); err != nil {
					t.Fatal(err)
				}
			}
			if v, ok, err := cl.SortedGet("board", "k001"); err != nil || !ok || len(v) == 0 {
				t.Fatalf("SortedGet = %q, %v, %v", v, ok, err)
			}
			if _, ok, err := cl.SortedGet("board", "missing"); err != nil || ok {
				t.Fatalf("SortedGet(missing) = %v, %v", ok, err)
			}

			// Full scan comes back complete and sorted.
			es, err := cl.RangeScan("board", "", "", 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(es) != n {
				t.Fatalf("full scan = %d entries, want %d", len(es), n)
			}
			for i := 1; i < len(es); i++ {
				if es[i-1].Key >= es[i].Key {
					t.Fatalf("scan out of order: %q >= %q", es[i-1].Key, es[i].Key)
				}
			}
			// [lo, hi) bounds and the limit.
			es, err = cl.RangeScan("board", "k010", "k020", 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(es) != 10 || es[0].Key != "k010" || es[9].Key != "k019" {
				t.Fatalf("bounded scan = %d entries [%q..%q]", len(es), es[0].Key, es[len(es)-1].Key)
			}
			if es, err = cl.RangeScan("board", "k010", "k020", 3); err != nil || len(es) != 3 {
				t.Fatalf("limited scan = %d entries, %v", len(es), err)
			}
			if cnt, err := cl.RangeCount("board", "k010", "k020"); err != nil || cnt != 10 {
				t.Fatalf("RangeCount = %d, %v", cnt, err)
			}

			// Delete and physical length.
			if ok, err := cl.SortedDelete("board", "k000"); err != nil || !ok {
				t.Fatalf("SortedDelete = %v, %v", ok, err)
			}
			if ok, err := cl.SortedDelete("board", "k000"); err != nil || ok {
				t.Fatalf("double SortedDelete = %v, %v", ok, err)
			}
			res, err := cl.Txn().SortedLen("board").Commit()
			if err != nil || res.Num(0) != n-1 {
				t.Fatalf("SortedLen = %d, %v", res.Num(0), err)
			}

			// Read-your-writes inside one envelope, mixing structures.
			tx := cl.Txn()
			tx.SortedPut("board", "zzz", []byte("last"))
			tx.SortedGet("board", "zzz")
			tx.RangeCount("board", "zzz", "")
			tx.CounterAdd("scans", 1)
			r, err := tx.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if !r.Found(1) || string(r.Bytes(1)) != "last" {
				t.Fatalf("read-your-writes = %q, %v", r.Bytes(1), r.Found(1))
			}
			if r.Num(2) != 1 {
				t.Fatalf("in-envelope count = %d", r.Num(2))
			}
		})
	}
}

// TestTTLReaperE2E: reads hide expired entries immediately; an explicit
// Reap pass physically removes due map/sorted entries and requeues the
// overdue lease, and the redelivered element carries a fresh lease id
// while the stale id's ack is refused.
func TestTTLReaperE2E(t *testing.T) {
	s := startServer(t, server.Config{})
	cl := dial(t, s, 2)

	now := time.Now().UnixNano()
	past, future := now-int64(time.Hour), now+int64(time.Hour)

	if err := cl.MapPutTTL("sessions", "gone", []byte("x"), past); err != nil {
		t.Fatal(err)
	}
	if err := cl.MapPutTTL("sessions", "live", []byte("y"), future); err != nil {
		t.Fatal(err)
	}
	if err := cl.SortedPutTTL("board", "gone", []byte("1"), past); err != nil {
		t.Fatal(err)
	}
	if err := cl.SortedPut("board", "stay", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := cl.QueuePush("jobs", []byte("job-1")); err != nil {
		t.Fatal(err)
	}
	staleID, v, ok, err := cl.LeaseConsume("jobs", past) // already overdue
	if err != nil || !ok || string(v) != "job-1" {
		t.Fatalf("LeaseConsume = %d, %q, %v, %v", staleID, v, ok, err)
	}

	// Expired entries are hidden from reads before any reaping runs.
	if _, ok, err := cl.MapGet("sessions", "gone"); err != nil || ok {
		t.Fatalf("expired map key visible: %v, %v", ok, err)
	}
	if _, ok, err := cl.SortedGet("board", "gone"); err != nil || ok {
		t.Fatalf("expired sorted key visible: %v, %v", ok, err)
	}
	if es, err := cl.RangeScan("board", "", "", 0); err != nil || len(es) != 1 || es[0].Key != "stay" {
		t.Fatalf("scan over expired = %v, %v", es, err)
	}
	// But they are still physically present (the reaper's work).
	if n, err := cl.MapLen("sessions"); err != nil || n != 2 {
		t.Fatalf("physical MapLen = %d, %v", n, err)
	}

	expired, reclaimed := s.Reap(time.Now().UnixNano())
	if expired != 2 || reclaimed != 1 {
		t.Fatalf("Reap = %d expired, %d reclaimed; want 2, 1", expired, reclaimed)
	}
	if n, err := cl.MapLen("sessions"); err != nil || n != 1 {
		t.Fatalf("MapLen after reap = %d, %v", n, err)
	}
	res, err := cl.Txn().SortedLen("board").LeaseLen("jobs").QueueLen("jobs").Commit()
	if err != nil {
		t.Fatal(err)
	}
	if res.Num(0) != 1 || res.Num(1) != 0 || res.Num(2) != 1 {
		t.Fatalf("after reap: sortedLen=%d leaseLen=%d queueLen=%d", res.Num(0), res.Num(1), res.Num(2))
	}
	// A second pass finds nothing.
	if e2, r2 := s.Reap(time.Now().UnixNano()); e2 != 0 || r2 != 0 {
		t.Fatalf("second Reap = %d, %d; want 0, 0", e2, r2)
	}

	// The reclaimed element redelivers under a NEW lease id; acking the
	// stale id aborts its whole envelope (exactly-once side effects).
	newID, v2, ok, err := cl.LeaseConsume("jobs", future)
	if err != nil || !ok || string(v2) != "job-1" || newID == staleID {
		t.Fatalf("redelivery = %d, %q, %v, %v (stale id %d)", newID, v2, ok, err, staleID)
	}
	tx := cl.Txn()
	tx.LeaseAck("jobs", staleID)
	tx.CounterAdd("done", 1)
	if _, err := tx.Commit(); err == nil {
		t.Fatal("stale ack committed")
	} else {
		var aborted *client.ErrTxAborted
		if !errors.As(err, &aborted) {
			t.Fatalf("stale ack err = %v, want ErrTxAborted", err)
		}
	}
	if n, err := cl.CounterSum("done"); err != nil || n != 0 {
		t.Fatalf("aborted ack leaked side effects: done = %d, %v", n, err)
	}
	if ok, err := cl.LeaseAck("jobs", newID); err != nil || !ok {
		t.Fatalf("fresh ack = %v, %v", ok, err)
	}
}

// TestReaperBackgroundLoop: with ReapInterval set the loop reclaims an
// overdue lease without any explicit call.
func TestReaperBackgroundLoop(t *testing.T) {
	s := startServer(t, server.Config{ReapInterval: 20 * time.Millisecond})
	cl := dial(t, s, 1)

	if err := cl.QueuePush("jobs", []byte("flaky")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := cl.LeaseConsume("jobs", time.Now().Add(50*time.Millisecond).UnixNano()); err != nil || !ok {
		t.Fatalf("consume = %v, %v", ok, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := cl.QueueLen("jobs")
		if err != nil {
			t.Fatal(err)
		}
		if n == 1 {
			break // reaper requeued it
		}
		if time.Now().After(deadline) {
			t.Fatal("background reaper never reclaimed the overdue lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSortedTTLLeaseCrashRecovery kills the server mid-flight and
// checks the WAL (plus a mid-run v2 checkpoint) reconstructs sorted
// entries, TTLs, outstanding leases AND the lease-id watermark — with
// no resurrection of reaped keys and no double-acked element.
func TestSortedTTLLeaseCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	now := time.Now().UnixNano()
	past, future := now-int64(time.Hour), now+int64(time.Hour)

	cfg := server.Config{DataDir: dir, Fsync: true}
	s := startServerNoCleanupClose(t, cfg)
	cl := dial(t, s, 2)

	for i := 0; i < 20; i++ {
		if err := cl.SortedPut("board", fmt.Sprintf("p%02d", i), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.SortedPutTTL("board", "soon", []byte("x"), past); err != nil {
		t.Fatal(err)
	}
	if err := cl.MapPutTTL("sessions", "s1", []byte("alive"), future); err != nil {
		t.Fatal(err)
	}
	for _, job := range []string{"a", "b", "c"} {
		if err := cl.QueuePush("jobs", []byte(job)); err != nil {
			t.Fatal(err)
		}
	}
	// Reap the expired sorted key so recovery must NOT resurrect it,
	// then checkpoint: recovery = v2 snapshot + WAL tail.
	if expired, _ := s.Reap(now); expired != 1 {
		t.Fatalf("pre-crash reap expired %d, want 1", expired)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic lands in the WAL tail: two leases, one
	// acked, one left outstanding.
	id1, _, ok, err := cl.LeaseConsume("jobs", future)
	if err != nil || !ok {
		t.Fatal(err)
	}
	id2, v2, ok, err := cl.LeaseConsume("jobs", future)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if ok, err := cl.LeaseAck("jobs", id1); err != nil || !ok {
		t.Fatalf("ack = %v, %v", ok, err)
	}

	cl.Close()
	s.Kill()

	r := startServer(t, cfg)
	rcl := dial(t, r, 2)

	// Sorted state: 20 live entries, the reaped key gone for good.
	if cnt, err := rcl.RangeCount("board", "", ""); err != nil || cnt != 20 {
		t.Fatalf("recovered RangeCount = %d, %v", cnt, err)
	}
	res, err := rcl.Txn().SortedLen("board").Commit()
	if err != nil || res.Num(0) != 20 {
		t.Fatalf("recovered SortedLen = %d, %v (expired key resurrected?)", res.Num(0), err)
	}
	if _, ok, err := rcl.MapGet("sessions", "s1"); err != nil || !ok {
		t.Fatalf("recovered TTL'd map key = %v, %v", ok, err)
	}
	// Lease state: id2 outstanding, id1's element consumed for good,
	// one element still queued. Conservation: 3 = queued + leased + acked.
	res, err = rcl.Txn().QueueLen("jobs").LeaseLen("jobs").Commit()
	if err != nil || res.Num(0) != 1 || res.Num(1) != 1 {
		t.Fatalf("recovered queue=%d leases=%d, %v", res.Num(0), res.Num(1), err)
	}
	if ok, err := rcl.LeaseAck("jobs", id1); err != nil || ok {
		t.Fatalf("acked lease survived recovery: %v, %v", ok, err)
	}
	// The outstanding lease is still ackable, and its element matches.
	if ok, err := rcl.LeaseAck("jobs", id2); err != nil || !ok {
		t.Fatalf("outstanding lease %d (value %q) not ackable after recovery: %v, %v", id2, v2, ok, err)
	}
	// The id watermark survived: the next lease id is fresh, not a reuse.
	id3, _, ok, err := rcl.LeaseConsume("jobs", future)
	if err != nil || !ok || id3 <= id2 {
		t.Fatalf("post-recovery lease id = %d (prev %d), %v, %v", id3, id2, ok, err)
	}
}

// startServerNoCleanupClose boots a durable server the test will Kill
// itself (registering only a belt-and-braces cleanup that tolerates the
// kill having happened).
func startServerNoCleanupClose(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(s.Kill) // idempotent with the test's own Kill
	return s
}

// TestSortedLeaseReplicaE2E: the new record types ride the replication
// stream — sorted puts, TTLs, lease consumes and the primary's reap all
// replay on a replica, which serves ordered range reads and refuses
// sorted mutations.
func TestSortedLeaseReplicaE2E(t *testing.T) {
	dir := t.TempDir()
	primary := startServer(t, server.Config{DataDir: dir, Shards: 2})
	replica := startServer(t, server.Config{Shards: 2, ReplicaOf: primary.Addr().String()})

	pcl := dial(t, primary, 2)
	now := time.Now().UnixNano()
	past, future := now-int64(time.Hour), now+int64(time.Hour)

	for i := 0; i < 10; i++ {
		if err := pcl.SortedPut("board", fmt.Sprintf("p%02d", i), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pcl.SortedPutTTL("board", "ephemeral", []byte("x"), past); err != nil {
		t.Fatal(err)
	}
	if err := pcl.QueuePush("jobs", []byte("job")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := pcl.LeaseConsume("jobs", future); err != nil || !ok {
		t.Fatalf("consume = %v, %v", ok, err)
	}
	// The primary's reap is a logged mutation like any other: the
	// replica replays the removal rather than reaping on its own clock.
	if expired, _ := primary.Reap(now); expired != 1 {
		t.Fatalf("primary reap expired %d, want 1", expired)
	}

	waitCaughtUp(t, replica)
	rcl, err := client.Connect(client.Options{
		Addrs:          []string{replica.Addr().String()},
		ReadPreference: client.ReadReplicaRequired,
		MaxStaleness:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rcl.Close)

	es, err := rcl.RangeScan("board", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 10 || es[0].Key != "p00" || es[9].Key != "p09" {
		t.Fatalf("replica scan = %d entries", len(es))
	}
	res, err := rcl.Txn().SortedLen("board").LeaseLen("jobs").QueueLen("jobs").Commit()
	if err != nil {
		t.Fatal(err)
	}
	if res.Num(0) != 10 {
		t.Fatalf("replica SortedLen = %d, want 10 (reap not replayed?)", res.Num(0))
	}
	if res.Num(1) != 1 || res.Num(2) != 0 {
		t.Fatalf("replica leases=%d queue=%d", res.Num(1), res.Num(2))
	}

	// Sorted mutations and lease consumes bounce off the replica.
	if err := rcl.SortedPut("board", "w", []byte("x")); !errors.Is(err, client.ErrNotPrimary) {
		t.Fatalf("replica SortedPut err = %v, want ErrNotPrimary", err)
	}
	if _, _, _, err := rcl.LeaseConsume("jobs", future); !errors.Is(err, client.ErrNotPrimary) {
		t.Fatalf("replica LeaseConsume err = %v, want ErrNotPrimary", err)
	}
}
