package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"pnstm"
	"pnstm/server"
)

// TestHotKeyProfilerE2E plants two hot keys in a sea of cold ones and
// demands the conflict profiler rank them on top: eight writers hammer
// hot:m:h0 and hot:m:h1 while also spreading single writes over unique
// cold keys, so the write-write conflicts between batch siblings
// concentrate on the planted keys and /debug/hotkeys must say so.
func TestHotKeyProfilerE2E(t *testing.T) {
	// MaxBatch 2 with MaxInflight 2 splits the writers across small
	// concurrent batches, so the planted keys contend at root level —
	// the conflict class that actually aborts (sibling conflicts inside
	// one batch are usually absorbed by spin/escalate).
	s := startServer(t, server.Config{
		Workers:     4,
		MaxBatch:    2,
		MaxInflight: 2,
		TraceSample: 1, // full lifecycle fidelity; attribution is exact either way
		AdminAddr:   "127.0.0.1:0",
	})

	const writers = 8
	const opsPer = 300
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := dial(t, s, 1)
			for i := 0; i < opsPer; i++ {
				var err error
				if i%4 == 3 {
					// One cold write per four hot ones: the profiler must not
					// let the long tail crowd out the real hot spots.
					err = cl.MapPut("hot:m", fmt.Sprintf("cold-%d-%d", g, i), []byte("x"))
				} else {
					err = cl.MapPut("hot:m", fmt.Sprintf("h%d", i%2), []byte("v"))
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	code, body := adminGET(t, adminURL(t, s, "/debug/hotkeys?n=4"))
	if code != 200 {
		t.Fatalf("GET /debug/hotkeys = %d %q", code, body)
	}
	var rep server.HotKeysReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	if !rep.Tracing {
		t.Fatal("report says tracing is off")
	}
	if rep.Aborts == 0 {
		t.Fatalf("no attributed aborts after %d contended writes: %+v", writers*opsPer, rep)
	}
	if rep.TraceEvents == 0 {
		t.Fatal("no trace events recorded")
	}
	if len(rep.Top) < 2 {
		t.Fatalf("ranked table has %d entries, want >= 2: %+v", len(rep.Top), rep.Top)
	}
	// The two planted keys must be the top two — every cold key was
	// written once by one goroutine and cannot out-conflict them.
	want := map[string]bool{"hot:m:h0": true, "hot:m:h1": true}
	for _, hk := range rep.Top[:2] {
		if !want[hk.Key] {
			t.Fatalf("top-2 entry %q is not a planted hot key (table: %+v)", hk.Key, rep.Top)
		}
		if hk.Count == 0 {
			t.Fatalf("planted key %q ranked with zero count", hk.Key)
		}
		delete(want, hk.Key)
	}

	// The same ranking is exported on /metrics as pnstm_hotkey_aborts.
	code, metrics := adminGET(t, adminURL(t, s, "/metrics"))
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	if !strings.Contains(metrics, `pnstm_hotkey_aborts{key="hot:m:h0"}`) &&
		!strings.Contains(metrics, `pnstm_hotkey_aborts{key="hot:m:h1"}`) {
		t.Fatal("pnstm_hotkey_aborts missing the planted keys")
	}

	// And the raw event window on /debug/trace carries abort events
	// tagged with the planted keys.
	code, trace := adminGET(t, adminURL(t, s, "/debug/trace?secs=60"))
	if code != 200 {
		t.Fatalf("GET /debug/trace = %d", code)
	}
	var win struct {
		Tracing bool                `json:"tracing"`
		Shards  []server.ShardTrace `json:"shards"`
	}
	if err := json.Unmarshal([]byte(trace), &win); err != nil {
		t.Fatal(err)
	}
	if !win.Tracing || len(win.Shards) != 1 {
		t.Fatalf("trace window: tracing=%v shards=%d", win.Tracing, len(win.Shards))
	}
	var sawTaggedAbort bool
	for _, ev := range win.Shards[0].Events {
		if ev.Kind == pnstm.EvAbort && strings.HasPrefix(ev.Tag, "hot:m:h") {
			sawTaggedAbort = true
			break
		}
	}
	if !sawTaggedAbort {
		t.Fatalf("no abort event tagged hot:m:h* among %d retained events", len(win.Shards[0].Events))
	}
}

// TestDebugEndpointValidation covers the /debug/hotkeys and /debug/trace
// parameter and method checks, and that pprof is NOT mounted without
// Config.AdminDebug.
func TestDebugEndpointValidation(t *testing.T) {
	s := startServer(t, server.Config{AdminAddr: "127.0.0.1:0"})

	if resp, err := http.Post(adminURL(t, s, "/debug/hotkeys"), "text/plain", nil); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/hotkeys = %d, want 405", resp.StatusCode)
	}
	if code, body := adminGET(t, adminURL(t, s, "/debug/hotkeys?n=0")); code != http.StatusBadRequest {
		t.Fatalf("n=0 -> %d %q, want 400", code, body)
	}
	if code, body := adminGET(t, adminURL(t, s, "/debug/hotkeys?n=junk")); code != http.StatusBadRequest {
		t.Fatalf("n=junk -> %d %q, want 400", code, body)
	}
	if code, _ := adminGET(t, adminURL(t, s, "/debug/hotkeys?n=5")); code != 200 {
		t.Fatalf("n=5 -> %d, want 200", code)
	}
	if code, body := adminGET(t, adminURL(t, s, "/debug/trace?secs=-1")); code != http.StatusBadRequest {
		t.Fatalf("secs=-1 -> %d %q, want 400", code, body)
	}
	if code, body := adminGET(t, adminURL(t, s, "/debug/trace?secs=abc")); code != http.StatusBadRequest {
		t.Fatalf("secs=abc -> %d %q, want 400", code, body)
	}
	if code, _ := adminGET(t, adminURL(t, s, "/debug/trace")); code != 200 {
		t.Fatalf("GET /debug/trace -> %d, want 200", code)
	}

	// pprof must be absent without the opt-in flag.
	if code, _ := adminGET(t, adminURL(t, s, "/debug/pprof/cmdline")); code != http.StatusNotFound {
		t.Fatalf("pprof mounted without AdminDebug: GET /debug/pprof/cmdline = %d", code)
	}
}

// TestPprofBehindAdminDebug: with the flag, the profiler endpoints
// answer on the admin listener.
func TestPprofBehindAdminDebug(t *testing.T) {
	s := startServer(t, server.Config{AdminAddr: "127.0.0.1:0", AdminDebug: true})
	if code, body := adminGET(t, adminURL(t, s, "/debug/pprof/cmdline")); code != 200 || body == "" {
		t.Fatalf("GET /debug/pprof/cmdline = %d %q, want the process cmdline", code, body)
	}
	if code, _ := adminGET(t, adminURL(t, s, "/debug/pprof/")); code != 200 {
		t.Fatalf("GET /debug/pprof/ index = %d, want 200", code)
	}
}

// TestTracingConfigKnob: PUT /config {"tracing": false} silences the
// recorder live, and turning it back on resumes recording.
func TestTracingConfigKnob(t *testing.T) {
	s := startServer(t, server.Config{AdminAddr: "127.0.0.1:0"})
	cl := dial(t, s, 1)

	if code, body := adminPUT(t, adminURL(t, s, "/config"), `{"tracing": false}`); code != 200 {
		t.Fatalf("PUT tracing=false -> %d %q", code, body)
	}
	if s.TracingEnabled() {
		t.Fatal("tracing still enabled after PUT")
	}
	before := hotKeyTraceEvents(t, s)
	for i := 0; i < 50; i++ {
		if err := cl.MapPut("knob:m", "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if after := hotKeyTraceEvents(t, s); after != before {
		t.Fatalf("recorder grew %d -> %d events while tracing was off", before, after)
	}

	if code, body := adminPUT(t, adminURL(t, s, "/config"), `{"tracing": true}`); code != 200 {
		t.Fatalf("PUT tracing=true -> %d %q", code, body)
	}
	for i := 0; i < 50; i++ {
		if err := cl.MapPut("knob:m", "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if after := hotKeyTraceEvents(t, s); after <= before {
		t.Fatalf("recorder did not resume after re-enabling (still %d events)", after)
	}
}

func hotKeyTraceEvents(t *testing.T, s *server.Server) uint64 {
	t.Helper()
	return s.HotKeys(1).TraceEvents
}
