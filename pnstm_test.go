package pnstm_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"pnstm"
)

func newRuntime(t *testing.T, workers int) *pnstm.Runtime {
	t.Helper()
	rt, err := pnstm.New(pnstm.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestTypedVarRoundTrip(t *testing.T) {
	rt := newRuntime(t, 2)
	v := pnstm.NewTVar("hello")
	err := rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			if got := pnstm.Load(c, v); got != "hello" {
				t.Errorf("Load = %q", got)
			}
			pnstm.Store(c, v, "world")
			if got := pnstm.Swap(c, v, "again"); got != "world" {
				t.Errorf("Swap old = %q", got)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got != "again" {
		t.Fatalf("Peek = %q", got)
	}
}

func TestUpdateAndAtomicResult(t *testing.T) {
	rt := newRuntime(t, 2)
	v := pnstm.NewTVar(10)
	err := rt.Run(func(c *pnstm.Ctx) {
		got, err := pnstm.AtomicResult(c, func(c *pnstm.Ctx) (int, error) {
			return pnstm.Update(c, v, func(x int) int { return x * 3 }), nil
		})
		if err != nil || got != 30 {
			t.Errorf("AtomicResult = %d, %v", got, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Peek() != 30 {
		t.Fatalf("Peek = %d", v.Peek())
	}
}

func TestStructuredValues(t *testing.T) {
	type point struct{ X, Y int }
	rt := newRuntime(t, 2)
	v := pnstm.NewTVar(point{1, 2})
	err := rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			p := pnstm.Load(c, v)
			p.X += 10
			pnstm.Store(c, v, p)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got != (point{11, 2}) {
		t.Fatalf("Peek = %+v", got)
	}
}

func TestUserErrorPropagates(t *testing.T) {
	rt := newRuntime(t, 2)
	v := pnstm.NewTVar(1)
	sentinel := errors.New("sentinel")
	err := rt.Run(func(c *pnstm.Ctx) {
		if got := c.Atomic(func(c *pnstm.Ctx) error {
			pnstm.Store(c, v, 2)
			return sentinel
		}); !errors.Is(got, sentinel) {
			t.Errorf("err = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Peek() != 1 {
		t.Fatalf("rollback failed: %d", v.Peek())
	}
}

func TestParallelInsideTransaction(t *testing.T) {
	rt := newRuntime(t, 4)
	vars := make([]*pnstm.TVar[int], 16)
	for i := range vars {
		vars[i] = pnstm.NewTVar(0)
	}
	err := rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			fns := make([]func(*pnstm.Ctx), len(vars))
			for i := range vars {
				i := i
				fns[i] = func(c *pnstm.Ctx) {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						pnstm.Store(c, vars[i], i+1)
						return nil
					})
				}
			}
			c.Parallel(fns...)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vars {
		if v.Peek() != i+1 {
			t.Fatalf("vars[%d] = %d", i, v.Peek())
		}
	}
}

func TestSerialModeViaPublicAPI(t *testing.T) {
	rt, err := pnstm.New(pnstm.Config{Workers: 1, Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Publisher() != nil {
		t.Fatal("serial runtime has a publisher")
	}
	v := pnstm.NewTVar(0)
	var order []int
	err = rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			c.Parallel(
				func(c *pnstm.Ctx) { order = append(order, 1) },
				func(c *pnstm.Ctx) { order = append(order, 2) },
				func(c *pnstm.Ctx) { order = append(order, 3) },
			)
			pnstm.Store(c, v, len(order))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Serial mode runs children in order on one goroutine.
	for i, got := range order {
		if got != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if v.Peek() != 3 {
		t.Fatalf("v = %d", v.Peek())
	}
}

func TestRuntimeCloseSemantics(t *testing.T) {
	rt := newRuntime(t, 2)
	rt.Close()
	if err := rt.Run(func(*pnstm.Ctx) {}); !errors.Is(err, pnstm.ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestHighContentionCounter(t *testing.T) {
	rt := newRuntime(t, 4)
	v := pnstm.NewTVar(0)
	var attempts atomic.Int64
	const workers = 16
	const perWorker = 10
	err := rt.Run(func(c *pnstm.Ctx) {
		fns := make([]func(*pnstm.Ctx), workers)
		for i := range fns {
			fns[i] = func(c *pnstm.Ctx) {
				for k := 0; k < perWorker; k++ {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						attempts.Add(1)
						pnstm.Update(c, v, func(x int) int { return x + 1 })
						return nil
					})
				}
			}
		}
		c.Parallel(fns...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (attempts %d, stats %+v)",
			got, workers*perWorker, attempts.Load(), rt.Stats())
	}
}

func TestWorkersAccessor(t *testing.T) {
	rt := newRuntime(t, 3)
	if rt.Workers() != 3 {
		t.Fatalf("Workers = %d", rt.Workers())
	}
}
