package stmlib

import (
	"fmt"
	"math/bits"
	"strconv"
)

// hashKey maps a comparable key to a 64-bit hash. Common scalar kinds are
// mixed directly; everything else goes through its printed form. The
// quality bar is bucket spreading, not adversarial resistance — bucket
// choice only shapes contention, never correctness.
func hashKey(k any) uint64 {
	switch v := k.(type) {
	case int:
		return mix64(uint64(v))
	case int8:
		return mix64(uint64(v))
	case int16:
		return mix64(uint64(v))
	case int32:
		return mix64(uint64(v))
	case int64:
		return mix64(uint64(v))
	case uint:
		return mix64(uint64(v))
	case uint8:
		return mix64(uint64(v))
	case uint16:
		return mix64(uint64(v))
	case uint32:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	case uintptr:
		return mix64(uint64(v))
	case string:
		return hashString(v)
	case bool:
		if v {
			return mix64(1)
		}
		return mix64(0)
	case float64:
		return mix64(uint64(int64(v)) ^ 0x9e3779b97f4a7c15)
	case float32:
		return mix64(uint64(int64(v)) ^ 0x9e3779b97f4a7c15)
	default:
		return hashString(fmt.Sprintf("%v", k))
	}
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString is FNV-1a with a final mix.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// groupBounds splits n buckets into at most maxGroups contiguous ranges of
// near-equal size and returns the range boundaries: group g covers buckets
// [bounds[g], bounds[g+1]). Bulk operations fork one nested child per
// group.
func groupBounds(n, maxGroups int) []int {
	g := maxGroups
	if g > n {
		g = n
	}
	if g < 1 {
		g = 1
	}
	bounds := make([]int, g+1)
	for i := 0; i <= g; i++ {
		bounds[i] = i * n / g
	}
	return bounds
}

// ceilPow2 rounds n up to a power of two (used to make bucket masking
// cheap).
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// itoa renders a small non-negative index for attribution labels.
func itoa(i int) string { return strconv.Itoa(i) }
