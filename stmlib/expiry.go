package stmlib

import "encoding/binary"

// The registry's deadline index is an internal TSortedMap keyed so that
// plain lexicographic order IS deadline order: every TTL'd map key,
// TTL'd sorted-map key and outstanding queue lease contributes one
// index entry whose key starts with the big-endian deadline. A reaper
// finds everything due by one RangeScan up to its cutoff — the
// "deadline-ordered via a TSortedMap expiry index" shape — and the
// structures' expiry/lease hooks keep the index exact: an entry is
// inserted when a deadline appears and removed when it goes away
// (overwrite, delete, expire, ack, nack, reclaim), all inside the same
// transaction as the mutation, so replaying the WAL rebuilds the index
// as a side effect and snapshots never serialize it.

// Expiry-index entry kinds: which structure kind the deadline belongs
// to.
const (
	ExpiryKindMap    byte = 'm' // TMap key TTL (ref is the map key)
	ExpiryKindSorted byte = 's' // TSortedMap key TTL (ref is the key)
	ExpiryKindLease  byte = 'l' // TQueue lease (ref is the 8-byte big-endian lease id)
)

// ExpiryKey encodes one deadline-index key: 8-byte big-endian deadline,
// kind byte, 2-byte big-endian name length, name, ref. The deadline
// prefix makes index order deadline order; the length prefix keeps
// names with arbitrary bytes parseable.
func ExpiryKey(exp int64, kind byte, name, ref string) string {
	b := make([]byte, 0, 11+len(name)+len(ref))
	b = binary.BigEndian.AppendUint64(b, uint64(exp))
	b = append(b, kind)
	b = binary.BigEndian.AppendUint16(b, uint16(len(name)))
	b = append(b, name...)
	b = append(b, ref...)
	return string(b)
}

// ExpiryCutoffKey returns the exclusive upper-bound index key covering
// every entry with deadline <= cutoff: scan ["", ExpiryCutoffKey) to
// collect all due work.
func ExpiryCutoffKey(cutoff int64) string {
	b := make([]byte, 0, 8)
	b = binary.BigEndian.AppendUint64(b, uint64(cutoff)+1)
	return string(b)
}

// ParseExpiryKey decodes an index key back into its parts. ok is false
// on a malformed key (never produced by the hooks; defensive for
// diagnostics).
func ParseExpiryKey(k string) (exp int64, kind byte, name, ref string, ok bool) {
	if len(k) < 11 {
		return 0, 0, "", "", false
	}
	exp = int64(binary.BigEndian.Uint64([]byte(k[:8])))
	kind = k[8]
	nameLen := int(binary.BigEndian.Uint16([]byte(k[9:11])))
	if len(k) < 11+nameLen {
		return 0, 0, "", "", false
	}
	return exp, kind, k[11 : 11+nameLen], k[11+nameLen:], true
}

// LeaseRef renders a lease id as the index-key ref ExpiryKindLease
// entries use.
func LeaseRef(id uint64) string {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, id)
	return string(b)
}

// ParseLeaseRef decodes a LeaseRef back into the lease id.
func ParseLeaseRef(ref string) (uint64, bool) {
	if len(ref) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64([]byte(ref)), true
}
