package stmlib_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pnstm"
	"pnstm/stmlib"
)

// Oracle testing, mirroring internal/core/oracle_test.go: generate random
// nested-parallel programs over the data structures whose outcome is
// deterministic (leaves own disjoint key partitions, or every operation
// commutes), execute them under the parallel runtime and the
// serial-nesting baseline, and require both to match a plain sequential
// reference model.

// mapOp is one operation of a leaf's script.
type mapOp struct {
	kind int // 0 = put, 1 = delete, 2 = update-add
	key  int
	val  int
}

// leafScript is a deterministic operation sequence over a leaf's own key
// partition.
type leafScript struct {
	ops []mapOp
}

// structProg is a random program tree: leaves run scripts, internal nodes
// fork children (over disjoint partitions) or wrap a child in a nested
// atomic.
type structProg struct {
	kind     int // 0 = leaf, 1 = parallel, 2 = sequential, 3 = nested atomic
	children []*structProg
	script   leafScript
}

// genStructProg builds a random program over a disjoint partition of key
// space. Leaves only touch their own keys, so the final map state is
// schedule-independent.
func genStructProg(rng *rand.Rand, keys []int, depth int) *structProg {
	if depth == 0 || len(keys) < 2 || rng.Intn(4) == 0 {
		nOps := 3 + rng.Intn(8)
		var ops []mapOp
		for i := 0; i < nOps; i++ {
			ops = append(ops, mapOp{
				kind: rng.Intn(3),
				key:  keys[rng.Intn(len(keys))],
				val:  rng.Intn(100) + 1,
			})
		}
		return &structProg{kind: 0, script: leafScript{ops: ops}}
	}
	switch rng.Intn(3) {
	case 0:
		n := 2 + rng.Intn(3)
		if n > len(keys) {
			n = len(keys)
		}
		p := &structProg{kind: 1}
		per := len(keys) / n
		for i := 0; i < n; i++ {
			lo, hi := i*per, (i+1)*per
			if i == n-1 {
				hi = len(keys)
			}
			p.children = append(p.children, genStructProg(rng, keys[lo:hi], depth-1))
		}
		return p
	case 1:
		mid := 1 + rng.Intn(len(keys)-1)
		return &structProg{kind: 2, children: []*structProg{
			genStructProg(rng, keys[:mid], depth-1),
			genStructProg(rng, keys[mid:], depth-1),
		}}
	default:
		return &structProg{kind: 3, children: []*structProg{
			genStructProg(rng, keys, depth-1),
		}}
	}
}

// applyRef applies a leaf script to the plain-map reference model.
func (s leafScript) applyRef(ref map[int]int) {
	for _, op := range s.ops {
		switch op.kind {
		case 0:
			ref[op.key] = op.val
		case 1:
			delete(ref, op.key)
		case 2:
			ref[op.key] = ref[op.key] + op.val
		}
	}
}

// applyTM applies a leaf script transactionally.
func (s leafScript) applyTM(c *pnstm.Ctx, m *stmlib.TMap[int, int]) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		for _, op := range s.ops {
			switch op.kind {
			case 0:
				m.Put(c, op.key, op.val)
			case 1:
				m.Delete(c, op.key)
			case 2:
				m.Update(c, op.key, func(v int, ok bool) (int, bool) {
					return v + op.val, true
				})
			}
		}
		return nil
	})
}

// runRef runs the whole program against the reference model (any leaf
// order; partitions are disjoint so order cannot matter).
func (p *structProg) runRef(ref map[int]int) {
	if p.kind == 0 {
		p.script.applyRef(ref)
		return
	}
	for _, ch := range p.children {
		ch.runRef(ref)
	}
}

// runTM runs the program in the given context.
func (p *structProg) runTM(c *pnstm.Ctx, m *stmlib.TMap[int, int]) {
	switch p.kind {
	case 0:
		p.script.applyTM(c, m)
	case 1:
		fns := make([]func(*pnstm.Ctx), len(p.children))
		for i, ch := range p.children {
			ch := ch
			fns[i] = func(c *pnstm.Ctx) { ch.runTM(c, m) }
		}
		c.Parallel(fns...)
	case 2:
		for _, ch := range p.children {
			ch.runTM(c, m)
		}
	case 3:
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			p.children[0].runTM(c, m)
			return nil
		})
	}
}

// executeStructProg runs p on a fresh runtime and returns the final map
// contents.
func executeStructProg(t *testing.T, p *structProg, workers int, serial bool) map[int]int {
	t.Helper()
	rt := newRT(t, workers, serial)
	m := stmlib.NewTMap[int, int](32)
	var snap map[int]int
	run(t, rt, func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			p.runTM(c, m)
			return nil
		})
		snap = m.Snapshot(c)
	})
	return snap
}

func diffMaps(t *testing.T, label string, got, want map[int]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Errorf("%s: key %d = %d,%v want %d", label, k, g, ok, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: unexpected key %d", label, k)
		}
	}
}

func TestOracleTMapRandomProgramsMatchReference(t *testing.T) {
	const nKeys = 48
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			keys := make([]int, nKeys)
			for i := range keys {
				keys[i] = i * 7 // spread over buckets
			}
			p := genStructProg(rng, keys, 4)

			ref := make(map[int]int)
			p.runRef(ref)

			serial := executeStructProg(t, p, 1, true)
			diffMaps(t, "serial vs reference", serial, ref)
			for _, workers := range []int{2, 4} {
				par := executeStructProg(t, p, workers, false)
				diffMaps(t, fmt.Sprintf("parallel(%d) vs reference", workers), par, ref)
			}
		})
	}
}

// TestOracleCommutativeAllStructures: every leaf performs the same
// commutative operations (counter adds, map update-adds on shared keys,
// queue pushes). Any serialization yields the same totals, so the oracle
// holds under real conflicts, retries and escalations.
func TestOracleCommutativeAllStructures(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		width := 2 + rng.Intn(4)
		depth := 1 + rng.Intn(2)
		adds := int64(rng.Intn(5) + 1)
		leaves := 1
		for i := 0; i < depth; i++ {
			leaves *= width
		}

		rt := newRT(t, 4, false)
		m := stmlib.NewTMap[string, int](16)
		q := stmlib.NewTQueue[int]()
		ctr := stmlib.NewTCounter(8)

		var build func(d int) func(*pnstm.Ctx)
		build = func(d int) func(*pnstm.Ctx) {
			if d == 0 {
				return func(c *pnstm.Ctx) {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						ctr.Add(c, adds)
						m.Update(c, "shared", func(v int, ok bool) (int, bool) {
							return v + 1, true
						})
						q.Push(c, 1)
						return nil
					})
				}
			}
			return func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					fns := make([]func(*pnstm.Ctx), width)
					for i := range fns {
						fns[i] = build(d - 1)
					}
					c.Parallel(fns...)
					return nil
				})
			}
		}
		run(t, rt, build(depth))

		run(t, rt, func(c *pnstm.Ctx) {
			if s := ctr.Sum(c); s != int64(leaves)*adds {
				t.Errorf("seed %d: counter = %d want %d", seed, s, int64(leaves)*adds)
			}
			if v, _ := m.Get(c, "shared"); v != leaves {
				t.Errorf("seed %d: map = %d want %d", seed, v, leaves)
			}
			if n := q.Len(c); n != leaves {
				t.Errorf("seed %d: queue = %d want %d", seed, n, leaves)
			}
		})
	}
}
