package stmlib_test

import (
	"fmt"
	"sync"
	"testing"

	"pnstm"
	"pnstm/stmlib"
)

func TestRegistryGetOrCreateStable(t *testing.T) {
	r := stmlib.NewRegistry(stmlib.RegistryConfig{})
	m1 := r.Map("a")
	if m1 == nil || r.Map("a") != m1 {
		t.Fatal("Map not stable across lookups")
	}
	if r.Map("b") == m1 {
		t.Fatal("distinct names share a map")
	}
	q1 := r.Queue("a") // namespaces are per kind: "a" the queue != "a" the map
	if q1 == nil || r.Queue("a") != q1 {
		t.Fatal("Queue not stable across lookups")
	}
	c1 := r.Counter("a")
	if c1 == nil || r.Counter("a") != c1 {
		t.Fatal("Counter not stable across lookups")
	}
	maps, queues, counters := r.Names()
	if len(maps) != 2 || maps[0] != "a" || maps[1] != "b" {
		t.Fatalf("maps = %v", maps)
	}
	if len(queues) != 1 || len(counters) != 1 {
		t.Fatalf("queues = %v counters = %v", queues, counters)
	}
}

func TestRegistryConfigSizes(t *testing.T) {
	r := stmlib.NewRegistry(stmlib.RegistryConfig{MapBuckets: 16, CounterStripes: 4})
	if got := r.Map("m").Buckets(); got != 16 {
		t.Errorf("buckets = %d want 16", got)
	}
	if got := r.Counter("c").Stripes(); got != 4 {
		t.Errorf("stripes = %d want 4", got)
	}
}

// TestRegistryConcurrentFirstUse races many goroutines on first use of
// the same names, including transactional use of whatever structure each
// goroutine got back: every goroutine must observe the same instance.
func TestRegistryConcurrentFirstUse(t *testing.T) {
	r := stmlib.NewRegistry(stmlib.RegistryConfig{})
	rt := newRT(t, 4, false)

	const goroutines = 16
	var wg sync.WaitGroup
	ctrs := make([]*stmlib.TCounter, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctr := r.Counter("hits")
			ctrs[g] = ctr
			name := fmt.Sprintf("m%d", g%4)
			if err := rt.Run(func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					ctr.Inc(c)
					r.Map(name).Put(c, fmt.Sprintf("k%d", g), []byte{byte(g)})
					return nil
				})
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if ctrs[g] != ctrs[0] {
			t.Fatalf("goroutine %d got a different counter instance", g)
		}
	}
	run(t, rt, func(c *pnstm.Ctx) {
		if s := r.Counter("hits").Sum(c); s != goroutines {
			t.Errorf("counter = %d want %d", s, goroutines)
		}
		total := 0
		for i := 0; i < 4; i++ {
			total += r.Map(fmt.Sprintf("m%d", i)).Len(c)
		}
		if total != goroutines {
			t.Errorf("map entries = %d want %d", total, goroutines)
		}
	})
}
