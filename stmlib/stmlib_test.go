package stmlib_test

import (
	"testing"

	"pnstm"
)

// newRT builds a runtime for tests and closes it at cleanup.
func newRT(t testing.TB, workers int, serial bool) *pnstm.Runtime {
	t.Helper()
	rt, err := pnstm.New(pnstm.Config{Workers: workers, Serial: serial})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// run executes fn as a root block and fails the test on error.
func run(t testing.TB, rt *pnstm.Runtime, fn func(*pnstm.Ctx)) {
	t.Helper()
	if err := rt.Run(fn); err != nil {
		t.Fatal(err)
	}
}
