package stmlib_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pnstm"
	"pnstm/stmlib"
)

func TestTMapPointOps(t *testing.T) {
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			rt := newRT(t, 4, serial)
			m := stmlib.NewTMap[string, int](16)
			run(t, rt, func(c *pnstm.Ctx) {
				if _, ok := m.Get(c, "a"); ok {
					t.Error("empty map has a")
				}
				m.Put(c, "a", 1)
				m.Put(c, "b", 2)
				m.Put(c, "a", 3) // overwrite
				if v, ok := m.Get(c, "a"); !ok || v != 3 {
					t.Errorf("a = %d,%v want 3,true", v, ok)
				}
				if !m.Contains(c, "b") {
					t.Error("b missing")
				}
				if n := m.Len(c); n != 2 {
					t.Errorf("len = %d want 2", n)
				}
				if !m.Delete(c, "a") {
					t.Error("delete a reported absent")
				}
				if m.Delete(c, "a") {
					t.Error("second delete a reported present")
				}
				if n := m.Len(c); n != 1 {
					t.Errorf("len after delete = %d want 1", n)
				}
			})
		})
	}
}

func TestTMapUpdate(t *testing.T) {
	rt := newRT(t, 2, false)
	m := stmlib.NewTMap[int, int](8)
	run(t, rt, func(c *pnstm.Ctx) {
		// Insert through Update.
		if v, kept := m.Update(c, 7, func(v int, ok bool) (int, bool) {
			if ok {
				t.Error("unexpected present")
			}
			return 10, true
		}); !kept || v != 10 {
			t.Errorf("update insert = %d,%v", v, kept)
		}
		// Transform.
		if v, _ := m.Update(c, 7, func(v int, ok bool) (int, bool) {
			return v + 1, true
		}); v != 11 {
			t.Errorf("update transform = %d", v)
		}
		// Delete through Update.
		if _, kept := m.Update(c, 7, func(v int, ok bool) (int, bool) {
			return 0, false
		}); kept {
			t.Error("update delete kept key")
		}
		if m.Contains(c, 7) {
			t.Error("key survived delete-update")
		}
	})
}

func TestTMapBulkOps(t *testing.T) {
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			rt := newRT(t, 4, serial)
			m := stmlib.NewTMap[int, int](32)
			const n = 200
			run(t, rt, func(c *pnstm.Ctx) {
				keys := make([]int, n)
				for i := 0; i < n; i++ {
					m.Put(c, i, i*i)
					keys[i] = i
				}
				if got := m.Len(c); got != n {
					t.Fatalf("len = %d want %d", got, n)
				}

				// Range accumulates concurrently: use an atomic sum.
				var sum atomic.Int64
				m.Range(c, func(k, v int) { sum.Add(int64(v)) })
				var want int64
				for i := 0; i < n; i++ {
					want += int64(i * i)
				}
				if sum.Load() != want {
					t.Errorf("range sum = %d want %d", sum.Load(), want)
				}

				// Snapshot is a plain consistent copy.
				snap := m.Snapshot(c)
				if len(snap) != n {
					t.Errorf("snapshot len = %d want %d", len(snap), n)
				}
				for k, v := range snap {
					if v != k*k {
						t.Errorf("snapshot[%d] = %d", k, v)
					}
				}

				// BulkUpdate: increment every even key, delete every odd key.
				m.BulkUpdate(c, keys, func(k, v int, ok bool) (int, bool) {
					if !ok {
						t.Errorf("bulk update: key %d missing", k)
					}
					if k%2 == 0 {
						return v + 1, true
					}
					return 0, false
				})
				if got := m.Len(c); got != n/2 {
					t.Errorf("len after bulk = %d want %d", got, n/2)
				}
				if v, ok := m.Get(c, 4); !ok || v != 17 {
					t.Errorf("m[4] = %d,%v want 17,true", v, ok)
				}
				if m.Contains(c, 3) {
					t.Error("odd key survived")
				}

				m.Clear(c)
				if got := m.Len(c); got != 0 {
					t.Errorf("len after clear = %d", got)
				}
			})
		})
	}
}

// TestTMapBulkInsideTransaction checks that a bulk operation is one atomic
// step of an enclosing transaction: when the enclosing body aborts after
// the bulk call, none of the bulk children's effects survive.
func TestTMapBulkInsideTransaction(t *testing.T) {
	rt := newRT(t, 4, false)
	m := stmlib.NewTMap[int, int](16)
	sentinel := fmt.Errorf("deliberate abort")
	run(t, rt, func(c *pnstm.Ctx) {
		for i := 0; i < 50; i++ {
			m.Put(c, i, i)
		}
		err := c.Atomic(func(c *pnstm.Ctx) error {
			m.Clear(c) // parallel-nested children commit into this tx
			if n := m.Len(c); n != 0 {
				t.Errorf("len inside tx after clear = %d", n)
			}
			return sentinel
		})
		if err != sentinel {
			t.Fatalf("err = %v", err)
		}
		if n := m.Len(c); n != 50 {
			t.Errorf("clear survived enclosing abort: len = %d want 50", n)
		}
	})
}

func TestTMapParallelSiblingsDisjointKeys(t *testing.T) {
	rt := newRT(t, 4, false)
	m := stmlib.NewTMap[int, int](64)
	const workers, per = 8, 25
	run(t, rt, func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			fns := make([]func(*pnstm.Ctx), workers)
			for w := 0; w < workers; w++ {
				w := w
				fns[w] = func(c *pnstm.Ctx) {
					for i := 0; i < per; i++ {
						m.Put(c, w*per+i, w)
					}
				}
			}
			c.Parallel(fns...)
			return nil
		})
	})
	run(t, rt, func(c *pnstm.Ctx) {
		if n := m.Len(c); n != workers*per {
			t.Errorf("len = %d want %d", n, workers*per)
		}
		for w := 0; w < workers; w++ {
			if v, ok := m.Get(c, w*per); !ok || v != w {
				t.Errorf("m[%d] = %d,%v want %d", w*per, v, ok, w)
			}
		}
	})
}
