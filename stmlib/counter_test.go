package stmlib_test

import (
	"fmt"
	"testing"

	"pnstm"
	"pnstm/stmlib"
)

func TestTCounterBasics(t *testing.T) {
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			rt := newRT(t, 4, serial)
			ctr := stmlib.NewTCounter(8)
			run(t, rt, func(c *pnstm.Ctx) {
				if s := ctr.Sum(c); s != 0 {
					t.Errorf("fresh sum = %d", s)
				}
				for i := 0; i < 20; i++ {
					ctr.Inc(c)
				}
				ctr.Add(c, -5)
				if s := ctr.Sum(c); s != 15 {
					t.Errorf("sum = %d want 15", s)
				}
				ctr.Reset(c)
				if s := ctr.Sum(c); s != 0 {
					t.Errorf("sum after reset = %d", s)
				}
			})
		})
	}
}

// TestTCounterParallelAdders increments from parallel sibling
// transactions; striping means most adds do not conflict, and the final
// sum must be exact regardless.
func TestTCounterParallelAdders(t *testing.T) {
	rt := newRT(t, 4, false)
	ctr := stmlib.NewTCounter(8)
	const adders, per = 8, 50
	run(t, rt, func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			fns := make([]func(*pnstm.Ctx), adders)
			for i := range fns {
				fns[i] = func(c *pnstm.Ctx) {
					for k := 0; k < per; k++ {
						ctr.Inc(c)
					}
				}
			}
			c.Parallel(fns...)
			// The enclosing transaction reads the total its children just
			// committed (the §5.2 "case 2" access pattern).
			if s := ctr.Sum(c); s != adders*per {
				t.Errorf("sum inside tx = %d want %d", s, adders*per)
			}
			return nil
		})
	})
	run(t, rt, func(c *pnstm.Ctx) {
		if s := ctr.Sum(c); s != adders*per {
			t.Errorf("final sum = %d want %d", s, adders*per)
		}
	})
}

// TestTCounterSumInlineAgreesWithSum: the sequential read is the same
// atomic snapshot as the parallel-fanned one, in and out of enclosing
// transactions, serial and parallel runtimes.
func TestTCounterSumInlineAgreesWithSum(t *testing.T) {
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			rt := newRT(t, 4, serial)
			ctr := stmlib.NewTCounter(8)
			run(t, rt, func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					for i := 0; i < 30; i++ {
						ctr.Add(c, int64(i))
					}
					if a, b := ctr.Sum(c), ctr.SumInline(c); a != b || a != 435 {
						t.Errorf("Sum = %d, SumInline = %d, want 435", a, b)
					}
					return nil
				})
			})
			run(t, rt, func(c *pnstm.Ctx) {
				if a, b := ctr.Sum(c), ctr.SumInline(c); a != b || a != 435 {
					t.Errorf("top-level Sum = %d, SumInline = %d, want 435", a, b)
				}
			})
		})
	}
}

// TestTCounterAbortUndoesAdds checks that aborting an enclosing
// transaction undoes the adds of its committed parallel children.
func TestTCounterAbortUndoesAdds(t *testing.T) {
	rt := newRT(t, 4, false)
	ctr := stmlib.NewTCounter(4)
	sentinel := fmt.Errorf("deliberate abort")
	run(t, rt, func(c *pnstm.Ctx) {
		ctr.Add(c, 100)
		err := c.Atomic(func(c *pnstm.Ctx) error {
			c.Parallel(
				func(c *pnstm.Ctx) { ctr.Add(c, 1) },
				func(c *pnstm.Ctx) { ctr.Add(c, 2) },
				func(c *pnstm.Ctx) { ctr.Add(c, 3) },
			)
			if s := ctr.Sum(c); s != 106 {
				t.Errorf("sum inside tx = %d want 106", s)
			}
			return sentinel
		})
		if err != sentinel {
			t.Fatalf("err = %v", err)
		}
		if s := ctr.Sum(c); s != 100 {
			t.Errorf("sum after abort = %d want 100", s)
		}
	})
}
