package stmlib_test

import (
	"testing"
	"time"

	"pnstm"
	"pnstm/stmlib"
)

func TestExpiryKeyCodec(t *testing.T) {
	k := stmlib.ExpiryKey(12345, stmlib.ExpiryKindMap, "sessions", "user:9")
	exp, kind, name, ref, ok := stmlib.ParseExpiryKey(k)
	if !ok || exp != 12345 || kind != stmlib.ExpiryKindMap || name != "sessions" || ref != "user:9" {
		t.Fatalf("parse = %d %c %q %q %v", exp, kind, name, ref, ok)
	}
	// Lexicographic order must be deadline order, regardless of the
	// name/ref tail.
	a := stmlib.ExpiryKey(100, stmlib.ExpiryKindLease, "zzz", "zzz")
	b := stmlib.ExpiryKey(101, stmlib.ExpiryKindMap, "aaa", "")
	if a >= b {
		t.Error("deadline 100 key does not sort before deadline 101 key")
	}
	// Cutoff covers <= semantics: a key at exactly the cutoff is in
	// range, one nanosecond later is not.
	cut := stmlib.ExpiryCutoffKey(100)
	if !(a < cut) {
		t.Error("key at cutoff excluded")
	}
	if c2 := stmlib.ExpiryKey(101, 0, "", ""); c2 < cut {
		t.Error("key past cutoff included")
	}
	if _, _, _, _, ok := stmlib.ParseExpiryKey("short"); ok {
		t.Error("parsed a malformed key")
	}
	id, ok := stmlib.ParseLeaseRef(stmlib.LeaseRef(7))
	if !ok || id != 7 {
		t.Errorf("lease ref roundtrip = %d,%v", id, ok)
	}
}

// TestRegistryExpiryIndexExact drives every deadline transition through
// registry-owned structures and checks the index holds exactly one entry
// per live deadline at each step — no leaks, no stragglers.
func TestRegistryExpiryIndexExact(t *testing.T) {
	rt := newRT(t, 2, false)
	r := stmlib.NewRegistry(stmlib.RegistryConfig{MapBuckets: 8})
	idx := r.ExpiryIndex()
	now := time.Now().UnixNano()
	future := now + int64(time.Hour)

	count := func() int {
		n := -1
		run(t, rt, func(c *pnstm.Ctx) { n = idx.RangeCountFrom(c, "") })
		return n
	}

	run(t, rt, func(c *pnstm.Ctx) {
		m := r.Map("sessions")
		m.PutTTL(c, "a", []byte("x"), future)
		m.PutTTL(c, "b", []byte("y"), future+1)
		m.Put(c, "c", []byte("z")) // no deadline, no index entry
	})
	if n := count(); n != 2 {
		t.Fatalf("index after 2 PutTTL = %d", n)
	}
	run(t, rt, func(c *pnstm.Ctx) {
		m := r.Map("sessions")
		m.Put(c, "a", []byte("x2"))              // plain overwrite clears the deadline
		m.PutTTL(c, "b", []byte("y2"), future+2) // re-TTL replaces the entry
	})
	if n := count(); n != 1 {
		t.Fatalf("index after overwrite = %d", n)
	}
	run(t, rt, func(c *pnstm.Ctx) {
		r.Map("sessions").Delete(c, "b")
	})
	if n := count(); n != 0 {
		t.Fatalf("index after delete = %d", n)
	}

	// Sorted-map deadlines and queue leases land in the same index,
	// tagged by kind, and vanish on expire/ack/reclaim.
	run(t, rt, func(c *pnstm.Ctx) {
		sm := r.SortedMap("board")
		sm.PutTTL(c, "p1", []byte("s"), now-1)
		q := r.Queue("jobs")
		q.PushAll(c, []byte("j1"), []byte("j2"))
		q.ConsumeLease(c, now-1)
		q.ConsumeLease(c, future)
	})
	if n := count(); n != 3 {
		t.Fatalf("index with sorted+leases = %d", n)
	}
	run(t, rt, func(c *pnstm.Ctx) {
		// A reaper's view: everything due through now, in deadline order.
		due := idx.RangeScan(c, "", stmlib.ExpiryCutoffKey(now), 0)
		if len(due) != 2 {
			t.Fatalf("due entries = %d want 2", len(due))
		}
		kinds := map[byte]bool{}
		for _, e := range due {
			_, kind, name, _, ok := stmlib.ParseExpiryKey(e.Key)
			if !ok {
				t.Fatalf("malformed index key %q", e.Key)
			}
			kinds[kind] = true
			if kind == stmlib.ExpiryKindSorted && name != "board" {
				t.Errorf("sorted entry names %q", name)
			}
		}
		if !kinds[stmlib.ExpiryKindSorted] || !kinds[stmlib.ExpiryKindLease] {
			t.Errorf("due kinds = %v", kinds)
		}
		// Act on the due work the way the reaper does.
		r.SortedMap("board").ExpireThrough(c, "p1", now)
		r.Queue("jobs").ReclaimExpired(c, now)
	})
	if n := count(); n != 1 { // only the future lease remains
		t.Fatalf("index after reap = %d", n)
	}
	run(t, rt, func(c *pnstm.Ctx) {
		recs, _ := r.Queue("jobs").LeaseSnapshot(c)
		if len(recs) != 1 || !r.Queue("jobs").Ack(c, recs[0].ID) {
			t.Fatalf("ack of surviving lease failed: %v", recs)
		}
	})
	if n := count(); n != 0 {
		t.Fatalf("index after ack = %d", n)
	}
}

// TestRegistryImageV2RoundTrip exports a registry holding every new
// structure kind, imports it into a fresh registry, and checks the state
// AND the rebuilt expiry index match.
func TestRegistryImageV2RoundTrip(t *testing.T) {
	rt := newRT(t, 2, false)
	r := stmlib.NewRegistry(stmlib.RegistryConfig{MapBuckets: 8})
	future := time.Now().Add(time.Hour).UnixNano()
	run(t, rt, func(c *pnstm.Ctx) {
		r.Map("m").Put(c, "k", []byte("v"))
		r.Map("m").PutTTL(c, "t", []byte("tv"), future)
		r.Counter("n").Add(c, 42)
		sm := r.SortedMap("s")
		sm.Put(c, "a", []byte("1"))
		sm.PutTTL(c, "b", []byte("2"), future+1)
		q := r.Queue("q")
		q.PushAll(c, []byte("e1"), []byte("e2"), []byte("e3"))
		q.ConsumeLease(c, future+2)
	})
	var img *stmlib.RegistryImage
	run(t, rt, func(c *pnstm.Ctx) { img = r.Export(c) })
	if len(img.Sorted["s"]) != 2 || img.MapTTLs["m"]["t"] != future ||
		len(img.Leases["q"]) != 1 || img.LeaseSeqs["q"] != 1 {
		t.Fatalf("image v2 fields: sorted=%v ttls=%v leases=%v seqs=%v",
			img.Sorted, img.MapTTLs, img.Leases, img.LeaseSeqs)
	}

	r2 := stmlib.NewRegistry(stmlib.RegistryConfig{MapBuckets: 8})
	run(t, rt, func(c *pnstm.Ctx) { r2.Import(c, img) })
	run(t, rt, func(c *pnstm.Ctx) {
		if v, ok := r2.Map("m").Get(c, "t"); !ok || string(v) != "tv" {
			t.Errorf("ttl'd map key = %q,%v", v, ok)
		}
		if v, ok := r2.SortedMap("s").Get(c, "b"); !ok || string(v) != "2" {
			t.Errorf("ttl'd sorted key = %q,%v", v, ok)
		}
		if n := r2.Queue("q").LeaseLen(c); n != 1 {
			t.Errorf("imported lease len = %d", n)
		}
		if n := r2.Counter("n").Sum(c); n != 42 {
			t.Errorf("counter = %d", n)
		}
		// The index is rebuilt by Import's hooks: one entry per live
		// deadline (map t, sorted b, lease 1).
		if n := r2.ExpiryIndex().RangeCountFrom(c, ""); n != 3 {
			t.Errorf("rebuilt index entries = %d want 3", n)
		}
		// A second ack path sanity: the imported lease acks and its
		// index entry goes away.
		if !r2.Queue("q").Ack(c, 1) {
			t.Error("imported lease not ackable")
		}
		if n := r2.ExpiryIndex().RangeCountFrom(c, ""); n != 2 {
			t.Errorf("index after ack = %d want 2", n)
		}
	})
}

func TestTMapTTL(t *testing.T) {
	rt := newRT(t, 2, false)
	m := stmlib.NewTMap[string, int](8)
	now := time.Now().UnixNano()
	past, future := now-int64(time.Hour), now+int64(time.Hour)
	run(t, rt, func(c *pnstm.Ctx) {
		m.PutTTL(c, "dead", 1, past)
		m.PutTTL(c, "live", 2, future)
		m.Put(c, "plain", 3)
		if _, ok := m.Get(c, "dead"); ok {
			t.Error("expired key visible")
		}
		if v, ok := m.Get(c, "live"); !ok || v != 2 {
			t.Errorf("live = %d,%v", v, ok)
		}
		if n := m.Len(c); n != 3 {
			t.Errorf("physical len = %d", n)
		}
		if m.ExpireThrough(c, "live", now) {
			t.Error("expired an undue key")
		}
		if !m.ExpireThrough(c, "dead", now) {
			t.Error("missed a due key")
		}
		if n := m.Len(c); n != 2 {
			t.Errorf("len after expire = %d", n)
		}
		// PutTTL with exp<=0 degrades to a plain Put.
		m.PutTTL(c, "live", 4, 0)
		snap := m.TTLSnapshot(c)
		if len(snap) != 0 {
			t.Errorf("ttl snapshot = %v want empty", snap)
		}
	})
}
