package stmlib_test

import (
	"fmt"
	"log"
	"time"

	"pnstm"
	"pnstm/stmlib"
)

// A leaderboard query: RangeScan splits the key space into subranges and
// forks one nested child per subrange, so a big scan parallelizes and a
// conflicting writer only restarts the one child whose subrange it
// touched — the paper's partial-abort benefit applied to range reads.
func ExampleTSortedMap_RangeScan() {
	rt, err := pnstm.New(pnstm.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	board := stmlib.NewTSortedMap[string, int]()
	err = rt.Run(func(c *pnstm.Ctx) {
		board.Put(c, "ada", 310)
		board.Put(c, "bob", 250)
		board.Put(c, "cyd", 480)
		board.Put(c, "dee", 120)

		for _, e := range board.RangeScan(c, "b", "d", 0) {
			fmt.Printf("%s: %d\n", e.Key, e.Value)
		}
		fmt.Println("players b..d:", board.RangeCount(c, "b", "d"))
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// bob: 250
	// cyd: 480
	// players b..d: 2
}

// A work queue with at-least-once delivery: ConsumeLease hands an
// element to a worker under a deadline; Ack retires it, Nack returns it,
// and ReclaimExpired requeues anything a crashed worker left leased past
// its deadline.
func ExampleTQueue_ConsumeLease() {
	rt, err := pnstm.New(pnstm.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	jobs := stmlib.NewTQueue[string]()
	deadline := time.Now().Add(time.Minute).UnixNano()
	err = rt.Run(func(c *pnstm.Ctx) {
		jobs.PushAll(c, "resize image", "send email")

		id, job, _ := jobs.ConsumeLease(c, deadline)
		fmt.Printf("working on %q (lease %d)\n", job, id)
		jobs.Ack(c, id) // done — retire the lease

		id2, job2, _ := jobs.ConsumeLease(c, deadline)
		jobs.Nack(c, id2) // can't do it — requeue immediately
		fmt.Printf("gave back %q, queue holds %d\n", job2, jobs.Len(c))
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// working on "resize image" (lease 1)
	// gave back "send email", queue holds 1
}
