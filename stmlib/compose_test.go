package stmlib_test

import (
	"fmt"
	"sync"
	"testing"

	"pnstm"
	"pnstm/stmlib"
)

// TestAtomicComposition: one Atomic body touches a TMap, a TQueue, a
// TCounter and a plain TVar. On success everything is visible together;
// on abort nothing is.
func TestAtomicComposition(t *testing.T) {
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			rt := newRT(t, 4, serial)
			stock := stmlib.NewTMap[string, int](16)
			orders := stmlib.NewTQueue[string]()
			revenue := stmlib.NewTCounter(4)
			version := pnstm.NewTVar(0)
			sentinel := fmt.Errorf("out of stock")

			run(t, rt, func(c *pnstm.Ctx) {
				stock.Put(c, "widget", 3)

				sell := func(item string, n int) error {
					return c.Atomic(func(c *pnstm.Ctx) error {
						have, _ := stock.Get(c, item)
						if have < n {
							return sentinel
						}
						stock.Put(c, item, have-n)
						orders.Push(c, item)
						revenue.Add(c, int64(n*10))
						pnstm.Update(c, version, func(v int) int { return v + 1 })
						return nil
					})
				}

				if err := sell("widget", 2); err != nil {
					t.Fatalf("sell 2: %v", err)
				}
				if err := sell("widget", 5); err != sentinel {
					t.Fatalf("oversell: err = %v", err)
				}

				// Exactly one sale's effects, across all four structures.
				if v, _ := stock.Get(c, "widget"); v != 1 {
					t.Errorf("stock = %d want 1", v)
				}
				if n := orders.Len(c); n != 1 {
					t.Errorf("orders = %d want 1", n)
				}
				if s := revenue.Sum(c); s != 20 {
					t.Errorf("revenue = %d want 20", s)
				}
				// Raw TVar access needs an explicit Atomic (unlike the
				// stmlib operations, which open their own).
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					if v := pnstm.Load(c, version); v != 1 {
						t.Errorf("version = %d want 1", v)
					}
					return nil
				})
			})
		})
	}
}

// TestConcurrentRootTransfers runs independent root transactions from
// many goroutines: transfer transactions move value between two map keys
// (keeping the total constant) while observer transactions snapshot the
// map and check the invariant. This is the cross-tree linearizability
// check — conflicts here are real, between unrelated transaction trees.
func TestConcurrentRootTransfers(t *testing.T) {
	rt := newRT(t, 4, false)
	m := stmlib.NewTMap[string, int](8)
	const total = 1000
	if err := rt.Run(func(c *pnstm.Ctx) {
		m.Put(c, "a", total)
		m.Put(c, "b", 0)
	}); err != nil {
		t.Fatal(err)
	}

	const movers, observers, iters = 3, 2, 40
	var wg sync.WaitGroup
	errs := make(chan error, movers+observers)
	for w := 0; w < movers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := rt.Run(func(c *pnstm.Ctx) {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						a, _ := m.Get(c, "a")
						b, _ := m.Get(c, "b")
						amt := (w*iters + i) % 7
						if a >= amt {
							m.Put(c, "a", a-amt)
							m.Put(c, "b", b+amt)
						} else {
							m.Put(c, "a", a+b)
							m.Put(c, "b", 0)
						}
						return nil
					})
				}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < observers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var a, b int
				if err := rt.Run(func(c *pnstm.Ctx) {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						a, _ = m.Get(c, "a")
						b, _ = m.Get(c, "b")
						return nil
					})
				}); err != nil {
					errs <- err
					return
				}
				if a+b != total {
					errs <- fmt.Errorf("invariant broken: a=%d b=%d", a, b)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSerialParallelDivergence runs one deterministic mixed-structure
// program under the serial baseline and the parallel runtime and requires
// identical observable state.
func TestSerialParallelDivergence(t *testing.T) {
	type state struct {
		mapSnap map[int]int
		queue   []int
		counter int64
	}
	exec := func(serial bool, workers int) state {
		rt := newRT(t, workers, serial)
		m := stmlib.NewTMap[int, int](16)
		q := stmlib.NewTQueue[int]()
		ctr := stmlib.NewTCounter(4)
		run(t, rt, func(c *pnstm.Ctx) {
			_ = c.Atomic(func(c *pnstm.Ctx) error {
				// Parallel children over disjoint keys; queue pushes ordered
				// by a sequential post-pass so the program is deterministic.
				fns := make([]func(*pnstm.Ctx), 4)
				for w := 0; w < 4; w++ {
					w := w
					fns[w] = func(c *pnstm.Ctx) {
						_ = c.Atomic(func(c *pnstm.Ctx) error {
							for i := 0; i < 10; i++ {
								m.Put(c, w*10+i, w)
								ctr.Add(c, int64(w))
							}
							return nil
						})
					}
				}
				c.Parallel(fns...)
				m.BulkUpdate(c, []int{0, 10, 20, 30}, func(k, v int, ok bool) (int, bool) {
					return v + 100, true
				})
				for i := 0; i < 5; i++ {
					q.Push(c, i)
				}
				q.Pop(c)
				return nil
			})
		})
		var st state
		run(t, rt, func(c *pnstm.Ctx) {
			st.mapSnap = m.Snapshot(c)
			st.counter = ctr.Sum(c)
			for {
				v, ok := q.Pop(c)
				if !ok {
					break
				}
				st.queue = append(st.queue, v)
			}
		})
		return st
	}

	want := exec(true, 1)
	got := exec(false, 4)
	diffMaps(t, "map", got.mapSnap, want.mapSnap)
	if got.counter != want.counter {
		t.Errorf("counter: %d vs %d", got.counter, want.counter)
	}
	if fmt.Sprint(got.queue) != fmt.Sprint(want.queue) {
		t.Errorf("queue: %v vs %v", got.queue, want.queue)
	}
}
