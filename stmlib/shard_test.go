package stmlib

import (
	"fmt"
	"testing"
)

// TestShardIndexStable pins the routing function to golden values: the
// assignment is persisted implicitly by every sharded data directory
// (shard i's WAL only holds structures that hash to i), so ANY change
// to these numbers is a breaking format change that must fail loudly
// here, not scatter structures at recovery time.
func TestShardIndexStable(t *testing.T) {
	golden := []struct {
		name        string
		n2, n4, n16 int
	}{
		{"bench:m", 1, 1, 9},
		{"bench:hits", 1, 1, 5},
		{"bench:stock", 0, 0, 0},
		{"bench:sold", 0, 2, 14},
		{"bench:revenue", 0, 2, 6},
		{"bench:q0", 1, 1, 5},
		{"users", 1, 1, 5},
		{"orders", 1, 1, 9},
		{"", 1, 3, 11},
	}
	for _, g := range golden {
		if got := ShardIndex(g.name, 2); got != g.n2 {
			t.Errorf("ShardIndex(%q, 2) = %d, want %d (routing changed: breaking on-disk format)", g.name, got, g.n2)
		}
		if got := ShardIndex(g.name, 4); got != g.n4 {
			t.Errorf("ShardIndex(%q, 4) = %d, want %d (routing changed: breaking on-disk format)", g.name, got, g.n4)
		}
		if got := ShardIndex(g.name, 16); got != g.n16 {
			t.Errorf("ShardIndex(%q, 16) = %d, want %d (routing changed: breaking on-disk format)", g.name, got, g.n16)
		}
	}
}

// TestShardIndexTotal: every name maps to exactly one in-range shard
// for any count (totality), repeated calls agree (determinism), and
// n <= 1 always routes to shard 0.
func TestShardIndexTotal(t *testing.T) {
	counts := []int{1, 2, 3, 4, 7, 16, 64}
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("structure-%d", i)
		for _, n := range counts {
			got := ShardIndex(name, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardIndex(%q, %d) = %d out of range", name, n, got)
			}
			if again := ShardIndex(name, n); again != got {
				t.Fatalf("ShardIndex(%q, %d) unstable: %d then %d", name, n, got, again)
			}
		}
		if got := ShardIndex(name, 0); got != 0 {
			t.Fatalf("ShardIndex(%q, 0) = %d, want 0", name, got)
		}
		if got := ShardIndex(name, -3); got != 0 {
			t.Fatalf("ShardIndex(%q, -3) = %d, want 0", name, got)
		}
	}
}

// TestShardIndexSpread: over many names every shard receives a
// reasonable share — the hash must actually partition, not clump. The
// bound is loose (half the fair share) because the quality bar is
// load spreading, not statistical perfection.
func TestShardIndexSpread(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		hist := make([]int, n)
		const names = 8192
		for i := 0; i < names; i++ {
			hist[ShardIndex(fmt.Sprintf("q-%d", i), n)]++
		}
		fair := names / n
		for s, got := range hist {
			if got < fair/2 {
				t.Errorf("n=%d: shard %d received %d of %d names (fair share %d): hash clumps", n, s, got, names, fair)
			}
		}
	}
}

// TestRegistryImageMerge: stitching per-shard exports — maps union by
// key, queues append, counters SUM (cross-structure transactions leave
// counter partials on several shards).
func TestRegistryImageMerge(t *testing.T) {
	a := &RegistryImage{
		Maps:     map[string]map[string][]byte{"m1": {"k1": []byte("v1")}},
		Queues:   map[string][][]byte{"q1": {[]byte("e1"), []byte("e2")}},
		Counters: map[string]int64{"sold": 10, "only-a": 3},
	}
	b := &RegistryImage{
		Maps:     map[string]map[string][]byte{"m1": {"k2": []byte("v2")}, "m2": {"x": []byte("y")}},
		Queues:   map[string][][]byte{"q1": {[]byte("e3")}, "q2": {[]byte("z")}},
		Counters: map[string]int64{"sold": 32, "only-b": 7},
	}
	a.Merge(b)
	a.Merge(nil) // nil other is a no-op

	if len(a.Maps) != 2 || string(a.Maps["m1"]["k1"]) != "v1" || string(a.Maps["m1"]["k2"]) != "v2" || string(a.Maps["m2"]["x"]) != "y" {
		t.Errorf("merged maps wrong: %v", a.Maps)
	}
	if len(a.Queues["q1"]) != 3 || string(a.Queues["q1"][2]) != "e3" || len(a.Queues["q2"]) != 1 {
		t.Errorf("merged queues wrong: %v", a.Queues)
	}
	if a.Counters["sold"] != 42 || a.Counters["only-a"] != 3 || a.Counters["only-b"] != 7 {
		t.Errorf("merged counters wrong (partials must sum): %v", a.Counters)
	}
}
