package stmlib

import (
	"pnstm"
)

// DefaultFanout is the default maximum number of parallel nested children
// a bulk operation forks. Bulk operations split the bucket array into at
// most this many contiguous groups and run one child transaction per
// group; the runtime serializes children beyond its own capacity anyway
// (parent-limiter degradation), so fanout only needs to be around the
// worker count to saturate the machine.
const DefaultFanout = 8

// TMap is a transactional hash map from K to V, implemented as a fixed
// array of buckets, each a transactional variable holding an immutable
// (copy-on-write) Go map.
//
// Point operations (Get, Put, Delete, Contains) run as one nested
// transaction touching a single bucket, so operations on different
// buckets by parallel sibling transactions do not conflict. Bulk
// operations (Len, Range, Snapshot, Clear, BulkUpdate) fork one nested
// child transaction per bucket group via Ctx.Parallel: inside an
// enclosing transaction the whole bulk step is atomic, yet its work runs
// on every available worker slot. Under pnstm.Config{Serial: true} the
// children run inline sequentially and the semantics are unchanged.
//
// A TMap must be created with NewTMap. It may be shared freely between
// transactions; the zero value is not usable.
type TMap[K comparable, V any] struct {
	buckets []*pnstm.TVar[map[K]V]
	// ttl mirrors buckets: ttl[i] holds the absolute expiry deadlines
	// (Unix nanos) of bucket i's TTL'd keys. Kept separate so maps that
	// never use TTL pay only one extra read per Get; the deadline maps
	// are immutable (copy-on-write) like the value buckets.
	ttl    []*pnstm.TVar[map[K]int64]
	mask   uint64
	fanout int

	// hook, when set, is invoked inside the mutating transaction
	// whenever a key's deadline changes (oldExp → newExp, either may be
	// 0) — the registry uses it to maintain its deadline index.
	hook func(c *pnstm.Ctx, oldExp, newExp int64, k K)
}

// NewTMap returns a TMap with the given number of buckets (rounded up to
// a power of two, minimum 1) and the default bulk fanout. More buckets
// mean fewer false conflicts between point operations on distinct keys;
// 2–4× the expected concurrency is a good start.
func NewTMap[K comparable, V any](buckets int) *TMap[K, V] {
	return NewTMapFanout[K, V](buckets, DefaultFanout)
}

// NewTMapFanout is NewTMap with an explicit bulk-operation fanout: the
// maximum number of parallel nested children a bulk operation forks.
// Fanout 1 makes every bulk operation a single sequential child, which is
// useful to isolate the cost of parallel nesting itself.
func NewTMapFanout[K comparable, V any](buckets, fanout int) *TMap[K, V] {
	n := ceilPow2(buckets)
	if fanout < 1 {
		fanout = 1
	}
	m := &TMap[K, V]{
		buckets: make([]*pnstm.TVar[map[K]V], n),
		ttl:     make([]*pnstm.TVar[map[K]int64], n),
		mask:    uint64(n - 1),
		fanout:  fanout,
	}
	for i := range m.buckets {
		m.buckets[i] = pnstm.NewTVar[map[K]V](nil)
		m.ttl[i] = pnstm.NewTVar[map[K]int64](nil)
	}
	return m
}

// Buckets returns the bucket count (diagnostics and benchmarks).
func (m *TMap[K, V]) Buckets() int { return len(m.buckets) }

// SetLabel names the map's buckets for conflict attribution (D35):
// bucket i becomes "m:<name>/<i>" in flight-recorder events. Call once
// at construction time, before transactions touch the map.
func (m *TMap[K, V]) SetLabel(name string) {
	for i, b := range m.buckets {
		b.Obj().SetLabel("m:" + name + "/" + itoa(i))
	}
	for i, b := range m.ttl {
		b.Obj().SetLabel("m:" + name + "/ttl" + itoa(i))
	}
}

// SetExpiryHook installs the deadline-change callback (registry index
// maintenance). Call once at construction time.
func (m *TMap[K, V]) SetExpiryHook(h func(c *pnstm.Ctx, oldExp, newExp int64, k K)) {
	m.hook = h
}

func (m *TMap[K, V]) bucket(k K) *pnstm.TVar[map[K]V] {
	return m.buckets[hashKey(k)&m.mask]
}

func (m *TMap[K, V]) ttlBucket(k K) *pnstm.TVar[map[K]int64] {
	return m.ttl[hashKey(k)&m.mask]
}

// clearDeadline drops k's deadline (if any) inside the caller's
// transaction and fires the hook. Caller must be inside an Atomic.
func (m *TMap[K, V]) clearDeadline(c *pnstm.Ctx, k K) {
	tv := m.ttlBucket(k)
	old := pnstm.Load(c, tv)
	exp, had := old[k]
	if !had {
		return
	}
	next := cloneBucket(old, 0)
	delete(next, k)
	pnstm.Store(c, tv, next)
	if m.hook != nil {
		m.hook(c, exp, 0, k)
	}
}

// Get returns the live value stored under k: an entry past its TTL
// deadline (PutTTL) is hidden — reported absent — even before the
// reaper sweeps it physically.
func (m *TMap[K, V]) Get(c *pnstm.Ctx, k K) (V, bool) {
	now := nowNanos()
	var v V
	var ok bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		v, ok = pnstm.Load(c, m.bucket(k))[k]
		if ok {
			if exp := pnstm.Load(c, m.ttlBucket(k))[k]; exp > 0 && exp <= now {
				v, ok = *new(V), false
			}
		}
		return nil
	})
	return v, ok
}

// Contains reports whether k is present.
func (m *TMap[K, V]) Contains(c *pnstm.Ctx, k K) bool {
	_, ok := m.Get(c, k)
	return ok
}

// Put stores v under k, replacing any previous value and clearing any
// previous TTL deadline.
func (m *TMap[K, V]) Put(c *pnstm.Ctx, k K, v V) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		tv := m.bucket(k)
		next := cloneBucket(pnstm.Load(c, tv), 1)
		next[k] = v
		pnstm.Store(c, tv, next)
		m.clearDeadline(c, k)
		return nil
	})
}

// PutTTL stores v under k with an absolute expiry deadline in Unix
// nanoseconds. Reads hide the entry once the deadline passes; the
// reaper removes it physically via ExpireThrough. exp <= 0 behaves
// like Put.
func (m *TMap[K, V]) PutTTL(c *pnstm.Ctx, k K, v V, exp int64) {
	if exp <= 0 {
		m.Put(c, k, v)
		return
	}
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		tv := m.bucket(k)
		next := cloneBucket(pnstm.Load(c, tv), 1)
		next[k] = v
		pnstm.Store(c, tv, next)
		ttv := m.ttlBucket(k)
		oldT := pnstm.Load(c, ttv)
		oldExp := oldT[k]
		nextT := cloneBucket(oldT, 1)
		nextT[k] = exp
		pnstm.Store(c, ttv, nextT)
		if m.hook != nil && oldExp != exp {
			m.hook(c, oldExp, exp, k)
		}
		return nil
	})
}

// ExpireThrough removes k iff it carries a deadline at or before
// cutoff, reporting whether it did. The reaper's primitive: explicit
// cutoff, no wall clock, so the operation is deterministic to log and
// replay.
func (m *TMap[K, V]) ExpireThrough(c *pnstm.Ctx, k K, cutoff int64) bool {
	var swept bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		swept = false
		ttv := m.ttlBucket(k)
		oldT := pnstm.Load(c, ttv)
		exp, had := oldT[k]
		if !had || exp > cutoff {
			return nil
		}
		swept = true
		nextT := cloneBucket(oldT, 0)
		delete(nextT, k)
		pnstm.Store(c, ttv, nextT)
		tv := m.bucket(k)
		old := pnstm.Load(c, tv)
		if _, ok := old[k]; ok {
			next := cloneBucket(old, 0)
			delete(next, k)
			pnstm.Store(c, tv, next)
		}
		if m.hook != nil {
			m.hook(c, exp, 0, k)
		}
		return nil
	})
	return swept
}

// Delete removes k physically — deadline or not — and reports whether
// an entry (live or expired-unswept) was present.
func (m *TMap[K, V]) Delete(c *pnstm.Ctx, k K) bool {
	var had bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		tv := m.bucket(k)
		old := pnstm.Load(c, tv)
		if _, had = old[k]; !had {
			return nil
		}
		next := cloneBucket(old, 0)
		delete(next, k)
		pnstm.Store(c, tv, next)
		m.clearDeadline(c, k)
		return nil
	})
	return had
}

// Update atomically transforms the value under k: f receives the current
// value (or the zero V) and whether k was present, and returns the value
// to store and whether to keep the key at all (false deletes it). Update
// returns the stored value and the keep decision. f may run several times
// (transaction retry) and must be side-effect free.
func (m *TMap[K, V]) Update(c *pnstm.Ctx, k K, f func(V, bool) (V, bool)) (V, bool) {
	var out V
	var kept bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		tv := m.bucket(k)
		old := pnstm.Load(c, tv)
		cur, ok := old[k]
		out, kept = f(cur, ok)
		if kept {
			next := cloneBucket(old, 1)
			next[k] = out
			pnstm.Store(c, tv, next)
		} else if ok {
			next := cloneBucket(old, 0)
			delete(next, k)
			pnstm.Store(c, tv, next)
		}
		return nil
	})
	return out, kept
}

// Len returns the number of entries. It is a bulk read: one nested child
// per bucket group counts its slice of the bucket array in parallel.
func (m *TMap[K, V]) Len(c *pnstm.Ctx) int {
	var total int
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		sums := make([]int, m.groupCount())
		m.forEachGroup(c, func(c *pnstm.Ctx, g, lo, hi int) {
			n := 0
			for i := lo; i < hi; i++ {
				n += len(pnstm.Load(c, m.buckets[i]))
			}
			sums[g] = n
		})
		total = 0
		for _, n := range sums {
			total += n
		}
		return nil
	})
	return total
}

// Range calls f for every entry. One nested child per bucket group walks
// its buckets, so f is called concurrently from parallel children (and
// possibly more than once per entry if a child retries): f must be safe
// for concurrent use and idempotent, or commutative like an atomic
// accumulation. For a plain consistent copy use Snapshot.
func (m *TMap[K, V]) Range(c *pnstm.Ctx, f func(K, V)) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		m.forEachGroup(c, func(c *pnstm.Ctx, g, lo, hi int) {
			for i := lo; i < hi; i++ {
				for k, v := range pnstm.Load(c, m.buckets[i]) {
					f(k, v)
				}
			}
		})
		return nil
	})
}

// Snapshot returns a consistent copy of the whole map, collected by one
// nested child per bucket group and merged after the join.
func (m *TMap[K, V]) Snapshot(c *pnstm.Ctx) map[K]V {
	var out map[K]V
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		parts := make([]map[K]V, m.groupCount())
		m.forEachGroup(c, func(c *pnstm.Ctx, g, lo, hi int) {
			part := make(map[K]V)
			for i := lo; i < hi; i++ {
				for k, v := range pnstm.Load(c, m.buckets[i]) {
					part[k] = v
				}
			}
			parts[g] = part
		})
		out = make(map[K]V)
		for _, part := range parts {
			for k, v := range part {
				out[k] = v
			}
		}
		return nil
	})
	return out
}

// Clear removes every entry (and every TTL deadline), one nested child
// per bucket group.
func (m *TMap[K, V]) Clear(c *pnstm.Ctx) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		m.forEachGroup(c, func(c *pnstm.Ctx, g, lo, hi int) {
			for i := lo; i < hi; i++ {
				if pnstm.Load(c, m.buckets[i]) != nil {
					pnstm.Store[map[K]V](c, m.buckets[i], nil)
				}
				if old := pnstm.Load(c, m.ttl[i]); old != nil {
					pnstm.Store[map[K]int64](c, m.ttl[i], nil)
					if m.hook != nil {
						for k, exp := range old {
							m.hook(c, exp, 0, k)
						}
					}
				}
			}
		})
		return nil
	})
}

// TTLSnapshot returns a consistent copy of every key's expiry deadline
// (keys without a TTL are absent), collected like Snapshot — the TTL
// side of the map's checkpoint payload.
func (m *TMap[K, V]) TTLSnapshot(c *pnstm.Ctx) map[K]int64 {
	var out map[K]int64
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		parts := make([]map[K]int64, m.groupCount())
		m.forEachGroup(c, func(c *pnstm.Ctx, g, lo, hi int) {
			part := make(map[K]int64)
			for i := lo; i < hi; i++ {
				for k, exp := range pnstm.Load(c, m.ttl[i]) {
					part[k] = exp
				}
			}
			parts[g] = part
		})
		out = make(map[K]int64)
		for _, part := range parts {
			for k, exp := range part {
				out[k] = exp
			}
		}
		return nil
	})
	return out
}

// ImportTTLs restores exported deadlines (keys must already hold their
// values), firing the expiry hook so the registry's deadline index —
// which snapshots deliberately do not serialize — is rebuilt.
func (m *TMap[K, V]) ImportTTLs(c *pnstm.Ctx, ttls map[K]int64) {
	if len(ttls) == 0 {
		return
	}
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		for k, exp := range ttls {
			if exp <= 0 {
				continue
			}
			ttv := m.ttlBucket(k)
			oldT := pnstm.Load(c, ttv)
			oldExp := oldT[k]
			nextT := cloneBucket(oldT, 1)
			nextT[k] = exp
			pnstm.Store(c, ttv, nextT)
			if m.hook != nil && oldExp != exp {
				m.hook(c, oldExp, exp, k)
			}
		}
		return nil
	})
}

// BulkUpdate applies f to every key in keys as one atomic step. Keys are
// grouped by bucket group and one nested child per non-empty group
// applies its share in parallel; keys hashing to different groups are
// updated by different child transactions. f has Update semantics:
// (current value, present) in, (new value, keep) out. Duplicate keys in
// keys are applied once per occurrence in an unspecified order; f must be
// side-effect free (children retry on conflict).
func (m *TMap[K, V]) BulkUpdate(c *pnstm.Ctx, keys []K, f func(K, V, bool) (V, bool)) {
	if len(keys) == 0 {
		return
	}
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		bounds := groupBounds(len(m.buckets), m.fanout)
		groups := make([][]K, len(bounds)-1)
		for _, k := range keys {
			b := int(hashKey(k) & m.mask)
			g := groupOf(bounds, b)
			groups[g] = append(groups[g], k)
		}
		var fns []func(*pnstm.Ctx)
		for g := range groups {
			g := g
			if len(groups[g]) == 0 {
				continue
			}
			fns = append(fns, func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					// Group this child's keys by bucket so each touched
					// bucket is cloned and stored once, however many keys
					// land in it.
					byBucket := make(map[int][]K)
					for _, k := range groups[g] {
						b := int(hashKey(k) & m.mask)
						byBucket[b] = append(byBucket[b], k)
					}
					for b, ks := range byBucket {
						tv := m.buckets[b]
						old := pnstm.Load(c, tv)
						next := cloneBucket(old, len(ks))
						dirty := false
						for _, k := range ks {
							cur, ok := next[k]
							v, keep := f(k, cur, ok)
							if keep {
								next[k] = v
								dirty = true
							} else if ok {
								delete(next, k)
								dirty = true
							}
						}
						if dirty {
							pnstm.Store(c, tv, next)
						}
					}
					return nil
				})
			})
		}
		c.Parallel(fns...)
		return nil
	})
}

// groupCount returns the number of bucket groups bulk operations use.
func (m *TMap[K, V]) groupCount() int {
	g := m.fanout
	if g > len(m.buckets) {
		g = len(m.buckets)
	}
	return g
}

// forEachGroup forks one nested child transaction per bucket group and
// invokes body(g, lo, hi) inside it. It must be called from inside an
// Atomic (the children become parallel children of that transaction).
func (m *TMap[K, V]) forEachGroup(c *pnstm.Ctx, body func(c *pnstm.Ctx, g, lo, hi int)) {
	bounds := groupBounds(len(m.buckets), m.fanout)
	fns := make([]func(*pnstm.Ctx), len(bounds)-1)
	for g := range fns {
		g := g
		fns[g] = func(c *pnstm.Ctx) {
			_ = c.Atomic(func(c *pnstm.Ctx) error {
				body(c, g, bounds[g], bounds[g+1])
				return nil
			})
		}
	}
	c.Parallel(fns...)
}

// groupOf returns the group whose [bounds[g], bounds[g+1]) range contains
// bucket b.
func groupOf(bounds []int, b int) int {
	lo, hi := 0, len(bounds)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if b >= bounds[mid] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// cloneBucket copies a bucket map with room for extra more entries. The
// stored maps are immutable: every mutation goes through a clone, so that
// the STM's by-reference undo records stay valid after rollback.
func cloneBucket[K comparable, V any](old map[K]V, extra int) map[K]V {
	next := make(map[K]V, len(old)+extra)
	for k, v := range old {
		next[k] = v
	}
	return next
}
