package stmlib

import (
	"pnstm"
)

// DefaultFanout is the default maximum number of parallel nested children
// a bulk operation forks. Bulk operations split the bucket array into at
// most this many contiguous groups and run one child transaction per
// group; the runtime serializes children beyond its own capacity anyway
// (parent-limiter degradation), so fanout only needs to be around the
// worker count to saturate the machine.
const DefaultFanout = 8

// TMap is a transactional hash map from K to V, implemented as a fixed
// array of buckets, each a transactional variable holding an immutable
// (copy-on-write) Go map.
//
// Point operations (Get, Put, Delete, Contains) run as one nested
// transaction touching a single bucket, so operations on different
// buckets by parallel sibling transactions do not conflict. Bulk
// operations (Len, Range, Snapshot, Clear, BulkUpdate) fork one nested
// child transaction per bucket group via Ctx.Parallel: inside an
// enclosing transaction the whole bulk step is atomic, yet its work runs
// on every available worker slot. Under pnstm.Config{Serial: true} the
// children run inline sequentially and the semantics are unchanged.
//
// A TMap must be created with NewTMap. It may be shared freely between
// transactions; the zero value is not usable.
type TMap[K comparable, V any] struct {
	buckets []*pnstm.TVar[map[K]V]
	mask    uint64
	fanout  int
}

// NewTMap returns a TMap with the given number of buckets (rounded up to
// a power of two, minimum 1) and the default bulk fanout. More buckets
// mean fewer false conflicts between point operations on distinct keys;
// 2–4× the expected concurrency is a good start.
func NewTMap[K comparable, V any](buckets int) *TMap[K, V] {
	return NewTMapFanout[K, V](buckets, DefaultFanout)
}

// NewTMapFanout is NewTMap with an explicit bulk-operation fanout: the
// maximum number of parallel nested children a bulk operation forks.
// Fanout 1 makes every bulk operation a single sequential child, which is
// useful to isolate the cost of parallel nesting itself.
func NewTMapFanout[K comparable, V any](buckets, fanout int) *TMap[K, V] {
	n := ceilPow2(buckets)
	if fanout < 1 {
		fanout = 1
	}
	m := &TMap[K, V]{
		buckets: make([]*pnstm.TVar[map[K]V], n),
		mask:    uint64(n - 1),
		fanout:  fanout,
	}
	for i := range m.buckets {
		m.buckets[i] = pnstm.NewTVar[map[K]V](nil)
	}
	return m
}

// Buckets returns the bucket count (diagnostics and benchmarks).
func (m *TMap[K, V]) Buckets() int { return len(m.buckets) }

// SetLabel names the map's buckets for conflict attribution (D35):
// bucket i becomes "m:<name>/<i>" in flight-recorder events. Call once
// at construction time, before transactions touch the map.
func (m *TMap[K, V]) SetLabel(name string) {
	for i, b := range m.buckets {
		b.Obj().SetLabel("m:" + name + "/" + itoa(i))
	}
}

func (m *TMap[K, V]) bucket(k K) *pnstm.TVar[map[K]V] {
	return m.buckets[hashKey(k)&m.mask]
}

// Get returns the value stored under k and whether it was present.
func (m *TMap[K, V]) Get(c *pnstm.Ctx, k K) (V, bool) {
	var v V
	var ok bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		v, ok = pnstm.Load(c, m.bucket(k))[k]
		return nil
	})
	return v, ok
}

// Contains reports whether k is present.
func (m *TMap[K, V]) Contains(c *pnstm.Ctx, k K) bool {
	_, ok := m.Get(c, k)
	return ok
}

// Put stores v under k, replacing any previous value.
func (m *TMap[K, V]) Put(c *pnstm.Ctx, k K, v V) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		tv := m.bucket(k)
		next := cloneBucket(pnstm.Load(c, tv), 1)
		next[k] = v
		pnstm.Store(c, tv, next)
		return nil
	})
}

// Delete removes k and reports whether it was present.
func (m *TMap[K, V]) Delete(c *pnstm.Ctx, k K) bool {
	var had bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		tv := m.bucket(k)
		old := pnstm.Load(c, tv)
		if _, had = old[k]; !had {
			return nil
		}
		next := cloneBucket(old, 0)
		delete(next, k)
		pnstm.Store(c, tv, next)
		return nil
	})
	return had
}

// Update atomically transforms the value under k: f receives the current
// value (or the zero V) and whether k was present, and returns the value
// to store and whether to keep the key at all (false deletes it). Update
// returns the stored value and the keep decision. f may run several times
// (transaction retry) and must be side-effect free.
func (m *TMap[K, V]) Update(c *pnstm.Ctx, k K, f func(V, bool) (V, bool)) (V, bool) {
	var out V
	var kept bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		tv := m.bucket(k)
		old := pnstm.Load(c, tv)
		cur, ok := old[k]
		out, kept = f(cur, ok)
		if kept {
			next := cloneBucket(old, 1)
			next[k] = out
			pnstm.Store(c, tv, next)
		} else if ok {
			next := cloneBucket(old, 0)
			delete(next, k)
			pnstm.Store(c, tv, next)
		}
		return nil
	})
	return out, kept
}

// Len returns the number of entries. It is a bulk read: one nested child
// per bucket group counts its slice of the bucket array in parallel.
func (m *TMap[K, V]) Len(c *pnstm.Ctx) int {
	var total int
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		sums := make([]int, m.groupCount())
		m.forEachGroup(c, func(c *pnstm.Ctx, g, lo, hi int) {
			n := 0
			for i := lo; i < hi; i++ {
				n += len(pnstm.Load(c, m.buckets[i]))
			}
			sums[g] = n
		})
		total = 0
		for _, n := range sums {
			total += n
		}
		return nil
	})
	return total
}

// Range calls f for every entry. One nested child per bucket group walks
// its buckets, so f is called concurrently from parallel children (and
// possibly more than once per entry if a child retries): f must be safe
// for concurrent use and idempotent, or commutative like an atomic
// accumulation. For a plain consistent copy use Snapshot.
func (m *TMap[K, V]) Range(c *pnstm.Ctx, f func(K, V)) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		m.forEachGroup(c, func(c *pnstm.Ctx, g, lo, hi int) {
			for i := lo; i < hi; i++ {
				for k, v := range pnstm.Load(c, m.buckets[i]) {
					f(k, v)
				}
			}
		})
		return nil
	})
}

// Snapshot returns a consistent copy of the whole map, collected by one
// nested child per bucket group and merged after the join.
func (m *TMap[K, V]) Snapshot(c *pnstm.Ctx) map[K]V {
	var out map[K]V
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		parts := make([]map[K]V, m.groupCount())
		m.forEachGroup(c, func(c *pnstm.Ctx, g, lo, hi int) {
			part := make(map[K]V)
			for i := lo; i < hi; i++ {
				for k, v := range pnstm.Load(c, m.buckets[i]) {
					part[k] = v
				}
			}
			parts[g] = part
		})
		out = make(map[K]V)
		for _, part := range parts {
			for k, v := range part {
				out[k] = v
			}
		}
		return nil
	})
	return out
}

// Clear removes every entry, one nested child per bucket group.
func (m *TMap[K, V]) Clear(c *pnstm.Ctx) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		m.forEachGroup(c, func(c *pnstm.Ctx, g, lo, hi int) {
			for i := lo; i < hi; i++ {
				if pnstm.Load(c, m.buckets[i]) != nil {
					pnstm.Store[map[K]V](c, m.buckets[i], nil)
				}
			}
		})
		return nil
	})
}

// BulkUpdate applies f to every key in keys as one atomic step. Keys are
// grouped by bucket group and one nested child per non-empty group
// applies its share in parallel; keys hashing to different groups are
// updated by different child transactions. f has Update semantics:
// (current value, present) in, (new value, keep) out. Duplicate keys in
// keys are applied once per occurrence in an unspecified order; f must be
// side-effect free (children retry on conflict).
func (m *TMap[K, V]) BulkUpdate(c *pnstm.Ctx, keys []K, f func(K, V, bool) (V, bool)) {
	if len(keys) == 0 {
		return
	}
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		bounds := groupBounds(len(m.buckets), m.fanout)
		groups := make([][]K, len(bounds)-1)
		for _, k := range keys {
			b := int(hashKey(k) & m.mask)
			g := groupOf(bounds, b)
			groups[g] = append(groups[g], k)
		}
		var fns []func(*pnstm.Ctx)
		for g := range groups {
			g := g
			if len(groups[g]) == 0 {
				continue
			}
			fns = append(fns, func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					// Group this child's keys by bucket so each touched
					// bucket is cloned and stored once, however many keys
					// land in it.
					byBucket := make(map[int][]K)
					for _, k := range groups[g] {
						b := int(hashKey(k) & m.mask)
						byBucket[b] = append(byBucket[b], k)
					}
					for b, ks := range byBucket {
						tv := m.buckets[b]
						old := pnstm.Load(c, tv)
						next := cloneBucket(old, len(ks))
						dirty := false
						for _, k := range ks {
							cur, ok := next[k]
							v, keep := f(k, cur, ok)
							if keep {
								next[k] = v
								dirty = true
							} else if ok {
								delete(next, k)
								dirty = true
							}
						}
						if dirty {
							pnstm.Store(c, tv, next)
						}
					}
					return nil
				})
			})
		}
		c.Parallel(fns...)
		return nil
	})
}

// groupCount returns the number of bucket groups bulk operations use.
func (m *TMap[K, V]) groupCount() int {
	g := m.fanout
	if g > len(m.buckets) {
		g = len(m.buckets)
	}
	return g
}

// forEachGroup forks one nested child transaction per bucket group and
// invokes body(g, lo, hi) inside it. It must be called from inside an
// Atomic (the children become parallel children of that transaction).
func (m *TMap[K, V]) forEachGroup(c *pnstm.Ctx, body func(c *pnstm.Ctx, g, lo, hi int)) {
	bounds := groupBounds(len(m.buckets), m.fanout)
	fns := make([]func(*pnstm.Ctx), len(bounds)-1)
	for g := range fns {
		g := g
		fns[g] = func(c *pnstm.Ctx) {
			_ = c.Atomic(func(c *pnstm.Ctx) error {
				body(c, g, bounds[g], bounds[g+1])
				return nil
			})
		}
	}
	c.Parallel(fns...)
}

// groupOf returns the group whose [bounds[g], bounds[g+1]) range contains
// bucket b.
func groupOf(bounds []int, b int) int {
	lo, hi := 0, len(bounds)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if b >= bounds[mid] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// cloneBucket copies a bucket map with room for extra more entries. The
// stored maps are immutable: every mutation goes through a clone, so that
// the STM's by-reference undo records stay valid after rollback.
func cloneBucket[K comparable, V any](old map[K]V, extra int) map[K]V {
	next := make(map[K]V, len(old)+extra)
	for k, v := range old {
		next[k] = v
	}
	return next
}
