package stmlib_test

import (
	"testing"
	"time"

	"pnstm"
	"pnstm/stmlib"
)

func TestTQueueLeaseLifecycle(t *testing.T) {
	rt := newRT(t, 2, false)
	q := stmlib.NewTQueue[int]()
	deadline := time.Now().Add(time.Minute).UnixNano()
	run(t, rt, func(c *pnstm.Ctx) {
		if _, _, ok := q.ConsumeLease(c, deadline); ok {
			t.Error("lease from empty queue")
		}
		q.PushAll(c, 10, 11, 12)
		id1, v1, ok := q.ConsumeLease(c, deadline)
		if !ok || v1 != 10 || id1 != 1 {
			t.Fatalf("lease 1 = %d,%d,%v", id1, v1, ok)
		}
		id2, v2, _ := q.ConsumeLease(c, deadline)
		if v2 != 11 || id2 != 2 {
			t.Fatalf("lease 2 = %d,%d", id2, v2)
		}
		if n := q.Len(c); n != 1 {
			t.Errorf("queue len with 2 leased = %d", n)
		}
		if n := q.LeaseLen(c); n != 2 {
			t.Errorf("lease len = %d", n)
		}
		// Ack removes; double-ack reports the lease gone.
		if !q.Ack(c, id1) {
			t.Error("ack = false")
		}
		if q.Ack(c, id1) {
			t.Error("double ack = true")
		}
		// Nack requeues at the tail: remaining order is 12 then 11.
		if !q.Nack(c, id2) {
			t.Error("nack = false")
		}
		if q.Nack(c, id2) {
			t.Error("double nack = true")
		}
		if v, _ := q.Pop(c); v != 12 {
			t.Errorf("pop = %d want 12", v)
		}
		if v, _ := q.Pop(c); v != 11 {
			t.Errorf("pop = %d want 11 (nacked)", v)
		}
		if n := q.LeaseLen(c); n != 0 {
			t.Errorf("lease len after drain = %d", n)
		}
	})
}

func TestTQueueReclaimExpired(t *testing.T) {
	rt := newRT(t, 2, false)
	q := stmlib.NewTQueue[int]()
	now := time.Now().UnixNano()
	run(t, rt, func(c *pnstm.Ctx) {
		q.PushAll(c, 1, 2, 3)
		idA, _, _ := q.ConsumeLease(c, now-2) // overdue
		idB, _, _ := q.ConsumeLease(c, now-1) // overdue
		q.ConsumeLease(c, now+int64(time.Hour))
		if n := q.ReclaimExpired(c, now); n != 2 {
			t.Fatalf("reclaimed %d want 2", n)
		}
		// Reclaim requeues in lease-id order, so the queue holds the
		// values of idA then idB; the future lease stays out.
		if q.Ack(c, idA) || q.Ack(c, idB) {
			t.Error("reclaimed lease still ackable")
		}
		if n := q.LeaseLen(c); n != 1 {
			t.Errorf("lease len = %d want 1", n)
		}
		if v, _ := q.Pop(c); v != 1 {
			t.Errorf("pop = %d want 1", v)
		}
		if v, _ := q.Pop(c); v != 2 {
			t.Errorf("pop = %d want 2", v)
		}
		if n := q.ReclaimExpired(c, now); n != 0 {
			t.Errorf("second reclaim = %d want 0", n)
		}
	})
}

// TestTQueueLeaseConservation checks the at-least-once bookkeeping law:
// queued + leased + acked == produced after any interleaving of consume,
// ack, nack and reclaim.
func TestTQueueLeaseConservation(t *testing.T) {
	rt := newRT(t, 4, false)
	q := stmlib.NewTQueue[int]()
	const produced = 120
	deadline := time.Now().Add(time.Minute).UnixNano()
	acked := 0
	run(t, rt, func(c *pnstm.Ctx) {
		for i := 0; i < produced; i++ {
			q.Push(c, i)
		}
	})
	for round := 0; round < 10; round++ {
		run(t, rt, func(c *pnstm.Ctx) {
			var ids []uint64
			for i := 0; i < 7; i++ {
				if id, _, ok := q.ConsumeLease(c, deadline); ok {
					ids = append(ids, id)
				}
			}
			for i, id := range ids {
				switch i % 3 {
				case 0:
					if q.Ack(c, id) {
						acked++
					}
				case 1:
					q.Nack(c, id)
					// case 2: leave leased
				}
			}
			if got := q.Len(c) + q.LeaseLen(c) + acked; got != produced {
				t.Fatalf("round %d: queued+leased+acked = %d want %d", round, got, produced)
			}
		})
	}
}

func TestTQueueLeaseSnapshotImport(t *testing.T) {
	rt := newRT(t, 2, false)
	q := stmlib.NewTQueue[int]()
	deadline := time.Now().Add(time.Minute).UnixNano()
	run(t, rt, func(c *pnstm.Ctx) {
		q.PushAll(c, 1, 2, 3)
		q.ConsumeLease(c, deadline)
		q.ConsumeLease(c, deadline+1)
	})
	var recs []stmlib.LeaseRecord[int]
	var seq uint64
	run(t, rt, func(c *pnstm.Ctx) { recs, seq = q.LeaseSnapshot(c) })
	if len(recs) != 2 || seq != 2 {
		t.Fatalf("snapshot = %v seq %d", recs, seq)
	}
	if recs[0].ID != 1 || recs[0].Value != 1 || recs[1].Deadline != deadline+1 {
		t.Fatalf("records = %+v", recs)
	}
	q2 := stmlib.NewTQueue[int]()
	run(t, rt, func(c *pnstm.Ctx) { q2.ImportLeases(c, recs, seq) })
	run(t, rt, func(c *pnstm.Ctx) {
		if n := q2.LeaseLen(c); n != 2 {
			t.Fatalf("imported lease len = %d", n)
		}
		if !q2.Ack(c, 1) {
			t.Error("imported lease not ackable")
		}
		// New leases continue past the imported watermark: the next id
		// must be 3, not a reuse of 1 or 2.
		q2.Push(c, 9)
		if id, _, _ := q2.ConsumeLease(c, deadline); id != 3 {
			t.Errorf("next lease id = %d want 3", id)
		}
	})
}

// TestTQueueLeaseAbortRestores checks a lease taken inside an aborted
// transaction leaves no trace: the element returns to the queue and the
// id watermark rolls back (ids are transactional state, so replaying the
// same committed history always mints the same ids).
func TestTQueueLeaseAbortRestores(t *testing.T) {
	rt := newRT(t, 2, false)
	q := stmlib.NewTQueue[int]()
	deadline := time.Now().Add(time.Minute).UnixNano()
	sentinel := errSentinel{}
	run(t, rt, func(c *pnstm.Ctx) {
		q.PushAll(c, 7)
		err := c.Atomic(func(c *pnstm.Ctx) error {
			if id, v, ok := q.ConsumeLease(c, deadline); !ok || v != 7 || id != 1 {
				t.Errorf("lease inside tx = %d,%d,%v", id, v, ok)
			}
			return sentinel
		})
		if err != sentinel {
			t.Fatalf("err = %v", err)
		}
		if n := q.LeaseLen(c); n != 0 {
			t.Errorf("lease survived abort: len = %d", n)
		}
		if id, v, ok := q.ConsumeLease(c, deadline); !ok || v != 7 || id != 1 {
			t.Errorf("re-lease = %d,%d,%v want 1,7,true", id, v, ok)
		}
	})
}

type errSentinel struct{}

func (errSentinel) Error() string { return "deliberate abort" }
