package stmlib

import (
	"sort"

	"pnstm"
)

// qnode is one cell of a persistent cons list. Nodes are immutable after
// construction, which is what makes the queue safe under the STM's
// by-reference rollback: an abort restores an old list head, and the old
// list is still intact because no push or pop ever mutates a node.
type qnode[T any] struct {
	v    T
	next *qnode[T]
}

// TQueue is a transactional FIFO queue, implemented as the classic
// two-stack (Okasaki banker's) queue over persistent cons lists: pushes
// cons onto the in-stack in O(1); pops take from the out-stack, reversing
// the in-stack into it when it runs dry — O(1) amortized per element.
//
// Every operation is one nested transaction, so queue operations compose
// with any other transactional state: a body that pops an order, updates
// a TMap and bumps a TCounter commits or aborts as one unit. Because a
// pop touches the same two variables as every other pop, concurrent
// non-ancestor poppers conflict and serialize — a queue is a point of
// ordering by design. Parallel siblings that each push commute on the
// size variable only after serializing on the in-stack head; use one
// queue per producer (fan-in on pop) if push throughput dominates.
//
// Create with NewTQueue; the zero value is not usable.
//
// Beyond plain Push/Pop, the queue supports at-least-once consumption:
// ConsumeLease pops an element under a lease with a deadline, Ack
// settles it, Nack returns it to the queue, and ReclaimExpired — run by
// a reaper with an explicit cutoff — requeues every lease whose
// deadline passed, so an element handed to a worker that died comes
// back for redelivery instead of being lost.
type TQueue[T any] struct {
	in   *pnstm.TVar[*qnode[T]] // newest push first
	out  *pnstm.TVar[*qnode[T]] // oldest element first, ready to pop
	size *pnstm.TVar[int]

	// leases maps lease id → in-flight element; leaseSeq issues ids.
	// Both are transactional, so consume/ack/reclaim replay
	// deterministically (per-queue WAL replay preserves op order, and
	// ids depend only on that order).
	leases   *pnstm.TVar[map[uint64]lease[T]]
	leaseSeq *pnstm.TVar[uint64]

	// leaseHook, when set, is invoked inside the mutating transaction
	// whenever a lease's deadline appears or goes away — the registry
	// uses it to maintain its deadline index.
	leaseHook func(c *pnstm.Ctx, oldDl, newDl int64, id uint64)
}

// lease is one in-flight (consumed, unacked) element.
type lease[T any] struct {
	v        T
	deadline int64 // absolute Unix nanos; reclaim eligibility
}

// LeaseRecord is one lease's exportable form (snapshots, diagnostics).
type LeaseRecord[T any] struct {
	ID       uint64
	Value    T
	Deadline int64
}

// NewTQueue returns an empty queue.
func NewTQueue[T any]() *TQueue[T] {
	return &TQueue[T]{
		in:       pnstm.NewTVar[*qnode[T]](nil),
		out:      pnstm.NewTVar[*qnode[T]](nil),
		size:     pnstm.NewTVar(0),
		leases:   pnstm.NewTVar[map[uint64]lease[T]](nil),
		leaseSeq: pnstm.NewTVar[uint64](0),
	}
}

// SetLabel names the queue's variables for conflict attribution (D35):
// "q:<name>/in", "q:<name>/out", "q:<name>/size" and
// "q:<name>/leases". Call once at construction time, before
// transactions touch the queue.
func (q *TQueue[T]) SetLabel(name string) {
	q.in.Obj().SetLabel("q:" + name + "/in")
	q.out.Obj().SetLabel("q:" + name + "/out")
	q.size.Obj().SetLabel("q:" + name + "/size")
	q.leases.Obj().SetLabel("q:" + name + "/leases")
	q.leaseSeq.Obj().SetLabel("q:" + name + "/leaseseq")
}

// SetLeaseHook installs the lease deadline-change callback (registry
// index maintenance). Call once at construction time.
func (q *TQueue[T]) SetLeaseHook(h func(c *pnstm.Ctx, oldDl, newDl int64, id uint64)) {
	q.leaseHook = h
}

// Push appends v to the back of the queue.
func (q *TQueue[T]) Push(c *pnstm.Ctx, v T) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		pnstm.Store(c, q.in, &qnode[T]{v: v, next: pnstm.Load(c, q.in)})
		pnstm.Update(c, q.size, func(n int) int { return n + 1 })
		return nil
	})
}

// PushAll appends vs in order as one atomic step.
func (q *TQueue[T]) PushAll(c *pnstm.Ctx, vs ...T) {
	if len(vs) == 0 {
		return
	}
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		head := pnstm.Load(c, q.in)
		for _, v := range vs {
			head = &qnode[T]{v: v, next: head}
		}
		pnstm.Store(c, q.in, head)
		pnstm.Update(c, q.size, func(n int) int { return n + len(vs) })
		return nil
	})
}

// Pop removes and returns the front element; ok is false when the queue
// is empty.
func (q *TQueue[T]) Pop(c *pnstm.Ctx) (v T, ok bool) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		head := q.flip(c)
		if head == nil {
			return nil
		}
		pnstm.Store(c, q.out, head.next)
		pnstm.Update(c, q.size, func(n int) int { return n - 1 })
		v, ok = head.v, true
		return nil
	})
	return v, ok
}

// Peek returns the front element without removing it; ok is false when
// the queue is empty. (Peeking still counts as an access for conflict
// detection — in this STM every access does, paper §4.2 — but it runs the
// in-stack reversal at most once, like Pop.)
func (q *TQueue[T]) Peek(c *pnstm.Ctx) (v T, ok bool) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		if head := q.flip(c); head != nil {
			v, ok = head.v, true
		}
		return nil
	})
	return v, ok
}

// Len returns the number of queued elements.
func (q *TQueue[T]) Len(c *pnstm.Ctx) int {
	var n int
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		n = pnstm.Load(c, q.size)
		return nil
	})
	return n
}

// Elements returns every queued element in FIFO order without removing
// anything — the queue's drain-view, the bulk read a whole-store
// checkpoint serializes. One nested transaction reads both stacks, so
// the view is a consistent atomic snapshot like TMap.Snapshot.
func (q *TQueue[T]) Elements(c *pnstm.Ctx) []T {
	var out []T
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		out = out[:0]
		// The out-stack already holds the oldest elements front-first.
		for n := pnstm.Load(c, q.out); n != nil; n = n.next {
			out = append(out, n.v)
		}
		// The in-stack holds the newest pushes newest-first: reverse.
		var newest []T
		for n := pnstm.Load(c, q.in); n != nil; n = n.next {
			newest = append(newest, n.v)
		}
		for i := len(newest) - 1; i >= 0; i-- {
			out = append(out, newest[i])
		}
		return nil
	})
	return out
}

// ConsumeLease removes the front element under a lease: the element
// leaves the queue but is remembered (with the absolute deadline in
// Unix nanos) until the consumer Acks the returned id. A consumer that
// never acks loses nothing — once the deadline passes, ReclaimExpired
// returns the element to the queue for redelivery. ok is false when
// the queue is empty.
func (q *TQueue[T]) ConsumeLease(c *pnstm.Ctx, deadline int64) (id uint64, v T, ok bool) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		id, ok = 0, false
		head := q.flip(c)
		if head == nil {
			return nil
		}
		pnstm.Store(c, q.out, head.next)
		pnstm.Update(c, q.size, func(n int) int { return n - 1 })
		id = pnstm.Load(c, q.leaseSeq) + 1
		pnstm.Store(c, q.leaseSeq, id)
		next := cloneLeases(pnstm.Load(c, q.leases), 1)
		next[id] = lease[T]{v: head.v, deadline: deadline}
		pnstm.Store(c, q.leases, next)
		if q.leaseHook != nil {
			q.leaseHook(c, 0, deadline, id)
		}
		v, ok = head.v, true
		return nil
	})
	return id, v, ok
}

// Ack settles lease id: the element is done and forgotten. It reports
// whether the lease was still held — false means the lease was already
// acked, nacked or reclaimed (the element may be redelivered to
// someone else), so an at-least-once consumer must treat its work as
// possibly duplicated.
func (q *TQueue[T]) Ack(c *pnstm.Ctx, id uint64) bool {
	var had bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		had = false
		old := pnstm.Load(c, q.leases)
		l, ok := old[id]
		if !ok {
			return nil
		}
		had = true
		next := cloneLeases(old, 0)
		delete(next, id)
		pnstm.Store(c, q.leases, next)
		if q.leaseHook != nil {
			q.leaseHook(c, l.deadline, 0, id)
		}
		return nil
	})
	return had
}

// Nack gives lease id's element back to the queue immediately (at the
// back), reporting whether the lease was still held.
func (q *TQueue[T]) Nack(c *pnstm.Ctx, id uint64) bool {
	var had bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		had = false
		old := pnstm.Load(c, q.leases)
		l, ok := old[id]
		if !ok {
			return nil
		}
		had = true
		next := cloneLeases(old, 0)
		delete(next, id)
		pnstm.Store(c, q.leases, next)
		q.Push(c, l.v)
		if q.leaseHook != nil {
			q.leaseHook(c, l.deadline, 0, id)
		}
		return nil
	})
	return had
}

// ReclaimExpired requeues (at the back, ascending lease-id order —
// deterministic for replay) every lease whose deadline is at or before
// cutoff, returning how many. The reaper's primitive: an explicit
// cutoff, no wall clock. A cutoff far in the future drains every
// outstanding lease (shutdown, tests).
func (q *TQueue[T]) ReclaimExpired(c *pnstm.Ctx, cutoff int64) int {
	var n int
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		n = 0
		old := pnstm.Load(c, q.leases)
		var ids []uint64
		for id, l := range old {
			if l.deadline <= cutoff {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return nil
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		next := cloneLeases(old, 0)
		for _, id := range ids {
			l := next[id]
			delete(next, id)
			q.Push(c, l.v)
			if q.leaseHook != nil {
				q.leaseHook(c, l.deadline, 0, id)
			}
		}
		pnstm.Store(c, q.leases, next)
		n = len(ids)
		return nil
	})
	return n
}

// LeaseLen returns the number of outstanding (consumed, unacked)
// leases.
func (q *TQueue[T]) LeaseLen(c *pnstm.Ctx) int {
	var n int
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		n = len(pnstm.Load(c, q.leases))
		return nil
	})
	return n
}

// LeaseSnapshot returns every outstanding lease in ascending id order
// plus the id sequence watermark — the lease side of the queue's
// checkpoint payload.
func (q *TQueue[T]) LeaseSnapshot(c *pnstm.Ctx) ([]LeaseRecord[T], uint64) {
	var out []LeaseRecord[T]
	var seq uint64
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		out = out[:0]
		for id, l := range pnstm.Load(c, q.leases) {
			out = append(out, LeaseRecord[T]{ID: id, Value: l.v, Deadline: l.deadline})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		seq = pnstm.Load(c, q.leaseSeq)
		return nil
	})
	return out, seq
}

// ImportLeases restores exported leases and advances the id sequence
// to at least seq, firing the lease hook so the registry's deadline
// index — which snapshots deliberately do not serialize — is rebuilt.
func (q *TQueue[T]) ImportLeases(c *pnstm.Ctx, recs []LeaseRecord[T], seq uint64) {
	if len(recs) == 0 && seq == 0 {
		return
	}
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		old := pnstm.Load(c, q.leases)
		next := cloneLeases(old, len(recs))
		for _, rec := range recs {
			if _, dup := next[rec.ID]; dup {
				continue
			}
			next[rec.ID] = lease[T]{v: rec.Value, deadline: rec.Deadline}
			if q.leaseHook != nil {
				q.leaseHook(c, 0, rec.Deadline, rec.ID)
			}
		}
		pnstm.Store(c, q.leases, next)
		if cur := pnstm.Load(c, q.leaseSeq); seq > cur {
			pnstm.Store(c, q.leaseSeq, seq)
		}
		return nil
	})
}

// cloneLeases copies a lease table with room for extra more entries
// (immutable like the map buckets, for by-reference rollback).
func cloneLeases[T any](old map[uint64]lease[T], extra int) map[uint64]lease[T] {
	next := make(map[uint64]lease[T], len(old)+extra)
	for id, l := range old {
		next[id] = l
	}
	return next
}

// flip returns the current out-stack head, reversing the in-stack into
// the out-stack first if the out-stack is empty. Caller must be inside an
// Atomic.
func (q *TQueue[T]) flip(c *pnstm.Ctx) *qnode[T] {
	head := pnstm.Load(c, q.out)
	if head != nil {
		return head
	}
	in := pnstm.Load(c, q.in)
	if in == nil {
		return nil
	}
	var rev *qnode[T]
	for n := in; n != nil; n = n.next {
		rev = &qnode[T]{v: n.v, next: rev}
	}
	pnstm.Store[*qnode[T]](c, q.in, nil)
	pnstm.Store(c, q.out, rev)
	return rev
}
