package stmlib

import (
	"pnstm"
)

// qnode is one cell of a persistent cons list. Nodes are immutable after
// construction, which is what makes the queue safe under the STM's
// by-reference rollback: an abort restores an old list head, and the old
// list is still intact because no push or pop ever mutates a node.
type qnode[T any] struct {
	v    T
	next *qnode[T]
}

// TQueue is a transactional FIFO queue, implemented as the classic
// two-stack (Okasaki banker's) queue over persistent cons lists: pushes
// cons onto the in-stack in O(1); pops take from the out-stack, reversing
// the in-stack into it when it runs dry — O(1) amortized per element.
//
// Every operation is one nested transaction, so queue operations compose
// with any other transactional state: a body that pops an order, updates
// a TMap and bumps a TCounter commits or aborts as one unit. Because a
// pop touches the same two variables as every other pop, concurrent
// non-ancestor poppers conflict and serialize — a queue is a point of
// ordering by design. Parallel siblings that each push commute on the
// size variable only after serializing on the in-stack head; use one
// queue per producer (fan-in on pop) if push throughput dominates.
//
// Create with NewTQueue; the zero value is not usable.
type TQueue[T any] struct {
	in   *pnstm.TVar[*qnode[T]] // newest push first
	out  *pnstm.TVar[*qnode[T]] // oldest element first, ready to pop
	size *pnstm.TVar[int]
}

// NewTQueue returns an empty queue.
func NewTQueue[T any]() *TQueue[T] {
	return &TQueue[T]{
		in:   pnstm.NewTVar[*qnode[T]](nil),
		out:  pnstm.NewTVar[*qnode[T]](nil),
		size: pnstm.NewTVar(0),
	}
}

// SetLabel names the queue's variables for conflict attribution (D35):
// "q:<name>/in", "q:<name>/out" and "q:<name>/size". Call once at
// construction time, before transactions touch the queue.
func (q *TQueue[T]) SetLabel(name string) {
	q.in.Obj().SetLabel("q:" + name + "/in")
	q.out.Obj().SetLabel("q:" + name + "/out")
	q.size.Obj().SetLabel("q:" + name + "/size")
}

// Push appends v to the back of the queue.
func (q *TQueue[T]) Push(c *pnstm.Ctx, v T) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		pnstm.Store(c, q.in, &qnode[T]{v: v, next: pnstm.Load(c, q.in)})
		pnstm.Update(c, q.size, func(n int) int { return n + 1 })
		return nil
	})
}

// PushAll appends vs in order as one atomic step.
func (q *TQueue[T]) PushAll(c *pnstm.Ctx, vs ...T) {
	if len(vs) == 0 {
		return
	}
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		head := pnstm.Load(c, q.in)
		for _, v := range vs {
			head = &qnode[T]{v: v, next: head}
		}
		pnstm.Store(c, q.in, head)
		pnstm.Update(c, q.size, func(n int) int { return n + len(vs) })
		return nil
	})
}

// Pop removes and returns the front element; ok is false when the queue
// is empty.
func (q *TQueue[T]) Pop(c *pnstm.Ctx) (v T, ok bool) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		head := q.flip(c)
		if head == nil {
			return nil
		}
		pnstm.Store(c, q.out, head.next)
		pnstm.Update(c, q.size, func(n int) int { return n - 1 })
		v, ok = head.v, true
		return nil
	})
	return v, ok
}

// Peek returns the front element without removing it; ok is false when
// the queue is empty. (Peeking still counts as an access for conflict
// detection — in this STM every access does, paper §4.2 — but it runs the
// in-stack reversal at most once, like Pop.)
func (q *TQueue[T]) Peek(c *pnstm.Ctx) (v T, ok bool) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		if head := q.flip(c); head != nil {
			v, ok = head.v, true
		}
		return nil
	})
	return v, ok
}

// Len returns the number of queued elements.
func (q *TQueue[T]) Len(c *pnstm.Ctx) int {
	var n int
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		n = pnstm.Load(c, q.size)
		return nil
	})
	return n
}

// Elements returns every queued element in FIFO order without removing
// anything — the queue's drain-view, the bulk read a whole-store
// checkpoint serializes. One nested transaction reads both stacks, so
// the view is a consistent atomic snapshot like TMap.Snapshot.
func (q *TQueue[T]) Elements(c *pnstm.Ctx) []T {
	var out []T
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		out = out[:0]
		// The out-stack already holds the oldest elements front-first.
		for n := pnstm.Load(c, q.out); n != nil; n = n.next {
			out = append(out, n.v)
		}
		// The in-stack holds the newest pushes newest-first: reverse.
		var newest []T
		for n := pnstm.Load(c, q.in); n != nil; n = n.next {
			newest = append(newest, n.v)
		}
		for i := len(newest) - 1; i >= 0; i-- {
			out = append(out, newest[i])
		}
		return nil
	})
	return out
}

// flip returns the current out-stack head, reversing the in-stack into
// the out-stack first if the out-stack is empty. Caller must be inside an
// Atomic.
func (q *TQueue[T]) flip(c *pnstm.Ctx) *qnode[T] {
	head := pnstm.Load(c, q.out)
	if head != nil {
		return head
	}
	in := pnstm.Load(c, q.in)
	if in == nil {
		return nil
	}
	var rev *qnode[T]
	for n := in; n != nil; n = n.next {
		rev = &qnode[T]{v: n.v, next: rev}
	}
	pnstm.Store[*qnode[T]](c, q.in, nil)
	pnstm.Store(c, q.out, rev)
	return rev
}
