package stmlib

import (
	"pnstm"
)

// RegistryImage is a consistent point-in-time copy of every named
// structure in a Registry — the logical payload of a whole-store
// checkpoint. Map values and queue elements alias the store's immutable
// byte slices; treat the image as read-only.
type RegistryImage struct {
	Maps     map[string]map[string][]byte
	Queues   map[string][][]byte
	Counters map[string]int64

	// Second-generation structure state (image format v2). MapTTLs
	// holds per-map key deadlines (only TTL'd keys appear); Sorted
	// holds each sorted map's entries in key order, deadlines included;
	// Leases/LeaseSeqs hold each queue's outstanding leases and its
	// lease-id watermark. The registry's deadline index is deliberately
	// absent: Import rebuilds it from these via the structure hooks.
	MapTTLs   map[string]map[string]int64
	Sorted    map[string][]SortedEntry[string, []byte]
	Leases    map[string][]LeaseRecord[[]byte]
	LeaseSeqs map[string]uint64
}

// Export captures the whole catalog as one atomic bulk read. It is the
// paper's nested-parallel shape applied to checkpointing: the export is
// a single (sub)transaction, whose children — one per structure group,
// forked via Ctx.Parallel — each run the structure's own parallel bulk
// read (TMap.Snapshot over bucket groups, TQueue.Elements, TCounter.Sum
// over stripe groups). The store pauses for one big atomic read whose
// latency shrinks with the worker count, instead of a long serial scan.
//
// Concurrent non-ancestor transactions serialize against the export
// like against any bulk read, so the image is a consistent cut.
func (r *Registry) Export(c *pnstm.Ctx) *RegistryImage {
	mapNames, queueNames, counterNames := r.Names()
	sortedNames := r.SortedNames()
	img := &RegistryImage{
		Maps:      make(map[string]map[string][]byte, len(mapNames)),
		Queues:    make(map[string][][]byte, len(queueNames)),
		Counters:  make(map[string]int64, len(counterNames)),
		MapTTLs:   make(map[string]map[string]int64),
		Sorted:    make(map[string][]SortedEntry[string, []byte], len(sortedNames)),
		Leases:    make(map[string][]LeaseRecord[[]byte]),
		LeaseSeqs: make(map[string]uint64),
	}
	// Parallel children each own a disjoint slice of these result
	// arrays; the shared img maps are assembled only after the join.
	mapOut := make([]map[string][]byte, len(mapNames))
	mapTTLOut := make([]map[string]int64, len(mapNames))
	queueOut := make([][][]byte, len(queueNames))
	leaseOut := make([][]LeaseRecord[[]byte], len(queueNames))
	leaseSeqOut := make([]uint64, len(queueNames))
	counterOut := make([]int64, len(counterNames))
	sortedOut := make([][]SortedEntry[string, []byte], len(sortedNames))
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		// One task per structure; tasks are spread over ≤ fanout parallel
		// children, mirroring the bucket-group idiom. Each task's bulk
		// read forks further nested children of its group's transaction.
		var tasks []func(*pnstm.Ctx)
		for i, name := range mapNames {
			i, name := i, name
			tasks = append(tasks, func(c *pnstm.Ctx) {
				m := r.Map(name)
				mapOut[i] = m.Snapshot(c)
				mapTTLOut[i] = m.TTLSnapshot(c)
			})
		}
		for i, name := range queueNames {
			i, name := i, name
			tasks = append(tasks, func(c *pnstm.Ctx) {
				q := r.Queue(name)
				queueOut[i] = q.Elements(c)
				leaseOut[i], leaseSeqOut[i] = q.LeaseSnapshot(c)
			})
		}
		for i, name := range counterNames {
			i, name := i, name
			tasks = append(tasks, func(c *pnstm.Ctx) { counterOut[i] = r.Counter(name).Sum(c) })
		}
		for i, name := range sortedNames {
			i, name := i, name
			tasks = append(tasks, func(c *pnstm.Ctx) { sortedOut[i] = r.SortedMap(name).ExportEntries(c) })
		}
		parallelTasks(c, r.fanout, tasks)
		return nil
	})
	for i, name := range mapNames {
		img.Maps[name] = mapOut[i]
		if len(mapTTLOut[i]) > 0 {
			img.MapTTLs[name] = mapTTLOut[i]
		}
	}
	for i, name := range queueNames {
		img.Queues[name] = queueOut[i]
		if len(leaseOut[i]) > 0 {
			img.Leases[name] = leaseOut[i]
		}
		if leaseSeqOut[i] > 0 {
			img.LeaseSeqs[name] = leaseSeqOut[i]
		}
	}
	for i, name := range counterNames {
		img.Counters[name] = counterOut[i]
	}
	for i, name := range sortedNames {
		img.Sorted[name] = sortedOut[i]
	}
	return img
}

// Import loads an exported image into the registry as one atomic step,
// fanned out over parallel children like Export. It is meant for boot:
// recovery materializes the snapshot into a fresh catalog before WAL
// replay. Importing into a non-empty registry merges: map entries
// overwrite by key, queue elements append in image order, counter
// totals add.
func (r *Registry) Import(c *pnstm.Ctx, img *RegistryImage) {
	if img == nil {
		return
	}
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		var tasks []func(*pnstm.Ctx)
		for name, entries := range img.Maps {
			m, entries := r.Map(name), entries
			tasks = append(tasks, func(c *pnstm.Ctx) {
				keys := make([]string, 0, len(entries))
				for k := range entries {
					keys = append(keys, k)
				}
				// BulkUpdate re-groups the keys by bucket group and forks
				// the map's own nested children.
				m.BulkUpdate(c, keys, func(k string, _ []byte, _ bool) ([]byte, bool) {
					return entries[k], true
				})
			})
		}
		for name, elems := range img.Queues {
			q, elems := r.Queue(name), elems
			tasks = append(tasks, func(c *pnstm.Ctx) { q.PushAll(c, elems...) })
		}
		for name, total := range img.Counters {
			cnt, total := r.Counter(name), total
			tasks = append(tasks, func(c *pnstm.Ctx) {
				if total != 0 {
					cnt.Add(c, total)
				}
			})
		}
		for name, ttls := range img.MapTTLs {
			m, ttls := r.Map(name), ttls
			tasks = append(tasks, func(c *pnstm.Ctx) { m.ImportTTLs(c, ttls) })
		}
		for name, entries := range img.Sorted {
			sm, entries := r.SortedMap(name), entries
			tasks = append(tasks, func(c *pnstm.Ctx) { sm.ImportEntries(c, entries) })
		}
		for name, recs := range img.Leases {
			q, recs, seq := r.Queue(name), recs, img.LeaseSeqs[name]
			tasks = append(tasks, func(c *pnstm.Ctx) { q.ImportLeases(c, recs, seq) })
		}
		for name, seq := range img.LeaseSeqs {
			if _, leased := img.Leases[name]; leased {
				continue // ImportLeases above already advances the seq
			}
			q, seq := r.Queue(name), seq
			tasks = append(tasks, func(c *pnstm.Ctx) { q.ImportLeases(c, nil, seq) })
		}
		parallelTasks(c, r.fanout, tasks)
		return nil
	})
}

// parallelTasks spreads tasks over at most fanout parallel nested
// children (the bucket-group idiom): each child runs its contiguous
// slice of tasks sequentially inside its own transaction. Must be
// called from inside an Atomic.
func parallelTasks(c *pnstm.Ctx, fanout int, tasks []func(*pnstm.Ctx)) {
	if len(tasks) == 0 {
		return
	}
	bounds := groupBounds(len(tasks), fanout)
	fns := make([]func(*pnstm.Ctx), len(bounds)-1)
	for g := range fns {
		g := g
		fns[g] = func(c *pnstm.Ctx) {
			_ = c.Atomic(func(c *pnstm.Ctx) error {
				for i := bounds[g]; i < bounds[g+1]; i++ {
					tasks[i](c)
				}
				return nil
			})
		}
	}
	c.Parallel(fns...)
}
