package stmlib_test

import (
	"fmt"
	"reflect"
	"testing"

	"pnstm"
	"pnstm/stmlib"
)

// populate fills a registry with a known mixed catalog and returns the
// expected image.
func populate(t *testing.T, rt *pnstm.Runtime, reg *stmlib.Registry) *stmlib.RegistryImage {
	t.Helper()
	want := &stmlib.RegistryImage{
		Maps:     map[string]map[string][]byte{},
		Queues:   map[string][][]byte{},
		Counters: map[string]int64{},
	}
	err := rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			for m := 0; m < 3; m++ {
				name := fmt.Sprintf("m%d", m)
				entries := map[string][]byte{}
				for k := 0; k < 40; k++ {
					key := fmt.Sprintf("k%02d", k)
					val := []byte(fmt.Sprintf("v%d-%d", m, k))
					reg.Map(name).Put(c, key, val)
					entries[key] = val
				}
				want.Maps[name] = entries
			}
			for q := 0; q < 2; q++ {
				name := fmt.Sprintf("q%d", q)
				var elems [][]byte
				for i := 0; i < 10; i++ {
					v := []byte(fmt.Sprintf("e%d-%d", q, i))
					reg.Queue(name).Push(c, v)
					elems = append(elems, v)
				}
				want.Queues[name] = elems
			}
			reg.Counter("hits").Add(c, 41)
			reg.Counter("hits").Add(c, 1)
			want.Counters["hits"] = 42
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func imagesEqual(a, b *stmlib.RegistryImage) bool {
	toStr := func(img *stmlib.RegistryImage) any {
		maps := map[string]map[string]string{}
		for n, m := range img.Maps {
			mm := map[string]string{}
			for k, v := range m {
				mm[k] = string(v)
			}
			maps[n] = mm
		}
		queues := map[string][]string{}
		for n, q := range img.Queues {
			var qq []string
			for _, v := range q {
				qq = append(qq, string(v))
			}
			queues[n] = qq
		}
		return []any{maps, queues, img.Counters}
	}
	return reflect.DeepEqual(toStr(a), toStr(b))
}

func TestRegistryExportImportRoundTrip(t *testing.T) {
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			rt := newRT(t, 4, serial)
			reg := stmlib.NewRegistry(stmlib.RegistryConfig{MapBuckets: 16, CounterStripes: 4, Fanout: 4})
			want := populate(t, rt, reg)

			var img *stmlib.RegistryImage
			if err := rt.Run(func(c *pnstm.Ctx) { img = reg.Export(c) }); err != nil {
				t.Fatal(err)
			}
			if !imagesEqual(img, want) {
				t.Fatalf("export mismatch:\n got %+v\nwant %+v", img, want)
			}

			// Import into a fresh registry and re-export: must round-trip.
			rt2 := newRT(t, 4, serial)
			reg2 := stmlib.NewRegistry(stmlib.RegistryConfig{MapBuckets: 8, CounterStripes: 2, Fanout: 2})
			if err := rt2.Run(func(c *pnstm.Ctx) { reg2.Import(c, img) }); err != nil {
				t.Fatal(err)
			}
			var img2 *stmlib.RegistryImage
			if err := rt2.Run(func(c *pnstm.Ctx) { img2 = reg2.Export(c) }); err != nil {
				t.Fatal(err)
			}
			if !imagesEqual(img2, want) {
				t.Fatalf("import round-trip mismatch:\n got %+v\nwant %+v", img2, want)
			}

			// Queue FIFO must survive the round trip: popping reg2's queues
			// yields the original push order.
			if err := rt2.Run(func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					for q := 0; q < 2; q++ {
						name := fmt.Sprintf("q%d", q)
						for i := 0; ; i++ {
							v, ok := reg2.Queue(name).Pop(c)
							if !ok {
								if i != 10 {
									t.Errorf("queue %s drained after %d pops, want 10", name, i)
								}
								break
							}
							if want := fmt.Sprintf("e%d-%d", q, i); string(v) != want {
								t.Errorf("queue %s pop %d = %q, want %q (FIFO broken)", name, i, v, want)
							}
						}
					}
					return nil
				})
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestQueueElementsIsNonDestructiveView(t *testing.T) {
	rt := newRT(t, 2, false)
	q := stmlib.NewTQueue[[]byte]()
	err := rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			for i := 0; i < 6; i++ {
				q.Push(c, []byte(fmt.Sprintf("x%d", i)))
			}
			// Pop two so both stacks are populated (out-stack holds the
			// flipped prefix, in-stack any newer pushes).
			q.Pop(c)
			q.Pop(c)
			q.Push(c, []byte("x6"))
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	var view []string
	var lenBefore, lenAfter int
	err = rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			lenBefore = q.Len(c)
			for _, v := range q.Elements(c) {
				view = append(view, string(v))
			}
			lenAfter = q.Len(c)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"x2", "x3", "x4", "x5", "x6"}
	if !reflect.DeepEqual(view, want) {
		t.Fatalf("Elements = %v, want %v", view, want)
	}
	if lenBefore != 5 || lenAfter != 5 {
		t.Fatalf("Elements mutated the queue: len %d -> %d", lenBefore, lenAfter)
	}
}

func TestExportEmptyRegistry(t *testing.T) {
	rt := newRT(t, 2, false)
	reg := stmlib.NewRegistry(stmlib.RegistryConfig{})
	var img *stmlib.RegistryImage
	if err := rt.Run(func(c *pnstm.Ctx) { img = reg.Export(c) }); err != nil {
		t.Fatal(err)
	}
	if len(img.Maps) != 0 || len(img.Queues) != 0 || len(img.Counters) != 0 {
		t.Fatalf("empty registry exported non-empty image: %+v", img)
	}
	// Import of an empty (or nil) image is a no-op.
	if err := rt.Run(func(c *pnstm.Ctx) { reg.Import(c, img); reg.Import(c, nil) }); err != nil {
		t.Fatal(err)
	}
}
