package stmlib

import (
	"cmp"
	"sort"
	"sync/atomic"
	"time"

	"pnstm"
)

// SortedEntry is one key's record in a TSortedMap: the value plus the
// absolute expiry deadline in Unix nanoseconds (0 = no TTL). Scans and
// exports return entries in ascending key order.
type SortedEntry[K cmp.Ordered, V any] struct {
	Key   K
	Value V
	Exp   int64
}

// smTree is the sorted map's immutable shape descriptor: leaf i holds
// keys in [lows[i], lows[i+1]) with lows[0] standing for -inf and the
// last leaf unbounded above. A mutation that splits a leaf writes a NEW
// descriptor (the B-link analogue of a height-0 root split); point ops
// and scans that only touch leaf contents never write the root, so the
// descriptor is a read-mostly variable that shared-read conflict
// detection keeps cheap.
type smTree[K cmp.Ordered, V any] struct {
	lows   []K
	leaves []*pnstm.TVar[[]SortedEntry[K, V]]
}

// leafFor returns the index of the leaf whose key range contains k.
func (t *smTree[K, V]) leafFor(k K) int {
	return sort.Search(len(t.leaves)-1, func(i int) bool { return cmp.Less(k, t.lows[i+1]) })
}

// findEntry locates k in a sorted leaf slice: the insertion index and
// whether the key is present there.
func findEntry[K cmp.Ordered, V any](es []SortedEntry[K, V], k K) (int, bool) {
	i := sort.Search(len(es), func(j int) bool { return !cmp.Less(es[j].Key, k) })
	return i, i < len(es) && es[i].Key == k
}

// smMaxLeaf is the split threshold: a put that grows a leaf past this
// many entries splits it in two and publishes a new tree descriptor.
const smMaxLeaf = 64

// TSortedMap is a transactional ordered map from K to V with per-key
// TTL, implemented as a single-level B-link-style tree: an immutable
// descriptor (key separators + leaf array) behind one root variable,
// each leaf a transactional variable holding an immutable sorted slice.
//
// Point operations (Get, Put, PutTTL, Delete) run as one nested
// transaction touching the root (read) and a single leaf, so operations
// on different leaves by parallel siblings do not conflict. Range
// operations (RangeScan, RangeFrom, RangeCount, Len, ExportEntries)
// split the touched leaf span into at most fanout contiguous subranges
// and fork one nested child per subrange via Ctx.Parallel — the paper's
// parallel-nesting shape applied to an ordered structure. A concurrent
// writer that invalidates one subrange aborts and retries only that
// child, not the whole scan; with fanout 1 the scan is a single
// sequential child and any conflict restarts it entirely (the serial
// baseline the rangescan A/B measures against).
//
// TTL semantics: PutTTL attaches an absolute deadline; reads (Get,
// RangeScan, RangeCount) hide entries past their deadline, while
// mutations (Put, Delete) act on the physical entry regardless —
// physical removal is the reaper's job via ExpireThrough, which is
// deterministic given an explicit cutoff and therefore safe to log and
// replay. Len counts physical entries, swept or not.
//
// Create with NewTSortedMap; the zero value is not usable.
type TSortedMap[K cmp.Ordered, V any] struct {
	root    *pnstm.TVar[*smTree[K, V]]
	fanout  int
	maxLeaf int

	label   string
	leafSeq atomic.Uint64

	// hook, when set, is invoked inside the mutating transaction
	// whenever a key's deadline changes (oldExp → newExp, either may be
	// 0) — the registry uses it to maintain its deadline index.
	hook func(c *pnstm.Ctx, oldExp, newExp int64, k K)
}

// NewTSortedMap returns an empty sorted map with the default fanout.
func NewTSortedMap[K cmp.Ordered, V any]() *TSortedMap[K, V] {
	return NewTSortedMapFanout[K, V](DefaultFanout)
}

// NewTSortedMapFanout is NewTSortedMap with an explicit range-operation
// fanout: the maximum number of parallel nested children a range
// operation forks. Fanout 1 makes every range operation one sequential
// child.
func NewTSortedMapFanout[K cmp.Ordered, V any](fanout int) *TSortedMap[K, V] {
	if fanout < 1 {
		fanout = 1
	}
	var zero K
	m := &TSortedMap[K, V]{fanout: fanout, maxLeaf: smMaxLeaf}
	m.root = pnstm.NewTVar(&smTree[K, V]{
		lows:   []K{zero},
		leaves: []*pnstm.TVar[[]SortedEntry[K, V]]{pnstm.NewTVar[[]SortedEntry[K, V]](nil)},
	})
	return m
}

// SetLabel names the map's variables for conflict attribution (D35):
// the descriptor becomes "s:<name>/root" and leaf j "s:<name>/leaf<j>"
// in flight-recorder events. Call once at construction time, before
// transactions touch the map; leaves created by later splits label
// themselves.
func (m *TSortedMap[K, V]) SetLabel(name string) {
	m.label = name
	m.root.Obj().SetLabel("s:" + name + "/root")
	for _, leaf := range m.root.Peek().leaves {
		leaf.Obj().SetLabel("s:" + name + "/leaf" + itoa(int(m.leafSeq.Add(1))))
	}
}

// SetExpiryHook installs the deadline-change callback (registry index
// maintenance). Call once at construction time.
func (m *TSortedMap[K, V]) SetExpiryHook(h func(c *pnstm.Ctx, oldExp, newExp int64, k K)) {
	m.hook = h
}

// Leaves returns the current leaf count (diagnostics and tests).
func (m *TSortedMap[K, V]) Leaves() int { return len(m.root.Peek().leaves) }

// newLeaf allocates a leaf variable holding es, labeled if the map is.
func (m *TSortedMap[K, V]) newLeaf(es []SortedEntry[K, V]) *pnstm.TVar[[]SortedEntry[K, V]] {
	tv := pnstm.NewTVar(es)
	if m.label != "" {
		tv.Obj().SetLabel("s:" + m.label + "/leaf" + itoa(int(m.leafSeq.Add(1))))
	}
	return tv
}

// Get returns the live value stored under k: an entry past its TTL
// deadline is hidden (reported absent) even before the reaper sweeps
// it.
func (m *TSortedMap[K, V]) Get(c *pnstm.Ctx, k K) (V, bool) {
	return m.getAt(c, k, nowNanos())
}

func (m *TSortedMap[K, V]) getAt(c *pnstm.Ctx, k K, now int64) (V, bool) {
	var v V
	var ok bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		v, ok = *new(V), false
		t := pnstm.Load(c, m.root)
		es := pnstm.Load(c, t.leaves[t.leafFor(k)])
		if i, found := findEntry(es, k); found {
			e := es[i]
			if e.Exp == 0 || e.Exp > now {
				v, ok = e.Value, true
			}
		}
		return nil
	})
	return v, ok
}

// Contains reports whether k holds a live entry.
func (m *TSortedMap[K, V]) Contains(c *pnstm.Ctx, k K) bool {
	_, ok := m.Get(c, k)
	return ok
}

// Put stores v under k with no TTL, replacing any previous value (and
// clearing any previous deadline).
func (m *TSortedMap[K, V]) Put(c *pnstm.Ctx, k K, v V) {
	m.put(c, k, v, 0)
}

// PutTTL stores v under k with an absolute expiry deadline in Unix
// nanoseconds. Reads hide the entry once the deadline passes; the
// reaper removes it physically via ExpireThrough. exp <= 0 behaves like
// Put.
func (m *TSortedMap[K, V]) PutTTL(c *pnstm.Ctx, k K, v V, exp int64) {
	if exp < 0 {
		exp = 0
	}
	m.put(c, k, v, exp)
}

func (m *TSortedMap[K, V]) put(c *pnstm.Ctx, k K, v V, exp int64) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		t := pnstm.Load(c, m.root)
		li := t.leafFor(k)
		tv := t.leaves[li]
		es := pnstm.Load(c, tv)
		i, found := findEntry(es, k)
		var oldExp int64
		next := make([]SortedEntry[K, V], 0, len(es)+1)
		next = append(next, es[:i]...)
		next = append(next, SortedEntry[K, V]{Key: k, Value: v, Exp: exp})
		if found {
			oldExp = es[i].Exp
			next = append(next, es[i+1:]...)
		} else {
			next = append(next, es[i:]...)
		}
		if len(next) <= m.maxLeaf {
			pnstm.Store(c, tv, next)
		} else {
			m.splitLeaf(c, t, li, next)
		}
		if m.hook != nil && oldExp != exp {
			m.hook(c, oldExp, exp, k)
		}
		return nil
	})
}

// splitLeaf replaces leaf li with two halves of full and publishes the
// new descriptor. Leaves are never merged back; an empty leaf is
// harmless and its key range stays valid.
func (m *TSortedMap[K, V]) splitLeaf(c *pnstm.Ctx, t *smTree[K, V], li int, full []SortedEntry[K, V]) {
	mid := len(full) / 2
	left := m.newLeaf(full[:mid:mid])
	right := m.newLeaf(full[mid:])
	lows := make([]K, 0, len(t.lows)+1)
	lows = append(lows, t.lows[:li+1]...)
	lows = append(lows, full[mid].Key)
	lows = append(lows, t.lows[li+1:]...)
	leaves := make([]*pnstm.TVar[[]SortedEntry[K, V]], 0, len(t.leaves)+1)
	leaves = append(leaves, t.leaves[:li]...)
	leaves = append(leaves, left, right)
	leaves = append(leaves, t.leaves[li+1:]...)
	pnstm.Store(c, m.root, &smTree[K, V]{lows: lows, leaves: leaves})
}

// Delete removes k physically — deadline or not — and reports whether
// an entry (live or expired-unswept) was present.
func (m *TSortedMap[K, V]) Delete(c *pnstm.Ctx, k K) bool {
	var had bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		had = false
		t := pnstm.Load(c, m.root)
		tv := t.leaves[t.leafFor(k)]
		es := pnstm.Load(c, tv)
		i, found := findEntry(es, k)
		if !found {
			return nil
		}
		had = true
		oldExp := es[i].Exp
		next := make([]SortedEntry[K, V], 0, len(es)-1)
		next = append(next, es[:i]...)
		next = append(next, es[i+1:]...)
		pnstm.Store(c, tv, next)
		if m.hook != nil && oldExp != 0 {
			m.hook(c, oldExp, 0, k)
		}
		return nil
	})
	return had
}

// ExpireThrough removes k iff it carries a deadline at or before
// cutoff, reporting whether it did. This is the reaper's primitive:
// given an explicit cutoff it is deterministic — no wall clock — so the
// operation can be logged and replayed byte-for-byte.
func (m *TSortedMap[K, V]) ExpireThrough(c *pnstm.Ctx, k K, cutoff int64) bool {
	var swept bool
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		swept = false
		t := pnstm.Load(c, m.root)
		tv := t.leaves[t.leafFor(k)]
		es := pnstm.Load(c, tv)
		i, found := findEntry(es, k)
		if !found || es[i].Exp == 0 || es[i].Exp > cutoff {
			return nil
		}
		swept = true
		oldExp := es[i].Exp
		next := make([]SortedEntry[K, V], 0, len(es)-1)
		next = append(next, es[:i]...)
		next = append(next, es[i+1:]...)
		pnstm.Store(c, tv, next)
		if m.hook != nil {
			m.hook(c, oldExp, 0, k)
		}
		return nil
	})
	return swept
}

// RangeScan returns the live entries with lo <= key < hi in ascending
// key order, at most limit of them (limit <= 0: unlimited). The leaf
// span is split into at most fanout subranges scanned by parallel
// nested children.
func (m *TSortedMap[K, V]) RangeScan(c *pnstm.Ctx, lo, hi K, limit int) []SortedEntry[K, V] {
	if !cmp.Less(lo, hi) {
		return nil
	}
	return m.scan(c, lo, true, true, hi, limit, nowNanos(), true)
}

// RangeFrom is RangeScan with no upper bound: live entries with
// key >= lo.
func (m *TSortedMap[K, V]) RangeFrom(c *pnstm.Ctx, lo K, limit int) []SortedEntry[K, V] {
	return m.scan(c, lo, true, false, lo, limit, nowNanos(), true)
}

// RangeCount returns the number of live entries with lo <= key < hi,
// counted by parallel nested subrange children.
func (m *TSortedMap[K, V]) RangeCount(c *pnstm.Ctx, lo, hi K) int {
	if !cmp.Less(lo, hi) {
		return 0
	}
	return len(m.scan(c, lo, true, true, hi, 0, nowNanos(), false))
}

// RangeCountFrom is RangeCount with no upper bound.
func (m *TSortedMap[K, V]) RangeCountFrom(c *pnstm.Ctx, lo K) int {
	return len(m.scan(c, lo, true, false, lo, 0, nowNanos(), false))
}

// scan is the shared subrange-fanning walk. With withValues false the
// returned entries carry only keys (counting mode). now filters
// lazily-expired entries; a cutoff of 0 disables filtering (export).
// With hasLo false the walk starts at the first leaf (full-range
// export).
func (m *TSortedMap[K, V]) scan(c *pnstm.Ctx, lo K, hasLo, bounded bool, hi K, limit int, now int64, withValues bool) []SortedEntry[K, V] {
	var out []SortedEntry[K, V]
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		t := pnstm.Load(c, m.root)
		i0 := 0
		if hasLo {
			i0 = t.leafFor(lo)
		}
		i1 := len(t.leaves) - 1
		if bounded {
			i1 = t.leafFor(hi)
		}
		span := i1 - i0 + 1
		bounds := groupBounds(span, m.fanout)
		parts := make([][]SortedEntry[K, V], len(bounds)-1)
		fns := make([]func(*pnstm.Ctx), len(bounds)-1)
		for g := range fns {
			g := g
			fns[g] = func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					var part []SortedEntry[K, V]
				leafLoop:
					for li := i0 + bounds[g]; li < i0+bounds[g+1]; li++ {
						for _, e := range pnstm.Load(c, t.leaves[li]) {
							if hasLo && cmp.Less(e.Key, lo) {
								continue
							}
							if bounded && !cmp.Less(e.Key, hi) {
								break leafLoop
							}
							if now > 0 && e.Exp > 0 && e.Exp <= now {
								continue
							}
							if !withValues {
								e.Value = *new(V)
							}
							part = append(part, e)
							if limit > 0 && len(part) >= limit {
								break leafLoop
							}
						}
					}
					parts[g] = part
					return nil
				})
			}
		}
		c.Parallel(fns...)
		merged := parts[0]
		for _, p := range parts[1:] {
			merged = append(merged, p...)
		}
		if limit > 0 && len(merged) > limit {
			merged = merged[:limit]
		}
		out = merged
		return nil
	})
	return out
}

// Len returns the PHYSICAL entry count — expired-but-unswept entries
// included — counted by one nested child per leaf subrange. (Reads hide
// expired entries; Len deliberately does not, so sweeps are observable:
// after the reaper runs, Len drops.)
func (m *TSortedMap[K, V]) Len(c *pnstm.Ctx) int {
	var total int
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		t := pnstm.Load(c, m.root)
		bounds := groupBounds(len(t.leaves), m.fanout)
		sums := make([]int, len(bounds)-1)
		fns := make([]func(*pnstm.Ctx), len(bounds)-1)
		for g := range fns {
			g := g
			fns[g] = func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					n := 0
					for li := bounds[g]; li < bounds[g+1]; li++ {
						n += len(pnstm.Load(c, t.leaves[li]))
					}
					sums[g] = n
					return nil
				})
			}
		}
		c.Parallel(fns...)
		total = 0
		for _, n := range sums {
			total += n
		}
		return nil
	})
	return total
}

// ExportEntries captures every physical entry — deadlines included,
// expired-unswept included — in ascending key order: the sorted map's
// snapshot payload, collected by parallel subrange children.
func (m *TSortedMap[K, V]) ExportEntries(c *pnstm.Ctx) []SortedEntry[K, V] {
	var zero K
	return m.scan(c, zero, false, false, zero, 0, 0, true)
}

// ImportEntries merges exported entries back in (overwriting by key),
// preserving deadlines and — through the expiry hook — rebuilding the
// registry's deadline index, which snapshots deliberately do not
// serialize.
func (m *TSortedMap[K, V]) ImportEntries(c *pnstm.Ctx, entries []SortedEntry[K, V]) {
	if len(entries) == 0 {
		return
	}
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		for _, e := range entries {
			m.put(c, e.Key, e.Value, e.Exp)
		}
		return nil
	})
}

// nowNanos is the wall clock lazy TTL hiding reads against. Mutations
// never consult it — deterministic replay depends on that.
func nowNanos() int64 { return time.Now().UnixNano() }
