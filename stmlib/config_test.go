package stmlib_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pnstm"
	"pnstm/stmlib"
)

// Config-path oracle coverage: the under-tested Runtime configurations —
// PublisherPartitions > 1 (partitioned background publisher, paper §5.1)
// and SharedReads (the §9 read-access extension) — run the same
// deterministic programs with parallel-nested bulk operations as the
// Serial baseline, and all outcomes must agree with the sequential
// reference model.

// configVariants are the Runtime configurations under test, applied on
// top of a worker count.
func configVariants() map[string]pnstm.Config {
	return map[string]pnstm.Config{
		"partitions=4":             {PublisherPartitions: 4},
		"sharedreads":              {SharedReads: true},
		"partitions=4+sharedreads": {PublisherPartitions: 4, SharedReads: true},
	}
}

func newRTConfig(t testing.TB, cfg pnstm.Config) *pnstm.Runtime {
	t.Helper()
	rt, err := pnstm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// executeProgBulk runs a random partitioned program followed by a bulk
// phase — BulkUpdate over every key, a parallel Len and a Snapshot, all
// parallel-nested bulk operations — and returns the final contents.
func executeProgBulk(t *testing.T, p *structProg, keys []int, cfg pnstm.Config) (snap map[int]int, length int) {
	t.Helper()
	rt := newRTConfig(t, cfg)
	m := stmlib.NewTMap[int, int](32)
	run(t, rt, func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			p.runTM(c, m)
			return nil
		})
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			// Bulk phase inside one transaction: increment every key (also
			// inserting the never-written ones), then read the whole map
			// back with the parallel bulk reads.
			m.BulkUpdate(c, keys, func(k, v int, ok bool) (int, bool) {
				return v + 1, true
			})
			length = m.Len(c)
			snap = m.Snapshot(c)
			return nil
		})
	})
	return snap, length
}

func TestConfigPathsOracleTMapBulk(t *testing.T) {
	const nKeys = 48
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			keys := make([]int, nKeys)
			for i := range keys {
				keys[i] = i * 7
			}
			p := genStructProg(rng, keys, 4)

			// Sequential reference: the program, then the bulk increment.
			ref := make(map[int]int)
			p.runRef(ref)
			for _, k := range keys {
				ref[k] = ref[k] + 1
			}

			serialSnap, serialLen := executeProgBulk(t, p, keys, pnstm.Config{Workers: 1, Serial: true})
			diffMaps(t, "serial vs reference", serialSnap, ref)
			if serialLen != len(ref) {
				t.Errorf("serial len = %d want %d", serialLen, len(ref))
			}
			for name, base := range configVariants() {
				for _, workers := range []int{2, 4} {
					cfg := base
					cfg.Workers = workers
					snap, n := executeProgBulk(t, p, keys, cfg)
					label := fmt.Sprintf("%s workers=%d vs reference", name, workers)
					diffMaps(t, label, snap, ref)
					if n != len(ref) {
						t.Errorf("%s: len = %d want %d", label, n, len(ref))
					}
				}
			}
		})
	}
}

// TestConfigPathsCommutativeStructures runs the all-structures
// commutative workload (counter adds, shared-key map update-adds, queue
// pushes) under each config variant: real conflicts, retries and
// escalations must still produce the closed-form totals. The map Update
// is a read-modify-write on a shared bucket, so reads race writes —
// exactly the surface SharedReads changes. (A full Sum inside every
// leaf would NOT commute: it orders against every concurrent add and
// livelocks the workload; the bulk reads run between the rounds
// instead.)
func TestConfigPathsCommutativeStructures(t *testing.T) {
	for name, base := range configVariants() {
		name, base := name, base
		t.Run(name, func(t *testing.T) {
			const (
				width = 3
				depth = 2
				adds  = int64(3)
			)
			leaves := 1
			for i := 0; i < depth; i++ {
				leaves *= width
			}
			cfg := base
			cfg.Workers = 4
			rt := newRTConfig(t, cfg)
			m := stmlib.NewTMap[string, int](16)
			q := stmlib.NewTQueue[int]()
			ctr := stmlib.NewTCounter(8)

			var build func(d int) func(*pnstm.Ctx)
			build = func(d int) func(*pnstm.Ctx) {
				if d == 0 {
					return func(c *pnstm.Ctx) {
						_ = c.Atomic(func(c *pnstm.Ctx) error {
							ctr.Add(c, adds)
							m.Update(c, "shared", func(v int, ok bool) (int, bool) {
								return v + 1, true
							})
							q.Push(c, 1)
							return nil
						})
					}
				}
				return func(c *pnstm.Ctx) {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						fns := make([]func(*pnstm.Ctx), width)
						for i := range fns {
							fns[i] = build(d - 1)
						}
						c.Parallel(fns...)
						return nil
					})
				}
			}
			run(t, rt, build(depth))

			run(t, rt, func(c *pnstm.Ctx) {
				if s := ctr.Sum(c); s != int64(leaves)*adds {
					t.Errorf("counter = %d want %d", s, int64(leaves)*adds)
				}
				if v, _ := m.Get(c, "shared"); v != leaves {
					t.Errorf("map = %d want %d", v, leaves)
				}
				if n := q.Len(c); n != leaves {
					t.Errorf("queue = %d want %d", n, leaves)
				}
			})
		})
	}
}
