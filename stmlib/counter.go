package stmlib

import (
	"sync/atomic"

	"pnstm"
)

// TCounter is a transactional counter striped over several transactional
// variables. Add touches a single stripe chosen by a non-transactional
// rotor, so parallel sibling transactions that increment the counter
// usually land on different stripes and do not conflict; the rotor
// advances on every attempt, so a retry after a collision moves to
// another stripe. Sum reads every stripe as one atomic step, forking one
// nested child transaction per stripe group via Ctx.Parallel — the
// parallel-nested read the runtime makes cheap.
//
// The counter composes like every stmlib structure: an Atomic body that
// calls Add joins the caller's transaction, and the increment is undone
// if the caller aborts.
//
// Create with NewTCounter; the zero value is not usable.
type TCounter struct {
	stripes []*pnstm.TVar[int64]
	fanout  int
	rotor   atomic.Uint64
}

// NewTCounter returns a counter with the given number of stripes (rounded
// up to a power of two, minimum 1). More stripes mean fewer conflicts
// between concurrent adders at the cost of a wider Sum; the worker count
// is a good default.
func NewTCounter(stripes int) *TCounter {
	return NewTCounterFanout(stripes, DefaultFanout)
}

// NewTCounterFanout is NewTCounter with an explicit Sum/Reset fanout: the
// maximum number of parallel nested children the bulk operations fork.
func NewTCounterFanout(stripes, fanout int) *TCounter {
	n := ceilPow2(stripes)
	if fanout < 1 {
		fanout = 1
	}
	t := &TCounter{stripes: make([]*pnstm.TVar[int64], n), fanout: fanout}
	for i := range t.stripes {
		t.stripes[i] = pnstm.NewTVar[int64](0)
	}
	return t
}

// Stripes returns the stripe count (diagnostics and benchmarks).
func (t *TCounter) Stripes() int { return len(t.stripes) }

// SetLabel names the counter's stripes for conflict attribution (D35):
// stripe i becomes "c:<name>/<i>" in flight-recorder events. Call once
// at construction time, before transactions touch the counter.
func (t *TCounter) SetLabel(name string) {
	for i, s := range t.stripes {
		s.Obj().SetLabel("c:" + name + "/" + itoa(i))
	}
}

// Add adds delta to the counter.
func (t *TCounter) Add(c *pnstm.Ctx, delta int64) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		// The rotor is read inside the body on purpose: a retry re-picks,
		// steering repeated collisions apart. Any stripe is semantically
		// equivalent, so the non-transactional read cannot affect the
		// committed sum.
		s := t.stripes[t.rotor.Add(1)&uint64(len(t.stripes)-1)]
		pnstm.Update(c, s, func(v int64) int64 { return v + delta })
		return nil
	})
}

// Inc adds 1.
func (t *TCounter) Inc(c *pnstm.Ctx) { t.Add(c, 1) }

// Sum returns the counter's value: one nested child per stripe group
// reads its stripes in parallel, and the partial sums are combined after
// the join. The result is a consistent atomic snapshot — concurrent
// non-ancestor adders conflict with the read and serialize around it.
func (t *TCounter) Sum(c *pnstm.Ctx) int64 {
	var total int64
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		bounds := groupBounds(len(t.stripes), t.fanout)
		parts := make([]int64, len(bounds)-1)
		fns := make([]func(*pnstm.Ctx), len(parts))
		for g := range fns {
			g := g
			fns[g] = func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					var s int64
					for i := bounds[g]; i < bounds[g+1]; i++ {
						s += pnstm.Load(c, t.stripes[i])
					}
					parts[g] = s
					return nil
				})
			}
		}
		c.Parallel(fns...)
		total = 0
		for _, s := range parts {
			total += s
		}
		return nil
	})
	return total
}

// SumInline returns the counter's value by reading the stripes
// sequentially in the caller's transaction — same atomic snapshot as
// Sum, none of Sum's parallel-block forks. This is the right read
// inside an already-parallel composition (a server batch child, a wire
// transaction's per-structure group): there the caller's siblings keep
// the workers busy, and per-read forks are pure dispatch overhead.
func (t *TCounter) SumInline(c *pnstm.Ctx) int64 {
	var total int64
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		var s int64
		for _, stripe := range t.stripes {
			s += pnstm.Load(c, stripe)
		}
		total = s
		return nil
	})
	return total
}

// Reset sets the counter to zero, one nested child per stripe group.
func (t *TCounter) Reset(c *pnstm.Ctx) {
	_ = c.Atomic(func(c *pnstm.Ctx) error {
		bounds := groupBounds(len(t.stripes), t.fanout)
		fns := make([]func(*pnstm.Ctx), len(bounds)-1)
		for g := range fns {
			g := g
			fns[g] = func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					for i := bounds[g]; i < bounds[g+1]; i++ {
						if pnstm.Load(c, t.stripes[i]) != 0 {
							pnstm.Store(c, t.stripes[i], 0)
						}
					}
					return nil
				})
			}
		}
		c.Parallel(fns...)
		return nil
	})
}
