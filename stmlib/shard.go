package stmlib

// Shard routing: a store that wants more than one group-commit pipeline
// partitions its catalog across several independent Registries — each
// with its own runtime and batching engine — by structure name. The
// assignment must be stable (the same name maps to the same shard in
// every process that ever opens the data) and total (every name maps to
// exactly one shard for any shard count), because the per-shard
// write-ahead logs and snapshots persist the partitioning on disk.

// ShardIndex maps a structure name onto one of n shards. The function
// is deterministic and process-independent — FNV-1a with a splitmix64
// finalizer over the name's bytes, no per-process seed — so a data
// directory written with n shards routes identically forever. n <= 1
// always yields shard 0.
//
// FROZEN: this is deliberately NOT hashString from hash.go. That hash
// only shapes in-memory bucket contention and may be retuned freely;
// this one is an on-disk format (shard i's WAL holds exactly the
// structures that hash to i), so it must never change —
// TestShardIndexStable pins it to golden values.
func ShardIndex(name string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(n))
}

// Merge folds other into img — the stitching step of a sharded
// whole-store export. Structures routed by ShardIndex live on exactly
// one shard, so maps and queues from different shards are disjoint by
// name (defensively, map entries overwrite by key and queue elements
// append). Counters are the exception: a cross-structure transaction
// (e.g. a checkout crediting a sold counter) materializes its counters
// on ITS shard, so one counter name may hold partial totals on several
// shards — Merge adds them, which is exact because counter state is a
// commutative sum.
func (img *RegistryImage) Merge(other *RegistryImage) {
	if other == nil {
		return
	}
	for name, entries := range other.Maps {
		dst := img.Maps[name]
		if dst == nil {
			dst = make(map[string][]byte, len(entries))
			img.Maps[name] = dst
		}
		for k, v := range entries {
			dst[k] = v
		}
	}
	for name, elems := range other.Queues {
		img.Queues[name] = append(img.Queues[name], elems...)
	}
	for name, total := range other.Counters {
		img.Counters[name] += total
	}
	for name, ttls := range other.MapTTLs {
		if img.MapTTLs == nil {
			img.MapTTLs = make(map[string]map[string]int64)
		}
		dst := img.MapTTLs[name]
		if dst == nil {
			dst = make(map[string]int64, len(ttls))
			img.MapTTLs[name] = dst
		}
		for k, exp := range ttls {
			dst[k] = exp
		}
	}
	for name, entries := range other.Sorted {
		if img.Sorted == nil {
			img.Sorted = make(map[string][]SortedEntry[string, []byte])
		}
		img.Sorted[name] = append(img.Sorted[name], entries...)
	}
	for name, recs := range other.Leases {
		if img.Leases == nil {
			img.Leases = make(map[string][]LeaseRecord[[]byte])
		}
		img.Leases[name] = append(img.Leases[name], recs...)
	}
	for name, seq := range other.LeaseSeqs {
		if img.LeaseSeqs == nil {
			img.LeaseSeqs = make(map[string]uint64)
		}
		if seq > img.LeaseSeqs[name] {
			img.LeaseSeqs[name] = seq
		}
	}
}
