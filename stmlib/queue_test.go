package stmlib_test

import (
	"fmt"
	"testing"

	"pnstm"
	"pnstm/stmlib"
)

func TestTQueueFIFO(t *testing.T) {
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			rt := newRT(t, 2, serial)
			q := stmlib.NewTQueue[int]()
			run(t, rt, func(c *pnstm.Ctx) {
				if _, ok := q.Pop(c); ok {
					t.Error("pop from empty queue")
				}
				for i := 0; i < 10; i++ {
					q.Push(c, i)
				}
				if n := q.Len(c); n != 10 {
					t.Errorf("len = %d", n)
				}
				if v, ok := q.Peek(c); !ok || v != 0 {
					t.Errorf("peek = %d,%v", v, ok)
				}
				for i := 0; i < 10; i++ {
					v, ok := q.Pop(c)
					if !ok || v != i {
						t.Errorf("pop %d = %d,%v", i, v, ok)
					}
				}
				if n := q.Len(c); n != 0 {
					t.Errorf("len after drain = %d", n)
				}
				// Interleave pushes and pops across the two-stack flip.
				q.PushAll(c, 100, 101, 102)
				if v, _ := q.Pop(c); v != 100 {
					t.Errorf("pop = %d want 100", v)
				}
				q.Push(c, 103)
				for want := 101; want <= 103; want++ {
					if v, ok := q.Pop(c); !ok || v != want {
						t.Errorf("pop = %d,%v want %d", v, ok, want)
					}
				}
			})
		})
	}
}

// TestTQueueAbortRestores checks that aborting a transaction undoes its
// queue operations, including across the in/out-stack flip.
func TestTQueueAbortRestores(t *testing.T) {
	rt := newRT(t, 2, false)
	q := stmlib.NewTQueue[int]()
	sentinel := fmt.Errorf("deliberate abort")
	run(t, rt, func(c *pnstm.Ctx) {
		q.PushAll(c, 1, 2, 3)
		err := c.Atomic(func(c *pnstm.Ctx) error {
			if v, _ := q.Pop(c); v != 1 { // forces the flip
				t.Errorf("pop = %d", v)
			}
			q.Push(c, 4)
			if n := q.Len(c); n != 3 {
				t.Errorf("len inside tx = %d", n)
			}
			return sentinel
		})
		if err != sentinel {
			t.Fatalf("err = %v", err)
		}
		// The abort must restore 1,2,3 exactly.
		for want := 1; want <= 3; want++ {
			if v, ok := q.Pop(c); !ok || v != want {
				t.Errorf("post-abort pop = %d,%v want %d", v, ok, want)
			}
		}
		if _, ok := q.Pop(c); ok {
			t.Error("queue not empty after drain")
		}
	})
}

// TestTQueueProducersConsumers pushes from parallel producer transactions
// and drains afterwards: the element multiset must be exact, and each
// producer's elements must come out in its push order (FIFO per producer).
func TestTQueueProducersConsumers(t *testing.T) {
	rt := newRT(t, 4, false)
	q := stmlib.NewTQueue[[2]int]() // (producer, seq)
	const producers, per = 6, 30
	run(t, rt, func(c *pnstm.Ctx) {
		fns := make([]func(*pnstm.Ctx), producers)
		for p := 0; p < producers; p++ {
			p := p
			fns[p] = func(c *pnstm.Ctx) {
				for i := 0; i < per; i++ {
					q.Push(c, [2]int{p, i})
				}
			}
		}
		c.Parallel(fns...)
	})
	run(t, rt, func(c *pnstm.Ctx) {
		if n := q.Len(c); n != producers*per {
			t.Fatalf("len = %d want %d", n, producers*per)
		}
		next := make([]int, producers)
		for {
			v, ok := q.Pop(c)
			if !ok {
				break
			}
			p, seq := v[0], v[1]
			if seq != next[p] {
				t.Fatalf("producer %d out of order: got seq %d want %d", p, seq, next[p])
			}
			next[p]++
		}
		for p, n := range next {
			if n != per {
				t.Errorf("producer %d delivered %d want %d", p, n, per)
			}
		}
	})
}
