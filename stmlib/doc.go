// Package stmlib is a library of transactional data structures built on
// the parallel-nesting STM in package pnstm.
//
// The structures follow Assa et al., "Using Nesting to Push the Limits of
// Transactional Data Structure Libraries" (DISC 2021): a data structure
// operation is itself a (nested) transaction, so structure operations
// compose — an Atomic body may touch a TMap, a TQueue, a TCounter and
// plain TVars and the whole body commits or aborts as one unit. What this
// runtime uniquely adds is the paper's parallel nesting: a single bulk
// operation (TMap.Range, TMap.Clear, TMap.BulkUpdate, TCounter.Sum) forks
// one child transaction per bucket group via Ctx.Parallel, so the bulk
// work runs on all worker slots while still being one atomic step of the
// enclosing transaction.
//
// Three structures ship today:
//
//   - TMap[K, V]: a bucketed hash map. Point operations (Get, Put,
//     Delete, Contains) touch one bucket; bulk operations fan out one
//     nested child per bucket group.
//   - TQueue[T]: a two-stack FIFO queue over persistent (immutable) cons
//     lists, so aborts never alias live state.
//   - TCounter: a striped counter. Add touches one stripe (concurrent
//     non-ancestor adders rarely collide); Sum reads all stripes with
//     parallel nested children.
//
// Every operation takes the caller's *pnstm.Ctx and may be called either
// inside an enclosing Atomic (the operation becomes a nested child and
// joins the caller's atom) or at block level (the operation runs as its
// own root transaction). Under pnstm.Config{Serial: true} the same
// programs run with serial nesting — Parallel degrades to sequential
// inline children — which is the baseline the benchmarks compare against.
//
// # Values are copied, not shared
//
// The structures store values with persistent-data-structure discipline:
// a transactional write replaces a bucket map or list node wholesale and
// never mutates shared state in place, because the STM's rollback restores
// previous values by reference. Callers must follow the same rule for the
// V/T payloads they store: treat a value handed to Put/Push as frozen. If
// a payload must be mutable, store a pointer to data guarded elsewhere or
// copy before mutating.
package stmlib
