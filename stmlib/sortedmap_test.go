package stmlib_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pnstm"
	"pnstm/stmlib"
)

func TestTSortedMapBasic(t *testing.T) {
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serial=%v", serial), func(t *testing.T) {
			rt := newRT(t, 2, serial)
			m := stmlib.NewTSortedMap[string, int]()
			run(t, rt, func(c *pnstm.Ctx) {
				if _, ok := m.Get(c, "a"); ok {
					t.Error("get on empty map found a value")
				}
				m.Put(c, "b", 2)
				m.Put(c, "a", 1)
				m.Put(c, "c", 3)
				if v, ok := m.Get(c, "b"); !ok || v != 2 {
					t.Errorf("get b = %d,%v", v, ok)
				}
				m.Put(c, "b", 20) // overwrite
				if v, _ := m.Get(c, "b"); v != 20 {
					t.Errorf("get b after overwrite = %d", v)
				}
				if !m.Delete(c, "a") {
					t.Error("delete a = false")
				}
				if m.Delete(c, "a") {
					t.Error("double delete a = true")
				}
				if m.Contains(c, "a") {
					t.Error("a still present after delete")
				}
				if n := m.Len(c); n != 2 {
					t.Errorf("len = %d want 2", n)
				}
			})
		})
	}
}

// TestTSortedMapOrderAcrossSplits inserts enough random keys to force
// many leaf splits and checks that a full scan comes back sorted and
// complete, and that point lookups still land after the splits.
func TestTSortedMapOrderAcrossSplits(t *testing.T) {
	rt := newRT(t, 4, false)
	m := stmlib.NewTSortedMapFanout[string, int](4)
	const n = 1000
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%08d", rng.Intn(1<<30))
	}
	run(t, rt, func(c *pnstm.Ctx) {
		for i, k := range keys {
			m.Put(c, k, i)
		}
	})
	run(t, rt, func(c *pnstm.Ctx) {
		got := m.RangeFrom(c, "", 0)
		want := make(map[string]int, n)
		for i, k := range keys {
			want[k] = i // later writes win on duplicate keys
		}
		if len(got) != len(want) {
			t.Fatalf("scan returned %d entries want %d", len(got), len(want))
		}
		for i, e := range got {
			if i > 0 && got[i-1].Key >= e.Key {
				t.Fatalf("scan out of order at %d: %q >= %q", i, got[i-1].Key, e.Key)
			}
			if want[e.Key] != e.Value {
				t.Errorf("key %q = %d want %d", e.Key, e.Value, want[e.Key])
			}
		}
		for k, v := range want {
			if gv, ok := m.Get(c, k); !ok || gv != v {
				t.Fatalf("get %q = %d,%v want %d", k, gv, ok, v)
			}
		}
	})
}

func TestTSortedMapRangeBoundsAndLimit(t *testing.T) {
	rt := newRT(t, 2, false)
	m := stmlib.NewTSortedMap[int, string]()
	run(t, rt, func(c *pnstm.Ctx) {
		for i := 0; i < 100; i += 2 { // evens 0..98
			m.Put(c, i, fmt.Sprint(i))
		}
		// [lo, hi): 10..30 exclusive of 30.
		got := m.RangeScan(c, 10, 30, 0)
		if len(got) != 10 || got[0].Key != 10 || got[len(got)-1].Key != 28 {
			t.Fatalf("range [10,30) = %v", got)
		}
		// Limit truncates from the low end.
		got = m.RangeScan(c, 10, 30, 3)
		if len(got) != 3 || got[2].Key != 14 {
			t.Fatalf("limited range = %v", got)
		}
		// Empty and inverted ranges.
		if got := m.RangeScan(c, 30, 30, 0); got != nil {
			t.Errorf("empty range = %v", got)
		}
		if got := m.RangeScan(c, 40, 20, 0); got != nil {
			t.Errorf("inverted range = %v", got)
		}
		// Bounds between keys.
		if n := m.RangeCount(c, 11, 15); n != 2 { // 12, 14
			t.Errorf("count (11,15) = %d want 2", n)
		}
		if n := m.RangeCountFrom(c, 90); n != 5 { // 90..98
			t.Errorf("count from 90 = %d want 5", n)
		}
	})
}

// TestTSortedMapNegativeKeys pins the hasLo fix: a full export must
// include keys that sort before the zero value of the key type.
func TestTSortedMapNegativeKeys(t *testing.T) {
	rt := newRT(t, 2, false)
	m := stmlib.NewTSortedMap[int, int]()
	run(t, rt, func(c *pnstm.Ctx) {
		for _, k := range []int{-5, -1, 0, 3} {
			m.Put(c, k, k*10)
		}
		es := m.ExportEntries(c)
		if len(es) != 4 || es[0].Key != -5 || es[3].Key != 3 {
			t.Fatalf("export = %v", es)
		}
		if n := m.Len(c); n != 4 {
			t.Errorf("len = %d", n)
		}
	})
}

// TestTSortedMapParallelScanWriters runs a parallel-nested scan while
// sibling children mutate disjoint subranges: the paper's partial-abort
// claim means each scan child retries alone, and the committed scan
// still sees a consistent cut.
func TestTSortedMapParallelScanWriters(t *testing.T) {
	rt := newRT(t, 4, false)
	m := stmlib.NewTSortedMapFanout[string, int](8)
	const n = 400
	run(t, rt, func(c *pnstm.Ctx) {
		for i := 0; i < n; i++ {
			m.Put(c, fmt.Sprintf("k%06d", i), 1)
		}
	})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			_ = rt.Run(func(c *pnstm.Ctx) {
				// Rewrite a value without changing the key population, so
				// scans conflict but totals stay fixed.
				m.Put(c, fmt.Sprintf("k%06d", i%n), i)
			})
		}
	}()
	for iter := 0; iter < 30; iter++ {
		run(t, rt, func(c *pnstm.Ctx) {
			if got := m.RangeCountFrom(c, ""); got != n {
				t.Fatalf("scan under churn saw %d keys want %d", got, n)
			}
		})
	}
	close(stop)
	<-done
}

func TestTSortedMapTTL(t *testing.T) {
	rt := newRT(t, 2, false)
	m := stmlib.NewTSortedMap[string, int]()
	now := time.Now().UnixNano()
	past, future := now-int64(time.Hour), now+int64(time.Hour)
	run(t, rt, func(c *pnstm.Ctx) {
		m.PutTTL(c, "dead", 1, past)
		m.PutTTL(c, "live", 2, future)
		m.Put(c, "forever", 3)
		// Reads hide the expired entry but the entry is still physically
		// present until a reap removes it.
		if _, ok := m.Get(c, "dead"); ok {
			t.Error("expired key visible to Get")
		}
		if v, ok := m.Get(c, "live"); !ok || v != 2 {
			t.Errorf("live = %d,%v", v, ok)
		}
		if got := m.RangeFrom(c, "", 0); len(got) != 2 {
			t.Errorf("scan = %v want live+forever only", got)
		}
		if n := m.Len(c); n != 3 {
			t.Errorf("physical len = %d want 3", n)
		}
		// Overwriting an expired-but-unreaped key resurrects it.
		m.Put(c, "dead", 9)
		if v, ok := m.Get(c, "dead"); !ok || v != 9 {
			t.Errorf("resurrected = %d,%v", v, ok)
		}
		// ExpireThrough only removes entries whose deadline has passed
		// the cutoff; "dead" now has no deadline at all.
		if m.ExpireThrough(c, "dead", now) {
			t.Error("ExpireThrough removed a key with no deadline")
		}
		if m.ExpireThrough(c, "live", now) {
			t.Error("ExpireThrough removed a key due in the future")
		}
		m.PutTTL(c, "soon", 4, now-1)
		if !m.ExpireThrough(c, "soon", now) {
			t.Error("ExpireThrough missed a due key")
		}
		if m.Contains(c, "soon") {
			t.Error("soon still present after expire")
		}
	})
}

func TestTSortedMapExportImportRoundTrip(t *testing.T) {
	rt := newRT(t, 2, false)
	m := stmlib.NewTSortedMap[string, int]()
	future := time.Now().Add(time.Hour).UnixNano()
	run(t, rt, func(c *pnstm.Ctx) {
		m.Put(c, "a", 1)
		m.PutTTL(c, "b", 2, future)
		m.Put(c, "c", 3)
	})
	var es []stmlib.SortedEntry[string, int]
	run(t, rt, func(c *pnstm.Ctx) { es = m.ExportEntries(c) })
	m2 := stmlib.NewTSortedMap[string, int]()
	run(t, rt, func(c *pnstm.Ctx) { m2.ImportEntries(c, es) })
	run(t, rt, func(c *pnstm.Ctx) {
		es2 := m2.ExportEntries(c)
		if len(es2) != 3 {
			t.Fatalf("reimported %d entries want 3", len(es2))
		}
		for i, e := range es2 {
			if e != es[i] {
				t.Errorf("entry %d = %+v want %+v", i, e, es[i])
			}
		}
		if es2[1].Exp != future {
			t.Errorf("TTL lost across export/import: exp = %d", es2[1].Exp)
		}
	})
}
