package stmlib

import (
	"sort"
	"sync"
)

// Registry is a catalog of named transactional structures: string-keyed
// maps (byte-slice values), byte-slice queues and striped counters. It is
// the façade a server exposes over the wire — clients address structures
// by (kind, name) and the registry materializes them on first use.
//
// Structure creation is NOT transactional (NewTMap and friends allocate
// plain transactional variables), so the registry guards its name tables
// with an ordinary mutex: get-or-create is safe from any goroutine,
// including concurrently with transactions using already-created
// structures. Lookups of existing names take only a read lock.
//
// The registry never deletes a structure; a name, once used, stays bound
// to the same structure for the registry's lifetime. (Transactional
// emptying — TMap.Clear, draining a queue, TCounter.Reset — is the
// supported way to reclaim contents.)
type Registry struct {
	mu       sync.RWMutex
	maps     map[string]*TMap[string, []byte]
	queues   map[string]*TQueue[[]byte]
	counters map[string]*TCounter

	buckets int // per-map bucket count
	stripes int // per-counter stripe count
	fanout  int // bulk-operation fanout for maps and counters
}

// RegistryConfig sizes the structures a Registry creates. Zero fields
// take defaults: 64 buckets, 8 stripes, DefaultFanout.
type RegistryConfig struct {
	MapBuckets     int
	CounterStripes int
	Fanout         int
}

// NewRegistry returns an empty catalog.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.MapBuckets <= 0 {
		cfg.MapBuckets = 64
	}
	if cfg.CounterStripes <= 0 {
		cfg.CounterStripes = 8
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = DefaultFanout
	}
	return &Registry{
		maps:     make(map[string]*TMap[string, []byte]),
		queues:   make(map[string]*TQueue[[]byte]),
		counters: make(map[string]*TCounter),
		buckets:  cfg.MapBuckets,
		stripes:  cfg.CounterStripes,
		fanout:   cfg.Fanout,
	}
}

// Map returns the named map, creating it on first use.
func (r *Registry) Map(name string) *TMap[string, []byte] {
	r.mu.RLock()
	m := r.maps[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.maps[name]; m == nil {
		m = NewTMapFanout[string, []byte](r.buckets, r.fanout)
		m.SetLabel(name) // conflict attribution (D35)
		r.maps[name] = m
	}
	return m
}

// Queue returns the named queue, creating it on first use.
func (r *Registry) Queue(name string) *TQueue[[]byte] {
	r.mu.RLock()
	q := r.queues[name]
	r.mu.RUnlock()
	if q != nil {
		return q
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if q = r.queues[name]; q == nil {
		q = NewTQueue[[]byte]()
		q.SetLabel(name) // conflict attribution (D35)
		r.queues[name] = q
	}
	return q
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *TCounter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = NewTCounterFanout(r.stripes, r.fanout)
		c.SetLabel(name) // conflict attribution (D35)
		r.counters[name] = c
	}
	return c
}

// Names returns the sorted names of every structure of each kind
// (diagnostics).
func (r *Registry) Names() (maps, queues, counters []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n := range r.maps {
		maps = append(maps, n)
	}
	for n := range r.queues {
		queues = append(queues, n)
	}
	for n := range r.counters {
		counters = append(counters, n)
	}
	sort.Strings(maps)
	sort.Strings(queues)
	sort.Strings(counters)
	return maps, queues, counters
}
