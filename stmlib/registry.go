package stmlib

import (
	"sort"
	"sync"

	"pnstm"
)

// Registry is a catalog of named transactional structures: string-keyed
// maps (byte-slice values), byte-slice queues and striped counters. It is
// the façade a server exposes over the wire — clients address structures
// by (kind, name) and the registry materializes them on first use.
//
// Structure creation is NOT transactional (NewTMap and friends allocate
// plain transactional variables), so the registry guards its name tables
// with an ordinary mutex: get-or-create is safe from any goroutine,
// including concurrently with transactions using already-created
// structures. Lookups of existing names take only a read lock.
//
// The registry never deletes a structure; a name, once used, stays bound
// to the same structure for the registry's lifetime. (Transactional
// emptying — TMap.Clear, draining a queue, TCounter.Reset — is the
// supported way to reclaim contents.)
type Registry struct {
	mu       sync.RWMutex
	maps     map[string]*TMap[string, []byte]
	queues   map[string]*TQueue[[]byte]
	counters map[string]*TCounter
	sorted   map[string]*TSortedMap[string, []byte]

	// expiry is the internal deadline index (see expiry.go): one entry
	// per TTL'd key and outstanding lease across every structure in
	// this registry, maintained by the structures' hooks inside their
	// own transactions. It has no name, is not listed by Names, and is
	// rebuilt — not serialized — across snapshots.
	expiry *TSortedMap[string, []byte]

	buckets int // per-map bucket count
	stripes int // per-counter stripe count
	fanout  int // bulk-operation fanout for maps and counters
}

// RegistryConfig sizes the structures a Registry creates. Zero fields
// take defaults: 64 buckets, 8 stripes, DefaultFanout.
type RegistryConfig struct {
	MapBuckets     int
	CounterStripes int
	Fanout         int
}

// NewRegistry returns an empty catalog.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.MapBuckets <= 0 {
		cfg.MapBuckets = 64
	}
	if cfg.CounterStripes <= 0 {
		cfg.CounterStripes = 8
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = DefaultFanout
	}
	r := &Registry{
		maps:     make(map[string]*TMap[string, []byte]),
		queues:   make(map[string]*TQueue[[]byte]),
		counters: make(map[string]*TCounter),
		sorted:   make(map[string]*TSortedMap[string, []byte]),
		buckets:  cfg.MapBuckets,
		stripes:  cfg.CounterStripes,
		fanout:   cfg.Fanout,
	}
	r.expiry = NewTSortedMapFanout[string, []byte](cfg.Fanout)
	r.expiry.SetLabel("\x00expiry")
	return r
}

// keyHook returns the deadline-change callback a map or sorted map of
// the given kind and name maintains the expiry index with.
func (r *Registry) keyHook(kind byte, name string) func(c *pnstm.Ctx, oldExp, newExp int64, k string) {
	return func(c *pnstm.Ctx, oldExp, newExp int64, k string) {
		if oldExp > 0 {
			r.expiry.Delete(c, ExpiryKey(oldExp, kind, name, k))
		}
		if newExp > 0 {
			r.expiry.Put(c, ExpiryKey(newExp, kind, name, k), nil)
		}
	}
}

// Map returns the named map, creating it on first use.
func (r *Registry) Map(name string) *TMap[string, []byte] {
	r.mu.RLock()
	m := r.maps[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.maps[name]; m == nil {
		m = NewTMapFanout[string, []byte](r.buckets, r.fanout)
		m.SetLabel(name) // conflict attribution (D35)
		m.SetExpiryHook(r.keyHook(ExpiryKindMap, name))
		r.maps[name] = m
	}
	return m
}

// SortedMap returns the named sorted map, creating it on first use.
func (r *Registry) SortedMap(name string) *TSortedMap[string, []byte] {
	r.mu.RLock()
	m := r.sorted[name]
	r.mu.RUnlock()
	if m != nil {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.sorted[name]; m == nil {
		m = NewTSortedMapFanout[string, []byte](r.fanout)
		m.SetLabel(name) // conflict attribution (D35)
		m.SetExpiryHook(r.keyHook(ExpiryKindSorted, name))
		r.sorted[name] = m
	}
	return m
}

// Queue returns the named queue, creating it on first use.
func (r *Registry) Queue(name string) *TQueue[[]byte] {
	r.mu.RLock()
	q := r.queues[name]
	r.mu.RUnlock()
	if q != nil {
		return q
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if q = r.queues[name]; q == nil {
		q = NewTQueue[[]byte]()
		q.SetLabel(name) // conflict attribution (D35)
		hook := r.keyHook(ExpiryKindLease, name)
		q.SetLeaseHook(func(c *pnstm.Ctx, oldDl, newDl int64, id uint64) {
			hook(c, oldDl, newDl, LeaseRef(id))
		})
		r.queues[name] = q
	}
	return q
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *TCounter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = NewTCounterFanout(r.stripes, r.fanout)
		c.SetLabel(name) // conflict attribution (D35)
		r.counters[name] = c
	}
	return c
}

// Names returns the sorted names of every structure of each kind
// (diagnostics). Sorted maps have their own SortedNames (this
// signature predates them).
func (r *Registry) Names() (maps, queues, counters []string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n := range r.maps {
		maps = append(maps, n)
	}
	for n := range r.queues {
		queues = append(queues, n)
	}
	for n := range r.counters {
		counters = append(counters, n)
	}
	sort.Strings(maps)
	sort.Strings(queues)
	sort.Strings(counters)
	return maps, queues, counters
}

// SortedNames returns the sorted names of every sorted map.
func (r *Registry) SortedNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.sorted))
	for n := range r.sorted {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExpiryIndex exposes the internal deadline index (reaper scans; see
// expiry.go for the key layout). Treat it as read-only: the structure
// hooks own its contents.
func (r *Registry) ExpiryIndex() *TSortedMap[string, []byte] { return r.expiry }
