// Bank: a larger transactional banking workload exercising composability —
// the property serial nesting destroys (paper §1). A batch-settlement
// transaction calls a *parallel* library routine (parallel audit) from
// inside a transaction; with serial nesting that call would serialize, here
// it runs as a tree of parallel nested transactions.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pnstm"
)

const (
	accounts       = 256
	initialBalance = 1_000
	transferGroups = 8
	transfersEach  = 200
)

// parallelSum is the "parallel library function": it sums a range of
// accounts with a divide-and-conquer tree of nested transactions. Callers
// may invoke it inside a transaction — that is the whole point.
func parallelSum(c *pnstm.Ctx, vars []*pnstm.TVar[int], lo, hi int) int {
	if hi-lo <= 32 {
		total, _ := pnstm.AtomicResult(c, func(c *pnstm.Ctx) (int, error) {
			s := 0
			for _, v := range vars[lo:hi] {
				s += pnstm.Load(c, v)
			}
			return s, nil
		})
		return total
	}
	mid := (lo + hi) / 2
	var left, right int
	c.Parallel(
		func(c *pnstm.Ctx) { left = parallelSum(c, vars, lo, mid) },
		func(c *pnstm.Ctx) { right = parallelSum(c, vars, mid, hi) },
	)
	return left + right
}

func main() {
	rt, err := pnstm.New(pnstm.Config{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	vars := make([]*pnstm.TVar[int], accounts)
	for i := range vars {
		vars[i] = pnstm.NewTVar(initialBalance)
	}
	want := accounts * initialBalance

	start := time.Now()
	err = rt.Run(func(c *pnstm.Ctx) {
		fns := make([]func(*pnstm.Ctx), transferGroups+1)
		for g := 0; g < transferGroups; g++ {
			rng := rand.New(rand.NewSource(int64(g) + 42))
			fns[g] = func(c *pnstm.Ctx) {
				for i := 0; i < transfersEach; i++ {
					from, to, amt := rng.Intn(accounts), rng.Intn(accounts), rng.Intn(100)
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						c.Parallel(
							func(c *pnstm.Ctx) {
								_ = c.Atomic(func(c *pnstm.Ctx) error {
									pnstm.Update(c, vars[from], func(v int) int { return v - amt })
									return nil
								})
							},
							func(c *pnstm.Ctx) {
								_ = c.Atomic(func(c *pnstm.Ctx) error {
									pnstm.Update(c, vars[to], func(v int) int { return v + amt })
									return nil
								})
							},
						)
						return nil
					})
				}
			}
		}
		// Concurrent auditor: a transaction that calls the parallel
		// library function. Every observed sum must equal the total.
		fns[transferGroups] = func(c *pnstm.Ctx) {
			for round := 0; round < 10; round++ {
				sum, err := pnstm.AtomicResult(c, func(c *pnstm.Ctx) (int, error) {
					return parallelSum(c, vars, 0, accounts), nil
				})
				if err != nil {
					log.Fatalf("audit: %v", err)
				}
				status := "OK"
				if sum != want {
					status = "VIOLATION"
				}
				fmt.Printf("audit %2d: total=%d %s\n", round, sum, status)
				time.Sleep(2 * time.Millisecond)
			}
		}
		c.Parallel(fns...)
	})
	if err != nil {
		log.Fatal(err)
	}

	final := 0
	for _, v := range vars {
		final += v.Peek()
	}
	st := rt.Stats()
	fmt.Printf("\n%d transfers in %v; final total %d (want %d)\n",
		transferGroups*transfersEach, time.Since(start).Round(time.Millisecond), final, want)
	fmt.Printf("commits=%d aborts=%d conflicts=%d escalations=%d\n",
		st.Committed, st.Aborted, st.Conflicts, st.Escalations)
	if final != want {
		log.Fatal("conservation violated")
	}
}
