// Inventory: an order-processing demo composing all three stmlib
// structures inside single transactions.
//
//   - stock:    TMap[string,int] — SKU → units on hand
//   - orders:   TQueue[order]    — incoming orders
//   - revenue:  TCounter         — cents earned
//
// The interesting parts:
//
//  1. Fulfilling an order is ONE transaction that pops the queue, checks
//     and decrements several stock entries, and adds revenue. If any line
//     is out of stock the body returns an error and the whole order —
//     including the pop — is undone, so the order stays queued.
//  2. A batch of orders is fulfilled by parallel children of one
//     enclosing transaction: the batch commits or aborts as a unit, but
//     the per-order work runs on all worker slots.
//  3. The nightly restock is a bulk operation: TMap.BulkUpdate forks one
//     nested child per bucket group, and the whole restock is still a
//     single atomic step that no audit (Snapshot + Sum) can see half of.
//
// Run with:
//
//	go run ./examples/inventory
package main

import (
	"fmt"
	"log"
	"sort"

	"pnstm"
	"pnstm/stmlib"
)

type order struct {
	id    int
	lines map[string]int // SKU → units
	cents int64
}

var errOutOfStock = fmt.Errorf("out of stock")

func main() {
	rt, err := pnstm.New(pnstm.Config{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	stock := stmlib.NewTMap[string, int](32)
	orders := stmlib.NewTQueue[order]()
	revenue := stmlib.NewTCounter(8)

	skus := []string{"anvil", "bolt", "cog", "dynamo", "flux", "gear"}

	// Seed stock and enqueue a day's orders — one setup transaction.
	if err := rt.Run(func(c *pnstm.Ctx) {
		if err := c.Atomic(func(c *pnstm.Ctx) error {
			for _, s := range skus {
				stock.Put(c, s, 10)
			}
			for i := 0; i < 12; i++ {
				a, b := skus[i%len(skus)], skus[(i+2)%len(skus)]
				orders.Push(c, order{
					id:    100 + i,
					lines: map[string]int{a: 1 + i%3, b: 1},
					cents: int64(250 + 10*i),
				})
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}); err != nil {
		log.Fatal(err)
	}

	// fulfill pops one order and applies it atomically. Returning an
	// error aborts everything, leaving the order at the head of the queue.
	fulfill := func(c *pnstm.Ctx) (int, error) {
		id := -1
		err := c.Atomic(func(c *pnstm.Ctx) error {
			o, ok := orders.Pop(c)
			if !ok {
				return nil // empty queue: commit the no-op
			}
			id = o.id
			for sku, n := range o.lines {
				have, _ := stock.Get(c, sku)
				if have < n {
					return errOutOfStock
				}
				stock.Put(c, sku, have-n)
			}
			revenue.Add(c, o.cents)
			return nil
		})
		return id, err
	}

	// Process the day in batches of 4: each batch is one transaction whose
	// children fulfill orders in parallel.
	var fulfilled, rejected int
	if err := rt.Run(func(c *pnstm.Ctx) {
		for batch := 0; batch < 3; batch++ {
			// results is plain memory: children own disjoint slots and the
			// join synchronizes, but it must only be COUNTED after the batch
			// transaction committed (a retried body would recompute it).
			results := make([]error, 4)
			err := c.Atomic(func(c *pnstm.Ctx) error {
				fns := make([]func(*pnstm.Ctx), len(results))
				for i := range fns {
					i := i
					fns[i] = func(c *pnstm.Ctx) {
						_, results[i] = fulfill(c)
					}
				}
				c.Parallel(fns...)
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, e := range results {
				if e == nil {
					fulfilled++
				} else {
					rejected++
				}
			}
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Audit + nightly restock, atomically: snapshot, total and restock are
	// one step; no concurrent reader could see the restock half-applied.
	if err := rt.Run(func(c *pnstm.Ctx) {
		if err := c.Atomic(func(c *pnstm.Ctx) error {
			snap := stock.Snapshot(c) // parallel bucket-group reads
			cents := revenue.Sum(c)   // parallel stripe reads
			stock.BulkUpdate(c, skus, func(sku string, have int, ok bool) (int, bool) {
				if have < 10 {
					return 10, true // top every SKU back up
				}
				return have, true
			})
			keys := make([]string, 0, len(snap))
			for k := range snap {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Printf("end of day: %d fulfilled, %d left queued/rejected, revenue %d¢\n",
				fulfilled, rejected, cents)
			for _, k := range keys {
				fmt.Printf("  %-7s %2d on hand → restocked to 10\n", k, snap[k])
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}); err != nil {
		log.Fatal(err)
	}

	if err := rt.Run(func(c *pnstm.Ctx) {
		if n := orders.Len(c); n > 0 {
			fmt.Printf("%d orders remain queued for tomorrow\n", n)
		}
	}); err != nil {
		log.Fatal(err)
	}
}
