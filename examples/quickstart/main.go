// Quickstart: the paper's Figure 1 — a bank transfer whose debit and
// credit run as parallel nested transactions inside the outer transaction,
// followed by a read of the child's result (the §5.2 "case 2" access).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pnstm"
)

func main() {
	rt, err := pnstm.New(pnstm.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	accountA := pnstm.NewTVar(100)
	accountB := pnstm.NewTVar(50)
	const amount = 30

	err = rt.Run(func(c *pnstm.Ctx) {
		// transaction t0
		err := c.Atomic(func(c *pnstm.Ctx) error {
			// transfer a given amount from account A to B
			c.Parallel(
				func(c *pnstm.Ctx) {
					// transaction t1, child of t0
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						n := pnstm.Load(c, accountA)
						pnstm.Store(c, accountA, n-amount)
						return nil
					})
				},
				func(c *pnstm.Ctx) {
					// transaction t2, child of t0
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						n := pnstm.Load(c, accountB)
						pnstm.Store(c, accountB, n+amount)
						return nil
					})
				},
			)
			// Line 14 of Figure 1: t0 reads B right after its child
			// committed; the comDesc mechanism guarantees no false
			// conflict even before the commit is published.
			fmt.Println("New balance of B is", pnstm.Load(c, accountB))
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("final: A=%d B=%d (sum %d)\n",
		accountA.Peek(), accountB.Peek(), accountA.Peek()+accountB.Peek())
}
