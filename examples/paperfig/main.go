// Paperfig: a miniature run of the paper's §7 synthetic benchmark,
// printing a reduced Figure 6 (speedup of parallel over serial nesting)
// and Figure 7 (per-transaction handling time vs depth) in under a minute.
// Use cmd/pnstm-bench for the full grids and paper-scale parameters.
//
//	go run ./examples/paperfig
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"pnstm/internal/bench"
)

func main() {
	cfg := bench.FigureConfig{
		LeafCounts: []int{1, 4, 16, 64},
		MaxDepth:   4,
		Objects:    1000,
		ThinkMax:   time.Millisecond,
		Workers:    32,
		Repeats:    2,
	}
	fmt.Println("Synthetic workload (paper §7), scaled: leaves sleep up to",
		cfg.ThinkMax, "then write", cfg.Objects, "half-overlapping objects.")
	fmt.Println()

	fig6, err := bench.Fig6(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fig6.Render(os.Stdout)
	fmt.Println()

	fig7, err := bench.Fig7(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fig7.Render(os.Stdout)
	fmt.Println()
	fmt.Println("Fig6: speedup grows with N and is highest at D=0 — the paper's shape.")
	fmt.Println("Fig7: rows stay near 1.0 across D — transaction handling is depth-independent.")
}
