// Gameserver: an Atomic-Quake-style workload (Zyulkyarov et al., cited in
// the paper's §1 as evidence that real transactional programs nest deeply).
// The world is a grid of cells; each simulation tick is one transaction
// that updates all regions in parallel nested transactions. Entities near
// region borders touch neighbouring regions' cells, so sibling region
// transactions genuinely conflict sometimes and must retry — yet every
// tick commits atomically.
//
//	go run ./examples/gameserver
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pnstm"
)

const (
	worldSize = 64 // cells per side
	regions   = 4  // regions per side (16 region transactions per tick)
	entities  = 200
	ticks     = 20
)

type cell struct {
	Occupants int
	Damage    int
}

type entity struct {
	x, y int
	hp   int
}

func main() {
	rt, err := pnstm.New(pnstm.Config{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	grid := make([]*pnstm.TVar[cell], worldSize*worldSize)
	for i := range grid {
		grid[i] = pnstm.NewTVar(cell{})
	}
	at := func(x, y int) *pnstm.TVar[cell] {
		return grid[(y&(worldSize-1))*worldSize+(x&(worldSize-1))]
	}

	ents := make([]*pnstm.TVar[entity], entities)
	rng := rand.New(rand.NewSource(7))
	for i := range ents {
		ents[i] = pnstm.NewTVar(entity{x: rng.Intn(worldSize), y: rng.Intn(worldSize), hp: 100})
	}
	// Entities are partitioned by home region for the tick update.
	regionOf := func(e entity) int {
		rs := worldSize / regions
		return (e.y/rs)*regions + e.x/rs
	}

	start := time.Now()
	var moves int
	err = rt.Run(func(c *pnstm.Ctx) {
		// Place every entity on its starting cell atomically.
		if err := c.Atomic(func(c *pnstm.Ctx) error {
			for _, ev := range ents {
				e := pnstm.Load(c, ev)
				cv := at(e.x, e.y)
				cc := pnstm.Load(c, cv)
				cc.Occupants++
				pnstm.Store(c, cv, cc)
			}
			return nil
		}); err != nil {
			return
		}
		for tick := 0; tick < ticks; tick++ {
			seed := int64(tick)
			// One tick = one atomic world update.
			err := c.Atomic(func(c *pnstm.Ctx) error {
				fns := make([]func(*pnstm.Ctx), regions*regions)
				for r := range fns {
					r := r
					fns[r] = func(c *pnstm.Ctx) {
						// Region transaction: move this region's entities;
						// a move may write cells of a neighbouring region
						// (border crossing), conflicting with its sibling.
						_ = c.Atomic(func(c *pnstm.Ctx) error {
							rr := rand.New(rand.NewSource(seed*1000 + int64(r)))
							for _, ev := range ents {
								e := pnstm.Load(c, ev)
								if regionOf(e) != r {
									continue
								}
								// Leave the old cell, enter the next one.
								old := at(e.x, e.y)
								oc := pnstm.Load(c, old)
								oc.Occupants--
								pnstm.Store(c, old, oc)
								e.x += rr.Intn(3) - 1
								e.y += rr.Intn(3) - 1
								e.x &= worldSize - 1
								e.y &= worldSize - 1
								nw := at(e.x, e.y)
								nc := pnstm.Load(c, nw)
								nc.Occupants++
								nc.Damage += rr.Intn(3)
								pnstm.Store(c, nw, nc)
								pnstm.Store(c, ev, e)
							}
							return nil
						})
					}
				}
				c.Parallel(fns...)
				return nil
			})
			if err != nil {
				return
			}
			moves++
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// World consistency: net occupancy must equal the entity count.
	occ := 0
	for _, cv := range grid {
		occ += cv.Peek().Occupants
	}
	st := rt.Stats()
	fmt.Printf("%d ticks (%d region txs) in %v\n",
		moves, moves*regions*regions, time.Since(start).Round(time.Millisecond))
	fmt.Printf("net occupancy %d (want %d)\n", occ, entities)
	fmt.Printf("commits=%d aborts=%d conflicts=%d spin-saves=%d escalations=%d\n",
		st.Committed, st.Aborted, st.Conflicts, st.SpinSaves, st.Escalations)
	if occ != entities {
		log.Fatal("world corrupted: occupancy mismatch")
	}
	fmt.Println("world consistent")
}
