// Benchmarks regenerating the paper's evaluation (one per figure) plus the
// ablations listed in DESIGN.md. The figure benchmarks scale the paper's
// think time down (D10) so `go test -bench` stays tractable; run
// cmd/pnstm-bench -paperscale for published parameters.
package pnstm_test

import (
	"fmt"
	"testing"
	"time"

	"pnstm"
	"pnstm/internal/bench"
	"pnstm/internal/chainstm"
)

// ---------------------------------------------------------------------------
// Figure 6: speedup of parallel over serial nesting.
// ---------------------------------------------------------------------------

func BenchmarkFig6SpeedupVsSerialNesting(b *testing.B) {
	const think = 500 * time.Microsecond
	const objects = 512
	for _, n := range []int{4, 16, 64} {
		maxD := 0
		for 1<<uint(maxD+1) <= n {
			maxD++
		}
		for d := 0; d <= maxD; d += 2 {
			b.Run(fmt.Sprintf("N=%d/D=%d", n, d), func(b *testing.B) {
				serial, err := bench.RunSynthetic(bench.SyntheticConfig{
					Leaves: n, Depth: 0, Objects: objects, ThinkMax: think,
					Workers: 1, Serial: true, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var wall time.Duration
				for i := 0; i < b.N; i++ {
					res, err := bench.RunSynthetic(bench.SyntheticConfig{
						Leaves: n, Depth: d, Objects: objects, ThinkMax: think,
						Workers: 32, Seed: int64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					wall += res.Wall
				}
				b.StopTimer()
				mean := wall / time.Duration(b.N)
				b.ReportMetric(float64(serial.Wall)/float64(mean), "speedup")
				b.ReportMetric(float64(mean.Microseconds()), "wall-µs")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 7: per-transaction handling time vs. nesting depth.
// ---------------------------------------------------------------------------

func BenchmarkFig7TxTimeVsDepth(b *testing.B) {
	const n = 64
	const objects = 1024
	var base float64
	for _, d := range []int{0, 2, 4, 6} {
		b.Run(fmt.Sprintf("N=%d/D=%d", n, d), func(b *testing.B) {
			var tx time.Duration
			for i := 0; i < b.N; i++ {
				res, err := bench.RunSynthetic(bench.SyntheticConfig{
					Leaves: n, Depth: d, Objects: objects,
					ThinkMax: 200 * time.Microsecond, Workers: 32, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				tx += res.MeanTxTime()
			}
			mean := float64(tx.Nanoseconds()) / float64(b.N)
			if d == 0 {
				base = mean
			}
			b.ReportMetric(mean, "txtime-ns")
			if base > 0 {
				b.ReportMetric(mean/base, "vs-depth0")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// A1: O(1) bit-vector ancestor query vs. O(depth) chain walk.
// ---------------------------------------------------------------------------

func BenchmarkAncestorQueryBitVector(b *testing.B) {
	// The conflict test the STM runs on every access, at "depth" 32:
	// a 33-bit ancestor set against a 34-bit one. Depth cannot matter —
	// it is two ALU ops either way — which is the point.
	rt, err := pnstm.New(pnstm.Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	v := pnstm.NewTVar(0)
	if err := rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			pnstm.Store(c, v, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pnstm.Store(c, v, i) // in-place fast path: entry test per access
			}
			return nil
		})
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAncestorQueryChainWalk(b *testing.B) {
	// The pure ancestor query at depth d: is the root an ancestor of the
	// tip? This is what a parent-pointer STM answers on every access to an
	// object owned by a distant ancestor.
	for _, depth := range []int{1, 8, 32, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			root := chainstm.Begin(nil)
			cur := root
			for d := 0; d < depth; d++ {
				cur = chainstm.Begin(cur)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !chainstm.IsAncestor(root, cur) {
					b.Fatal("broken chain")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// A2: begin+commit cost vs. depth — flat here, linear for the baseline.
// ---------------------------------------------------------------------------

func BenchmarkDepthScalingBeginCommitPNSTM(b *testing.B) {
	for _, depth := range []int{0, 8, 32, 96} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			rt, err := pnstm.New(pnstm.Config{Workers: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			if err := rt.Run(func(c *pnstm.Ctx) {
				// Build a chain of enclosing transactions, then measure
				// begin+commit of empty transactions at that depth.
				var nest func(d int)
				nest = func(d int) {
					if d == 0 {
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							_ = c.Atomic(func(*pnstm.Ctx) error { return nil })
						}
						b.StopTimer()
						return
					}
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						nest(d - 1)
						return nil
					})
				}
				nest(depth)
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkDepthScalingAccessPNSTM(b *testing.B) {
	// The bit-vector counterpart of BenchmarkDepthScalingAccessChain: a
	// leaf transaction at depth d accesses an object the root wrote. The
	// ancestor test is one subset check whatever the depth. Each iteration
	// aborts (user error) to mirror the chain bench's ownership reset.
	for _, depth := range []int{0, 8, 32, 96} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			rt, err := pnstm.New(pnstm.Config{Workers: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			v := pnstm.NewTVar(0)
			sentinel := fmt.Errorf("measured abort")
			if err := rt.Run(func(c *pnstm.Ctx) {
				_ = c.Atomic(func(c *pnstm.Ctx) error {
					pnstm.Store(c, v, -1)
					var nest func(d int)
					nest = func(d int) {
						if d == 0 {
							b.ResetTimer()
							for i := 0; i < b.N; i++ {
								_ = c.Atomic(func(c *pnstm.Ctx) error {
									pnstm.Store(c, v, i)
									return sentinel
								})
							}
							b.StopTimer()
							return
						}
						_ = c.Atomic(func(c *pnstm.Ctx) error {
							nest(d - 1)
							return nil
						})
					}
					nest(depth)
					return nil
				})
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkDepthScalingAccessChain(b *testing.B) {
	// Per-leaf transaction cost when the accessed object is owned by the
	// root of a depth-d chain: every access walks the whole chain. The
	// abort restores root ownership so each iteration pays full depth,
	// exactly the steady state of a long-lived enclosing transaction.
	for _, depth := range []int{0, 8, 32, 96} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			o := chainstm.NewObj(0)
			root := chainstm.Begin(nil)
			if err := root.Store(o, -1); err != nil {
				b.Fatal(err)
			}
			cur := root
			for d := 0; d < depth; d++ {
				cur = chainstm.Begin(cur)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := chainstm.Begin(cur)
				if err := tx.Store(o, i); err != nil {
					b.Fatal(err)
				}
				if err := tx.Abort(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// A3: comDesc — parent access latency right after children commit, with
// publication stalled.
// ---------------------------------------------------------------------------

func BenchmarkCase2ParentAccessAfterChildren(b *testing.B) {
	rt, err := pnstm.New(pnstm.Config{Workers: 4, PublisherStartPaused: true})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	v := pnstm.NewTVar(0)
	if err := rt.Run(func(c *pnstm.Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.Atomic(func(c *pnstm.Ctx) error {
				c.Parallel(
					func(c *pnstm.Ctx) {
						_ = c.Atomic(func(c *pnstm.Ctx) error {
							pnstm.Store(c, v, i)
							return nil
						})
					},
					func(c *pnstm.Ctx) {},
				)
				// Case 2: immediate parent access to the child's object;
				// must not wait for the (paused) publisher.
				pnstm.Store(c, v, pnstm.Load(c, v)+1)
				return nil
			})
			// The measured access is done; recycle bitnums manually so the
			// next iteration can fork (a paused publisher never frees
			// them). This publishes strictly after the access, so every
			// iteration's parent access runs inside the stale window.
			rt.Publisher().StepOnce()
		}
		b.StopTimer()
	}); err != nil {
		b.Fatal(err)
	}
	st := rt.Stats()
	b.ReportMetric(float64(st.Aborted)/float64(b.N), "aborts/op")
}

// ---------------------------------------------------------------------------
// A4: lazy-publication latency — commit-to-visible time.
// ---------------------------------------------------------------------------

func BenchmarkPublicationLatency(b *testing.B) {
	rt, err := pnstm.New(pnstm.Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	v := pnstm.NewTVar(0)
	var wait time.Duration
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *pnstm.Ctx) {
			_ = c.Atomic(func(c *pnstm.Ctx) error {
				pnstm.Store(c, v, i)
				return nil
			})
		}); err != nil {
			b.Fatal(err)
		}
		// A fresh root transaction by another lineage conflicts until the
		// commit above is published; time how long that takes.
		start := time.Now()
		if err := rt.Run(func(c *pnstm.Ctx) {
			_ = c.Atomic(func(c *pnstm.Ctx) error {
				pnstm.Store(c, v, -i)
				return nil
			})
		}); err != nil {
			b.Fatal(err)
		}
		wait += time.Since(start)
	}
	b.ReportMetric(float64(wait.Nanoseconds())/float64(b.N), "visible-ns")
}

// ---------------------------------------------------------------------------
// A5: unbounded trees over bounded bitnums — deep chains on a tiny space.
// ---------------------------------------------------------------------------

func BenchmarkDeepTreeTinyBitnumSpace(b *testing.B) {
	rt, err := pnstm.New(pnstm.Config{Workers: 2}) // N = 4 bitnums
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	v := pnstm.NewTVar(0)
	const depth = 64
	var rec func(c *pnstm.Ctx, d int)
	rec = func(c *pnstm.Ctx, d int) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			pnstm.Store(c, v, d)
			if d > 0 {
				c.Parallel(func(c *pnstm.Ctx) { rec(c, d-1) })
			}
			return nil
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(c *pnstm.Ctx) { rec(c, depth) }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(depth), "depth")
}

// ---------------------------------------------------------------------------
// A6: dispatch-order ablation — FIFO (paper) vs LIFO global queue.
// ---------------------------------------------------------------------------

func BenchmarkQueueDispatchOrder(b *testing.B) {
	for _, lifo := range []bool{false, true} {
		name := "FIFO"
		if lifo {
			name = "LIFO"
		}
		b.Run(name, func(b *testing.B) {
			rt, err := pnstm.New(pnstm.Config{Workers: 8, LIFODispatch: lifo})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			vars := make([]*pnstm.TVar[int], 64)
			for i := range vars {
				vars[i] = pnstm.NewTVar(0)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.Run(func(c *pnstm.Ctx) {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						fns := make([]func(*pnstm.Ctx), len(vars))
						for k := range fns {
							k := k
							fns[k] = func(c *pnstm.Ctx) {
								_ = c.Atomic(func(c *pnstm.Ctx) error {
									pnstm.Store(c, vars[k], i)
									return nil
								})
							}
						}
						c.Parallel(fns...)
						return nil
					})
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// stmlib structure workloads: parallel-nested bulk operations vs. the
// serial-nesting baseline, per workload family (map-heavy,
// producer/consumer, hot-counter).
// ---------------------------------------------------------------------------

func benchStructure(b *testing.B, workload string, children, span int) {
	base := bench.StructureConfig{
		Workload: workload,
		Workers:  8,
		Rounds:   2,
		Children: children,
		Span:     span,
	}
	var serialWall time.Duration
	for _, serial := range []bool{true, false} {
		name := "parallel"
		if serial {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			var wall time.Duration
			var ops int
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.Serial = serial
				cfg.Seed = int64(i + 1)
				res, err := bench.RunStructure(cfg)
				if err != nil {
					b.Fatal(err)
				}
				wall += res.Wall
				ops = res.Ops
			}
			mean := wall / time.Duration(b.N)
			b.ReportMetric(float64(ops)/mean.Seconds(), "structops/s")
			if serial {
				serialWall = mean
			} else if serialWall > 0 {
				b.ReportMetric(float64(serialWall)/float64(mean), "speedup-vs-serial")
			}
		})
	}
}

// BenchmarkStructMapBulk: disjoint point writes from parallel children
// plus whole-map BulkUpdate/Len — the bucket-group fan-out path.
func BenchmarkStructMapBulk(b *testing.B) { benchStructure(b, "map", 8, 128) }

// BenchmarkStructQueueFanIn: per-producer queues filled in parallel, then
// fan-in consumer transactions popping from every queue at once.
func BenchmarkStructQueueFanIn(b *testing.B) { benchStructure(b, "queue", 8, 64) }

// BenchmarkStructHotCounter: striped counter hammered by parallel
// children with a parallel-nested Sum per round.
func BenchmarkStructHotCounter(b *testing.B) { benchStructure(b, "counter", 8, 256) }

// ---------------------------------------------------------------------------
// Micro-benchmarks: raw operation costs.
// ---------------------------------------------------------------------------

func BenchmarkUncontendedStore(b *testing.B) {
	rt, err := pnstm.New(pnstm.Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	v := pnstm.NewTVar(0)
	if err := rt.Run(func(c *pnstm.Ctx) {
		_ = c.Atomic(func(c *pnstm.Ctx) error {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pnstm.Store(c, v, i)
			}
			return nil
		})
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEmptyTransaction(b *testing.B) {
	rt, err := pnstm.New(pnstm.Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Run(func(c *pnstm.Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.Atomic(func(*pnstm.Ctx) error { return nil })
		}
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkForkJoinOverhead(b *testing.B) {
	rt, err := pnstm.New(pnstm.Config{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Run(func(c *pnstm.Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Parallel(func(*pnstm.Ctx) {}, func(*pnstm.Ctx) {})
		}
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkContendedCounter(b *testing.B) {
	rt, err := pnstm.New(pnstm.Config{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	v := pnstm.NewTVar(0)
	b.ResetTimer()
	if err := rt.Run(func(c *pnstm.Ctx) {
		fns := make([]func(*pnstm.Ctx), 4)
		per := b.N/len(fns) + 1
		for i := range fns {
			fns[i] = func(c *pnstm.Ctx) {
				for k := 0; k < per; k++ {
					_ = c.Atomic(func(c *pnstm.Ctx) error {
						pnstm.Update(c, v, func(x int) int { return x + 1 })
						return nil
					})
				}
			}
		}
		c.Parallel(fns...)
	}); err != nil {
		b.Fatal(err)
	}
}
