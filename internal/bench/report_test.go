package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pnstm"
)

func TestReportWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := pnstm.Stats{Begun: 10, Committed: 8, Aborted: 2}
	r := &Report{
		Name:    "unit test/report",
		Kind:    "workload",
		Config:  map[string]any{"workers": 4},
		Metrics: map[string]float64{"ops_per_sec": 123.5},
		Stats:   &st,
		Notes:   []string{"invariant ok"},
	}
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_unit-test-report.json"); path != want {
		t.Errorf("path = %q want %q", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != r.Name || back.Kind != "workload" {
		t.Errorf("round trip lost identity: %+v", back)
	}
	if back.Metrics["ops_per_sec"] != 123.5 {
		t.Errorf("metrics = %v", back.Metrics)
	}
	if back.Stats == nil || back.Stats.Aborted != 2 {
		t.Errorf("stats = %+v", back.Stats)
	}
	if back.Time == "" {
		t.Error("missing timestamp")
	}
}

func TestReportNeedsName(t *testing.T) {
	if _, err := (&Report{}).WriteFile(t.TempDir()); err == nil {
		t.Fatal("expected error for nameless report")
	}
}

func TestLatencyMetrics(t *testing.T) {
	if got := LatencyMetrics(nil); len(got) != 0 {
		t.Errorf("empty input → %v", got)
	}
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(100-i) * time.Microsecond // reversed: forces the sort
	}
	m := LatencyMetrics(samples)
	checks := map[string]float64{
		"latency_p50_us":  50,
		"latency_p90_us":  90,
		"latency_p99_us":  99,
		"latency_max_us":  100,
		"latency_mean_us": 50, // mean of 1..100 is 50.5, integer-truncated by the Duration divide
	}
	for k, want := range checks {
		got, ok := m[k]
		if !ok {
			t.Errorf("missing %s", k)
			continue
		}
		if got < want-1.5 || got > want+1.5 {
			t.Errorf("%s = %v want ≈%v", k, got, want)
		}
	}
}

func TestStatsMetricsAbortRatio(t *testing.T) {
	m := StatsMetrics(pnstm.Stats{Begun: 20, Aborted: 5})
	if m["abort_ratio"] != 0.25 {
		t.Errorf("abort_ratio = %v want 0.25", m["abort_ratio"])
	}
	if StatsMetrics(pnstm.Stats{})["abort_ratio"] != 0 {
		t.Error("zero stats should have zero abort ratio")
	}
}

func TestPersistenceMetrics(t *testing.T) {
	m := PersistenceMetrics(1000, 800, 400)
	if m["wal_retained_ratio"] != 0.8 {
		t.Errorf("wal_retained_ratio = %v want 0.8", m["wal_retained_ratio"])
	}
	if m["durable_retained_ratio"] != 0.4 {
		t.Errorf("durable_retained_ratio = %v want 0.4", m["durable_retained_ratio"])
	}
	if m["fsync_retained_ratio"] != 0.5 {
		t.Errorf("fsync_retained_ratio = %v want 0.5", m["fsync_retained_ratio"])
	}
	// Zero baselines must not divide.
	z := PersistenceMetrics(0, 0, 100)
	for _, k := range []string{"wal_retained_ratio", "durable_retained_ratio", "fsync_retained_ratio"} {
		if _, ok := z[k]; ok {
			t.Errorf("ratio %s derived from zero baseline", k)
		}
	}
}

func TestWorkloadReportShape(t *testing.T) {
	cfg := StructureConfig{Workload: "map", Workers: 4, Rounds: 2, Children: 2, Span: 8}
	ser := StructureResult{Wall: 2 * time.Millisecond, Ops: 100}
	par := StructureResult{Wall: time.Millisecond, Ops: 100, Stats: pnstm.Stats{Begun: 4, Committed: 4}}
	r := WorkloadReport(cfg, ser, par)
	if r.Name != "workload-map" || r.Kind != "workload" {
		t.Errorf("identity: %+v", r)
	}
	if got := r.Metrics["speedup_ratio"]; got != 2 {
		t.Errorf("speedup = %v want 2", got)
	}
	if r.Metrics["parallel_ops_per_sec"] == 0 || r.Stats == nil {
		t.Errorf("incomplete report: %+v", r)
	}
}
