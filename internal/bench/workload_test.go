package bench

import (
	"strings"
	"testing"
	"time"
)

func TestSyntheticConfigValidation(t *testing.T) {
	if _, err := RunSynthetic(SyntheticConfig{Leaves: 0}); err == nil {
		t.Fatal("Leaves=0 accepted")
	}
	if _, err := RunSynthetic(SyntheticConfig{Leaves: 4, Depth: 3}); err == nil {
		t.Fatal("2^D > N accepted")
	}
	if _, err := RunSynthetic(SyntheticConfig{Leaves: 4, ThinkMax: -1}); err == nil {
		t.Fatal("negative think accepted")
	}
}

func TestSyntheticSmallRunParallel(t *testing.T) {
	res, err := RunSynthetic(SyntheticConfig{
		Leaves: 8, Depth: 1, Objects: 64, ThinkMax: 0, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TxTimes) != 8 {
		t.Fatalf("TxTimes = %d entries", len(res.TxTimes))
	}
	for i, d := range res.TxTimes {
		if d <= 0 {
			t.Fatalf("leaf %d has no recorded time", i)
		}
	}
	// 8 leaves + 2 internal nodes + 1 root transaction.
	if res.Stats.Committed < 11 {
		t.Fatalf("committed %d transactions", res.Stats.Committed)
	}
	if res.MeanTxTime() <= 0 {
		t.Fatal("MeanTxTime = 0")
	}
}

func TestSyntheticSerialMatchesParallelEffects(t *testing.T) {
	// Both modes must complete and touch every object; the serial run
	// must not use the scheduler.
	ser, err := RunSynthetic(SyntheticConfig{
		Leaves: 4, Depth: 1, Objects: 32, Workers: 1, Serial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ser.Stats.Dispatches != 0 {
		t.Fatalf("serial run dispatched blocks: %+v", ser.Stats)
	}
	par, err := RunSynthetic(SyntheticConfig{
		Leaves: 4, Depth: 1, Objects: 32, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.Dispatches == 0 {
		t.Fatal("parallel run did not dispatch")
	}
}

func TestSyntheticDegenerateSingleLeaf(t *testing.T) {
	res, err := RunSynthetic(SyntheticConfig{Leaves: 1, Depth: 0, Objects: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TxTimes) != 1 || res.TxTimes[0] <= 0 {
		t.Fatalf("TxTimes = %v", res.TxTimes)
	}
}

func TestSyntheticThinkTimeDominatesSerialWall(t *testing.T) {
	think := 2 * time.Millisecond
	res, err := RunSynthetic(SyntheticConfig{
		Leaves: 8, Depth: 0, Objects: 8, ThinkMax: think, Workers: 1, Serial: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Serial wall must be at least the sum of think times, which is ~8 *
	// think/2 on average; use a loose lower bound.
	if res.Wall < 4*time.Millisecond {
		t.Fatalf("serial wall %v too small for sleeping leaves", res.Wall)
	}
}

func TestDepthsFor(t *testing.T) {
	cases := []struct{ n, max, want int }{
		{1, 6, 0}, {2, 6, 1}, {4, 6, 2}, {64, 6, 6}, {64, 3, 3}, {8, 6, 3},
	}
	for _, c := range cases {
		if got := depthsFor(c.n, c.max); got != c.want {
			t.Errorf("depthsFor(%d,%d) = %d, want %d", c.n, c.max, got, c.want)
		}
	}
}

func TestFig6SmallGrid(t *testing.T) {
	fig, err := Fig6(FigureConfig{
		LeafCounts: []int{1, 4},
		MaxDepth:   2,
		Objects:    32,
		ThinkMax:   200 * time.Microsecond,
		Workers:    4,
		Repeats:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Grid) != 2 {
		t.Fatalf("rows = %d", len(fig.Grid))
	}
	// N=1: only D=0 valid.
	if !fig.Grid[0][0].Valid || fig.Grid[0][1].Valid {
		t.Fatalf("N=1 validity wrong: %+v", fig.Grid[0])
	}
	// N=4: D=0..2 valid.
	for d := 0; d <= 2; d++ {
		if !fig.Grid[1][d].Valid {
			t.Fatalf("N=4 D=%d invalid", d)
		}
		if fig.Grid[1][d].Value <= 0 {
			t.Fatalf("speedup = %v", fig.Grid[1][d].Value)
		}
	}
	var sb strings.Builder
	fig.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "N\\D") {
		t.Fatalf("render output:\n%s", out)
	}
	sb.Reset()
	fig.RenderDetail(&sb)
	if !strings.Contains(sb.String(), "wall") {
		t.Fatalf("detail output:\n%s", sb.String())
	}
}

func TestFig7SmallGrid(t *testing.T) {
	fig, err := Fig7(FigureConfig{
		LeafCounts: []int{1, 4, 8},
		MaxDepth:   2,
		Objects:    64,
		ThinkMax:   0,
		Workers:    4,
		Repeats:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// N=1 dropped (paper starts Fig. 7 at N=2).
	if len(fig.Grid) != 2 {
		t.Fatalf("rows = %d", len(fig.Grid))
	}
	for _, row := range fig.Grid {
		if !row[0].Valid || row[0].Value != 1.0 {
			t.Fatalf("D=0 not normalized: %+v", row[0])
		}
	}
}
