package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pnstm"
)

// Report is a machine-readable benchmark summary. Every benchmark
// front end in the repo — cmd/pnstm-bench -json and cmd/pnstm-loadgen —
// funnels through this one encoder so that BENCH_*.json files are
// uniform and a perf trajectory can be assembled by globbing them.
type Report struct {
	// Name identifies the run ("workload-map", "loadgen-readmap", …) and
	// becomes part of the filename.
	Name string `json:"name"`

	// Kind groups reports of the same shape: "workload", "figure",
	// "loadgen".
	Kind string `json:"kind"`

	// Time is the wall-clock time of the run, stamped by WriteFile.
	Time string `json:"time"`

	// Config records the knobs the run was launched with.
	Config map[string]any `json:"config,omitempty"`

	// Metrics holds the scalar results: throughput, latency percentiles,
	// speedups, abort rates. Keys carry their unit as a suffix
	// ("_per_sec", "_us", "_ratio").
	Metrics map[string]float64 `json:"metrics"`

	// Stats is the runtime counter delta covering the measured interval,
	// when the front end has one.
	Stats *pnstm.Stats `json:"stats,omitempty"`

	// Notes carries free-form context lines (invariant checks, caveats).
	Notes []string `json:"notes,omitempty"`
}

// WriteFile stamps the report and writes it to dir as
// BENCH_<sanitized-name>.json, returning the full path. An existing file
// of the same name is overwritten (the trajectory is one file per run
// name per checkout, collected by CI as artifacts).
func (r *Report) WriteFile(dir string) (string, error) {
	if r.Name == "" {
		return "", fmt.Errorf("bench: report needs a name")
	}
	r.Time = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: encode report: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(dir, "BENCH_"+sanitizeName(r.Name)+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("bench: write report: %w", err)
	}
	return path, nil
}

// sanitizeName maps a run name onto the filename-safe alphabet.
func sanitizeName(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	return sb.String()
}

// LatencyMetrics reduces a latency sample set to the standard percentile
// metrics (microseconds): latency_p50_us, _p90_us, _p99_us, _max_us and
// latency_mean_us, plus latency_p99_ms — the same p99 in milliseconds,
// the key latency CEILINGS gate on (pnstm-benchgate -metric-ceiling).
// samples is sorted in place. Empty input yields an empty map.
func LatencyMetrics(samples []time.Duration) map[string]float64 {
	out := make(map[string]float64)
	if len(samples) == 0 {
		return out
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	out["latency_mean_us"] = us(sum / time.Duration(len(samples)))
	out["latency_p50_us"] = us(percentile(samples, 0.50))
	out["latency_p90_us"] = us(percentile(samples, 0.90))
	out["latency_p99_us"] = us(percentile(samples, 0.99))
	out["latency_p99_ms"] = out["latency_p99_us"] / 1000
	out["latency_max_us"] = us(samples[len(samples)-1])
	return out
}

// percentile returns the nearest-rank percentile of sorted samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// StatsMetrics folds a runtime counter delta into metric form, keeping
// the headline counters and the derived abort rate.
func StatsMetrics(st pnstm.Stats) map[string]float64 {
	return map[string]float64{
		"tx_begun":       float64(st.Begun),
		"tx_committed":   float64(st.Committed),
		"tx_aborted":     float64(st.Aborted),
		"tx_conflicts":   float64(st.Conflicts),
		"tx_escalations": float64(st.Escalations),
		"abort_ratio":    st.AbortRate(),
	}
}

// WorkloadReport renders one CompareStructure outcome as a Report.
func WorkloadReport(cfg StructureConfig, ser, par StructureResult) *Report {
	stats := par.Stats
	metrics := map[string]float64{
		"serial_ops_per_sec":   ser.OpsPerSec(),
		"parallel_ops_per_sec": par.OpsPerSec(),
		"speedup_ratio":        safeRatio(float64(ser.Wall), float64(par.Wall)),
		"ops":                  float64(par.Ops),
		"serial_wall_us":       float64(ser.Wall) / float64(time.Microsecond),
		"parallel_wall_us":     float64(par.Wall) / float64(time.Microsecond),
	}
	for k, v := range StatsMetrics(par.Stats) {
		metrics[k] = v
	}
	return &Report{
		Name: "workload-" + cfg.Workload,
		Kind: "workload",
		Config: map[string]any{
			"workload": cfg.Workload,
			"workers":  cfg.Workers,
			"rounds":   cfg.Rounds,
			"children": cfg.Children,
			"span":     cfg.Span,
			"buckets":  cfg.Buckets,
			"fanout":   cfg.Fanout,
			"seed":     cfg.Seed,
		},
		Metrics: metrics,
		Stats:   &stats,
	}
}

// FigureReport flattens a reproduced figure grid into a Report: one
// metric per valid (N, D) cell, keyed n<N>_d<D>.
func FigureReport(f *Figure, figNum int) *Report {
	metrics := make(map[string]float64)
	for _, row := range f.Grid {
		for _, cell := range row {
			if !cell.Valid {
				continue
			}
			metrics[fmt.Sprintf("n%d_d%d", cell.Leaves, cell.Depth)] = cell.Value
		}
	}
	return &Report{
		Name: fmt.Sprintf("figure-%d", figNum),
		Kind: "figure",
		Config: map[string]any{
			"objects":   f.Config.Objects,
			"think_max": f.Config.ThinkMax.String(),
			"workers":   f.Config.Workers,
			"repeats":   f.Config.Repeats,
			"seed":      f.Config.Seed,
		},
		Metrics: metrics,
	}
}

// PersistenceMetrics reduces a durability A/B — the same workload run
// against an in-memory server, a WAL server without fsync, and a WAL
// server with one fsync per group commit — to the standard overhead
// figures. Throughputs are ops/sec; a zero skips its derived ratios.
func PersistenceMetrics(memory, nofsync, fsync float64) map[string]float64 {
	m := map[string]float64{
		"memory_throughput_per_sec":  memory,
		"nofsync_throughput_per_sec": nofsync,
		"fsync_throughput_per_sec":   fsync,
	}
	// Ratios are "fraction of the faster mode's throughput retained":
	// 1.0 means free, 0.5 means half the throughput survives.
	if memory > 0 {
		m["wal_retained_ratio"] = nofsync / memory
		m["durable_retained_ratio"] = fsync / memory
	}
	if nofsync > 0 {
		m["fsync_retained_ratio"] = fsync / nofsync
	}
	return m
}

// safeRatio returns a/b, or 0 when b is 0.
func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
