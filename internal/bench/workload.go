// Package bench implements the paper's evaluation workload (§7) and the
// sweeps that regenerate its figures.
//
// The synthetic benchmark: a single top-level transaction T executes N
// leaf transactions Tl_i. Every leaf first sleeps for a uniformly random
// think time (the paper uses up to 2 s; we scale down by default, see
// DESIGN.md D10) and then writes K=2000 shared objects, the first half
// shared with leaf i−1 and the second half with leaf i+1. Leaves are
// organized in a binary tree of transactions D levels deep; each tree leaf
// runs N/2^D transactions in parallel. With D=0 all leaves are parallel
// children of the root transaction. The serial-nesting baseline runs the
// same leaves sequentially in one context.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"pnstm"
)

// SyntheticConfig parameterizes one run of the paper's benchmark.
type SyntheticConfig struct {
	Leaves   int           // N: total leaf transactions (power of two for clean trees)
	Depth    int           // D: binary-tree depth; 2^Depth must be <= Leaves
	Objects  int           // K: objects written per leaf (paper: 2000)
	ThinkMax time.Duration // upper bound of the uniform think time (paper: 2s)
	Workers  int           // worker slots P (paper: up to 32)
	Serial   bool          // serial-nesting baseline
	Seed     int64
}

func (c *SyntheticConfig) fillDefaults() error {
	if c.Leaves <= 0 {
		return fmt.Errorf("bench: Leaves must be positive")
	}
	if c.Depth < 0 || 1<<uint(c.Depth) > c.Leaves {
		return fmt.Errorf("bench: Depth %d too deep for %d leaves", c.Depth, c.Leaves)
	}
	if c.Objects <= 0 {
		c.Objects = 2000
	}
	if c.ThinkMax < 0 {
		return fmt.Errorf("bench: negative ThinkMax")
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// Result is the outcome of one synthetic run.
type Result struct {
	Wall    time.Duration   // end-to-end time of the top transaction
	TxTimes []time.Duration // per leaf: final (successful) attempt, think time excluded
	Stats   pnstm.Stats
}

// MeanTxTime returns the mean per-leaf transaction-handling time: begin +
// K accesses + commit of the successful attempt (the paper's Figure 7
// metric).
func (r Result) MeanTxTime() time.Duration {
	if len(r.TxTimes) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.TxTimes {
		sum += d
	}
	return sum / time.Duration(len(r.TxTimes))
}

// RunSynthetic executes the workload once and reports timings.
func RunSynthetic(cfg SyntheticConfig) (Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return Result{}, err
	}
	rt, err := pnstm.New(pnstm.Config{
		Workers: cfg.Workers,
		Serial:  cfg.Serial,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	defer rt.Close()

	// Shared object array with half-window overlap: leaf i writes objects
	// [i*stride, i*stride+K), so its first half is leaf i−1's second half
	// and vice versa (paper §7, property 2). The windows do NOT wrap
	// around: edge leaves have an unshared half, exactly as in the paper.
	// Wrapping would turn the leaf-adjacency graph into a ring, and since
	// entries stay owned by a leaf's ancestor chain until the whole
	// subtree commits, a ring of cross-subtree waits can deadlock; a chain
	// cannot (leaves acquire their windows in ascending order, so each
	// adjacent pair waits in at most one direction).
	stride := cfg.Objects / 2
	if stride == 0 {
		stride = 1
	}
	total := (cfg.Leaves-1)*stride + cfg.Objects
	objs := make([]*pnstm.TVar[int], total)
	for i := range objs {
		objs[i] = pnstm.NewTVar(0)
	}

	// Pre-drawn think times keep serial and parallel runs comparable and
	// reproducible (property 3: ~1s mean keeps conflicts rare).
	rng := rand.New(rand.NewSource(cfg.Seed))
	thinks := make([]time.Duration, cfg.Leaves)
	for i := range thinks {
		if cfg.ThinkMax > 0 {
			thinks[i] = time.Duration(rng.Int63n(int64(cfg.ThinkMax)))
		}
	}

	txTimes := make([]time.Duration, cfg.Leaves)

	leaf := func(id int) func(*pnstm.Ctx) {
		return func(c *pnstm.Ctx) {
			if thinks[id] > 0 {
				time.Sleep(thinks[id])
			}
			var attemptStart time.Time
			err := c.Atomic(func(c *pnstm.Ctx) error {
				attemptStart = time.Now()
				base := id * stride
				for k := 0; k < cfg.Objects; k++ {
					pnstm.Store(c, objs[base+k], id+1)
				}
				return nil
			})
			elapsed := time.Since(attemptStart)
			if err == nil {
				txTimes[id] = elapsed
			}
		}
	}

	// node builds the binary transaction tree: levels 1..Depth are
	// internal transactions, each tree leaf runs its share of Tl_i in
	// parallel.
	var node func(c *pnstm.Ctx, d, lo, hi int)
	node = func(c *pnstm.Ctx, d, lo, hi int) {
		err := c.Atomic(func(c *pnstm.Ctx) error {
			if d == 0 {
				fns := make([]func(*pnstm.Ctx), hi-lo)
				for i := lo; i < hi; i++ {
					fns[i-lo] = leaf(i)
				}
				c.Parallel(fns...)
				return nil
			}
			mid := (lo + hi) / 2
			c.Parallel(
				func(c *pnstm.Ctx) { node(c, d-1, lo, mid) },
				func(c *pnstm.Ctx) { node(c, d-1, mid, hi) },
			)
			return nil
		})
		if err != nil {
			panic(fmt.Sprintf("bench: tree node failed: %v", err))
		}
	}

	start := time.Now()
	err = rt.Run(func(c *pnstm.Ctx) {
		// The single top-level transaction T: with D=0 the leaves are its
		// direct parallel children.
		node(c, cfg.Depth, 0, cfg.Leaves)
	})
	wall := time.Since(start)
	if err != nil {
		return Result{}, err
	}

	// Sanity: every object must carry some leaf's mark.
	for i, o := range objs {
		if o.Peek() == 0 {
			return Result{}, fmt.Errorf("bench: object %d never written", i)
		}
	}
	return Result{Wall: wall, TxTimes: txTimes, Stats: rt.Stats()}, nil
}
