package bench

import (
	"fmt"
	"testing"
)

// TestStructureWorkloadsRun executes every workload family under both the
// serial baseline and the parallel runtime at a small size. The workloads
// self-check their final state, so a pass here is a correctness statement,
// not just "it did not crash".
func TestStructureWorkloadsRun(t *testing.T) {
	for _, w := range StructureWorkloads() {
		for _, serial := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/serial=%v", w, serial), func(t *testing.T) {
				res, err := RunStructure(StructureConfig{
					Workload: w,
					Workers:  4,
					Serial:   serial,
					Rounds:   3,
					Children: 4,
					Span:     16,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Ops == 0 {
					t.Fatal("no ops recorded")
				}
				if res.Wall <= 0 {
					t.Fatal("no wall time recorded")
				}
			})
		}
	}
}

func TestStructureConfigValidation(t *testing.T) {
	if _, err := RunStructure(StructureConfig{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCompareStructure(t *testing.T) {
	ser, par, err := CompareStructure(StructureConfig{
		Workload: "counter",
		Workers:  4,
		Rounds:   2,
		Children: 4,
		Span:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ser.Ops != par.Ops {
		t.Fatalf("op counts diverge: serial %d parallel %d", ser.Ops, par.Ops)
	}
	if ser.OpsPerSec() <= 0 || par.OpsPerSec() <= 0 {
		t.Fatal("throughput not recorded")
	}
}
