package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// FigureConfig parameterizes a figure sweep. The zero value plus
// fillDefaults reproduces the paper's parameter grid at a 1000× shorter
// think time (DESIGN.md D10).
type FigureConfig struct {
	LeafCounts []int         // x-axis: total leaf transactions N (paper: 1..64)
	MaxDepth   int           // deepest series D (paper: 6)
	Objects    int           // writes per leaf (paper: 2000)
	ThinkMax   time.Duration // paper: 2s; default 20ms (see below)
	Workers    int           // paper: 32
	Repeats    int           // paper: 10; default 3
	Seed       int64
}

func (c *FigureConfig) fillDefaults() {
	if len(c.LeafCounts) == 0 {
		c.LeafCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.Objects <= 0 {
		c.Objects = 2000
	}
	if c.ThinkMax == 0 {
		// What shapes Figure 6 is the think:work ratio, not the absolute
		// think time: the paper's leaves sleep up to 2s and then do ~1ms
		// of writes (ratio ~1000:1), so speedup comes from overlapping
		// sleeps. 20ms preserves think ≫ work on small hosts (a 2000-write
		// burst costs ~0.5ms) while keeping a full sweep under a minute;
		// -paperscale in cmd/pnstm-bench restores the published 2s.
		c.ThinkMax = 20 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Cell is one (N, D) measurement.
type Cell struct {
	Leaves  int
	Depth   int
	Valid   bool          // false when 2^D > N (the paper omits these points)
	Value   float64       // speedup (Fig. 6) or normalized tx time (Fig. 7)
	Wall    time.Duration // mean parallel wall time
	TxTime  time.Duration // mean per-tx handling time
	Serial  time.Duration // mean serial wall time (Fig. 6 only)
	Aborted uint64        // aborts across repeats (diagnostics)
}

// Figure holds one reproduced figure as a (N × D) grid.
type Figure struct {
	Name   string
	Config FigureConfig
	Grid   [][]Cell // [leafIdx][depth]
}

// depthsFor lists the valid depths for a leaf count.
func depthsFor(n, maxDepth int) int {
	d := 0
	for d < maxDepth && 1<<uint(d+1) <= n {
		d++
	}
	return d // deepest valid depth
}

// measure runs the synthetic workload Repeats times and averages.
func measure(cfg SyntheticConfig, repeats int) (wall, tx time.Duration, aborted uint64, err error) {
	var wallSum, txSum time.Duration
	for r := 0; r < repeats; r++ {
		cfg.Seed = cfg.Seed*31 + int64(r) + 1
		res, e := RunSynthetic(cfg)
		if e != nil {
			return 0, 0, 0, e
		}
		wallSum += res.Wall
		txSum += res.MeanTxTime()
		aborted += res.Stats.Aborted
	}
	return wallSum / time.Duration(repeats), txSum / time.Duration(repeats), aborted, nil
}

// Fig6 reproduces Figure 6: speedup of parallel over serial nesting for
// every (N, D) point of the paper's grid.
func Fig6(cfg FigureConfig) (*Figure, error) {
	cfg.fillDefaults()
	fig := &Figure{Name: "Figure 6: speedup of parallel vs. serial nesting", Config: cfg}
	for _, n := range cfg.LeafCounts {
		serialWall, _, _, err := measure(SyntheticConfig{
			Leaves: n, Depth: 0, Objects: cfg.Objects,
			ThinkMax: cfg.ThinkMax, Workers: 1, Serial: true, Seed: cfg.Seed,
		}, cfg.Repeats)
		if err != nil {
			return nil, err
		}
		row := make([]Cell, cfg.MaxDepth+1)
		maxD := depthsFor(n, cfg.MaxDepth)
		for d := 0; d <= cfg.MaxDepth; d++ {
			cell := Cell{Leaves: n, Depth: d}
			if d <= maxD {
				wall, tx, ab, err := measure(SyntheticConfig{
					Leaves: n, Depth: d, Objects: cfg.Objects,
					ThinkMax: cfg.ThinkMax, Workers: cfg.Workers, Seed: cfg.Seed,
				}, cfg.Repeats)
				if err != nil {
					return nil, err
				}
				cell.Valid = true
				cell.Wall = wall
				cell.TxTime = tx
				cell.Serial = serialWall
				cell.Aborted = ab
				cell.Value = float64(serialWall) / float64(wall)
			}
			row[d] = cell
		}
		fig.Grid = append(fig.Grid, row)
	}
	return fig, nil
}

// Fig7 reproduces Figure 7: the mean time to begin + access + commit a
// successful leaf transaction, normalized to the D=0 value of the same N.
// The paper's claim is that the series are flat in D.
func Fig7(cfg FigureConfig) (*Figure, error) {
	cfg.fillDefaults()
	// The paper's Figure 7 starts at N=2.
	counts := make([]int, 0, len(cfg.LeafCounts))
	for _, n := range cfg.LeafCounts {
		if n >= 2 {
			counts = append(counts, n)
		}
	}
	cfg.LeafCounts = counts
	fig := &Figure{Name: "Figure 7: per-transaction handling time vs. depth (normalized to D=0)", Config: cfg}
	for _, n := range cfg.LeafCounts {
		row := make([]Cell, cfg.MaxDepth+1)
		maxD := depthsFor(n, cfg.MaxDepth)
		var base time.Duration
		for d := 0; d <= cfg.MaxDepth; d++ {
			cell := Cell{Leaves: n, Depth: d}
			if d <= maxD {
				wall, tx, ab, err := measure(SyntheticConfig{
					Leaves: n, Depth: d, Objects: cfg.Objects,
					ThinkMax: cfg.ThinkMax, Workers: cfg.Workers, Seed: cfg.Seed,
				}, cfg.Repeats)
				if err != nil {
					return nil, err
				}
				if d == 0 {
					base = tx
				}
				cell.Valid = true
				cell.Wall = wall
				cell.TxTime = tx
				cell.Aborted = ab
				if base > 0 {
					cell.Value = float64(tx) / float64(base)
				}
			}
			row[d] = cell
		}
		fig.Grid = append(fig.Grid, row)
	}
	return fig, nil
}

// Render writes the figure as an aligned text table: one row per leaf
// count, one column per depth, mirroring the paper's plots.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", f.Name)
	fmt.Fprintf(w, "(K=%d objects/leaf, think<=%v, P=%d workers, %d repeats)\n",
		f.Config.Objects, f.Config.ThinkMax, f.Config.Workers, f.Config.Repeats)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s", "N\\D")
	for d := 0; d <= f.Config.MaxDepth; d++ {
		fmt.Fprintf(&sb, "%8d", d)
	}
	fmt.Fprintln(w, sb.String())
	for _, row := range f.Grid {
		sb.Reset()
		fmt.Fprintf(&sb, "%6d", row[0].Leaves)
		for _, c := range row {
			if !c.Valid {
				fmt.Fprintf(&sb, "%8s", "-")
				continue
			}
			fmt.Fprintf(&sb, "%8.2f", c.Value)
		}
		fmt.Fprintln(w, sb.String())
	}
}

// RenderDetail writes the raw wall/tx times behind the figure.
func (f *Figure) RenderDetail(w io.Writer) {
	fmt.Fprintf(w, "%s — detail\n", f.Name)
	fmt.Fprintf(w, "%6s %6s %12s %12s %12s %8s\n", "N", "D", "wall", "tx-time", "serial", "aborts")
	for _, row := range f.Grid {
		for _, c := range row {
			if !c.Valid {
				continue
			}
			fmt.Fprintf(w, "%6d %6d %12v %12v %12v %8d\n",
				c.Leaves, c.Depth, c.Wall.Round(time.Microsecond),
				c.TxTime.Round(time.Microsecond), c.Serial.Round(time.Microsecond), c.Aborted)
		}
	}
}
