package bench

import (
	"fmt"
	"time"

	"pnstm"
	"pnstm/stmlib"
)

// Structure workloads: three families exercising the stmlib transactional
// data structures, each comparing parallel-nested bulk operations against
// the serial-nesting baseline (Config.Serial).
//
//   - "map": parallel point writes to disjoint key ranges of one TMap,
//     followed by whole-map bulk operations (BulkUpdate + Len) that fork
//     one nested child per bucket group.
//   - "queue": per-producer TQueues filled by parallel children, then
//     fan-in consumer transactions that atomically pop one element from
//     every queue via parallel nested pops.
//   - "counter": parallel children hammering a striped TCounter, with a
//     parallel-nested Sum per round.
//
// Every round is one top-level transaction, so under Serial the same
// program runs with inline sequential children — the paper's baseline.

// StructureConfig parameterizes one structure-workload run.
type StructureConfig struct {
	Workload string // "map", "queue" or "counter"
	Workers  int    // worker slots P (parallel runs)
	Serial   bool   // serial-nesting baseline
	Rounds   int    // top-level transactions
	Children int    // parallel children per round
	Span     int    // per-child operations per round
	Buckets  int    // map buckets / counter stripes (default 64 / 8)
	Fanout   int    // bulk-operation fanout (default stmlib.DefaultFanout)
	Seed     int64
}

func (c *StructureConfig) fillDefaults() error {
	switch c.Workload {
	case "map", "queue", "counter":
	default:
		return fmt.Errorf("bench: unknown structure workload %q", c.Workload)
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
	if c.Children <= 0 {
		c.Children = 8
	}
	if c.Span <= 0 {
		c.Span = 64
	}
	if c.Buckets <= 0 {
		if c.Workload == "counter" {
			c.Buckets = 8
		} else {
			c.Buckets = 64
		}
	}
	if c.Fanout <= 0 {
		c.Fanout = stmlib.DefaultFanout
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// StructureResult is the outcome of one structure-workload run.
type StructureResult struct {
	Wall  time.Duration // end-to-end time across all rounds
	Ops   int           // logical structure operations performed
	Stats pnstm.Stats
}

// OpsPerSec returns the throughput of the run.
func (r StructureResult) OpsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Wall.Seconds()
}

// RunStructure executes one structure workload and reports timings. The
// workload's final state is checked against the closed-form expectation;
// a mismatch is returned as an error (the benchmark doubles as an
// integration test).
func RunStructure(cfg StructureConfig) (StructureResult, error) {
	if err := cfg.fillDefaults(); err != nil {
		return StructureResult{}, err
	}
	rt, err := pnstm.New(pnstm.Config{
		Workers: cfg.Workers,
		Serial:  cfg.Serial,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return StructureResult{}, err
	}
	defer rt.Close()

	var (
		ops     int
		wall    time.Duration
		runErr  error
		started = time.Now()
	)
	switch cfg.Workload {
	case "map":
		ops, runErr = runMapHeavy(rt, cfg)
	case "queue":
		ops, runErr = runProducerConsumer(rt, cfg)
	case "counter":
		ops, runErr = runHotCounter(rt, cfg)
	}
	wall = time.Since(started)
	if runErr != nil {
		return StructureResult{}, runErr
	}
	return StructureResult{Wall: wall, Ops: ops, Stats: rt.Stats()}, nil
}

// runMapHeavy: each round, Children parallel children write Span keys
// each into disjoint ranges, then the round transaction runs a bulk
// increment over every key and a parallel Len.
func runMapHeavy(rt *pnstm.Runtime, cfg StructureConfig) (int, error) {
	m := stmlib.NewTMapFanout[int, int](cfg.Buckets, cfg.Fanout)
	total := cfg.Children * cfg.Span
	allKeys := make([]int, total)
	for i := range allKeys {
		allKeys[i] = i
	}
	ops := 0
	for r := 0; r < cfg.Rounds; r++ {
		r := r
		var roundErr error
		err := rt.Run(func(c *pnstm.Ctx) {
			roundErr = c.Atomic(func(c *pnstm.Ctx) error {
				fns := make([]func(*pnstm.Ctx), cfg.Children)
				for w := 0; w < cfg.Children; w++ {
					w := w
					fns[w] = func(c *pnstm.Ctx) {
						_ = c.Atomic(func(c *pnstm.Ctx) error {
							base := w * cfg.Span
							for i := 0; i < cfg.Span; i++ {
								m.Put(c, base+i, r)
							}
							return nil
						})
					}
				}
				c.Parallel(fns...)
				// Bulk phase: whole-map update plus a parallel count.
				m.BulkUpdate(c, allKeys, func(k, v int, ok bool) (int, bool) {
					return v + 1, true
				})
				if n := m.Len(c); n != total {
					return fmt.Errorf("bench: map len %d want %d", n, total)
				}
				return nil
			})
		})
		if err == nil {
			err = roundErr
		}
		if err != nil {
			return 0, err
		}
		ops += total /*puts*/ + total /*bulk*/ + 1 /*len*/
	}
	// Final state check: every key saw the last round's put plus one bulk
	// increment.
	var bad error
	if err := rt.Run(func(c *pnstm.Ctx) {
		if v, ok := m.Get(c, 0); !ok || v != cfg.Rounds {
			bad = fmt.Errorf("bench: map[0] = %d,%v want %d", v, ok, cfg.Rounds)
		}
	}); err != nil {
		return 0, err
	}
	return ops, bad
}

// runProducerConsumer: Children producers each own a TQueue and push Span
// items in parallel; then Span fan-in consumer transactions each pop one
// element from every queue with parallel nested pops.
func runProducerConsumer(rt *pnstm.Runtime, cfg StructureConfig) (int, error) {
	queues := make([]*stmlib.TQueue[int], cfg.Children)
	for i := range queues {
		queues[i] = stmlib.NewTQueue[int]()
	}
	ops := 0
	for r := 0; r < cfg.Rounds; r++ {
		var roundErr error
		err := rt.Run(func(c *pnstm.Ctx) {
			// Produce burst: parallel children, one queue each.
			roundErr = c.Atomic(func(c *pnstm.Ctx) error {
				fns := make([]func(*pnstm.Ctx), cfg.Children)
				for w := 0; w < cfg.Children; w++ {
					w := w
					fns[w] = func(c *pnstm.Ctx) {
						_ = c.Atomic(func(c *pnstm.Ctx) error {
							for i := 0; i < cfg.Span; i++ {
								queues[w].Push(c, w*cfg.Span+i)
							}
							return nil
						})
					}
				}
				c.Parallel(fns...)
				return nil
			})
			if roundErr != nil {
				return
			}
			// Consume: Span fan-in transactions, each atomically popping one
			// element from every queue (parallel nested pops).
			for i := 0; i < cfg.Span; i++ {
				got := make([]int, cfg.Children)
				roundErr = c.Atomic(func(c *pnstm.Ctx) error {
					fns := make([]func(*pnstm.Ctx), cfg.Children)
					for w := 0; w < cfg.Children; w++ {
						w := w
						fns[w] = func(c *pnstm.Ctx) {
							_ = c.Atomic(func(c *pnstm.Ctx) error {
								v, ok := queues[w].Pop(c)
								if !ok {
									v = -1
								}
								got[w] = v
								return nil
							})
						}
					}
					c.Parallel(fns...)
					return nil
				})
				if roundErr != nil {
					return
				}
				for w, v := range got {
					if v != w*cfg.Span+i {
						roundErr = fmt.Errorf("bench: queue %d pop %d = %d want %d", w, i, v, w*cfg.Span+i)
						return
					}
				}
			}
		})
		if err == nil {
			err = roundErr
		}
		if err != nil {
			return 0, err
		}
		ops += 2 * cfg.Children * cfg.Span // pushes + pops
	}
	return ops, nil
}

// runHotCounter: Children parallel children each Add Span times per
// round; the round transaction finishes with a parallel-nested Sum.
func runHotCounter(rt *pnstm.Runtime, cfg StructureConfig) (int, error) {
	ctr := stmlib.NewTCounterFanout(cfg.Buckets, cfg.Fanout)
	ops := 0
	perRound := int64(cfg.Children * cfg.Span)
	for r := 0; r < cfg.Rounds; r++ {
		r := r
		var roundErr error
		err := rt.Run(func(c *pnstm.Ctx) {
			roundErr = c.Atomic(func(c *pnstm.Ctx) error {
				fns := make([]func(*pnstm.Ctx), cfg.Children)
				for w := 0; w < cfg.Children; w++ {
					fns[w] = func(c *pnstm.Ctx) {
						_ = c.Atomic(func(c *pnstm.Ctx) error {
							for i := 0; i < cfg.Span; i++ {
								ctr.Inc(c)
							}
							return nil
						})
					}
				}
				c.Parallel(fns...)
				if s := ctr.Sum(c); s != int64(r+1)*perRound {
					return fmt.Errorf("bench: counter sum %d want %d", s, int64(r+1)*perRound)
				}
				return nil
			})
		})
		if err == nil {
			err = roundErr
		}
		if err != nil {
			return 0, err
		}
		ops += cfg.Children*cfg.Span + 1
	}
	return ops, nil
}

// StructureWorkloads lists the available workload family names.
func StructureWorkloads() []string { return []string{"map", "queue", "counter"} }

// CompareStructure runs one workload under the serial baseline and the
// parallel runtime and returns (serial, parallel) results.
func CompareStructure(cfg StructureConfig) (StructureResult, StructureResult, error) {
	ser := cfg
	ser.Serial = true
	serRes, err := RunStructure(ser)
	if err != nil {
		return StructureResult{}, StructureResult{}, err
	}
	par := cfg
	par.Serial = false
	parRes, err := RunStructure(par)
	if err != nil {
		return StructureResult{}, StructureResult{}, err
	}
	return serRes, parRes, nil
}
