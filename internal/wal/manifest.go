package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The manifest pins a data directory's layout parameters. A sharded
// store keeps one log per shard under shard-<i>/ subdirectories, and
// the shard a structure lives in is a pure function of its name and the
// shard COUNT — so reopening a directory with a different count would
// route names to shards whose logs never heard of them, silently
// splitting structures. The manifest records the count at creation;
// openers must refuse a mismatch rather than serve divergent state.

// ManifestName is the manifest's filename inside the data directory. It
// matches neither the wal-*.log nor the snap-*.snap pattern, so segment
// scanning ignores it.
const ManifestName = "MANIFEST.json"

// ManifestVersion is the current manifest format version. History:
//
//	1 — sharded layout: per-shard logs under shard-<i>/, shard count
//	    recorded.
//	2 — cross-shard ordered commit: shard logs may carry GSN-stamped
//	    cross-shard records and snapshots a trailing GSN watermark. A
//	    version-1 reader would reject such a record as corrupt, so a
//	    directory that may hold them declares version 2; openers must
//	    refuse versions above the one they implement.
//
// Version-1 directories are upgraded in place on open (the v2 reader
// understands everything v1 wrote).
const ManifestVersion = 2

// Manifest records the store-level parameters a data directory was
// created with.
type Manifest struct {
	// Version is the manifest format version (see ManifestVersion).
	Version int `json:"version"`

	// Shards is the number of engine partitions the directory was
	// created for; shard i logs under shard-<i>/ (a single-shard store
	// logs in the directory root, the pre-sharding layout).
	Shards int `json:"shards"`
}

// ReadManifest loads dir's manifest. ok is false — with nil error —
// when the directory has none (a fresh directory, or one written by a
// pre-manifest version, which is single-shard by construction).
func ReadManifest(dir string) (m Manifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("wal: read manifest: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("wal: parse manifest: %w", err)
	}
	if m.Shards < 1 {
		return Manifest{}, false, fmt.Errorf("wal: manifest claims %d shards", m.Shards)
	}
	return m, true, nil
}

// WriteManifest durably stores m as dir's manifest (tmp + rename + dir
// sync, like snapshots: a crash mid-write leaves no torn manifest).
func WriteManifest(dir string, m Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: encode manifest: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(dir, ManifestName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: write manifest: %w", err)
	}
	syncDir(dir)
	return nil
}
