// Package wal is pnstmd's durability engine: a segmented append-only
// write-ahead log plus point-in-time snapshot files, both CRC32-checked
// and length-prefixed in the same framing style as server/protocol.go.
//
// The unit of logging is one *batch* — the server's group commit — so
// durability is amortized exactly like block dispatch: one record append
// and one fsync cover every request the batch carried (D17). Record
// payloads are opaque to this package; the server encodes the batch's
// logical requests and replays them through the same batching path on
// recovery.
//
// Crash-safety contract: a record is durable once Append returns with
// Fsync enabled. On Open, the log self-repairs — the torn or
// CRC-corrupt tail left by a crash is truncated back to the last valid
// record, and any later segments (unreachable past the break) are
// quarantined with a .corrupt suffix rather than replayed (D18). Replay
// therefore never errors on a damaged tail and never applies garbage:
// it yields exactly the durable prefix.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	segMagic  = "PNWAL001" // segment header: magic + u64 start LSN
	segHdrLen = 8 + 8

	// recHdrLen prefixes every record: u32 payload length + u32 CRC32
	// (IEEE) of the payload. The payload itself starts with the u64 LSN.
	recHdrLen = 4 + 4

	// maxRecord bounds a single record payload; a corrupt length prefix
	// larger than this is treated as a torn tail, not an allocation.
	maxRecord = 1 << 30

	// MaxBody is the largest body Append accepts (the payload minus its
	// LSN). Callers with more to log than this — e.g. a huge batch —
	// must split it across records; Append refuses rather than write a
	// record recovery would discard.
	MaxBody = maxRecord - 8
)

// Options configures Open.
type Options struct {
	// Dir is the data directory; created if missing. Segments are
	// wal-<firstLSN>.log, snapshots snap-<lastLSN>.snap.
	Dir string

	// SegmentBytes is the rotation threshold (default 64 MiB): an append
	// that would grow the active segment past it starts a new segment.
	SegmentBytes int64

	// Fsync makes every Append fsync the segment before returning — one
	// fsync per group commit. Off, appends reach the OS page cache only:
	// the process can crash safely, the machine cannot.
	Fsync bool

	// SyncDelay adds an artificial latency floor to every Append fsync
	// (a benchmarking/testing hook, zero in production). It simulates
	// slower stable storage deterministically, which is how the win of
	// parallel per-shard commit pipelines — N logs fsyncing concurrently
	// instead of one serial pipeline — is made measurable on any disk,
	// however fast. The sleep happens inside the append lock, exactly
	// like real device latency occupies the commit pipeline. Ignored
	// without Fsync.
	SyncDelay time.Duration

	// ObserveSync, when set, is called with the wall-clock duration of
	// every fsync (including any SyncDelay floor) — the server's fsync
	// latency histogram hook. Called inside the append lock; must be
	// cheap and must not call back into the log.
	ObserveSync func(time.Duration)
}

// Stats counts the log's activity since Open. The Syncs counter is what
// ties durability cost to group commit: with Fsync on, Syncs ==
// Appends == number of batches, however many requests each batch held.
type Stats struct {
	Appends     uint64 // records appended (== batches logged)
	Syncs       uint64 // fsyncs issued by Append/Sync
	Rotations   uint64 // segment rollovers
	Snapshots   uint64 // snapshots written
	Truncations uint64 // old segments deleted after a snapshot

	Segments    int    // live segments on disk
	TailLSN     uint64 // last durable record
	SnapshotLSN uint64 // newest valid snapshot's coverage

	// Recovery findings from Open.
	RecoveredRecords int  // valid records found on disk
	RepairedTail     bool // a torn/corrupt tail was truncated away
	Quarantined      int  // segments renamed *.corrupt past the break
}

// segment is one on-disk log file.
type segment struct {
	path  string
	start uint64 // first LSN it may contain
}

// Log is an open write-ahead log. Safe for concurrent use; Append is
// serialized internally, which is also what keeps record LSNs dense.
type Log struct {
	opts Options

	mu      sync.Mutex
	segs    []segment // sorted by start; last is active
	f       *os.File  // active segment, opened for append
	size    int64     // active segment size
	tail    uint64    // LSN of the last valid record (0: none yet)
	snap    uint64    // LSN covered by the newest valid snapshot
	closed  bool
	failed  error // first unrecoverable I/O error; latches Append shut
	stats   Stats
	replayN int // records with lsn > snap (what Replay will yield)

	// snapCache holds the snapshot payload Open already read and
	// CRC-checked, handed to the first Snapshot() call so boot does not
	// read a whole-store image twice; nil afterwards.
	snapCache []byte

	// notify is the tail broadcast: closed and replaced under mu whenever
	// the tail advances (and on Close/Abandon, so blocked followers wake
	// and observe the closed log). Followers capture it under the SAME
	// lock acquisition that observed tail — the channel-swap idiom that
	// makes a missed wakeup impossible.
	notify chan struct{}
}

// segRec is one segment's record-walk result, collected during scan.
type segRec struct {
	start uint64
	n     int
}

// Open scans dir, repairs any torn tail, and returns a log ready for
// Replay and Append. The caller should Replay before the first Append.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts, notify: make(chan struct{})}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

// notifyLocked wakes every follower blocked at the tail. Caller holds mu.
func (l *Log) notifyLocked() {
	close(l.notify)
	l.notify = make(chan struct{})
}

func segPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", start))
}

// parseSeq extracts the hex sequence from wal-<seq>.log / snap-<seq>.snap.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexpart := name[len(prefix) : len(name)-len(suffix)]
	if len(hexpart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// scan builds the in-memory view: locate the newest valid snapshot,
// walk every segment record by record, truncate the first invalid
// record and quarantine everything past it, prune segments a snapshot
// fully covers, and leave the active segment open for append.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if start, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, segment{path: filepath.Join(l.opts.Dir, e.Name()), start: start})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	l.snap = l.loadSnapshotLSN(entries)

	// Walk the chain. expect is the next LSN a valid record must carry;
	// it is pinned by each segment's header, so a gap between segments
	// (or a header that disagrees with the filename) breaks the chain
	// like a bad CRC does — with one exception: a forward jump the
	// snapshot bridges (start ≤ snap+1) is a valid continuation, because
	// a snapshot-supersede rotation starts the segment after it at
	// snap+1 rather than at the stale tail.
	var (
		expect  uint64 // 0 until the first segment fixes it
		keep    []segment
		kept    []segRec // record-walk results, parallel to keep
		badFrom = -1     // index of first segment past the break
	)
	for i, s := range segs {
		start, validAt, n, err := scanSegment(s.path, maxRecord)
		if i == 0 {
			// The FIRST segment anchors the whole history: if its header
			// is unreadable (or disagrees with its filename) the durable
			// prefix cannot be established, and if it starts beyond what
			// any valid snapshot covers the prefix is missing outright.
			// Either way, quarantining-and-continuing would boot a store
			// that silently fabricates or drops acked state — refuse
			// instead; repair-down-to-a-prefix (D18) only applies when a
			// prefix exists.
			if err != nil || start != s.start {
				return fmt.Errorf("wal: first segment %s is unreadable (%v); refusing to guess at the history's prefix", s.path, err)
			}
			if start > l.snap+1 {
				return fmt.Errorf("wal: %s starts at lsn %d but no snapshot covers lsn %d and earlier; refusing to replay a history with a missing prefix", s.path, start, start-1)
			}
		}
		chainOK := expect == 0 || start == expect || (start > expect && start <= l.snap+1)
		if err != nil || start != s.start || !chainOK {
			badFrom = i
			break
		}
		nValid := int64(segHdrLen)
		if n > 0 {
			nValid = validAt
		}
		fi, statErr := os.Stat(s.path)
		if statErr != nil {
			return fmt.Errorf("wal: %w", statErr)
		}
		if fi.Size() > nValid {
			// Torn or corrupt tail: cut it off and stop trusting anything
			// past this segment (D18).
			if err := os.Truncate(s.path, nValid); err != nil {
				return fmt.Errorf("wal: repair %s: %w", s.path, err)
			}
			l.stats.RepairedTail = true
			keep = append(keep, s)
			kept = append(kept, segRec{start: start, n: n})
			expect = start + uint64(n)
			l.stats.RecoveredRecords += n
			badFrom = i + 1
			break
		}
		keep = append(keep, s)
		kept = append(kept, segRec{start: start, n: n})
		expect = start + uint64(n)
		l.stats.RecoveredRecords += n
	}
	if badFrom >= 0 {
		for _, s := range segs[badFrom:] {
			if len(keep) > 0 && s.path == keep[len(keep)-1].path {
				continue
			}
			if err := os.Rename(s.path, s.path+".corrupt"); err != nil {
				return fmt.Errorf("wal: quarantine %s: %w", s.path, err)
			}
			l.stats.Quarantined++
			l.stats.RepairedTail = true
		}
	}
	l.segs = keep
	if expect > 0 {
		l.tail = expect - 1
	}

	// A snapshot newer than the surviving log tail supersedes it: every
	// record the snapshot covers is redundant and the next LSN continues
	// from the snapshot.
	if l.snap > l.tail {
		l.tail = l.snap
	}

	// Open (or create) the active segment.
	if len(l.segs) == 0 {
		if err := l.rotateLocked(l.tail + 1); err != nil {
			return err
		}
	} else {
		active := l.segs[len(l.segs)-1]
		last := kept[len(kept)-1]
		// If the snapshot superseded the active segment's records (or the
		// whole segment is an empty shell whose header start no longer
		// matches the next LSN), appending would break the segment's
		// dense LSN chain; start a fresh segment instead.
		if (last.n == 0 && last.start != l.tail+1) || (last.n > 0 && last.start+uint64(last.n)-1 < l.tail) {
			if err := l.rotateLocked(l.tail + 1); err != nil {
				return err
			}
		} else {
			f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			fi, err := f.Stat()
			if err != nil {
				f.Close()
				return fmt.Errorf("wal: %w", err)
			}
			l.f, l.size = f, fi.Size()
		}
	}
	// Prune after the active segment is settled, so a segment the
	// snapshot fully covers — including a stale pre-supersede tail that
	// just gained a successor — is deleted now, not next boot.
	l.pruneCoveredLocked()

	// Records Replay will yield: the walked records beyond the snapshot.
	for _, r := range kept {
		switch {
		case r.n == 0 || r.start+uint64(r.n)-1 <= l.snap:
			// fully covered (or empty): nothing to replay
		case r.start > l.snap:
			l.replayN += r.n
		default:
			l.replayN += int(r.start + uint64(r.n) - 1 - l.snap)
		}
	}
	l.stats.Segments = len(l.segs)
	l.stats.TailLSN = l.tail
	l.stats.SnapshotLSN = l.snap
	return nil
}

// scanSegment validates one segment file: header, then records until
// the first invalid one. Returns the header's start LSN, the offset
// just past the last valid record, and the number of valid records. An
// error means even the header is unusable.
func scanSegment(path string, maxRec int) (start uint64, validAt int64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("wal: short header: %w", err)
	}
	if string(hdr[:8]) != segMagic {
		return 0, 0, 0, fmt.Errorf("wal: bad segment magic")
	}
	start = binary.BigEndian.Uint64(hdr[8:])
	validAt = segHdrLen
	br := &countReader{r: f, n: segHdrLen}
	expect := start
	for {
		payload, ok := readRecord(br, maxRec)
		if !ok {
			return start, validAt, n, nil
		}
		if binary.BigEndian.Uint64(payload[:8]) != expect {
			return start, validAt, n, nil
		}
		expect++
		n++
		validAt = br.n
	}
}

// countReader tracks the byte offset of an io.Reader.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readRecord reads one length-prefixed CRC-checked record payload.
// ok=false on any truncation or corruption — the caller treats that as
// the end of the valid prefix.
func readRecord(r io.Reader, maxRec int) (payload []byte, ok bool) {
	var hdr [recHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, false
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 8 || int(n) > maxRec {
		return nil, false
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, false
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:]) {
		return nil, false
	}
	return payload, true
}

// appendRecord frames payload (which must begin with the LSN) into buf.
func appendRecord(buf, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// rotateLocked starts a new segment whose first record will carry start.
func (l *Log) rotateLocked(start uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = nil
		l.stats.Rotations++
	}
	path := segPath(l.opts.Dir, start)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [segHdrLen]byte
	copy(hdr[:], segMagic)
	binary.BigEndian.PutUint64(hdr[8:], start)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(l.opts.Dir)
	l.f, l.size = f, segHdrLen
	l.segs = append(l.segs, segment{path: path, start: start})
	l.stats.Segments = len(l.segs)
	return nil
}

// Append writes one record (the encoded batch) and, with Fsync on,
// syncs it to stable storage before returning — the group commit's one
// fsync. Returns the record's LSN.
func (l *Log) Append(body []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: closed")
	}
	if l.failed != nil {
		return 0, fmt.Errorf("wal: failed: %w", l.failed)
	}
	if len(body)+8 > maxRecord {
		// Recovery treats any record longer than maxRecord as a torn
		// tail, so writing one would ack data a restart silently drops —
		// and the caller's store has already applied it, so the log can
		// no longer capture a consistent history: latch (same hazard as
		// a failed write).
		err := fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(body)+8, maxRecord)
		if l.failed == nil {
			l.failed = err
		}
		return 0, err
	}
	lsn := l.tail + 1
	if l.size > segHdrLen && l.size+int64(len(body))+recHdrLen+8 > l.opts.SegmentBytes {
		if err := l.rotateLocked(lsn); err != nil {
			// Same hole-in-history hazard as a failed write: the caller's
			// store has applied the batch, so if a later append succeeded
			// the history would skip this one. Latch.
			if l.failed == nil {
				l.failed = err
			}
			return 0, err
		}
	}
	payload := make([]byte, 0, 8+len(body))
	payload = binary.BigEndian.AppendUint64(payload, lsn)
	payload = append(payload, body...)
	rec := appendRecord(make([]byte, 0, recHdrLen+len(payload)), payload)
	before := l.size
	if _, err := l.f.Write(rec); err != nil {
		// A partial write leaves orphan bytes the next append would sit
		// behind — a permanent torn tail that would swallow every later
		// record at recovery. Rewind to the pre-append offset.
		l.rewindLocked(before, err)
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(rec))
	if l.opts.Fsync {
		syncStart := time.Now()
		if err := l.f.Sync(); err != nil {
			// After a failed fsync the page-cache state of these bytes is
			// unknowable; rewind and stay latched — better a loudly failed
			// WAL than acks resting on bytes that may not exist.
			l.rewindLocked(before, err)
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		if l.opts.SyncDelay > 0 {
			time.Sleep(l.opts.SyncDelay)
		}
		if l.opts.ObserveSync != nil {
			l.opts.ObserveSync(time.Since(syncStart))
		}
		l.stats.Syncs++
	}
	l.tail = lsn
	l.stats.Appends++
	l.stats.TailLSN = lsn
	l.notifyLocked()
	return lsn, nil
}

// rewindLocked cuts the active segment back to size after a failed
// append and latches the log shut: every future Append errors. The
// latch is not an over-reaction — the caller's store has already
// applied the batch that failed to log, so continuing to append would
// punch a HOLE in the durable history (later records referencing state
// the log never captured), which replay would turn into silently
// divergent recovered state. A latched log fails loudly instead; the
// process restart re-opens a consistent prefix.
func (l *Log) rewindLocked(size int64, cause error) {
	if err := l.f.Truncate(size); err == nil {
		l.size = size
	}
	if l.failed == nil {
		l.failed = cause
	}
}

// TruncateTail physically removes the log's final record — lsn must be
// the current tail and must not be covered by the snapshot. Recovery
// uses it to discard a record it has decided not to replay (an
// incomplete cross-shard commit whose peers never made it durable), the
// same way Open discards a torn tail: once the bytes are gone, later
// boots have nothing left to re-judge and the next Append reuses the
// LSN. The truncation is fsynced before returning; a failure latches
// the log shut (the store's view and the disk can no longer be
// reconciled).
func (l *Log) TruncateTail(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: closed")
	}
	if l.failed != nil {
		return fmt.Errorf("wal: failed: %w", l.failed)
	}
	if lsn != l.tail {
		return fmt.Errorf("wal: TruncateTail(%d): tail is %d", lsn, l.tail)
	}
	if lsn <= l.snap {
		return fmt.Errorf("wal: TruncateTail(%d): snapshot already covers it", lsn)
	}
	// The tail record lives in the last segment whose start is ≤ lsn.
	// Anything after that segment is an empty shell a crash left behind
	// (rotated, never written); the shells hold no records, so removing
	// them loses nothing and keeps the chain dense.
	si := len(l.segs) - 1
	for si > 0 && l.segs[si].start > lsn {
		si--
	}
	if l.segs[si].start > lsn {
		err := fmt.Errorf("wal: TruncateTail(%d): no segment holds it", lsn)
		l.failed = err
		return err
	}
	if si < len(l.segs)-1 {
		if l.f != nil {
			l.f.Close()
			l.f = nil
		}
		for _, s := range l.segs[si+1:] {
			if err := os.Remove(s.path); err != nil {
				l.failed = err
				return fmt.Errorf("wal: truncate tail: %w", err)
			}
		}
		l.segs = l.segs[:si+1]
		f, err := os.OpenFile(l.segs[si].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			l.failed = err
			return fmt.Errorf("wal: truncate tail: %w", err)
		}
		l.f = f
	}
	off, err := recordOffset(l.segs[si].path, lsn)
	if err != nil {
		l.failed = err
		return fmt.Errorf("wal: truncate tail: %w", err)
	}
	if err := l.f.Truncate(off); err != nil {
		l.failed = err
		return fmt.Errorf("wal: truncate tail: %w", err)
	}
	// A handle rotateLocked created has no O_APPEND: its write offset
	// still points past the cut, and writing there would leave a
	// zero-filled hole that swallows every later record at recovery.
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		l.failed = err
		return fmt.Errorf("wal: truncate tail: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.failed = err
		return fmt.Errorf("wal: truncate tail: %w", err)
	}
	syncDir(l.opts.Dir)
	l.size = off
	l.tail = lsn - 1
	if l.replayN > 0 {
		l.replayN--
	}
	l.stats.TailLSN = l.tail
	l.stats.Segments = len(l.segs)
	return nil
}

// recordOffset walks a segment to the byte offset at which the record
// carrying lsn begins.
func recordOffset(path string, lsn uint64) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("short header: %w", err)
	}
	if string(hdr[:8]) != segMagic {
		return 0, fmt.Errorf("bad segment magic")
	}
	br := &countReader{r: f, n: segHdrLen}
	for {
		at := br.n
		payload, ok := readRecord(br, maxRecord)
		if !ok {
			return 0, fmt.Errorf("no record carries lsn %d", lsn)
		}
		if binary.BigEndian.Uint64(payload[:8]) == lsn {
			return at, nil
		}
	}
}

// Fail latches the log shut with cause: every future Append and
// WriteSnapshot errors. For callers that detect, before reaching
// Append, that the store's memory state can no longer be captured in
// the log (e.g. an unencodable batch) — the same hole-in-history hazard
// Append's own error path latches against.
func (l *Log) Fail(cause error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed == nil {
		l.failed = cause
	}
}

// Err reports the latch: nil while the log is healthy, the first
// unrecoverable error once Append/Fail has latched it shut. The admin
// surface's /readyz turns 503 when any shard's log reports non-nil —
// the store is still serving reads from memory but can no longer
// accept durable writes.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Sync forces an fsync of the active segment (graceful shutdown's final
// flush; a no-op amount of extra durability when Fsync is already on).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.stats.Syncs++
	return nil
}

// Replay yields every durable record newer than the snapshot, in LSN
// order. Corruption cannot reach fn: Open already truncated the invalid
// tail, and Replay revalidates each CRC anyway, stopping cleanly (no
// error) if the file shrank or rotted underneath it.
func (l *Log) Replay(fn func(lsn uint64, body []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	snap := l.snap
	l.mu.Unlock()
	for _, s := range segs {
		f, err := os.Open(s.path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		var hdr [segHdrLen]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil || string(hdr[:8]) != segMagic {
			f.Close()
			return nil // repaired tail shrank to nothing; durable prefix ends here
		}
		br := &countReader{r: f}
		for {
			payload, ok := readRecord(br, maxRecord)
			if !ok {
				break
			}
			lsn := binary.BigEndian.Uint64(payload[:8])
			if lsn <= snap {
				continue
			}
			if err := fn(lsn, payload[8:]); err != nil {
				f.Close()
				return err
			}
		}
		f.Close()
	}
	return nil
}

// ReplayableRecords is the number of records Replay will yield (the WAL
// tail beyond the snapshot).
func (l *Log) ReplayableRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replayN
}

// TailLSN returns the LSN of the last durable record.
func (l *Log) TailLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// Stats snapshots the activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Segments = len(l.segs)
	st.TailLSN = l.tail
	st.SnapshotLSN = l.snap
	return st
}

// Close syncs and closes the active segment. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.notifyLocked()
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.f = nil
	}
	return nil
}

// Abandon closes the segment file handle WITHOUT syncing — the testing
// hook for hard-crash simulation: whatever the OS has not flushed is
// exactly what a real crash would lose.
func (l *Log) Abandon() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	l.notifyLocked()
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
}

// pruneCoveredLocked deletes segments every record of which the newest
// snapshot covers. A segment is fully covered when the next segment
// starts at or below snap+1; the last segment is never deleted here
// (it is, or becomes, the active one).
func (l *Log) pruneCoveredLocked() {
	for len(l.segs) > 1 && l.segs[1].start <= l.snap+1 {
		if err := os.Remove(l.segs[0].path); err != nil {
			return // leave it; recovery tolerates covered records
		}
		l.segs = l.segs[1:]
		l.stats.Truncations++
	}
	l.stats.Segments = len(l.segs)
}

// syncDir fsyncs a directory (rename/create durability); best-effort on
// platforms where directories cannot be opened for sync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
