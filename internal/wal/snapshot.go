package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Snapshot files carry a whole-store image: the checkpointer's encoded
// Registry export, opaque to this package. Layout:
//
//	"PNSNAP01" | u64 lastLSN | u32 len | data | u32 crc
//
// where the CRC covers everything before it. A snapshot is written to a
// .tmp file, fsynced, then renamed into place, so a crash mid-write
// leaves the previous snapshot untouched (D19); recovery picks the
// newest snapshot whose CRC validates and ignores the rest.
const snapMagic = "PNSNAP01"

func snapPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", lsn))
}

// WriteSnapshot durably stores data as the checkpoint covering every
// record up to and including lsn, then prunes log segments and older
// snapshots the new checkpoint makes redundant. The file write happens
// OUTSIDE the log mutex: group commits keep appending while a large
// image syncs to disk — the lock is taken only to validate and to
// publish the finished snapshot (D22).
func (l *Log) WriteSnapshot(data []byte, lsn uint64) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: closed")
	}
	if l.failed != nil {
		// The store's memory now holds NACKed mutations the log never
		// captured; snapshotting it would durably persist writes the
		// server told clients had failed.
		err := l.failed
		l.mu.Unlock()
		return fmt.Errorf("wal: failed: %w", err)
	}
	if lsn < l.snap {
		cur := l.snap
		l.mu.Unlock()
		return fmt.Errorf("wal: snapshot at %d older than existing %d", lsn, cur)
	}
	if lsn > l.tail {
		cur := l.tail
		l.mu.Unlock()
		return fmt.Errorf("wal: snapshot at %d claims records beyond the tail %d", lsn, cur)
	}
	l.mu.Unlock()
	if uint64(len(data)) > 1<<32-1 {
		// The u32 length prefix would wrap: the file would publish, its
		// covered segments would be pruned, and the next boot would fail
		// the length check with the history already gone.
		return fmt.Errorf("wal: snapshot of %d bytes exceeds the u32 frame limit", len(data))
	}

	buf := make([]byte, 0, len(snapMagic)+8+4+len(data)+4)
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint64(buf, lsn)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(data)))
	buf = append(buf, data...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	final := snapPath(l.opts.Dir, lsn)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	syncDir(l.opts.Dir)

	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn < l.snap {
		// A newer snapshot published while we wrote; ours is redundant.
		os.Remove(final)
		return nil
	}
	old := l.snap
	l.snap = lsn
	l.stats.Snapshots++
	l.stats.SnapshotLSN = lsn
	l.pruneCoveredLocked()
	// Drop superseded snapshot files (best-effort; extras are harmless —
	// recovery always takes the newest valid one).
	if old != lsn {
		if prev := snapPath(l.opts.Dir, old); old > 0 {
			os.Remove(prev)
		}
	}
	return nil
}

// Snapshot returns the newest valid snapshot's payload and coverage
// LSN. When lsn > 0 but ok is false, a snapshot is supposed to exist
// and could not be loaded — the caller must treat that as corruption,
// not absence (recovering the WAL tail alone would fabricate state).
// The first call after Open is served from the payload Open already
// validated; later calls re-read the file.
func (l *Log) Snapshot() (data []byte, lsn uint64, ok bool) {
	l.mu.Lock()
	snap := l.snap
	cache := l.snapCache
	l.snapCache = nil
	dir := l.opts.Dir
	l.mu.Unlock()
	if snap == 0 {
		return nil, 0, false
	}
	if cache != nil {
		return cache, snap, true
	}
	data, ok = loadSnapshot(snapPath(dir, snap))
	return data, snap, ok
}

// loadSnapshot reads and validates one snapshot file.
func loadSnapshot(path string) ([]byte, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	min := len(snapMagic) + 8 + 4 + 4
	if len(raw) < min || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, false
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, false
	}
	n := binary.BigEndian.Uint32(raw[len(snapMagic)+8:])
	data := body[len(snapMagic)+8+4:]
	if int(n) != len(data) {
		return nil, false
	}
	return data, true
}

// loadSnapshotLSN locates the newest snapshot file whose CRC validates,
// quarantining invalid ones so they are never considered again.
func (l *Log) loadSnapshotLSN(entries []os.DirEntry) uint64 {
	var lsns []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			// Crash mid-WriteSnapshot: the rename never happened.
			os.Remove(filepath.Join(l.opts.Dir, e.Name()))
			continue
		}
		if lsn, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] }) // newest first
	best := uint64(0)
	for _, lsn := range lsns {
		path := snapPath(l.opts.Dir, lsn)
		if best > 0 {
			// Older than the chosen snapshot: superseded. These leak when
			// a crash lands between publishing a new snapshot and removing
			// the previous one — clean them up here.
			os.Remove(path)
			continue
		}
		if data, ok := loadSnapshot(path); ok {
			l.snapCache = data // hand the already-validated bytes to the first Snapshot()
			best = lsn
			continue
		}
		os.Rename(path, path+".corrupt")
	}
	return best
}
