package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Tail-follow reader: the replication stream's source. A Follower walks
// the durable record sequence from a requested LSN and then blocks at
// the tail, waking on every Append — the primary-side half of
// WAL-shipping (D39). It reads through its own file handles, entirely
// outside the append lock, so a replica stream never slows a group
// commit; the only synchronization is the brief locate() lock that
// snapshots (tail, segment list, notify channel) together.
//
// Correctness rests on one invariant: a Follower only ever reads
// records with lsn ≤ a tail value it observed under the log's mutex.
// Append writes the record bytes (and rotateLocked publishes any new
// segment into l.segs) BEFORE it bumps tail under that same mutex, so
// every byte of every record the Follower is allowed to read is already
// fully on disk — it can never see a torn in-flight record, even while
// racing the active segment's writer.

var (
	// ErrCompacted reports that the requested LSN is no longer on disk:
	// a snapshot covered it and the segment was pruned. The caller
	// resyncs from the snapshot and follows again from snapshotLSN+1.
	ErrCompacted = errors.New("wal: follow: lsn compacted into a snapshot")

	// ErrStopped is Next's return when the caller's stop channel fired.
	ErrStopped = errors.New("wal: follow: stopped")

	// ErrLogClosed reports that the followed log shut down (Close or
	// Abandon); no further records will ever arrive.
	ErrLogClosed = errors.New("wal: follow: log closed")
)

// Follower is a cursor over the durable record sequence. Not safe for
// concurrent use; one goroutine per Follower.
type Follower struct {
	l        *Log
	next     uint64 // LSN the next TryNext will yield
	file     *os.File
	segStart uint64
	off      int64
}

// Follow returns a cursor that will yield records from LSN `from`
// onward (0 is treated as 1 — the whole history). The cursor is lazy:
// a compacted starting point surfaces as ErrCompacted from the first
// TryNext, not here.
func (l *Log) Follow(from uint64) *Follower {
	if from == 0 {
		from = 1
	}
	return &Follower{l: l, next: from}
}

// NextLSN is the LSN the next successful TryNext will yield.
func (f *Follower) NextLSN() uint64 { return f.next }

// Close releases the cursor's file handle. The log itself is untouched.
func (f *Follower) Close() {
	if f.file != nil {
		f.file.Close()
		f.file = nil
	}
}

// locate snapshots the log state the next read needs: under one lock
// acquisition it checks closed, compares f.next against the tail, and
// picks the segment holding f.next. Exactly one of the returns is
// meaningful: err (closed/compacted), wait (f.next is past the tail —
// block on this channel; capturing it under the same lock as the tail
// comparison is what makes the wakeup race-free), or seg.
func (f *Follower) locate() (seg segment, wait chan struct{}, err error) {
	l := f.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return segment{}, nil, ErrLogClosed
	}
	if f.next > l.tail {
		return segment{}, l.notify, nil
	}
	for i := len(l.segs) - 1; i >= 0; i-- {
		if l.segs[i].start <= f.next {
			return l.segs[i], nil, nil
		}
	}
	return segment{}, nil, ErrCompacted
}

// TryNext yields the next record without blocking. At the tail it
// returns a nil body and a non-nil wait channel that closes when the
// tail advances (or the log closes); otherwise it returns the record's
// LSN and body (the payload minus its LSN prefix — what Append was
// given). The returned body is freshly allocated and owned by the
// caller.
func (f *Follower) TryNext() (lsn uint64, body []byte, wait <-chan struct{}, err error) {
	for {
		seg, waitCh, err := f.locate()
		if err != nil {
			return 0, nil, nil, err
		}
		if waitCh != nil {
			return 0, nil, waitCh, nil
		}
		if f.file == nil || f.segStart != seg.start {
			f.Close()
			file, err := os.Open(seg.path)
			if err != nil {
				if os.IsNotExist(err) {
					continue // pruned between locate and open: re-derive
				}
				return 0, nil, nil, fmt.Errorf("wal: follow: %w", err)
			}
			var hdr [segHdrLen]byte
			if _, err := io.ReadFull(file, hdr[:]); err != nil || string(hdr[:8]) != segMagic {
				file.Close()
				return 0, nil, nil, fmt.Errorf("wal: follow: bad segment header in %s", seg.path)
			}
			f.file, f.segStart, f.off = file, seg.start, segHdrLen
		}
		// Walk records from the cursor offset, skipping any below f.next
		// (a reopened segment starts before the resume point).
		for {
			cr := &countReader{r: io.NewSectionReader(f.file, f.off, int64(maxRecord)+recHdrLen+16)}
			payload, ok := readRecord(cr, maxRecord)
			if !ok {
				// End of this segment's readable prefix, yet locate() said
				// the record is durable — rotation moved the write point to
				// a newer segment. Re-derive; if the located segment hasn't
				// changed, the file shrank under us: surface it rather than
				// spin.
				seg2, wait2, err := f.locate()
				if err != nil {
					return 0, nil, nil, err
				}
				if wait2 != nil {
					return 0, nil, wait2, nil
				}
				if seg2.start != f.segStart {
					break // reopen the newer segment via the outer loop
				}
				return 0, nil, nil, fmt.Errorf("wal: follow: record %d missing from %s", f.next, seg.path)
			}
			f.off += cr.n
			got := binary.BigEndian.Uint64(payload[:8])
			if got < f.next {
				continue
			}
			if got != f.next {
				return 0, nil, nil, fmt.Errorf("wal: follow: want lsn %d, segment %s yields %d", f.next, seg.path, got)
			}
			f.next++
			return got, payload[8:], nil, nil
		}
	}
}

// Next blocks until a record is available (yielding it), the log closes
// (ErrLogClosed), or stop fires (ErrStopped). stop may be nil.
func (f *Follower) Next(stop <-chan struct{}) (uint64, []byte, error) {
	for {
		lsn, body, wait, err := f.TryNext()
		if err != nil {
			return 0, nil, err
		}
		if wait == nil {
			return lsn, body, nil
		}
		select {
		case <-wait:
		case <-stop:
			return 0, nil, ErrStopped
		}
	}
}
