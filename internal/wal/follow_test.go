package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"
	"time"
)

// followCollect drains the follower of everything currently durable,
// stopping (without error) at the tail.
func followCollect(t *testing.T, f *Follower) (lsns []uint64, bodies [][]byte) {
	t.Helper()
	for {
		lsn, body, wait, err := f.TryNext()
		if err != nil {
			t.Fatalf("TryNext: %v", err)
		}
		if wait != nil {
			return lsns, bodies
		}
		lsns = append(lsns, lsn)
		bodies = append(bodies, append([]byte(nil), body...))
	}
}

// TestFollowerBlockedAtTail: a follower that has consumed everything
// parks on the wait channel and wakes exactly when Append lands a new
// record — no polling, no missed wakeup.
func TestFollowerBlockedAtTail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	defer l.Close()
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	f := l.Follow(1)
	defer f.Close()
	if lsns, _ := followCollect(t, f); len(lsns) != 5 {
		t.Fatalf("drained %d records, want 5", len(lsns))
	}

	_, _, wait, err := f.TryNext()
	if err != nil || wait == nil {
		t.Fatalf("at tail: wait=%v err=%v, want a wait channel", wait, err)
	}
	select {
	case <-wait:
		t.Fatal("wait channel closed with no append")
	default:
	}

	// Blocked Next must deliver the record an Append publishes.
	got := make(chan uint64, 1)
	errc := make(chan error, 1)
	go func() {
		lsn, b, err := f.Next(nil)
		if err != nil {
			errc <- err
			return
		}
		if !bytes.Equal(b, body(6)) {
			errc <- os.ErrInvalid
			return
		}
		got <- lsn
	}()
	time.Sleep(20 * time.Millisecond) // let the goroutine park
	if _, err := l.Append(body(6)); err != nil {
		t.Fatal(err)
	}
	select {
	case lsn := <-got:
		if lsn != 6 {
			t.Fatalf("woke with lsn %d, want 6", lsn)
		}
	case err := <-errc:
		t.Fatalf("Next: %v", err)
	case <-time.After(2 * time.Second):
		t.Fatal("follower never woke on append")
	}

	// Close wakes a parked follower with ErrLogClosed.
	errc2 := make(chan error, 1)
	go func() {
		_, _, err := f.Next(nil)
		errc2 <- err
	}()
	time.Sleep(20 * time.Millisecond)
	l.Close()
	select {
	case err := <-errc2:
		if err != ErrLogClosed {
			t.Fatalf("Next after Close: %v, want ErrLogClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower never woke on Close")
	}
}

// TestFollowerAcrossRotation: the log rotates segments underneath a
// live follower mid-stream; the follower must cross every boundary and
// yield the full dense sequence.
func TestFollowerAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256}) // a few records per segment
	defer l.Close()

	f := l.Follow(1)
	defer f.Close()
	var seen []uint64
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
		// Interleave reads with appends so the follower's open segment
		// keeps going stale under it.
		if i%3 == 0 {
			lsns, _ := followCollect(t, f)
			seen = append(seen, lsns...)
		}
	}
	lsns, bodies := followCollect(t, f)
	seen = append(seen, lsns...)
	if st := l.Stats(); st.Rotations == 0 {
		t.Fatalf("test never rotated (segments=%d); shrink SegmentBytes", st.Segments)
	}
	if len(seen) != 40 {
		t.Fatalf("followed %d records, want 40", len(seen))
	}
	for i, lsn := range seen {
		if lsn != uint64(i+1) {
			t.Fatalf("record %d: lsn %d, want %d (dense order across rotation)", i, lsn, i+1)
		}
	}
	if last := bodies[len(bodies)-1]; !bytes.Equal(last, body(40)) {
		t.Fatalf("last body = %q", last)
	}
}

// TestFollowerTornTailMidFollow: a crash leaves a torn record; Open
// repairs it away, and a follower on the reopened log yields exactly
// the valid prefix, then continues seamlessly into fresh appends.
func TestFollowerTornTailMidFollow(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	for i := 1; i <= 8; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs := append([]segment(nil), l.segs...)
	l.Abandon() // crash: no final sync

	// Append a torn record by hand: full header + half the payload, as a
	// crash mid-write would leave.
	payload := make([]byte, 0, 8+len(body(9)))
	payload = binary.BigEndian.AppendUint64(payload, 9)
	payload = append(payload, body(9)...)
	rec := make([]byte, 0, recHdrLen+len(payload))
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload[:len(payload)/2]...)
	fh, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(rec); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	l2 := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if st := l2.Stats(); !st.RepairedTail || st.TailLSN != 8 {
		t.Fatalf("reopen did not repair the torn tail: %+v", st)
	}
	f := l2.Follow(1)
	defer f.Close()
	lsns, _ := followCollect(t, f)
	if len(lsns) != 8 || lsns[len(lsns)-1] != 8 {
		t.Fatalf("followed %v, want exactly the valid prefix 1..8", lsns)
	}
	// The LSN the torn record would have carried is reused; the follower
	// picks it up as a normal append.
	if lsn, err := l2.Append(body(99)); err != nil || lsn != 9 {
		t.Fatalf("append after repair: lsn=%d err=%v", lsn, err)
	}
	lsn, b, err := f.Next(nil)
	if err != nil || lsn != 9 || !bytes.Equal(b, body(99)) {
		t.Fatalf("follow past repaired tail: lsn=%d body=%q err=%v", lsn, b, err)
	}
}

// TestFollowerResumeFromLSN: a reconnecting replica re-subscribes from
// applied+1 — a fresh follower starting mid-history must yield exactly
// the suffix, including when the resume point sits mid-segment or the
// history before it was compacted into a snapshot.
func TestFollowerResumeFromLSN(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l.Close()
	for i := 1; i <= 30; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}

	f := l.Follow(17) // mid-history, mid-segment
	lsns, bodies := followCollect(t, f)
	f.Close()
	if len(lsns) != 14 || lsns[0] != 17 || lsns[len(lsns)-1] != 30 {
		t.Fatalf("resume from 17 yielded %v, want 17..30", lsns)
	}
	if !bytes.Equal(bodies[0], body(17)) {
		t.Fatalf("resume body = %q, want %q", bodies[0], body(17))
	}

	// Follow(0) means the whole history.
	f0 := l.Follow(0)
	if lsns, _ := followCollect(t, f0); len(lsns) != 30 || lsns[0] != 1 {
		t.Fatalf("Follow(0) yielded %d records starting at %v", len(lsns), lsns)
	}
	f0.Close()

	// Compact the prefix: snapshot at 20 prunes the early segments, so a
	// resume below the snapshot must report ErrCompacted (the replica
	// falls back to a snapshot fetch), while a resume above still works.
	if err := l.WriteSnapshot([]byte("state@20"), 20); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Truncations == 0 {
		t.Fatalf("snapshot pruned nothing: %+v", st)
	}
	fc := l.Follow(2)
	if _, _, _, err := fc.TryNext(); err != ErrCompacted {
		t.Fatalf("resume below the snapshot: err=%v, want ErrCompacted", err)
	}
	fc.Close()
	fs := l.Follow(l.Stats().SnapshotLSN + 1)
	lsns, _ = followCollect(t, fs)
	fs.Close()
	if len(lsns) == 0 || lsns[0] <= 20 || lsns[len(lsns)-1] != 30 {
		t.Fatalf("resume above the snapshot yielded %v", lsns)
	}
}
