package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadManifest(dir); err != nil || ok {
		t.Fatalf("fresh dir: ok=%v err=%v, want absent", ok, err)
	}
	want := Manifest{Version: 1, Shards: 4}
	if err := WriteManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadManifest(dir)
	if err != nil || !ok || got != want {
		t.Fatalf("ReadManifest = %+v,%v,%v want %+v", got, ok, err, want)
	}
	// Overwrite is atomic (tmp+rename): no .tmp litter remains.
	if err := WriteManifest(dir, Manifest{Version: 1, Shards: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName+".tmp")); !os.IsNotExist(err) {
		t.Errorf("tmp manifest left behind: %v", err)
	}
	if got, _, _ := ReadManifest(dir); got.Shards != 8 {
		t.Errorf("overwritten manifest reads %+v", got)
	}
}

func TestManifestRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadManifest(dir); err == nil {
		t.Error("corrupt manifest did not error")
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(`{"version":1,"shards":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadManifest(dir); err == nil {
		t.Error("zero-shard manifest did not error")
	}
}

// TestManifestIgnoredBySegmentScan: the manifest lives in the same
// directory as a single-shard store's segments and must be invisible to
// Open's scan.
func TestManifestIgnoredBySegmentScan(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(dir, Manifest{Version: 1, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.TailLSN != 1 {
		t.Errorf("log with manifest in dir: %+v", st)
	}
}
