package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// collect replays the log into a slice of (lsn, body) pairs.
func collect(t *testing.T, l *Log) (lsns []uint64, bodies [][]byte) {
	t.Helper()
	err := l.Replay(func(lsn uint64, body []byte) error {
		lsns = append(lsns, lsn)
		bodies = append(bodies, append([]byte(nil), body...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return lsns, bodies
}

func mustOpen(t *testing.T, opts Options) *Log {
	t.Helper()
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func body(i int) []byte { return []byte(fmt.Sprintf("record-%04d-payload", i)) }

func TestAppendReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Fsync: true})
	for i := 1; i <= 20; i++ {
		lsn, err := l.Append(body(i))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("lsn = %d, want %d", lsn, i)
		}
	}
	st := l.Stats()
	if st.Appends != 20 || st.Syncs != 20 {
		t.Fatalf("stats: appends=%d syncs=%d, want 20/20 (one fsync per append)", st.Appends, st.Syncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir, Fsync: true})
	defer l2.Close()
	lsns, bodies := collect(t, l2)
	if len(lsns) != 20 || l2.TailLSN() != 20 {
		t.Fatalf("recovered %d records, tail %d; want 20", len(lsns), l2.TailLSN())
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) || !bytes.Equal(bodies[i], body(i+1)) {
			t.Fatalf("record %d: lsn=%d body=%q", i, lsn, bodies[i])
		}
	}
	if st := l2.Stats(); st.RepairedTail || st.Quarantined != 0 {
		t.Fatalf("clean reopen flagged repair: %+v", st)
	}
	// New appends continue the LSN sequence.
	if lsn, err := l2.Append(body(21)); err != nil || lsn != 21 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("no rotation despite tiny SegmentBytes: %+v", st)
	}
	l.Close()

	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l2.Close()
	lsns, _ := collect(t, l2)
	if len(lsns) != 40 {
		t.Fatalf("recovered %d records across segments, want 40", len(lsns))
	}
}

// TestTornTailTruncated cuts the last record short at every possible
// byte boundary: replay must stop cleanly at the previous record.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int64{1, 3, 7, 9, 15} {
		dir := t.TempDir()
		l := mustOpen(t, Options{Dir: dir})
		for i := 1; i <= 5; i++ {
			if _, err := l.Append(body(i)); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()

		seg := onlySegment(t, dir)
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-cut); err != nil {
			t.Fatal(err)
		}

		l2 := mustOpen(t, Options{Dir: dir})
		lsns, _ := collect(t, l2)
		if len(lsns) != 4 {
			t.Fatalf("cut=%d: recovered %d records, want 4 (torn record dropped)", cut, len(lsns))
		}
		if st := l2.Stats(); !st.RepairedTail {
			t.Fatalf("cut=%d: repair not flagged: %+v", cut, st)
		}
		// The log must keep working after repair, and the repair must be
		// durable across another reopen.
		if lsn, err := l2.Append([]byte("after-repair")); err != nil || lsn != 5 {
			t.Fatalf("cut=%d: append after repair: lsn=%d err=%v", cut, lsn, err)
		}
		l2.Close()
		l3 := mustOpen(t, Options{Dir: dir})
		lsns, bodies := collect(t, l3)
		if len(lsns) != 5 || string(bodies[4]) != "after-repair" {
			t.Fatalf("cut=%d: after repair+append got %d records", cut, len(lsns))
		}
		l3.Close()
	}
}

// TestCRCCorruptRecord flips a byte inside a middle record: replay must
// stop at the last record before it and never surface the garbage.
func TestCRCCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	for i := 1; i <= 6; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	seg := onlySegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recLen := recHdrLen + 8 + len(body(1))
	// Corrupt a payload byte of record 4 (after header + 3 records).
	off := segHdrLen + 3*recLen + recHdrLen + 8 + 2
	raw[off] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	lsns, bodies := collect(t, l2)
	if len(lsns) != 3 {
		t.Fatalf("recovered %d records, want 3 (corruption stops replay)", len(lsns))
	}
	for i := range lsns {
		if !bytes.Equal(bodies[i], body(i+1)) {
			t.Fatalf("record %d corrupted in replay: %q", i+1, bodies[i])
		}
	}
	if st := l2.Stats(); !st.RepairedTail {
		t.Fatalf("repair not flagged: %+v", st)
	}
}

// TestCorruptionQuarantinesLaterSegments corrupts a record in the first
// of several segments: everything past the break — including whole
// later segments — must be dropped, not replayed out of order.
func TestCorruptionQuarantinesLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("want ≥3 segments, got %d", st.Segments)
	}
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segment files, got %d", len(segs))
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[segHdrLen+recHdrLen+8+1] ^= 0xff // first record's payload
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l2.Close()
	lsns, _ := collect(t, l2)
	if len(lsns) != 0 {
		t.Fatalf("recovered %d records, want 0 (first record corrupt)", len(lsns))
	}
	st := l2.Stats()
	if st.Quarantined == 0 || !st.RepairedTail {
		t.Fatalf("later segments not quarantined: %+v", st)
	}
	bad, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(bad) == 0 {
		t.Fatal("no .corrupt quarantine files")
	}
}

func TestSnapshotCoversAndTruncates(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 1; i <= 30; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot([]byte("store-image-at-20"), 20); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.SnapshotLSN != 20 || st.Truncations == 0 {
		t.Fatalf("snapshot did not truncate covered segments: %+v", st)
	}
	l.Close()

	l2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	defer l2.Close()
	data, lsn, ok := l2.Snapshot()
	if !ok || lsn != 20 || string(data) != "store-image-at-20" {
		t.Fatalf("snapshot load: ok=%v lsn=%d data=%q", ok, lsn, data)
	}
	lsns, _ := collect(t, l2)
	if len(lsns) != 10 || lsns[0] != 21 || lsns[9] != 30 {
		t.Fatalf("replay after snapshot: %v (want 21..30)", lsns)
	}
	if got := l2.ReplayableRecords(); got != 10 {
		t.Fatalf("ReplayableRecords = %d, want 10", got)
	}
}

// TestCorruptSnapshotFallsBack rots the snapshot file: recovery must
// quarantine it and fall back to replaying the whole WAL, never loading
// a snapshot whose CRC fails.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir})
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot([]byte("image-9"), 9); err != nil {
		t.Fatal(err)
	}
	l.Close()

	path := snapPath(dir, 9)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if _, _, ok := l2.Snapshot(); ok {
		t.Fatal("corrupt snapshot accepted")
	}
	// With no valid snapshot left, the full surviving WAL replays.
	lsns, _ := collect(t, l2)
	if len(lsns) != 10 {
		t.Fatalf("replayed %d records after snapshot fallback, want 10", len(lsns))
	}
	if q, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap.corrupt")); len(q) == 0 {
		t.Fatal("corrupt snapshot not quarantined")
	}
}

// TestSnapshotSupersededTailAndGapChain reproduces the double-crash
// sequence: a torn tail leaves the log SHORTER than the snapshot, so
// open rotates a fresh segment at snap+1; if the stale pre-supersede
// segment is still on disk next boot (crash before its pruning), the
// LSN jump it leaves must be accepted as snapshot-bridged, not
// quarantined — records acked after the first recovery survive.
func TestSnapshotSupersededTailAndGapChain(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Fsync: true})
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot([]byte("image-3"), 3); err != nil {
		t.Fatal(err)
	}
	// Claiming coverage beyond the tail must be rejected.
	if err := l.WriteSnapshot([]byte("bogus"), 99); err == nil {
		t.Fatal("snapshot beyond the tail accepted")
	}
	l.Close()

	// Crash damage: the only segment tears back to record 2 — shorter
	// than the snapshot's coverage (3).
	seg := onlySegment(t, dir)
	preCrash, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recLen := recHdrLen + 8 + len(body(1))
	if err := os.Truncate(seg, int64(segHdrLen+2*recLen)); err != nil {
		t.Fatal(err)
	}

	// First recovery: tail snaps forward to 3, a fresh segment starts at
	// 4, and new acked records land there.
	l2 := mustOpen(t, Options{Dir: dir, Fsync: true})
	if l2.TailLSN() != 3 {
		t.Fatalf("tail = %d, want 3 (snapshot supersedes torn log)", l2.TailLSN())
	}
	if lsn, err := l2.Append([]byte("after-supersede-4")); err != nil || lsn != 4 {
		t.Fatalf("append: lsn=%d err=%v", lsn, err)
	}
	if lsn, err := l2.Append([]byte("after-supersede-5")); err != nil || lsn != 5 {
		t.Fatalf("append: lsn=%d err=%v", lsn, err)
	}
	l2.Close()

	// Simulate a crash that happened before the stale segment was
	// pruned: put the pre-supersede segment (records 1..2 after the
	// tear) back beside the new one. The chain now jumps 2 → 4 with the
	// snapshot bridging 3.
	stale := segPath(dir, 1)
	if _, statErr := os.Stat(stale); os.IsNotExist(statErr) {
		if err := os.WriteFile(stale, preCrash[:segHdrLen+2*recLen], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	l3 := mustOpen(t, Options{Dir: dir, Fsync: true})
	defer l3.Close()
	if l3.TailLSN() != 5 {
		t.Fatalf("tail = %d, want 5 (post-supersede records must survive)", l3.TailLSN())
	}
	lsns, bodies := collect(t, l3)
	if len(lsns) != 2 || lsns[0] != 4 || lsns[1] != 5 {
		t.Fatalf("replay = %v, want [4 5]", lsns)
	}
	if string(bodies[0]) != "after-supersede-4" || string(bodies[1]) != "after-supersede-5" {
		t.Fatalf("replayed bodies corrupted: %q %q", bodies[0], bodies[1])
	}
	if st := l3.Stats(); st.Quarantined != 0 {
		t.Fatalf("snapshot-bridged gap quarantined a live segment: %+v", st)
	}
}

// TestMissingPrefixRefusesToBoot: when the only snapshot rots AFTER its
// checkpoint already pruned the early segments, the surviving tail
// starts mid-history. Replaying it onto an empty store would fabricate
// state, so Open must fail loudly instead.
func TestMissingPrefixRefusesToBoot(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 1; i <= 30; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot([]byte("image-20"), 20); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Truncations == 0 {
		t.Fatalf("snapshot pruned nothing; test needs pruned early segments: %+v", st)
	}
	l.Close()

	// The snapshot rots away entirely.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots: %v, want 1", snaps)
	}
	if err := os.Remove(snaps[0]); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Options{Dir: dir, SegmentBytes: 256}); err == nil {
		t.Fatal("Open booted a history with a missing prefix")
	}
}

func TestNoFsyncStillReplayableAfterClose(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Fsync: false})
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Syncs != 0 {
		t.Fatalf("Fsync off issued %d syncs during append", st.Syncs)
	}
	l.Close() // clean close syncs once

	l2 := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if lsns, _ := collect(t, l2); len(lsns) != 5 {
		t.Fatalf("recovered %d records, want 5", len(lsns))
	}
}

func TestAbandonSimulatesCrash(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Fsync: true})
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Abandon()
	if _, err := l.Append(body(4)); err == nil {
		t.Fatal("append after Abandon succeeded")
	}
	l2 := mustOpen(t, Options{Dir: dir})
	defer l2.Close()
	if lsns, _ := collect(t, l2); len(lsns) != 3 {
		t.Fatalf("recovered %d records after abandon, want 3 (all fsynced)", len(lsns))
	}
}

// onlySegment returns the path of the single wal segment in dir.
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (err %v), want exactly 1", segs, err)
	}
	return segs[0]
}

func TestTruncateTail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, Options{Dir: dir, Fsync: true})
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Guard rails: only the current tail, and only past the snapshot.
	if err := l.TruncateTail(2); err == nil {
		t.Fatal("TruncateTail accepted a non-tail lsn")
	}
	if err := l.TruncateTail(3); err != nil {
		t.Fatal(err)
	}
	if l.TailLSN() != 2 {
		t.Fatalf("tail = %d, want 2", l.TailLSN())
	}
	lsns, _ := collect(t, l)
	if len(lsns) != 2 {
		t.Fatalf("replay yields %d records, want 2", len(lsns))
	}
	// The freed LSN is reused by the next append.
	if lsn, err := l.Append(body(30)); err != nil || lsn != 3 {
		t.Fatalf("append after truncate: lsn=%d err=%v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The truncation is durable: a reopen sees a clean 3-record chain
	// with the replacement body, no repair flagged.
	l2 := mustOpen(t, Options{Dir: dir, Fsync: true})
	defer l2.Close()
	lsns, bodies := collect(t, l2)
	if len(lsns) != 3 || l2.TailLSN() != 3 {
		t.Fatalf("recovered %d records, tail %d; want 3", len(lsns), l2.TailLSN())
	}
	if !bytes.Equal(bodies[2], body(30)) {
		t.Fatalf("record 3 = %q, want the post-truncate append", bodies[2])
	}
	if st := l2.Stats(); st.RepairedTail || st.Quarantined != 0 {
		t.Fatalf("reopen after TruncateTail flagged repair: %+v", st)
	}
}

func TestTruncateTailSoleRecordOfSegment(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates into its own segment, so the
	// tail record is its segment's only record and truncating it leaves
	// an empty shell the next append must continue from.
	l := mustOpen(t, Options{Dir: dir, Fsync: true, SegmentBytes: 1})
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateTail(3); err != nil {
		t.Fatal(err)
	}
	if lsn, err := l.Append(body(30)); err != nil || lsn != 3 {
		t.Fatalf("append after truncate: lsn=%d err=%v", lsn, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, Options{Dir: dir, Fsync: true, SegmentBytes: 1})
	defer l2.Close()
	lsns, bodies := collect(t, l2)
	if len(lsns) != 3 || !bytes.Equal(bodies[2], body(30)) {
		t.Fatalf("recovered %d records, last %q", len(lsns), bodies[len(bodies)-1])
	}
}
