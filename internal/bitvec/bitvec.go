// Package bitvec implements the fixed-size bit vectors that identify
// transactions and ancestor sets in the parallel-nested STM.
//
// The paper (Barreto et al., PPoPP 2010, §2) identifies every active
// transaction by a "bitnum": an index, ranging over [0, N), into all bit
// vectors the system maintains. N = 2P where P is the number of worker
// threads, and P is bounded by the machine word size so that every set
// operation used by the conflict-detection path compiles to one or two ALU
// instructions. A bit vector therefore fits in a single uint64.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Word is the number of bits in a vector, and hence the maximum number of
// simultaneously reserved bitnums (paper §3: "P is bounded by word size").
const Word = 64

// Bitnum is the index of a transaction identifier inside every bit vector
// (paper §2). Valid bitnums are in [0, Word).
type Bitnum uint8

// None is a sentinel for "no bitnum reserved". It is outside the valid
// range and must never be set in a vector.
const None Bitnum = Word

// Valid reports whether b is a usable bitnum index.
func (b Bitnum) Valid() bool { return b < Word }

// Bit returns the vector whose only set bit is b. It panics on invalid
// bitnums: constructing a mask from a sentinel is always a programming
// error in the runtime.
func (b Bitnum) Bit() Vec {
	if !b.Valid() {
		panic(fmt.Sprintf("bitvec: Bit() on invalid bitnum %d", b))
	}
	return Vec(1) << b
}

// String implements fmt.Stringer.
func (b Bitnum) String() string {
	if !b.Valid() {
		return "bn(none)"
	}
	return fmt.Sprintf("bn(%d)", uint8(b))
}

// Vec is a fixed-size bit vector over bitnums. The zero value is the empty
// set and is ready to use.
//
// Following the paper's notation (§2): for vectors x, y we write x+y for
// x∨y and x−y for x∧¬y; x+b / x−b set / clear a single bitnum b.
type Vec uint64

// Has reports whether bitnum b is set in v.
func (v Vec) Has(b Bitnum) bool { return b.Valid() && v&b.Bit() != 0 }

// Add returns v with bitnum b set (the paper's x + b).
func (v Vec) Add(b Bitnum) Vec { return v | b.Bit() }

// Remove returns v with bitnum b cleared (the paper's x − b).
func (v Vec) Remove(b Bitnum) Vec { return v &^ b.Bit() }

// Union returns v ∪ o (the paper's x + y).
func (v Vec) Union(o Vec) Vec { return v | o }

// Minus returns v − o, i.e. v ∧ ¬o.
func (v Vec) Minus(o Vec) Vec { return v &^ o }

// Intersect returns v ∩ o.
func (v Vec) Intersect(o Vec) Vec { return v & o }

// Empty reports whether no bitnum is set.
func (v Vec) Empty() bool { return v == 0 }

// Count returns the number of set bitnums.
func (v Vec) Count() int { return bits.OnesCount64(uint64(v)) }

// SubsetOf reports whether v ⊆ o using the paper's two-operation test
// (§ Overview): (v ∧ (v ⊕ o)) == 0. v ⊕ o keeps the bits on which the two
// vectors differ; intersecting with v keeps exactly the bits of v that are
// missing from o.
func (v Vec) SubsetOf(o Vec) bool { return v&(v^o) == 0 }

// Lowest returns the smallest set bitnum, or None if v is empty.
func (v Vec) Lowest() Bitnum {
	if v == 0 {
		return None
	}
	return Bitnum(bits.TrailingZeros64(uint64(v)))
}

// Single reports whether exactly one bitnum is set, and returns it.
func (v Vec) Single() (Bitnum, bool) {
	if v != 0 && v&(v-1) == 0 {
		return v.Lowest(), true
	}
	return None, false
}

// ForEach calls fn for every set bitnum in ascending order.
func (v Vec) ForEach(fn func(Bitnum)) {
	for w := uint64(v); w != 0; w &= w - 1 {
		fn(Bitnum(bits.TrailingZeros64(w)))
	}
}

// Slice returns the set bitnums in ascending order. Intended for tests and
// diagnostics, not the hot path.
func (v Vec) Slice() []Bitnum {
	out := make([]Bitnum, 0, v.Count())
	v.ForEach(func(b Bitnum) { out = append(out, b) })
	return out
}

// String renders the vector as {b0,b1,...} for diagnostics.
func (v Vec) String() string {
	if v == 0 {
		return "{}"
	}
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	v.ForEach(func(b Bitnum) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&sb, "%d", uint8(b))
	})
	sb.WriteByte('}')
	return sb.String()
}

// Of builds a vector from the given bitnums. Intended for tests.
func Of(bs ...Bitnum) Vec {
	var v Vec
	for _, b := range bs {
		v = v.Add(b)
	}
	return v
}
