package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitnumValid(t *testing.T) {
	for b := Bitnum(0); b < Word; b++ {
		if !b.Valid() {
			t.Fatalf("bitnum %d should be valid", b)
		}
	}
	if None.Valid() {
		t.Fatal("None must not be valid")
	}
	if Bitnum(65).Valid() {
		t.Fatal("65 must not be valid")
	}
}

func TestBitPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bit() on None should panic")
		}
	}()
	_ = None.Bit()
}

func TestAddRemoveHas(t *testing.T) {
	var v Vec
	for b := Bitnum(0); b < Word; b++ {
		if v.Has(b) {
			t.Fatalf("empty vec has %v", b)
		}
		v = v.Add(b)
		if !v.Has(b) {
			t.Fatalf("vec missing %v after Add", b)
		}
	}
	if v.Count() != Word {
		t.Fatalf("count = %d, want %d", v.Count(), Word)
	}
	for b := Bitnum(0); b < Word; b++ {
		v = v.Remove(b)
		if v.Has(b) {
			t.Fatalf("vec still has %v after Remove", b)
		}
	}
	if !v.Empty() {
		t.Fatalf("vec not empty after removing all: %v", v)
	}
}

func TestHasInvalidBitnum(t *testing.T) {
	v := Of(0, 63)
	if v.Has(None) {
		t.Fatal("Has(None) must be false")
	}
}

func TestSubsetOfBasics(t *testing.T) {
	cases := []struct {
		a, b Vec
		want bool
	}{
		{0, 0, true},
		{0, Of(3), true},
		{Of(3), 0, false},
		{Of(3), Of(3), true},
		{Of(1, 2), Of(1, 2, 9), true},
		{Of(1, 2, 9), Of(1, 2), false},
		{Of(63), Of(63, 0), true},
		{Of(0), Of(63), false},
	}
	for _, c := range cases {
		if got := c.a.SubsetOf(c.b); got != c.want {
			t.Errorf("SubsetOf(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// oracle-based property: the paper's two-op subset test must agree with a
// naive per-bit check for arbitrary vectors.
func TestSubsetOfMatchesOracle(t *testing.T) {
	oracle := func(a, b Vec) bool {
		for bn := Bitnum(0); bn < Word; bn++ {
			if a.Has(bn) && !b.Has(bn) {
				return false
			}
		}
		return true
	}
	f := func(a, b uint64) bool {
		return Vec(a).SubsetOf(Vec(b)) == oracle(Vec(a), Vec(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	// Reflexivity.
	if err := quick.Check(func(a uint64) bool {
		return Vec(a).SubsetOf(Vec(a))
	}, cfg); err != nil {
		t.Error("reflexivity:", err)
	}
	// Antisymmetry: a⊆b ∧ b⊆a ⇒ a==b.
	if err := quick.Check(func(a, b uint64) bool {
		if Vec(a).SubsetOf(Vec(b)) && Vec(b).SubsetOf(Vec(a)) {
			return a == b
		}
		return true
	}, cfg); err != nil {
		t.Error("antisymmetry:", err)
	}
	// Transitivity via union: a ⊆ a∪b always.
	if err := quick.Check(func(a, b uint64) bool {
		return Vec(a).SubsetOf(Vec(a).Union(Vec(b)))
	}, cfg); err != nil {
		t.Error("a ⊆ a∪b:", err)
	}
	// Minus removes: (a−b) ∩ b == ∅.
	if err := quick.Check(func(a, b uint64) bool {
		return Vec(a).Minus(Vec(b)).Intersect(Vec(b)).Empty()
	}, cfg); err != nil {
		t.Error("minus:", err)
	}
}

func TestMinusUnionIntersect(t *testing.T) {
	a, b := Of(1, 5, 9), Of(5, 10)
	if got := a.Minus(b); got != Of(1, 9) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.Union(b); got != Of(1, 5, 9, 10) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != Of(5) {
		t.Errorf("Intersect = %v", got)
	}
}

func TestLowestAndSingle(t *testing.T) {
	if got := Vec(0).Lowest(); got != None {
		t.Errorf("Lowest(empty) = %v", got)
	}
	if got := Of(7, 13).Lowest(); got != 7 {
		t.Errorf("Lowest = %v", got)
	}
	if b, ok := Of(13).Single(); !ok || b != 13 {
		t.Errorf("Single(Of(13)) = %v,%v", b, ok)
	}
	if _, ok := Of(13, 14).Single(); ok {
		t.Error("Single on two-bit vec must be false")
	}
	if _, ok := Vec(0).Single(); ok {
		t.Error("Single on empty vec must be false")
	}
}

func TestForEachOrderAndSlice(t *testing.T) {
	v := Of(63, 0, 17)
	got := v.Slice()
	want := []Bitnum{0, 17, 63}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	if s := Vec(0).String(); s != "{}" {
		t.Errorf("empty String = %q", s)
	}
	if s := Of(2, 40).String(); s != "{2,40}" {
		t.Errorf("String = %q", s)
	}
	if s := Bitnum(3).String(); s != "bn(3)" {
		t.Errorf("Bitnum String = %q", s)
	}
	if s := None.String(); s != "bn(none)" {
		t.Errorf("None String = %q", s)
	}
}

// The ancestor test is the hot path; make sure it stays allocation-free.
func TestSubsetNoAllocs(t *testing.T) {
	a, b := Of(1, 2, 3), Of(1, 2, 3, 4)
	allocs := testing.AllocsPerRun(100, func() {
		if !a.SubsetOf(b) {
			t.Fatal("subset expected")
		}
	})
	if allocs != 0 {
		t.Fatalf("SubsetOf allocates: %v allocs/op", allocs)
	}
}

func TestRandomSetAlgebraAgainstMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	set := map[Bitnum]bool{}
	var v Vec
	for i := 0; i < 20000; i++ {
		b := Bitnum(rng.Intn(Word))
		switch rng.Intn(3) {
		case 0:
			set[b] = true
			v = v.Add(b)
		case 1:
			delete(set, b)
			v = v.Remove(b)
		case 2:
			if v.Has(b) != set[b] {
				t.Fatalf("step %d: Has(%v)=%v oracle=%v", i, b, v.Has(b), set[b])
			}
		}
		if v.Count() != len(set) {
			t.Fatalf("step %d: Count=%d oracle=%d", i, v.Count(), len(set))
		}
	}
}

func BenchmarkSubsetOf(b *testing.B) {
	x, y := Of(1, 5, 9, 33), Of(1, 5, 9, 33, 40)
	sink := false
	for i := 0; i < b.N; i++ {
		sink = x.SubsetOf(y)
	}
	_ = sink
}
