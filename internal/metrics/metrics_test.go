package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Set(-3)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 99, 100, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le=10 owns {5,10}; le=100 owns {11,99,100}; le=1000 owns {500}; +Inf owns {5000}.
	want := []uint64{2, 3, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts=%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 5+10+11+99+100+500+5000 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// 100 uniform observations in (0,40]: quantile estimates should land
	// within one bucket width of the exact value.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 20}, {0.95, 38}, {0.99, 39.6},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > 10 {
			t.Fatalf("q%.2f = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestQuantileInfBucket(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	h.Observe(1e9) // lands in +Inf
	if got := h.Snapshot().Quantile(0.99); got != 20 {
		t.Fatalf("+Inf-bucket quantile = %v, want last finite bound 20", got)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram(DefBuckets)
	h.ObserveDuration(250 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 || math.Abs(s.Sum-250e-6) > 1e-12 {
		t.Fatalf("count=%d sum=%v, want 1/0.00025", s.Count, s.Sum)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pnstm_requests_total", "Requests.", Labels{"shard": "0"})
	c.Add(5)
	r.Counter("pnstm_requests_total", "Requests.", Labels{"shard": "1"}).Add(7)
	g := r.Gauge("pnstm_max_inflight", "Inflight cap.", Labels{"shard": "0"})
	g.Set(4)
	r.GaugeFunc("pnstm_ready", "Readiness.", nil, func() float64 { return 1 })
	h := r.Histogram("pnstm_request_latency_seconds", "Latency.", Labels{"class": "point"}, []float64{0.001, 0.1})
	h.Observe(0.0005) // 500µs → le=0.001
	h.Observe(0.05)   // 50ms → le=0.1
	h.Observe(0.2)    // 200ms → +Inf

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pnstm_requests_total counter",
		`pnstm_requests_total{shard="0"} 5`,
		`pnstm_requests_total{shard="1"} 7`,
		"# TYPE pnstm_max_inflight gauge",
		`pnstm_max_inflight{shard="0"} 4`,
		"pnstm_ready 1",
		"# TYPE pnstm_request_latency_seconds histogram",
		`pnstm_request_latency_seconds_bucket{class="point",le="0.001"} 1`,
		`pnstm_request_latency_seconds_bucket{class="point",le="0.1"} 2`,
		`pnstm_request_latency_seconds_bucket{class="point",le="+Inf"} 3`,
		`pnstm_request_latency_seconds_count{class="point"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per family even with multiple series.
	if n := strings.Count(out, "# TYPE pnstm_requests_total"); n != 1 {
		t.Fatalf("TYPE header appears %d times, want 1", n)
	}
	// _sum carries the observed unit straight through: 0.0005+0.05+0.2.
	if !strings.Contains(out, `pnstm_request_latency_seconds_sum{class="point"} 0.2505`) {
		t.Fatalf("sum line missing/wrong:\n%s", out)
	}
}

func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", nil, DefBuckets)
	c := r.Counter("c", "c", nil)
	var wg sync.WaitGroup
	const perG = 10_000
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(123)
				c.Inc()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 4*perG || c.Load() != 4*perG {
		t.Fatalf("count mismatch: hist=%d counter=%d, want %d", s.Count, c.Load(), 4*perG)
	}
}

// TestHistogramBoundaryObservation pins the `le` contract: an
// observation EXACTLY equal to a bucket's upper bound lands in that
// bucket (le is inclusive, per Prometheus), deterministically, for
// every bound including the first, the last, and repeated observations.
func TestHistogramBoundaryObservation(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	h := NewHistogram(bounds)
	for _, b := range bounds {
		h.Observe(b)
		h.Observe(b) // repeatability: same value, same bucket, every time
	}
	s := h.Snapshot()
	for i := range bounds {
		if s.Counts[i] != 2 {
			t.Fatalf("bucket le=%v holds %d, want 2 (counts=%v)", bounds[i], s.Counts[i], s.Counts)
		}
	}
	if s.Counts[len(bounds)] != 0 {
		t.Fatalf("+Inf bucket holds %d, want 0 (counts=%v)", s.Counts[len(bounds)], s.Counts)
	}

	// A hair above a bound must spill to the NEXT bucket, a hair below
	// must stay — the boundary is exact, not approximate.
	h2 := NewHistogram(bounds)
	h2.Observe(math.Nextafter(0.01, 1)) // just above le=0.01 -> le=0.1
	h2.Observe(math.Nextafter(0.01, 0)) // just below le=0.01 -> le=0.01
	h2.Observe(math.Nextafter(1, 2))    // just above the last bound -> +Inf
	s2 := h2.Snapshot()
	if got := []uint64{s2.Counts[1], s2.Counts[2], s2.Counts[4]}; got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("neighbourhood observations misplaced: counts=%v", s2.Counts)
	}
}
